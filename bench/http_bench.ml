(* HTTP query-plane benchmarks: sustained request rate and tail latency of
   the snapshot-cached endpoints, measured over a keep-alive loopback
   connection, plus the sweeps-to-convergence saving of a warm-started
   streaming epoch versus a cold run of the same epoch.  Writes
   BENCH_http.json (CI artifact). *)

module Ctx = Bench_context
module Svc = Because_service.Service
module Sspec = Because_service.Spec
module Store = Because_service.Store
module Query = Because_service.Query
module Stream = Because_service.Stream
module Server = Because_http.Server
module Asn = Because_bgp.Asn

type row = { name : string; value : float; unit_ : string }

let fresh_dir () =
  let f = Filename.temp_file "because-bench-http" ".dir" in
  Sys.remove f;
  f

let requests_per_endpoint = if Ctx.quick then 2_000 else 20_000
let n_campaigns = 12
let estimates_per_campaign = 40

(* A store that looks like a long-lived service's: a dozen finished
   campaigns, each with a realistic estimate table, so /status and /matrix
   render documents of production size. *)
let populate svc =
  let store = Svc.store svc in
  for i = 0 to n_campaigns - 1 do
    let spec = Sspec.default ~id:(Printf.sprintf "done-%02d" i) in
    let e = Store.add store spec ~seq:i in
    e.Store.health <- Store.Done Because_recover.Supervise.Healthy;
    e.Store.estimates <-
      Array.init estimates_per_campaign (fun j ->
          let mean = float_of_int ((17 * (i + j)) mod 100) /. 100.0 in
          let category = 1 + int_of_float (mean *. 4.999) in
          {
            Store.asn = Asn.of_int (64500 + j);
            mean;
            lo = Float.max 0.0 (mean -. 0.05);
            hi = Float.min 1.0 (mean +. 0.05);
            category;
            damping = category >= 4;
          })
  done

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let find_sub s sub from =
  let n = String.length sub and m = String.length s in
  let rec go i = if i + n > m then -1 else if String.sub s i n = sub then i else go (i + 1) in
  go from

(* Read exactly one HTTP response off a keep-alive connection.  The server
   always frames with Content-Length, so read head, then head + body. *)
let recv_response fd scratch =
  let b = Buffer.create 1024 in
  let rec fill need =
    if Buffer.length b < need then begin
      let n = Unix.read fd scratch 0 (Bytes.length scratch) in
      if n = 0 then failwith "server closed connection";
      Buffer.add_subbytes b scratch 0 n;
      fill need
    end
  in
  let rec head () =
    match find_sub (Buffer.contents b) "\r\n\r\n" 0 with
    | -1 ->
        fill (Buffer.length b + 1);
        head ()
    | i -> i
  in
  let head_end = head () in
  let s = Buffer.contents b in
  let clen =
    let lower = String.lowercase_ascii (String.sub s 0 head_end) in
    match find_sub lower "content-length:" 0 with
    | -1 -> 0
    | i ->
        let stop = find_sub lower "\r\n" i in
        let v = String.sub lower (i + 15) (stop - i - 15) in
        int_of_string (String.trim v)
  in
  fill (head_end + 4 + clen);
  Buffer.length b

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let bench_endpoint ~port ~path ~n =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let req =
        Bytes.of_string
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" path)
      in
      let scratch = Bytes.create 65536 in
      for _ = 1 to 64 do
        write_all fd req;
        ignore (recv_response fd scratch)
      done;
      let lat = Array.make n 0.0 in
      let bytes = ref 0 in
      let t0 = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        let s = Unix.gettimeofday () in
        write_all fd req;
        bytes := recv_response fd scratch;
        lat.(i) <- Unix.gettimeofday () -. s
      done;
      let total = Unix.gettimeofday () -. t0 in
      Array.sort compare lat;
      let rps = float_of_int n /. total in
      (rps, percentile lat 0.50, percentile lat 0.99, !bytes))

(* The two-epoch streaming scenario from the test suite, measured: how many
   sweeps does each epoch-2 variant need to pass the R̂ gate? *)
let base_obs =
  [ "rfd 64512 901"; "rfd 64513 901"; "clean 64512 64513";
    "clean 64513 64514"; "clean 64512 64514" ]

let growth_obs = [ "rfd 64512 901"; "clean 64513 64514"; "clean 64512 64514" ]

let reps n l = List.concat_map (fun _ -> l) (List.init n Fun.id)

let stream_gate_rows () =
  let path = Filename.temp_file "because-bench-stream" ".obs" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let write lines =
        Out_channel.with_open_bin path (fun oc ->
            List.iter (fun l -> output_string oc (l ^ "\n")) lines)
      in
      let spec =
        { (Sspec.default ~id:"bench-stream") with
          Sspec.seed = 11; samples = 300; burn_in = 150; chains = 2;
          obs = Some path }
      in
      let telemetry = Because_telemetry.Registry.disabled in
      let supervise =
        { Because_recover.Supervise.deadline_s = None; max_sweeps = None }
      in
      let run ~seed =
        match Stream.run ~spec ~seed ~telemetry ~supervise ~jobs:1 () with
        | Ok o -> o
        | Error e -> failwith ("bench stream: " ^ e)
      in
      let obs1 = reps 8 base_obs in
      write obs1;
      let epoch1 = run ~seed:None in
      write (obs1 @ reps 5 growth_obs);
      let warm = run ~seed:epoch1.Stream.seed in
      (* A cold epoch 2: same observations and epoch-derived RNG, full
         burn-in, default chain initialisation. *)
      let cold_gate =
        let obs =
          match Stream.parse_observations path with
          | Ok o -> o
          | Error e -> failwith e
        in
        let data = Because.Tomography.of_observations obs in
        let config =
          { Because.Infer.default_config with
            Because.Infer.n_samples = spec.Sspec.samples;
            burn_in = spec.Sspec.burn_in;
            n_chains = spec.Sspec.chains }
        in
        let rng =
          Because_stats.Rng.create ((spec.Sspec.seed * 1009) + 2)
        in
        let result = Because.Infer.run ~rng ~config data in
        Option.map
          (fun d -> spec.Sspec.burn_in + d)
          (Because.Infer.gate_draws result)
      in
      match (warm.Stream.gate_sweeps, cold_gate) with
      | Some w, Some c ->
          let saving = (1.0 -. (float_of_int w /. float_of_int c)) *. 100.0 in
          Printf.printf "%-36s %10d sweeps\n" "epoch-2 cold gate" c;
          Printf.printf "%-36s %10d sweeps (-%.0f%%)\n" "epoch-2 warm gate" w
            saving;
          [ { name = "stream_cold_gate_sweeps"; value = float_of_int c;
              unit_ = "sweeps" };
            { name = "stream_warm_gate_sweeps"; value = float_of_int w;
              unit_ = "sweeps" };
            { name = "stream_warm_saving"; value = saving; unit_ = "%" } ]
      | _ -> failwith "bench stream: a convergence gate did not pass")

(* Overload behaviour: goodput at 3x worker capacity through one-shot
   connections, tail latency of the successes against the request
   deadline, and a deterministic shed burst that checks every 503
   carries Retry-After. *)

let overload_deadline_s = 1.0

(* One request over a fresh connection; returns (status, latency, head). *)
let one_shot ~port ~path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      write_all fd
        (Bytes.of_string
           (Printf.sprintf
              "GET %s HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
              path));
      let b = Buffer.create 1024 in
      let scratch = Bytes.create 65536 in
      (try
         let rec drain () =
           let n = Unix.read fd scratch 0 (Bytes.length scratch) in
           if n > 0 then begin
             Buffer.add_subbytes b scratch 0 n;
             drain ()
           end
         in
         drain ()
       with Unix.Unix_error _ -> ());
      let raw = Buffer.contents b in
      let latency = Unix.gettimeofday () -. t0 in
      let status =
        if String.length raw >= 12 && String.sub raw 0 5 = "HTTP/" then
          try int_of_string (String.sub raw 9 3) with Failure _ -> 0
        else 0
      in
      let head =
        match find_sub raw "\r\n\r\n" 0 with
        | -1 -> raw
        | i -> String.lowercase_ascii (String.sub raw 0 i)
      in
      (status, latency, head))

let overload_rows () =
  Ctx.section "http overload";
  let dir = fresh_dir () in
  let svc = Svc.create (Svc.default_config ~state_dir:dir) in
  populate svc;
  let threads = 2 in
  (* The server's default watermark formula: above the 3x-capacity client
     count, so the goodput phase is never shed, while the stall burst
     below deliberately crosses it. *)
  let watermark = (2 * threads) + 8 in
  let server =
    Server.start ~threads ~port:0 ~request_deadline:overload_deadline_s
      ~shed_watermark:watermark (Query.router svc)
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let port = Server.port server in
      let bad_shed = Atomic.make 0 in
      (* One load phase: [clients] threads hammering one-shot connections
         for [duration] seconds.  Returns goodput, p99 of the successes,
         and the shed count.  Both phases use the same threaded client
         harness so the comparison isolates the effect of overload. *)
      let load_phase ~clients ~duration =
        let ok = Atomic.make 0 and shed = Atomic.make 0 in
        let other = Atomic.make 0 in
        let lat_mu = Mutex.create () in
        let lats = ref [] in
        let stop_at = Unix.gettimeofday () +. duration in
        let client () =
          while Unix.gettimeofday () < stop_at do
            match one_shot ~port ~path:"/status" with
            | 200, l, _ ->
                Atomic.incr ok;
                Mutex.protect lat_mu (fun () -> lats := l :: !lats)
            | 503, _, head ->
                Atomic.incr shed;
                if find_sub head "retry-after:" 0 = -1
                   || find_sub head "x-queue-depth:" 0 = -1
                then Atomic.incr bad_shed
            | _ -> Atomic.incr other
            | exception _ -> Atomic.incr other
          done
        in
        let t1 = Unix.gettimeofday () in
        let ts = List.init clients (fun _ -> Thread.create client ()) in
        List.iter Thread.join ts;
        let elapsed = Unix.gettimeofday () -. t1 in
        let lat = Array.of_list !lats in
        Array.sort compare lat;
        ( float_of_int (Atomic.get ok) /. elapsed,
          percentile lat 0.99,
          Atomic.get shed,
          Atomic.get other )
      in
      let duration = if Ctx.quick then 0.5 else 2.0 in
      (* Offered load at capacity: one client per worker thread. *)
      let base_rps, _, _, _ = load_phase ~clients:threads ~duration in
      (* 3x capacity. *)
      let clients = threads * 3 in
      let goodput, p99, shed_n, other_n =
        load_phase ~clients ~duration
      in
      (* Deterministic shed burst: stall every worker with a half-sent
         request, then open enough further connections to cross the
         watermark; the excess must be shed with Retry-After. *)
      let stalls =
        List.init threads (fun _ ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            write_all fd (Bytes.of_string "GET /status HTTP/1.1\r\n");
            fd)
      in
      Thread.delay 0.1;
      (* Open the whole burst before reading a single response, so the
         accept queue actually crosses the watermark. *)
      let burst = watermark + 3 in
      let burst_fds =
        List.init burst (fun _ ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
            write_all fd
              (Bytes.of_string
                 "GET /status HTTP/1.1\r\nHost: bench\r\nConnection: \
                  close\r\n\r\n");
            fd)
      in
      Thread.delay 0.1;
      let burst_shed = ref 0 in
      List.iter
        (fun fd ->
          let b = Buffer.create 1024 in
          let scratch = Bytes.create 65536 in
          (try
             let rec drain () =
               let n = Unix.read fd scratch 0 (Bytes.length scratch) in
               if n > 0 then begin
                 Buffer.add_subbytes b scratch 0 n;
                 drain ()
               end
             in
             drain ()
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let raw = Buffer.contents b in
          if String.length raw >= 12 && String.sub raw 9 3 = "503" then begin
            incr burst_shed;
            let head = String.lowercase_ascii raw in
            if find_sub head "retry-after:" 0 = -1 then Atomic.incr bad_shed
          end)
        burst_fds;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) stalls;
      if Atomic.get bad_shed > 0 then
        failwith "overload bench: a 503 lacked Retry-After/X-Queue-Depth";
      if !burst_shed = 0 then
        failwith "overload bench: shed burst produced no 503s";
      let pct = goodput /. base_rps *. 100.0 in
      Printf.printf "%-36s %10.0f req/s\n" "one-shot at capacity" base_rps;
      Printf.printf "%-36s %10.0f req/s (%.0f%% of capacity, p99 %.1f ms)\n"
        (Printf.sprintf "goodput at %dx capacity" (clients / threads))
        goodput pct (p99 *. 1e3);
      Printf.printf "%-36s %10d shed (+%d in burst), %d other\n" "overload sheds"
        shed_n !burst_shed other_n;
      [ { name = "overload_uncontended_rps"; value = base_rps; unit_ = "1/s" };
        { name = "overload_goodput_rps"; value = goodput; unit_ = "1/s" };
        { name = "overload_goodput_pct"; value = pct; unit_ = "%" };
        { name = "overload_p99"; value = p99 *. 1e6; unit_ = "us" };
        { name = "overload_deadline"; value = overload_deadline_s *. 1e6;
          unit_ = "us" };
        { name = "overload_shed"; value = float_of_int (shed_n + !burst_shed);
          unit_ = "1" } ])

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      Printf.fprintf oc "  \"schema\": \"because-bench-http/1\",\n";
      Printf.fprintf oc "  \"quick\": %b,\n" Ctx.quick;
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun k row ->
          Printf.fprintf oc
            "    { \"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\" }%s\n"
            row.name row.value row.unit_
            (if k = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n")

let run () =
  Ctx.section "http query plane";
  let dir = fresh_dir () in
  let svc = Svc.create (Svc.default_config ~state_dir:dir) in
  populate svc;
  let server = Server.start ~threads:2 ~port:0 (Query.router svc) in
  let rows =
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        let port = Server.port server in
        List.concat_map
          (fun (label, path) ->
            let rps, p50, p99, body =
              bench_endpoint ~port ~path ~n:requests_per_endpoint
            in
            Printf.printf "%-36s %10.0f req/s (p50 %.0f us, p99 %.0f us, %d B)\n"
              (label ^ " sustained") rps (p50 *. 1e6) (p99 *. 1e6) body;
            [ { name = label ^ "_rps"; value = rps; unit_ = "1/s" };
              { name = label ^ "_p50"; value = p50 *. 1e6; unit_ = "us" };
              { name = label ^ "_p99"; value = p99 *. 1e6; unit_ = "us" } ])
          [ ("status", "/status"); ("matrix", "/matrix") ])
  in
  let rows = rows @ overload_rows () @ stream_gate_rows () in
  write_json "BENCH_http.json" rows;
  Printf.printf "wrote BENCH_http.json (%d rows)\n" (List.length rows)
