(* Ablation benches for the design choices DESIGN.md calls out. *)

open Because_bgp
module Sc = Because_scenario
module Ctx = Bench_context
module Diagnostics = Because_mcmc.Diagnostics

let samplers () =
  Ctx.section "Ablation — MH vs HMC";
  Ctx.paper
    "§3.2 uses both samplers and keeps the highest flag; they should agree \
     on the marginals";
  let outcome = Ctx.one_minute () in
  match outcome.Sc.Campaign.result with
  | None -> print_endline "no inference result"
  | Some result ->
      let per = Because.Posterior.per_sampler result in
      let mh = List.assoc "MH" per and hmc = List.assoc "HMC" per in
      let diffs =
        Array.init (Array.length mh) (fun i ->
            Float.abs
              (mh.(i).Because.Posterior.mean -. hmc.(i).Because.Posterior.mean))
      in
      Printf.printf "mean |MH − HMC| over %d ASs: %.4f (max %.4f)\n"
        (Array.length diffs)
        (Because_stats.Summary.mean diffs)
        (Because_stats.Summary.max diffs);
      (* Effective sample size per retained draw for the busiest AS. *)
      let busiest =
        let data = Because.Infer.dataset result in
        let best = ref 0 in
        for i = 0 to Because.Tomography.n_nodes data - 1 do
          if
            Array.length (Because.Tomography.paths_through data i)
            > Array.length (Because.Tomography.paths_through data !best)
          then best := i
        done;
        !best
      in
      List.iter
        (fun (run : Because.Infer.sampler_run) ->
          let samples =
            Because_mcmc.Chain.marginal run.Because.Infer.chain busiest
          in
          Printf.printf
            "%-4s acceptance %.2f, ESS %.0f / %d draws, split-R̂ %.3f\n"
            run.Because.Infer.name run.Because.Infer.acceptance
            (Diagnostics.effective_sample_size samples)
            (Array.length samples)
            (Diagnostics.split_r_hat samples))
        result.Because.Infer.runs;
      (* The paper's §1/§8 cost claim: naive Gibbs is what made computational
         Bayes look unaffordable.  Same dataset, same draw budget, wall-clock
         and ESS per second for all three samplers. *)
      print_endline "sampler cost on the campaign posterior (400 draws):";
      let world = Lazy.force Ctx.world in
      let target = Because.Model.target result.Because.Infer.model in
      let draws = 400 and burn = 200 in
      let time_run name f =
        let rng = Sc.World.fresh_rng world ~salt:(Hashtbl.hash name) in
        let t0 = Unix.gettimeofday () in
        let chain = f rng in
        let dt = Unix.gettimeofday () -. t0 in
        let ess =
          Diagnostics.effective_sample_size
            (Because_mcmc.Chain.marginal chain busiest)
        in
        Printf.printf "%-6s %6.1f s   ESS %5.0f   ESS/s %7.1f\n" name dt ess
          (ess /. dt)
      in
      time_run "MH" (fun rng ->
          (Because_mcmc.Metropolis.run_single_site ~rng ~n_samples:draws
             ~burn_in:burn target)
            .Because_mcmc.Metropolis.chain);
      time_run "HMC" (fun rng ->
          (Because_mcmc.Hmc.run ~rng ~n_samples:draws ~burn_in:burn
             ~leapfrog_steps:12 target)
            .Because_mcmc.Hmc.chain);
      time_run "Gibbs" (fun rng ->
          (Because_mcmc.Gibbs.run ~rng ~n_samples:draws ~burn_in:burn target)
            .Because_mcmc.Gibbs.chain)

let priors () =
  Ctx.section "Ablation — prior choice";
  Ctx.paper
    "§3.2: there is enough data that the choice of prior does not strongly \
     influence the results";
  let outcome = Ctx.one_minute () in
  let observations = Sc.Campaign.observations outcome in
  if observations = [] then print_endline "no observations"
  else begin
    let data = Because.Tomography.of_observations observations in
    let world = Lazy.force Ctx.world in
    List.iter
      (fun (name, prior) ->
        let config =
          { Because.Infer.default_config with
            prior;
            n_samples = 600;
            burn_in = 400;
            node_priors = Sc.World.node_priors world }
        in
        let rng = Sc.World.fresh_rng world ~salt:(Hashtbl.hash name) in
        let result = Because.Infer.run ~rng ~config data in
        let categories = Because.Pinpoint.assign_with_pinpointing result in
        let damping =
          Asn.Set.cardinal (Because.Evaluate.damping_set categories)
        in
        Printf.printf "%-16s flags %d damping ASs of %d\n" name damping
          (List.length categories))
      [
        ("uniform", Because.Prior.Uniform);
        ("beta(0.5,0.5)", Because.Prior.Beta { a = 0.5; b = 0.5 });
        ("beta(2,2)", Because.Prior.Beta { a = 2.0; b = 2.0 });
      ]
  end

let r_delta_threshold () =
  Ctx.section "Ablation — minimum r-delta threshold";
  Ctx.paper
    "§4.2 picks 5 minutes to clearly separate damping from propagation and \
     MRAI; our collectors add up to 2 minutes of export latency";
  let outcome = Ctx.one_minute () in
  let windows_of = Sc.Campaign.windows_of outcome in
  List.iter
    (fun threshold ->
      let labeled =
        Because_labeling.Label.label_all ~min_r_delta:threshold
          ~records:outcome.Sc.Campaign.records ~windows_of ()
      in
      let rfd =
        List.length
          (List.filter
             (fun (lp : Because_labeling.Label.labeled_path) ->
               lp.Because_labeling.Label.rfd)
             labeled)
      in
      Printf.printf "min r-delta %4.0f s: %4d of %4d paths labeled RFD\n"
        threshold rfd (List.length labeled))
    [ 60.0; 180.0; 300.0; 480.0; 900.0 ]

let match_threshold () =
  Ctx.section "Ablation — the ≥90% Burst–Break rule";
  Ctx.paper
    "§4.2 labels RFD when at least 90% of pairs match, absorbing session \
     resets and infrastructure noise";
  let outcome = Ctx.one_minute () in
  let windows_of = Sc.Campaign.windows_of outcome in
  List.iter
    (fun threshold ->
      let labeled =
        Because_labeling.Label.label_all ~match_threshold:threshold
          ~min_r_delta:outcome.Sc.Campaign.params.Sc.Campaign.min_r_delta
          ~records:outcome.Sc.Campaign.records ~windows_of ()
      in
      let rfd =
        List.length
          (List.filter
             (fun (lp : Because_labeling.Label.labeled_path) ->
               lp.Because_labeling.Label.rfd)
             labeled)
      in
      Printf.printf "match threshold %.0f%%: %4d RFD paths\n"
        (100.0 *. threshold) rfd)
    [ 0.5; 0.75; 0.9; 1.0 ]

let pinpointing () =
  Ctx.section "Ablation — step-2 pinpointing on/off";
  Ctx.paper
    "step 2 (eq. 8) recovers inconsistently damping ASs such as AS 701 that \
     step 1 leaves uncertain";
  let world = Lazy.force Ctx.world in
  let outcome = Ctx.one_minute () in
  let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment world) in
  let universe = Sc.Campaign.universe outcome in
  let evaluate name categories =
    let m =
      Because.Evaluate.of_sets
        ~predicted:(Because.Evaluate.damping_set categories)
        ~truth ~universe
    in
    Printf.printf "%-18s precision %5.1f%% recall %5.1f%%\n" name
      (100.0 *. m.Because.Evaluate.precision)
      (100.0 *. m.Because.Evaluate.recall)
  in
  evaluate "step 1 only" outcome.Sc.Campaign.categories_step1;
  evaluate "with pinpointing" outcome.Sc.Campaign.categories;
  (match Sc.Deployment.inconsistent (Sc.World.deployment world) with
  | Some (asn, spared) ->
      let in_set categories =
        Asn.Set.mem asn (Because.Evaluate.damping_set categories)
      in
      Printf.printf
        "planted inconsistent damper %s (spares %s): step1=%b, with \
         pinpointing=%b\n"
        (Asn.to_string asn) (Asn.to_string spared)
        (in_set outcome.Sc.Campaign.categories_step1)
        (in_set outcome.Sc.Campaign.categories)
  | None -> ());
  Printf.printf "promotions fired: %d\n"
    (List.length outcome.Sc.Campaign.promotions)

let link_granularity () =
  Ctx.section "Ablation — AS-level vs link-level tomography";
  Ctx.paper
    "§6.3: pinpointing individual AS links would handle heterogeneous \
     configurations, but the path data is too sparse at link granularity";
  let world = Lazy.force Ctx.world in
  let outcome = Ctx.one_minute () in
  let as_obs = Sc.Campaign.observations outcome in
  if as_obs = [] then print_endline "no observations"
  else begin
    let link_obs = Sc.Link_tomography.observations as_obs in
    Printf.printf "median paths per AS node:   %.0f\n"
      (Sc.Link_tomography.median_incidence as_obs);
    Printf.printf "median paths per link node: %.0f\n"
      (Sc.Link_tomography.median_incidence link_obs);
    let infer obs =
      let data = Because.Tomography.of_observations obs in
      let config =
        { Because.Infer.default_config with n_samples = 500; burn_in = 300 }
      in
      let rng = Sc.World.fresh_rng world ~salt:4242 in
      let result = Because.Infer.run ~rng ~config data in
      (data, Because.Pinpoint.assign_with_pinpointing result)
    in
    let _, as_categories = infer as_obs in
    let _, link_categories = infer link_obs in
    let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment world) in
    let as_metrics =
      Because.Evaluate.of_sets
        ~predicted:(Because.Evaluate.damping_set as_categories)
        ~truth ~universe:(Sc.Campaign.universe outcome)
    in
    Printf.printf "AS level:   precision %5.1f%% recall %5.1f%%\n"
      (100.0 *. as_metrics.Because.Evaluate.precision)
      (100.0 *. as_metrics.Because.Evaluate.recall);
    (* Project link verdicts back to ASs: an AS is flagged if any flagged
       link touches it. *)
    let flagged_via_links =
      List.fold_left
        (fun acc (link_node, category) ->
          if Because.Categorize.damping category then begin
            let a, b = Sc.Link_tomography.decode link_node in
            Asn.Set.add a (Asn.Set.add b acc)
          end
          else acc)
        Asn.Set.empty link_categories
    in
    let link_metrics =
      Because.Evaluate.of_sets ~predicted:flagged_via_links ~truth
        ~universe:(Sc.Campaign.universe outcome)
    in
    Printf.printf "link level: precision %5.1f%% recall %5.1f%% (endpoints of flagged links)\n"
      (100.0 *. link_metrics.Because.Evaluate.precision)
      (100.0 *. link_metrics.Because.Evaluate.recall)
  end

let error_aware_likelihood () =
  Ctx.section "Ablation — §7.2 error-aware likelihood";
  Ctx.paper
    "modelling the chance that a damped path is recorded clean makes the \
     inference robust to label noise";
  let world = Lazy.force Ctx.world in
  let outcome = Ctx.one_minute () in
  let observations = Sc.Campaign.observations outcome in
  if observations = [] then print_endline "no observations"
  else begin
    (* Corrupt 15% of positive labels to clean, then infer with and without
       the error model. *)
    let rng = Sc.World.fresh_rng world ~salt:777 in
    let corrupted =
      List.map
        (fun (path, label) ->
          if label && Because_stats.Rng.float rng < 0.15 then (path, false)
          else (path, label))
        observations
    in
    let data = Because.Tomography.of_observations corrupted in
    let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment world) in
    List.iter
      (fun (name, epsilon) ->
        let config =
          { Because.Infer.default_config with
            n_samples = 600; burn_in = 400;
            false_negative_rate = epsilon;
            node_priors = Sc.World.node_priors world }
        in
        let rng = Sc.World.fresh_rng world ~salt:778 in
        let result = Because.Infer.run ~rng ~config data in
        let categories = Because.Pinpoint.assign_with_pinpointing result in
        let m =
          Because.Evaluate.of_sets
            ~predicted:(Because.Evaluate.damping_set categories)
            ~truth ~universe:(Sc.Campaign.universe outcome)
        in
        Printf.printf
          "%-12s (epsilon=%.2f): precision %5.1f%% recall %5.1f%% (on 15%%-corrupted labels)\n"
          name epsilon
          (100.0 *. m.Because.Evaluate.precision)
          (100.0 *. m.Because.Evaluate.recall))
      [ ("base", 0.0); ("error-aware", 0.15) ]
  end

let sat_baseline () =
  Ctx.section "Ablation — SAT-based binary tomography baseline (§8)";
  Ctx.paper
    "prior work casts localisation as SAT; the paper argues the formula has \
     many solutions on sparse data and zero solutions under noise and \
     inconsistent deployment — measured here instead of asserted";
  let outcome = Ctx.one_minute () in
  let observations = Sc.Campaign.observations outcome in
  if observations = [] then print_endline "no observations"
  else begin
    let data = Because.Tomography.of_observations observations in
    let verdict = Because_sat.Binary_tomography.solve ~solution_limit:4 data in
    Format.printf "full 1-minute campaign dataset (%d paths, %d ASs): %a@."
      (Because.Tomography.n_paths data)
      (Because.Tomography.n_nodes data)
      Because_sat.Binary_tomography.pp_verdict verdict;
    (* A sparse slice of the same data: positive paths only. *)
    let sparse =
      match List.filter snd observations with
      | [] -> []
      | positives -> [ List.hd positives ]
    in
    (match sparse with
    | [ _ ] ->
        let d = Because.Tomography.of_observations sparse in
        Format.printf "a single positive path from the same data: %a@."
          Because_sat.Binary_tomography.pp_verdict
          (Because_sat.Binary_tomography.solve ~solution_limit:8 d)
    | _ -> ());
    print_endline
      "(BeCAUSe's probabilistic model absorbs the same contradictions and \
       still ranks the likely dampers -- Table 4)"
  end

let model_criticism () =
  Ctx.section "Model criticism — posterior predictive checks";
  Ctx.paper
    "the framework's value is calibrated uncertainty: predicted path \
     probabilities should match observed label rates";
  let outcome = Ctx.one_minute () in
  match outcome.Sc.Campaign.result with
  | None -> print_endline "no inference result"
  | Some result ->
      let p = Because.Predictive.evaluate result in
      Format.printf "%a" Because.Predictive.pp_summary p

let all () =
  samplers ();
  priors ();
  r_delta_threshold ();
  match_threshold ();
  pinpointing ();
  link_granularity ();
  error_aware_likelihood ();
  sat_baseline ();
  model_criticism ()
