(* Bechamel micro-benchmarks of the computational kernels.

   Beyond printing to stdout, the section writes BENCH_kernels.json
   (name, ns/run, minor words/run per kernel) so the performance trajectory
   is tracked across PRs by CI artifacts instead of eyeballed.

   The inference hot path is measured in pairs: the incremental-cache MH
   sweep against the stateless-delta one, and multi-domain inference
   against single-domain, so the speedups are visible in the same run. *)

open Because_bgp
module Sc = Because_scenario
module Ctx = Bench_context
module Rng = Because_stats.Rng

let make_dataset () =
  (* A representative tomography instance: ~120 nodes, ~600 paths. *)
  let rng = Rng.create 2024 in
  let observations =
    List.init 600 (fun _ ->
        let len = 3 + Rng.int rng 4 in
        let nodes =
          List.sort_uniq Int.compare
            (List.init len (fun _ -> 1 + Rng.int rng 120))
        in
        (List.map Asn.of_int nodes, Rng.float rng < 0.18))
  in
  Because.Tomography.of_observations observations

type row = { name : string; ns_per_run : float; minor_words : float option }

let tests () =
  let data = make_dataset () in
  let model = Because.Model.create data in
  let target = Because.Model.target model in
  let target_uncached = Because.Model.target ~cached:false model in
  let n = Because.Tomography.n_nodes data in
  let p = Array.init n (fun i -> 0.1 +. (0.8 *. float_of_int (i mod 7) /. 7.0)) in
  let rng = Rng.create 99 in
  let likelihood =
    Bechamel.Test.make ~name:"log-likelihood"
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Model.log_likelihood model p)))
  in
  let gradient =
    Bechamel.Test.make ~name:"gradient"
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Model.grad_log_posterior model p)))
  in
  let delta_uncached =
    Bechamel.Test.make ~name:"single-site delta (uncached)"
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Model.delta_log_posterior model p 17 0.42)))
  in
  let delta_cached =
    (* One cache reused across runs; deltas without commits leave it at p. *)
    let cache = Because.Model.make_cache model p in
    Bechamel.Test.make ~name:"single-site delta (cached)"
      (Bechamel.Staged.stage (fun () ->
           ignore (cache.Because_mcmc.Target.cached_delta 17 0.42)))
  in
  let mh_sweep tgt name =
    Bechamel.Test.make ~name
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Because_mcmc.Metropolis.run_single_site ~rng:(Rng.copy rng)
                ~n_samples:50 ~burn_in:10 tgt)))
  in
  let mh_cached = mh_sweep target "MH run 50 draws (cached)" in
  let mh_uncached = mh_sweep target_uncached "MH run 50 draws (uncached)" in
  let infer_jobs ?(telemetry = Because_telemetry.Registry.disabled)
      ?checkpoint jobs name =
    let config =
      { Because.Infer.default_config with
        n_samples = 100; burn_in = 100; n_chains = 2; jobs; telemetry;
        checkpoint }
    in
    Bechamel.Test.make ~name
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Infer.run ~rng:(Rng.create 7) ~config data)))
  in
  (* The jobs sweep shares one task shape (2 samplers × 2 chains = 4 tasks)
     so the rows differ only in scheduling width; results are bit-identical
     across the sweep by the pre-split RNG discipline.  CI fails the build
     if the jobs=4 row regresses below the jobs=1 row. *)
  let infer_seq = infer_jobs 1 "inference 4 chains (jobs=1)" in
  let infer_j2 = infer_jobs 2 "inference 4 chains (jobs=2)" in
  let infer_par = infer_jobs 4 "inference 4 chains (jobs=4)" in
  let infer_j8 = infer_jobs 8 "inference 4 chains (jobs=8)" in
  (* Paired with [infer_seq]: the same run with live checkpoint hooks at the
     default cadence (wall-clock driven, so a bench-length run only pays the
     per-sweep cadence test plus the end-of-chain save).  The acceptance bar
     for the recovery subsystem is < 2% overhead on this pair. *)
  let infer_ckpt =
    let dir = Filename.temp_file "because-bench-ckpt" ".dir" in
    Sys.remove dir;
    let recovery = Sc.Recovery.create ~dir () in
    Sc.Recovery.attach recovery ~fingerprint:"bench-kernels";
    infer_jobs
      ~checkpoint:(Sc.Recovery.chain_hooks recovery ~namespace:"bench.")
      1 "inference 4 chains (jobs=1, checkpoint)"
  in
  (* One live registry reused across iterations: spans overwrite their ring
     and counters just keep summing, so steady-state record cost — not
     registry construction — is what gets measured. *)
  let infer_tel =
    infer_jobs
      ~telemetry:(Because_telemetry.Registry.create ())
      1 "inference 4 chains (jobs=1, telemetry)"
  in
  let hmc_traj =
    Bechamel.Test.make ~name:"HMC run (10 draws)"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Because_mcmc.Hmc.run ~rng:(Rng.copy rng) ~n_samples:10
                ~burn_in:5 ~leapfrog_steps:10 target)))
  in
  let rfd_engine =
    Bechamel.Test.make ~name:"RFD record+query"
      (Bechamel.Staged.stage (fun () ->
           let s = Rfd.create Rfd_params.cisco in
           for i = 0 to 19 do
             Rfd.record s ~now:(float_of_int i *. 60.0) Rfd.Withdrawal
           done;
           ignore (Rfd.suppressed s ~now:1300.0)))
  in
  let heap =
    Bechamel.Test.make ~name:"event heap 1k push/pop"
      (Bechamel.Staged.stage (fun () ->
           let h = Because_sim.Heap.create () in
           let local = Rng.create 7 in
           for _ = 1 to 1000 do
             Because_sim.Heap.push h ~time:(Rng.float local) ()
           done;
           while not (Because_sim.Heap.is_empty h) do
             ignore (Because_sim.Heap.pop h)
           done))
  in
  let topology =
    Bechamel.Test.make ~name:"topology generation (100 AS)"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Because_topology.Generate.generate (Rng.create 3)
                {
                  Because_topology.Generate.default_params with
                  n_transit = 20;
                  n_stub = 72;
                })))
  in
  [ likelihood; gradient; delta_uncached; delta_cached; mh_uncached;
    mh_cached; infer_seq; infer_j2; infer_par; infer_j8; infer_tel;
    infer_ckpt; hmc_traj; rfd_engine; heap; topology ]

let estimate analysed =
  (* One test per Benchmark.all call, so the table has exactly one entry. *)
  Hashtbl.fold
    (fun _ result acc ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some (x :: _) -> Some x
      | Some [] | None -> acc)
    analysed None

let measure cfg test =
  let open Bechamel in
  let clock = Toolkit.Instance.monotonic_clock in
  let alloc = Toolkit.Instance.minor_allocated in
  let results = Benchmark.all cfg [ clock; alloc ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let time = estimate (Analyze.all ols clock results) in
  let words = estimate (Analyze.all ols alloc results) in
  (time, words)

let json_escape name =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length name) (String.get name)))

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      Printf.fprintf oc "  \"schema\": \"because-bench-kernels/1\",\n";
      Printf.fprintf oc "  \"quick\": %b,\n" Ctx.quick;
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun k row ->
          Printf.fprintf oc
            "    { \"name\": \"%s\", \"ns_per_run\": %.3f%s }%s\n"
            (json_escape row.name) row.ns_per_run
            (match row.minor_words with
            | Some w -> Printf.sprintf ", \"minor_words_per_run\": %.1f" w
            | None -> "")
            (if k = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n")

let speedup rows ~slow ~fast ~label =
  match
    ( List.find_opt (fun r -> r.name = slow) rows,
      List.find_opt (fun r -> r.name = fast) rows )
  with
  | Some s, Some f when f.ns_per_run > 0.0 ->
      Printf.printf "%-32s %11.2fx\n" label (s.ns_per_run /. f.ns_per_run)
  | _ -> ()

let overhead rows ~off ~on ~label =
  match
    ( List.find_opt (fun r -> r.name = off) rows,
      List.find_opt (fun r -> r.name = on) rows )
  with
  | Some o, Some n when o.ns_per_run > 0.0 ->
      Printf.printf "%-32s %+10.2f%%\n" label
        (((n.ns_per_run /. o.ns_per_run) -. 1.0) *. 100.0)
  | _ -> ()

let run () =
  Ctx.section "Kernel micro-benchmarks (Bechamel)";
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000
      ~quota:(Bechamel.Time.second 0.5) ~kde:None ()
  in
  let rows =
    List.filter_map
      (fun test ->
        let name =
          match Bechamel.Test.elements test with
          | [ e ] -> Bechamel.Test.Elt.name e
          | _ -> "?"
        in
        match measure cfg test with
        | Some ns, words ->
            (if ns > 1_000_000.0 then
               Printf.printf "%-32s %12.3f ms/run" name (ns /. 1e6)
             else if ns > 1_000.0 then
               Printf.printf "%-32s %12.3f µs/run" name (ns /. 1e3)
             else Printf.printf "%-32s %12.1f ns/run" name ns);
            (match words with
            | Some w -> Printf.printf " %14.0f w/run\n" w
            | None -> print_newline ());
            Some { name; ns_per_run = ns; minor_words = words }
        | None, _ ->
            Printf.printf "%-32s (no estimate)\n" name;
            None)
      (tests ())
  in
  speedup rows ~slow:"MH run 50 draws (uncached)" ~fast:"MH run 50 draws (cached)"
    ~label:"MH sweep cache speedup";
  speedup rows ~slow:"single-site delta (uncached)"
    ~fast:"single-site delta (cached)" ~label:"single-site delta speedup";
  speedup rows ~slow:"inference 4 chains (jobs=1)"
    ~fast:"inference 4 chains (jobs=2)" ~label:"inference jobs=2 speedup";
  speedup rows ~slow:"inference 4 chains (jobs=1)"
    ~fast:"inference 4 chains (jobs=4)" ~label:"inference jobs=4 speedup";
  speedup rows ~slow:"inference 4 chains (jobs=1)"
    ~fast:"inference 4 chains (jobs=8)" ~label:"inference jobs=8 speedup";
  overhead rows ~off:"inference 4 chains (jobs=1)"
    ~on:"inference 4 chains (jobs=1, telemetry)"
    ~label:"inference telemetry overhead";
  overhead rows ~off:"inference 4 chains (jobs=1)"
    ~on:"inference 4 chains (jobs=1, checkpoint)"
    ~label:"inference checkpoint overhead";
  write_json "BENCH_kernels.json" rows;
  Printf.printf "wrote BENCH_kernels.json (%d kernels)\n" (List.length rows)
