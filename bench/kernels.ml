(* Bechamel micro-benchmarks of the computational kernels. *)

open Because_bgp
module Sc = Because_scenario
module Ctx = Bench_context
module Rng = Because_stats.Rng

let make_dataset () =
  (* A representative tomography instance: ~120 nodes, ~600 paths. *)
  let rng = Rng.create 2024 in
  let observations =
    List.init 600 (fun _ ->
        let len = 3 + Rng.int rng 4 in
        let nodes =
          List.sort_uniq Int.compare
            (List.init len (fun _ -> 1 + Rng.int rng 120))
        in
        (List.map Asn.of_int nodes, Rng.float rng < 0.18))
  in
  Because.Tomography.of_observations observations

let tests () =
  let data = make_dataset () in
  let model = Because.Model.create data in
  let target = Because.Model.target model in
  let n = Because.Tomography.n_nodes data in
  let p = Array.init n (fun i -> 0.1 +. (0.8 *. float_of_int (i mod 7) /. 7.0)) in
  let rng = Rng.create 99 in
  let likelihood =
    Bechamel.Test.make ~name:"log-likelihood"
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Model.log_likelihood model p)))
  in
  let gradient =
    Bechamel.Test.make ~name:"gradient"
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Model.grad_log_posterior model p)))
  in
  let delta =
    Bechamel.Test.make ~name:"single-site delta"
      (Bechamel.Staged.stage (fun () ->
           ignore (Because.Model.delta_log_posterior model p 17 0.42)))
  in
  let mh_sweep =
    Bechamel.Test.make ~name:"MH run (50 draws)"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Because_mcmc.Metropolis.run_single_site ~rng:(Rng.copy rng)
                ~n_samples:50 ~burn_in:10 target)))
  in
  let hmc_traj =
    Bechamel.Test.make ~name:"HMC run (10 draws)"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Because_mcmc.Hmc.run ~rng:(Rng.copy rng) ~n_samples:10
                ~burn_in:5 ~leapfrog_steps:10 target)))
  in
  let rfd_engine =
    Bechamel.Test.make ~name:"RFD record+query"
      (Bechamel.Staged.stage (fun () ->
           let s = Rfd.create Rfd_params.cisco in
           for i = 0 to 19 do
             Rfd.record s ~now:(float_of_int i *. 60.0) Rfd.Withdrawal
           done;
           ignore (Rfd.suppressed s ~now:1300.0)))
  in
  let heap =
    Bechamel.Test.make ~name:"event heap 1k push/pop"
      (Bechamel.Staged.stage (fun () ->
           let h = Because_sim.Heap.create () in
           let local = Rng.create 7 in
           for _ = 1 to 1000 do
             Because_sim.Heap.push h ~time:(Rng.float local) ()
           done;
           while not (Because_sim.Heap.is_empty h) do
             ignore (Because_sim.Heap.pop h)
           done))
  in
  let topology =
    Bechamel.Test.make ~name:"topology generation (100 AS)"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Because_topology.Generate.generate (Rng.create 3)
                {
                  Because_topology.Generate.default_params with
                  n_transit = 20;
                  n_stub = 72;
                })))
  in
  [ likelihood; gradient; delta; mh_sweep; hmc_traj; rfd_engine; heap;
    topology ]

let run () =
  Ctx.section "Kernel micro-benchmarks (Bechamel)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (time :: _) ->
              if time > 1_000_000.0 then
                Printf.printf "%-32s %12.3f ms/run\n" name (time /. 1e6)
              else if time > 1_000.0 then
                Printf.printf "%-32s %12.3f µs/run\n" name (time /. 1e3)
              else Printf.printf "%-32s %12.1f ns/run\n" name time
          | Some [] | None -> Printf.printf "%-32s (no estimate)\n" name)
        analysed)
    (tests ())
