(* Shared, lazily computed state for all bench sections: the world is built
   once and the per-interval campaigns are cached, so running every section
   costs six simulations, not dozens.

   Set BECAUSE_BENCH_QUICK=1 for a smaller world and fewer cycles during
   development; the recorded bench_output.txt uses the full scale. *)

module Sc = Because_scenario

let quick =
  match Sys.getenv_opt "BECAUSE_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let world_params =
  if quick then
    {
      Sc.World.default_params with
      n_vantage_hosts = 25;
      topology =
        {
          Because_topology.Generate.default_params with
          n_transit = 30;
          n_stub = 100;
        };
    }
  else Sc.World.default_params

let world = lazy (Sc.World.build world_params)

let intervals_minutes = [ 1.0; 2.0; 3.0; 5.0; 10.0; 15.0 ]

let campaign_params interval_minutes =
  let p = Sc.Campaign.default_params ~update_interval:(interval_minutes *. 60.0) in
  if quick then { p with Sc.Campaign.cycles = 2 } else p

let cache : (float, Sc.Campaign.outcome) Hashtbl.t = Hashtbl.create 8

(* The paper ran two multi-prefix campaigns: March with 1/2/3-minute
   Beacons oscillating together, April with 5/10/15.  Each run simulates one
   of these and caches the three per-interval outcomes. *)
let run_campaign_batch intervals_minutes =
  let t0 = Unix.gettimeofday () in
  Printf.printf "[running campaign with %s-minute Beacons ...]\n%!"
    (String.concat "/" (List.map (Printf.sprintf "%.0f") intervals_minutes));
  let outcomes =
    Sc.Campaign.run_multi (Lazy.force world)
      (campaign_params (List.hd intervals_minutes))
      ~intervals:(List.map (fun m -> m *. 60.0) intervals_minutes)
  in
  (match outcomes with
  | first :: _ ->
      Printf.printf "[campaign done in %.0f s: %d deliveries, %d records]\n%!"
        (Unix.gettimeofday () -. t0)
        first.Sc.Campaign.deliveries
        (List.length first.Sc.Campaign.records)
  | [] -> ());
  List.iter2
    (fun minutes outcome -> Hashtbl.replace cache minutes outcome)
    intervals_minutes outcomes

let campaign interval_minutes =
  (match Hashtbl.find_opt cache interval_minutes with
  | Some _ -> ()
  | None ->
      if List.mem interval_minutes [ 1.0; 2.0; 3.0 ] then
        run_campaign_batch [ 1.0; 2.0; 3.0 ]
      else if List.mem interval_minutes [ 5.0; 10.0; 15.0 ] then
        run_campaign_batch [ 5.0; 10.0; 15.0 ]
      else run_campaign_batch [ interval_minutes ]);
  Hashtbl.find cache interval_minutes

let one_minute () = campaign 1.0

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let paper note = Printf.printf "paper: %s\n" note
