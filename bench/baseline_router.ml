(* The pre-flattening router hot path, kept verbatim as a measurement
   baseline for the sim bench: tuple-keyed polymorphic Hashtbls, list AS
   paths (O(n) length/equality), and per-update policy recomputation.
   Not used by the simulator — the flattened Because_bgp.Router is. *)

open Because_bgp

type neighbor = {
  neighbor_asn : Asn.t;
  relationship : Policy.relationship;
  mrai : float;
}

type config = {
  asn : Asn.t;
  neighbors : neighbor list;
  rfd_scope : Policy.rfd_scope;
  rfd_params : Rfd_params.t;
}

type best =
  | Origin of Update.aggregator option
  | Via of {
      from_asn : Asn.t;
      relationship : Policy.relationship;
      as_path : Asn.t list;
      aggregator : Update.aggregator option;
    }

type action =
  | Send of { to_asn : Asn.t; update : Update.t }
  | Set_reuse_timer of { neighbor : Asn.t; prefix : Prefix.t; at : float }
  | Set_mrai_timer of { neighbor : Asn.t; prefix : Prefix.t; at : float }
  | Feed of Update.t

type rib_in_entry = {
  in_path : Asn.t list;
  in_aggregator : Update.aggregator option;
}

type mrai_state = {
  mutable gate_until : float;  (* announcements blocked before this time *)
  mutable pending : bool;      (* a flush timer is armed *)
}

type t = {
  cfg : config;
  neighbor_of : (Asn.t, neighbor) Hashtbl.t;
  rib_in : (Asn.t * Prefix.t, rib_in_entry) Hashtbl.t;
  rfd : (Asn.t * Prefix.t, Rfd.t) Hashtbl.t;
  originated : (Prefix.t, Update.aggregator option) Hashtbl.t;
  loc_rib : (Prefix.t, best) Hashtbl.t;
  adj_out : (Asn.t * Prefix.t, Update.t) Hashtbl.t;  (* last update sent *)
  mrai : (Asn.t * Prefix.t, mrai_state) Hashtbl.t;
  last_feed : (Prefix.t, Update.t) Hashtbl.t;
}

let create cfg =
  let neighbor_of = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Asn.equal n.neighbor_asn cfg.asn then
        invalid_arg "Router.create: self-neighboring";
      if Hashtbl.mem neighbor_of n.neighbor_asn then
        invalid_arg "Router.create: duplicate neighbor";
      Hashtbl.replace neighbor_of n.neighbor_asn n)
    cfg.neighbors;
  {
    cfg;
    neighbor_of;
    rib_in = Hashtbl.create 64;
    rfd = Hashtbl.create 16;
    originated = Hashtbl.create 4;
    loc_rib = Hashtbl.create 16;
    adj_out = Hashtbl.create 64;
    mrai = Hashtbl.create 64;
    last_feed = Hashtbl.create 16;
  }

let asn t = t.cfg.asn
let config t = t.cfg

let neighbor_exn t asn_ =
  match Hashtbl.find_opt t.neighbor_of asn_ with
  | Some n -> n
  | None ->
      invalid_arg
        (Printf.sprintf "Router %s: %s is not a neighbor"
           (Asn.to_string t.cfg.asn) (Asn.to_string asn_))

let session_damps t neighbor =
  Policy.rfd_applies t.cfg.rfd_scope ~neighbor:neighbor.neighbor_asn
    ~relationship:neighbor.relationship

let rfd_state t ~neighbor ~prefix = Hashtbl.find_opt t.rfd (neighbor, prefix)

let rfd_state_ensure t neighbor prefix =
  let key = (neighbor, prefix) in
  match Hashtbl.find_opt t.rfd key with
  | Some s -> s
  | None ->
      let s = Rfd.create t.cfg.rfd_params in
      Hashtbl.replace t.rfd key s;
      s

let is_suppressing t ~now =
  Hashtbl.fold (fun _ s acc -> acc || Rfd.suppressed s ~now) t.rfd false

let best_route t prefix = Hashtbl.find_opt t.loc_rib prefix

(* ------------------------------------------------------------------ *)
(* Decision process                                                     *)

let path_length = List.length

let best_equal a b =
  match (a, b) with
  | Origin x, Origin y -> Update.aggregator_equal x y
  | Via x, Via y ->
      Asn.equal x.from_asn y.from_asn
      && List.length x.as_path = List.length y.as_path
      && List.for_all2 Asn.equal x.as_path y.as_path
      && Update.aggregator_equal x.aggregator y.aggregator
  | Origin _, Via _ | Via _, Origin _ -> false

let usable t ~now neighbor prefix =
  match Hashtbl.find_opt t.rib_in (neighbor.neighbor_asn, prefix) with
  | None -> None
  | Some entry -> (
      match rfd_state t ~neighbor:neighbor.neighbor_asn ~prefix with
      | Some s when Rfd.suppressed s ~now -> None
      | Some _ | None -> Some entry)

let decide t ~now prefix =
  match Hashtbl.find_opt t.originated prefix with
  | Some aggregator -> Some (Origin aggregator)
  | None ->
      let better cand incumbent =
        match incumbent with
        | None -> true
        | Some (Via inc) ->
            let c_pref = Policy.local_pref cand.relationship in
            let i_pref = Policy.local_pref inc.relationship in
            if c_pref <> i_pref then c_pref > i_pref
            else begin
              let c_len =
                path_length
                  (match
                     Hashtbl.find_opt t.rib_in (cand.neighbor_asn, prefix)
                   with
                  | Some e -> e.in_path
                  | None -> [])
              in
              let i_len = path_length inc.as_path in
              if c_len <> i_len then c_len < i_len
              else Asn.compare cand.neighbor_asn inc.from_asn < 0
            end
        | Some (Origin _) -> false
      in
      List.fold_left
        (fun acc n ->
          match usable t ~now n prefix with
          | None -> acc
          | Some entry ->
              if better n acc then
                Some
                  (Via
                     {
                       from_asn = n.neighbor_asn;
                       relationship = n.relationship;
                       as_path = entry.in_path;
                       aggregator = entry.in_aggregator;
                     })
              else acc)
        None t.cfg.neighbors

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

let export_update t prefix = function
  | Origin aggregator ->
      Update.Announce { prefix; as_path = [ t.cfg.asn ]; aggregator }
  | Via { as_path; aggregator; _ } ->
      Update.Announce { prefix; as_path = t.cfg.asn :: as_path; aggregator }

(* The desired adj-out state towards neighbor [m] for [prefix], or None when
   nothing should be advertised. *)
let desired_towards t prefix best m =
  match best with
  | None -> None
  | Some (Origin _ as b) -> Some (export_update t prefix b)
  | Some (Via v as b) ->
      if Asn.equal v.from_asn m.neighbor_asn then None (* split horizon *)
      else if
        Policy.export_ok ~learned_from:(Some v.relationship)
          ~towards:m.relationship
      then Some (export_update t prefix b)
      else None

let mrai_state_of t key =
  match Hashtbl.find_opt t.mrai key with
  | Some s -> s
  | None ->
      let s = { gate_until = 0.0; pending = false } in
      Hashtbl.replace t.mrai key s;
      s

(* Push the desired state towards [m], respecting MRAI for announcements.
   Returns actions. *)
let sync_neighbor t ~now prefix best m =
  let key = (m.neighbor_asn, prefix) in
  let previously = Hashtbl.find_opt t.adj_out key in
  let desired = desired_towards t prefix best m in
  let already_withdrawn =
    match previously with
    | None -> true
    | Some (Update.Withdraw _) -> true
    | Some (Update.Announce _) -> false
  in
  match desired with
  | None ->
      if already_withdrawn then []
      else begin
        (* Withdrawals bypass MRAI (RFC 4271 §9.2.1.1). *)
        let w = Update.Withdraw { prefix } in
        Hashtbl.replace t.adj_out key w;
        [ Send { to_asn = m.neighbor_asn; update = w } ]
      end
  | Some u ->
      let same =
        match previously with Some p -> Update.equal p u | None -> false
      in
      if same then []
      else begin
        let ms = mrai_state_of t key in
        if m.mrai <= 0.0 || now >= ms.gate_until then begin
          ms.gate_until <- now +. m.mrai;
          Hashtbl.replace t.adj_out key u;
          [ Send { to_asn = m.neighbor_asn; update = u } ]
        end
        else if ms.pending then []
        else begin
          ms.pending <- true;
          [ Set_mrai_timer
              { neighbor = m.neighbor_asn; prefix; at = ms.gate_until } ]
        end
      end

let feed_action t prefix best =
  let observation =
    match best with
    | Some b -> export_update t prefix b
    | None -> Update.Withdraw { prefix }
  in
  let same =
    match Hashtbl.find_opt t.last_feed prefix with
    | Some prev -> Update.equal prev observation
    | None ->
        (* A withdraw for a never-announced prefix is not an observation. *)
        not (Update.is_announce observation)
  in
  if same then []
  else begin
    Hashtbl.replace t.last_feed prefix observation;
    [ Feed observation ]
  end

let reconsider t ~now prefix =
  let old_best = Hashtbl.find_opt t.loc_rib prefix in
  let new_best = decide t ~now prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b -> not (best_equal a b)
    | None, Some _ | Some _, None -> true
  in
  if not changed then []
  else begin
    (match new_best with
    | Some b -> Hashtbl.replace t.loc_rib prefix b
    | None -> Hashtbl.remove t.loc_rib prefix);
    let exports =
      List.concat_map (sync_neighbor t ~now prefix new_best) t.cfg.neighbors
    in
    exports @ feed_action t prefix new_best
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let classify_rfd_event existing update =
  match (update, existing) with
  | Update.Withdraw _, Some _ -> Some Rfd.Withdrawal
  | Update.Withdraw _, None -> None (* spurious withdrawal: no penalty *)
  | Update.Announce _, None -> Some Rfd.Readvertisement
  | Update.Announce a, Some (old : rib_in_entry) ->
      let same_path =
        List.length a.as_path = List.length old.in_path
        && List.for_all2 Asn.equal a.as_path old.in_path
      in
      let same_aggregator =
        Update.aggregator_equal a.aggregator old.in_aggregator
      in
      if same_path && same_aggregator then None (* exact duplicate *)
      else Some Rfd.Attribute_change

let handle_update t ~now ~from update =
  let nb = neighbor_exn t from in
  let prefix = Update.prefix update in
  let key = (from, prefix) in
  let existing = Hashtbl.find_opt t.rib_in key in
  (* Loop prevention: an announcement containing our own ASN is rejected,
     which for RIB purposes equals a withdrawal of that session's route. *)
  let update =
    if Update.path_contains t.cfg.asn update then Update.Withdraw { prefix }
    else update
  in
  let timer_actions =
    if session_damps t nb then begin
      match classify_rfd_event existing update with
      | None -> []
      | Some event ->
          let state = rfd_state_ensure t from prefix in
          let was = Rfd.suppressed state ~now in
          Rfd.record state ~now event;
          let is_now = Rfd.suppressed state ~now in
          if is_now && not was then begin
            match Rfd.reuse_eta state ~now with
            | Some at -> [ Set_reuse_timer { neighbor = from; prefix; at } ]
            | None -> []
          end
          else []
    end
    else []
  in
  (match update with
  | Update.Withdraw _ -> Hashtbl.remove t.rib_in key
  | Update.Announce a ->
      Hashtbl.replace t.rib_in key
        { in_path = a.as_path; in_aggregator = a.aggregator });
  timer_actions @ reconsider t ~now prefix

let originate t ~now ?aggregator prefix =
  Hashtbl.replace t.originated prefix aggregator;
  reconsider t ~now prefix

let withdraw_origin t ~now prefix =
  Hashtbl.remove t.originated prefix;
  reconsider t ~now prefix

let handle_reuse_check t ~now ~neighbor ~prefix =
  match rfd_state t ~neighbor ~prefix with
  | None -> []
  | Some state ->
      if Rfd.suppressed state ~now then begin
        (* Penalty grew since the timer was set: re-arm. *)
        match Rfd.reuse_eta state ~now with
        | Some at when at > now -> [ Set_reuse_timer { neighbor; prefix; at } ]
        | Some _ | None -> []
      end
      else reconsider t ~now prefix

let handle_session_down t ~now ~neighbor =
  let (_ : neighbor) = neighbor_exn t neighbor in
  (* Routes learned on the session are gone: clear the adj-RIB-in ... *)
  let affected =
    Hashtbl.fold
      (fun (from, prefix) _ acc ->
        if Asn.equal from neighbor then prefix :: acc else acc)
      t.rib_in []
    |> List.sort_uniq Prefix.compare
  in
  List.iter (fun prefix -> Hashtbl.remove t.rib_in (neighbor, prefix)) affected;
  (* ... and forget what we advertised over it, together with its MRAI
     state — a re-established session starts from an empty adj-RIB-out. *)
  let sent =
    Hashtbl.fold
      (fun (to_asn, prefix) _ acc ->
        if Asn.equal to_asn neighbor then prefix :: acc else acc)
      t.adj_out []
  in
  List.iter (fun prefix -> Hashtbl.remove t.adj_out (neighbor, prefix)) sent;
  let gated =
    Hashtbl.fold
      (fun (to_asn, prefix) _ acc ->
        if Asn.equal to_asn neighbor then prefix :: acc else acc)
      t.mrai []
  in
  List.iter (fun prefix -> Hashtbl.remove t.mrai (neighbor, prefix)) gated;
  (* Path re-exploration: every prefix routed via the dead session is
     reconsidered, producing withdrawals or failover announcements
     downstream. *)
  List.concat_map (reconsider t ~now) affected

let handle_session_up t ~now ~neighbor =
  let nb = neighbor_exn t neighbor in
  (* The peer's RIB is empty after the reset: re-advertise the current
     loc-RIB from scratch, subject to the usual export policy. *)
  let prefixes =
    Hashtbl.fold (fun prefix _ acc -> prefix :: acc) t.loc_rib []
    |> List.sort_uniq Prefix.compare
  in
  List.concat_map
    (fun prefix ->
      Hashtbl.remove t.adj_out (neighbor, prefix);
      Hashtbl.remove t.mrai (neighbor, prefix);
      let best = Hashtbl.find_opt t.loc_rib prefix in
      sync_neighbor t ~now prefix best nb)
    prefixes

let handle_mrai_expiry t ~now ~neighbor ~prefix =
  let nb = neighbor_exn t neighbor in
  let key = (neighbor, prefix) in
  let ms = mrai_state_of t key in
  ms.pending <- false;
  ms.gate_until <- Float.min ms.gate_until now;
  let best = Hashtbl.find_opt t.loc_rib prefix in
  sync_neighbor t ~now prefix best nb
