(* Reproductions of the paper's figures, printed as the rows/series each
   figure plots. *)

open Because_bgp
module Sc = Because_scenario
module Ctx = Bench_context
module Ecdf = Because_stats.Ecdf
module Histogram = Because_stats.Histogram

(* ------------------------------------------------------------------ *)

let fig2 () =
  Ctx.section "Fig. 2 — RFD penalty evolution at a router";
  Ctx.paper
    "penalty rises by 1000 per update, decays with the half-life; the \
     prefix is suppressed above the suppress threshold and released at the \
     reuse threshold once oscillation stops";
  let params = Rfd_params.cisco in
  let state = Rfd.create params in
  (* Oscillate W/A every 2 minutes for 40 minutes (t0..t2), then silence.
     Events are applied as the sampled clock passes them — querying the
     penalty in the past of the decayed state would be meaningless. *)
  let oscillation_end = 2400.0 in
  Printf.printf "%-8s %10s  %s   (suppress=%.0f reuse=%.0f)\n" "t(min)"
    "penalty" "state" params.Rfd_params.suppress_threshold
    params.Rfd_params.reuse_threshold;
  let suppressed_at = ref None and released_at = ref None in
  let next_event = ref 0.0 and withdraw = ref true in
  for minute = 0 to 90 do
    let now = float_of_int minute *. 60.0 in
    while !next_event <= now && !next_event < oscillation_end do
      Rfd.record state ~now:!next_event
        (if !withdraw then Rfd.Withdrawal else Rfd.Readvertisement);
      withdraw := not !withdraw;
      next_event := !next_event +. 120.0
    done;
    let penalty = Rfd.penalty state ~now in
    let suppressed = Rfd.suppressed state ~now in
    (match (!suppressed_at, suppressed) with
    | None, true -> suppressed_at := Some minute
    | _ -> ());
    (match (!suppressed_at, !released_at, suppressed) with
    | Some _, None, false when now > 0.0 -> released_at := Some minute
    | _ -> ());
    if minute mod 3 = 0 || minute < 8 then
      Printf.printf "%-8d %10.0f  %s\n" minute penalty
        (if suppressed then "SUPPRESSED" else "announced")
  done;
  (match (!suppressed_at, !released_at) with
  | Some t1, Some t3 ->
      Printf.printf
        "t1 (suppression) = %d min, t2 (oscillation stops) = %.0f min, t3 \
         (release) = %d min\n"
        t1 (oscillation_end /. 60.0) t3
  | _ -> print_endline "warning: suppression cycle incomplete")

(* ------------------------------------------------------------------ *)

let fig5 () =
  Ctx.section "Fig. 5 — Beacon pattern vs the observed RFD signature";
  Ctx.paper
    "on an RFD path the Burst updates are damped away and a delayed \
     re-advertisement (r-delta) follows in the Break; a non-RFD path \
     mirrors the Beacon pattern";
  let outcome = Ctx.one_minute () in
  let best_by want_rfd =
    List.fold_left
      (fun acc (lp : Because_labeling.Label.labeled_path) ->
        if lp.Because_labeling.Label.rfd <> want_rfd then acc
        else begin
          let strength =
            if want_rfd then lp.Because_labeling.Label.matched_pairs
            else lp.Because_labeling.Label.total_pairs
          in
          match acc with
          | Some (best, _) when best >= strength -> acc
          | _ -> Some (strength, lp)
        end)
      None outcome.Sc.Campaign.labeled
    |> Option.map snd
  in
  let damped = best_by true in
  let clean = best_by false in
  let show kind (lp : Because_labeling.Label.labeled_path) =
    Printf.printf "%s path: %s\n" kind
      (String.concat " " (List.map Asn.to_string lp.Because_labeling.Label.path));
    List.iteri
      (fun i (p : Because_labeling.Signature.pair) ->
        Printf.printf
          "  pair %d: burst [%5.0f..%5.0f] min, %3d updates seen, %s\n"
          i
          (p.Because_labeling.Signature.burst_start /. 60.0)
          (p.Because_labeling.Signature.burst_end /. 60.0)
          p.Because_labeling.Signature.burst_updates
          (match p.Because_labeling.Signature.r_delta with
          | Some d -> Printf.sprintf "re-advertisement with r-delta = %.1f min" (d /. 60.0)
          | None -> "no re-advertisement (clean)")
      )
      lp.Because_labeling.Label.pairs
  in
  (match damped with
  | Some lp -> show "RFD" lp
  | None -> print_endline "no damped path in this campaign");
  match clean with
  | Some lp -> show "non-RFD" lp
  | None -> print_endline "no clean path in this campaign"

(* ------------------------------------------------------------------ *)

let fig6 () =
  Ctx.section "Fig. 6 — similarity of links on AS paths between Beacon sites";
  Ctx.paper
    "70-95% of all AS links are observable from a single site; using all \
     sites raises the median paths-per-link from 3 to 11";
  let outcome = Ctx.one_minute () in
  let coverage, total = Sc.Report.site_link_coverage outcome in
  Printf.printf "distinct AS links observed across all sites: %d\n" total;
  List.iter
    (fun (c : Sc.Report.link_coverage) ->
      Printf.printf "site %d: %4d links = %5.1f%% of all\n"
        c.Sc.Report.site_id c.Sc.Report.links_seen
        (100.0 *. c.Sc.Report.share_of_all))
    coverage;
  Printf.printf "median paths per link, single busiest site: %.0f\n"
    (Sc.Report.paths_per_link_median outcome ~all_sites:false);
  Printf.printf "median paths per link, all sites:           %.0f\n"
    (Sc.Report.paths_per_link_median outcome ~all_sites:true)

(* ------------------------------------------------------------------ *)

let fig7 () =
  Ctx.section "Fig. 7 — overlap of gathered data between collector projects";
  Ctx.paper
    "each route-collector project contributes a substantial amount of \
     additional links, which is why all three are used";
  let outcome = Ctx.one_minute () in
  let o = Sc.Report.project_overlap outcome in
  Printf.printf "links in the union of all projects: %d\n" o.Sc.Report.total;
  List.iter
    (fun (p, n) ->
      Printf.printf "%-12s sees %4d links (%.1f%% of union)\n"
        (Because_collector.Project.name p)
        n
        (100.0 *. float_of_int n /. float_of_int (max 1 o.Sc.Report.total)))
    o.Sc.Report.per_project;
  List.iter
    (fun ((p1, p2), n) ->
      Printf.printf "%-12s ∩ %-12s = %4d\n"
        (Because_collector.Project.name p1)
        (Because_collector.Project.name p2)
        n)
    o.Sc.Report.pairwise;
  Printf.printf "all three projects: %d\n" o.Sc.Report.all_three

(* ------------------------------------------------------------------ *)

let fig8 () =
  Ctx.section "Fig. 8 — propagation times: RIPE-style Beacons vs RFD anchors";
  Ctx.paper
    "both Beacon sets show the same characteristics; RouteViews vantage \
     points export almost exactly 50 s after the Beacon send";
  let outcome = Ctx.one_minute () in
  let samples = Sc.Campaign.propagation_samples outcome ~role:`Anchor in
  if Array.length samples = 0 then print_endline "no anchor samples"
  else begin
    (* Split the anchor fleet in two — the even sites play the RIPE
       reference role; both halves run identical mechanics, reproducing the
       paper's overlap. *)
    let by_site role =
      let wanted =
        List.filter_map
          (fun (s : Because_beacon.Site.t) ->
            if (s.Because_beacon.Site.site_id mod 2 = 0) = role then
              Because_beacon.Site.anchor_prefix s
            else None)
          outcome.Sc.Campaign.sites
      in
      let set = Prefix.Set.of_list wanted in
      List.filter_map
        (fun (r : Because_collector.Dump.record) ->
          let p = Update.prefix r.Because_collector.Dump.update in
          if Prefix.Set.mem p set then
            match Update.aggregator r.Because_collector.Dump.update with
            | Some { sent_at; valid = true; _ } ->
                let d = r.Because_collector.Dump.export_at -. sent_at in
                if d >= 0.0 && d < 300.0 then Some d else None
            | _ -> None
          else None)
        outcome.Sc.Campaign.records
    in
    let print_cdf name samples =
      match samples with
      | [] -> Printf.printf "%s: no samples\n" name
      | _ ->
          let e = Ecdf.of_array (Array.of_list samples) in
          Printf.printf "%s (n=%d):\n" name (List.length samples);
          List.iter
            (fun q ->
              Printf.printf "  p%02.0f = %5.1f s\n" (q *. 100.0)
                (Ecdf.quantile e q))
            [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]
    in
    print_cdf "RIPE-style reference Beacons" (by_site true);
    print_cdf "RFD anchor prefixes" (by_site false);
    (* Per-project medians reproduce the collector-dependent behaviour. *)
    List.iter
      (fun project ->
        let ds =
          List.filter_map
            (fun (r : Because_collector.Dump.record) ->
              let vp = r.Because_collector.Dump.vp in
              if
                Because_collector.Project.equal
                  vp.Because_collector.Vantage.project project
                && Prefix.Set.mem
                     (Update.prefix r.Because_collector.Dump.update)
                     outcome.Sc.Campaign.anchors
              then
                match Update.aggregator r.Because_collector.Dump.update with
                | Some { sent_at; valid = true; _ } ->
                    let d = r.Because_collector.Dump.export_at -. sent_at in
                    if d >= 0.0 && d < 300.0 then Some d else None
                | _ -> None
              else None)
            outcome.Sc.Campaign.records
        in
        match ds with
        | [] -> ()
        | _ ->
            Printf.printf "%-12s median send-to-export: %5.1f s\n"
              (Because_collector.Project.name project)
              (Because_stats.Summary.median (Array.of_list ds)))
      Because_collector.Project.all
  end

(* ------------------------------------------------------------------ *)

let fig9 () =
  Ctx.section "Fig. 9 — archetype marginal posterior distributions";
  Ctx.paper
    "(a) mass at 1: damping; (b) mass at 0: not damping; (c) spread at low \
     mean: inconsistent damping; (d) prior recovered: no usable data";
  let outcome = Ctx.one_minute () in
  let archetypes = Sc.Report.archetypes (Lazy.force Ctx.world) outcome in
  List.iter
    (fun (a : Sc.Report.archetype) ->
      let m = a.Sc.Report.marginal in
      let h =
        Histogram.of_array ~lo:0.0 ~hi:1.0 ~bins:25
          m.Because.Posterior.samples
      in
      Printf.printf "%s — %s\n" a.Sc.Report.label
        (Asn.to_string m.Because.Posterior.asn);
      Printf.printf "  mean=%.3f  95%% HDPI=[%.2f, %.2f]  %s\n"
        m.Because.Posterior.mean m.Because.Posterior.hdpi.lo
        m.Because.Posterior.hdpi.hi
        (Format.asprintf "%a" Because.Categorize.pp a.Sc.Report.category);
      Printf.printf "  p: 0%% %s 100%%\n" (Histogram.sparkline h))
    archetypes

(* ------------------------------------------------------------------ *)

let fig10 () =
  Ctx.section "Fig. 10 — announcement distribution across a Burst";
  Ctx.paper
    "a damping AS forwards fewer announcements towards the end of a Burst; \
     the regression over 40 bins separates RFD from non-RFD ASs";
  let outcome = Ctx.one_minute () in
  let world = Lazy.force Ctx.world in
  let histograms =
    Because_heuristics.Burst_slope.histograms
      ~records:outcome.Sc.Campaign.records
      ~windows_of:(Sc.Campaign.windows_of outcome)
  in
  let dampers =
    Sc.Deployment.detectable_dampers (Sc.World.deployment world)
  in
  let pick wanted =
    Asn.Map.fold
      (fun asn h acc ->
        let is_damper = Asn.Set.mem asn dampers in
        let volume = Array.fold_left ( +. ) 0.0 h in
        match acc with
        | Some (_, best_volume, _) when best_volume >= volume -> acc
        | _ when is_damper = wanted -> Some (asn, volume, h)
        | _ -> acc)
      histograms None
  in
  let show kind = function
    | Some (asn, _, h) ->
        let fit = Because_stats.Regression.fit_heights h in
        let score = Because_heuristics.Burst_slope.score_of_histogram h in
        Printf.printf "%s AS (%s): slope=%.2f announcements/bin, score=%.2f\n"
          kind (Asn.to_string asn) fit.Because_stats.Regression.slope score;
        let hist =
          Histogram.of_array ~lo:0.0
            ~hi:(float_of_int (Array.length h))
            ~bins:(Array.length h)
            (Array.concat
               (Array.to_list
                  (Array.mapi
                     (fun i c ->
                       Array.make (int_of_float c) (float_of_int i +. 0.5))
                     h)))
        in
        Printf.printf "  burst bins: %s\n" (Histogram.sparkline hist)
    | None -> Printf.printf "%s AS: none found\n" kind
  in
  show "RFD" (pick true);
  show "non-RFD" (pick false)

(* ------------------------------------------------------------------ *)

let fig11 () =
  Ctx.section "Fig. 11 — posterior mean vs certainty scatter (the U shape)";
  Ctx.paper
    "confident non-dampers top-left, confident dampers top-right, \
     data-starved ASs at the low-certainty base; cut-offs at 0.3/0.7";
  let outcome = Ctx.one_minute () in
  let points = Sc.Report.scatter outcome in
  (* A 20x10 text raster; cells show the dominant category digit. *)
  let columns = 20 and rows = 10 in
  let grid = Array.make_matrix rows columns ' ' in
  List.iter
    (fun (p : Sc.Report.scatter_point) ->
      let column =
        Stdlib.min (columns - 1) (int_of_float (p.Sc.Report.mean *. float_of_int columns))
      in
      let row =
        Stdlib.min (rows - 1)
          (int_of_float (p.Sc.Report.certainty *. float_of_int rows))
      in
      let digit =
        Char.chr (Char.code '0' + Because.Categorize.to_int p.Sc.Report.category)
      in
      grid.(row).(column) <- digit)
    points;
  Printf.printf "certainty ↑ (cell = a present category)\n";
  for row = rows - 1 downto 0 do
    Printf.printf "%4.1f |%s|\n"
      (float_of_int (row + 1) /. float_of_int rows)
      (String.init columns (fun c -> grid.(row).(c)))
  done;
  Printf.printf "      0.0 %s mean p̄ %s 1.0  (cut-offs at 0.3 / 0.7)\n"
    (String.make 3 ' ') (String.make 3 ' ');
  (* Quadrant counts confirm the U shape. *)
  let count f = List.length (List.filter f points) in
  let top_left =
    count (fun p -> p.Sc.Report.mean < 0.3 && p.Sc.Report.certainty > 0.5)
  in
  let top_right =
    count (fun p -> p.Sc.Report.mean > 0.7 && p.Sc.Report.certainty > 0.5)
  in
  let low_base = count (fun p -> p.Sc.Report.certainty <= 0.5) in
  Printf.printf
    "U shape: %d confident non-dampers (top-left), %d confident dampers \
     (top-right), %d low-certainty base\n"
    top_left top_right low_base

(* ------------------------------------------------------------------ *)

let fig12 () =
  Ctx.section "Fig. 12 — share of damping ASs per update interval";
  Ctx.paper
    "deprecated vendor defaults damp up to the 5-minute interval; \
     recommended parameters only at 1-3 minutes; almost nothing at 10/15";
  let outcomes = List.map Ctx.campaign Ctx.intervals_minutes in
  let shares = Sc.Report.interval_shares outcomes in
  Printf.printf "%-10s %12s %12s %10s\n" "interval" "consistent"
    "+inconsistent" "share";
  List.iter
    (fun (s : Sc.Report.interval_share) ->
      Printf.printf "%7.0fmin %12d %12d %9.1f%%\n"
        (s.Sc.Report.interval /. 60.0)
        s.Sc.Report.consistent s.Sc.Report.with_promotions
        (100.0 *. float_of_int s.Sc.Report.with_promotions
        /. float_of_int (max 1 s.Sc.Report.measured)))
    shares;
  match shares with
  | first :: _ ->
      Printf.printf "(ASs measured in all %d campaigns: %d)\n"
        (List.length shares) first.Sc.Report.measured
  | [] -> ()

(* ------------------------------------------------------------------ *)

let fig13 () =
  Ctx.section "Fig. 13 — CDF of re-advertisement delta (max-suppress-times)";
  Ctx.paper
    "plateaus at 10, 30 and 60 minutes expose the configured \
     max-suppress-times; r-delta rarely exceeds 60 minutes";
  let outcome = Ctx.one_minute () in
  let deltas = Sc.Report.damped_path_r_deltas outcome in
  if Array.length deltas = 0 then print_endline "no damped paths"
  else begin
    let minutes = Array.map (fun d -> d /. 60.0) deltas in
    let e = Ecdf.of_array minutes in
    Printf.printf "damped paths: %d\n" (Array.length minutes);
    List.iter
      (fun x -> Printf.printf "  F(%5.1f min) = %4.2f\n" x (Ecdf.eval e x))
      [ 5.0; 9.0; 11.0; 20.0; 25.0; 29.0; 31.0; 45.0; 55.0; 61.0; 70.0 ];
    List.iter
      (fun m ->
        Printf.printf "mass within ±3 min of %2.0f min: %4.1f%%\n" m
          (100.0 *. Sc.Report.plateau_mass deltas ~minutes:m ~tolerance:3.0))
      [ 10.0; 30.0; 60.0 ];
    Printf.printf "share above 65 min: %4.1f%%\n"
      (100.0
      *. float_of_int
           (Array.length (Array.of_list (List.filter (fun d -> d > 65.0) (Array.to_list minutes))))
      /. float_of_int (Array.length minutes))
  end
