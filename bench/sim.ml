(* Simulator throughput and router hot-path benchmarks.

   Two measurements back the sharded-simulation work:

   - end-to-end campaign simulation throughput (events/second) through
     [Sharded.run] at jobs=1 and jobs=4 over the same recorded script, so
     the domain-parallel speedup is visible on multi-core runners (on a
     single-core machine jobs=4 is expected to tie or lose slightly to the
     sequential run);
   - the router hot path in isolation: ns per [handle_update] for the
     flattened router against [Baseline_router], the pre-flattening
     tuple-keyed implementation kept as a measurement reference.

   Results go to stdout and BENCH_sim.json (CI artifact, like
   BENCH_kernels.json). *)

open Because_bgp
module Sc = Because_scenario
module Ctx = Bench_context
module Rng = Because_stats.Rng
module Dist = Because_stats.Dist
module Script = Because_sim.Script
module Sharded = Because_sim.Sharded
module Schedule = Because_beacon.Schedule
module Site = Because_beacon.Site

(* The same stimulus Campaign.run_multi records for a one-interval
   fault-free campaign: Beacon sites plus exponential background churn. *)
let build_script world (p : Sc.Campaign.params) ~churn_prefixes =
  let schedule =
    Schedule.of_durations ~lead_in:p.Sc.Campaign.lead_in
      ~update_interval:p.Sc.Campaign.update_interval
      ~burst_duration:p.Sc.Campaign.burst_duration
      ~break_duration:p.Sc.Campaign.break_duration ~cycles:p.Sc.Campaign.cycles
      ()
  in
  let campaign_end =
    Schedule.end_time schedule +. p.Sc.Campaign.break_duration +. 600.0
  in
  let anchor_cycles =
    1
    + int_of_float
        (Float.ceil (campaign_end /. (2.0 *. p.Sc.Campaign.anchor_period)))
  in
  let script = Script.create () in
  List.iter
    (fun (site_id, origin) ->
      let site =
        Site.make ~site_id ~origin ~anchor_period:p.Sc.Campaign.anchor_period
          ~anchor_cycles ~oscillating:[ schedule ] ()
      in
      Site.install site script)
    (Sc.World.site_origins world);
  let rng = Sc.World.fresh_rng world ~salt:4242 in
  let origins =
    List.fold_left
      (fun acc (_, o) -> Asn.Set.add o acc)
      Asn.Set.empty
      (Sc.World.site_origins world)
  in
  let candidates =
    Array.of_list
      (List.filter
         (fun a -> not (Asn.Set.mem a origins))
         (Because_topology.Graph.ases (Sc.World.graph world)))
  in
  let mean_gap = p.Sc.Campaign.background_mean_gap in
  for k = 0 to churn_prefixes - 1 do
    let origin = Rng.choice rng candidates in
    let prefix =
      (* Same formula as Campaign.schedule_background: /24s growing upward
         from 172.16.0.0. *)
      Prefix.make
        (Int32.add 0xAC100000l (Int32.shift_left (Int32.of_int k) 8))
        24
    in
    Script.announce script ~time:0.0 ~origin prefix;
    let t = ref (Dist.exponential rng ~rate:(1.0 /. mean_gap)) in
    let announced = ref true in
    while !t < campaign_end do
      if !announced then Script.withdraw script ~time:!t ~origin prefix
      else Script.announce script ~time:!t ~origin prefix;
      announced := not !announced;
      t := !t +. Dist.exponential rng ~rate:(1.0 /. mean_gap)
    done
  done;
  (script, campaign_end)

(* Best-of-N replays per row.  A single 3-second replay on a shared runner
   has a ~±10% noise floor — more than the paired overhead rows are trying
   to resolve — so each row takes the fastest of [reps] runs, and every
   replay starts from a compacted heap so no row inherits the major heap its
   predecessors grew. *)
(* [make_checkpoint] is a thunk so each rep gets a fresh store — otherwise
   rep 2 would find rep 1's saved shards and resume instead of simulate. *)
let time_run world ~jobs ?(telemetry = Because_telemetry.Registry.disabled)
    ?make_checkpoint ~until script =
  let reps = if Ctx.quick then 2 else 3 in
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let checkpoint = Option.map (fun f -> f ()) make_checkpoint in
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let r =
      Sharded.run ~telemetry ~jobs ?checkpoint
        ~configs:(Sc.World.router_configs world)
        ~delay:(Sc.World.delay world)
        ~monitored:(Sc.World.monitored world)
        ~until script
    in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* Router hot path: one router with a dozen sessions absorbing a fixed
   randomized stream of announcements and withdrawals over 64 prefixes,
   with internet-realistic 6-hop AS paths.  The same stream drives both
   implementations; the run is long enough that [create] is noise. *)

let n_hot_updates = 8000

let hot_neighbor_asns = List.init 12 (fun i -> Asn.of_int (10 + i))

let hot_steps () =
  let rng = Rng.create 42 in
  let neighbors = Array.of_list hot_neighbor_asns in
  let prefixes =
    Array.init 64 (fun k -> Prefix.beacon ~site:(k / 4) ~slot:(k mod 4))
  in
  List.init n_hot_updates (fun i ->
      let from = neighbors.(Rng.int rng (Array.length neighbors)) in
      let prefix = prefixes.(Rng.int rng (Array.length prefixes)) in
      let now = float_of_int i *. 0.5 in
      let update =
        if Rng.float rng < 0.7 then
          Update.Announce
            {
              prefix;
              as_path =
                (from
                :: List.init 4 (fun _ -> Asn.of_int (100 + Rng.int rng 40)))
                @ [ Asn.of_int 65001 ];
              aggregator = None;
            }
        else Update.Withdraw { prefix }
      in
      (now, from, update))

let hot_relationship i =
  (* A mix of customers, peers and providers so export policy is exercised. *)
  match i mod 3 with
  | 0 -> Policy.Customer
  | 1 -> Policy.Peer
  | _ -> Policy.Provider

let flattened_config =
  {
    Router.asn = Asn.of_int 1;
    neighbors =
      List.mapi
        (fun i a ->
          { Router.neighbor_asn = a; relationship = hot_relationship i;
            mrai = 0.0 })
        hot_neighbor_asns;
    rfd_scope = Policy.All_neighbors;
    rfd_params = Rfd_params.cisco;
  }

let baseline_config =
  {
    Baseline_router.asn = Asn.of_int 1;
    neighbors =
      List.mapi
        (fun i a ->
          { Baseline_router.neighbor_asn = a; relationship = hot_relationship i;
            mrai = 0.0 })
        hot_neighbor_asns;
    rfd_scope = Policy.All_neighbors;
    rfd_params = Rfd_params.cisco;
  }

let router_tests () =
  let steps = hot_steps () in
  let flattened =
    Bechamel.Test.make ~name:"router 1k updates (flattened)"
      (Bechamel.Staged.stage (fun () ->
           let r = Router.create flattened_config in
           List.iter
             (fun (now, from, u) -> ignore (Router.handle_update r ~now ~from u))
             steps))
  in
  let baseline =
    Bechamel.Test.make ~name:"router 1k updates (baseline)"
      (Bechamel.Staged.stage (fun () ->
           let r = Baseline_router.create baseline_config in
           List.iter
             (fun (now, from, u) ->
               ignore (Baseline_router.handle_update r ~now ~from u))
             steps))
  in
  [ flattened; baseline ]

type row =
  | Throughput of {
      name : string;
      jobs : int;
      events : int;
      seconds : float;
      events_per_sec : float;
    }
  | Hot_path of { name : string; ns_per_update : float }

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      Printf.fprintf oc "  \"schema\": \"because-bench-sim/1\",\n";
      Printf.fprintf oc "  \"quick\": %b,\n" Ctx.quick;
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun k row ->
          (match row with
          | Throughput { name; jobs; events; seconds; events_per_sec } ->
              Printf.fprintf oc
                "    { \"name\": \"%s\", \"kind\": \"throughput\", \"jobs\": \
                 %d, \"events\": %d, \"seconds\": %.3f, \"events_per_sec\": \
                 %.1f }"
                (Kernels.json_escape name) jobs events seconds events_per_sec
          | Hot_path { name; ns_per_update } ->
              Printf.fprintf oc
                "    { \"name\": \"%s\", \"kind\": \"router\", \
                 \"ns_per_update\": %.2f }"
                (Kernels.json_escape name) ns_per_update);
          output_string oc (if k = List.length rows - 1 then "\n" else ",\n"))
        rows;
      output_string oc "  ]\n}\n")

let run () =
  Ctx.section "Simulator throughput (sharded, domain-parallel)";
  let world = Lazy.force Ctx.world in
  let params = Ctx.campaign_params 1.0 in
  let churn_prefixes = if Ctx.quick then 48 else 192 in
  let script, campaign_end = build_script world params ~churn_prefixes in
  Printf.printf
    "script: %d prefixes, campaign end %.0f s, %d churn prefixes\n%!"
    (Script.n_prefixes script) campaign_end churn_prefixes;
  (* One untimed warmup replay so the paired rows below compare steady-state
     runs instead of charging cold caches to whichever row happens first. *)
  ignore (time_run world ~jobs:1 ~until:campaign_end script);
  let throughput =
    List.map
      (fun jobs ->
        let r, seconds = time_run world ~jobs ~until:campaign_end script in
        let events_per_sec = float_of_int r.Sharded.events /. seconds in
        Printf.printf
          "jobs=%d: %d events in %.2f s (%.0f events/s, %d shards)\n%!" jobs
          r.Sharded.events seconds events_per_sec r.Sharded.shards;
        Throughput
          {
            name = Printf.sprintf "campaign sim (jobs=%d)" jobs;
            jobs;
            events = r.Sharded.events;
            seconds;
            events_per_sec;
          })
      [ 1; 4 ]
  in
  (match throughput with
  | [ Throughput a; Throughput b ] when a.events_per_sec > 0.0 ->
      Printf.printf "%-32s %11.2fx\n" "sim jobs=4 speedup"
        (b.events_per_sec /. a.events_per_sec)
  | _ -> ());
  (* The same jobs=1 replay with a live registry: the end-of-run flush is
     the only added work, so the delta is the whole telemetry cost. *)
  let telemetry_row =
    let reg = Because_telemetry.Registry.create () in
    let r, seconds =
      time_run world ~jobs:1 ~telemetry:reg ~until:campaign_end script
    in
    let events_per_sec = float_of_int r.Sharded.events /. seconds in
    Printf.printf "jobs=1 +telemetry: %d events in %.2f s (%.0f events/s)\n%!"
      r.Sharded.events seconds events_per_sec;
    Throughput
      {
        name = "campaign sim (jobs=1, telemetry)";
        jobs = 1;
        events = r.Sharded.events;
        seconds;
        events_per_sec;
      }
  in
  (match (throughput, telemetry_row) with
  | Throughput off :: _, Throughput on when on.events_per_sec > 0.0 ->
      Printf.printf "%-32s %+10.2f%%\n" "sim telemetry overhead"
        (((off.events_per_sec /. on.events_per_sec) -. 1.0) *. 100.0)
  | _ -> ());
  (* Paired with the jobs=1 baseline: the same replay saving each completed
     shard through live checkpoint hooks (the default cadence — one durable
     write per shard).  The recovery subsystem's acceptance bar is < 2%
     overhead on this pair. *)
  let checkpoint_row =
    let make_checkpoint () =
      let dir = Filename.temp_file "because-bench-ckpt" ".dir" in
      Sys.remove dir;
      let recovery = Sc.Recovery.create ~dir () in
      Sc.Recovery.attach recovery ~fingerprint:"bench-sim";
      Sc.Recovery.sim_hooks recovery
    in
    let r, seconds =
      time_run world ~jobs:1 ~make_checkpoint ~until:campaign_end script
    in
    let events_per_sec = float_of_int r.Sharded.events /. seconds in
    Printf.printf "jobs=1 +checkpoint: %d events in %.2f s (%.0f events/s)\n%!"
      r.Sharded.events seconds events_per_sec;
    Throughput
      {
        name = "campaign sim (jobs=1, checkpoint)";
        jobs = 1;
        events = r.Sharded.events;
        seconds;
        events_per_sec;
      }
  in
  (match (throughput, checkpoint_row) with
  | Throughput off :: _, Throughput on when on.events_per_sec > 0.0 ->
      Printf.printf "%-32s %+10.2f%%\n" "sim checkpoint overhead"
        (((off.events_per_sec /. on.events_per_sec) -. 1.0) *. 100.0)
  | _ -> ());
  Ctx.section "Router hot path (flattened vs baseline)";
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5)
      ~kde:None ()
  in
  let hot_rows =
    List.filter_map
      (fun test ->
        let name =
          match Bechamel.Test.elements test with
          | [ e ] -> Bechamel.Test.Elt.name e
          | _ -> "?"
        in
        match Kernels.measure cfg test with
        | Some ns, _ ->
            let ns_per_update = ns /. float_of_int n_hot_updates in
            Printf.printf "%-32s %12.1f ns/update\n" name ns_per_update;
            Some (Hot_path { name; ns_per_update })
        | None, _ ->
            Printf.printf "%-32s (no estimate)\n" name;
            None)
      (router_tests ())
  in
  (match hot_rows with
  | [ Hot_path flat; Hot_path base ] when flat.ns_per_update > 0.0 ->
      Printf.printf "%-32s %11.2fx\n" "router flattening speedup"
        (base.ns_per_update /. flat.ns_per_update)
  | _ -> ());
  let rows = throughput @ [ telemetry_row; checkpoint_row ] @ hot_rows in
  write_json "BENCH_sim.json" rows;
  Printf.printf "wrote BENCH_sim.json (%d rows)\n" (List.length rows)
