(* Fault-severity sweep: how gracefully does the pipeline degrade as
   session resets, link flaps and collector outages intensify?

   For each severity preset we draw a seeded plan, run the 1-minute campaign
   with it, and report the surviving measurement volume, the accuracy
   against the planted deployment, and how many ASs were explicitly demoted
   to "insufficient data" instead of being miscategorized. *)

module Sc = Because_scenario
module Plan = Because_faults.Plan

let severities =
  [ ("none", Plan.calm); ("mild", Plan.mild); ("realistic", Plan.realistic);
    ("severe", Plan.severe) ]

let run () =
  Bench_context.section "fault-severity sweep";
  Printf.printf
    "%-10s %6s %7s %7s %6s %6s %6s %7s %6s %6s\n"
    "severity" "specs" "events" "labeled" "RFD" "insuf" "warn" "precis"
    "recall" "f1";
  let world = Lazy.force Bench_context.world in
  let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment world) in
  List.iter
    (fun (name, severity) ->
      let base = Bench_context.campaign_params 1.0 in
      let plan = Sc.Campaign.draw_faults world base severity in
      let params =
        if Plan.is_empty plan then base
        else { base with Sc.Campaign.faults = plan; min_path_support = 2 }
      in
      let outcome = Sc.Campaign.run world params in
      let rfd =
        List.length
          (List.filter
             (fun (lp : Because_labeling.Label.labeled_path) ->
               lp.Because_labeling.Label.rfd)
             outcome.Sc.Campaign.labeled)
      in
      let m =
        Because.Evaluate.of_sets
          ~predicted:(Sc.Campaign.because_damping outcome)
          ~truth
          ~universe:(Sc.Campaign.universe outcome)
      in
      Printf.printf "%-10s %6d %7d %7d %6d %6d %6d %7.2f %6.2f %6.2f\n%!"
        name (Plan.size plan)
        (List.length outcome.Sc.Campaign.fault_log)
        (List.length outcome.Sc.Campaign.labeled)
        rfd
        (List.length outcome.Sc.Campaign.insufficient)
        (List.length outcome.Sc.Campaign.warnings)
        m.Because.Evaluate.precision m.Because.Evaluate.recall
        m.Because.Evaluate.f1)
    severities;
  print_endline
    "expected: fault churn inflates the labeled/RFD columns with severity \
     and precision degrades gradually while recall holds — low-evidence ASs \
     are demoted to insufficient, never silently miscategorized, and the \
     none row matches the fault-free campaign exactly."
