(* Internet-scale sweep: events/second and peak RSS versus AS count.

   Each size runs in a FRESH CHILD PROCESS (spawned via [Unix.create_process]
   on our own executable with the hidden [--scale-child] argv mode) so that

   - peak RSS (VmHWM from /proc/self/status) measures that one world and not
     whatever the earlier, smaller sizes grew the heap to, and
   - no domains are live across the spawn (fork with running domains is a
     hazard under OCaml 5).

   The child builds a world scaled towards the target AS count
   ([World.scale_params], Tier-1 clique fixed), records a short churn-heavy
   campaign script, replays it through [Sharded.run] with collector feeds
   spilling to disk ([--feed-spill-dir] semantics), and prints one RESULT
   line the parent parses.

   Sizes: quick {100, 1000}; full {100, 1000, 5000, 10000}; override with
   BECAUSE_SCALE_ASES=100,1000,5000.  Rows are appended to BENCH_sim.json
   (kind "scale") so the sim and scale sections can both contribute to the
   same artifact; CI's scale-smoke job guards the 1000-AS events/s against
   bench/scale_baseline.json. *)

module Sc = Because_scenario
module Ctx = Bench_context
module Script = Because_sim.Script
module Sharded = Because_sim.Sharded
module Feed_log = Because_sim.Feed_log

(* Base world: 8 Tier-1s + 80 transit + 360 stub (+7 Beacon origins).  The
   scale factor stretches the transit/stub/vantage axes towards the target
   total.  Vantage hosts are capped near the real collector ecosystem's
   size (~400 full-feed sessions) — feeds are the output channel, not the
   thing whose scaling is under test. *)
let world_for ~ases =
  let base = Sc.World.default_params in
  let fixed = base.Sc.World.topology.Because_topology.Generate.n_tier1 + 7 in
  let edge =
    base.Sc.World.topology.Because_topology.Generate.n_transit
    + base.Sc.World.topology.Because_topology.Generate.n_stub
  in
  let factor = float_of_int (max 1 (ases - fixed)) /. float_of_int edge in
  let p = Sc.World.scale_params base ~factor in
  let p = { p with Sc.World.n_vantage_hosts = min p.Sc.World.n_vantage_hosts 416 } in
  Sc.World.build p

(* A short, churn-dominated stimulus: one Burst–Break cycle with 10-minute
   phases plus [churn] background /24s flapping a couple of times each.
   Event volume grows with world size (every update floods the graph), so
   the phases are kept short enough that 10k ASs finishes in tens of
   seconds while still processing millions of events. *)
let child_params =
  {
    (Sc.Campaign.default_params ~update_interval:60.0) with
    Sc.Campaign.cycles = 1;
    lead_in = 120.0;
    burst_duration = 600.0;
    break_duration = 600.0;
    anchor_period = 600.0;
    background_mean_gap = 600.0;
  }

let hwm_kb () =
  (* VmHWM — peak resident set — from /proc/self/status; 0 where the file
     does not exist (non-Linux), keeping the row shape portable. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let peak = ref 0 in
          (try
             while true do
               let line = input_line ic in
               try Scanf.sscanf line "VmHWM: %d kB" (fun kb -> peak := kb)
               with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
             done
           with End_of_file -> ());
          !peak)

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> go (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

(* ------------------------------------------------------------------ *)
(* Child: measure one size, print a RESULT line, exit.                  *)

let child = function
  | [ ases; churn; spill ] ->
      let ases = int_of_string ases
      and churn = int_of_string churn
      and spill = spill = "1" in
      let world = world_for ~ases in
      let graph = Sc.World.graph world in
      let n_ases = List.length (Because_topology.Graph.ases graph) in
      let n_links = List.length (Because_topology.Graph.links graph) in
      let script, campaign_end =
        Sim.build_script world child_params ~churn_prefixes:churn
      in
      Printf.printf "child: %d ASs, %d links, %d prefixes, end %.0f s\n%!"
        n_ases n_links (Script.n_prefixes script) campaign_end;
      let spill_dir =
        if not spill then None
        else begin
          let dir = Filename.temp_file "because-scale-feeds" ".dir" in
          Sys.remove dir;
          Some dir
        end
      in
      let feed_spill =
        Option.map
          (fun dir -> { Feed_log.dir; buffer = Feed_log.default_buffer })
          spill_dir
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Sharded.run ~jobs:1 ?feed_spill
          ~configs:(Sc.World.router_configs world)
          ~delay:(Sc.World.delay world)
          ~monitored:(Sc.World.monitored world)
          ~until:campaign_end script
      in
      let seconds = Unix.gettimeofday () -. t0 in
      (* Force one spilled feed replay so the row's cost includes reading
         the on-disk log back, the way collection does. *)
      let replayed =
        match Sc.World.monitored world |> Because_bgp.Asn.Set.min_elt_opt with
        | None -> 0
        | Some a -> List.length (Sharded.feed r a)
      in
      Option.iter rm_rf spill_dir;
      Printf.printf
        "RESULT ases=%d links=%d prefixes=%d events=%d seconds=%.3f \
         hwm_kb=%d replayed=%d\n%!"
        n_ases n_links
        (Script.n_prefixes script)
        r.Sharded.events seconds (hwm_kb ()) replayed
  | _ ->
      prerr_endline "usage: --scale-child ASES CHURN SPILL01";
      exit 2

(* ------------------------------------------------------------------ *)
(* Parent: spawn one child per size, parse rows, write JSON.            *)

type row = {
  ases : int;
  links : int;
  prefixes : int;
  events : int;
  seconds : float;
  events_per_sec : float;
  peak_rss_kb : int;
}

let run_child ~ases ~churn ~spill =
  let r, w = Unix.pipe () in
  let argv =
    [|
      Sys.executable_name; "--scale-child"; string_of_int ases;
      string_of_int churn; (if spill then "1" else "0");
    |]
  in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let _, status = Unix.waitpid [] pid in
  (status, List.rev !lines)

let parse_result lines =
  List.find_map
    (fun line ->
      match
        Scanf.sscanf line
          "RESULT ases=%d links=%d prefixes=%d events=%d seconds=%f \
           hwm_kb=%d replayed=%d"
          (fun ases links prefixes events seconds hwm_kb _replayed ->
            {
              ases;
              links;
              prefixes;
              events;
              seconds;
              events_per_sec =
                (if seconds > 0.0 then float_of_int events /. seconds else 0.0);
              peak_rss_kb = hwm_kb;
            })
      with
      | row -> Some row
      | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None)
    lines

let sizes () =
  match Sys.getenv_opt "BECAUSE_SCALE_ASES" with
  | Some s ->
      List.filter_map
        (fun tok -> int_of_string_opt (String.trim tok))
        (String.split_on_char ',' s)
  | None -> if Ctx.quick then [ 100; 1000 ] else [ 100; 1000; 5000; 10000 ]

let row_json { ases; links; prefixes; events; seconds; events_per_sec; peak_rss_kb } =
  Printf.sprintf
    "    { \"name\": \"scale (ases=%d)\", \"kind\": \"scale\", \"ases\": %d, \
     \"links\": %d, \"prefixes\": %d, \"events\": %d, \"seconds\": %.3f, \
     \"events_per_sec\": %.1f, \"peak_rss_kb\": %d }"
    ases ases links prefixes events seconds events_per_sec peak_rss_kb

(* Splice scale rows into BENCH_sim.json: the sim section owns the document
   when both run ([--only scale] in CI runs alone and writes a fresh one).
   The writer ends every document with "  ]\n}\n", which is what the splice
   keys on. *)
let append_json path rows =
  let payload = String.concat ",\n" (List.map row_json rows) in
  let fresh () =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc
          "{\n  \"schema\": \"because-bench-sim/1\",\n  \"quick\": %b,\n  \
           \"results\": [\n%s\n  ]\n}\n"
          Ctx.quick payload)
  in
  if not (Sys.file_exists path) then fresh ()
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let suffix = "  ]\n}\n" in
    let slen = String.length suffix and clen = String.length content in
    if clen > slen && String.sub content (clen - slen) slen = suffix then begin
      let head = String.sub content 0 (clen - slen) in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc head;
          output_string oc ",\n";
          output_string oc payload;
          output_string oc "\n";
          output_string oc suffix)
    end
    else fresh ()
  end

let run () =
  Ctx.section "Internet-scale sweep (events/s and peak RSS vs AS count)";
  let churn = if Ctx.quick then 128 else 1000 in
  let rows =
    List.filter_map
      (fun ases ->
        Printf.printf "[%d ASs, %d churn prefixes, feeds spilled ...]\n%!"
          ases churn;
        match run_child ~ases ~churn ~spill:true with
        | Unix.WEXITED 0, lines -> (
            List.iter print_endline
              (List.filter (fun l -> not (String.length l > 6 && String.sub l 0 6 = "RESULT")) lines);
            match parse_result lines with
            | Some row ->
                Printf.printf
                  "ases=%d: %d events in %.2f s (%.0f events/s), peak RSS %d \
                   MB\n%!"
                  row.ases row.events row.seconds row.events_per_sec
                  (row.peak_rss_kb / 1024);
                Some row
            | None ->
                Printf.printf "ases=%d: no RESULT line from child\n%!" ases;
                None)
        | status, _ ->
            Printf.printf "ases=%d: child failed (%s)\n%!" ases
              (match status with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s);
            None)
      (sizes ())
  in
  (match rows with
  | first :: _ :: _ ->
      let last = List.nth rows (List.length rows - 1) in
      if first.peak_rss_kb > 0 && last.peak_rss_kb > 0 then
        Printf.printf "%-32s %11.2fx over %dx ASs\n" "peak RSS growth"
          (float_of_int last.peak_rss_kb /. float_of_int first.peak_rss_kb)
          (last.ases / max 1 first.ases)
  | _ -> ());
  if rows <> [] then begin
    append_json "BENCH_sim.json" rows;
    Printf.printf "appended %d scale rows to BENCH_sim.json\n"
      (List.length rows)
  end
