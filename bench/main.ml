(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation benches, and measures the computational
   kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only fig12 # one section
     dune exec bench/main.exe -- --list       # section ids
     BECAUSE_BENCH_QUICK=1 dune exec ...      # small world for development *)

let sections : (string * string * (unit -> unit)) list =
  [
    ("fig2", "RFD penalty evolution at a router", Figures.fig2);
    ("fig5", "Beacon pattern and RFD signature", Figures.fig5);
    ("fig6", "link similarity between Beacon sites", Figures.fig6);
    ("fig7", "collector project overlap", Figures.fig7);
    ("fig8", "propagation-time comparison", Figures.fig8);
    ("fig9", "archetype posterior distributions", Figures.fig9);
    ("fig10", "announcement distribution across Bursts", Figures.fig10);
    ("fig11", "mean-vs-certainty scatter", Figures.fig11);
    ("fig12", "damping share per update interval", Figures.fig12);
    ("fig13", "re-advertisement delta CDF", Figures.fig13);
    ("tab1", "category definitions", Tables.tab1);
    ("tab2", "category shares at 1 minute", Tables.tab2);
    ("tab3", "ground-truth divergences", Tables.tab3);
    ("tab4", "precision/recall incl. ROV", Tables.tab4);
    ("appA", "Beacon share of control-plane traffic", Tables.app_a);
    ("appB", "vendor default parameters", Tables.app_b);
    ("ablations", "design-choice ablations", Ablations.all);
    ("faults", "fault-injection severity sweep", Faults.run);
    ("kernels", "Bechamel kernel micro-benchmarks", Kernels.run);
    ("sim", "simulator throughput and router hot path", Sim.run);
    ("scale", "events/s and peak RSS vs AS count (child per size)", Scale.run);
    ("service", "always-on scheduler throughput and drain overhead",
     Service_bench.run);
    ("http", "query-plane request rate and streaming warm-start saving",
     Http_bench.run);
  ]

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--scale-child" :: rest ->
      (* Hidden mode: the scale section re-executes this binary once per
         world size so each measurement gets a fresh address space. *)
      Scale.child rest
  | _ :: "--list" :: _ ->
      List.iter
        (fun (id, description, _) -> Printf.printf "%-10s %s\n" id description)
        sections
  | _ :: "--only" :: wanted :: _ -> (
      match List.find_opt (fun (id, _, _) -> id = wanted) sections with
      | Some (_, _, run) -> run ()
      | None ->
          Printf.eprintf "unknown section %s (try --list)\n" wanted;
          exit 1)
  | _ ->
      print_endline
        "BeCAUSe benchmark harness — reproducing the evaluation of 'BGP \
         Beacons, Network Tomography, and Bayesian Computation to Locate \
         Route Flap Damping' (IMC 2020)";
      Printf.printf "scale: %s\n"
        (if Bench_context.quick then "quick (BECAUSE_BENCH_QUICK)" else "full");
      let t0 = Unix.gettimeofday () in
      List.iter (fun (_, _, run) -> run ()) sections;
      Printf.printf "\ntotal bench time: %.0f s\n" (Unix.gettimeofday () -. t0)
