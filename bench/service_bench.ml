(* Service scheduler benchmarks: sustained campaign throughput, queue wait
   latency, and the wall-clock cost of a drain-and-restart cycle versus an
   uninterrupted run.  Writes BENCH_service.json (CI artifact) so the
   scheduler's overhead is tracked the same way as the kernels. *)

module Ctx = Bench_context
module Svc = Because_service.Service
module Sspec = Because_service.Spec
module Store = Because_service.Store

type row = { name : string; value : float; unit_ : string }

let fresh_dir () =
  let f = Filename.temp_file "because-bench-service" ".dir" in
  Sys.remove f;
  f

let spec i =
  let base = Sspec.default ~id:(Printf.sprintf "bench-%02d" i) in
  let base = { base with Sspec.seed = 100 + i; faults = "realistic" } in
  if Ctx.quick then
    { base with Sspec.transit = 6; stub = 14; vantage_hosts = 5;
      samples = 80; burn_in = 40 }
  else base

let n_campaigns = if Ctx.quick then 6 else 12
let jobs = 2

let submit_all svc n =
  for i = 1 to n do
    match Svc.submit svc (spec i) with
    | Ok _ -> ()
    | Error r ->
        failwith ("bench submit: " ^ Because_service.Admission.reason_to_string r)
  done

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      Printf.fprintf oc "  \"schema\": \"because-bench-service/1\",\n";
      Printf.fprintf oc "  \"quick\": %b,\n" Ctx.quick;
      output_string oc "  \"results\": [\n";
      List.iteri
        (fun k row ->
          Printf.fprintf oc
            "    { \"name\": \"%s\", \"value\": %.3f, \"unit\": \"%s\" }%s\n"
            row.name row.value row.unit_
            (if k = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "  ]\n}\n")

let run () =
  Ctx.section "service scheduler";
  (* Sustained throughput: n campaigns through the bounded queue over a
     worker pool, timed end to end. *)
  let dir = fresh_dir () in
  let svc =
    Svc.create
      { (Svc.default_config ~state_dir:dir) with Svc.jobs; limit = n_campaigns }
  in
  submit_all svc n_campaigns;
  let t0 = Unix.gettimeofday () in
  (match Svc.run_until_idle svc with
  | Svc.Completed -> ()
  | _ -> failwith "bench service run did not complete");
  let cold_s = Unix.gettimeofday () -. t0 in
  let waits =
    Store.entries (Svc.store svc)
    |> List.map (fun (e : Store.entry) -> e.Store.queue_wait_s)
    |> Array.of_list
  in
  Array.sort compare waits;
  let p50 = percentile waits 0.50 and p99 = percentile waits 0.99 in
  let per_hour = float_of_int n_campaigns /. cold_s *. 3600.0 in
  Printf.printf "%-36s %10.1f campaigns/h (%d in %.1f s, jobs=%d)\n"
    "sustained throughput" per_hour n_campaigns cold_s jobs;
  Printf.printf "%-36s %10.3f s\n" "queue wait p50" p50;
  Printf.printf "%-36s %10.3f s\n" "queue wait p99" p99;
  (* Drain-and-restart: interrupt the same workload mid-flight, warm-start
     a second service on the surviving state, and compare total wall-clock
     against the uninterrupted run above. *)
  let dir2 = fresh_dir () in
  let svc2 =
    Svc.create
      { (Svc.default_config ~state_dir:dir2) with Svc.jobs;
        limit = n_campaigns }
  in
  submit_all svc2 n_campaigns;
  let t1 = Unix.gettimeofday () in
  Svc.start svc2;
  Unix.sleepf (cold_s /. 4.0);
  Svc.drain svc2;
  ignore (Svc.join svc2);
  Svc.reset_drain svc2;
  let svc3 =
    Svc.load
      { (Svc.default_config ~state_dir:dir2) with Svc.jobs;
        limit = n_campaigns }
  in
  (match Svc.run_until_idle svc3 with
  | Svc.Completed -> ()
  | _ -> failwith "bench warm start did not complete");
  let interrupted_s = Unix.gettimeofday () -. t1 in
  let overhead = (interrupted_s /. cold_s -. 1.0) *. 100.0 in
  Printf.printf "%-36s %10.1f s (cold %.1f s, %+.1f%%)\n"
    "drain + warm restart" interrupted_s cold_s overhead;
  let rows =
    [ { name = "campaigns_per_hour"; value = per_hour; unit_ = "1/h" };
      { name = "queue_wait_p50"; value = p50; unit_ = "s" };
      { name = "queue_wait_p99"; value = p99; unit_ = "s" };
      { name = "cold_run"; value = cold_s; unit_ = "s" };
      { name = "drain_restart_run"; value = interrupted_s; unit_ = "s" };
      { name = "drain_restart_overhead"; value = overhead; unit_ = "%" } ]
  in
  write_json "BENCH_service.json" rows;
  Printf.printf "wrote BENCH_service.json (%d rows)\n" (List.length rows)
