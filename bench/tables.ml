(* Reproductions of the paper's tables and appendices. *)

open Because_bgp
module Sc = Because_scenario
module Ctx = Bench_context

let tab1 () =
  Ctx.section "Table 1 — categories from distribution summaries";
  Ctx.paper "categories 1/2: (highly) likely not damping; 3: uncertain; 4/5: (highly) likely damping";
  Printf.printf "%-12s %-22s %-28s\n" "category" "average p̄" "95%% HDPI [A, B]";
  Printf.printf "%-12s %-22s %-28s\n" "Category 1" "[0.00, 0.15)" "B < 0.15";
  Printf.printf "%-12s %-22s %-28s\n" "Category 2" "[0.15, 0.30)" "B < 0.30";
  Printf.printf "%-12s %-22s %-28s\n" "Category 3" "[0.30, 0.70)" "else";
  Printf.printf "%-12s %-22s %-28s\n" "Category 4" "[0.70, 0.85)" "A >= 0.70";
  Printf.printf "%-12s %-22s %-28s\n" "Category 5" "[0.85, 1.00]" "A >= 0.85";
  print_endline
    "(the highest flag across {MH, HMC} x {mean, HDPI} wins; see DESIGN.md \
     for the interpretive note on the paper's HDPI column)"

let tab2 () =
  Ctx.section "Table 2 — assigned categories for the 1-minute interval";
  Ctx.paper "574 ASs: 28.9% / 49.3% / 12.5% / 4.3% / 4.9% across categories 1-5";
  let outcome = Ctx.one_minute () in
  let categories = List.map snd outcome.Sc.Campaign.categories in
  let shares = Because.Categorize.shares categories in
  Printf.printf "%-12s %8s %8s\n" "category" "count" "share";
  List.iter
    (fun (c, count, share) ->
      Printf.printf "Category %d   %8d %7.1f%%\n"
        (Because.Categorize.to_int c)
        count (100.0 *. share))
    shares;
  Printf.printf "Total        %8d\n" (List.length categories);
  let damping =
    List.fold_left
      (fun acc (c, count, _) ->
        if Because.Categorize.damping c then acc + count else acc)
      0 shares
  in
  Printf.printf
    "lower bound of RFD deployment (categories 4+5): %.1f%% (paper: 9.1%%)\n"
    (100.0 *. float_of_int damping /. float_of_int (List.length categories))

let tab3 () =
  Ctx.section "Table 3 — divergences against operator ground truth";
  Ctx.paper
    "56 agreed non-RFD, 10 agreed RFD; BeCAUSe wins heterogeneous configs, \
     heuristics misfire when the upstream uses RFD";
  let outcome = Ctx.one_minute () in
  let rng = Sc.World.fresh_rng (Lazy.force Ctx.world) ~salt:991 in
  let report =
    Sc.Report.against_ground_truth ~rng (Lazy.force Ctx.world) outcome
  in
  (* Group the cases by (truth, because, heuristics, reason). *)
  let table = Hashtbl.create 8 in
  List.iter
    (fun (c : Sc.Report.verdict_pair) ->
      let key = (c.Sc.Report.truth, c.Sc.Report.because_says,
                 c.Sc.Report.heuristics_say, c.Sc.Report.reason) in
      let count, example =
        Option.value (Hashtbl.find_opt table key)
          ~default:(0, c.Sc.Report.subject)
      in
      Hashtbl.replace table key (count + 1, example))
    report.Sc.Report.cases;
  let rows =
    Hashtbl.fold (fun key (count, example) acc -> (key, count, example) :: acc)
      table []
    |> List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a)
  in
  let mark b = if b then "yes" else "no " in
  Printf.printf "%-7s %-12s %-8s %-8s %-10s %s\n" "#cases" "example"
    "truth" "BeCAUSe" "heuristics" "reason for divergence";
  List.iter
    (fun ((truth, because_says, heuristics_say, reason), count, example) ->
      Printf.printf "%-7d %-12s %-8s %-8s %-10s %s\n" count
        (Asn.to_string example) (mark truth) (mark because_says)
        (mark heuristics_say) reason)
    rows

let tab4 () =
  Ctx.section "Table 4 — precision and recall on ground truth";
  Ctx.paper
    "RFD: BeCAUSe 100%/87%, heuristics 97%/80%; ROV: BeCAUSe 100%/64%";
  let world = Lazy.force Ctx.world in
  let outcome = Ctx.one_minute () in
  let rng = Sc.World.fresh_rng world ~salt:991 in
  let report = Sc.Report.against_ground_truth ~rng world outcome in
  let print name (m : Because.Evaluate.metrics) =
    Printf.printf "%-22s precision %5.1f%%  recall %5.1f%%\n" name
      (100.0 *. m.Because.Evaluate.precision)
      (100.0 *. m.Because.Evaluate.recall)
  in
  print "RFD / BeCAUSe" report.Sc.Report.because_metrics;
  print "RFD / heuristics" report.Sc.Report.heuristic_metrics;
  let rov_rng = Sc.World.fresh_rng world ~salt:1993 in
  let config =
    { Because.Infer.default_config with n_samples = 800; burn_in = 400 }
  in
  let b = Sc.Report.rov_benchmark ~rng:rov_rng ~config outcome in
  print "ROV / BeCAUSe" b.Because_rov.Rov.metrics;
  Printf.printf
    "ROV dataset: %.0f%% positive paths (paper: 90%%); %d ROV ASs hidden \
     behind another ROV AS (the recall gap)\n"
    (100.0 *. b.Because_rov.Rov.positive_share)
    (Asn.Set.cardinal b.Because_rov.Rov.hidden)

let app_a () =
  Ctx.section "Appendix A — Beacon share of control-plane traffic (ethics)";
  Ctx.paper "Beacons caused 0.48-0.54% of all IPv4 BGP updates";
  (* A dedicated campaign with synthetic background churn.  The slowest
     Beacon (15-minute interval) keeps the Beacon volume low, as in the
     ethics argument. *)
  let params = Ctx.campaign_params 15.0 in
  let params =
    { params with
      Sc.Campaign.run_inference = false;
      cycles = 1;
      background_prefixes = (if Ctx.quick then 60 else 120);
      background_mean_gap = 450.0 }
  in
  let outcome = Sc.Campaign.run (Lazy.force Ctx.world) params in
  Printf.printf
    "update records in collector dumps: %d, of which Beacon-caused: %.2f%%\n"
    (List.length outcome.Sc.Campaign.records)
    (100.0 *. Sc.Report.beacon_update_share outcome);
  print_endline
    "(higher than the paper's 0.5% because a ~500-AS world carries \
     proportionally less background churn than the 70k-AS Internet; the \
     qualitative claim -- Beacons are a small fraction -- holds)"

let app_b () =
  Ctx.section "Appendix B — RFD default parameters";
  let row name (p : Rfd_params.t) =
    Printf.printf "%-26s %8.0f %8.0f %8.0f %10.0f %10.0f %8.0f %8.0f\n" name
      p.Rfd_params.withdrawal_penalty p.Rfd_params.readvertisement_penalty
      p.Rfd_params.attribute_change_penalty p.Rfd_params.suppress_threshold
      (p.Rfd_params.half_life /. 60.0)
      p.Rfd_params.reuse_threshold
      (p.Rfd_params.max_suppress_time /. 60.0)
  in
  Printf.printf "%-26s %8s %8s %8s %10s %10s %8s %8s\n" "parameter set"
    "withdr" "readv" "attr" "suppress" "half(min)" "reuse" "max(min)";
  row "Cisco" Rfd_params.cisco;
  row "Juniper" Rfd_params.juniper;
  row "RFC 7454" Rfd_params.rfc7454
