module Rng = Because_stats.Rng
module Dist = Because_stats.Dist
module Summary = Because_stats.Summary

let sample rng n f = Array.init n (fun _ -> f rng)

let check_close msg expected actual tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.4f, got %.4f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < tol)

let test_normal_moments () =
  let rng = Rng.create 1 in
  let xs = sample rng 40_000 (fun r -> Dist.normal r ~mu:3.0 ~sigma:2.0) in
  check_close "mean" 3.0 (Summary.mean xs) 0.05;
  check_close "std" 2.0 (Summary.std xs) 0.05

let test_exponential_moments () =
  let rng = Rng.create 2 in
  let xs = sample rng 40_000 (fun r -> Dist.exponential r ~rate:0.5) in
  check_close "mean = 1/rate" 2.0 (Summary.mean xs) 0.06;
  Alcotest.(check bool) "nonnegative" true (Array.for_all (fun x -> x >= 0.0) xs)

let test_gamma_moments () =
  let rng = Rng.create 3 in
  let xs = sample rng 40_000 (fun r -> Dist.gamma r ~shape:3.0 ~scale:2.0) in
  check_close "mean = kθ" 6.0 (Summary.mean xs) 0.15;
  check_close "var = kθ²" 12.0 (Summary.variance xs) 0.7

let test_gamma_small_shape () =
  let rng = Rng.create 4 in
  let xs = sample rng 40_000 (fun r -> Dist.gamma r ~shape:0.5 ~scale:1.0) in
  check_close "mean" 0.5 (Summary.mean xs) 0.03;
  Alcotest.(check bool) "positive" true (Array.for_all (fun x -> x > 0.0) xs)

let test_beta_moments () =
  let rng = Rng.create 5 in
  let xs = sample rng 40_000 (fun r -> Dist.beta r ~a:2.0 ~b:6.0) in
  check_close "mean = a/(a+b)" 0.25 (Summary.mean xs) 0.01;
  Alcotest.(check bool) "support" true
    (Array.for_all (fun x -> x >= 0.0 && x <= 1.0) xs)

let test_bernoulli () =
  let rng = Rng.create 6 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  check_close "rate" 0.3 (float_of_int !hits /. float_of_int n) 0.01

let test_binomial () =
  let rng = Rng.create 7 in
  let xs =
    sample rng 5000 (fun r -> float_of_int (Dist.binomial r ~n:20 ~p:0.4))
  in
  check_close "mean = np" 8.0 (Summary.mean xs) 0.15

let test_categorical () =
  let rng = Rng.create 8 in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let i = Dist.categorical rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close "w0" 0.1 (float_of_int counts.(0) /. float_of_int n) 0.01;
  check_close "w1" 0.2 (float_of_int counts.(1) /. float_of_int n) 0.01;
  check_close "w2" 0.7 (float_of_int counts.(2) /. float_of_int n) 0.01

let test_categorical_invalid () =
  let rng = Rng.create 9 in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Dist.categorical: weights must sum > 0") (fun () ->
      ignore (Dist.categorical rng [| 0.0; 0.0 |]))

let test_poisson () =
  let rng = Rng.create 10 in
  let xs =
    sample rng 30_000 (fun r -> float_of_int (Dist.poisson r ~lambda:4.0))
  in
  check_close "mean" 4.0 (Summary.mean xs) 0.1;
  check_close "variance" 4.0 (Summary.variance xs) 0.25

let test_pareto () =
  let rng = Rng.create 11 in
  let xs = sample rng 20_000 (fun r -> Dist.pareto r ~alpha:3.0 ~x_min:2.0) in
  Alcotest.(check bool) "above x_min" true
    (Array.for_all (fun x -> x >= 2.0) xs);
  (* mean = α x_min / (α − 1) = 3 *)
  check_close "mean" 3.0 (Summary.mean xs) 0.1

let test_beta_log_pdf () =
  (* Beta(2,2): density 6x(1−x) *)
  let expected x = Float.log (6.0 *. x *. (1.0 -. x)) in
  List.iter
    (fun x ->
      check_close "beta(2,2) pdf" (expected x)
        (Dist.beta_log_pdf ~a:2.0 ~b:2.0 x)
        1e-9)
    [ 0.1; 0.5; 0.9 ];
  Alcotest.(check (float 0.0)) "outside support" neg_infinity
    (Dist.beta_log_pdf ~a:2.0 ~b:2.0 1.5)

let test_normal_log_pdf () =
  (* standard normal at 0: −½ln(2π) *)
  check_close "peak"
    (-0.5 *. Float.log (2.0 *. Float.pi))
    (Dist.normal_log_pdf ~mu:0.0 ~sigma:1.0 0.0)
    1e-10

let test_uniform_log_pdf () =
  check_close "density" (-.Float.log 4.0)
    (Dist.uniform_log_pdf ~lo:1.0 ~hi:5.0 2.0)
    1e-10;
  Alcotest.(check (float 0.0)) "outside" neg_infinity
    (Dist.uniform_log_pdf ~lo:1.0 ~hi:5.0 6.0)

let qcheck_beta_support =
  QCheck.Test.make ~name:"beta sampler stays in (0,1)" ~count:300
    QCheck.(triple small_int (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (seed, a, b) ->
      let rng = Rng.create seed in
      let x = Dist.beta rng ~a ~b in
      x >= 0.0 && x <= 1.0)

let qcheck_exponential_positive =
  QCheck.Test.make ~name:"exponential sampler nonnegative" ~count:300
    QCheck.(pair small_int (float_range 0.01 100.0))
    (fun (seed, rate) ->
      let rng = Rng.create seed in
      Dist.exponential rng ~rate >= 0.0)

let suite =
  ( "dist",
    [
      Alcotest.test_case "normal moments" `Quick test_normal_moments;
      Alcotest.test_case "exponential moments" `Quick test_exponential_moments;
      Alcotest.test_case "gamma moments" `Quick test_gamma_moments;
      Alcotest.test_case "gamma small shape" `Quick test_gamma_small_shape;
      Alcotest.test_case "beta moments" `Quick test_beta_moments;
      Alcotest.test_case "bernoulli" `Quick test_bernoulli;
      Alcotest.test_case "binomial" `Quick test_binomial;
      Alcotest.test_case "categorical" `Quick test_categorical;
      Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
      Alcotest.test_case "poisson" `Quick test_poisson;
      Alcotest.test_case "pareto" `Quick test_pareto;
      Alcotest.test_case "beta log pdf" `Quick test_beta_log_pdf;
      Alcotest.test_case "normal log pdf" `Quick test_normal_log_pdf;
      Alcotest.test_case "uniform log pdf" `Quick test_uniform_log_pdf;
      QCheck_alcotest.to_alcotest qcheck_beta_support;
      QCheck_alcotest.to_alcotest qcheck_exponential_positive;
    ] )
