(* The unified resilience layer: retry policy arithmetic, circuit
   breaker state machine, the Retry driver that combines them, the
   injectable I/O fault shim, and the checkpoint store's use of all
   four under injected disk faults.

   The policy's jitter is deterministic (seeded splitmix), so every
   delay assertion here is exact-replayable: no sleeps are measured,
   only computed. *)

module Policy = Because_resilience.Policy
module Breaker = Because_resilience.Breaker
module Retry = Because_resilience.Retry
module Io = Because_recover.Io
module Checkpoint = Because_recover.Checkpoint

let fresh_dir () =
  let f = Filename.temp_file "because-resil" ".dir" in
  Sys.remove f;
  f

(* ------------------------------------------------------------------ *)
(* Policy                                                               *)

let test_policy_delays () =
  (* jitter 0: pure capped doubling. *)
  let p = Policy.make ~base_s:0.01 ~cap_s:0.05 ~max_attempts:5 ~jitter:0.0 () in
  Alcotest.(check (float 1e-12)) "attempt 1" 0.01 (Policy.delay_s p ~attempt:1);
  Alcotest.(check (float 1e-12)) "attempt 2" 0.02 (Policy.delay_s p ~attempt:2);
  Alcotest.(check (float 1e-12)) "attempt 3" 0.04 (Policy.delay_s p ~attempt:3);
  Alcotest.(check (float 1e-12)) "attempt 4 capped" 0.05
    (Policy.delay_s p ~attempt:4);
  Alcotest.(check (float 1e-12)) "attempt 30 still capped" 0.05
    (Policy.delay_s p ~attempt:30);
  Alcotest.(check (float 1e-12)) "attempt 0 is free" 0.0
    (Policy.delay_s p ~attempt:0);
  (* Jittered: deterministic for a seed, only ever shrinks, never
     breaches the cap. *)
  let j = Policy.make ~base_s:0.01 ~cap_s:1.0 ~jitter:0.5 ~seed:42 () in
  let j' = Policy.make ~base_s:0.01 ~cap_s:1.0 ~jitter:0.5 ~seed:42 () in
  for a = 1 to 10 do
    let d = Policy.delay_s j ~attempt:a in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "deterministic attempt %d" a)
      d
      (Policy.delay_s j' ~attempt:a);
    let raw = Float.min 1.0 (0.01 *. Float.of_int (1 lsl (a - 1))) in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d within jitter band" a)
      true
      (d <= raw && d >= raw *. 0.5)
  done;
  (* Different seeds decorrelate. *)
  let k = Policy.make ~base_s:0.01 ~jitter:0.5 ~seed:43 () in
  Alcotest.(check bool) "seeds decorrelate" true
    (Policy.delay_s j ~attempt:1 <> Policy.delay_s k ~attempt:1);
  (* Budget. *)
  let p3 = Policy.make ~max_attempts:3 () in
  Alcotest.(check bool) "retries left at 2" true
    (Policy.retries_left p3 ~attempt:2);
  Alcotest.(check bool) "no retries at 3" false
    (Policy.retries_left p3 ~attempt:3)

let test_policy_validation () =
  let raises f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  raises (fun () -> Policy.make ~base_s:(-0.1) ());
  raises (fun () -> Policy.make ~cap_s:(-1.0) ());
  raises (fun () -> Policy.make ~max_attempts:0 ());
  raises (fun () -> Policy.make ~jitter:1.5 ());
  raises (fun () -> Policy.make ~jitter:(-0.1) ())

(* ------------------------------------------------------------------ *)
(* Breaker                                                              *)

let test_breaker_lifecycle () =
  let b = Breaker.create ~threshold:3 ~cooldown_s:3600.0 () in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check bool) "below threshold still closed" true (Breaker.allow b);
  Breaker.failure b;
  Alcotest.(check bool) "tripped at threshold" false (Breaker.allow b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  (* Success before the threshold resets the count. *)
  let b2 = Breaker.create ~threshold:3 ~cooldown_s:3600.0 () in
  Breaker.failure b2;
  Breaker.failure b2;
  Breaker.success b2;
  Breaker.failure b2;
  Breaker.failure b2;
  Alcotest.(check bool) "success reset the failure count" true
    (Breaker.allow b2);
  Alcotest.(check int) "never tripped" 0 (Breaker.trips b2)

let test_breaker_half_open () =
  (* Zero cooldown: the next allow after a trip is the half-open probe. *)
  let b = Breaker.create ~threshold:1 ~cooldown_s:0.0 () in
  Breaker.failure b;
  Alcotest.(check int) "tripped" 1 (Breaker.trips b);
  Alcotest.(check bool) "probe admitted after cooldown" true (Breaker.allow b);
  (* A failing probe re-trips immediately. *)
  Breaker.failure b;
  Alcotest.(check int) "probe failure re-trips" 2 (Breaker.trips b);
  Alcotest.(check bool) "probe again" true (Breaker.allow b);
  (* A succeeding probe closes the circuit for good. *)
  Breaker.success b;
  Alcotest.(check bool) "closed after good probe" true (Breaker.allow b);
  Alcotest.(check int) "no further trips" 2 (Breaker.trips b)

(* ------------------------------------------------------------------ *)
(* Retry driver                                                         *)

let test_retry_budget () =
  let policy = Policy.make ~base_s:0.0 ~max_attempts:3 () in
  (* Transient failures inside the budget are absorbed. *)
  let calls = ref 0 and retries = ref 0 in
  let v =
    Retry.run ~policy ~label:"t"
      ~on_retry:(fun ~attempt:_ _ -> incr retries)
      (fun () ->
        incr calls;
        if !calls < 3 then failwith "transient" else 42)
  in
  Alcotest.(check int) "eventually succeeds" 42 v;
  Alcotest.(check int) "three calls" 3 !calls;
  Alcotest.(check int) "two retries observed" 2 !retries;
  (* The budget is a hard stop: the last exception propagates. *)
  let calls = ref 0 in
  (match
     Retry.run ~policy ~label:"t" (fun () ->
         incr calls;
         failwith "always")
   with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure e -> Alcotest.(check string) "last error wins" "always" e);
  Alcotest.(check int) "budget bounds attempts" 3 !calls;
  (* Non-retryable exceptions escape on the first attempt. *)
  let calls = ref 0 in
  (match
     Retry.run ~policy ~label:"t"
       ~retryable:(function Sys_error _ -> true | _ -> false)
       (fun () ->
         incr calls;
         raise Exit)
   with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check int) "non-retryable is immediate" 1 !calls

let test_retry_breaker () =
  let policy = Policy.make ~base_s:0.0 ~max_attempts:2 () in
  let breaker = Breaker.create ~threshold:3 ~cooldown_s:3600.0 () in
  (* Two runs of failures trip the shared breaker: the second run's
     retry may already find the circuit open mid-loop. *)
  for _ = 1 to 2 do
    match
      Retry.run ~policy ~breaker ~label:"db" (fun () -> failwith "down")
    with
    | _ -> Alcotest.fail "expected failure"
    | exception (Failure _ | Retry.Open_circuit _) -> ()
  done;
  Alcotest.(check int) "breaker tripped by accumulated failures" 1
    (Breaker.trips breaker);
  (* ...after which callers fail fast without invoking the operation. *)
  let calls = ref 0 in
  (match
     Retry.run ~policy ~breaker ~label:"db" (fun () ->
         incr calls;
         42)
   with
  | _ -> Alcotest.fail "expected Open_circuit"
  | exception Retry.Open_circuit "db" -> ());
  Alcotest.(check int) "open circuit short-circuits the call" 0 !calls

(* ------------------------------------------------------------------ *)
(* I/O fault shim                                                       *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_io_faults () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let file = Filename.concat dir "payload" in
  let base = Io.faults_injected () in
  (* No hook: plain atomic write. *)
  Io.write_file_atomic ~dir ~file "hello";
  Alcotest.(check string) "clean write" "hello" (read_file file);
  (* Short write "succeeds" but lands torn bytes — the CRC layer above
     is what must catch this. *)
  Io.with_faults (fun _ -> Some (Io.Short_write 0.5)) (fun () ->
      Io.write_file_atomic ~dir ~file "0123456789");
  Alcotest.(check string) "short write lands torn" "01234" (read_file file);
  (* ENOSPC raises before touching the destination. *)
  (match
     Io.with_faults (fun _ -> Some Io.Enospc) (fun () ->
         Io.write_file_atomic ~dir ~file "replacement")
   with
  | () -> Alcotest.fail "expected ENOSPC"
  | exception Sys_error _ -> ());
  Alcotest.(check string) "destination untouched" "01234" (read_file file);
  (* Rename failure leaves neither the destination nor a temp file. *)
  (match
     Io.with_faults (fun _ -> Some Io.Rename_fail) (fun () ->
         Io.write_file_atomic ~dir ~file "replacement")
   with
  | () -> Alcotest.fail "expected rename failure"
  | exception Sys_error _ -> ());
  Alcotest.(check string) "destination still untouched" "01234"
    (read_file file);
  Alcotest.(check (list string)) "no temp litter" [ "payload" ]
    (Sys.readdir dir |> Array.to_list |> List.sort compare);
  Alcotest.(check int) "injections counted" 3 (Io.faults_injected () - base);
  (* with_faults clears the hook even on exception paths. *)
  Io.write_file_atomic ~dir ~file "after";
  Alcotest.(check string) "hook cleared" "after" (read_file file)

(* ------------------------------------------------------------------ *)
(* Checkpoint store under disk faults                                   *)

let test_checkpoint_write_retry () =
  let dir = fresh_dir () in
  let ck = Checkpoint.open_ ~dir ~fingerprint:"fp-resil" () in
  Checkpoint.save ck ~key:"k" "v1";
  Alcotest.(check (option string)) "baseline save" (Some "v1")
    (Checkpoint.load ck ~key:"k");
  (* Two transient ENOSPCs on the snapshot file: absorbed by the store's
     default 3-attempt policy, counted in write_retries. *)
  let remaining = ref 2 in
  Io.with_faults
    (fun op ->
      match op with
      | Io.Write f when Filename.check_suffix f "k.ck" && !remaining > 0 ->
          decr remaining;
          Some Io.Enospc
      | _ -> None)
    (fun () -> Checkpoint.save ck ~key:"k" "v2");
  Alcotest.(check (option string)) "save survived transient faults"
    (Some "v2")
    (Checkpoint.load ck ~key:"k");
  Alcotest.(check int) "retries counted" 2 (Checkpoint.write_retries ck);
  (* A persistent fault exhausts the budget and raises; the previous
     snapshot still loads (rotation moved it to .prev.ck). *)
  (match
     Io.with_faults
       (fun op ->
         match op with
         | Io.Write f when Filename.check_suffix f "k.ck" -> Some Io.Enospc
         | _ -> None)
       (fun () -> Checkpoint.save ck ~key:"k" "v3")
   with
  | () -> Alcotest.fail "expected exhausted write budget"
  | exception Sys_error _ -> ());
  Alcotest.(check (option string)) "previous snapshot survives"
    (Some "v2")
    (Checkpoint.load ck ~key:"k");
  (* A short write is not an exception: it lands torn bytes the CRC
     envelope must detect, falling back with a warning. *)
  Checkpoint.save ck ~key:"k" "v4";
  Io.with_faults
    (fun op ->
      match op with
      | Io.Write f when Filename.check_suffix f "k.ck" ->
          Some (Io.Short_write 0.5)
      | _ -> None)
    (fun () -> Checkpoint.save ck ~key:"k" "v5-torn");
  let reopened = Checkpoint.open_ ~dir ~fingerprint:"fp-resil" () in
  Alcotest.(check (option string)) "torn snapshot quarantined, fallback used"
    (Some "v4")
    (Checkpoint.load reopened ~key:"k");
  Alcotest.(check bool) "quarantine warning recorded" true
    (Checkpoint.warnings reopened <> [])

let test_checkpoint_keys_remove () =
  let dir = fresh_dir () in
  let ck = Checkpoint.open_ ~dir ~fingerprint:"fp-keys" () in
  Checkpoint.save ck ~key:"epoch-000001" "a";
  Checkpoint.save ck ~key:"epoch-000002" "b";
  Checkpoint.save ck ~key:"compacted" "c";
  Alcotest.(check (list string)) "keys sorted"
    [ "compacted"; "epoch-000001"; "epoch-000002" ]
    (Checkpoint.keys ck);
  Checkpoint.remove ck ~key:"epoch-000001";
  Alcotest.(check (list string)) "removed"
    [ "compacted"; "epoch-000002" ]
    (Checkpoint.keys ck);
  Alcotest.(check (option string)) "removed key gone" None
    (Checkpoint.load ck ~key:"epoch-000001");
  (* Removing a key with a rotated fallback removes both. *)
  Checkpoint.save ck ~key:"epoch-000002" "b2";
  Checkpoint.remove ck ~key:"epoch-000002";
  Alcotest.(check (option string)) "fallback gone too" None
    (Checkpoint.load ck ~key:"epoch-000002");
  (* Keys survive a reopen (encoded names decode). *)
  let again = Checkpoint.open_ ~dir ~fingerprint:"fp-keys" () in
  Alcotest.(check (list string)) "keys after reopen" [ "compacted" ]
    (Checkpoint.keys again)

let suite =
  ( "resilience",
    [
      Alcotest.test_case "policy capped backoff + seeded jitter" `Quick
        test_policy_delays;
      Alcotest.test_case "policy validation" `Quick test_policy_validation;
      Alcotest.test_case "breaker trip threshold" `Quick
        test_breaker_lifecycle;
      Alcotest.test_case "breaker half-open probe" `Quick
        test_breaker_half_open;
      Alcotest.test_case "retry budget + retryable filter" `Quick
        test_retry_budget;
      Alcotest.test_case "retry fails fast on open circuit" `Quick
        test_retry_breaker;
      Alcotest.test_case "io fault shim" `Quick test_io_faults;
      Alcotest.test_case "checkpoint writes retried under faults" `Quick
        test_checkpoint_write_retry;
      Alcotest.test_case "checkpoint keys + remove" `Quick
        test_checkpoint_keys_remove;
    ] )
