(* End-to-end: hand-built micro-worlds through simulation, collection,
   labeling and inference, where the expected outcome is exactly known. *)
open Because_bgp
module Network = Because_sim.Network
module Schedule = Because_beacon.Schedule
module Site = Because_beacon.Site
module Vantage = Because_collector.Vantage
module Dump = Because_collector.Dump
module Noise = Because_collector.Noise
module Label = Because_labeling.Label
module Rng = Because_stats.Rng

let asn = Asn.of_int

(* Topology:  origin 65001 — 2 — 3 — 4(vp)
                              \— 5 — 4
   AS3 damps; AS5 is the clean alternative transit.  AS4 hosts the VP and
   prefers AS3 (lower ASN) when available. *)
let configs ~damper_scope =
  let nb ?(mrai = 0.0) n rel = { Router.neighbor_asn = asn n; relationship = rel; mrai } in
  [
    { Router.asn = asn 65001;
      neighbors = [ nb 2 Policy.Provider ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 2;
      neighbors = [ nb 65001 Policy.Customer; nb 3 Policy.Provider; nb 5 Policy.Provider ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 3;
      neighbors = [ nb 2 Policy.Customer; nb 4 Policy.Customer ];
      rfd_scope = damper_scope; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 5;
      neighbors = [ nb 2 Policy.Customer; nb 4 Policy.Customer ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 4;
      neighbors = [ nb 3 Policy.Provider; nb 5 Policy.Provider ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
  ]

let schedule =
  Schedule.two_phase ~start:0.0 ~lead_in:900.0 ~update_interval:60.0 ~flaps:30
    ~break_duration:7200.0 ~cycles:2 ()

let run_micro_world ~damper_scope =
  let net =
    Network.create ~configs:(configs ~damper_scope)
      ~delay:(fun ~from_asn:_ ~to_asn:_ -> 1.0)
      ~monitored:(Asn.Set.singleton (asn 4)) ()
  in
  let site =
    Site.make ~site_id:0 ~origin:(asn 65001) ~anchor_period:7200.0
      ~anchor_cycles:3 ~oscillating:[ schedule ] ()
  in
  let script = Because_sim.Script.create () in
  Site.install site script;
  Because_sim.Script.install script net;
  let campaign_end = Schedule.end_time schedule +. 7200.0 in
  Network.run net ~until:campaign_end;
  let vp = Vantage.make ~vp_id:0 ~host_asn:(asn 4) ~project:Because_collector.Project.Isolario in
  let records =
    Dump.of_network (Rng.create 1) net ~vantages:[ vp ] ~noise:Noise.none
      ~campaign_end
  in
  let osc = Option.get (Site.oscillating_prefix site ~interval:60.0) in
  let windows_of p =
    if Prefix.equal p osc then Schedule.windows schedule else []
  in
  Label.label_all ~records ~windows_of ()

let path_ints lp = List.map Asn.to_int lp.Label.path

let test_damped_world () =
  let labeled = run_micro_world ~damper_scope:Policy.All_neighbors in
  let damped = List.filter (fun lp -> lp.Label.rfd) labeled in
  let clean = List.filter (fun lp -> not lp.Label.rfd) labeled in
  (match damped with
  | [ lp ] ->
      Alcotest.(check (list int)) "damped path goes through AS3"
        [ 4; 3; 2; 65001 ] (path_ints lp);
      Alcotest.(check bool) "every pair matched" true
        (lp.Label.matched_pairs = lp.Label.total_pairs);
      (* r-delta ≈ Cisco decay from suppression: >20 minutes *)
      (match lp.Label.mean_r_delta with
      | Some d ->
          Alcotest.(check bool)
            (Printf.sprintf "r-delta ≈ Cisco release (%.0fs)" d)
            true
            (d > 1000.0 && d < 3600.0)
      | None -> Alcotest.fail "no r-delta")
  | l -> Alcotest.failf "expected one damped path, got %d" (List.length l));
  (* The failover path via AS5 must be observed and clean. *)
  Alcotest.(check bool) "alternative path observed clean" true
    (List.exists (fun lp -> path_ints lp = [ 4; 5; 2; 65001 ]) clean)

let test_clean_world () =
  let labeled = run_micro_world ~damper_scope:Policy.No_rfd in
  Alcotest.(check bool) "paths observed" true (labeled <> []);
  List.iter
    (fun lp ->
      Alcotest.(check bool) "nothing damped" false lp.Label.rfd)
    labeled

let test_damper_scoped_away () =
  (* AS3 damps only customers; it learns the beacon from AS2, its customer —
     so the beacon flaps are damped.  Scope it to damp only the session to
     AS4 instead (not a session it learns the prefix on): nothing damps. *)
  let labeled =
    run_micro_world
      ~damper_scope:(Policy.Only_neighbors (Asn.Set.singleton (asn 4)))
  in
  List.iter
    (fun lp -> Alcotest.(check bool) "wrong session scoped" false lp.Label.rfd)
    labeled

let test_full_pipeline_inference () =
  let labeled = run_micro_world ~damper_scope:Policy.All_neighbors in
  (* Replicate the single vantage point's evidence a few times (as multiple
     cycles/vantage points would) so the posterior concentrates. *)
  let observations =
    List.concat (List.init 6 (fun _ -> Label.observations labeled))
  in
  let data = Because.Tomography.of_observations observations in
  let config =
    { Because.Infer.default_config with
      n_samples = 500; burn_in = 300;
      node_priors = [ (asn 65001, Because.Prior.Near_zero) ] }
  in
  let result = Because.Infer.run ~rng:(Rng.create 7) ~config data in
  let categories = Because.Pinpoint.assign_with_pinpointing result in
  let damping = Because.Evaluate.damping_set categories in
  Alcotest.(check (list int)) "exactly AS3 flagged" [ 3 ]
    (List.map Asn.to_int (Asn.Set.elements damping))

let suite =
  ( "integration",
    [
      Alcotest.test_case "damped micro-world" `Slow test_damped_world;
      Alcotest.test_case "clean micro-world" `Slow test_clean_world;
      Alcotest.test_case "scope excludes session" `Slow test_damper_scoped_away;
      Alcotest.test_case "full pipeline flags the damper" `Slow
        test_full_pipeline_inference;
    ] )
