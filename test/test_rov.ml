open Because_bgp
module Rov = Because_rov.Rov
module Rng = Because_stats.Rng

let asn = Asn.of_int
let path ints = List.map asn ints
let set ints = Asn.Set.of_list (List.map asn ints)

let test_label_paths () =
  let paths = [ path [ 1; 2; 3 ]; path [ 4; 5 ]; path [ 2; 6 ] ] in
  let labeled = Rov.label_paths ~paths ~rov_ases:(set [ 2 ]) in
  Alcotest.(check (list bool)) "labels" [ true; false; true ]
    (List.map snd labeled)

let test_hidden_ases () =
  (* AS2 always co-occurs with AS1 (both ROV): AS2 is hidden. *)
  let paths = [ path [ 1; 2; 9 ]; path [ 1; 8 ]; path [ 7; 1; 2 ] ] in
  let hidden = Rov.hidden_ases ~paths ~rov_ases:(set [ 1; 2 ]) in
  Alcotest.(check (list int)) "AS2 hidden" [ 2 ]
    (List.map Asn.to_int (Asn.Set.elements hidden))

let test_hidden_none () =
  let paths = [ path [ 1; 9 ]; path [ 2; 8 ] ] in
  let hidden = Rov.hidden_ases ~paths ~rov_ases:(set [ 1; 2 ]) in
  Alcotest.(check int) "all observable" 0 (Asn.Set.cardinal hidden)

let test_benchmark_small () =
  (* 2 ROV ASs, one hiding situation; BeCAUSe should get 100% precision and
     miss only the hidden AS, mirroring §7. *)
  let rov = set [ 50; 51 ] in
  let paths =
    List.concat
      (List.init 8 (fun k ->
           let leaf = 100 + k in
           [
             path [ leaf; 50; 9 ];      (* ROV via 50 *)
             path [ leaf; 51; 50; 9 ];  (* 51 always behind 50: hidden *)
             path [ leaf; 60; 9 ];      (* clean *)
           ]))
  in
  let config =
    { Because.Infer.default_config with n_samples = 500; burn_in = 300 }
  in
  let b = Rov.benchmark ~rng:(Rng.create 3) ~config ~paths ~rov_ases:rov () in
  Alcotest.(check (float 1e-9)) "precision 100%" 1.0 b.Rov.metrics.Because.Evaluate.precision;
  Alcotest.(check bool) "positive share high" true (b.Rov.positive_share > 0.5);
  Alcotest.(check (list int)) "hidden is 51" [ 51 ]
    (List.map Asn.to_int (Asn.Set.elements b.Rov.hidden));
  (* recall limited exactly by hiding *)
  Alcotest.(check int) "one miss" 1 b.Rov.metrics.Because.Evaluate.false_negatives

let suite =
  ( "rov",
    [
      Alcotest.test_case "label paths" `Quick test_label_paths;
      Alcotest.test_case "hidden ASs" `Quick test_hidden_ases;
      Alcotest.test_case "hidden none" `Quick test_hidden_none;
      Alcotest.test_case "benchmark small" `Slow test_benchmark_small;
    ] )
