let () =
  Alcotest.run "because"
    [
      Test_rng.suite;
      Test_special.suite;
      Test_dist.suite;
      Test_stats.suite;
      Test_mcmc.suite;
      Test_bgp_types.suite;
      Test_rfd.suite;
      Test_policy.suite;
      Test_router.suite;
      Test_sim.suite;
      Test_topology.suite;
      Test_beacon.suite;
      Test_collector.suite;
      Test_wire.suite;
      Test_session.suite;
      Test_labeling.suite;
      Test_core.suite;
      Test_inference.suite;
      Test_heuristics.suite;
      Test_rov.suite;
      Test_sat.suite;
      Test_report.suite;
      Test_scenario.suite;
      Test_integration.suite;
    ]
