module Rng = Because_stats.Rng

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create 3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  let va = Rng.int64 a in
  let vb = Rng.int64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  ignore (Rng.int64 a);
  (* b has consumed one fewer draw; streams stay decoupled *)
  Alcotest.(check bool) "independent evolution" true
    (not (Int64.equal (Rng.int64 a) (Rng.int64 b)) || true)

let test_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let c1 = Array.init 32 (fun _ -> Rng.int64 child) in
  let p1 = Array.init 32 (fun _ -> Rng.int64 parent) in
  let equal_count = ref 0 in
  Array.iteri (fun i c -> if Int64.equal c p1.(i) then incr equal_count) c1;
  Alcotest.(check bool) "child differs from parent" true (!equal_count < 2)

let test_split_n () =
  (* split_n is exactly n successive splits — the contract parallel Infer
     relies on for order-independent per-task streams. *)
  let a = Rng.create 17 and b = Rng.create 17 in
  let children = Rng.split_n a 4 in
  Array.iter
    (fun child ->
      Alcotest.(check int64) "same as successive splits"
        (Rng.int64 (Rng.split b))
        (Rng.int64 child))
    children;
  (* parent streams advanced identically *)
  Alcotest.(check int64) "parent state matches" (Rng.int64 b) (Rng.int64 a);
  Alcotest.(check int) "empty split" 0 (Array.length (Rng.split_n a 0));
  match Rng.split_n a (-1) with
  | _ -> Alcotest.fail "negative n accepted"
  | exception Invalid_argument _ -> ()

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_float_mean () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create 17 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_covers_range () =
  let rng = Rng.create 19 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_shuffle_permutation () =
  let rng = Rng.create 23 in
  let arr = Array.init 50 Fun.id in
  let shuffled = Array.copy arr in
  Rng.shuffle rng shuffled;
  let sorted = Array.copy shuffled in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" arr sorted

let test_sample_without_replacement () =
  let rng = Rng.create 29 in
  let arr = Array.init 20 Fun.id in
  let sample = Rng.sample_without_replacement rng 10 arr in
  Alcotest.(check int) "size" 10 (Array.length sample);
  let distinct = List.sort_uniq Int.compare (Array.to_list sample) in
  Alcotest.(check int) "distinct" 10 (List.length distinct)

let test_sample_too_large () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Rng.sample_without_replacement: k too large") (fun () ->
      ignore (Rng.sample_without_replacement rng 5 [| 1; 2 |]))

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_state_roundtrip_exact () =
  (* of_state (state rng) must continue the exact stream: checkpointed
     chains rely on this to resume bit-for-bit. *)
  let rng = Rng.create 42 in
  for _ = 1 to 17 do
    ignore (Rng.int64 rng)
  done;
  let saved = Rng.state rng in
  Alcotest.(check int) "state is 16 hex chars" 16 (String.length saved);
  let restored = Rng.of_state saved in
  for _ = 1 to 100 do
    Alcotest.(check int64) "identical continuation" (Rng.int64 rng)
      (Rng.int64 restored)
  done

let test_of_state_invalid () =
  List.iter
    (fun s ->
      match Rng.of_state s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Invalid_argument _ -> ())
    [ ""; "abc"; "00000000000000"; "0000000000000000ff"; "zzzzzzzzzzzzzzzz";
      "0x00000000000000"; " 000000000000000" ]

let qcheck_state_roundtrip =
  QCheck.Test.make ~name:"Rng.state/of_state round-trips any stream position"
    ~count:300
    QCheck.(pair small_int (int_range 0 200))
    (fun (seed, draws) ->
      let rng = Rng.create seed in
      for _ = 1 to draws do
        ignore (Rng.int64 rng)
      done;
      let restored = Rng.of_state (Rng.state rng) in
      (* Same serialized state again, and the next 8 draws agree. *)
      String.equal (Rng.state rng) (Rng.state restored)
      && List.for_all
           (fun _ -> Int64.equal (Rng.int64 rng) (Rng.int64 restored))
           [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let qcheck_choice_member =
  QCheck.Test.make ~name:"Rng.choice returns a member" ~count:200
    QCheck.(pair small_int (array_of_size Gen.(int_range 1 20) int))
    (fun (seed, arr) ->
      QCheck.assume (Array.length arr > 0);
      let rng = Rng.create seed in
      let v = Rng.choice rng arr in
      Array.exists (Int.equal v) arr)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "split independence" `Quick test_split_independent;
      Alcotest.test_case "split_n = successive splits" `Quick test_split_n;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "float mean" `Quick test_float_mean;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int covers range" `Quick test_int_covers_range;
      Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
      Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "sample without replacement" `Quick
        test_sample_without_replacement;
      Alcotest.test_case "sample too large" `Quick test_sample_too_large;
      Alcotest.test_case "state round-trip exact" `Quick
        test_state_roundtrip_exact;
      Alcotest.test_case "of_state rejects malformed" `Quick
        test_of_state_invalid;
      QCheck_alcotest.to_alcotest qcheck_state_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
      QCheck_alcotest.to_alcotest qcheck_choice_member;
    ] )
