module Special = Because_stats.Special

let close ?(tol = 1e-8) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.10g, got %.10g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_log_gamma_integers () =
  (* Γ(n) = (n−1)! *)
  close "lnΓ(1)" 0.0 (Special.log_gamma 1.0) ~tol:1e-10;
  close "lnΓ(2)" 0.0 (Special.log_gamma 2.0) ~tol:1e-10;
  close "lnΓ(5)" (Float.log 24.0) (Special.log_gamma 5.0);
  close "lnΓ(11)" (Float.log 3628800.0) (Special.log_gamma 11.0)

let test_log_gamma_half () =
  close "lnΓ(0.5)" (Float.log (Float.sqrt Float.pi)) (Special.log_gamma 0.5);
  close "lnΓ(1.5)"
    (Float.log (0.5 *. Float.sqrt Float.pi))
    (Special.log_gamma 1.5)

let test_log_gamma_recurrence () =
  (* Γ(x+1) = x Γ(x) *)
  List.iter
    (fun x ->
      close "recurrence"
        (Special.log_gamma x +. Float.log x)
        (Special.log_gamma (x +. 1.0))
        ~tol:1e-8)
    [ 0.3; 0.7; 1.9; 3.7; 12.1 ]

let test_log_gamma_invalid () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Special.log_gamma: requires x > 0") (fun () ->
      ignore (Special.log_gamma 0.0))

let test_log_beta () =
  (* B(1,1)=1, B(2,3)=1/12, symmetry *)
  close "lnB(1,1)" 0.0 (Special.log_beta 1.0 1.0) ~tol:1e-10;
  close "lnB(2,3)" (Float.log (1.0 /. 12.0)) (Special.log_beta 2.0 3.0);
  close "symmetry" (Special.log_beta 2.5 0.7) (Special.log_beta 0.7 2.5)

let test_log1mexp () =
  (* ln(1 − e^x), checked against direct evaluation at benign points *)
  List.iter
    (fun x ->
      close "log1mexp" (Float.log (1.0 -. Float.exp x)) (Special.log1mexp x))
    [ -0.1; -1.0; -5.0; -0.5 ];
  (* deep negative: 1 − e^x ≈ 1 *)
  close "deep tail" (-.Float.exp (-40.0)) (Special.log1mexp (-40.0)) ~tol:1e-12

let test_log1mexp_invalid () =
  Alcotest.check_raises "x >= 0"
    (Invalid_argument "Special.log1mexp: requires x < 0") (fun () ->
      ignore (Special.log1mexp 0.0))

let test_log_sum_exp () =
  close "two equal" (Float.log 2.0) (Special.log_sum_exp [| 0.0; 0.0 |]);
  close "dominant" 100.0 (Special.log_sum_exp [| 100.0; -100.0 |]) ~tol:1e-10;
  Alcotest.(check (float 0.0)) "empty" neg_infinity (Special.log_sum_exp [||]);
  Alcotest.(check (float 0.0)) "all -inf" neg_infinity
    (Special.log_sum_exp [| neg_infinity; neg_infinity |])

let test_erf () =
  close "erf 0" 0.0 (Special.erf 0.0) ~tol:1e-7;
  close "erf 1" 0.8427007929 (Special.erf 1.0) ~tol:1e-5;
  close "erf -1" (-0.8427007929) (Special.erf (-1.0)) ~tol:1e-5;
  close "erf 3" 0.9999779095 (Special.erf 3.0) ~tol:1e-5

let test_normal_cdf () =
  close "median" 0.5 (Special.normal_cdf 0.0) ~tol:1e-7;
  close "one sigma" 0.8413447 (Special.normal_cdf 1.0) ~tol:1e-4;
  close "shifted" 0.5 (Special.normal_cdf ~mu:3.0 ~sigma:2.0 3.0) ~tol:1e-7

let qcheck_log1mexp_monotone =
  QCheck.Test.make ~name:"log1mexp decreasing in x" ~count:300
    QCheck.(pair (float_range (-30.0) (-0.01)) (float_range (-30.0) (-0.01)))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      QCheck.assume (lo < hi);
      (* larger x ⇒ e^x closer to 1 ⇒ smaller 1 − e^x *)
      Special.log1mexp hi <= Special.log1mexp lo +. 1e-12)

let qcheck_normal_cdf_bounds =
  QCheck.Test.make ~name:"normal_cdf within [0,1]" ~count:300
    QCheck.(float_range (-50.0) 50.0)
    (fun x ->
      let v = Special.normal_cdf x in
      v >= 0.0 && v <= 1.0)

let suite =
  ( "special",
    [
      Alcotest.test_case "log_gamma integers" `Quick test_log_gamma_integers;
      Alcotest.test_case "log_gamma half values" `Quick test_log_gamma_half;
      Alcotest.test_case "log_gamma recurrence" `Quick test_log_gamma_recurrence;
      Alcotest.test_case "log_gamma invalid" `Quick test_log_gamma_invalid;
      Alcotest.test_case "log_beta" `Quick test_log_beta;
      Alcotest.test_case "log1mexp" `Quick test_log1mexp;
      Alcotest.test_case "log1mexp invalid" `Quick test_log1mexp_invalid;
      Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
      Alcotest.test_case "erf" `Quick test_erf;
      Alcotest.test_case "normal_cdf" `Quick test_normal_cdf;
      QCheck_alcotest.to_alcotest qcheck_log1mexp_monotone;
      QCheck_alcotest.to_alcotest qcheck_normal_cdf_bounds;
    ] )
