module Schedule = Because_beacon.Schedule
module Site = Because_beacon.Site
open Because_bgp

let two_phase () =
  Schedule.two_phase ~start:0.0 ~lead_in:600.0 ~update_interval:60.0 ~flaps:3
    ~break_duration:1800.0 ~cycles:2 ()

let test_events_shape () =
  let events = Schedule.events (two_phase ()) in
  (* initial announce + 2 cycles × 3 flaps × 2 events *)
  Alcotest.(check int) "count" 13 (List.length events);
  (match events with
  | (t0, Schedule.Announce) :: (t1, Schedule.Withdraw) :: _ ->
      Alcotest.(check (float 0.0)) "initial announce at start" 0.0 t0;
      Alcotest.(check (float 0.0)) "burst opens with withdrawal" 600.0 t1
  | _ -> Alcotest.fail "unexpected prefix of events");
  (* chronological, and every burst ends with an announcement *)
  let rec monotone = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (monotone events)

let test_burst_ends_with_announce () =
  let s = two_phase () in
  List.iter
    (fun (bs, be, _) ->
      let in_burst =
        List.filter (fun (t, _) -> t >= bs && t <= be) (Schedule.events s)
      in
      match List.rev in_burst with
      | (t, Schedule.Announce) :: _ ->
          Alcotest.(check (float 1e-9)) "last event at burst end" be t
      | _ -> Alcotest.fail "burst must end with an announcement")
    (Schedule.windows s)

let test_windows () =
  let s = two_phase () in
  let windows = Schedule.windows s in
  Alcotest.(check int) "one per cycle" 2 (List.length windows);
  match windows with
  | (bs, be, bend) :: _ ->
      Alcotest.(check (float 0.0)) "burst start" 600.0 bs;
      (* (2·3−1)·60 = 300 s of burst *)
      Alcotest.(check (float 0.0)) "burst end" 900.0 be;
      Alcotest.(check (float 0.0)) "break end" 2700.0 bend
  | [] -> Alcotest.fail "no windows"

let test_of_durations_flaps () =
  let s =
    Schedule.of_durations ~update_interval:60.0 ~burst_duration:7200.0
      ~break_duration:7200.0 ~cycles:1 ()
  in
  Alcotest.(check int) "2h / (2·1min)" 60 (Schedule.flaps_per_burst s)

let test_ripe_style () =
  let s = Schedule.ripe_style ~period:7200.0 ~cycles:3 () in
  let events = Schedule.events s in
  Alcotest.(check int) "3 announce/withdraw rounds" 6 (List.length events);
  let kinds = List.map snd events in
  Alcotest.(check bool) "alternates" true
    (kinds
    = [ Schedule.Announce; Schedule.Withdraw; Schedule.Announce;
        Schedule.Withdraw; Schedule.Announce; Schedule.Withdraw ]);
  Alcotest.(check (float 0.0)) "end time" (5.0 *. 7200.0) (Schedule.end_time s)

let test_invalid_schedules () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero interval" true
    (bad (fun () ->
         Schedule.two_phase ~update_interval:0.0 ~flaps:1 ~break_duration:1.0
           ~cycles:1 ()));
  Alcotest.(check bool) "zero flaps" true
    (bad (fun () ->
         Schedule.two_phase ~update_interval:1.0 ~flaps:0 ~break_duration:1.0
           ~cycles:1 ()))

let test_site_layout () =
  let site =
    Site.make ~site_id:2 ~origin:(Asn.of_int 65003) ~anchor_period:7200.0
      ~oscillating:[ two_phase (); two_phase () ] ()
  in
  Alcotest.(check int) "anchor + 2 oscillating" 3 (List.length site.Site.prefixes);
  (match Site.anchor_prefix site with
  | Some p -> Alcotest.(check string) "anchor slot 0" "10.2.0.0/24" (Prefix.to_string p)
  | None -> Alcotest.fail "no anchor");
  match Site.oscillating_prefix site ~interval:60.0 with
  | Some p -> Alcotest.(check string) "slot 1" "10.2.1.0/24" (Prefix.to_string p)
  | None -> Alcotest.fail "no oscillating prefix"

let test_site_install () =
  let asn = Asn.of_int in
  let configs =
    [
      { Router.asn = asn 65003;
        neighbors = [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider; mrai = 0.0 } ];
        rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
      { Router.asn = asn 2;
        neighbors = [ { Router.neighbor_asn = asn 65003; relationship = Policy.Customer; mrai = 0.0 } ];
        rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    ]
  in
  let net =
    Because_sim.Network.create ~configs
      ~delay:(fun ~from_asn:_ ~to_asn:_ -> 0.5)
      ~monitored:(Asn.Set.singleton (asn 2)) ()
  in
  let site =
    Site.make ~site_id:0 ~origin:(asn 65003) ~anchor_period:7200.0
      ~anchor_cycles:1 ~oscillating:[ two_phase () ] ()
  in
  let script = Because_sim.Script.create () in
  Site.install site script;
  Because_sim.Script.install script net;
  Because_sim.Network.run net ~until:(Site.end_time site +. 10.0);
  let feed = Because_sim.Network.feed net (asn 2) in
  Alcotest.(check bool) "events observed" true (List.length feed > 10)

let suite =
  ( "beacon",
    [
      Alcotest.test_case "event shape" `Quick test_events_shape;
      Alcotest.test_case "burst ends with announce" `Quick
        test_burst_ends_with_announce;
      Alcotest.test_case "windows" `Quick test_windows;
      Alcotest.test_case "of_durations flaps" `Quick test_of_durations_flaps;
      Alcotest.test_case "ripe style" `Quick test_ripe_style;
      Alcotest.test_case "invalid schedules" `Quick test_invalid_schedules;
      Alcotest.test_case "site layout" `Quick test_site_layout;
      Alcotest.test_case "site install" `Quick test_site_install;
    ] )
