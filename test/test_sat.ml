open Because_bgp
module Solver = Because_sat.Solver
module Bt = Because_sat.Binary_tomography

let asn = Asn.of_int
let path ints = List.map asn ints

let model_of = function
  | Solver.Sat m -> m
  | Solver.Unsat -> Alcotest.fail "expected SAT"

let test_trivial_sat () =
  let m = model_of (Solver.solve ~n_vars:2 [ [ 1 ]; [ -2 ] ]) in
  Alcotest.(check bool) "x1" true m.(1);
  Alcotest.(check bool) "x2" false m.(2)

let test_unsat () =
  match Solver.solve ~n_vars:1 [ [ 1 ]; [ -1 ] ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "contradiction accepted"

let test_empty_clause_unsat () =
  match Solver.solve ~n_vars:2 [ [] ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "empty clause accepted"

let test_unit_propagation_chain () =
  (* x1, x1→x2, x2→x3 i.e. (¬x1 ∨ x2), (¬x2 ∨ x3). *)
  let m =
    model_of (Solver.solve ~n_vars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ])
  in
  Alcotest.(check (list bool)) "chain forced" [ true; true; true ]
    [ m.(1); m.(2); m.(3) ]

let test_backtracking () =
  (* (x1 ∨ x2) ∧ (¬x1 ∨ x2) forces x2. *)
  let m = model_of (Solver.solve ~n_vars:2 [ [ 1; 2 ]; [ -1; 2 ] ]) in
  Alcotest.(check bool) "x2 forced" true m.(2)

let test_satisfies_all_clauses () =
  let clauses = [ [ 1; -2; 3 ]; [ -1; 2 ]; [ 2; 3 ]; [ -3; -1 ] ] in
  let m = model_of (Solver.solve ~n_vars:3 clauses) in
  let lit l = if l > 0 then m.(l) else not m.(-l) in
  List.iter
    (fun clause ->
      Alcotest.(check bool) "clause satisfied" true (List.exists lit clause))
    clauses

let test_count_solutions () =
  (* Two free variables: 4 assignments. *)
  Alcotest.(check int) "free square" 4
    (Solver.count_solutions ~n_vars:2 []);
  Alcotest.(check int) "forced unique" 1
    (Solver.count_solutions ~n_vars:2 [ [ 1 ]; [ -2 ] ]);
  Alcotest.(check int) "unsat has none" 0
    (Solver.count_solutions ~n_vars:1 [ [ 1 ]; [ -1 ] ]);
  Alcotest.(check int) "limit respected" 3
    (Solver.count_solutions ~limit:3 ~n_vars:4 [])

let test_invalid_literal () =
  Alcotest.(check bool) "range checked" true
    (try ignore (Solver.solve ~n_vars:1 [ [ 2 ] ]); false
     with Invalid_argument _ -> true)

let qcheck_model_satisfies =
  let clause_gen =
    QCheck.Gen.(list_size (int_range 1 4) (map (fun (v, s) -> if s then v else -v)
      (pair (int_range 1 8) bool)))
  in
  QCheck.Test.make ~name:"SAT models satisfy every clause" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 20) clause_gen))
    (fun clauses ->
      match Solver.solve ~n_vars:8 clauses with
      | Solver.Unsat -> true
      | Solver.Sat m ->
          List.for_all
            (List.exists (fun l -> if l > 0 then m.(l) else not m.(-l)))
            clauses)

(* Binary tomography encodings. *)

let test_consistent_data_is_sat () =
  (* AS 3 damps everything: clean data is satisfiable and pins it down. *)
  let data =
    Because.Tomography.of_observations
      [
        (path [ 1; 3; 9 ], true);
        (path [ 2; 3; 9 ], true);
        (path [ 1; 4; 9 ], false);
        (path [ 2; 4; 9 ], false);
      ]
  in
  match Bt.solve data with
  | Bt.Unique set ->
      Alcotest.(check (list int)) "exactly AS3" [ 3 ]
        (List.map Asn.to_int (Asn.Set.elements set))
  | v -> Alcotest.failf "unexpected verdict: %a" Bt.pp_verdict v

let test_sparse_data_many_solutions () =
  (* One positive path, nobody exonerated: any non-empty subset works. *)
  let data =
    Because.Tomography.of_observations [ (path [ 1; 2; 3 ], true) ]
  in
  match Bt.solve data with
  | Bt.Multiple { count_at_least; _ } ->
      Alcotest.(check int) "2^3 − 1 damping sets" 7 count_at_least
  | v -> Alcotest.failf "unexpected verdict: %a" Bt.pp_verdict v

let test_inconsistent_deployment_is_unsat () =
  (* The AS-701 situation the paper cites as breaking SAT: a clean path
     through 701 exonerates it, while a damped path whose other members are
     all exonerated requires it. *)
  let data =
    Because.Tomography.of_observations
      [
        (path [ 10; 701; 2497; 9 ], false);  (* via the spared neighbor *)
        (path [ 10; 701; 9 ], true);         (* damped session *)
      ]
  in
  (match Bt.solve data with
  | Bt.Unsat -> ()
  | v -> Alcotest.failf "expected UNSAT, got %a" Bt.pp_verdict v);
  (* BeCAUSe handles the same data gracefully. *)
  let result =
    Because.Infer.run ~rng:(Because_stats.Rng.create 3)
      ~config:{ Because.Infer.default_config with n_samples = 200; burn_in = 150 }
      data
  in
  Alcotest.(check bool) "BeCAUSe still produces a posterior" true
    (Array.length (Because.Posterior.combined result) = 4)

let test_encoding_shape () =
  let data =
    Because.Tomography.of_observations
      [ (path [ 1; 2 ], true); (path [ 3 ], false) ]
  in
  let clauses = Bt.encode data in
  Alcotest.(check int) "one positive clause + one unit" 2 (List.length clauses);
  Alcotest.(check bool) "positive clause lists both nodes" true
    (List.mem [ 1; 2 ] clauses);
  Alcotest.(check bool) "clean node negated" true (List.mem [ -3 ] clauses)

let suite =
  ( "sat",
    [
      Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
      Alcotest.test_case "unsat" `Quick test_unsat;
      Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
      Alcotest.test_case "unit propagation" `Quick test_unit_propagation_chain;
      Alcotest.test_case "backtracking" `Quick test_backtracking;
      Alcotest.test_case "model satisfies" `Quick test_satisfies_all_clauses;
      Alcotest.test_case "count solutions" `Quick test_count_solutions;
      Alcotest.test_case "invalid literal" `Quick test_invalid_literal;
      QCheck_alcotest.to_alcotest qcheck_model_satisfies;
      Alcotest.test_case "consistent data unique" `Quick
        test_consistent_data_is_sat;
      Alcotest.test_case "sparse data many solutions" `Quick
        test_sparse_data_many_solutions;
      Alcotest.test_case "inconsistent deployment UNSAT" `Quick
        test_inconsistent_deployment_is_unsat;
      Alcotest.test_case "encoding shape" `Quick test_encoding_shape;
    ] )
