open Because_bgp
module Project = Because_collector.Project
module Vantage = Because_collector.Vantage
module Noise = Because_collector.Noise
module Dump = Because_collector.Dump
module Rng = Because_stats.Rng

let asn = Asn.of_int

let test_project_names () =
  Alcotest.(check int) "three projects" 3 (List.length Project.all);
  Alcotest.(check string) "ris" "RIPE RIS" (Project.name Project.Ris)

let test_routeviews_export_near_50s () =
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let propagation = Rng.range_float rng 1.0 30.0 in
    let d = Project.export_delay rng Project.Routeviews ~sent_to_received:propagation in
    let total = propagation +. d in
    Alcotest.(check bool)
      (Printf.sprintf "total %.1f near 50s" total)
      true
      (total >= 49.9 && total <= 53.0)
  done

let test_isolario_export_fast () =
  let rng = Rng.create 2 in
  for _ = 1 to 200 do
    let d = Project.export_delay rng Project.Isolario ~sent_to_received:5.0 in
    Alcotest.(check bool) "within 30s budget" true (d >= 0.0 && d <= 25.0)
  done

let test_ris_export_diverse () =
  let rng = Rng.create 3 in
  let ds =
    Array.init 2000 (fun _ ->
        Project.export_delay rng Project.Ris ~sent_to_received:5.0)
  in
  Alcotest.(check bool) "bounded" true
    (Array.for_all (fun d -> d >= 0.0 && d <= 120.0) ds);
  Alcotest.(check bool) "spread out" true (Because_stats.Summary.std ds > 10.0)

let test_vantage_assign () =
  let rng = Rng.create 4 in
  let hosts = List.init 50 (fun i -> asn (100 + i)) in
  let vps = Vantage.assign rng ~hosts ~per_project_share:[ 0.5; 0.4; 0.3 ] in
  (* every host covered *)
  Alcotest.(check int) "hosts covered" 50 (Asn.Set.cardinal (Vantage.hosts vps));
  (* distinct ids *)
  let ids = List.map (fun (v : Vantage.t) -> v.Vantage.vp_id) vps in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids));
  (* overlap exists: more sessions than hosts *)
  Alcotest.(check bool) "multi-project hosts exist" true (List.length vps > 50)

let test_noise_corrupt_rate () =
  let rng = Rng.create 5 in
  let agg = { Update.aggregator_asn = asn 1; sent_at = 0.0; valid = true } in
  let u =
    Update.Announce
      { prefix = Prefix.of_string "10.0.0.0/24"; as_path = [ asn 1 ];
        aggregator = Some agg }
  in
  let n = 20_000 in
  let corrupted = ref 0 in
  for _ = 1 to n do
    match Noise.corrupt_aggregator rng Noise.realistic u with
    | Update.Announce { aggregator = Some { valid = false; _ }; _ } ->
        incr corrupted
    | _ -> ()
  done;
  let rate = float_of_int !corrupted /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "~1%% corruption (got %.3f)" rate)
    true
    (rate > 0.005 && rate < 0.02)

let test_noise_none () =
  let rng = Rng.create 6 in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "no outage" []
    (Noise.outage_windows rng Noise.none ~campaign_end:1000.0)

let test_outage_within_campaign () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    match Noise.outage_windows rng Noise.realistic ~campaign_end:10_000.0 with
    | [ (lo, hi) ] ->
        Alcotest.(check bool) "window sane" true
          (lo >= 0.0 && lo <= 10_000.0 && hi = lo +. 1800.0)
    | [] -> ()
    | _ -> Alcotest.fail "max_outages = 1 yielded several windows"
  done

(* [max_outages = 1] must keep consuming the historical single-window RNG
   stream: one bernoulli draw, then one uniform iff the slot hit. *)
let test_outage_single_slot_stream () =
  let windows =
    let rng = Rng.create 7 in
    Noise.outage_windows rng Noise.realistic ~campaign_end:10_000.0
  in
  let manual =
    let rng = Rng.create 7 in
    if Rng.float rng < Noise.realistic.Noise.session_reset_rate then
      let start = Rng.range_float rng 0.0 10_000.0 in
      [ (start, start +. Noise.realistic.Noise.reset_outage) ]
    else []
  in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "same stream as the historical single-window draw" manual windows

let test_multiple_outages () =
  let rng = Rng.create 11 in
  let params =
    { Noise.none with session_reset_rate = 1.0; reset_outage = 100.0;
      max_outages = 3 }
  in
  let windows = Noise.outage_windows rng params ~campaign_end:5_000.0 in
  Alcotest.(check int) "three windows" 3 (List.length windows);
  Alcotest.(check bool) "sorted" true
    (windows = List.sort compare windows)

(* Dump building over a tiny simulated network. *)
let build_dump () =
  let configs =
    [
      { Router.asn = asn 65001;
        neighbors = [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider; mrai = 0.0 } ];
        rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
      { Router.asn = asn 2;
        neighbors = [ { Router.neighbor_asn = asn 65001; relationship = Policy.Customer; mrai = 0.0 } ];
        rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    ]
  in
  let net =
    Because_sim.Network.create ~configs
      ~delay:(fun ~from_asn:_ ~to_asn:_ -> 1.0)
      ~monitored:(Asn.Set.singleton (asn 2)) ()
  in
  let p = Prefix.of_string "10.0.0.0/24" in
  Because_sim.Network.schedule_announce net ~time:0.0 ~origin:(asn 65001) p;
  Because_sim.Network.schedule_withdraw net ~time:100.0 ~origin:(asn 65001) p;
  Because_sim.Network.schedule_announce net ~time:200.0 ~origin:(asn 65001) p;
  Because_sim.Network.run net ~until:1000.0;
  let vp = Vantage.make ~vp_id:0 ~host_asn:(asn 2) ~project:Project.Isolario in
  ( Dump.of_network (Rng.create 8) net ~vantages:[ vp ] ~noise:Noise.none
      ~campaign_end:1000.0,
    p )

let test_dump_records () =
  let records, p = build_dump () in
  Alcotest.(check int) "three updates" 3 (List.length records);
  List.iter
    (fun (r : Dump.record) ->
      Alcotest.(check bool) "export after receipt" true
        (r.Dump.export_at >= r.Dump.received_at))
    records;
  let sorted =
    List.for_all2
      (fun (a : Dump.record) (b : Dump.record) -> a.export_at <= b.export_at)
      (List.filteri (fun i _ -> i < 2) records)
      (List.tl records)
  in
  Alcotest.(check bool) "sorted by export" true sorted;
  Alcotest.(check int) "for_prefix_vp" 3
    (List.length (Dump.for_prefix_vp records p 0));
  Alcotest.(check int) "prefix set" 1 (Prefix.Set.cardinal (Dump.prefixes records));
  Alcotest.(check (list int)) "vp ids" [ 0 ] (Dump.vp_ids records)

let test_valid_aggregator_filter () =
  let records, _ = build_dump () in
  let kept = Dump.announcements_with_valid_aggregator records in
  (* all clean here: 2 announcements + 1 withdrawal *)
  Alcotest.(check int) "all kept" 3 (List.length kept);
  (* corrupt one announcement by hand *)
  let corrupt =
    List.map
      (fun (r : Dump.record) ->
        match r.Dump.update with
        | Update.Announce a ->
            { r with
              Dump.update =
                Update.Announce
                  { a with
                    aggregator =
                      Option.map
                        (fun g -> { g with Update.valid = false })
                        a.aggregator } }
        | Update.Withdraw _ -> r)
      records
  in
  Alcotest.(check int) "invalid announcements dropped, withdrawal kept" 1
    (List.length (Dump.announcements_with_valid_aggregator corrupt))

let suite =
  ( "collector",
    [
      Alcotest.test_case "project names" `Quick test_project_names;
      Alcotest.test_case "routeviews ~50s" `Quick test_routeviews_export_near_50s;
      Alcotest.test_case "isolario fast" `Quick test_isolario_export_fast;
      Alcotest.test_case "ris diverse" `Quick test_ris_export_diverse;
      Alcotest.test_case "vantage assign" `Quick test_vantage_assign;
      Alcotest.test_case "noise corrupt rate" `Quick test_noise_corrupt_rate;
      Alcotest.test_case "noise none" `Quick test_noise_none;
      Alcotest.test_case "outage window" `Quick test_outage_within_campaign;
      Alcotest.test_case "single-slot outage stream" `Quick
        test_outage_single_slot_stream;
      Alcotest.test_case "multiple outages" `Quick test_multiple_outages;
      Alcotest.test_case "dump records" `Quick test_dump_records;
      Alcotest.test_case "aggregator filter" `Quick test_valid_aggregator_filter;
    ] )
