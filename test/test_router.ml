open Because_bgp

let asn = Asn.of_int
let prefix = Prefix.of_string "10.0.0.0/24"

let neighbor ?(mrai = 0.0) n relationship =
  { Router.neighbor_asn = asn n; relationship; mrai }

let config ?(rfd_scope = Policy.No_rfd) ?(rfd_params = Rfd_params.cisco) me
    neighbors =
  { Router.asn = asn me; neighbors; rfd_scope; rfd_params }

let announce ?(path = [ 1 ]) ?agg () =
  Update.Announce
    { prefix; as_path = List.map asn path; aggregator = agg }

let withdraw = Update.Withdraw { prefix }

let sends actions =
  List.filter_map
    (function
      | Router.Send { to_asn; update } -> Some (Asn.to_int to_asn, update)
      | Router.Set_reuse_timer _ | Router.Set_mrai_timer _ | Router.Feed _ ->
          None)
    actions

let feeds actions =
  List.filter_map
    (function Router.Feed u -> Some u | _ -> None)
    actions

let send_paths actions =
  List.map
    (fun (to_, u) ->
      (to_, Option.map (List.map Asn.to_int) (Update.as_path u)))
    (sends actions)

let test_propagation () =
  (* Router 2 with customer 1 (origin side) and provider 3. *)
  let r =
    Router.create
      (config 2 [ neighbor 1 Policy.Customer; neighbor 3 Policy.Provider ])
  in
  let actions = Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ()) in
  Alcotest.(check (list (pair int (option (list int)))))
    "customer route exported to provider with self prepended"
    [ (3, Some [ 2; 1 ]) ]
    (send_paths actions);
  Alcotest.(check int) "feed emitted" 1 (List.length (feeds actions));
  match Router.best_route r prefix with
  | Some (Router.Via v) ->
      Alcotest.(check int) "best via 1" 1 (Asn.to_int v.from_asn)
  | _ -> Alcotest.fail "no best route"

let test_withdrawal_propagates () =
  let r =
    Router.create
      (config 2 [ neighbor 1 Policy.Customer; neighbor 3 Policy.Provider ])
  in
  ignore (Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ()));
  let actions = Router.handle_update r ~now:1.0 ~from:(asn 1) withdraw in
  (match sends actions with
  | [ (3, Update.Withdraw _) ] -> ()
  | _ -> Alcotest.fail "expected withdrawal to 3");
  Alcotest.(check (option reject)) "loc-rib empty"
    None
    (Option.map ignore (Router.best_route r prefix))

let test_spurious_withdrawal_silent () =
  let r = Router.create (config 2 [ neighbor 1 Policy.Customer ]) in
  let actions = Router.handle_update r ~now:0.0 ~from:(asn 1) withdraw in
  Alcotest.(check int) "nothing sent" 0 (List.length (sends actions))

let test_decision_prefers_customer () =
  let r =
    Router.create
      (config 5
         [ neighbor 1 Policy.Provider; neighbor 2 Policy.Customer;
           neighbor 6 Policy.Customer ])
  in
  ignore
    (Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ~path:[ 1; 9 ] ()));
  ignore
    (Router.handle_update r ~now:1.0 ~from:(asn 2)
       (announce ~path:[ 2; 8; 9 ] ()));
  (* Customer route wins despite being longer. *)
  match Router.best_route r prefix with
  | Some (Router.Via v) ->
      Alcotest.(check int) "customer wins" 2 (Asn.to_int v.from_asn)
  | _ -> Alcotest.fail "no best"

let test_decision_prefers_shorter_then_lower_asn () =
  let r =
    Router.create
      (config 5
         [ neighbor 2 Policy.Customer; neighbor 3 Policy.Customer;
           neighbor 4 Policy.Customer ])
  in
  ignore
    (Router.handle_update r ~now:0.0 ~from:(asn 4)
       (announce ~path:[ 4; 8; 9 ] ()));
  ignore
    (Router.handle_update r ~now:1.0 ~from:(asn 3) (announce ~path:[ 3; 9 ] ()));
  (match Router.best_route r prefix with
  | Some (Router.Via v) ->
      Alcotest.(check int) "shorter wins" 3 (Asn.to_int v.from_asn)
  | _ -> Alcotest.fail "no best");
  ignore
    (Router.handle_update r ~now:2.0 ~from:(asn 2) (announce ~path:[ 2; 9 ] ()));
  match Router.best_route r prefix with
  | Some (Router.Via v) ->
      Alcotest.(check int) "lower asn tiebreak" 2 (Asn.to_int v.from_asn)
  | _ -> Alcotest.fail "no best"

let test_split_horizon () =
  let r =
    Router.create
      (config 2 [ neighbor 1 Policy.Customer; neighbor 3 Policy.Customer ])
  in
  let actions = Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ()) in
  Alcotest.(check bool) "never re-advertised to source" true
    (List.for_all (fun (to_, _) -> to_ <> 1) (sends actions))

let test_valley_free_not_exported () =
  (* Peer-learned route must not go to the provider or another peer. *)
  let r =
    Router.create
      (config 2
         [ neighbor 1 Policy.Peer; neighbor 3 Policy.Provider;
           neighbor 4 Policy.Peer; neighbor 5 Policy.Customer ])
  in
  let actions = Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ()) in
  Alcotest.(check (list (pair int (option (list int)))))
    "only the customer hears a peer route"
    [ (5, Some [ 2; 1 ]) ]
    (send_paths actions)

let test_loop_rejected () =
  let r = Router.create (config 2 [ neighbor 1 Policy.Customer ]) in
  let actions =
    Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ~path:[ 1; 2; 9 ] ())
  in
  Alcotest.(check int) "nothing sent" 0 (List.length (sends actions));
  Alcotest.(check bool) "not installed" true
    (Router.best_route r prefix = None)

let test_duplicate_not_resent () =
  let r =
    Router.create
      (config 2 [ neighbor 1 Policy.Customer; neighbor 3 Policy.Provider ])
  in
  ignore (Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ()));
  let again = Router.handle_update r ~now:1.0 ~from:(asn 1) (announce ()) in
  Alcotest.(check int) "duplicate suppressed" 0 (List.length (sends again))

let test_fresh_aggregator_resent () =
  let agg t = { Update.aggregator_asn = asn 1; sent_at = t; valid = true } in
  let r =
    Router.create
      (config 2 [ neighbor 1 Policy.Customer; neighbor 3 Policy.Provider ])
  in
  ignore
    (Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ~agg:(agg 0.0) ()));
  let again =
    Router.handle_update r ~now:5.0 ~from:(asn 1) (announce ~agg:(agg 5.0) ())
  in
  Alcotest.(check int) "fresh beacon timestamp propagates" 1
    (List.length (sends again))

let test_originate_and_withdraw () =
  let r =
    Router.create
      (config 2 [ neighbor 1 Policy.Provider; neighbor 3 Policy.Peer ])
  in
  let actions = Router.originate r ~now:0.0 prefix in
  Alcotest.(check (list (pair int (option (list int)))))
    "originated everywhere"
    [ (1, Some [ 2 ]); (3, Some [ 2 ]) ]
    (send_paths actions);
  let actions = Router.withdraw_origin r ~now:1.0 prefix in
  Alcotest.(check int) "withdrawn everywhere" 2 (List.length (sends actions))

let test_mrai_gates_announcements () =
  let r =
    Router.create
      (config 2
         [ neighbor 1 Policy.Customer; neighbor ~mrai:30.0 3 Policy.Provider ])
  in
  let agg t = { Update.aggregator_asn = asn 1; sent_at = t; valid = true } in
  let first =
    Router.handle_update r ~now:0.0 ~from:(asn 1) (announce ~agg:(agg 0.0) ())
  in
  Alcotest.(check int) "first goes out" 1 (List.length (sends first));
  (* A new announcement 5 s later is gated: timer, no send. *)
  let second =
    Router.handle_update r ~now:5.0 ~from:(asn 1) (announce ~agg:(agg 5.0) ())
  in
  Alcotest.(check int) "gated" 0 (List.length (sends second));
  let timers =
    List.filter_map
      (function
        | Router.Set_mrai_timer { at; _ } -> Some at
        | _ -> None)
      second
  in
  Alcotest.(check (list (float 0.0))) "timer at gate end" [ 30.0 ] timers;
  (* Withdrawals bypass MRAI. *)
  let w = Router.handle_update r ~now:6.0 ~from:(asn 1) withdraw in
  (match sends w with
  | [ (3, Update.Withdraw _) ] -> ()
  | _ -> Alcotest.fail "withdrawal should bypass MRAI");
  (* Re-announce, then flush at timer expiry. *)
  ignore (Router.handle_update r ~now:7.0 ~from:(asn 1) (announce ~agg:(agg 7.0) ()));
  let flushed = Router.handle_mrai_expiry r ~now:30.0 ~neighbor:(asn 3) ~prefix in
  Alcotest.(check int) "flushed" 1 (List.length (sends flushed))

let flap r ~from k =
  (* k rounds of withdraw+announce one minute apart, returning all actions. *)
  let actions = ref [] in
  for i = 0 to k - 1 do
    let t = float_of_int i *. 120.0 in
    actions := Router.handle_update r ~now:t ~from withdraw :: !actions;
    actions :=
      Router.handle_update r ~now:(t +. 60.0) ~from (announce ()) :: !actions
  done;
  List.concat (List.rev !actions)

let test_rfd_suppression_and_release () =
  let r =
    Router.create
      (config ~rfd_scope:Policy.All_neighbors 2
         [ neighbor 1 Policy.Customer; neighbor 3 Policy.Provider ])
  in
  ignore (Router.handle_update r ~now:(-600.0) ~from:(asn 1) (announce ()));
  let actions = flap r ~from:(asn 1) 4 in
  (* Suppression must have kicked in. *)
  Alcotest.(check bool) "suppressing" true (Router.is_suppressing r ~now:500.0);
  let reuse_timers =
    List.filter_map
      (function Router.Set_reuse_timer { at; _ } -> Some at | _ -> None)
      actions
  in
  Alcotest.(check bool) "reuse timer armed" true (reuse_timers <> []);
  (* While suppressed the loc-rib ignores the session even though the last
     update was an announcement. *)
  Alcotest.(check bool) "best gone while suppressed" true
    (Router.best_route r prefix = None);
  (* Fire the reuse check once the penalty has decayed. *)
  let state = Option.get (Router.rfd_state r ~neighbor:(asn 1) ~prefix) in
  let eta = Option.get (Rfd.reuse_eta state ~now:500.0) in
  let released = Router.handle_reuse_check r ~now:(eta +. 1.0) ~neighbor:(asn 1) ~prefix in
  (match send_paths released with
  | [ (3, Some [ 2; 1 ]) ] -> ()
  | other ->
      Alcotest.failf "expected delayed re-advertisement, got %d sends"
        (List.length other));
  Alcotest.(check bool) "best restored" true
    (Router.best_route r prefix <> None)

let test_rfd_scope_respected () =
  (* Damping only customers: a peer session flaps freely. *)
  let r =
    Router.create
      (config ~rfd_scope:Policy.Only_customers 2
         [ neighbor 1 Policy.Peer; neighbor 3 Policy.Customer ])
  in
  ignore (flap r ~from:(asn 1) 6);
  Alcotest.(check bool) "peer session not damped" false
    (Router.is_suppressing r ~now:2000.0)

let test_unknown_neighbor_rejected () =
  let r = Router.create (config 2 [ neighbor 1 Policy.Customer ]) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Router.handle_update r ~now:0.0 ~from:(asn 9) (announce ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Property: the flattened hot path (dense neighbor ids, interned paths,
   precomputed export bits) pins to a naive reference on random inputs.  *)

module Rng = Because_stats.Rng

(* Reference Gao–Rexford selection over a mirror adj-RIB-in kept as an
   assoc list: highest local-pref, shortest path, lowest neighbor ASN. *)
let reference_best neighbors rib =
  List.fold_left
    (fun acc (n : Router.neighbor) ->
      match List.assoc_opt n.Router.neighbor_asn rib with
      | None -> acc
      | Some path ->
          let pref = Policy.local_pref n.Router.relationship in
          let len = List.length path in
          let better =
            match acc with
            | None -> true
            | Some (_, i_pref, i_len, i_asn) ->
                if pref <> i_pref then pref > i_pref
                else if len <> i_len then len < i_len
                else Asn.compare n.Router.neighbor_asn i_asn < 0
          in
          if better then Some ((n, path), pref, len, n.Router.neighbor_asn)
          else acc)
    None neighbors
  |> Option.map (fun (winner, _, _, _) -> winner)

let qcheck_decide_matches_reference =
  QCheck.Test.make ~name:"flattened decide/export pins to reference"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n_neighbors = 2 + Rng.int rng 6 in
      let rels = [| Policy.Customer; Policy.Peer; Policy.Provider |] in
      let neighbors =
        List.init n_neighbors (fun i ->
            { Router.neighbor_asn = asn (10 + i);
              relationship = rels.(Rng.int rng 3);
              mrai = 0.0 })
      in
      let r = Router.create (config 2 neighbors) in
      let rib = ref [] in
      for step = 1 to 40 do
        let n = List.nth neighbors (Rng.int rng n_neighbors) in
        let from = n.Router.neighbor_asn in
        let now = float_of_int step in
        let update =
          if Rng.float rng < 0.3 then Update.Withdraw { prefix }
          else begin
            let len = 1 + Rng.int rng 4 in
            let path =
              from :: List.init len (fun i -> asn (100 + Rng.int rng 20 + i))
            in
            Update.Announce { prefix; as_path = path; aggregator = None }
          end
        in
        let actions = Router.handle_update r ~now ~from update in
        (rib :=
           match update with
           | Update.Withdraw _ -> List.remove_assoc from !rib
           | Update.Announce { as_path; _ } ->
               (from, as_path) :: List.remove_assoc from !rib);
        (* 1. Best route must match the reference selection. *)
        (match (Router.best_route r prefix, reference_best neighbors !rib) with
        | None, None -> ()
        | Some (Router.Via v), Some (n, path) ->
            if not (Asn.equal v.from_asn n.Router.neighbor_asn) then
              Alcotest.failf "seed %d step %d: best via %a, reference %a" seed
                step Asn.pp v.from_asn Asn.pp n.Router.neighbor_asn;
            Alcotest.(check (list int))
              "best path" (List.map Asn.to_int path)
              (List.map Asn.to_int (Apath.nodes v.as_path))
        | Some (Router.Origin _), _ ->
            Alcotest.fail "origin without originate"
        | Some (Router.Via _), None | None, Some _ ->
            Alcotest.failf "seed %d step %d: best-route presence mismatch"
              seed step);
        (* 2. Every Send must satisfy valley-free export and split horizon
           (the precomputed per-(relationship, neighbor) bits). *)
        List.iter
          (fun (to_, u) ->
            match (Router.best_route r prefix, u) with
            | Some (Router.Via v), Update.Announce _ ->
                let towards =
                  List.find
                    (fun (m : Router.neighbor) ->
                      Asn.to_int m.Router.neighbor_asn = to_)
                    neighbors
                in
                if Asn.to_int v.from_asn = to_ then
                  Alcotest.failf "seed %d step %d: split horizon violated"
                    seed step;
                if
                  not
                    (Policy.export_ok
                       ~learned_from:(Some v.relationship)
                       ~towards:towards.Router.relationship)
                then
                  Alcotest.failf "seed %d step %d: valley-free violated" seed
                    step
            | _ -> ())
          (sends actions)
      done;
      true)

let qcheck_session_down_equals_withdrawals =
  QCheck.Test.make
    ~name:"session down == withdrawing every route of that session" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 77) in
      let neighbors =
        [ neighbor 10 Policy.Customer; neighbor 11 Policy.Peer;
          neighbor 12 Policy.Provider ]
      in
      let prefixes =
        [ Prefix.of_string "10.0.0.0/24"; Prefix.of_string "10.0.1.0/24";
          Prefix.of_string "10.0.2.0/24" ]
      in
      (* One random update sequence, replayed into both routers. *)
      let updates =
        List.concat_map
          (fun p ->
            List.filter_map
              (fun (n : Router.neighbor) ->
                if Rng.float rng < 0.7 then
                  Some
                    ( n.Router.neighbor_asn,
                      Update.Announce
                        { prefix = p;
                          as_path =
                            [ n.Router.neighbor_asn;
                              asn (100 + Rng.int rng 5) ];
                          aggregator = None } )
                else None)
              neighbors)
          prefixes
      in
      let r_down = Router.create (config 2 neighbors) in
      let r_wdr = Router.create (config 2 neighbors) in
      List.iter
        (fun (from, u) ->
          ignore (Router.handle_update r_down ~now:1.0 ~from u);
          ignore (Router.handle_update r_wdr ~now:1.0 ~from u))
        updates;
      (* Tear down AS10's session on one router and explicitly withdraw its
         routes on the other: loc-RIBs must agree on every prefix. *)
      ignore (Router.handle_session_down r_down ~now:2.0 ~neighbor:(asn 10));
      List.iter
        (fun p ->
          ignore
            (Router.handle_update r_wdr ~now:2.0 ~from:(asn 10)
               (Update.Withdraw { prefix = p })))
        prefixes;
      List.for_all
        (fun p ->
          match (Router.best_route r_down p, Router.best_route r_wdr p) with
          | None, None -> true
          | Some (Router.Via a), Some (Router.Via b) ->
              Asn.equal a.from_asn b.from_asn
              && Apath.equal a.as_path b.as_path
          | _ -> false)
        prefixes)

let suite =
  ( "router",
    [
      QCheck_alcotest.to_alcotest qcheck_decide_matches_reference;
      QCheck_alcotest.to_alcotest qcheck_session_down_equals_withdrawals;
      Alcotest.test_case "propagation" `Quick test_propagation;
      Alcotest.test_case "withdrawal propagates" `Quick test_withdrawal_propagates;
      Alcotest.test_case "spurious withdrawal silent" `Quick
        test_spurious_withdrawal_silent;
      Alcotest.test_case "customer preferred" `Quick test_decision_prefers_customer;
      Alcotest.test_case "path length then ASN" `Quick
        test_decision_prefers_shorter_then_lower_asn;
      Alcotest.test_case "split horizon" `Quick test_split_horizon;
      Alcotest.test_case "valley-free export" `Quick test_valley_free_not_exported;
      Alcotest.test_case "loop rejected" `Quick test_loop_rejected;
      Alcotest.test_case "duplicate not resent" `Quick test_duplicate_not_resent;
      Alcotest.test_case "fresh aggregator resent" `Quick
        test_fresh_aggregator_resent;
      Alcotest.test_case "originate/withdraw" `Quick test_originate_and_withdraw;
      Alcotest.test_case "MRAI gating" `Quick test_mrai_gates_announcements;
      Alcotest.test_case "RFD suppression and release" `Quick
        test_rfd_suppression_and_release;
      Alcotest.test_case "RFD scope respected" `Quick test_rfd_scope_respected;
      Alcotest.test_case "unknown neighbor" `Quick test_unknown_neighbor_rejected;
    ] )
