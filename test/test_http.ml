(* The embedded HTTP server: parser hardening, router dispatch, the
   threaded server over real sockets, and the query plane's
   generation-stamped snapshot cache.

   The parser is total by contract — the fuzz cases feed it arbitrary
   garbage, arbitrary split points and pipelined concatenations and only
   ever observe the three declared outcomes.  The server tests bind
   127.0.0.1:0 (a free port) and speak HTTP/1.1 over Unix sockets, so
   they exercise the same code path as a real client. *)

module Req = Because_http.Request
module Resp = Because_http.Response
module Router = Because_http.Router
module Server = Because_http.Server
module Service = Because_service.Service
module Query = Because_service.Query
module Sspec = Because_service.Spec
module Admission = Because_service.Admission

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

let parse_ok ?limits s =
  match Req.parse ?limits s ~pos:0 with
  | `Ok (r, n) -> (r, n)
  | `More -> Alcotest.failf "wanted Ok, got More on %S" s
  | `Error e -> Alcotest.failf "wanted Ok, got %s on %S" (Req.error_message e) s

let parse_err ?limits s =
  match Req.parse ?limits s ~pos:0 with
  | `Error e -> e
  | `Ok _ -> Alcotest.failf "wanted Error, got Ok on %S" s
  | `More -> Alcotest.failf "wanted Error, got More on %S" s

let test_parse_basics () =
  let raw = "GET /status?asn=42&x=a%20b HTTP/1.1\r\nHost: h\r\n\r\n" in
  let r, n = parse_ok raw in
  Alcotest.(check string) "meth" "GET" r.Req.meth;
  Alcotest.(check string) "path" "/status" r.Req.path;
  Alcotest.(check string) "version" "HTTP/1.1" r.Req.version;
  Alcotest.(check (option string)) "query int" (Some "42")
    (Req.query_param r "asn");
  Alcotest.(check (option string)) "query decoded" (Some "a b")
    (Req.query_param r "x");
  Alcotest.(check (option string)) "header case-insensitive" (Some "h")
    (Req.header r "HOST");
  Alcotest.(check string) "empty body" "" r.Req.body;
  Alcotest.(check int) "consumed all" (String.length raw) n;
  (* Body framing via Content-Length. *)
  let raw = "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello" in
  let r, n = parse_ok raw in
  Alcotest.(check string) "body" "hello" r.Req.body;
  Alcotest.(check int) "consumed body too" (String.length raw) n;
  (* Path percent-decoding; '+' stays literal outside the query. *)
  let r, _ = parse_ok "GET /a%2Fb+c HTTP/1.1\r\n\r\n" in
  Alcotest.(check string) "decoded path" "/a/b+c" r.Req.path;
  Alcotest.(check string) "invalid escapes pass through" "%zz %4"
    (Req.percent_decode "%zz+%4")

let test_parse_incremental_and_pipelined () =
  let one = "GET /a HTTP/1.1\r\nHost: h\r\n\r\n" in
  let two = one ^ "POST /b HTTP/1.0\r\nContent-Length: 2\r\n\r\nxy" in
  (* Every proper prefix asks for more bytes; never errors, never
     commits early. *)
  for cut = 0 to String.length one - 1 do
    match Req.parse (String.sub one 0 cut) ~pos:0 with
    | `More -> ()
    | `Ok _ -> Alcotest.failf "Ok on %d-byte prefix" cut
    | `Error _ -> Alcotest.failf "Error on %d-byte prefix" cut
  done;
  (* Pipelined successor parses from the reported offset. *)
  let r1, n1 = parse_ok two in
  Alcotest.(check string) "first of pipeline" "/a" r1.Req.path;
  (match Req.parse two ~pos:n1 with
  | `Ok (r2, n2) ->
      Alcotest.(check string) "second of pipeline" "/b" r2.Req.path;
      Alcotest.(check string) "second body" "xy" r2.Req.body;
      Alcotest.(check int) "pipeline consumed all" (String.length two) n2
  | _ -> Alcotest.fail "second pipelined request did not parse")

let test_parse_rejections () =
  let bad s =
    match parse_err s with
    | Req.Bad_request _ -> ()
    | Req.Too_large _ -> Alcotest.failf "wanted 400, got 413 on %S" s
  in
  bad "NOT-HTTP\r\n\r\n";
  bad "GET /a\r\n\r\n";
  bad "GET /a SPDY/9\r\n\r\n";
  bad "G@T /a HTTP/1.1\r\n\r\n";
  bad "GET /a HTTP/1.1\r\nno-colon\r\n\r\n";
  bad "GET /a HTTP/1.1\r\nH: a\x01b\r\n\r\n";
  (* Framing games are refused, not guessed at. *)
  bad "POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  bad "POST /a HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n";
  bad "POST /a HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
  bad "POST /a HTTP/1.1\r\nContent-Length: -1\r\n\r\n";
  Alcotest.(check int) "400 status" 400
    (Req.error_status (parse_err "GET /a\r\n\r\n"));
  (* Declared sizes are capped before any buffering. *)
  let limits = { Req.max_head = 128; max_body = 16 } in
  (match parse_err ~limits "POST /a HTTP/1.1\r\nContent-Length: 17\r\n\r\n" with
  | Req.Too_large _ -> ()
  | Req.Bad_request _ -> Alcotest.fail "oversized declared body not 413");
  let big = "GET /a HTTP/1.1\r\nH: " ^ String.make 200 'x' in
  (match Req.parse ~limits big ~pos:0 with
  | `Error (Req.Too_large e) ->
      Alcotest.(check int) "413 status" 413 (Req.error_status (Req.Too_large e))
  | _ -> Alcotest.fail "unterminated oversized head not 413")

let test_keep_alive () =
  let ka s = Req.keep_alive (fst (parse_ok s)) in
  Alcotest.(check bool) "1.1 default on" true (ka "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "1.1 close wins" false
    (ka "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "1.0 default off" false (ka "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 opt-in" true
    (ka "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")

let qcheck_parser_total_on_garbage =
  QCheck.Test.make ~name:"parser total on arbitrary bytes" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 300) Gen.char)
    (fun s ->
      List.for_all
        (fun pos ->
          match Req.parse s ~pos with `Ok _ | `More | `Error _ -> true)
        [ 0; String.length s / 2 ])

let qcheck_parser_split_points =
  let sample =
    "POST /submit?x=%31 HTTP/1.1\r\nHost: h\r\nX-A: b\r\n\
     Content-Length: 5\r\n\r\nhello"
  in
  QCheck.Test.make ~name:"any split of a valid request parses" ~count:200
    QCheck.(int_range 0 (String.length sample))
    (fun cut ->
      match Req.parse (String.sub sample 0 cut) ~pos:0 with
      | `More -> cut < String.length sample
      | `Ok (r, n) ->
          cut = String.length sample && n = cut && r.Req.body = "hello"
      | `Error _ -> false)

let qcheck_parser_pipelined =
  let one = "GET /x HTTP/1.1\r\nHost: h\r\n\r\n" in
  QCheck.Test.make ~name:"k pipelined copies parse to k requests" ~count:50
    QCheck.(int_range 1 8)
    (fun k ->
      let buf = String.concat "" (List.init k (fun _ -> one)) in
      let rec count pos acc =
        if pos >= String.length buf then acc
        else
          match Req.parse buf ~pos with
          | `Ok (_, n) -> count n (acc + 1)
          | `More | `Error _ -> -1
      in
      count 0 0 = k)

(* ------------------------------------------------------------------ *)
(* Router                                                               *)

let req_of s = fst (parse_ok s)

let test_router_dispatch () =
  let rt = Router.create () in
  Router.add rt ~meth:"GET" ~pattern:"/status" (fun _ _ -> Resp.text "ok");
  Router.add rt ~meth:"GET" ~pattern:"/campaigns/:id/report" (fun _ params ->
      Resp.text ("report:" ^ Option.value ~default:"?" (List.assoc_opt "id" params)));
  Router.add rt ~meth:"POST" ~pattern:"/submit" (fun _ _ -> Resp.text "posted");
  Router.add rt ~meth:"DELETE" ~pattern:"/submit" (fun _ _ -> Resp.text "gone");
  Router.add rt ~meth:"GET" ~pattern:"/boom" (fun _ _ -> failwith "renderer bug");
  let d s = Router.dispatch rt (req_of s) in
  Alcotest.(check int) "hit" 200 (d "GET /status HTTP/1.1\r\n\r\n").Resp.status;
  Alcotest.(check string) "capture decoded" "report:a b"
    (d "GET /campaigns/a%20b/report HTTP/1.1\r\n\r\n").Resp.body;
  Alcotest.(check int) "404 unknown path" 404
    (d "GET /nope HTTP/1.1\r\n\r\n").Resp.status;
  Alcotest.(check int) "404 wrong arity" 404
    (d "GET /campaigns/a/report/x HTTP/1.1\r\n\r\n").Resp.status;
  let m = d "PUT /submit HTTP/1.1\r\n\r\n" in
  Alcotest.(check int) "405 wrong method" 405 m.Resp.status;
  Alcotest.(check (option string)) "Allow lists methods, sorted"
    (Some "DELETE, POST")
    (List.assoc_opt "Allow" m.Resp.headers);
  Alcotest.(check int) "handler exception becomes 500" 500
    (d "GET /boom HTTP/1.1\r\n\r\n").Resp.status

(* ------------------------------------------------------------------ *)
(* Server over real sockets                                             *)

let with_conn port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      f fd)

let send_all fd s =
  let n = String.length s in
  let rec go i =
    if i < n then go (i + Unix.write_substring fd s i (n - i))
  in
  go 0

(* A deliberately independent mini response reader: status line, headers,
   Content-Length-framed body, leftover bytes returned for pipelining. *)
let read_responses fd count =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let find_head s from =
    let n = String.length s in
    let rec go i =
      if i + 4 > n then None
      else if String.sub s i 4 = "\r\n\r\n" then Some i
      else go (i + 1)
    in
    go from
  in
  let read_more () =
    let n = Unix.read fd chunk 0 1024 in
    if n = 0 then failwith "eof mid-response";
    Buffer.add_subbytes buf chunk 0 n
  in
  let parse_one from =
    let rec wait () =
      match find_head (Buffer.contents buf) from with
      | Some i -> i
      | None -> read_more (); wait ()
    in
    let head_end = wait () in
    let s = Buffer.contents buf in
    let head = String.sub s from (head_end - from) in
    let status =
      int_of_string (String.sub head (String.index head ' ' + 1) 3)
    in
    let clen =
      List.fold_left
        (fun acc line ->
          match String.index_opt line ':' with
          | Some i
            when String.lowercase_ascii (String.sub line 0 i)
                 = "content-length" ->
              int_of_string
                (String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)))
          | _ -> acc)
        0
        (String.split_on_char '\n' head)
    in
    let body_start = head_end + 4 in
    while Buffer.length buf < body_start + clen do
      read_more ()
    done;
    let body = String.sub (Buffer.contents buf) body_start clen in
    (status, head, body, body_start + clen)
  in
  let rec go from acc k =
    if k = 0 then List.rev acc
    else
      let status, head, body, next = parse_one from in
      go next ((status, head, body) :: acc) (k - 1)
  in
  go 0 [] count

let test_router () =
  let rt = Router.create () in
  Router.add rt ~meth:"GET" ~pattern:"/ping" (fun _ _ -> Resp.text "pong");
  Router.add rt ~meth:"POST" ~pattern:"/echo" (fun req _ ->
      Resp.text req.Req.body);
  rt

let test_server_basics () =
  let srv = Server.start ~threads:2 ~port:0 (test_router ()) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  (* Keep-alive: two requests over one connection. *)
  with_conn port (fun fd ->
      send_all fd "GET /ping HTTP/1.1\r\nHost: h\r\n\r\n";
      (match read_responses fd 1 with
      | [ (200, _, "pong") ] -> ()
      | _ -> Alcotest.fail "first keep-alive request");
      send_all fd
        "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
      match read_responses fd 1 with
      | [ (200, _, "hello") ] -> ()
      | _ -> Alcotest.fail "second keep-alive request");
  (* Pipelining: both requests in one write, answered in order. *)
  with_conn port (fun fd ->
      send_all fd
        ("POST /echo HTTP/1.1\r\nContent-Length: 1\r\n\r\na"
        ^ "POST /echo HTTP/1.1\r\nContent-Length: 1\r\n\r\nb");
      match read_responses fd 2 with
      | [ (200, _, "a"); (200, _, "b") ] -> ()
      | _ -> Alcotest.fail "pipelined responses");
  (* Contract statuses end to end: 404, 405, 400, and Connection: close. *)
  with_conn port (fun fd ->
      send_all fd "GET /nope HTTP/1.1\r\n\r\n";
      match read_responses fd 1 with
      | [ (404, _, _) ] -> ()
      | _ -> Alcotest.fail "404 over the wire");
  with_conn port (fun fd ->
      send_all fd "PUT /ping HTTP/1.1\r\n\r\n";
      match read_responses fd 1 with
      | [ (405, head, _) ] ->
          Alcotest.(check bool) "Allow over the wire" true
            (contains ~sub:"Allow: GET" head)
      | _ -> Alcotest.fail "405 over the wire");
  with_conn port (fun fd ->
      send_all fd "total garbage\r\n\r\n";
      match read_responses fd 1 with
      | [ (400, head, _) ] ->
          Alcotest.(check bool) "400 closes" true
            (contains ~sub:"Connection: close" head)
      | _ -> Alcotest.fail "400 over the wire")

let test_server_limits_and_deadline () =
  let limits = { Req.max_head = 512; max_body = 64 } in
  let srv =
    Server.start ~threads:2 ~limits ~read_timeout:0.2 ~port:0 (test_router ())
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  (* Declared-size cap: 413 before the body is even sent. *)
  with_conn port (fun fd ->
      send_all fd "POST /echo HTTP/1.1\r\nContent-Length: 65\r\n\r\n";
      match read_responses fd 1 with
      | [ (413, _, _) ] -> ()
      | _ -> Alcotest.fail "oversized declared body not 413");
  (* Slow-client deadline: a half-sent request gets dropped, not a worker
     pinned forever; the server still serves the next client. *)
  with_conn port (fun fd ->
      send_all fd "GET /pi";
      let rec drain () =
        if Unix.read fd (Bytes.create 64) 0 64 > 0 then drain ()
      in
      match drain () with
      | () -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  with_conn port (fun fd ->
      send_all fd "GET /ping HTTP/1.1\r\n\r\n";
      match read_responses fd 1 with
      | [ (200, _, "pong") ] -> ()
      | _ -> Alcotest.fail "server dead after slow client")

(* ------------------------------------------------------------------ *)
(* Adversarial pacing: the server's deadline discipline over real
   sockets.  A client may dribble bytes arbitrarily slowly or split the
   head anywhere — a complete request is always answered, an incomplete
   one is answered 408 at its deadline, and neither pins a worker. *)

let test_server_byte_at_a_time () =
  let srv = Server.start ~threads:2 ~port:0 (test_router ()) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  (* Two pipelined requests, delivered one byte at a time: both must be
     answered, in order, from the same connection. *)
  let raw =
    "POST /echo HTTP/1.1\r\nContent-Length: 1\r\n\r\na"
    ^ "GET /ping HTTP/1.1\r\nHost: h\r\n\r\n"
  in
  with_conn port (fun fd ->
      String.iter
        (fun c ->
          send_all fd (String.make 1 c);
          Thread.delay 0.001)
        raw;
      match read_responses fd 2 with
      | [ (200, _, "a"); (200, _, "pong") ] -> ()
      | _ -> Alcotest.fail "byte-at-a-time pipelined pair")

let test_server_split_every_boundary () =
  let srv = Server.start ~threads:2 ~port:0 (test_router ()) in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  let raw = "GET /ping HTTP/1.1\r\nHost: h\r\n\r\n" in
  (* Splitting the head at every byte boundary must never confuse the
     incremental parser: each half-then-rest connection gets its 200. *)
  for cut = 1 to String.length raw - 1 do
    with_conn port (fun fd ->
        send_all fd (String.sub raw 0 cut);
        Thread.delay 0.005;
        send_all fd (String.sub raw cut (String.length raw - cut));
        match read_responses fd 1 with
        | [ (200, _, "pong") ] -> ()
        | _ -> Alcotest.failf "split at byte %d" cut)
  done

let test_server_body_after_deadline_408 () =
  let srv =
    Server.start ~threads:1 ~read_timeout:5.0 ~request_deadline:0.3 ~port:0
      (test_router ())
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  (* Headers complete, body promised but withheld: the request is still
     incomplete at its deadline and must be answered 408 — not dropped
     silently, not waited on forever. *)
  with_conn port (fun fd ->
      send_all fd "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nxy";
      match read_responses fd 1 with
      | [ (408, head, _) ] ->
          Alcotest.(check bool) "408 closes" true
            (contains ~sub:"Connection: close" head)
      | _ -> Alcotest.fail "withheld body not 408");
  (* An idle keep-alive connection past the deadline is NOT 408'd: the
     deadline disarms between requests. *)
  with_conn port (fun fd ->
      send_all fd "GET /ping HTTP/1.1\r\nHost: h\r\n\r\n";
      (match read_responses fd 1 with
      | [ (200, _, "pong") ] -> ()
      | _ -> Alcotest.fail "first request");
      Thread.delay 0.5;
      send_all fd "GET /ping HTTP/1.1\r\nHost: h\r\n\r\n";
      match read_responses fd 1 with
      | [ (200, _, "pong") ] -> ()
      | _ -> Alcotest.fail "idle keep-alive survived the deadline")

let test_server_deadline_propagated () =
  (* Handlers see the request's absolute deadline and can bound their
     own waits by it. *)
  let rt = Router.create () in
  Router.add rt ~meth:"GET" ~pattern:"/deadline" (fun req _ ->
      match Req.remaining_s req with
      | Some s when s > 0.0 && s <= 1.0 -> Resp.text "bounded"
      | Some _ -> Resp.text ~status:500 "deadline out of range"
      | None -> Resp.text ~status:500 "deadline missing");
  let srv = Server.start ~threads:1 ~request_deadline:1.0 ~port:0 rt in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  with_conn (Server.port srv) (fun fd ->
      send_all fd "GET /deadline HTTP/1.1\r\n\r\n";
      match read_responses fd 1 with
      | [ (200, _, "bounded") ] -> ()
      | [ (_, _, body) ] -> Alcotest.failf "handler saw: %s" body
      | _ -> Alcotest.fail "deadline probe")

let test_server_shed_watermark () =
  let rt = Router.create () in
  Router.add rt ~meth:"GET" ~pattern:"/slow" (fun _ _ ->
      Thread.delay 0.5;
      Resp.text "done");
  let srv = Server.start ~threads:1 ~shed_watermark:1 ~port:0 rt in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  (* A occupies the single worker; B queues (depth 1 = the watermark);
     C must be shed at accept with the full backpressure contract. *)
  with_conn port (fun fd_a ->
      send_all fd_a "GET /slow HTTP/1.1\r\nHost: h\r\n\r\n";
      Thread.delay 0.15;
      with_conn port (fun fd_b ->
          send_all fd_b "GET /slow HTTP/1.1\r\nHost: h\r\n\r\n";
          Thread.delay 0.1;
          with_conn port (fun fd_c ->
              match read_responses fd_c 1 with
              | [ (503, head, _) ] ->
                  Alcotest.(check bool) "Retry-After present" true
                    (contains ~sub:"Retry-After:" head);
                  Alcotest.(check bool) "X-Queue-Depth present" true
                    (contains ~sub:"X-Queue-Depth:" head)
              | _ -> Alcotest.fail "watermark connection not shed");
          (* The clients that were admitted still complete: shedding
             preserved goodput rather than degrading everyone. *)
          (match read_responses fd_b 1 with
          | [ (200, _, "done") ] -> ()
          | _ -> Alcotest.fail "queued client B");
          match read_responses fd_a 1 with
          | [ (200, _, "done") ] -> ()
          | _ -> Alcotest.fail "running client A"))

let test_server_stop_idempotent () =
  let srv = Server.start ~threads:1 ~port:0 (test_router ()) in
  let port = Server.port srv in
  Server.stop srv;
  Server.stop srv;
  match with_conn port (fun _ -> ()) with
  | () -> Alcotest.fail "stopped server still accepting"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()

let qcheck_server_garbage =
  QCheck.Test.make ~name:"server survives arbitrary client bytes" ~count:20
    QCheck.(string_gen_of_size (Gen.int_range 1 200) Gen.char)
    (fun garbage ->
      let srv = Server.start ~threads:1 ~read_timeout:0.2 ~port:0
          (test_router ())
      in
      Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
      let port = Server.port srv in
      (try
         with_conn port (fun fd ->
             send_all fd garbage;
             let rec drain () =
               if Unix.read fd (Bytes.create 256) 0 256 > 0 then drain ()
             in
             try drain () with Unix.Unix_error _ -> ())
       with Unix.Unix_error _ -> ());
      with_conn port (fun fd ->
          send_all fd "GET /ping HTTP/1.1\r\n\r\n";
          match read_responses fd 1 with
          | [ (200, _, "pong") ] -> true
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Query plane: snapshot cache coherence and the admission contract     *)

let fresh_dir () =
  let f = Filename.temp_file "because-http" ".dir" in
  Sys.remove f;
  f

let generation_of resp =
  match List.assoc_opt "X-Generation" resp.Resp.headers with
  | Some g -> int_of_string g
  | None -> Alcotest.fail "response missing X-Generation"

let test_query_cache_coherence () =
  let svc = Service.create (Service.default_config ~state_dir:(fresh_dir ())) in
  let rt = Query.router svc in
  let get path = Router.dispatch rt (req_of ("GET " ^ path ^ " HTTP/1.1\r\n\r\n")) in
  (* Coherence: the stamp is never older than the store generation read
     before the request was made. *)
  let g0 = Service.generation svc in
  let r1 = get "/status" in
  Alcotest.(check bool) "stamp >= generation at read" true
    (generation_of r1 >= g0);
  (* Unchanged store: cached bytes, same stamp. *)
  let r2 = get "/status" in
  Alcotest.(check int) "cache hit stamp" (generation_of r1) (generation_of r2);
  Alcotest.(check string) "cache hit bytes" r1.Resp.body r2.Resp.body;
  (* A mutation bumps the generation and forces a re-render that reflects
     it. *)
  (match Service.submit svc (Sspec.default ~id:"camp1") with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "submit: %s" (Admission.reason_to_string r));
  let g1 = Service.generation svc in
  Alcotest.(check bool) "mutation bumped generation" true (g1 > g0);
  let r3 = get "/status" in
  Alcotest.(check bool) "re-rendered stamp" true (generation_of r3 >= g1);
  Alcotest.(check bool) "re-rendered body sees the mutation" true
    (contains ~sub:"camp1" r3.Resp.body);
  (* The other cached documents carry the same contract. *)
  List.iter
    (fun path ->
      Alcotest.(check bool) (path ^ " stamped fresh") true
        (generation_of (get path) >= g1))
    [ "/matrix"; "/estimates" ];
  Alcotest.(check int) "report pending" 202
    (get "/campaigns/camp1/report").Resp.status;
  Alcotest.(check int) "report unknown" 404
    (get "/campaigns/nope/report").Resp.status;
  Alcotest.(check int) "estimates bad asn" 400
    (get "/estimates?asn=abc").Resp.status

let test_query_submit_contract () =
  let svc = Service.create (Service.default_config ~state_dir:(fresh_dir ())) in
  let rt = Query.router svc in
  let post body =
    Router.dispatch rt
      (req_of
         (Printf.sprintf
            "POST /submit HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            (String.length body) body))
  in
  Alcotest.(check int) "accepted" 202 (post "id=q1 seed=3").Resp.status;
  Alcotest.(check int) "duplicate is 409" 409 (post "id=q1 seed=3").Resp.status;
  Alcotest.(check int) "invalid spec is 400" 400
    (post "id=q2 bogus=1").Resp.status;
  Alcotest.(check int) "draining is 503"
    503
    (Service.drain svc;
     (post "id=q3 seed=1").Resp.status);
  Because_recover.Supervise.clear_drain ();
  Alcotest.(check int) "reason map total" 400
    (Query.status_of_reason (Admission.Invalid "r"))

let suite =
  ( "http",
    [
      Alcotest.test_case "parser basics" `Quick test_parse_basics;
      Alcotest.test_case "parser incremental + pipelined" `Quick
        test_parse_incremental_and_pipelined;
      Alcotest.test_case "parser rejections" `Quick test_parse_rejections;
      Alcotest.test_case "keep-alive rules" `Quick test_keep_alive;
      QCheck_alcotest.to_alcotest qcheck_parser_total_on_garbage;
      QCheck_alcotest.to_alcotest qcheck_parser_split_points;
      QCheck_alcotest.to_alcotest qcheck_parser_pipelined;
      Alcotest.test_case "router dispatch contract" `Quick test_router_dispatch;
      Alcotest.test_case "server keep-alive + pipelining + statuses" `Quick
        test_server_basics;
      Alcotest.test_case "server limits + slow-client deadline" `Quick
        test_server_limits_and_deadline;
      Alcotest.test_case "server byte-at-a-time pipelining" `Quick
        test_server_byte_at_a_time;
      Alcotest.test_case "server head split at every boundary" `Quick
        test_server_split_every_boundary;
      Alcotest.test_case "server 408 on withheld body" `Quick
        test_server_body_after_deadline_408;
      Alcotest.test_case "server propagates deadline to handlers" `Quick
        test_server_deadline_propagated;
      Alcotest.test_case "server sheds at the watermark" `Quick
        test_server_shed_watermark;
      Alcotest.test_case "server stop idempotent" `Quick
        test_server_stop_idempotent;
      QCheck_alcotest.to_alcotest qcheck_server_garbage;
      Alcotest.test_case "query snapshot cache coherence" `Quick
        test_query_cache_coherence;
      Alcotest.test_case "query submit status mapping" `Quick
        test_query_submit_contract;
    ] )
