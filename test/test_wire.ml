(* RFC 4271 wire codec and MRT export. *)
open Because_bgp
module Mrt = Because_collector.Mrt
module Vantage = Because_collector.Vantage
module Dump = Because_collector.Dump

let asn = Asn.of_int
let prefix = Prefix.of_string "10.3.1.0/24"

let agg ?(valid = true) sent_at =
  { Update.aggregator_asn = asn 65003; sent_at; valid }

let announce ?aggregator path =
  Update.Announce { prefix; as_path = List.map asn path; aggregator }

let roundtrip u =
  match Wire.decode (Wire.encode u) with
  | Ok decoded -> decoded
  | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e

let test_withdraw_roundtrip () =
  let u = Update.Withdraw { prefix } in
  Alcotest.(check bool) "roundtrip" true (Update.equal u (roundtrip u))

let test_announce_roundtrip () =
  let u = announce ~aggregator:(agg 7200.0) [ 10; 20; 65003 ] in
  Alcotest.(check bool) "roundtrip" true (Update.equal u (roundtrip u))

let test_announce_no_aggregator () =
  let u = announce [ 1; 2 ] in
  Alcotest.(check bool) "roundtrip" true (Update.equal u (roundtrip u))

let test_invalid_aggregator_is_zero_ip () =
  (* A corrupted aggregator is encoded as 0.0.0.0 and decodes invalid —
     the paper's "empty, invalid aggregator IP" observation. *)
  let u = announce ~aggregator:(agg ~valid:false 7200.0) [ 1 ] in
  match roundtrip u with
  | Update.Announce { aggregator = Some a; _ } ->
      Alcotest.(check bool) "invalid" false a.Update.valid;
      Alcotest.(check (float 0.0)) "timestamp lost" 0.0 a.Update.sent_at
  | _ -> Alcotest.fail "lost the announcement"

let test_timestamp_quantised_to_seconds () =
  let u = announce ~aggregator:(agg 7200.7) [ 1 ] in
  match roundtrip u with
  | Update.Announce { aggregator = Some a; _ } ->
      Alcotest.(check (float 0.0)) "whole seconds" 7200.0 a.Update.sent_at
  | _ -> Alcotest.fail "lost the announcement"

let test_message_framing () =
  let b = Wire.encode (announce [ 1; 2; 3 ]) in
  (* 16-byte marker, big-endian length, type 2 *)
  for i = 0 to 15 do
    Alcotest.(check int) "marker" 0xFF (Bytes.get_uint8 b i)
  done;
  Alcotest.(check int) "declared length" (Bytes.length b)
    (Bytes.get_uint16_be b 16);
  Alcotest.(check int) "type UPDATE" 2 (Bytes.get_uint8 b 18)

let test_malformed_rejected () =
  let good = Wire.encode (announce [ 1 ]) in
  let truncated = Bytes.sub good 0 (Bytes.length good - 3) in
  (match Wire.decode truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated message");
  let bad_marker = Bytes.copy good in
  Bytes.set_uint8 bad_marker 3 0;
  (match Wire.decode bad_marker with
  | Error Wire.Bad_marker -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Wire.pp_error e
  | Ok _ -> Alcotest.fail "accepted bad marker");
  let bad_type = Bytes.copy good in
  Bytes.set_uint8 bad_type 18 1;
  match Wire.decode bad_type with
  | Error (Wire.Bad_message_type 1) -> ()
  | _ -> Alcotest.fail "accepted non-UPDATE"

let test_stream_roundtrip () =
  let updates =
    [ announce ~aggregator:(agg 60.0) [ 1; 2 ];
      Update.Withdraw { prefix };
      announce [ 9; 8; 7; 65003 ] ]
  in
  match Wire.decode_many (Wire.encode_many updates) with
  | Ok decoded ->
      Alcotest.(check int) "count" 3 (List.length decoded);
      List.iter2
        (fun a b -> Alcotest.(check bool) "equal" true (Update.equal a b))
        updates decoded
  | Error e -> Alcotest.failf "stream decode: %a" Wire.pp_error e

let qcheck_wire_roundtrip =
  let gen =
    QCheck.Gen.(
      let* is_announce = bool in
      let* site = int_range 0 20 in
      let* slot = int_range 0 3 in
      let p = Prefix.beacon ~site ~slot in
      if not is_announce then return (Update.Withdraw { prefix = p })
      else
        let* path_len = int_range 1 8 in
        let* raw = list_repeat path_len (int_range 1 70000) in
        let* has_agg = bool in
        let* valid = bool in
        let* sent = int_range 0 1_000_000 in
        let aggregator =
          if has_agg then
            Some
              { Update.aggregator_asn = Asn.of_int 65001;
                sent_at = float_of_int sent; valid }
          else None
        in
        return
          (Update.Announce
             { prefix = p; as_path = List.map Asn.of_int raw; aggregator }))
  in
  QCheck.Test.make ~name:"wire roundtrip" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Update.pp) gen)
    (fun u ->
      match Wire.decode (Wire.encode u) with
      | Error _ -> false
      | Ok decoded -> (
          (* Timestamps quantise to seconds and invalid aggregators lose
             their timestamp; compare modulo that. *)
          match (u, decoded) with
          | Update.Withdraw a, Update.Withdraw b -> Prefix.equal a.prefix b.prefix
          | Update.Announce a, Update.Announce b ->
              Prefix.equal a.prefix b.prefix
              && List.for_all2 Asn.equal a.as_path b.as_path
              && (match (a.aggregator, b.aggregator) with
                 | None, None -> true
                 | Some x, Some y ->
                     Bool.equal x.Update.valid y.Update.valid
                     && ((not x.Update.valid)
                        || Float.equal (Float.of_int (int_of_float x.Update.sent_at))
                             y.Update.sent_at)
                 | _ -> false)
          | _ -> false))

(* MRT *)

let vp = Vantage.make ~vp_id:42 ~host_asn:(asn 1021) ~project:Because_collector.Project.Routeviews

let record t u = { Dump.received_at = t; export_at = t; vp; update = u }

let test_mrt_roundtrip () =
  let records =
    [ record 100.25 (announce ~aggregator:(agg 60.0) [ 1021; 300; 65003 ]);
      record 160.5 (Update.Withdraw { prefix });
      record 7200.0 (announce [ 1021; 65003 ]) ]
  in
  match Mrt.decode_records (Mrt.encode_records records) with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      Alcotest.(check int) "count" 3 (List.length decoded);
      List.iter2
        (fun (a : Dump.record) (b : Dump.record) ->
          Alcotest.(check bool) "update" true (Update.equal a.update b.update);
          Alcotest.(check bool) "timestamp (µs)" true
            (Float.abs (a.export_at -. b.export_at) < 1e-3);
          Alcotest.(check int) "vp id" a.vp.Vantage.vp_id b.vp.Vantage.vp_id;
          Alcotest.(check bool) "project" true
            (Because_collector.Project.equal a.vp.Vantage.project
               b.vp.Vantage.project);
          Alcotest.(check int) "peer AS"
            (Asn.to_int a.vp.Vantage.host_asn)
            (Asn.to_int b.vp.Vantage.host_asn))
        records decoded

let test_mrt_file_io () =
  let path = Filename.temp_file "because" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let records = [ record 5.0 (announce [ 1021; 65003 ]) ] in
      Mrt.write_file path records;
      match Mrt.read_file path with
      | Ok [ r ] ->
          Alcotest.(check bool) "update survives" true
            (Update.equal r.Dump.update (List.hd records).Dump.update)
      | Ok l -> Alcotest.failf "expected 1 record, got %d" (List.length l)
      | Error e -> Alcotest.fail e)

let test_mrt_garbage_rejected () =
  match Mrt.decode_records (Bytes.of_string "not an MRT file") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

let suite =
  ( "wire",
    [
      Alcotest.test_case "withdraw roundtrip" `Quick test_withdraw_roundtrip;
      Alcotest.test_case "announce roundtrip" `Quick test_announce_roundtrip;
      Alcotest.test_case "announce without aggregator" `Quick
        test_announce_no_aggregator;
      Alcotest.test_case "invalid aggregator = 0.0.0.0" `Quick
        test_invalid_aggregator_is_zero_ip;
      Alcotest.test_case "timestamp quantisation" `Quick
        test_timestamp_quantised_to_seconds;
      Alcotest.test_case "message framing" `Quick test_message_framing;
      Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
      Alcotest.test_case "stream roundtrip" `Quick test_stream_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_wire_roundtrip;
      Alcotest.test_case "MRT roundtrip" `Quick test_mrt_roundtrip;
      Alcotest.test_case "MRT file IO" `Quick test_mrt_file_io;
      Alcotest.test_case "MRT garbage rejected" `Quick test_mrt_garbage_rejected;
    ] )
