(* Streaming intake: the observation-spool parser, the rename-into-place
   spool convention, posterior-seed persistence, warm-started epochs, and
   the JSON status document under hostile strings.

   The load-bearing property is the warm-start contract: epoch 2 of a
   streaming campaign, started from epoch 1's posterior means, must reach
   the same final per-AS categories as a cold run of the same epoch — the
   warm start buys convergence speed (asserted: measurably fewer sweeps
   through the R̂ gate), never different answers. *)

module Service = Because_service.Service
module Sspec = Because_service.Spec
module Store = Because_service.Store
module Stream = Because_service.Stream
module Spool = Because_service.Spool
module Admission = Because_service.Admission
module Seed = Because_recover.Seed
module Supervise = Because_recover.Supervise
module Rng = Because_stats.Rng
module Asn = Because_bgp.Asn

let fresh_dir () =
  let f = Filename.temp_file "because-stream" ".dir" in
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

let with_drain_reset f =
  Fun.protect ~finally:(fun () -> Supervise.clear_drain ()) f

let submit_ok svc spec =
  match Service.submit svc spec with
  | Ok seq -> seq
  | Error r ->
      Alcotest.failf "submit %s: %s" spec.Sspec.id
        (Admission.reason_to_string r)

(* ------------------------------------------------------------------ *)
(* Observation-spool parsing                                            *)

let write_lines path lines =
  Out_channel.with_open_bin path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

let test_parse_observations () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "obs" in
  write_lines path
    [ "# comment"; ""; "rfd 64512 901"; "  clean  64512   64513  ";
      "clean 64513" ];
  (match Stream.parse_observations path with
  | Ok [ (p1, true); (p2, false); (p3, false) ] ->
      Alcotest.(check (list int)) "path 1" [ 64512; 901 ]
        (List.map Asn.to_int p1);
      Alcotest.(check (list int)) "path 2 (whitespace)" [ 64512; 64513 ]
        (List.map Asn.to_int p2);
      Alcotest.(check (list int)) "path 3" [ 64513 ] (List.map Asn.to_int p3)
  | Ok l -> Alcotest.failf "parsed %d observations" (List.length l)
  | Error e -> Alcotest.fail e);
  write_lines path [ "rfd 64512"; "flap 901" ];
  (match Stream.parse_observations path with
  | Error e -> Alcotest.(check bool) "names the line" true (contains ~sub:"line 2" e)
  | Ok _ -> Alcotest.fail "bad label accepted");
  write_lines path [ "rfd" ];
  (match Stream.parse_observations path with
  | Error e -> Alcotest.(check bool) "empty path named" true (contains ~sub:"empty" e)
  | Ok _ -> Alcotest.fail "empty path accepted");
  write_lines path [ "rfd 64512 -3" ];
  (match Stream.parse_observations path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative ASN accepted");
  match Stream.parse_observations (Filename.concat dir "missing") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

(* ------------------------------------------------------------------ *)
(* Spool convention: rename-into-place, dotfiles invisible               *)

let test_spool_rename_into_place () =
  Alcotest.(check bool) "plain eligible" true (Spool.eligible "a.campaign");
  Alcotest.(check bool) "dotfile invisible" false
    (Spool.eligible ".a.campaign");
  Alcotest.(check bool) "done invisible" false
    (Spool.eligible "a.campaign.done");
  Alcotest.(check bool) "other suffix invisible" false (Spool.eligible "a.txt");
  let dir = fresh_dir () in
  Alcotest.(check (list string)) "missing dir scans empty" []
    (Spool.scan (Filename.concat dir "nope"));
  (* A slow producer writes the spec one byte at a time under a dotfile
     staging name: no scan along the way may surface it. *)
  let spec_line = Sspec.to_line (Sspec.default ~id:"slow") ^ "\n" in
  let staged = Filename.concat dir ".slow.campaign" in
  let oc = Out_channel.open_gen [ Open_wronly; Open_creat ] 0o644 staged in
  String.iter
    (fun c ->
      Out_channel.output_char oc c;
      Out_channel.flush oc;
      Alcotest.(check (list string)) "partial write invisible" []
        (Spool.scan dir))
    spec_line;
  Out_channel.close oc;
  (* rename(2) into place: the very next scan sees the complete file. *)
  Sys.rename staged (Filename.concat dir "slow.campaign");
  Alcotest.(check (list string)) "renamed file visible" [ "slow.campaign" ]
    (Spool.scan dir);
  Alcotest.(check string) "and complete" spec_line
    (read_file (Filename.concat dir "slow.campaign"));
  (* Scan order is deterministic (sorted), dotfiles stay hidden. *)
  write_lines (Filename.concat dir "b.campaign") [ "x" ];
  write_lines (Filename.concat dir ".c.campaign") [ "x" ];
  Alcotest.(check (list string)) "sorted, filtered"
    [ "b.campaign"; "slow.campaign" ] (Spool.scan dir)

(* The scanner is inode-hardened: names alone don't qualify a file.
   Zero-byte placeholders (a touch(1) or an interrupted copy) and
   symlinks (which can alias out of the spool or dangle) are filtered
   by [lstat], not surfaced to the service. *)
let test_spool_inode_hardening () =
  let dir = fresh_dir () in
  write_lines (Filename.concat dir "real.campaign") [ "x" ];
  (* Zero-byte file: eligible by name, filtered by size. *)
  Out_channel.with_open_bin (Filename.concat dir "empty.campaign")
    (fun _ -> ());
  (* Symlink, even to a perfectly good spec: filtered by inode type. *)
  Unix.symlink
    (Filename.concat dir "real.campaign")
    (Filename.concat dir "alias.campaign");
  (* Dangling symlink: must not crash the scan either. *)
  Unix.symlink
    (Filename.concat dir "never-existed")
    (Filename.concat dir "dangling.campaign");
  Alcotest.(check (list string)) "only the real regular file"
    [ "real.campaign" ] (Spool.scan dir)

(* The same name renamed into place twice (new content each time) is a
   legitimate producer pattern — re-submitting a streaming campaign's
   next epoch under its stable file name.  The scanner must surface it
   both times; exactly-once ingestion is the consumer's rename-to-.done,
   which overwrites the previous marker. *)
let test_spool_renamed_twice () =
  let dir = fresh_dir () in
  let name = "epochal.campaign" in
  let live = Filename.concat dir name in
  let ingest () =
    match Spool.scan dir with
    | [ n ] when n = name ->
        let content = read_file live in
        Sys.rename live (live ^ ".done");
        content
    | l -> Alcotest.failf "scan saw %d entries" (List.length l)
  in
  write_lines (Filename.concat dir (".stage-" ^ name)) [ "epoch-one" ];
  Sys.rename (Filename.concat dir (".stage-" ^ name)) live;
  Alcotest.(check string) "first rename picked up" "epoch-one\n" (ingest ());
  Alcotest.(check (list string)) "quiescent between epochs" []
    (Spool.scan dir);
  (* Second rename into the same live name, fresh content. *)
  write_lines (Filename.concat dir (".stage-" ^ name)) [ "epoch-two" ];
  Sys.rename (Filename.concat dir (".stage-" ^ name)) live;
  Alcotest.(check string) "second rename picked up too" "epoch-two\n"
    (ingest ());
  Alcotest.(check string) "done marker holds the newest epoch" "epoch-two\n"
    (read_file (live ^ ".done"))

(* ------------------------------------------------------------------ *)
(* Posterior seed codec                                                 *)

let test_seed_codec () =
  let seed =
    { Seed.epoch = 3; gate_sweeps = Some 42;
      means = [| (7, 0.25); (901, 0.875); (64512, 0.5) |] }
  in
  (match Seed.decode (Seed.encode seed) with
  | Some back ->
      Alcotest.(check int) "epoch" 3 back.Seed.epoch;
      Alcotest.(check (option int)) "gate" (Some 42) back.Seed.gate_sweeps;
      Alcotest.(check (option (float 0.0))) "lookup hit" (Some 0.875)
        (Seed.lookup back 901);
      Alcotest.(check (option (float 0.0))) "lookup miss" None
        (Seed.lookup back 8)
  | None -> Alcotest.fail "roundtrip failed");
  let none_gate = { seed with Seed.gate_sweeps = None } in
  (match Seed.decode (Seed.encode none_gate) with
  | Some back -> Alcotest.(check (option int)) "no gate" None back.Seed.gate_sweeps
  | None -> Alcotest.fail "no-gate roundtrip failed");
  Alcotest.(check bool) "garbage decodes to None" true
    (Seed.decode "not a seed" = None);
  let tampered = Bytes.of_string (Seed.encode seed) in
  Bytes.set tampered 0 '\xee';
  Alcotest.(check bool) "wrong version decodes to None" true
    (Seed.decode (Bytes.to_string tampered) = None)

(* ------------------------------------------------------------------ *)
(* Two-epoch warm start: same categories as a cold epoch-2 run, fewer
   sweeps through the convergence gate                                  *)

(* Strongly separated synthetic world: AS 901 damps every path it is on,
   everything else is clean — the posterior should pin 901 near 1 and the
   rest near 0, warm or cold. *)
let obs_epoch1 =
  List.concat_map
    (fun _ ->
      [ "rfd 64512 901"; "rfd 64513 901"; "clean 64512 64513";
        "clean 64513 64514"; "clean 64512 64514" ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* The growth keeps AS 64514 off damped paths: its posterior must stay
   firmly clean in both runs, or the C1/C2 boundary turns the
   category-equality check into a coin flip. *)
let obs_epoch2_growth =
  List.concat_map
    (fun _ -> [ "rfd 64512 901"; "clean 64513 64514"; "clean 64512 64514" ])
    [ 1; 2; 3; 4; 5 ]

let stream_spec ~obs id =
  { (Sspec.default ~id) with
    Sspec.seed = 11;
    samples = 300;
    burn_in = 150;
    chains = 2;
    obs = Some obs }

(* Replicate Stream.run's cold pipeline for epoch 2 out of public parts:
   same observations, same epoch-derived RNG, full burn-in, default
   (cold) chain initialisation. *)
let cold_epoch ~epoch (spec : Sspec.t) =
  let path = Option.get spec.Sspec.obs in
  let obs =
    match Stream.parse_observations path with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let data = Because.Tomography.of_observations obs in
  let config =
    { Because.Infer.default_config with
      Because.Infer.n_samples = spec.Sspec.samples;
      burn_in = spec.Sspec.burn_in;
      n_chains = spec.Sspec.chains }
  in
  let rng = Rng.create ((spec.Sspec.seed * 1009) + epoch) in
  let result = Because.Infer.run ~rng ~config data in
  let min_support = spec.Sspec.min_path_support in
  let step1 = Because.Categorize.assign ~min_support result in
  let insufficient = Because.Categorize.insufficient result ~min_support in
  let promos =
    List.filter
      (fun (p : Because.Pinpoint.promotion) ->
        not (List.exists (Asn.equal p.Because.Pinpoint.asn) insufficient))
      (Because.Pinpoint.promotions result ~categories:step1)
  in
  let categories = Because.Pinpoint.apply step1 promos in
  let gate =
    Option.map (fun d -> spec.Sspec.burn_in + d)
      (Because.Infer.gate_draws result)
  in
  (categories, gate)

let test_two_epoch_warm_start () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  let obs_path = Filename.concat dir "paths.obs" in
  write_lines obs_path obs_epoch1;
  let spec = stream_spec ~obs:obs_path "stream1" in
  let svc = Service.create (Service.default_config ~state_dir:dir) in
  let seq1 = submit_ok svc spec in
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "epoch 1 did not complete");
  let entry id =
    match Store.find (Service.store svc) ~id with
    | Some e -> e
    | None -> Alcotest.failf "%s missing" id
  in
  let e1 = entry "stream1" in
  Alcotest.(check int) "epoch 1" 1 e1.Store.epoch;
  Alcotest.(check bool) "epoch 1 cold" false e1.Store.warm;
  Alcotest.(check int) "epoch 1 obs" (List.length obs_epoch1)
    e1.Store.obs_count;
  Alcotest.(check bool) "epoch 1 gated" true (e1.Store.gate_sweeps <> None);
  (* The spool grows; the same line is re-admitted as epoch 2 at the
     original sequence number, not rejected as a duplicate. *)
  Out_channel.with_open_gen [ Open_append ] 0o644 obs_path (fun oc ->
      List.iter
        (fun l -> Out_channel.output_string oc (l ^ "\n"))
        obs_epoch2_growth);
  let seq2 = submit_ok svc spec in
  Alcotest.(check int) "re-admitted at its seq" seq1 seq2;
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "epoch 2 did not complete");
  let e2 = entry "stream1" in
  Alcotest.(check int) "epoch 2" 2 e2.Store.epoch;
  Alcotest.(check bool) "epoch 2 warm" true e2.Store.warm;
  Alcotest.(check int) "epoch 2 obs"
    (List.length obs_epoch1 + List.length obs_epoch2_growth)
    e2.Store.obs_count;
  Alcotest.(check string) "healthy" "healthy"
    (Store.health_label e2.Store.health);
  let report = read_file (Service.report_path svc ~id:"stream1") in
  Alcotest.(check bool) "report says epoch 2" true
    (contains ~sub:"epoch: 2 warm" report);
  (* Same answers as a cold run of the same epoch over the same file... *)
  let cold_categories, cold_gate = cold_epoch ~epoch:2 spec in
  Array.iter
    (fun (est : Store.estimate) ->
      match
        List.find_opt (fun (a, _) -> Asn.equal a est.Store.asn) cold_categories
      with
      | Some (_, cold_cat) ->
          Alcotest.(check int)
            (Printf.sprintf "category of AS %s" (Asn.to_string est.Store.asn))
            (Because.Categorize.to_int cold_cat)
            est.Store.category
      | None -> Alcotest.failf "cold run missing %s" (Asn.to_string est.Store.asn))
    e2.Store.estimates;
  Alcotest.(check bool) "901 flagged" true
    (Array.exists
       (fun (e : Store.estimate) ->
         Asn.to_int e.Store.asn = 901 && e.Store.damping)
       e2.Store.estimates);
  (* ...for measurably fewer sweeps through the R̂ gate. *)
  (match (e2.Store.gate_sweeps, cold_gate) with
  | Some warm, Some cold ->
      Alcotest.(check bool)
        (Printf.sprintf "warm gate %d < cold gate %d" warm cold)
        true (warm < cold)
  | _ -> Alcotest.fail "a convergence gate did not pass");
  (* The stream fields survive a warm service start from the durable
     queue. *)
  let reloaded = Service.load (Service.default_config ~state_dir:dir) in
  (match Store.find (Service.store reloaded) ~id:"stream1" with
  | Some e ->
      Alcotest.(check int) "reloaded epoch" 2 e.Store.epoch;
      Alcotest.(check bool) "reloaded warm" true e.Store.warm;
      Alcotest.(check (option int)) "reloaded gate" e2.Store.gate_sweeps
        e.Store.gate_sweeps;
      Alcotest.(check int) "reloaded obs" e2.Store.obs_count e.Store.obs_count
  | None -> Alcotest.fail "stream entry lost across warm start")

let test_stream_missing_spool_is_insufficient () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  let spec =
    stream_spec ~obs:(Filename.concat dir "never-written.obs") "ghost"
  in
  let svc = Service.create (Service.default_config ~state_dir:dir) in
  ignore (submit_ok svc spec);
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "service did not complete");
  match Store.find (Service.store svc) ~id:"ghost" with
  | Some e ->
      Alcotest.(check string) "insufficient, not retried to death"
        "insufficient"
        (Store.health_label e.Store.health);
      Alcotest.(check int) "single attempt" 1 e.Store.attempts
  | None -> Alcotest.fail "ghost missing"

(* ------------------------------------------------------------------ *)
(* Classic campaigns stay byte-identical: no stream fields anywhere      *)

let test_classic_output_unchanged () =
  let spec = Sspec.default ~id:"classic" in
  Alcotest.(check bool) "spec line has no obs key" false
    (contains ~sub:"obs=" (Sspec.to_line spec));
  (match Sspec.of_line (Sspec.to_line spec) with
  | Ok back -> Alcotest.(check bool) "roundtrip" true (Sspec.equal spec back)
  | Error e -> Alcotest.fail e);
  (* A streaming spec round-trips its obs path... *)
  let sspec = { spec with Sspec.id = "s"; obs = Some "/tmp/x.obs" } in
  (match Sspec.of_line (Sspec.to_line sspec) with
  | Ok back ->
      Alcotest.(check (option string)) "obs roundtrip" (Some "/tmp/x.obs")
        back.Sspec.obs
  | Error e -> Alcotest.fail e);
  (* ...but an obs path with whitespace cannot be smuggled into the line
     format. *)
  (match Sspec.validate { sspec with Sspec.obs = Some "/tmp/a b" } with
  | Ok _ -> Alcotest.fail "spacey obs path accepted"
  | Error _ -> ());
  let store = Store.create () in
  let e = Store.add store spec ~seq:0 in
  e.Store.health <- Store.Done Supervise.Healthy;
  let report = Store.report e in
  Alcotest.(check bool) "report has no epoch line" false
    (contains ~sub:"epoch:" report);
  Alcotest.(check bool) "report has no observations line" false
    (contains ~sub:"observations:" report);
  let json = Store.to_json store ~draining:false ~limit:16 ~depth:0 in
  Alcotest.(check bool) "status json has no epoch key" false
    (contains ~sub:"\"epoch\"" json);
  Alcotest.(check bool) "status json has no warm key" false
    (contains ~sub:"\"warm\"" json)

(* ------------------------------------------------------------------ *)
(* Status JSON stays valid JSON under hostile strings                    *)

(* A deliberately independent miniature JSON reader: accepts exactly the
   RFC 8259 grammar (objects, arrays, strings with escapes, numbers,
   literals) and nothing else. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = Some c then advance () else fail () in
  let literal lit =
    String.iter (fun c -> expect c) lit
  in
  let string_body () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance (); go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail ()
              done;
              go ()
          | _ -> fail ())
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ -> advance (); go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let rec go saw =
        match peek () with
        | Some '0' .. '9' -> advance (); go true
        | _ -> if not saw then fail ()
      in
      go false
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws (); string_body (); skip_ws (); expect ':'; value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail ()
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail ()
          in
          elements ()
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ());
    skip_ws ()
  in
  match value (); !pos = n with
  | complete -> complete
  | exception Exit -> false

let test_json_validator_sanity () =
  List.iter
    (fun (want, s) ->
      Alcotest.(check bool) (Printf.sprintf "%S" s) want (json_valid s))
    [ (true, "{}"); (true, "{ \"a\": [1, -2.5e3, \"x\\n\", null] }");
      (true, "[true, false]");
      (false, "{"); (false, "{\"a\" 1}"); (false, "\"\x01\"");
      (false, "{\"a\": 1,}"); (false, "nope"); (false, "\"\\q\"") ]

let hostile_string =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 30)
    (QCheck.Gen.frequency
       [ (3, QCheck.Gen.printable);
         (1, QCheck.Gen.oneofl [ '"'; '\\'; '\n'; '\x00'; '\x1f'; '\x7f' ]) ])

let qcheck_to_json_valid =
  QCheck.Test.make
    ~name:"status JSON stays valid under hostile ids and reasons" ~count:100
    QCheck.(pair hostile_string (list_of_size (Gen.int_range 0 3) hostile_string))
    (fun (id, reasons) ->
      let store = Store.create () in
      (* The store does not re-validate ids (admission does) — the JSON
         layer alone must keep the document well-formed. *)
      let e = Store.add store { (Sspec.default ~id) with Sspec.id = id } ~seq:0 in
      e.Store.health <- Store.Done (Supervise.Insufficient reasons);
      let ok = Store.add store (Sspec.default ~id:(id ^ "~2")) ~seq:1 in
      ok.Store.health <- Store.Done (Supervise.Degraded reasons);
      json_valid (Store.to_json store ~draining:true ~limit:4 ~depth:2))

let qcheck_json_escape_roundtrip =
  QCheck.Test.make ~name:"json_escape output is always a JSON string body"
    ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.char)
    (fun s -> json_valid ("\"" ^ Store.json_escape s ^ "\""))

let suite =
  ( "stream",
    [
      Alcotest.test_case "observation spool parsing" `Quick
        test_parse_observations;
      Alcotest.test_case "spool rename-into-place convention" `Quick
        test_spool_rename_into_place;
      Alcotest.test_case "spool filters zero-byte files and symlinks" `Quick
        test_spool_inode_hardening;
      Alcotest.test_case "spool surfaces the same name renamed twice" `Quick
        test_spool_renamed_twice;
      Alcotest.test_case "posterior seed codec" `Quick test_seed_codec;
      Alcotest.test_case "two epochs: warm equals cold, converges sooner"
        `Quick test_two_epoch_warm_start;
      Alcotest.test_case "missing spool file is insufficient, no retry loop"
        `Quick test_stream_missing_spool_is_insufficient;
      Alcotest.test_case "classic campaigns carry no stream fields" `Quick
        test_classic_output_unchanged;
      Alcotest.test_case "json validator sanity" `Quick
        test_json_validator_sanity;
      QCheck_alcotest.to_alcotest qcheck_to_json_valid;
      QCheck_alcotest.to_alcotest qcheck_json_escape_roundtrip;
    ] )
