(* Chaos harness: epoch-chain compaction under corruption, and the
   whole-service soak — campaigns completing under injected disk faults
   while HTTP clients hammer the query plane through a socket-level
   fault proxy.

   The soak's contract is threefold: the final store state (reports and
   suspect matrix) is bit-for-bit identical to a fault-free run's; no
   response that completed its own framing is malformed (torn); and
   every worker joins — stop/join returning IS the leak check. *)

module Service = Because_service.Service
module Sspec = Because_service.Spec
module Store = Because_service.Store
module Query = Because_service.Query
module Epochs = Because_service.Epochs
module Seed = Because_recover.Seed
module Io = Because_recover.Io
module Supervise = Because_recover.Supervise
module Server = Because_http.Server
module Proxy = Because_http.Fault_proxy

let fresh_dir () =
  let f = Filename.temp_file "because-chaos" ".dir" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let find_sub hay sub from =
  let n = String.length sub and m = String.length hay in
  let rec go i =
    if i + n > m then None
    else if String.sub hay i n = sub then Some i
    else go (i + 1)
  in
  go from

let with_drain_reset f =
  Fun.protect ~finally:(fun () -> Supervise.clear_drain ()) f

let submit_ok svc spec =
  match Service.submit svc spec with
  | Ok _ -> ()
  | Error r ->
      Alcotest.failf "submit %s: %s" spec.Sspec.id
        (Because_service.Admission.reason_to_string r)

(* ------------------------------------------------------------------ *)
(* Epoch compaction: O(1) cold load over an arbitrarily long chain      *)

let mk_seed epoch =
  { Seed.epoch;
    gate_sweeps = (if epoch mod 2 = 0 then Some (100 + epoch) else None);
    means =
      [| (901, 0.875 +. (0.0001 *. float_of_int epoch)); (64512, 0.125) |] }

let seeds_equal (a : Seed.t) (b : Seed.t) =
  a.Seed.epoch = b.Seed.epoch
  && a.Seed.gate_sweeps = b.Seed.gate_sweeps
  && a.Seed.means = b.Seed.means

let test_epochs_compacted_cold_load () =
  let dir = fresh_dir () in
  let st = Epochs.open_ ~dir ~id:"long" in
  for e = 1 to 22 do
    Epochs.append st (mk_seed e)
  done;
  Alcotest.(check (list int)) "chain holds every epoch"
    (List.init 22 (fun i -> i + 1))
    (Epochs.chain st);
  (* Cold start: a fresh handle answers from the compacted seed without
     touching one chain snapshot — the O(1) acceptance check. *)
  let cold = Epochs.open_ ~dir ~id:"long" in
  (match Epochs.load cold with
  | Some s ->
      Alcotest.(check bool) "newest epoch" true (seeds_equal s (mk_seed 22))
  | None -> Alcotest.fail "cold load found nothing");
  Alcotest.(check int) "zero chain snapshots consulted" 0
    (Epochs.chain_loads cold);
  (* Pruning bounds the chain; the compacted seed is untouched. *)
  Epochs.compact st ~keep:4;
  Alcotest.(check (list int)) "pruned to newest 4" [ 19; 20; 21; 22 ]
    (Epochs.chain st);
  let cold2 = Epochs.open_ ~dir ~id:"long" in
  (match Epochs.load cold2 with
  | Some s -> Alcotest.(check int) "still newest" 22 s.Seed.epoch
  | None -> Alcotest.fail "load after compact");
  Alcotest.(check int) "still zero chain loads" 0 (Epochs.chain_loads cold2);
  (match Epochs.compact st ~keep:0 with
  | () -> Alcotest.fail "keep 0 accepted"
  | exception Invalid_argument _ -> ())

let corrupt_file path =
  let data = Bytes.of_string (read_file path) in
  let mid = Bytes.length data / 2 in
  Bytes.set data mid (Char.chr (Char.code (Bytes.get data mid) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc data)

let test_epochs_corrupt_compacted_falls_back () =
  let dir = fresh_dir () in
  let st = Epochs.open_ ~dir ~id:"fallback" in
  for e = 1 to 6 do
    Epochs.append st (mk_seed e)
  done;
  (* Flip a bit in the compacted snapshot AND its rotated fallback: the
     checkpoint layer must quarantine both and load must walk the chain
     instead — the same bytes, one level down. *)
  corrupt_file (Filename.concat dir "compacted.ck");
  corrupt_file (Filename.concat dir "compacted.prev.ck");
  let cold = Epochs.open_ ~dir ~id:"fallback" in
  (match Epochs.load cold with
  | Some s ->
      Alcotest.(check bool) "chain serves identical newest seed" true
        (seeds_equal s (mk_seed 6))
  | None -> Alcotest.fail "fallback load found nothing");
  Alcotest.(check bool) "chain was consulted" true
    (Epochs.chain_loads cold >= 1);
  Alcotest.(check bool) "quarantine warning recorded" true
    (Epochs.warnings cold <> []);
  (* The corrupt snapshots were quarantined (renamed aside for
     post-mortem), not deleted. *)
  Alcotest.(check bool) "corrupt file kept for post-mortem" true
    (Array.exists
       (fun f -> find_sub f ".corrupt-" 0 <> None)
       (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* Streaming service integration: epochs fold as they complete          *)

let write_lines path lines =
  Out_channel.with_open_bin path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines)

let stream_obs =
  [ "rfd 64512 901"; "rfd 64513 901"; "clean 64512 64513";
    "clean 64513 64514"; "clean 64512 64514" ]

let test_service_epoch_compaction () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let obs_path = Filename.concat dir "paths.obs" in
  write_lines obs_path stream_obs;
  let spec =
    { (Sspec.default ~id:"streamc") with
      Sspec.seed = 11;
      samples = 120;
      burn_in = 60;
      chains = 2;
      obs = Some obs_path }
  in
  let cfg =
    { (Service.default_config ~state_dir:dir) with
      Service.retry_backoff_s = 0.0;
      compact_every = 2 }
  in
  let svc = Service.create cfg in
  (* Four epochs: re-submitting a completed streaming spec starts the
     next one. *)
  for epoch = 1 to 4 do
    Out_channel.with_open_gen [ Open_append ] 0o644 obs_path (fun oc ->
        Out_channel.output_string oc "clean 64512 64514\n");
    submit_ok svc spec;
    match Service.run_until_idle svc with
    | Service.Completed -> ()
    | _ -> Alcotest.failf "epoch %d did not complete" epoch
  done;
  (match Store.find (Service.store svc) ~id:"streamc" with
  | Some e ->
      Alcotest.(check int) "reached epoch 4" 4 e.Store.epoch;
      Alcotest.(check bool) "warm-started" true e.Store.warm
  | None -> Alcotest.fail "campaign missing");
  (* The epoch store was compacted on the cadence: chain bounded at
     [compact_every], compacted seed answers a cold open in O(1). *)
  let epochs_dir =
    Filename.concat (Filename.concat dir "campaigns")
      (Filename.concat "streamc" "epochs.d")
  in
  let cold = Epochs.open_ ~dir:epochs_dir ~id:"streamc" in
  Alcotest.(check (list int)) "chain pruned to the cadence" [ 3; 4 ]
    (Epochs.chain cold);
  (match Epochs.load cold with
  | Some s -> Alcotest.(check int) "compacted seed is newest" 4 s.Seed.epoch
  | None -> Alcotest.fail "no compacted seed");
  Alcotest.(check int) "cold load bypassed the chain" 0
    (Epochs.chain_loads cold)

(* ------------------------------------------------------------------ *)
(* Response classification (torn vs truncated)                          *)

(* A response is TORN when it is complete by its own framing but
   malformed — more body bytes than Content-Length declared, or a
   non-HTTP preamble.  A fault-truncated response (reset mid-body) is
   expected chaos weather, not a server bug. *)
let classify raw =
  if raw = "" then `Empty
  else if not (String.length raw >= 5 && String.sub raw 0 5 = "HTTP/") then
    `Torn
  else
    match find_sub raw "\r\n\r\n" 0 with
    | None -> `Truncated
    | Some i -> (
        let body_off = i + 4 in
        let head = String.lowercase_ascii (String.sub raw 0 body_off) in
        let tag = "content-length:" in
        match find_sub head tag 0 with
        | None -> `Complete
        | Some j -> (
            let off = j + String.length tag in
            let stop =
              match String.index_from_opt head off '\r' with
              | Some k -> k
              | None -> String.length head
            in
            match
              int_of_string_opt (String.trim (String.sub head off (stop - off)))
            with
            | None -> `Complete
            | Some n ->
                let got = String.length raw - body_off in
                if got < n then `Truncated
                else if got > n then `Torn
                else `Complete))

let test_classifier_sanity () =
  Alcotest.(check bool) "well-formed is complete" true
    (classify "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok" = `Complete);
  Alcotest.(check bool) "short body is truncated" true
    (classify "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nok" = `Truncated);
  Alcotest.(check bool) "overlong body is torn" true
    (classify "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nok" = `Torn);
  Alcotest.(check bool) "garbage preamble is torn" true
    (classify "garbage" = `Torn);
  Alcotest.(check bool) "headers cut short is truncated" true
    (classify "HTTP/1.1 200 OK\r\nContent-" = `Truncated)

(* ------------------------------------------------------------------ *)
(* The soak                                                             *)

let tiny_spec ?(seed = 42) ?(faults = "none") id =
  { (Sspec.default ~id) with
    Sspec.seed;
    transit = 6;
    stub = 14;
    vantage_hosts = 5;
    samples = 80;
    burn_in = 40;
    faults }

let soak_specs =
  [ tiny_spec ~seed:1 ~faults:"severe" "x1";
    tiny_spec ~seed:2 ~faults:"severe" "x2";
    tiny_spec ~seed:3 "x3" ]

let soak_cfg ~jobs ~dir =
  { (Service.default_config ~state_dir:dir) with
    Service.jobs;
    retry_backoff_s = 0.0 }

let reports svc specs =
  List.map
    (fun (s : Sspec.t) ->
      (s.Sspec.id, read_file (Service.report_path svc ~id:s.Sspec.id)))
    specs

(* Fault-free reference: matrix + reports, computed once per process. *)
let soak_reference =
  lazy
    (with_drain_reset @@ fun () ->
     let dir = fresh_dir () in
     let svc = Service.create (soak_cfg ~jobs:1 ~dir) in
     List.iter (submit_ok svc) soak_specs;
     (match Service.run_until_idle svc with
     | Service.Completed -> ()
     | _ -> Alcotest.fail "reference soak did not complete");
     (Store.matrix (Service.store svc), reports svc soak_specs))

let probe ~port ~path =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port)) with
      | exception Unix.Unix_error _ -> `Empty
      | () ->
          let req =
            "GET " ^ path
            ^ " HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n"
          in
          (try ignore (Unix.write_substring fd req 0 (String.length req))
           with Unix.Unix_error _ -> ());
          let buf = Buffer.create 512 in
          let chunk = Bytes.create 2048 in
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 3.0
           with Unix.Unix_error _ -> ());
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
            | exception Unix.Unix_error _ -> ()
          in
          drain ();
          classify (Buffer.contents buf))

(* Transient disk faults, scheduled per target file: a given file's
   first write consult faults, its retry succeeds — never two faults in
   a row for the same target, whatever the domain interleaving, so the
   3-attempt budget always absorbs the storm without escalating to a
   campaign-level retry (which would show up as a diverged attempt
   count). *)
let transient_disk_faults table mu op =
  match op with
  | Io.Rename _ -> None
  | Io.Write f ->
      Mutex.protect mu (fun () ->
          let n = try Hashtbl.find table f with Not_found -> 0 in
          Hashtbl.replace table f (n + 1);
          if n mod 4 = 0 then
            Some (if n mod 8 = 0 then Io.Enospc else Io.Rename_fail)
          else None)

let run_soak ~qseed ~jobs =
  with_drain_reset @@ fun () ->
  let ref_matrix, ref_reports = Lazy.force soak_reference in
  let dir = fresh_dir () in
  let svc = Service.create (soak_cfg ~jobs ~dir) in
  List.iter (submit_ok svc) soak_specs;
  let srv = Server.start ~threads:2 ~port:0 (Query.router svc) in
  let proxy =
    Proxy.start ~seed:qseed ~upstream_port:(Server.port srv) ~port:0 ()
  in
  let torn = Atomic.make 0 in
  let served = Atomic.make 0 in
  let stop_traffic = Atomic.make false in
  let traffic =
    Thread.create
      (fun () ->
        let paths = [| "/status"; "/matrix"; "/metrics"; "/estimates" |] in
        let i = ref 0 in
        while not (Atomic.get stop_traffic) do
          (match
             probe ~port:(Proxy.port proxy) ~path:paths.(!i mod 4)
           with
          | `Torn -> Atomic.incr torn
          | `Complete -> Atomic.incr served
          | `Truncated | `Empty -> ());
          incr i;
          Thread.delay 0.01
        done)
      ()
  in
  let table = Hashtbl.create 64 and mu = Mutex.create () in
  let verdict =
    Fun.protect
      ~finally:(fun () ->
        Io.clear ();
        Atomic.set stop_traffic true;
        Thread.join traffic;
        (* A little parting storm straight at the server, then teardown:
           stop returning at all is the no-leaked-workers check. *)
        ignore (Proxy.flood ~conns:16 ~hold_s:0.05 ~port:(Server.port srv) ());
        Proxy.stop proxy;
        Server.stop srv)
      (fun () ->
        Io.inject (transient_disk_faults table mu);
        Service.run_until_idle svc)
  in
  (match verdict with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "chaos soak did not complete");
  let got_matrix = Store.matrix (Service.store svc) in
  let ok_matrix = got_matrix = ref_matrix in
  let ok_reports = reports svc soak_specs = ref_reports in
  let ok_faults = Io.faults_injected () > 0 in
  if not ok_matrix then (
    Printf.eprintf "=== reference ===\n%s=== chaos ===\n%s%!" ref_matrix
      got_matrix;
    Alcotest.fail "matrix diverged under chaos");
  if not ok_reports then Alcotest.fail "reports diverged under chaos";
  if not ok_faults then Alcotest.fail "no disk faults were injected";
  if Atomic.get torn > 0 then
    Alcotest.failf "%d torn responses" (Atomic.get torn);
  true

let qcheck_chaos_soak =
  QCheck.Test.make ~name:"soak: chaos run matches fault-free run" ~count:1
    (* No shrinker: a shrink pass would rerun the whole soak per step. *)
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
    (fun qseed ->
      (* One serialized service, one multicore one: both must land on the
         reference state, whatever weather the seed picked. *)
      run_soak ~qseed ~jobs:1 && run_soak ~qseed:(qseed + 7) ~jobs:4)

(* Shed responses observed end to end carry the backpressure headers —
   asserted against the real server through real sockets. *)
let test_shed_headers_end_to_end () =
  let rt = Because_http.Router.create () in
  Because_http.Router.add rt ~meth:"GET" ~pattern:"/slow" (fun _ _ ->
      Thread.delay 0.4;
      Because_http.Response.text "done");
  let srv = Server.start ~threads:1 ~shed_watermark:1 ~port:0 rt in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  let opened =
    List.init 6 (fun _ ->
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
        let req = "GET /slow HTTP/1.1\r\nHost: h\r\n\r\n" in
        ignore (Unix.write_substring fd req 0 (String.length req));
        fd)
  in
  let raws =
    List.map
      (fun fd ->
        let buf = Buffer.create 256 in
        let chunk = Bytes.create 1024 in
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 3.0
         with Unix.Unix_error _ -> ());
        let rec drain () =
          match Unix.read fd chunk 0 1024 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error _ -> ()
        in
        drain ();
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Buffer.contents buf)
      opened
  in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i =
      i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
    in
    n = 0 || go 0
  in
  let sheds =
    List.filter (fun r -> contains " 503 " r) raws
  in
  Alcotest.(check bool) "overload produced sheds" true (sheds <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "Retry-After on every shed" true
        (contains "Retry-After:" r);
      Alcotest.(check bool) "X-Queue-Depth on every shed" true
        (contains "X-Queue-Depth:" r))
    sheds;
  (* Nothing was torn: every response that framed itself completed. *)
  List.iter
    (fun r ->
      match classify r with
      | `Torn -> Alcotest.fail "torn response under overload"
      | _ -> ())
    raws

let suite =
  ( "chaos",
    [
      Alcotest.test_case "epochs: compacted cold load is O(1)" `Quick
        test_epochs_compacted_cold_load;
      Alcotest.test_case "epochs: corrupt compacted falls back to chain"
        `Quick test_epochs_corrupt_compacted_falls_back;
      Alcotest.test_case "service: streaming epochs compact on cadence"
        `Slow test_service_epoch_compaction;
      Alcotest.test_case "torn/truncated classifier sanity" `Quick
        test_classifier_sanity;
      QCheck_alcotest.to_alcotest ~long:false qcheck_chaos_soak;
      Alcotest.test_case "shed responses carry backpressure headers" `Quick
        test_shed_headers_end_to_end;
    ] )
