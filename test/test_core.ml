(* Tomography, Prior, Model — the BeCAUSe core. *)
open Because_bgp
module Tomography = Because.Tomography
module Prior = Because.Prior
module Model = Because.Model
module Rng = Because_stats.Rng

let asn = Asn.of_int
let path ints = List.map asn ints

let obs =
  [ (path [ 1; 2; 3 ], true); (path [ 1; 4 ], false); (path [ 2; 4 ], true) ]

let test_tomography_indexing () =
  let data = Tomography.of_observations obs in
  Alcotest.(check int) "nodes" 4 (Tomography.n_nodes data);
  Alcotest.(check int) "paths" 3 (Tomography.n_paths data);
  (* first-appearance order: 1,2,3,4 *)
  Alcotest.(check int) "node 0" 1 (Asn.to_int (Tomography.node data 0));
  Alcotest.(check int) "node 3" 4 (Asn.to_int (Tomography.node data 3));
  Alcotest.(check (option int)) "index of AS2" (Some 1)
    (Tomography.index_of data (asn 2));
  Alcotest.(check (option int)) "unknown" None
    (Tomography.index_of data (asn 99));
  Alcotest.(check bool) "label 0" true (Tomography.label data 0);
  Alcotest.(check bool) "label 1" false (Tomography.label data 1)

let test_tomography_incidence () =
  let data = Tomography.of_observations obs in
  let through asn_int =
    let i = Option.get (Tomography.index_of data (asn asn_int)) in
    Array.to_list (Tomography.paths_through data i)
  in
  Alcotest.(check (list int)) "AS1 on paths 0,1" [ 0; 1 ] (through 1);
  Alcotest.(check (list int)) "AS2 on paths 0,2" [ 0; 2 ] (through 2);
  Alcotest.(check (list int)) "AS4 on paths 1,2" [ 1; 2 ] (through 4)

let test_tomography_share () =
  let data = Tomography.of_observations obs in
  Alcotest.(check (float 1e-9)) "positive share" (2.0 /. 3.0)
    (Tomography.positive_share data);
  Alcotest.(check int) "rfd count" 2 (Tomography.rfd_path_count data)

let test_tomography_invalid () =
  Alcotest.(check bool) "empty obs" true
    (try ignore (Tomography.of_observations []); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty path" true
    (try ignore (Tomography.of_observations [ ([], true) ]); false
     with Invalid_argument _ -> true)

let test_prior_log_pdfs () =
  Alcotest.(check (float 0.0)) "uniform inside" 0.0 (Prior.log_pdf Prior.Uniform 0.3);
  Alcotest.(check (float 0.0)) "uniform outside" neg_infinity
    (Prior.log_pdf Prior.Uniform 1.5);
  (* Beta(1,1) = uniform on (0,1) *)
  Alcotest.(check (float 1e-9)) "beta(1,1)" 0.0
    (Prior.log_pdf (Prior.Beta { a = 1.0; b = 1.0 }) 0.42);
  (* near-zero prior prefers small p *)
  Alcotest.(check bool) "near-zero decreasing" true
    (Prior.log_pdf Prior.Near_zero 0.05 > Prior.log_pdf Prior.Near_zero 0.5)

let test_prior_grad () =
  (* finite-difference check of the Beta gradient *)
  let prior = Prior.Beta { a = 2.0; b = 3.0 } in
  let eps = 1e-6 in
  List.iter
    (fun p ->
      let fd = (Prior.log_pdf prior (p +. eps) -. Prior.log_pdf prior (p -. eps)) /. (2.0 *. eps) in
      let g = Prior.grad_log_pdf prior p in
      Alcotest.(check bool)
        (Printf.sprintf "grad at %.2f (fd %.4f vs %.4f)" p fd g)
        true
        (Float.abs (fd -. g) < 1e-3))
    [ 0.2; 0.5; 0.8 ]

(* Hand-computable likelihood: one positive path over two nodes. *)
let test_likelihood_hand_computed () =
  let data = Tomography.of_observations [ (path [ 1; 2 ], true) ] in
  let model = Model.create ~prior:Prior.Uniform data in
  let p = [| 0.5; 0.5 |] in
  (* P = 1 − q1·q2 = 1 − 0.25 = 0.75 *)
  Alcotest.(check (float 1e-9)) "positive path" (Float.log 0.75)
    (Model.log_likelihood model p);
  let data2 = Tomography.of_observations [ (path [ 1; 2 ], false) ] in
  let model2 = Model.create ~prior:Prior.Uniform data2 in
  (* P = q1·q2 = 0.25 *)
  Alcotest.(check (float 1e-9)) "negative path" (Float.log 0.25)
    (Model.log_likelihood model2 p)

let test_likelihood_factorises () =
  let data = Tomography.of_observations obs in
  let model = Model.create ~prior:Prior.Uniform data in
  let p = [| 0.3; 0.1; 0.6; 0.2 |] in
  let expected =
    Float.log (1.0 -. (0.7 *. 0.9 *. 0.4))   (* path 1-2-3 positive *)
    +. Float.log (0.7 *. 0.8)                 (* path 1-4 negative *)
    +. Float.log (1.0 -. (0.9 *. 0.8))        (* path 2-4 positive *)
  in
  Alcotest.(check (float 1e-9)) "matches closed form" expected
    (Model.log_likelihood model p)

let test_posterior_includes_prior () =
  let data = Tomography.of_observations obs in
  let prior = Prior.Beta { a = 2.0; b = 2.0 } in
  let model = Model.create ~prior data in
  let p = [| 0.3; 0.1; 0.6; 0.2 |] in
  Alcotest.(check (float 1e-9)) "posterior = likelihood + prior"
    (Model.log_likelihood model p +. Model.log_prior model p)
    (Model.log_posterior model p)

let test_node_prior_override () =
  let data = Tomography.of_observations obs in
  let model =
    Model.create ~prior:Prior.Uniform
      ~node_priors:[ (asn 3, Prior.Near_zero) ]
      data
  in
  let base = Model.create ~prior:Prior.Uniform data in
  let p = [| 0.3; 0.1; 0.6; 0.2 |] in
  Alcotest.(check (float 1e-9)) "override changes prior only"
    (Model.log_prior model p -. Prior.log_pdf Prior.Near_zero 0.6)
    (Model.log_prior base p -. Prior.log_pdf Prior.Uniform 0.6)

(* The §7.2 error-aware likelihood. *)

let test_epsilon_zero_equivalence () =
  let data = Tomography.of_observations obs in
  let base = Model.create ~prior:Prior.Uniform data in
  let with_eps = Model.create ~prior:Prior.Uniform ~false_negative_rate:0.0 data in
  let p = [| 0.3; 0.1; 0.6; 0.2 |] in
  Alcotest.(check (float 1e-12)) "identical at eps=0"
    (Model.log_posterior base p)
    (Model.log_posterior with_eps p)

let test_epsilon_softens_clean_paths () =
  (* With a false-negative rate, a clean label is weaker evidence: the
     likelihood at high p is less punishing. *)
  let data = Tomography.of_observations [ (path [ 1 ], false) ] in
  let strict = Model.create ~prior:Prior.Uniform data in
  let lenient =
    Model.create ~prior:Prior.Uniform ~false_negative_rate:0.3 data
  in
  let p = [| 0.9 |] in
  Alcotest.(check bool) "lenient model dominates" true
    (Model.log_likelihood lenient p > Model.log_likelihood strict p);
  (* and a positive label costs the constant ln(1−ε) *)
  let data_pos = Tomography.of_observations [ (path [ 1 ], true) ] in
  let strict_pos = Model.create ~prior:Prior.Uniform data_pos in
  let lenient_pos =
    Model.create ~prior:Prior.Uniform ~false_negative_rate:0.3 data_pos
  in
  Alcotest.(check (float 1e-9)) "positive label offset"
    (Model.log_likelihood strict_pos p +. Float.log 0.7)
    (Model.log_likelihood lenient_pos p)

let test_epsilon_invalid () =
  let data = Tomography.of_observations obs in
  Alcotest.(check bool) "rejects eps >= 1" true
    (try ignore (Model.create ~false_negative_rate:1.0 data); false
     with Invalid_argument _ -> true)

let random_dataset rng ~nodes ~paths =
  let observations =
    List.init paths (fun _ ->
        let len = 2 + Rng.int rng 4 in
        let used = Array.init len (fun _ -> 1 + Rng.int rng nodes) in
        let distinct = List.sort_uniq Int.compare (Array.to_list used) in
        (path distinct, Rng.bool rng))
  in
  Tomography.of_observations observations

let qcheck_delta_matches_full =
  QCheck.Test.make ~name:"single-site delta equals full recompute" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let data = random_dataset rng ~nodes:8 ~paths:15 in
      let epsilon = if seed mod 2 = 0 then 0.0 else 0.05 in
      let model = Model.create ~false_negative_rate:epsilon data in
      let n = Tomography.n_nodes data in
      let p = Array.init n (fun _ -> 0.05 +. (0.9 *. Rng.float rng)) in
      let i = Rng.int rng n in
      let v = 0.05 +. (0.9 *. Rng.float rng) in
      let delta = Model.delta_log_posterior model p i v in
      let p' = Array.copy p in
      p'.(i) <- v;
      let full = Model.log_posterior model p' -. Model.log_posterior model p in
      Float.abs (delta -. full) < 1e-8)

let qcheck_cache_matches_stateless =
  QCheck.Test.make
    ~name:"cached delta tracks the stateless recompute through commits"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 400) in
      let data = random_dataset rng ~nodes:8 ~paths:15 in
      let epsilon = if seed mod 2 = 0 then 0.0 else 0.05 in
      let model = Model.create ~false_negative_rate:epsilon data in
      let n = Tomography.n_nodes data in
      let p = Array.init n (fun _ -> 0.05 +. (0.9 *. Rng.float rng)) in
      let cache = Model.make_cache model p in
      let ok = ref true in
      (* Random walk of proposals: every cached delta must match the
         stateless reference to 1e-9, and accepted commits must keep the
         sufficient statistics in sync with the evolving point. *)
      for _ = 1 to 60 do
        let i = Rng.int rng n in
        let v = 0.05 +. (0.9 *. Rng.float rng) in
        let cached = cache.Because_mcmc.Target.cached_delta i v in
        let reference = Model.delta_log_posterior model p i v in
        if Float.abs (cached -. reference) > 1e-9 then ok := false;
        if Rng.bool rng then begin
          cache.Because_mcmc.Target.cached_commit i v;
          p.(i) <- v
        end
      done;
      !ok)

let test_cached_target_statistically_equivalent () =
  (* The cached and stateless targets describe the same posterior: two MH
     runs from the same seed must land on the same marginal means (they are
     not bit-identical — the incremental S_j differs from a re-sum in the
     last bits, which is enough to flip an occasional accept). *)
  let rng = Rng.create 31 in
  let data = random_dataset rng ~nodes:6 ~paths:40 in
  let model = Model.create data in
  let sample target =
    let r =
      Because_mcmc.Metropolis.run_single_site ~rng:(Rng.create 77)
        ~n_samples:2000 ~burn_in:500 target
    in
    r.Because_mcmc.Metropolis.chain
  in
  let cached = sample (Model.target model) in
  let stateless = sample (Model.target ~cached:false model) in
  for i = 0 to Tomography.n_nodes data - 1 do
    let mean c =
      Because_stats.Summary.mean (Because_mcmc.Chain.marginal c i)
    in
    Alcotest.(check bool)
      (Printf.sprintf "node %d means agree (%.3f vs %.3f)" i (mean cached)
         (mean stateless))
      true
      (Float.abs (mean cached -. mean stateless) < 0.06)
  done

let qcheck_gradient_matches_fd =
  QCheck.Test.make ~name:"analytic gradient matches finite differences"
    ~count:30 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 100) in
      let data = random_dataset rng ~nodes:6 ~paths:10 in
      let epsilon = if seed mod 2 = 0 then 0.0 else 0.08 in
      let model = Model.create ~false_negative_rate:epsilon data in
      let target = Model.target model in
      let n = Tomography.n_nodes data in
      let p = Array.init n (fun _ -> 0.2 +. (0.6 *. Rng.float rng)) in
      match Because_mcmc.Target.check_gradient target ~at:p ~eps:1e-6 ~tol:1e-3 with
      | Ok () -> true
      | Error _ -> false)

let qcheck_likelihood_is_log_probability =
  QCheck.Test.make ~name:"log likelihood never exceeds 0" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 300) in
      let data = random_dataset rng ~nodes:8 ~paths:12 in
      let model = Model.create ~prior:Prior.Uniform data in
      let n = Tomography.n_nodes data in
      let p = Array.init n (fun _ -> Rng.float rng) in
      Model.log_likelihood model p <= 1e-12)

let qcheck_likelihood_monotone_on_positive =
  QCheck.Test.make
    ~name:"raising p on a positive-only node raises the likelihood" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 200) in
      (* one positive path through node 1 *)
      let data = Tomography.of_observations [ (path [ 1; 2 ], true) ] in
      let model = Model.create ~prior:Prior.Uniform data in
      let base = 0.1 +. (0.4 *. Rng.float rng) in
      let higher = base +. 0.2 in
      let ll v = Model.log_likelihood model [| v; 0.3 |] in
      ll higher > ll base)

let suite =
  ( "core-model",
    [
      Alcotest.test_case "tomography indexing" `Quick test_tomography_indexing;
      Alcotest.test_case "tomography incidence" `Quick test_tomography_incidence;
      Alcotest.test_case "positive share" `Quick test_tomography_share;
      Alcotest.test_case "tomography invalid" `Quick test_tomography_invalid;
      Alcotest.test_case "prior log pdfs" `Quick test_prior_log_pdfs;
      Alcotest.test_case "prior gradient" `Quick test_prior_grad;
      Alcotest.test_case "likelihood hand computed" `Quick
        test_likelihood_hand_computed;
      Alcotest.test_case "likelihood factorises" `Quick test_likelihood_factorises;
      Alcotest.test_case "posterior = ll + prior" `Quick
        test_posterior_includes_prior;
      Alcotest.test_case "node prior override" `Quick test_node_prior_override;
      Alcotest.test_case "epsilon=0 equivalence" `Quick
        test_epsilon_zero_equivalence;
      Alcotest.test_case "epsilon softens clean labels" `Quick
        test_epsilon_softens_clean_paths;
      Alcotest.test_case "epsilon validation" `Quick test_epsilon_invalid;
      QCheck_alcotest.to_alcotest qcheck_likelihood_is_log_probability;
      QCheck_alcotest.to_alcotest qcheck_delta_matches_full;
      QCheck_alcotest.to_alcotest qcheck_cache_matches_stateless;
      Alcotest.test_case "cached target statistically equivalent" `Slow
        test_cached_target_statistically_equivalent;
      QCheck_alcotest.to_alcotest qcheck_gradient_matches_fd;
      QCheck_alcotest.to_alcotest qcheck_likelihood_monotone_on_positive;
    ] )
