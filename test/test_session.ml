(* RFC 4271 session FSM. *)
open Because_bgp

let asn = Asn.of_int
let config = Session.default_config (asn 65001)

let has action actions = List.mem action actions

let step t event = Session.handle t event

let bring_up () =
  let t = Session.create config in
  let t, a1 = step t Session.Manual_start in
  let t, a2 = step t Session.Transport_connected in
  let t, a3 =
    step t (Session.Open_received { peer_asn = asn 2; hold_time = 90.0 })
  in
  let t, a4 = step t Session.Keepalive_received in
  (t, a1, a2, a3, a4)

let test_happy_path () =
  let t, a1, a2, a3, a4 = bring_up () in
  Alcotest.(check bool) "start initiates transport" true
    (has Session.Initiate_transport a1);
  Alcotest.(check bool) "sends OPEN" true (has Session.Send_open a2);
  Alcotest.(check bool) "answers with KEEPALIVE" true
    (has Session.Send_keepalive a3);
  Alcotest.(check bool) "session comes up" true (has Session.Session_up a4);
  Alcotest.(check bool) "established" true (Session.state t = Session.Established);
  Alcotest.(check (option int)) "peer learned" (Some 2)
    (Option.map Asn.to_int (Session.peer t))

let test_hold_time_negotiation () =
  let t = Session.create config in
  let t, _ = step t Session.Manual_start in
  let t, _ = step t Session.Transport_connected in
  let t, actions =
    step t (Session.Open_received { peer_asn = asn 2; hold_time = 30.0 })
  in
  Alcotest.(check (option (float 1e-9))) "minimum wins" (Some 30.0)
    (Session.negotiated_hold_time t);
  Alcotest.(check bool) "keepalive at a third" true
    (has (Session.Start_keepalive_timer 10.0) actions)

let test_hold_timer_teardown () =
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Hold_timer_expired in
  Alcotest.(check bool) "back to idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "routes dropped" true
    (List.exists
       (function Session.Session_down _ -> true | _ -> false)
       actions);
  Alcotest.(check bool) "notification sent" true
    (List.exists
       (function Session.Send_notification _ -> true | _ -> false)
       actions)

let test_keepalive_refreshes_hold () =
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Keepalive_received in
  Alcotest.(check bool) "still established" true
    (Session.state t = Session.Established);
  Alcotest.(check bool) "hold timer restarted" true
    (has (Session.Start_hold_timer 90.0) actions)

let test_transport_failure_retries () =
  let t = Session.create config in
  let t, _ = step t Session.Manual_start in
  let t, actions = step t Session.Transport_failed in
  Alcotest.(check bool) "falls to active" true (Session.state t = Session.Active);
  Alcotest.(check bool) "retry armed" true
    (List.exists
       (function Session.Start_connect_retry_timer _ -> true | _ -> false)
       actions);
  let t, actions = step t Session.Connect_retry_expired in
  Alcotest.(check bool) "retries connect" true (Session.state t = Session.Connect);
  Alcotest.(check bool) "initiates again" true
    (has Session.Initiate_transport actions)

let test_fsm_error_resets () =
  let t = Session.create config in
  let t, _ = step t Session.Manual_start in
  (* An UPDATE in Connect state is an FSM error. *)
  let t, actions = step t Session.Update_received in
  Alcotest.(check bool) "reset to idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "transport closed" true
    (has Session.Close_transport actions)

let test_established_update_keeps_session () =
  let t, _, _, _, _ = bring_up () in
  let t, _ = step t Session.Update_received in
  Alcotest.(check bool) "still up" true (Session.state t = Session.Established)

let test_manual_stop_ceases () =
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Manual_stop in
  Alcotest.(check bool) "idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "cease sent" true
    (List.exists
       (function Session.Send_notification _ -> true | _ -> false)
       actions);
  Alcotest.(check bool) "routes dropped" true
    (List.exists
       (function Session.Session_down _ -> true | _ -> false)
       actions)

(* RFC 4271 FSM-error matrix: for every state, every event the FSM does not
   handle must fall back to Idle with Close_transport — plus Session_down
   when the session was Established. *)

let reach = function
  | Session.Idle -> Session.create config
  | Session.Connect -> fst (step (Session.create config) Session.Manual_start)
  | Session.Active ->
      let t = fst (step (Session.create config) Session.Manual_start) in
      fst (step t Session.Transport_failed)
  | Session.Open_sent ->
      let t = fst (step (Session.create config) Session.Manual_start) in
      fst (step t Session.Transport_connected)
  | Session.Open_confirm ->
      let t = fst (step (Session.create config) Session.Manual_start) in
      let t = fst (step t Session.Transport_connected) in
      fst
        (step t (Session.Open_received { peer_asn = asn 2; hold_time = 90.0 }))
  | Session.Established ->
      let t, _, _, _, _ = bring_up () in
      t

let open_ev = Session.Open_received { peer_asn = asn 9; hold_time = 90.0 }

let error_events = function
  | Session.Idle ->
      [ Session.Transport_connected; open_ev; Session.Keepalive_received;
        Session.Update_received; Session.Hold_timer_expired;
        Session.Keepalive_timer_expired; Session.Connect_retry_expired ]
  | Session.Connect | Session.Active ->
      [ Session.Manual_start; open_ev; Session.Keepalive_received;
        Session.Update_received; Session.Notification_received;
        Session.Hold_timer_expired; Session.Keepalive_timer_expired ]
  | Session.Open_sent ->
      [ Session.Manual_start; Session.Transport_connected;
        Session.Keepalive_received; Session.Update_received;
        Session.Notification_received; Session.Keepalive_timer_expired;
        Session.Connect_retry_expired ]
  | Session.Open_confirm ->
      [ Session.Manual_start; Session.Transport_connected; open_ev;
        Session.Update_received; Session.Connect_retry_expired ]
  | Session.Established ->
      [ Session.Manual_start; Session.Transport_connected; open_ev;
        Session.Connect_retry_expired ]

let state_name = function
  | Session.Idle -> "Idle"
  | Session.Connect -> "Connect"
  | Session.Active -> "Active"
  | Session.Open_sent -> "OpenSent"
  | Session.Open_confirm -> "OpenConfirm"
  | Session.Established -> "Established"

let test_fsm_error_matrix () =
  List.iter
    (fun state ->
      let t0 = reach state in
      Alcotest.(check string) "reached the intended state" (state_name state)
        (state_name (Session.state t0));
      List.iter
        (fun event ->
          let t, actions = step t0 event in
          let ctx = state_name state in
          Alcotest.(check bool) (ctx ^ ": error falls to Idle") true
            (Session.state t = Session.Idle);
          Alcotest.(check bool) (ctx ^ ": transport closed") true
            (has Session.Close_transport actions);
          Alcotest.(check bool)
            (ctx ^ ": Session_down iff was Established")
            (state = Session.Established)
            (List.exists
               (function Session.Session_down _ -> true | _ -> false)
               actions))
        (error_events state))
    [ Session.Idle; Session.Connect; Session.Active; Session.Open_sent;
      Session.Open_confirm; Session.Established ]

let test_established_hold_expiry_drops_routes () =
  (* Hold-timer expiry on a live session is the one timer error that must
     withdraw routes: the peer has gone silent. *)
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Hold_timer_expired in
  Alcotest.(check bool) "idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "Session_down emitted" true
    (List.exists
       (function Session.Session_down _ -> true | _ -> false)
       actions)

let qcheck_never_up_without_open =
  (* Random event sequences: Session_up is only ever emitted right after a
     KEEPALIVE in OpenConfirm, i.e. an OPEN must have been accepted. *)
  let event_gen =
    QCheck.Gen.oneofl
      [ Session.Manual_start; Session.Manual_stop;
        Session.Transport_connected; Session.Transport_failed;
        Session.Open_received { peer_asn = asn 7; hold_time = 90.0 };
        Session.Keepalive_received; Session.Update_received;
        Session.Notification_received; Session.Hold_timer_expired;
        Session.Keepalive_timer_expired; Session.Connect_retry_expired ]
  in
  QCheck.Test.make ~name:"Session_up implies an accepted OPEN" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) event_gen))
    (fun events ->
      let t = ref (Session.create config) in
      List.for_all
        (fun event ->
          let t', actions = Session.handle !t event in
          let ok =
            (not (List.mem Session.Session_up actions))
            || Session.peer t' <> None
          in
          t := t';
          ok)
        events)

let qcheck_state_consistency =
  let event_gen =
    QCheck.Gen.oneofl
      [ Session.Manual_start; Session.Manual_stop;
        Session.Transport_connected; Session.Transport_failed;
        Session.Open_received { peer_asn = asn 7; hold_time = 90.0 };
        Session.Keepalive_received; Session.Update_received;
        Session.Notification_received; Session.Hold_timer_expired;
        Session.Keepalive_timer_expired; Session.Connect_retry_expired ]
  in
  QCheck.Test.make ~name:"established sessions always know their peer"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) event_gen))
    (fun events ->
      let t = ref (Session.create config) in
      List.for_all
        (fun event ->
          let t', _ = Session.handle !t event in
          t := t';
          Session.state t' <> Session.Established || Session.peer t' <> None)
        events)

let suite =
  ( "session",
    [
      Alcotest.test_case "happy path" `Quick test_happy_path;
      Alcotest.test_case "hold-time negotiation" `Quick
        test_hold_time_negotiation;
      Alcotest.test_case "hold timer teardown" `Quick test_hold_timer_teardown;
      Alcotest.test_case "keepalive refreshes hold" `Quick
        test_keepalive_refreshes_hold;
      Alcotest.test_case "transport failure retries" `Quick
        test_transport_failure_retries;
      Alcotest.test_case "FSM error resets" `Quick test_fsm_error_resets;
      Alcotest.test_case "update keeps session" `Quick
        test_established_update_keeps_session;
      Alcotest.test_case "manual stop" `Quick test_manual_stop_ceases;
      Alcotest.test_case "FSM error matrix" `Quick test_fsm_error_matrix;
      Alcotest.test_case "hold expiry drops routes" `Quick
        test_established_hold_expiry_drops_routes;
      QCheck_alcotest.to_alcotest qcheck_never_up_without_open;
      QCheck_alcotest.to_alcotest qcheck_state_consistency;
    ] )
