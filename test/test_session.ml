(* RFC 4271 session FSM. *)
open Because_bgp

let asn = Asn.of_int
let config = Session.default_config (asn 65001)

let has action actions = List.mem action actions

let step t event = Session.handle t event

let bring_up () =
  let t = Session.create config in
  let t, a1 = step t Session.Manual_start in
  let t, a2 = step t Session.Transport_connected in
  let t, a3 =
    step t (Session.Open_received { peer_asn = asn 2; hold_time = 90.0 })
  in
  let t, a4 = step t Session.Keepalive_received in
  (t, a1, a2, a3, a4)

let test_happy_path () =
  let t, a1, a2, a3, a4 = bring_up () in
  Alcotest.(check bool) "start initiates transport" true
    (has Session.Initiate_transport a1);
  Alcotest.(check bool) "sends OPEN" true (has Session.Send_open a2);
  Alcotest.(check bool) "answers with KEEPALIVE" true
    (has Session.Send_keepalive a3);
  Alcotest.(check bool) "session comes up" true (has Session.Session_up a4);
  Alcotest.(check bool) "established" true (Session.state t = Session.Established);
  Alcotest.(check (option int)) "peer learned" (Some 2)
    (Option.map Asn.to_int (Session.peer t))

let test_hold_time_negotiation () =
  let t = Session.create config in
  let t, _ = step t Session.Manual_start in
  let t, _ = step t Session.Transport_connected in
  let t, actions =
    step t (Session.Open_received { peer_asn = asn 2; hold_time = 30.0 })
  in
  Alcotest.(check (option (float 1e-9))) "minimum wins" (Some 30.0)
    (Session.negotiated_hold_time t);
  Alcotest.(check bool) "keepalive at a third" true
    (has (Session.Start_keepalive_timer 10.0) actions)

let test_hold_timer_teardown () =
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Hold_timer_expired in
  Alcotest.(check bool) "back to idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "routes dropped" true
    (List.exists
       (function Session.Session_down _ -> true | _ -> false)
       actions);
  Alcotest.(check bool) "notification sent" true
    (List.exists
       (function Session.Send_notification _ -> true | _ -> false)
       actions)

let test_keepalive_refreshes_hold () =
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Keepalive_received in
  Alcotest.(check bool) "still established" true
    (Session.state t = Session.Established);
  Alcotest.(check bool) "hold timer restarted" true
    (has (Session.Start_hold_timer 90.0) actions)

let test_transport_failure_retries () =
  let t = Session.create config in
  let t, _ = step t Session.Manual_start in
  let t, actions = step t Session.Transport_failed in
  Alcotest.(check bool) "falls to active" true (Session.state t = Session.Active);
  Alcotest.(check bool) "retry armed" true
    (List.exists
       (function Session.Start_connect_retry_timer _ -> true | _ -> false)
       actions);
  let t, actions = step t Session.Connect_retry_expired in
  Alcotest.(check bool) "retries connect" true (Session.state t = Session.Connect);
  Alcotest.(check bool) "initiates again" true
    (has Session.Initiate_transport actions)

let test_fsm_error_resets () =
  let t = Session.create config in
  let t, _ = step t Session.Manual_start in
  (* An UPDATE in Connect state is an FSM error. *)
  let t, actions = step t Session.Update_received in
  Alcotest.(check bool) "reset to idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "transport closed" true
    (has Session.Close_transport actions)

let test_established_update_keeps_session () =
  let t, _, _, _, _ = bring_up () in
  let t, _ = step t Session.Update_received in
  Alcotest.(check bool) "still up" true (Session.state t = Session.Established)

let test_manual_stop_ceases () =
  let t, _, _, _, _ = bring_up () in
  let t, actions = step t Session.Manual_stop in
  Alcotest.(check bool) "idle" true (Session.state t = Session.Idle);
  Alcotest.(check bool) "cease sent" true
    (List.exists
       (function Session.Send_notification _ -> true | _ -> false)
       actions);
  Alcotest.(check bool) "routes dropped" true
    (List.exists
       (function Session.Session_down _ -> true | _ -> false)
       actions)

let qcheck_never_up_without_open =
  (* Random event sequences: Session_up is only ever emitted right after a
     KEEPALIVE in OpenConfirm, i.e. an OPEN must have been accepted. *)
  let event_gen =
    QCheck.Gen.oneofl
      [ Session.Manual_start; Session.Manual_stop;
        Session.Transport_connected; Session.Transport_failed;
        Session.Open_received { peer_asn = asn 7; hold_time = 90.0 };
        Session.Keepalive_received; Session.Update_received;
        Session.Notification_received; Session.Hold_timer_expired;
        Session.Keepalive_timer_expired; Session.Connect_retry_expired ]
  in
  QCheck.Test.make ~name:"Session_up implies an accepted OPEN" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) event_gen))
    (fun events ->
      let t = ref (Session.create config) in
      List.for_all
        (fun event ->
          let t', actions = Session.handle !t event in
          let ok =
            (not (List.mem Session.Session_up actions))
            || Session.peer t' <> None
          in
          t := t';
          ok)
        events)

let qcheck_state_consistency =
  let event_gen =
    QCheck.Gen.oneofl
      [ Session.Manual_start; Session.Manual_stop;
        Session.Transport_connected; Session.Transport_failed;
        Session.Open_received { peer_asn = asn 7; hold_time = 90.0 };
        Session.Keepalive_received; Session.Update_received;
        Session.Notification_received; Session.Hold_timer_expired;
        Session.Keepalive_timer_expired; Session.Connect_retry_expired ]
  in
  QCheck.Test.make ~name:"established sessions always know their peer"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) event_gen))
    (fun events ->
      let t = ref (Session.create config) in
      List.for_all
        (fun event ->
          let t', _ = Session.handle !t event in
          t := t';
          Session.state t' <> Session.Established || Session.peer t' <> None)
        events)

let suite =
  ( "session",
    [
      Alcotest.test_case "happy path" `Quick test_happy_path;
      Alcotest.test_case "hold-time negotiation" `Quick
        test_hold_time_negotiation;
      Alcotest.test_case "hold timer teardown" `Quick test_hold_timer_teardown;
      Alcotest.test_case "keepalive refreshes hold" `Quick
        test_keepalive_refreshes_hold;
      Alcotest.test_case "transport failure retries" `Quick
        test_transport_failure_retries;
      Alcotest.test_case "FSM error resets" `Quick test_fsm_error_resets;
      Alcotest.test_case "update keeps session" `Quick
        test_established_update_keeps_session;
      Alcotest.test_case "manual stop" `Quick test_manual_stop_ceases;
      QCheck_alcotest.to_alcotest qcheck_never_up_without_open;
      QCheck_alcotest.to_alcotest qcheck_state_consistency;
    ] )
