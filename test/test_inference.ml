(* Infer, Posterior, Categorize, Pinpoint, Evaluate on synthetic data. *)
open Because_bgp
module Tomography = Because.Tomography
module Infer = Because.Infer
module Posterior = Because.Posterior
module Categorize = Because.Categorize
module Pinpoint = Because.Pinpoint
module Evaluate = Because.Evaluate
module Hdpi = Because_stats.Hdpi
module Rng = Because_stats.Rng

let asn = Asn.of_int
let path ints = List.map asn ints

(* A crisply identifiable world: AS1 damps everything, AS2–AS6 do not.
   Each AS appears on many paths; AS1 is on all positive ones. *)
let identifiable_observations =
  List.concat
    (List.init 10 (fun k ->
         let leaf = 2 + (k mod 5) in
         [
           (path [ leaf; 1; 99 ], true);   (* via the damper *)
           (path [ leaf; 7; 99 ], false);  (* clean route *)
         ]))

let small_config =
  { Infer.default_config with n_samples = 600; burn_in = 400 }

let run_identifiable () =
  let data = Tomography.of_observations identifiable_observations in
  Infer.run ~rng:(Rng.create 5) ~config:small_config data

let test_infer_runs_both_samplers () =
  let result = run_identifiable () in
  Alcotest.(check (list string)) "both samplers" [ "MH"; "HMC" ]
    (List.map (fun (r : Infer.sampler_run) -> r.Infer.name) result.Infer.runs);
  List.iter
    (fun (r : Infer.sampler_run) ->
      Alcotest.(check int) "samples" 600
        (Because_mcmc.Chain.length r.Infer.chain))
    result.Infer.runs

let test_infer_identifies_damper () =
  let result = run_identifiable () in
  let data = Infer.dataset result in
  let marginals = Posterior.combined result in
  let damper = Option.get (Tomography.index_of data (asn 1)) in
  let clean = Option.get (Tomography.index_of data (asn 7)) in
  Alcotest.(check bool)
    (Printf.sprintf "damper mean high (%.2f)" marginals.(damper).Posterior.mean)
    true
    (marginals.(damper).Posterior.mean > 0.8);
  Alcotest.(check bool)
    (Printf.sprintf "clean mean low (%.2f)" marginals.(clean).Posterior.mean)
    true
    (marginals.(clean).Posterior.mean < 0.2)

let test_mh_hmc_agree () =
  let result = run_identifiable () in
  let data = Infer.dataset result in
  let per = Posterior.per_sampler result in
  let mh = List.assoc "MH" per and hmc = List.assoc "HMC" per in
  let damper = Option.get (Tomography.index_of data (asn 1)) in
  Alcotest.(check bool) "samplers agree on the damper" true
    (Float.abs (mh.(damper).Posterior.mean -. hmc.(damper).Posterior.mean)
    < 0.12)

let test_infer_config_validation () =
  let data = Tomography.of_observations identifiable_observations in
  Alcotest.(check bool) "no sampler" true
    (try
       ignore
         (Infer.run ~rng:(Rng.create 1)
            ~config:{ small_config with run_mh = false; run_hmc = false }
            data);
       false
     with Invalid_argument _ -> true)

let test_combined_chain_length () =
  let result = run_identifiable () in
  Alcotest.(check int) "pooled draws" 1200
    (Because_mcmc.Chain.length (Infer.combined_chain result))

let chains_equal a b =
  Because_mcmc.Chain.length a = Because_mcmc.Chain.length b
  && Because_mcmc.Chain.dim a = Because_mcmc.Chain.dim b
  &&
  let equal = ref true in
  for k = 0 to Because_mcmc.Chain.length a - 1 do
    let da = Because_mcmc.Chain.get a k and db = Because_mcmc.Chain.get b k in
    Array.iteri (fun i v -> if not (Float.equal v db.(i)) then equal := false) da
  done;
  !equal

let multi_chain_config = { small_config with Infer.n_chains = 2 }

let test_jobs_bit_identical () =
  (* The whole point of pre-split per-task generators: fanning the sampler
     tasks over 4 domains must reproduce the sequential run bit for bit —
     same chains, same acceptance rates, same warnings, same order. *)
  let data = Tomography.of_observations identifiable_observations in
  let run jobs =
    Infer.run ~rng:(Rng.create 21)
      ~config:{ multi_chain_config with Infer.jobs }
      data
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check int) "same run count" (List.length seq.Infer.runs)
    (List.length par.Infer.runs);
  List.iter2
    (fun (a : Infer.sampler_run) (b : Infer.sampler_run) ->
      Alcotest.(check string) "same sampler" a.Infer.name b.Infer.name;
      Alcotest.(check int) "same chain index" a.Infer.chain_index
        b.Infer.chain_index;
      Alcotest.(check (float 0.0)) "same acceptance" a.Infer.acceptance
        b.Infer.acceptance;
      Alcotest.(check bool) "bit-identical chain" true
        (chains_equal a.Infer.chain b.Infer.chain))
    seq.Infer.runs par.Infer.runs;
  Alcotest.(check (list string)) "same warnings" seq.Infer.warnings
    par.Infer.warnings

let test_single_chain_stream_unchanged () =
  (* n_chains = 1 must reproduce what the historical sequential code drew
     from the same seed: one split per sampler, nothing else. *)
  let data = Tomography.of_observations identifiable_observations in
  let rng = Rng.create 33 in
  let result = Infer.run ~rng ~config:small_config data in
  let expected_mh = Rng.split (Rng.create 33) in
  let r =
    Because_mcmc.Metropolis.run_single_site ~rng:expected_mh
      ~thin:small_config.Infer.thin ~n_samples:small_config.Infer.n_samples
      ~burn_in:small_config.Infer.burn_in
      (Because.Model.target
         (Because.Model.create ~prior:small_config.Infer.prior data))
  in
  let mh =
    List.find (fun (x : Infer.sampler_run) -> x.Infer.name = "MH")
      result.Infer.runs
  in
  Alcotest.(check bool) "MH chain matches a hand-split run" true
    (chains_equal mh.Infer.chain r.Because_mcmc.Metropolis.chain)

let test_multi_chain_runs () =
  let data = Tomography.of_observations identifiable_observations in
  let result = Infer.run ~rng:(Rng.create 21) ~config:multi_chain_config data in
  Alcotest.(check (list string)) "two chains per sampler"
    [ "MH"; "MH"; "HMC"; "HMC" ]
    (List.map (fun (r : Infer.sampler_run) -> r.Infer.name) result.Infer.runs);
  Alcotest.(check (list int)) "chain indices" [ 0; 1; 0; 1 ]
    (List.map
       (fun (r : Infer.sampler_run) -> r.Infer.chain_index)
       result.Infer.runs);
  Alcotest.(check int) "pooled draws" (600 * 4)
    (Because_mcmc.Chain.length (Infer.combined_chain result))

let test_rhat_diagnostic () =
  let data = Tomography.of_observations identifiable_observations in
  let result = Infer.run ~rng:(Rng.create 21) ~config:multi_chain_config data in
  let rhats = Infer.r_hat result in
  Alcotest.(check (list string)) "one entry per sampler" [ "MH"; "HMC" ]
    (List.map fst rhats);
  List.iter
    (fun (name, r) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s converged (R-hat %.3f)" name r)
        true
        (Float.is_finite r && r < 1.2))
    rhats

let test_infer_rejects_bad_parallel_config () =
  let data = Tomography.of_observations identifiable_observations in
  let rejects config =
    try
      ignore (Infer.run ~rng:(Rng.create 1) ~config data);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "jobs = 0" true
    (rejects { small_config with Infer.jobs = 0 });
  Alcotest.(check bool) "n_chains = 0" true
    (rejects { small_config with Infer.n_chains = 0 })

let test_certainty () =
  let result = run_identifiable () in
  let marginals = Posterior.combined result in
  Array.iter
    (fun (m : Posterior.marginal) ->
      Alcotest.(check bool) "certainty = 1 - width" true
        (Float.abs (m.Posterior.certainty -. (1.0 -. Hdpi.width m.Posterior.hdpi))
        < 1e-12))
    marginals

(* Categorisation boundaries (Table 1). *)
let test_categorize_mean () =
  let cases =
    [ (0.0, 1); (0.14, 1); (0.15, 2); (0.29, 2); (0.3, 3); (0.69, 3);
      (0.7, 4); (0.84, 4); (0.85, 5); (1.0, 5) ]
  in
  List.iter
    (fun (mean, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "mean %.2f" mean)
        expected
        (Categorize.to_int (Categorize.of_mean mean)))
    cases

let test_categorize_hdpi () =
  let check lo hi expected =
    Alcotest.(check int)
      (Printf.sprintf "[%.2f,%.2f]" lo hi)
      expected
      (Categorize.to_int (Categorize.of_hdpi { Hdpi.lo; hi }))
  in
  check 0.0 0.1 1;   (* confidently low *)
  check 0.05 0.25 2; (* low-ish *)
  check 0.2 0.8 3;   (* wide: uncertain *)
  check 0.72 0.8 4;  (* confidently highish *)
  check 0.9 1.0 5    (* confidently high *)

let test_categorize_max_flag () =
  Alcotest.(check int) "max" 4
    (Categorize.to_int (Categorize.max_ Categorize.C4 Categorize.C2));
  Alcotest.(check bool) "damping" true (Categorize.damping Categorize.C4);
  Alcotest.(check bool) "not damping" false (Categorize.damping Categorize.C3)

let test_shares () =
  let shares = Categorize.shares [ Categorize.C1; Categorize.C1; Categorize.C5; Categorize.C3 ] in
  match shares with
  | [ (_, c1, s1); (_, c2, _); (_, c3, _); (_, c4, _); (_, _c5, s5) ] ->
      Alcotest.(check int) "c1 count" 2 c1;
      Alcotest.(check (float 1e-9)) "c1 share" 0.5 s1;
      Alcotest.(check int) "c2" 0 c2;
      Alcotest.(check int) "c3" 1 c3;
      Alcotest.(check int) "c4" 0 c4;
      Alcotest.(check (float 1e-9)) "c5 share" 0.25 s5
  | _ -> Alcotest.fail "five rows expected"

let test_assign_flags_damper () =
  let result = run_identifiable () in
  let categories = Categorize.assign result in
  let damper_cat = List.assoc (asn 1) categories in
  Alcotest.(check bool) "damper flagged 4/5" true (Categorize.damping damper_cat);
  let clean_cat = List.assoc (asn 7) categories in
  Alcotest.(check bool) "clean not flagged" false (Categorize.damping clean_cat)

(* Pinpointing: an inconsistent damper (AS1) that damps only half its paths
   while each positive path has no other candidate. *)
let inconsistent_observations =
  List.concat
    (List.init 12 (fun k ->
         let leaf = 20 + k in
         if k mod 2 = 0 then [ (path [ leaf; 1; 99 ], true) ]
         else [ (path [ leaf; 1; 99 ], false) ]))
  @ (* abundant unrelated clean traffic pins the leaves down, mirroring the
       paper's AS 701 case where every other on-path AS has clean data *)
  List.concat
    (List.init 12 (fun k ->
         [
           (path [ 20 + k; 7; 99 ], false);
           (path [ 20 + k; 8; 99 ], false);
           (path [ 20 + k; 9; 99 ], false);
         ]))

let test_pinpoint_promotes_inconsistent () =
  let data = Tomography.of_observations inconsistent_observations in
  let result =
    Infer.run ~rng:(Rng.create 11)
      ~config:
        { small_config with
          node_priors = [ (asn 99, Because.Prior.Near_zero) ] }
      data
  in
  let step1 = Categorize.assign result in
  let cat1 = List.assoc (asn 1) step1 in
  (* With half its paths clean, AS1's mean sits mid-low: not flagged yet. *)
  let promos = Pinpoint.promotions result ~categories:step1 in
  let categories = Pinpoint.apply step1 promos in
  Alcotest.(check bool)
    (Printf.sprintf "promoted from category %d" (Categorize.to_int cat1))
    true
    (Categorize.damping (List.assoc (asn 1) categories));
  Alcotest.(check bool) "promotion recorded" true
    (List.exists (fun (p : Pinpoint.promotion) -> Asn.equal p.Pinpoint.asn (asn 1)) promos)

let test_pinpoint_min_support () =
  let data = Tomography.of_observations inconsistent_observations in
  let result = Infer.run ~rng:(Rng.create 11) ~config:small_config data in
  let step1 = Categorize.assign result in
  let lax = Pinpoint.promotions ~min_support:1 result ~categories:step1 in
  let strict = Pinpoint.promotions ~min_support:1000 result ~categories:step1 in
  Alcotest.(check bool) "lax fires" true (lax <> []);
  Alcotest.(check (list string)) "absurd support never fires" []
    (List.map (fun (p : Pinpoint.promotion) -> Asn.to_string p.Pinpoint.asn) strict)

let test_pinpoint_skips_explained_paths () =
  (* Every positive path contains an already-flagged damper: no promotions. *)
  let result = run_identifiable () in
  let categories = Categorize.assign result in
  let promos = Pinpoint.promotions result ~categories in
  Alcotest.(check (list string)) "nothing to promote" []
    (List.map (fun (p : Pinpoint.promotion) -> Asn.to_string p.Pinpoint.asn) promos)

(* Posterior predictive checks. *)
let test_predictive_scores () =
  let result = run_identifiable () in
  let p = Because.Predictive.evaluate result in
  (* The identifiable dataset is almost deterministic: predictions should be
     sharp and well calibrated. *)
  Alcotest.(check bool)
    (Printf.sprintf "low Brier (%.3f)" p.Because.Predictive.brier)
    true
    (p.Because.Predictive.brier < 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "log score sane (%.3f)" p.Because.Predictive.log_score)
    true
    (p.Because.Predictive.log_score > -0.5);
  Alcotest.(check int) "one prediction per path" 20
    (List.length p.Because.Predictive.predictions);
  List.iter
    (fun (pr : Because.Predictive.path_prediction) ->
      Alcotest.(check bool) "probability in [0,1]" true
        (pr.Because.Predictive.probability >= 0.0
        && pr.Because.Predictive.probability <= 1.0);
      (* positive paths predicted above negative ones *)
      if pr.Because.Predictive.label then
        Alcotest.(check bool) "positives scored high" true
          (pr.Because.Predictive.probability > 0.5))
    p.Because.Predictive.predictions

let test_predictive_calibration_bins () =
  let result = run_identifiable () in
  let p = Because.Predictive.evaluate ~bins:5 result in
  Alcotest.(check int) "bin count" 5
    (List.length p.Because.Predictive.calibration);
  let total =
    List.fold_left
      (fun acc (b : Because.Predictive.calibration_bin) ->
        acc + b.Because.Predictive.count)
      0 p.Because.Predictive.calibration
  in
  Alcotest.(check int) "bins partition the paths" 20 total

let test_path_probability_bounds () =
  let data = Tomography.of_observations [ (path [ 1; 2 ], true) ] in
  let chain =
    Because_mcmc.Chain.of_samples [| [| 0.5; 0.5 |]; [| 1.0; 0.0 |] |]
  in
  (* draw 1: 1 − 0.25 = 0.75; draw 2: 1 − 0 = 1.0 → mean 0.875 *)
  Alcotest.(check (float 1e-9)) "hand computed" 0.875
    (Because.Predictive.path_probability data chain 0)

(* Evaluate. *)
let test_evaluate_counts () =
  let set ints = Asn.Set.of_list (List.map asn ints) in
  let m =
    Evaluate.of_sets
      ~predicted:(set [ 1; 2; 3 ])
      ~truth:(set [ 2; 3; 4 ])
      ~universe:(set [ 1; 2; 3; 4; 5; 6 ])
  in
  Alcotest.(check int) "tp" 2 m.Evaluate.true_positives;
  Alcotest.(check int) "fp" 1 m.Evaluate.false_positives;
  Alcotest.(check int) "fn" 1 m.Evaluate.false_negatives;
  Alcotest.(check int) "tn" 2 m.Evaluate.true_negatives;
  Alcotest.(check (float 1e-9)) "precision" (2.0 /. 3.0) m.Evaluate.precision;
  Alcotest.(check (float 1e-9)) "recall" (2.0 /. 3.0) m.Evaluate.recall

let test_evaluate_universe_filter () =
  let set ints = Asn.Set.of_list (List.map asn ints) in
  let m =
    Evaluate.of_sets
      ~predicted:(set [ 1; 99 ])  (* 99 outside the universe *)
      ~truth:(set [ 1; 98 ])      (* 98 outside too *)
      ~universe:(set [ 1; 2 ])
  in
  Alcotest.(check int) "tp" 1 m.Evaluate.true_positives;
  Alcotest.(check int) "fp" 0 m.Evaluate.false_positives;
  Alcotest.(check (float 0.0)) "precision" 1.0 m.Evaluate.precision

let test_evaluate_degenerate () =
  let empty = Asn.Set.empty in
  let universe = Asn.Set.singleton (asn 1) in
  let m = Evaluate.of_sets ~predicted:empty ~truth:empty ~universe in
  Alcotest.(check (float 0.0)) "vacuous precision" 1.0 m.Evaluate.precision;
  Alcotest.(check (float 0.0)) "vacuous recall" 1.0 m.Evaluate.recall

let test_damping_set () =
  let categories = [ (asn 1, Categorize.C5); (asn 2, Categorize.C3); (asn 3, Categorize.C4) ] in
  let s = Evaluate.damping_set categories in
  Alcotest.(check (list int)) "4s and 5s" [ 1; 3 ]
    (List.map Asn.to_int (Asn.Set.elements s))

let suite =
  ( "inference",
    [
      Alcotest.test_case "runs both samplers" `Slow test_infer_runs_both_samplers;
      Alcotest.test_case "identifies the damper" `Slow test_infer_identifies_damper;
      Alcotest.test_case "MH and HMC agree" `Slow test_mh_hmc_agree;
      Alcotest.test_case "config validation" `Quick test_infer_config_validation;
      Alcotest.test_case "combined chain" `Slow test_combined_chain_length;
      Alcotest.test_case "jobs=4 bit-identical to jobs=1" `Slow
        test_jobs_bit_identical;
      Alcotest.test_case "single-chain RNG stream unchanged" `Slow
        test_single_chain_stream_unchanged;
      Alcotest.test_case "multi-chain runs" `Slow test_multi_chain_runs;
      Alcotest.test_case "R-hat across chains" `Slow test_rhat_diagnostic;
      Alcotest.test_case "parallel config validation" `Quick
        test_infer_rejects_bad_parallel_config;
      Alcotest.test_case "certainty definition" `Slow test_certainty;
      Alcotest.test_case "categorise by mean (Table 1)" `Quick test_categorize_mean;
      Alcotest.test_case "categorise by HDPI" `Quick test_categorize_hdpi;
      Alcotest.test_case "max flag" `Quick test_categorize_max_flag;
      Alcotest.test_case "shares" `Quick test_shares;
      Alcotest.test_case "assign flags damper" `Slow test_assign_flags_damper;
      Alcotest.test_case "pinpoint promotes inconsistent damper" `Slow
        test_pinpoint_promotes_inconsistent;
      Alcotest.test_case "pinpoint min support" `Slow test_pinpoint_min_support;
      Alcotest.test_case "pinpoint skips explained" `Slow
        test_pinpoint_skips_explained_paths;
      Alcotest.test_case "predictive scores" `Slow test_predictive_scores;
      Alcotest.test_case "predictive calibration bins" `Slow
        test_predictive_calibration_bins;
      Alcotest.test_case "path probability" `Quick test_path_probability_bounds;
      Alcotest.test_case "evaluate counts" `Quick test_evaluate_counts;
      Alcotest.test_case "evaluate universe filter" `Quick
        test_evaluate_universe_filter;
      Alcotest.test_case "evaluate degenerate" `Quick test_evaluate_degenerate;
      Alcotest.test_case "damping set" `Quick test_damping_set;
    ] )
