(* Sharded-vs-sequential equivalence of the per-prefix simulation driver.

   The bit-for-bit guarantee under test: with an empty fault plan and no
   impairments, [Sharded.run ~jobs] must reproduce the sequential run's
   feeds, stats, and (empty) fault log exactly, for any [jobs].  With link
   faults, the link/session timeline must be independent of [jobs]. *)

open Because_bgp
module Network = Because_sim.Network
module Script = Because_sim.Script
module Sharded = Because_sim.Sharded
module Rng = Because_stats.Rng

let asn = Asn.of_int

let nb ?(mrai = 0.0) n relationship =
  { Router.neighbor_asn = asn n; relationship; mrai }

(* A randomized ladder world: the origin (AS 65001) sells transit up a chain
   of providers; the last transit serves the monitored stub (AS 900).  Extra
   peer rungs between transits create path diversity; one damping transit
   exercises RFD timers.  Delays are pseudo-random per AS pair so unrelated
   cascades almost never collide in time — exactly the regime of
   World.delay. *)
let make_world rng =
  let n_transit = 2 + Rng.int rng 4 in
  let origin = 65001 and monitor = 900 in
  let transit i = i + 1 in
  let mrai_of i = if Rng.float rng < 0.3 then 15.0 +. float_of_int i else 0.0 in
  let damper = transit (1 + Rng.int rng (n_transit - 1)) in
  let scope_of i =
    if i = damper then Policy.All_neighbors else Policy.No_rfd
  in
  let configs =
    ({ Router.asn = asn origin;
       neighbors = [ nb (transit 0) Policy.Provider ];
       rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco }
     :: List.init n_transit (fun k ->
            let i = transit k in
            let neighbors =
              (if k = 0 then [ nb origin Policy.Customer ] else [])
              @ (if k > 0 then [ nb (transit (k - 1)) Policy.Customer ]
                 else [])
              @ (if k < n_transit - 1 then
                   [ nb ~mrai:(mrai_of i) (transit (k + 1)) Policy.Provider ]
                 else [])
              @ if k = n_transit - 1 then [ nb monitor Policy.Customer ]
                else []
            in
            { Router.asn = asn i; neighbors; rfd_scope = scope_of i;
              rfd_params = Rfd_params.cisco }))
    @ [ { Router.asn = asn monitor;
          neighbors = [ nb (transit (n_transit - 1)) Policy.Provider ];
          rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco } ]
  in
  let delay ~from_asn ~to_asn =
    let a = Asn.to_int from_asn and b = Asn.to_int to_asn in
    0.31 +. (float_of_int (((a * 73) + (b * 151)) mod 97) *. 0.0713)
  in
  (configs, delay, origin, n_transit, Asn.Set.singleton (asn monitor))

(* Per-prefix flap timelines on an integer grid, recorded prefix block by
   prefix block — the same discipline Site.install and the background
   scheduler follow, so cross-prefix root ties land in first-touch order. *)
let make_script rng ~origin =
  let script = Script.create () in
  let n_prefixes = 2 + Rng.int rng 6 in
  for k = 0 to n_prefixes - 1 do
    let p = Prefix.beacon ~site:(k / 4) ~slot:(k mod 4) in
    let t0 = float_of_int (Rng.int rng 4) in
    Script.announce script ~time:t0 ~origin:(asn origin) p;
    let flaps = 2 + Rng.int rng 8 in
    let gap = float_of_int (30 + (10 * Rng.int rng 5)) in
    for f = 1 to flaps do
      let time = t0 +. (float_of_int f *. gap) in
      if f mod 2 = 1 then Script.withdraw script ~time ~origin:(asn origin) p
      else Script.announce script ~time ~origin:(asn origin) p
    done
  done;
  script

let fresh_spill_dir () =
  let dir = Filename.temp_file "because-test-spill" ".dir" in
  Sys.remove dir;
  { Because_sim.Feed_log.dir; buffer = 3 }
(* A tiny buffer (3) forces many flush blocks per feed, exercising the
   multi-block replay path, not just the final flush. *)

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> go (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

let run ?fault_rng_seed ?shards ?feed_spill ~jobs ~with_flap
    (configs, delay, origin, n_transit, monitored) script =
  let script =
    if not with_flap then script
    else begin
      (* Flap the middle rung: prefix-agnostic, replayed into every shard. *)
      let s = Script.create () in
      List.iter
        (fun op ->
          match op with
          | Script.Announce { time; origin; prefix } ->
              Script.announce s ~time ~origin prefix
          | Script.Withdraw { time; origin; prefix } ->
              Script.withdraw s ~time ~origin prefix
          | _ -> ())
        (Script.ops script);
      let mid = max 1 (n_transit / 2) in
      Script.link_down s ~time:90.0 ~a:(asn mid) ~b:(asn (mid + 1));
      Script.link_up s ~time:210.0 ~a:(asn mid) ~b:(asn (mid + 1));
      Script.session_reset s ~time:400.0 ~a:(asn 1) ~b:(asn origin);
      s
    end
  in
  let fault_rng = Option.map Rng.create fault_rng_seed in
  Sharded.run ?fault_rng ?shards ?feed_spill ~jobs ~configs ~delay ~monitored
    ~until:2000.0 script

let check_feeds_equal what a b =
  let feeds_a = Sharded.feeds a and feeds_b = Sharded.feeds b in
  Alcotest.(check int) (what ^ ": vantage count") (List.length feeds_a)
    (List.length feeds_b);
  List.iter2
    (fun (asn_a, feed_a) (asn_b, feed_b) ->
      Alcotest.(check int) (what ^ ": vantage") (Asn.to_int asn_a)
        (Asn.to_int asn_b);
      Alcotest.(check int)
        (Printf.sprintf "%s: feed length of AS%d" what (Asn.to_int asn_a))
        (List.length feed_a) (List.length feed_b);
      List.iter2
        (fun (ta, ua) (tb, ub) ->
          if not (Float.equal ta tb && Update.equal ua ub) then
            Alcotest.failf "%s: feed mismatch at t=%.4f vs t=%.4f (%a vs %a)"
              what ta tb Update.pp ua Update.pp ub)
        feed_a feed_b)
    feeds_a feeds_b

let check_stats_equal what (a : Network.stats) (b : Network.stats) =
  let pairs =
    [ ("deliveries", a.deliveries, b.deliveries);
      ("announcements", a.announcements, b.announcements);
      ("withdrawals", a.withdrawals, b.withdrawals);
      ("lost", a.lost, b.lost);
      ("duplicated", a.duplicated, b.duplicated);
      ("session_drops", a.session_drops, b.session_drops);
      ("session_recoveries", a.session_recoveries, b.session_recoveries) ]
  in
  List.iter
    (fun (f, x, y) -> Alcotest.(check int) (what ^ ": " ^ f) x y)
    pairs

let link_layer log =
  List.filter
    (fun (_, ev) ->
      match ev with
      | Network.Fault_link_down _ | Network.Fault_link_up _
      | Network.Fault_session_reset _ | Network.Fault_session_down _
      | Network.Fault_session_up _ -> true
      | Network.Fault_update_lost _ | Network.Fault_update_duplicated _ ->
          false)
    log

let qcheck_fault_free_equivalence =
  QCheck.Test.make ~name:"sharded == sequential (fault-free, any jobs)"
    ~count:30 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let world = make_world rng in
      let _, _, origin, _, _ = world in
      let script = make_script rng ~origin in
      let sequential = run ~jobs:1 ~with_flap:false world script in
      List.iter
        (fun jobs ->
          let sharded = run ~jobs ~with_flap:false world script in
          let what = Printf.sprintf "seed %d jobs %d" seed jobs in
          check_feeds_equal what sequential sharded;
          check_stats_equal what sequential.Sharded.stats
            sharded.Sharded.stats;
          Alcotest.(check int)
            (what ^ ": fault log empty") 0
            (List.length sharded.Sharded.fault_log);
          Alcotest.(check int)
            (what ^ ": events conserved") sequential.Sharded.events
            sharded.Sharded.events)
        [ 2; 4; 32 ];
      true)

let qcheck_link_fault_timeline =
  QCheck.Test.make
    ~name:"link/session fault timeline independent of jobs" ~count:20
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 101) in
      let world = make_world rng in
      let _, _, origin, _, _ = world in
      let script = make_script rng ~origin in
      let sequential = run ~jobs:1 ~with_flap:true world script in
      List.iter
        (fun jobs ->
          let sharded = run ~jobs ~with_flap:true world script in
          let seq_links = link_layer sequential.Sharded.fault_log in
          let shd_links = link_layer sharded.Sharded.fault_log in
          Alcotest.(check int)
            (Printf.sprintf "seed %d jobs %d: link timeline length" seed jobs)
            (List.length seq_links) (List.length shd_links);
          List.iter2
            (fun (ta, ea) (tb, eb) ->
              if not (Float.equal ta tb && ea = eb) then
                Alcotest.failf "seed %d jobs %d: link event mismatch at %.3f"
                  seed jobs ta)
            seq_links shd_links)
        [ 2; 4 ];
      true)

(* S3: streamed (spilled) collector feeds must be bit-for-bit identical to
   in-memory feeds — same times, same updates, same order — across job
   counts and under fault plans.  Spilling happens strictly after the
   simulation's RNG draws, so it cannot perturb impairment outcomes at the
   same shard count; the comparison is spill-vs-memory at identical
   jobs/shards. *)
let qcheck_spill_equivalence =
  QCheck.Test.make ~name:"spilled feeds == in-memory feeds (incl. faults)"
    ~count:20 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 211) in
      let world = make_world rng in
      let _, _, origin, _, _ = world in
      let script = make_script rng ~origin in
      List.iter
        (fun (jobs, with_flap, fault_rng_seed) ->
          let mem = run ?fault_rng_seed ~jobs ~with_flap world script in
          let spill = fresh_spill_dir () in
          let disk =
            run ?fault_rng_seed ~feed_spill:spill ~jobs ~with_flap world
              script
          in
          let what =
            Printf.sprintf "seed %d jobs %d flap %b" seed jobs with_flap
          in
          check_feeds_equal what mem disk;
          check_stats_equal what mem.Sharded.stats disk.Sharded.stats;
          Alcotest.(check int)
            (what ^ ": events") mem.Sharded.events disk.Sharded.events;
          rm_rf spill.Because_sim.Feed_log.dir)
        [ (1, false, None); (4, false, None);
          (1, true, Some (seed + 77)); (4, true, Some (seed + 77)) ];
      true)

(* Shards beyond the pool's seats queue and run as domains free up; the
   fault-free outcome must not care. *)
let test_shards_exceed_jobs () =
  let rng = Rng.create 31 in
  let world = make_world rng in
  let _, _, origin, _, _ = world in
  let script = make_script rng ~origin in
  let sequential = run ~jobs:1 ~with_flap:false world script in
  let spill = fresh_spill_dir () in
  let queued =
    run ~jobs:2 ~shards:8 ~feed_spill:spill ~with_flap:false world script
  in
  Alcotest.(check int) "shards clamped to prefixes"
    (min 8 (Script.n_prefixes script))
    queued.Sharded.shards;
  check_feeds_equal "jobs=2 shards=8 spilled" sequential queued;
  check_stats_equal "jobs=2 shards=8 spilled" sequential.Sharded.stats
    queued.Sharded.stats;
  Alcotest.(check int) "events conserved" sequential.Sharded.events
    queued.Sharded.events;
  rm_rf spill.Because_sim.Feed_log.dir;
  Alcotest.check_raises "shards = 0 rejected"
    (Invalid_argument "Sharded.run: shards must be positive") (fun () ->
      ignore (run ~jobs:2 ~shards:0 ~with_flap:false world script))

(* Feed_log wire format: multi-block append/flush round-trips exactly;
   a missing file reads as the empty feed. *)
let test_feed_log_roundtrip () =
  let module Feed_log = Because_sim.Feed_log in
  let spill = fresh_spill_dir () in
  let dir = spill.Feed_log.dir in
  Feed_log.mkdir_p dir;
  let w = Feed_log.writer ~dir ~asn:(asn 64512) ~buffer:3 in
  let entries =
    List.init 10 (fun i ->
        let p = Prefix.beacon ~site:(i mod 3) ~slot:0 in
        let u =
          if i mod 4 = 3 then Update.Withdraw { prefix = p }
          else
            Update.Announce
              {
                prefix = p;
                as_path = [ asn (100 + i); asn 65001 ];
                aggregator =
                  (if i mod 2 = 0 then
                     Some
                       {
                         Update.aggregator_asn = asn 65001;
                         sent_at = 0.125 +. float_of_int i;
                         valid = i mod 4 = 0;
                       }
                   else None);
              }
        in
        (float_of_int i *. 1.5, u))
  in
  List.iter (fun (time, u) -> Feed_log.append w ~time u) entries;
  let path = Feed_log.flush w in
  let back = Feed_log.entries path in
  Alcotest.(check int) "entry count" (List.length entries) (List.length back);
  List.iter2
    (fun (ta, ua) (tb, ub) ->
      Alcotest.(check bool) "time exact" true (Float.equal ta tb);
      Alcotest.(check bool) "update equal" true (Update.equal ua ub))
    entries back;
  Alcotest.(check int) "missing file is empty feed" 0
    (List.length (Feed_log.entries (Filename.concat dir "feed-9999.log")));
  rm_rf dir

let test_shards_clamped () =
  let rng = Rng.create 7 in
  let world = make_world rng in
  let _, _, origin, _, _ = world in
  let script = make_script rng ~origin in
  let r = run ~jobs:64 ~with_flap:false world script in
  Alcotest.(check bool) "shards bounded by prefix count" true
    (r.Sharded.shards <= Script.n_prefixes script);
  let r1 = run ~jobs:1 ~with_flap:false world script in
  Alcotest.(check int) "single shard at jobs=1" 1 r1.Sharded.shards

let test_invalid_jobs () =
  let rng = Rng.create 8 in
  let world = make_world rng in
  let _, _, origin, _, _ = world in
  let script = make_script rng ~origin in
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Sharded.run: jobs must be positive") (fun () ->
      ignore (run ~jobs:0 ~with_flap:false world script))

let test_empty_script () =
  let configs, delay, _, _, monitored =
    make_world (Rng.create 9)
  in
  let script = Script.create () in
  let r =
    Sharded.run ~jobs:4 ~configs ~delay ~monitored ~until:100.0 script
  in
  Alcotest.(check int) "no events" 0 r.Sharded.events;
  Alcotest.(check int) "no faults" 0 (List.length r.Sharded.fault_log)

let test_script_ranks () =
  let script = Script.create () in
  let p1 = Prefix.of_string "10.0.0.0/24"
  and p2 = Prefix.of_string "10.0.1.0/24" in
  Script.announce script ~time:5.0 ~origin:(asn 1) p2;
  Script.withdraw script ~time:9.0 ~origin:(asn 1) p1;
  Script.announce script ~time:1.0 ~origin:(asn 1) p2;
  Alcotest.(check (option int)) "first touch wins" (Some 0)
    (Script.rank script p2);
  Alcotest.(check (option int)) "second prefix" (Some 1)
    (Script.rank script p1);
  Alcotest.(check int) "two prefixes" 2 (Script.n_prefixes script);
  Alcotest.(check bool) "no faults recorded" false (Script.has_faults script);
  Script.link_down script ~time:3.0 ~a:(asn 1) ~b:(asn 2);
  Alcotest.(check bool) "fault recorded" true (Script.has_faults script)

let suite =
  ( "sharded",
    [
      QCheck_alcotest.to_alcotest qcheck_fault_free_equivalence;
      QCheck_alcotest.to_alcotest qcheck_link_fault_timeline;
      QCheck_alcotest.to_alcotest qcheck_spill_equivalence;
      Alcotest.test_case "shards exceed jobs" `Quick test_shards_exceed_jobs;
      Alcotest.test_case "feed log roundtrip" `Quick test_feed_log_roundtrip;
      Alcotest.test_case "shards clamped" `Quick test_shards_clamped;
      Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
      Alcotest.test_case "empty script" `Quick test_empty_script;
      Alcotest.test_case "script ranks" `Quick test_script_ranks;
    ] )
