(* Asn, Prefix, Update. *)
open Because_bgp

let test_asn_basics () =
  let a = Asn.of_int 65001 in
  Alcotest.(check int) "roundtrip" 65001 (Asn.to_int a);
  Alcotest.(check string) "print" "AS65001" (Asn.to_string a);
  Alcotest.(check bool) "equal" true (Asn.equal a (Asn.of_int 65001));
  Alcotest.(check bool) "ordering" true (Asn.compare (Asn.of_int 1) (Asn.of_int 2) < 0)

let test_asn_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Asn.of_int: out of range")
    (fun () -> ignore (Asn.of_int (-1)))

let test_asn_set_map () =
  let s = Asn.Set.of_list [ Asn.of_int 3; Asn.of_int 1; Asn.of_int 3 ] in
  Alcotest.(check int) "set dedups" 2 (Asn.Set.cardinal s)

let test_prefix_parse_print () =
  let p = Prefix.of_string "192.0.2.0/24" in
  Alcotest.(check string) "roundtrip" "192.0.2.0/24" (Prefix.to_string p);
  Alcotest.(check int) "length" 24 (Prefix.length p)

let test_prefix_masking () =
  let p = Prefix.of_string "10.1.2.200/24" in
  Alcotest.(check string) "host bits cleared" "10.1.2.0/24" (Prefix.to_string p)

let test_prefix_invalid () =
  List.iter
    (fun s ->
      match Prefix.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed %s" s)
    [ "10.0.0.0"; "10.0.0/24"; "10.0.0.0/33"; "256.0.0.0/8"; "a.b.c.d/8" ]

let test_prefix_contains () =
  let outer = Prefix.of_string "10.0.0.0/8" in
  let inner = Prefix.of_string "10.5.0.0/16" in
  let other = Prefix.of_string "11.0.0.0/16" in
  Alcotest.(check bool) "contains" true (Prefix.contains outer inner);
  Alcotest.(check bool) "not contains" false (Prefix.contains outer other);
  Alcotest.(check bool) "not reverse" false (Prefix.contains inner outer);
  Alcotest.(check bool) "self" true (Prefix.contains outer outer)

let test_prefix_compare_unsigned () =
  (* 200.0.0.0 has the high bit set; unsigned comparison must still order it
     after 100.0.0.0. *)
  let low = Prefix.of_string "100.0.0.0/8" in
  let high = Prefix.of_string "200.0.0.0/8" in
  Alcotest.(check bool) "unsigned order" true (Prefix.compare low high < 0)

let test_beacon_allocator () =
  let p = Prefix.beacon ~site:3 ~slot:2 in
  Alcotest.(check string) "layout" "10.3.2.0/24" (Prefix.to_string p);
  Alcotest.(check bool) "distinct sites" false
    (Prefix.equal (Prefix.beacon ~site:1 ~slot:0) (Prefix.beacon ~site:2 ~slot:0))

let asn i = Asn.of_int i

let announce ?agg prefix path =
  Update.Announce
    { prefix = Prefix.of_string prefix; as_path = List.map asn path;
      aggregator = agg }

let test_update_prepend () =
  let u = announce "10.0.0.0/24" [ 2; 3 ] in
  match Update.prepend (asn 1) u with
  | Update.Announce { as_path; _ } ->
      Alcotest.(check (list int)) "prepended" [ 1; 2; 3 ]
        (List.map Asn.to_int as_path)
  | Update.Withdraw _ -> Alcotest.fail "became a withdrawal"

let test_update_prepend_withdraw () =
  let w = Update.Withdraw { prefix = Prefix.of_string "10.0.0.0/24" } in
  Alcotest.(check bool) "unchanged" true (Update.equal w (Update.prepend (asn 9) w))

let test_path_contains () =
  let u = announce "10.0.0.0/24" [ 2; 3; 5 ] in
  Alcotest.(check bool) "member" true (Update.path_contains (asn 3) u);
  Alcotest.(check bool) "non-member" false (Update.path_contains (asn 4) u)

let test_update_equal_aggregator () =
  let agg t = { Update.aggregator_asn = asn 9; sent_at = t; valid = true } in
  let a = announce ~agg:(agg 1.0) "10.0.0.0/24" [ 2 ] in
  let b = announce ~agg:(agg 1.0) "10.0.0.0/24" [ 2 ] in
  let c = announce ~agg:(agg 2.0) "10.0.0.0/24" [ 2 ] in
  Alcotest.(check bool) "same timestamp equal" true (Update.equal a b);
  Alcotest.(check bool) "fresh timestamp differs" false (Update.equal a c)

let qcheck_prefix_roundtrip =
  QCheck.Test.make ~name:"prefix string roundtrip" ~count:300
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 0 32))
    (fun (net, len) ->
      let p = Prefix.make (Int32.of_int (net * 256)) len in
      Prefix.equal p (Prefix.of_string (Prefix.to_string p)))

let suite =
  ( "bgp-types",
    [
      Alcotest.test_case "asn basics" `Quick test_asn_basics;
      Alcotest.test_case "asn invalid" `Quick test_asn_invalid;
      Alcotest.test_case "asn containers" `Quick test_asn_set_map;
      Alcotest.test_case "prefix parse/print" `Quick test_prefix_parse_print;
      Alcotest.test_case "prefix masking" `Quick test_prefix_masking;
      Alcotest.test_case "prefix invalid" `Quick test_prefix_invalid;
      Alcotest.test_case "prefix contains" `Quick test_prefix_contains;
      Alcotest.test_case "prefix unsigned compare" `Quick
        test_prefix_compare_unsigned;
      Alcotest.test_case "beacon allocator" `Quick test_beacon_allocator;
      Alcotest.test_case "update prepend" `Quick test_update_prepend;
      Alcotest.test_case "prepend withdraw" `Quick test_update_prepend_withdraw;
      Alcotest.test_case "path contains" `Quick test_path_contains;
      Alcotest.test_case "update equality vs aggregator" `Quick
        test_update_equal_aggregator;
      QCheck_alcotest.to_alcotest qcheck_prefix_roundtrip;
    ] )
