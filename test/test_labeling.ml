open Because_bgp
module Clean = Because_labeling.Clean
module Signature = Because_labeling.Signature
module Label = Because_labeling.Label
module Dump = Because_collector.Dump
module Vantage = Because_collector.Vantage

let asn = Asn.of_int
let path ints = List.map asn ints
let prefix = Prefix.of_string "10.0.1.0/24"

let test_remove_prepending () =
  Alcotest.(check (list int)) "collapsed" [ 1; 2; 3 ]
    (List.map Asn.to_int (Clean.remove_prepending (path [ 1; 1; 1; 2; 3; 3 ])));
  Alcotest.(check (list int)) "untouched" [ 1; 2 ]
    (List.map Asn.to_int (Clean.remove_prepending (path [ 1; 2 ])));
  Alcotest.(check (list int)) "empty" []
    (List.map Asn.to_int (Clean.remove_prepending []))

let test_has_loop () =
  Alcotest.(check bool) "clean" false (Clean.has_loop (path [ 1; 2; 3 ]));
  Alcotest.(check bool) "loop" true (Clean.has_loop (path [ 1; 2; 1 ]));
  Alcotest.(check bool) "prepending is not a loop" false
    (Clean.has_loop (path [ 1; 1; 2 ]))

let test_clean () =
  Alcotest.(check (option (list int))) "ok" (Some [ 1; 2 ])
    (Option.map (List.map Asn.to_int) (Clean.clean (path [ 1; 1; 2 ])));
  Alcotest.(check (option (list int))) "loop dropped" None
    (Option.map (List.map Asn.to_int) (Clean.clean (path [ 1; 2; 1 ])))

let agg ?(valid = true) t =
  Some { Update.aggregator_asn = asn 65001; sent_at = t; valid }

let announce ?valid ~sent p =
  Update.Announce { prefix; as_path = path p; aggregator = agg ?valid sent }

let withdraw = Update.Withdraw { prefix }

(* A Burst [1000, 2000], Break until 6000. *)
let window = (1000.0, 2000.0, 6000.0)

let test_signature_clean_pair () =
  (* Updates flow normally through the burst, nothing in the break. *)
  let times =
    List.concat_map
      (fun k ->
        let t = 1000.0 +. (200.0 *. float_of_int k) in
        [ (t, withdraw); (t +. 100.0, announce ~sent:(t +. 95.0) [ 9; 65001 ]) ])
      [ 0; 1; 2; 3; 4 ]
  in
  let pair = Signature.analyse_pair ~times ~window () in
  Alcotest.(check bool) "not damped" false pair.Signature.damped;
  Alcotest.(check int) "updates counted" 10 pair.Signature.burst_updates;
  Alcotest.(check (option (list int))) "dominant path" (Some [ 9; 65001 ])
    (Option.map (List.map Asn.to_int) pair.Signature.burst_dominant_path)

let test_signature_damped_pair () =
  let times =
    [
      (1000.0, withdraw);
      (1100.0, announce ~sent:1095.0 [ 9; 7; 65001 ]);
      (1200.0, withdraw);
      (* silence — suppressed — then the held-back final announcement
         (sent at burst end 2000) arrives mid-break: *)
      (3500.0, announce ~sent:2000.0 [ 9; 7; 65001 ]);
    ]
  in
  let pair = Signature.analyse_pair ~times ~window () in
  Alcotest.(check bool) "damped" true pair.Signature.damped;
  Alcotest.(check (option (float 1e-9))) "r-delta = hold time" (Some 1500.0)
    pair.Signature.r_delta;
  Alcotest.(check (option (list int))) "attributed path" (Some [ 9; 7; 65001 ])
    (Option.map (List.map Asn.to_int) pair.Signature.readvertisement_path)

let test_signature_normal_delay_not_damped () =
  (* A break announcement with a small send→arrival delay is not damping. *)
  let times = [ (2140.0, announce ~sent:2000.0 [ 9; 65001 ]) ] in
  let pair = Signature.analyse_pair ~times ~window () in
  Alcotest.(check bool) "below threshold" false pair.Signature.damped

let test_signature_invalid_aggregator_ignored () =
  let times = [ (3500.0, announce ~valid:false ~sent:2000.0 [ 9; 65001 ]) ] in
  let pair = Signature.analyse_pair ~times ~window () in
  Alcotest.(check bool) "cannot qualify without timestamp" false
    pair.Signature.damped

let test_signature_converged_path () =
  (* First qualifying announcement carries a transient path; a later break
     announcement settles on the damped path. *)
  let times =
    [
      (3500.0, announce ~sent:2000.0 [ 9; 8; 65001 ]);
      (3560.0, announce ~sent:2000.0 [ 9; 7; 65001 ]);
    ]
  in
  let pair = Signature.analyse_pair ~times ~window () in
  Alcotest.(check bool) "damped" true pair.Signature.damped;
  Alcotest.(check (option (float 1e-9))) "timing from first" (Some 1500.0)
    pair.Signature.r_delta;
  Alcotest.(check (option (list int))) "path from converged" (Some [ 9; 7; 65001 ])
    (Option.map (List.map Asn.to_int) pair.Signature.readvertisement_path)

let vp = Vantage.make ~vp_id:0 ~host_asn:(asn 9) ~project:Because_collector.Project.Isolario

let record t update =
  { Dump.received_at = t; export_at = t; vp; update }

let test_label_vp_prefix_damped () =
  (* Two windows, both damped on path [9;7;65001]. *)
  let records =
    [
      record 1100.0 (announce ~sent:1095.0 [ 9; 7; 65001 ]);
      record 1200.0 withdraw;
      record 3500.0 (announce ~sent:2000.0 [ 9; 7; 65001 ]);
      record 7100.0 (announce ~sent:7095.0 [ 9; 7; 65001 ]);
      record 7200.0 withdraw;
      record 9500.0 (announce ~sent:8000.0 [ 9; 7; 65001 ]);
    ]
  in
  let windows = [ (1000.0, 2000.0, 6000.0); (7000.0, 8000.0, 12000.0) ] in
  match Label.label_vp_prefix ~records ~windows () with
  | [ lp ] ->
      Alcotest.(check bool) "rfd" true lp.Label.rfd;
      Alcotest.(check int) "matched" 2 lp.Label.matched_pairs;
      Alcotest.(check int) "total" 2 lp.Label.total_pairs;
      Alcotest.(check (list int)) "path" [ 9; 7; 65001 ]
        (List.map Asn.to_int lp.Label.path);
      Alcotest.(check (option (float 1e-9))) "mean r-delta" (Some 1500.0)
        lp.Label.mean_r_delta
  | l -> Alcotest.failf "expected one labeled path, got %d" (List.length l)

let test_label_threshold () =
  (* One damped window out of two: below the 90%% rule. *)
  let records =
    [
      record 1100.0 (announce ~sent:1095.0 [ 9; 65001 ]);
      record 3500.0 (announce ~sent:2000.0 [ 9; 65001 ]);
      record 7100.0 (announce ~sent:7095.0 [ 9; 65001 ]);
      record 7900.0 (announce ~sent:7895.0 [ 9; 65001 ]);
    ]
  in
  let windows = [ (1000.0, 2000.0, 6000.0); (7000.0, 8000.0, 12000.0) ] in
  (match Label.label_vp_prefix ~records ~windows () with
  | [ lp ] ->
      Alcotest.(check bool) "mixed evidence below 90%" false lp.Label.rfd;
      Alcotest.(check int) "matched" 1 lp.Label.matched_pairs;
      Alcotest.(check int) "total" 2 lp.Label.total_pairs
  | l -> Alcotest.failf "expected one labeled path, got %d" (List.length l));
  (* With a lax threshold the same evidence labels RFD. *)
  match Label.label_vp_prefix ~match_threshold:0.5 ~records ~windows () with
  | [ lp ] -> Alcotest.(check bool) "lax threshold" true lp.Label.rfd
  | _ -> Alcotest.fail "expected one labeled path"

let test_label_path_split () =
  (* Damped evidence on the primary, clean evidence on the alternative:
     two labeled paths with opposite labels. *)
  let records =
    [
      record 1100.0 (announce ~sent:1095.0 [ 9; 7; 65001 ]);
      (* failover to the alternative which flaps through the burst *)
      record 1300.0 (announce ~sent:1295.0 [ 9; 8; 65001 ]);
      record 1500.0 (announce ~sent:1495.0 [ 9; 8; 65001 ]);
      record 1900.0 (announce ~sent:1895.0 [ 9; 8; 65001 ]);
      (* the release: primary path returns, long after its send time *)
      record 3500.0 (announce ~sent:2000.0 [ 9; 7; 65001 ]);
    ]
  in
  let windows = [ (1000.0, 2000.0, 6000.0) ] in
  let labeled = Label.label_vp_prefix ~records ~windows () in
  Alcotest.(check int) "two paths" 2 (List.length labeled);
  let damped = List.find (fun lp -> lp.Label.rfd) labeled in
  Alcotest.(check (list int)) "damped is the re-advertised path" [ 9; 7; 65001 ]
    (List.map Asn.to_int damped.Label.path);
  Alcotest.(check (list (list int))) "alternatives recorded" [ [ 9; 8; 65001 ] ]
    (List.map (List.map Asn.to_int) damped.Label.alternatives)

let test_label_all_groups () =
  let vp2 = Vantage.make ~vp_id:1 ~host_asn:(asn 10) ~project:Because_collector.Project.Ris in
  let other_prefix = Prefix.of_string "10.0.2.0/24" in
  let records =
    [
      record 1100.0 (announce ~sent:1095.0 [ 9; 65001 ]);
      { Dump.received_at = 1100.0; export_at = 1100.0; vp = vp2;
        update = announce ~sent:1095.0 [ 10; 65001 ] };
      (* a prefix with no windows is skipped *)
      record 1100.0
        (Update.Announce
           { prefix = other_prefix; as_path = path [ 9; 65001 ];
             aggregator = agg 1095.0 });
    ]
  in
  let windows_of p = if Prefix.equal p prefix then [ window ] else [] in
  let labeled = Label.label_all ~records ~windows_of () in
  Alcotest.(check int) "one per (vp,prefix) with windows" 2
    (List.length labeled);
  let obs = Label.observations labeled in
  Alcotest.(check int) "observations" 2 (List.length obs)

let suite =
  ( "labeling",
    [
      Alcotest.test_case "remove prepending" `Quick test_remove_prepending;
      Alcotest.test_case "has loop" `Quick test_has_loop;
      Alcotest.test_case "clean" `Quick test_clean;
      Alcotest.test_case "clean pair" `Quick test_signature_clean_pair;
      Alcotest.test_case "damped pair" `Quick test_signature_damped_pair;
      Alcotest.test_case "normal delay not damped" `Quick
        test_signature_normal_delay_not_damped;
      Alcotest.test_case "invalid aggregator ignored" `Quick
        test_signature_invalid_aggregator_ignored;
      Alcotest.test_case "converged path attribution" `Quick
        test_signature_converged_path;
      Alcotest.test_case "label damped stream" `Quick test_label_vp_prefix_damped;
      Alcotest.test_case "90% threshold" `Quick test_label_threshold;
      Alcotest.test_case "path evidence split" `Quick test_label_path_split;
      Alcotest.test_case "label_all grouping" `Quick test_label_all_groups;
    ] )
