module Rng = Because_stats.Rng
module Dist = Because_stats.Dist
module Summary = Because_stats.Summary
module Target = Because_mcmc.Target
module Chain = Because_mcmc.Chain
module Metropolis = Because_mcmc.Metropolis
module Hmc = Because_mcmc.Hmc
module Gibbs = Because_mcmc.Gibbs
module Diagnostics = Because_mcmc.Diagnostics

let close msg expected actual tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.4f, got %.4f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < tol)

(* A 2-d Gaussian target on ℝ² with means (1, −2) and σ = (1, 0.5). *)
let gaussian_target =
  let mu = [| 1.0; -2.0 |] and sigma = [| 1.0; 0.5 |] in
  Target.create ~dim:2 ~support:Target.Unbounded
    ~grad:(fun p ->
      Array.init 2 (fun i -> -.(p.(i) -. mu.(i)) /. (sigma.(i) *. sigma.(i))))
    (fun p ->
      let acc = ref 0.0 in
      for i = 0 to 1 do
        let z = (p.(i) -. mu.(i)) /. sigma.(i) in
        acc := !acc -. (0.5 *. z *. z)
      done;
      !acc)

(* Independent Beta(3,2) × Beta(2,5) target on the unit box. *)
let beta_target =
  let a = [| 3.0; 2.0 |] and b = [| 2.0; 5.0 |] in
  Target.create ~dim:2 ~support:Target.Unit_interval
    ~grad:(fun p ->
      Array.init 2 (fun i ->
          let x = Float.max 1e-9 (Float.min (1.0 -. 1e-9) p.(i)) in
          ((a.(i) -. 1.0) /. x) -. ((b.(i) -. 1.0) /. (1.0 -. x))))
    (fun p ->
      let acc = ref 0.0 in
      for i = 0 to 1 do
        acc := !acc +. Dist.beta_log_pdf ~a:a.(i) ~b:b.(i) p.(i)
      done;
      !acc)

let test_gradient_check () =
  match
    Target.check_gradient gaussian_target ~at:[| 0.3; -1.0 |] ~eps:1e-5
      ~tol:1e-4
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_gradient_check_detects_error () =
  let bad =
    Target.create ~dim:1 ~support:Target.Unbounded
      ~grad:(fun _ -> [| 42.0 |])
      (fun p -> -.(p.(0) *. p.(0)))
  in
  match Target.check_gradient bad ~at:[| 1.0 |] ~eps:1e-5 ~tol:1e-4 with
  | Ok () -> Alcotest.fail "bogus gradient accepted"
  | Error _ -> ()

let test_with_coordinate () =
  let p = [| 1.0; 2.0 |] in
  let p' = Target.with_coordinate p 1 9.0 in
  Alcotest.(check (float 0.0)) "updated" 9.0 p'.(1);
  Alcotest.(check (float 0.0)) "original intact" 2.0 p.(1)

let run_and_check_moments name chain =
  let m0 = Chain.marginal chain 0 and m1 = Chain.marginal chain 1 in
  close (name ^ " mean0") 1.0 (Summary.mean m0) 0.15;
  close (name ^ " mean1") (-2.0) (Summary.mean m1) 0.1;
  close (name ^ " sd0") 1.0 (Summary.std m0) 0.15;
  close (name ^ " sd1") 0.5 (Summary.std m1) 0.1

let test_mh_single_site_gaussian () =
  let rng = Rng.create 101 in
  let r =
    Metropolis.run_single_site ~rng ~n_samples:4000 ~burn_in:1000
      gaussian_target
  in
  run_and_check_moments "mh" r.Metropolis.chain;
  Alcotest.(check bool) "acceptance sane" true
    (r.Metropolis.acceptance > 0.15 && r.Metropolis.acceptance < 0.85)

let test_mh_vector_gaussian () =
  let rng = Rng.create 103 in
  let r =
    Metropolis.run_vector ~rng ~n_samples:8000 ~burn_in:2000 gaussian_target
  in
  run_and_check_moments "mh-vector" r.Metropolis.chain

let test_hmc_gaussian () =
  let rng = Rng.create 107 in
  let r =
    Hmc.run ~rng ~n_samples:3000 ~burn_in:800 ~leapfrog_steps:10
      gaussian_target
  in
  run_and_check_moments "hmc" r.Hmc.chain;
  Alcotest.(check bool) "acceptance high" true (r.Hmc.acceptance > 0.5)

let test_mh_beta () =
  let rng = Rng.create 109 in
  let r =
    Metropolis.run_single_site ~rng ~n_samples:4000 ~burn_in:1000 beta_target
  in
  let m0 = Chain.marginal r.Metropolis.chain 0 in
  let m1 = Chain.marginal r.Metropolis.chain 1 in
  close "beta mean0 = 3/5" 0.6 (Summary.mean m0) 0.03;
  close "beta mean1 = 2/7" (2.0 /. 7.0) (Summary.mean m1) 0.03;
  Alcotest.(check bool) "support respected" true
    (Array.for_all (fun x -> x >= 0.0 && x <= 1.0) m0)

let test_hmc_beta () =
  let rng = Rng.create 113 in
  let r =
    Hmc.run ~rng ~n_samples:3000 ~burn_in:800 ~leapfrog_steps:10 beta_target
  in
  let m0 = Chain.marginal r.Hmc.chain 0 in
  let m1 = Chain.marginal r.Hmc.chain 1 in
  close "hmc beta mean0" 0.6 (Summary.mean m0) 0.03;
  close "hmc beta mean1" (2.0 /. 7.0) (Summary.mean m1) 0.03

let test_gibbs_beta () =
  let rng = Rng.create 127 in
  let r = Gibbs.run ~rng ~n_samples:3000 ~burn_in:300 beta_target in
  let m0 = Chain.marginal r.Gibbs.chain 0 in
  let m1 = Chain.marginal r.Gibbs.chain 1 in
  close "gibbs beta mean0" 0.6 (Summary.mean m0) 0.03;
  close "gibbs beta mean1" (2.0 /. 7.0) (Summary.mean m1) 0.03;
  (* Gibbs never rejects, but acceptance now reports mobility: the fraction
     of sweeps where some coordinate changed grid cell.  A well-mixing
     beta-target chain moves nearly every sweep. *)
  Alcotest.(check bool)
    "mobility in (0, 1]" true
    (r.Gibbs.acceptance > 0.0 && r.Gibbs.acceptance <= 1.0);
  Alcotest.(check bool) "support respected" true
    (Array.for_all (fun x -> x > 0.0 && x < 1.0) m0)

let test_gibbs_rejects_unbounded () =
  let rng = Rng.create 1 in
  Alcotest.(check bool) "unbounded rejected" true
    (try
       ignore (Gibbs.run ~rng ~n_samples:5 ~burn_in:1 gaussian_target);
       false
     with Invalid_argument _ -> true)

let test_hmc_requires_gradient () =
  let no_grad =
    Target.create ~dim:1 ~support:Target.Unbounded (fun p ->
        -.(p.(0) *. p.(0)))
  in
  let rng = Rng.create 1 in
  Alcotest.check_raises "no gradient"
    (Invalid_argument "Hmc.run: target has no gradient") (fun () ->
      ignore (Hmc.run ~rng ~n_samples:10 ~burn_in:5 no_grad))

let test_sigmoid_logit () =
  close "sigmoid 0" 0.5 (Hmc.sigmoid 0.0) 1e-12;
  close "roundtrip" 0.3 (Hmc.sigmoid (Hmc.logit 0.3)) 1e-9;
  close "logit 0.5" 0.0 (Hmc.logit 0.5) 1e-9;
  Alcotest.(check bool) "extreme stays finite" true
    (Float.is_finite (Hmc.logit 1.0) && Float.is_finite (Hmc.logit 0.0))

let test_reflect_unit () =
  close "inside" 0.4 (Metropolis.reflect_unit 0.4) 1e-12;
  close "below" 0.2 (Metropolis.reflect_unit (-0.2)) 1e-12;
  close "above" 0.7 (Metropolis.reflect_unit 1.3) 1e-12;
  close "double wrap" 0.5 (Metropolis.reflect_unit 2.5) 1e-12

let qcheck_reflect_in_unit =
  QCheck.Test.make ~name:"reflect_unit lands in [0,1]" ~count:500
    QCheck.(float_range (-50.0) 50.0)
    (fun x ->
      let v = Metropolis.reflect_unit x in
      v >= 0.0 && v <= 1.0)

(* Chain utilities *)

let test_chain_ops () =
  let chain = Chain.of_samples [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  Alcotest.(check int) "length" 3 (Chain.length chain);
  Alcotest.(check int) "dim" 2 (Chain.dim chain);
  Alcotest.(check (array (float 0.0))) "marginal" [| 2.0; 4.0; 6.0 |]
    (Chain.marginal chain 1);
  let thinned = Chain.thin chain 2 in
  Alcotest.(check int) "thinned" 2 (Chain.length thinned);
  let doubled = Chain.append chain chain in
  Alcotest.(check int) "appended" 6 (Chain.length doubled);
  let sums = Chain.map_draws chain (fun d -> d.(0) +. d.(1)) in
  Alcotest.(check (array (float 0.0))) "map_draws" [| 3.0; 7.0; 11.0 |] sums

let test_chain_concat () =
  let a = Chain.of_samples [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Chain.of_samples [| [| 5.0; 6.0 |] |] in
  let c = Chain.concat [ a; b; a ] in
  Alcotest.(check int) "length" 5 (Chain.length c);
  Alcotest.(check (array (float 0.0))) "order preserved"
    [| 1.0; 3.0; 5.0; 1.0; 3.0 |]
    (Chain.marginal c 0);
  (match Chain.concat [] with
  | _ -> Alcotest.fail "empty list accepted"
  | exception Invalid_argument _ -> ());
  let odd = Chain.of_samples [| [| 1.0 |] |] in
  match Chain.concat [ a; odd ] with
  | _ -> Alcotest.fail "dimension mismatch accepted"
  | exception Invalid_argument _ -> ()

let qcheck_append_vs_concat =
  (* append folded left over the pieces must equal concat of the pieces,
     draw for draw — concat is the one-allocation fast path. *)
  QCheck.Test.make ~name:"Chain fold-append equals concat" ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 1 6 >>= fun dim ->
         list_size (int_range 1 5)
           (list_size (int_range 1 12)
              (array_repeat dim (float_range (-10.0) 10.0))
           >|= Array.of_list)))
    (fun matrices ->
      let chains = List.map Chain.of_samples matrices in
      let folded =
        List.fold_left Chain.append (List.hd chains) (List.tl chains)
      in
      let concatenated = Chain.concat chains in
      Chain.equal folded concatenated)

let test_thin_guard () =
  let chain = Chain.of_samples [| [| 1.0 |]; [| 2.0 |] |] in
  List.iter
    (fun k ->
      match Chain.thin chain k with
      | _ -> Alcotest.failf "thin accepted %d" k
      | exception Invalid_argument _ -> ())
    [ 0; -1; min_int ]

(* Random n×dim matrix generator shared by the flat-storage equivalence
   properties below. *)
let matrix_gen =
  QCheck.make
    QCheck.Gen.(
      int_range 1 6 >>= fun dim ->
      list_size (int_range 1 20) (array_repeat dim (float_range (-10.0) 10.0))
      >|= Array.of_list)

(* Flat row-major storage must be observationally identical to the
   reference row-per-draw representation: every accessor is checked
   against the raw matrix it was built from. *)
let qcheck_flat_matches_reference =
  QCheck.Test.make ~name:"flat chain equals row-matrix reference" ~count:200
    matrix_gen
    (fun m ->
      let chain = Chain.of_samples m in
      let n = Array.length m and dim = Array.length m.(0) in
      Chain.length chain = n
      && Chain.dim chain = dim
      && Array.for_all Fun.id
           (Array.init n (fun k ->
                Chain.get chain k = m.(k)
                && Array.for_all Fun.id
                     (Array.init dim (fun i ->
                          Chain.value chain k i = m.(k).(i)))))
      && Array.for_all Fun.id
           (Array.init dim (fun i ->
                Chain.marginal chain i = Array.map (fun row -> row.(i)) m)))

let qcheck_flat_thin_concat =
  QCheck.Test.make ~name:"flat thin/concat/equal match the reference"
    ~count:200
    QCheck.(pair matrix_gen (int_range 1 8))
    (fun (m, k) ->
      let chain = Chain.of_samples m in
      let thinned = Chain.thin chain k in
      let expected_rows =
        Array.of_list
          (List.filteri
             (fun j _ -> j mod k = 0)
             (Array.to_list (Array.map Array.copy m)))
      in
      Chain.equal thinned (Chain.of_samples expected_rows)
      && Chain.equal (Chain.concat [ chain; thinned ])
           (Chain.of_samples (Array.append m expected_rows))
      && Chain.equal chain (Chain.of_samples m)
      &&
      if k = 1 then Chain.equal chain thinned
      else Chain.length chain <= k || not (Chain.equal chain thinned))

let test_chain_storage_isolation () =
  (* of_samples copies its input; get returns fresh rows; thin owns its
     storage.  The historical row-sharing representation leaked mutations
     across all three boundaries. *)
  let m = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let chain = Chain.of_samples m in
  m.(0).(0) <- 99.0;
  Alcotest.(check (float 0.0)) "input mutation invisible" 1.0
    (Chain.value chain 0 0);
  let row = Chain.get chain 1 in
  row.(0) <- -7.0;
  Alcotest.(check (float 0.0)) "get row is a copy" 3.0 (Chain.value chain 1 0);
  let thinned = Chain.thin chain 2 in
  let trow = Chain.get thinned 0 in
  trow.(1) <- -8.0;
  Alcotest.(check (float 0.0)) "thin does not alias" 2.0
    (Chain.value chain 0 1);
  Alcotest.(check (float 0.0)) "thin row copy" 2.0 (Chain.value thinned 0 1)

let test_chain_of_flat () =
  let chain = Chain.of_flat ~dim:2 [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "length" 2 (Chain.length chain);
  Alcotest.(check (array (float 0.0))) "row 1" [| 3.0; 4.0 |]
    (Chain.get chain 1);
  List.iter
    (fun (name, f) ->
      match f () with
      | (_ : Chain.t) -> Alcotest.failf "%s accepted" name
      | exception Invalid_argument _ -> ())
    [
      ("empty", fun () -> Chain.of_flat ~dim:2 [||]);
      ("ragged length", fun () -> Chain.of_flat ~dim:2 [| 1.0; 2.0; 3.0 |]);
      ("dim 0", fun () -> Chain.of_flat ~dim:0 [| 1.0 |]);
    ]

let test_chain_builder () =
  let b = Chain.Builder.create ~dim:2 ~capacity:3 in
  Alcotest.(check int) "empty count" 0 (Chain.Builder.count b);
  Alcotest.(check int) "dim" 2 (Chain.Builder.dim b);
  Chain.Builder.push b [| 1.0; 2.0 |];
  Chain.Builder.push b [| 3.0; 4.0 |];
  Alcotest.(check (array (float 0.0))) "flat prefix" [| 1.0; 2.0; 3.0; 4.0 |]
    (Chain.Builder.flat_prefix b);
  (match Chain.Builder.push b [| 5.0 |] with
  | () -> Alcotest.fail "dim mismatch accepted"
  | exception Invalid_argument _ -> ());
  let chain = Chain.Builder.to_chain b in
  Alcotest.(check int) "partial chain length" 2 (Chain.length chain);
  (* Sealed: the builder is unusable after to_chain. *)
  (match Chain.Builder.push b [| 5.0; 6.0 |] with
  | () -> Alcotest.fail "push after to_chain accepted"
  | exception Invalid_argument _ -> ());
  (match Chain.Builder.to_chain b with
  | (_ : Chain.t) -> Alcotest.fail "second to_chain accepted"
  | exception Invalid_argument _ -> ());
  (* load_flat replaces content and validates shape. *)
  let b2 = Chain.Builder.create ~dim:2 ~capacity:2 in
  Chain.Builder.push b2 [| 9.0; 9.0 |];
  Chain.Builder.load_flat b2 [| 1.0; 2.0; 3.0; 4.0 |];
  Alcotest.(check int) "loaded count" 2 (Chain.Builder.count b2);
  (match Chain.Builder.load_flat b2 [| 1.0; 2.0; 3.0 |] with
  | () -> Alcotest.fail "ragged load accepted"
  | exception Invalid_argument _ -> ());
  (match Chain.Builder.load_flat b2 (Array.make 6 0.0) with
  | () -> Alcotest.fail "over-capacity load accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "full builder round-trips" true
    (Chain.equal
       (Chain.Builder.to_chain b2)
       (Chain.of_samples [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]));
  match Chain.Builder.create ~dim:0 ~capacity:1 with
  | (_ : Chain.Builder.t) -> Alcotest.fail "dim=0 accepted"
  | exception Invalid_argument _ -> ()

(* The coordinate-wise diagnostics over flat chains must agree exactly with
   the historical array-marginal path — Infer's convergence verdicts may
   not shift with the storage change. *)
let test_rhat_coord_matches_arrays () =
  let rng = Rng.create 811 in
  let sample_matrix () =
    Array.init 200 (fun _ ->
        Array.init 3 (fun _ -> Dist.normal rng ~mu:0.5 ~sigma:0.2))
  in
  let m1 = sample_matrix () and m2 = sample_matrix () in
  let c1 = Chain.of_samples m1 and c2 = Chain.of_samples m2 in
  for i = 0 to 2 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "r_hat coord %d" i)
      (Diagnostics.r_hat
         [| Chain.marginal c1 i; Chain.marginal c2 i |])
      (Diagnostics.r_hat_coord [| c1; c2 |] i);
    Alcotest.(check (float 0.0))
      (Printf.sprintf "split r_hat coord %d" i)
      (Diagnostics.split_r_hat (Chain.marginal c1 i))
      (Diagnostics.split_r_hat_coord c1 i)
  done

(* The stateful cache protocol: a generic cache built by [Target.cache_at]
   must drive the single-site sampler to the exact same chain as the
   stateless path — the protocol changes bookkeeping, not arithmetic. *)
let test_cache_protocol_preserves_sampler () =
  let cached_beta =
    { beta_target with Target.make_cache = Some (Target.cache_at beta_target) }
  in
  let sample target =
    Metropolis.run_single_site ~rng:(Rng.create 211) ~n_samples:500
      ~burn_in:200 target
  in
  let plain = sample beta_target and cached = sample cached_beta in
  Alcotest.(check (float 0.0)) "same acceptance"
    plain.Metropolis.acceptance cached.Metropolis.acceptance;
  for k = 0 to Chain.length plain.Metropolis.chain - 1 do
    Alcotest.(check (array (float 0.0)))
      (Printf.sprintf "draw %d" k)
      (Chain.get plain.Metropolis.chain k)
      (Chain.get cached.Metropolis.chain k)
  done

let test_cache_at_tracks_commits () =
  let c = Target.cache_at gaussian_target [| 0.0; 0.0 |] in
  (* delta of moving coordinate 0 to 1.0 from (0,0): −½(1−1)² + ½(0−1)² … for
     the gaussian target with mu=(1,−2), sigma=(1,0.5):
     lp(1,0) − lp(0,0) = 0 − (−0.5) + const-in-other-coord = 0.5 *)
  Alcotest.(check (float 1e-9)) "first delta" 0.5
    (c.Target.cached_delta 0 1.0);
  c.Target.cached_commit 0 1.0;
  (* from (1,0): moving coordinate 0 back to 0 costs −0.5 *)
  Alcotest.(check (float 1e-9)) "post-commit delta" (-0.5)
    (c.Target.cached_delta 0 0.0);
  (* rejections are free: the uncommitted probe above left the state at (1,0) *)
  Alcotest.(check (float 1e-9)) "state unchanged by probes" (-0.5)
    (c.Target.cached_delta 0 0.0)

(* Diagnostics *)

let test_autocorrelation () =
  let rng = Rng.create 211 in
  let iid = Array.init 5000 (fun _ -> Dist.normal rng ~mu:0.0 ~sigma:1.0) in
  close "iid lag1 ~ 0" 0.0 (Diagnostics.autocorrelation iid 1) 0.05;
  let persistent = Array.init 1000 (fun i -> float_of_int (i / 100)) in
  Alcotest.(check bool) "trending series strongly correlated" true
    (Diagnostics.autocorrelation persistent 1 > 0.9)

let test_ess () =
  let rng = Rng.create 223 in
  let n = 4000 in
  let iid = Array.init n (fun _ -> Dist.normal rng ~mu:0.0 ~sigma:1.0) in
  let ess = Diagnostics.effective_sample_size iid in
  Alcotest.(check bool)
    (Printf.sprintf "iid ESS near n (got %.0f)" ess)
    true
    (ess > 0.6 *. float_of_int n);
  (* AR(1) with high persistence has far lower ESS *)
  let ar = Array.make n 0.0 in
  for i = 1 to n - 1 do
    ar.(i) <- (0.95 *. ar.(i - 1)) +. Dist.normal rng ~mu:0.0 ~sigma:1.0
  done;
  let ess_ar = Diagnostics.effective_sample_size ar in
  Alcotest.(check bool) "AR(1) ESS much smaller" true
    (ess_ar < 0.2 *. float_of_int n)

let test_rhat () =
  let rng = Rng.create 227 in
  let chain () = Array.init 2000 (fun _ -> Dist.normal rng ~mu:0.0 ~sigma:1.0) in
  let same = Diagnostics.r_hat [| chain (); chain () |] in
  Alcotest.(check bool) "same-dist chains ~ 1" true (same < 1.05);
  let shifted =
    Array.init 2000 (fun _ -> Dist.normal rng ~mu:5.0 ~sigma:1.0)
  in
  let diverged = Diagnostics.r_hat [| chain (); shifted |] in
  Alcotest.(check bool) "diverged chains >> 1" true (diverged > 1.5)

let test_split_rhat () =
  let rng = Rng.create 229 in
  let mixed = Array.init 4000 (fun _ -> Dist.normal rng ~mu:0.0 ~sigma:1.0) in
  Alcotest.(check bool) "stationary chain ~ 1" true
    (Diagnostics.split_r_hat mixed < 1.05);
  let drifting = Array.init 4000 (fun i -> float_of_int i /. 100.0) in
  Alcotest.(check bool) "drifting chain flagged" true
    (Diagnostics.split_r_hat drifting > 1.2)

(* --- input-validation guards --- *)

let nan_target =
  Target.create ~dim:1 ~support:Target.Unbounded
    ~grad:(fun _ -> [| 0.0 |])
    (fun _ -> Float.nan)

let expect_failure name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Failure")
  | exception Failure _ -> ()

let test_mh_rejects_nan_target () =
  expect_failure "single-site" (fun () ->
      Metropolis.run_single_site ~rng:(Rng.create 1) ~n_samples:10 ~burn_in:5
        nan_target);
  expect_failure "vector" (fun () ->
      Metropolis.run_vector ~rng:(Rng.create 1) ~n_samples:10 ~burn_in:5
        nan_target)

let test_hmc_rejects_nan_target () =
  expect_failure "hmc" (fun () ->
      Hmc.run ~rng:(Rng.create 1) ~n_samples:10 ~burn_in:5 nan_target)

let test_chain_rejects_ragged () =
  (match Chain.of_samples [| [| 1.0; 2.0 |]; [| 3.0 |] |] with
  | _ -> Alcotest.fail "ragged matrix accepted"
  | exception Invalid_argument _ -> ());
  match Chain.of_samples [||] with
  | _ -> Alcotest.fail "empty matrix accepted"
  | exception Invalid_argument _ -> ()

let test_chain_get_bounds () =
  let c = Chain.of_samples [| [| 1.0 |]; [| 2.0 |] |] in
  Alcotest.(check (float 0.0)) "in bounds" 2.0 (Chain.get c 1).(0);
  (match Chain.get c 2 with
  | _ -> Alcotest.fail "out-of-bounds draw accepted"
  | exception Invalid_argument _ -> ());
  match Chain.get c (-1) with
  | _ -> Alcotest.fail "negative draw accepted"
  | exception Invalid_argument _ -> ()

let suite =
  ( "mcmc",
    [
      Alcotest.test_case "gradient check ok" `Quick test_gradient_check;
      Alcotest.test_case "gradient check catches errors" `Quick
        test_gradient_check_detects_error;
      Alcotest.test_case "with_coordinate" `Quick test_with_coordinate;
      Alcotest.test_case "MH single-site gaussian" `Slow
        test_mh_single_site_gaussian;
      Alcotest.test_case "MH vector gaussian" `Slow test_mh_vector_gaussian;
      Alcotest.test_case "HMC gaussian" `Slow test_hmc_gaussian;
      Alcotest.test_case "MH beta posterior" `Slow test_mh_beta;
      Alcotest.test_case "HMC beta posterior" `Slow test_hmc_beta;
      Alcotest.test_case "Gibbs beta posterior" `Slow test_gibbs_beta;
      Alcotest.test_case "Gibbs rejects unbounded" `Quick
        test_gibbs_rejects_unbounded;
      Alcotest.test_case "HMC requires gradient" `Quick
        test_hmc_requires_gradient;
      Alcotest.test_case "sigmoid/logit" `Quick test_sigmoid_logit;
      Alcotest.test_case "reflect_unit" `Quick test_reflect_unit;
      QCheck_alcotest.to_alcotest qcheck_reflect_in_unit;
      Alcotest.test_case "chain operations" `Quick test_chain_ops;
      Alcotest.test_case "chain concat" `Quick test_chain_concat;
      QCheck_alcotest.to_alcotest qcheck_append_vs_concat;
      Alcotest.test_case "thin rejects non-positive stride" `Quick
        test_thin_guard;
      QCheck_alcotest.to_alcotest qcheck_flat_matches_reference;
      QCheck_alcotest.to_alcotest qcheck_flat_thin_concat;
      Alcotest.test_case "chain storage isolation" `Quick
        test_chain_storage_isolation;
      Alcotest.test_case "chain of_flat" `Quick test_chain_of_flat;
      Alcotest.test_case "chain builder" `Quick test_chain_builder;
      Alcotest.test_case "coordinate r-hat matches arrays" `Quick
        test_rhat_coord_matches_arrays;
      Alcotest.test_case "cache protocol preserves the sampler" `Quick
        test_cache_protocol_preserves_sampler;
      Alcotest.test_case "cache_at tracks commits" `Quick
        test_cache_at_tracks_commits;
      Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
      Alcotest.test_case "effective sample size" `Quick test_ess;
      Alcotest.test_case "r-hat" `Quick test_rhat;
      Alcotest.test_case "split r-hat" `Quick test_split_rhat;
      Alcotest.test_case "MH rejects non-finite target" `Quick
        test_mh_rejects_nan_target;
      Alcotest.test_case "HMC rejects non-finite target" `Quick
        test_hmc_rejects_nan_target;
      Alcotest.test_case "chain rejects ragged input" `Quick
        test_chain_rejects_ragged;
      Alcotest.test_case "chain bounds checks" `Quick test_chain_get_bounds;
    ] )
