(* Rfd_params and the Rfd penalty engine. *)
open Because_bgp

let minutes m = m *. 60.0

let test_vendor_presets () =
  (* Appendix B of the paper. *)
  let check name (p : Rfd_params.t) suppress readv =
    Alcotest.(check (float 0.0)) (name ^ " withdrawal") 1000.0 p.withdrawal_penalty;
    Alcotest.(check (float 0.0)) (name ^ " attr change") 500.0 p.attribute_change_penalty;
    Alcotest.(check (float 0.0)) (name ^ " suppress") suppress p.suppress_threshold;
    Alcotest.(check (float 0.0)) (name ^ " readv") readv p.readvertisement_penalty;
    Alcotest.(check (float 0.0)) (name ^ " half-life") (minutes 15.0) p.half_life;
    Alcotest.(check (float 0.0)) (name ^ " reuse") 750.0 p.reuse_threshold;
    Alcotest.(check (float 0.0)) (name ^ " max-suppress") (minutes 60.0) p.max_suppress_time
  in
  check "cisco" Rfd_params.cisco 2000.0 0.0;
  check "juniper" Rfd_params.juniper 3000.0 1000.0;
  check "rfc7454" Rfd_params.rfc7454 6000.0 1000.0

let test_penalty_ceiling () =
  (* reuse · 2^(60/15) = 750 · 16 = 12000 *)
  Alcotest.(check (float 1e-9)) "default ceiling" 12000.0
    (Rfd_params.penalty_ceiling Rfd_params.cisco)

let test_flaps_to_suppress () =
  Alcotest.(check int) "cisco" 2 (Rfd_params.flaps_to_suppress Rfd_params.cisco);
  Alcotest.(check int) "juniper" 2 (Rfd_params.flaps_to_suppress Rfd_params.juniper);
  Alcotest.(check int) "rfc7454" 3 (Rfd_params.flaps_to_suppress Rfd_params.rfc7454)

let test_scaled_max_suppress () =
  let p = Rfd_params.with_max_suppress_scaled Rfd_params.cisco ~minutes:10.0 in
  Alcotest.(check (float 0.0)) "max-suppress" (minutes 10.0) p.max_suppress_time;
  Alcotest.(check (float 0.0)) "half-life scales" (minutes 2.5) p.half_life;
  Alcotest.(check (float 1e-9)) "ceiling preserved" 12000.0
    (Rfd_params.penalty_ceiling p);
  Alcotest.(check bool) "ceiling above all thresholds" true
    (Rfd_params.penalty_ceiling p > Rfd_params.rfc7454.suppress_threshold)

let test_penalty_accumulates () =
  let s = Rfd.create Rfd_params.cisco in
  Rfd.record s ~now:0.0 Rfd.Withdrawal;
  Alcotest.(check (float 1e-9)) "one withdrawal" 1000.0 (Rfd.penalty s ~now:0.0);
  Rfd.record s ~now:0.0 Rfd.Readvertisement;
  Alcotest.(check (float 1e-9)) "cisco free readvertisement" 1000.0
    (Rfd.penalty s ~now:0.0);
  Rfd.record s ~now:0.0 Rfd.Attribute_change;
  Alcotest.(check (float 1e-9)) "attribute change" 1500.0 (Rfd.penalty s ~now:0.0)

let test_penalty_decays_half_life () =
  let s = Rfd.create Rfd_params.cisco in
  Rfd.record s ~now:0.0 Rfd.Withdrawal;
  Alcotest.(check (float 1.0)) "after one half-life" 500.0
    (Rfd.penalty s ~now:(minutes 15.0));
  Alcotest.(check (float 1.0)) "after two half-lives" 250.0
    (Rfd.penalty s ~now:(minutes 30.0))

let test_suppression_trigger () =
  let s = Rfd.create Rfd_params.cisco in
  (* Cisco: suppress once penalty exceeds 2000 — third rapid withdrawal. *)
  Rfd.record s ~now:0.0 Rfd.Withdrawal;
  Alcotest.(check bool) "not yet (1000)" false (Rfd.suppressed s ~now:0.0);
  Rfd.record s ~now:60.0 Rfd.Withdrawal;
  Alcotest.(check bool) "not yet (just under 2000)" false
    (Rfd.suppressed s ~now:60.0);
  Rfd.record s ~now:120.0 Rfd.Withdrawal;
  Alcotest.(check bool) "suppressed" true (Rfd.suppressed s ~now:120.0);
  Alcotest.(check (float 0.0)) "since" 120.0
    (Option.get (Rfd.suppression_started s))

let test_release_by_decay () =
  let s = Rfd.create Rfd_params.cisco in
  Rfd.record s ~now:0.0 Rfd.Withdrawal;
  Rfd.record s ~now:30.0 Rfd.Withdrawal;
  Rfd.record s ~now:60.0 Rfd.Withdrawal;
  Alcotest.(check bool) "suppressed" true (Rfd.suppressed s ~now:60.0);
  let eta = Option.get (Rfd.reuse_eta s ~now:60.0) in
  (* penalty ≈ 2950 at t=60; decay to 750 takes 15·log2(2950/750) ≈ 29.6 min *)
  Alcotest.(check bool)
    (Printf.sprintf "eta plausible (%.0f)" eta)
    true
    (eta > minutes 25.0 && eta < minutes 35.0);
  Alcotest.(check bool) "still suppressed just before" true
    (Rfd.suppressed s ~now:(eta -. 10.0));
  Alcotest.(check bool) "released at eta" false
    (Rfd.suppressed s ~now:(eta +. 1.0));
  Alcotest.(check bool) "penalty at eta is reuse" true
    (Float.abs (Rfd.penalty s ~now:eta -. 750.0) < 5.0)

let test_ceiling_bounds_suppression () =
  let s = Rfd.create Rfd_params.cisco in
  (* A long rapid burst pushes the penalty to the ceiling. *)
  for i = 0 to 119 do
    Rfd.record s ~now:(float_of_int i *. 60.0) Rfd.Withdrawal
  done;
  let burst_end = 119.0 *. 60.0 in
  Alcotest.(check (float 1.0)) "capped at ceiling" 12000.0
    (Rfd.penalty s ~now:burst_end);
  (* From the ceiling, release comes exactly max-suppress-time later. *)
  let eta = Option.get (Rfd.reuse_eta s ~now:burst_end) in
  Alcotest.(check bool)
    (Printf.sprintf "release after max-suppress (%.1f min)"
       ((eta -. burst_end) /. 60.0))
    true
    (Float.abs (eta -. burst_end -. minutes 60.0) < 1.0)

let test_slow_flapping_no_suppression () =
  let s = Rfd.create Rfd_params.cisco in
  (* Withdrawal every 30 minutes decays faster than it accumulates. *)
  for i = 0 to 19 do
    Rfd.record s ~now:(float_of_int i *. minutes 30.0) Rfd.Withdrawal
  done;
  Alcotest.(check bool) "never suppressed" false
    (Rfd.suppressed s ~now:(minutes 600.0))

let test_cisco_damps_5min_interval () =
  (* Fig. 12: deprecated defaults start damping at a 5-minute update
     interval (W and A alternating 5 minutes apart). *)
  let s = Rfd.create Rfd_params.cisco in
  let tripped = ref false in
  for round = 0 to 11 do
    let t = float_of_int round *. minutes 10.0 in
    Rfd.record s ~now:t Rfd.Withdrawal;
    Rfd.record s ~now:(t +. minutes 5.0) Rfd.Readvertisement;
    if Rfd.suppressed s ~now:(t +. minutes 5.0) then tripped := true
  done;
  Alcotest.(check bool) "trips at 5-minute interval" true !tripped

let test_cisco_ignores_10min_interval () =
  let s = Rfd.create Rfd_params.cisco in
  let tripped = ref false in
  for round = 0 to 11 do
    let t = float_of_int round *. minutes 20.0 in
    Rfd.record s ~now:t Rfd.Withdrawal;
    Rfd.record s ~now:(t +. minutes 10.0) Rfd.Readvertisement;
    if Rfd.suppressed s ~now:(t +. minutes 10.0) then tripped := true
  done;
  Alcotest.(check bool) "quiet at 10-minute interval" false !tripped

let test_rfc7454_needs_fast_flapping () =
  (* Recommended parameters damp at a 2-minute interval but not at 5. *)
  let trip interval =
    let s = Rfd.create Rfd_params.rfc7454 in
    let tripped = ref false in
    for k = 0 to 59 do
      let t = float_of_int k *. 2.0 *. interval in
      Rfd.record s ~now:t Rfd.Withdrawal;
      Rfd.record s ~now:(t +. interval) Rfd.Readvertisement;
      if Rfd.suppressed s ~now:(t +. interval) then tripped := true
    done;
    !tripped
  in
  Alcotest.(check bool) "2-minute interval trips" true (trip (minutes 2.0));
  Alcotest.(check bool) "5-minute interval quiet" false (trip (minutes 5.0))

let test_timer_based_suppression () =
  (* Junos-style: an explicit timer releases the route max-suppress-time
     after the suppression began, even while it keeps flapping; the next
     flap re-suppresses it. *)
  let params =
    { Rfd_params.cisco with
      Rfd_params.timer_based_suppression = true;
      max_suppress_time = minutes 10.0 }
  in
  let s = Rfd.create params in
  Rfd.record s ~now:0.0 Rfd.Withdrawal;
  Rfd.record s ~now:30.0 Rfd.Withdrawal;
  Rfd.record s ~now:60.0 Rfd.Withdrawal;
  Alcotest.(check bool) "suppressed" true (Rfd.suppressed s ~now:60.0);
  Alcotest.(check (option (float 1.0))) "timer bounds the eta"
    (Some (60.0 +. minutes 10.0))
    (Rfd.reuse_eta s ~now:60.0);
  (* Released by the timer although the penalty is still above reuse. *)
  let release = 60.0 +. minutes 10.0 in
  Alcotest.(check bool) "released at timer" false
    (Rfd.suppressed s ~now:(release +. 1.0));
  Alcotest.(check bool) "penalty still high" true
    (Rfd.penalty s ~now:(release +. 1.0) > params.Rfd_params.reuse_threshold);
  (* The next flap re-suppresses immediately (penalty above threshold). *)
  Rfd.record s ~now:(release +. 60.0) Rfd.Withdrawal;
  Alcotest.(check bool) "re-suppressed" true
    (Rfd.suppressed s ~now:(release +. 60.0));
  Alcotest.(check (float 0.0)) "new epoch start" (release +. 60.0)
    (Option.get (Rfd.suppression_started s))

let test_history () =
  let s = Rfd.create Rfd_params.cisco in
  Rfd.record s ~now:1.0 Rfd.Withdrawal;
  Rfd.record s ~now:2.0 Rfd.Withdrawal;
  match Rfd.history s with
  | [ (t1, p1); (t2, p2) ] ->
      Alcotest.(check (float 0.0)) "t1" 1.0 t1;
      Alcotest.(check (float 0.0)) "t2" 2.0 t2;
      Alcotest.(check bool) "monotone penalty" true (p2 > p1)
  | _ -> Alcotest.fail "history length"

let qcheck_penalty_invariants =
  QCheck.Test.make ~name:"penalty stays within [0, ceiling]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (pair (float_range 0.0 7200.0) (int_bound 2)))
    (fun events ->
      let s = Rfd.create Rfd_params.cisco in
      let sorted =
        List.sort (fun (a, _) (b, _) -> Float.compare a b) events
      in
      List.iter
        (fun (t, kind) ->
          let event =
            match kind with
            | 0 -> Rfd.Withdrawal
            | 1 -> Rfd.Readvertisement
            | _ -> Rfd.Attribute_change
          in
          Rfd.record s ~now:t event)
        sorted;
      let p = Rfd.penalty s ~now:7200.0 in
      p >= 0.0 && p <= Rfd_params.penalty_ceiling Rfd_params.cisco +. 1e-6)

let qcheck_release_monotone =
  QCheck.Test.make ~name:"once released by decay, stays released" ~count:100
    QCheck.(pair (int_range 3 20) (float_range 30.0 120.0))
    (fun (n, gap) ->
      let s = Rfd.create Rfd_params.cisco in
      for i = 0 to n - 1 do
        Rfd.record s ~now:(float_of_int i *. gap) Rfd.Withdrawal
      done;
      let last = float_of_int (n - 1) *. gap in
      match Rfd.reuse_eta s ~now:last with
      | None -> true
      | Some eta ->
          (not (Rfd.suppressed s ~now:(eta +. 1.0)))
          && not (Rfd.suppressed s ~now:(eta +. 7200.0)))

let suite =
  ( "rfd",
    [
      Alcotest.test_case "vendor presets (Appendix B)" `Quick test_vendor_presets;
      Alcotest.test_case "penalty ceiling" `Quick test_penalty_ceiling;
      Alcotest.test_case "flaps to suppress" `Quick test_flaps_to_suppress;
      Alcotest.test_case "scaled max-suppress" `Quick test_scaled_max_suppress;
      Alcotest.test_case "penalty accumulates" `Quick test_penalty_accumulates;
      Alcotest.test_case "half-life decay" `Quick test_penalty_decays_half_life;
      Alcotest.test_case "suppression trigger" `Quick test_suppression_trigger;
      Alcotest.test_case "release by decay" `Quick test_release_by_decay;
      Alcotest.test_case "ceiling bounds suppression" `Quick
        test_ceiling_bounds_suppression;
      Alcotest.test_case "slow flapping stays clean" `Quick
        test_slow_flapping_no_suppression;
      Alcotest.test_case "cisco damps 5-min interval" `Quick
        test_cisco_damps_5min_interval;
      Alcotest.test_case "cisco ignores 10-min interval" `Quick
        test_cisco_ignores_10min_interval;
      Alcotest.test_case "rfc7454 needs fast flapping" `Quick
        test_rfc7454_needs_fast_flapping;
      Alcotest.test_case "timer-based suppression" `Quick
        test_timer_based_suppression;
      Alcotest.test_case "history" `Quick test_history;
      QCheck_alcotest.to_alcotest qcheck_penalty_invariants;
      QCheck_alcotest.to_alcotest qcheck_release_monotone;
    ] )
