(* The always-on service: admission control, supervision, isolation,
   graceful drain and whole-service crash recovery.

   The heart of this suite is the service-level crash property: a service
   running several concurrent campaigns under severe injected faults,
   hard-killed at an arbitrary checkpoint boundary and warm-started, must
   complete every campaign with reports byte-for-byte identical to an
   uninterrupted service's — for 1 and 4 worker domains alike. *)

module Service = Because_service.Service
module Sspec = Because_service.Spec
module Admission = Because_service.Admission
module Store = Because_service.Store
module Supervise = Because_recover.Supervise

let fresh_dir () =
  let f = Filename.temp_file "because-service" ".dir" in
  Sys.remove f;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  n = 0 || go 0

(* Every test must leave the process-wide drain flag down: it is global
   state, and a leak would silently drain every later suite. *)
let with_drain_reset f =
  Fun.protect ~finally:(fun () -> Supervise.clear_drain ()) f

let tiny_spec ?(seed = 42) ?(faults = "none") id =
  { (Sspec.default ~id) with
    Sspec.seed;
    transit = 6;
    stub = 14;
    vantage_hosts = 5;
    samples = 80;
    burn_in = 40;
    faults }

let cfg ?(limit = 16) ?(jobs = 1) ?(max_attempts = 3) ?kill ?chaos ~dir () =
  { (Service.default_config ~state_dir:dir) with
    Service.limit;
    jobs;
    max_attempts;
    retry_backoff_s = 0.0;
    kill_after_saves = kill;
    chaos }

(* The ISSUE's soak shape: four concurrent campaigns, severe faults. *)
let soak_specs =
  [ tiny_spec ~seed:1 ~faults:"severe" "c1";
    tiny_spec ~seed:2 ~faults:"severe" "c2";
    tiny_spec ~seed:3 ~faults:"severe" "c3";
    tiny_spec ~seed:4 ~faults:"severe" "c4" ]

let submit_ok svc spec =
  match Service.submit svc spec with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "submit %s: %s" spec.Sspec.id
                 (Admission.reason_to_string r)

let reports svc specs =
  List.map
    (fun (s : Sspec.t) ->
      (s.Sspec.id, read_file (Service.report_path svc ~id:s.Sspec.id)))
    specs

(* Uninterrupted reference run over the soak specs, once per process. *)
let soak_reference =
  lazy
    (let dir = fresh_dir () in
     let svc = Service.create (cfg ~jobs:1 ~dir ()) in
     List.iter (submit_ok svc) soak_specs;
     (match Service.run_until_idle svc with
     | Service.Completed -> ()
     | _ -> Alcotest.fail "reference run did not complete");
     reports svc soak_specs)

(* ------------------------------------------------------------------ *)
(* Spec                                                                 *)

let test_spec_roundtrip () =
  let spec = tiny_spec ~seed:9 ~faults:"severe" "round-trip_1.a" in
  (match Sspec.of_line (Sspec.to_line spec) with
  | Ok back -> Alcotest.(check bool) "roundtrip" true (Sspec.equal spec back)
  | Error e -> Alcotest.fail e);
  (* Defaults fill missing keys; id is required. *)
  (match Sspec.of_line "id=x seed=7" with
  | Ok s ->
      Alcotest.(check int) "seed parsed" 7 s.Sspec.seed;
      Alcotest.(check int) "default samples" 400 s.Sspec.samples
  | Error e -> Alcotest.fail e);
  (match Sspec.of_line "seed=7" with
  | Ok _ -> Alcotest.fail "missing id accepted"
  | Error e -> Alcotest.(check bool) "id required" true (contains ~sub:"id" e));
  (match Sspec.of_line "id=x bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ());
  (match Sspec.of_line "id=x faults=catastrophic" with
  | Ok _ -> Alcotest.fail "unknown severity accepted"
  | Error _ -> ());
  match Sspec.validate { spec with Sspec.id = "bad id" } with
  | Ok _ -> Alcotest.fail "spacey id accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)

let test_admission_rejections () =
  (match Admission.create ~limit:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limit 0 accepted");
  let q = Admission.create ~limit:2 in
  Alcotest.(check int) "seq 0" 0 (Result.get_ok (Admission.admit q ~id:"a" 'a'));
  Alcotest.(check int) "seq 1" 1 (Result.get_ok (Admission.admit q ~id:"b" 'b'));
  (match Admission.admit q ~id:"a" 'x' with
  | Error (Admission.Duplicate { id }) ->
      Alcotest.(check string) "dup id" "a" id
  | _ -> Alcotest.fail "duplicate admitted");
  (match Admission.admit q ~id:"c" 'c' with
  | Error (Admission.Queue_full { limit }) ->
      Alcotest.(check int) "limit reported" 2 limit
  | _ -> Alcotest.fail "over-limit admitted");
  (* FIFO order, and taking frees capacity but never the id. *)
  (match Admission.take q with
  | Some (0, "a", 'a') -> ()
  | _ -> Alcotest.fail "take order");
  (match Admission.admit q ~id:"a" 'x' with
  | Error (Admission.Duplicate _) -> ()
  | _ -> Alcotest.fail "taken id reusable");
  Alcotest.(check int) "seq 2" 2 (Result.get_ok (Admission.admit q ~id:"c" 'c'));
  (* Requeued entries come back first. *)
  Admission.readmit q ~seq:0 ~id:"a" 'a';
  (match Admission.take q with
  | Some (0, "a", _) -> ()
  | _ -> Alcotest.fail "readmitted order");
  Admission.set_draining q true;
  match Admission.admit q ~id:"z" 'z' with
  | Error Admission.Draining -> ()
  | _ -> Alcotest.fail "draining admitted"

let test_service_admission () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  let svc = Service.create (cfg ~limit:2 ~dir ()) in
  submit_ok svc (tiny_spec "a");
  submit_ok svc (tiny_spec "b");
  (match Service.submit svc (tiny_spec "c") with
  | Error (Admission.Queue_full { limit = 2 }) -> ()
  | _ -> Alcotest.fail "no backpressure past the limit");
  (match Service.submit svc (tiny_spec "a") with
  | Error (Admission.Duplicate _) -> ()
  | _ -> Alcotest.fail "duplicate id admitted");
  (match Service.submit svc { (tiny_spec "ok") with Sspec.cycles = 0 } with
  | Error (Admission.Invalid _) -> ()
  | _ -> Alcotest.fail "invalid spec admitted");
  Alcotest.(check int) "both queued" 2 (Service.pending svc);
  Service.drain svc;
  (match Service.submit svc (tiny_spec "d") with
  | Error Admission.Draining -> ()
  | _ -> Alcotest.fail "draining service admitted");
  (match Service.run_until_idle svc with
  | Service.Drained -> ()
  | _ -> Alcotest.fail "drained service did not report Drained");
  Service.reset_drain svc

(* ------------------------------------------------------------------ *)
(* Completion and the results store                                     *)

let test_service_completes () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  let svc = Service.create (cfg ~jobs:2 ~dir ()) in
  let specs = [ tiny_spec "alpha"; tiny_spec ~seed:7 "beta" ] in
  List.iter (submit_ok svc) specs;
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check int) "exit 0" 0 (Service.exit_code svc Service.Completed);
  List.iter
    (fun (s : Sspec.t) ->
      match Store.find (Service.store svc) ~id:s.Sspec.id with
      | None -> Alcotest.failf "%s missing from store" s.Sspec.id
      | Some e ->
          Alcotest.(check string)
            (s.Sspec.id ^ " healthy") "healthy"
            (Store.health_label e.Store.health);
          Alcotest.(check bool)
            (s.Sspec.id ^ " has estimates") true
            (Array.length e.Store.estimates > 0);
          let report = read_file (Service.report_path svc ~id:s.Sspec.id) in
          Alcotest.(check bool)
            (s.Sspec.id ^ " report status") true
            (contains ~sub:"status: healthy" report))
    specs;
  (match Store.rollup (Service.store svc) with
  | Supervise.Healthy -> ()
  | _ -> Alcotest.fail "rollup not healthy");
  Service.write_status svc;
  let json = read_file (Service.status_path svc) in
  Alcotest.(check bool) "status json schema" true
    (contains ~sub:"because-service/1" json);
  Alcotest.(check bool) "status json rollup" true
    (contains ~sub:"\"rollup\": \"healthy\"" json)

(* ------------------------------------------------------------------ *)
(* Whole-service kill + warm start, bit-for-bit                         *)

let qcheck_service_kill_restart =
  QCheck.Test.make
    ~name:"SIGKILL the service at a random save, warm-start, bit-for-bit"
    ~count:4
    QCheck.(pair (int_range 1 24) (int_range 0 1))
    (fun (kill_after, par) ->
      with_drain_reset @@ fun () ->
      let jobs = if par = 1 then 4 else 1 in
      let dir = fresh_dir () in
      let killed =
        Service.create (cfg ~jobs ~kill:kill_after ~dir ())
      in
      List.iter (submit_ok killed) soak_specs;
      let first = Service.run_until_idle killed in
      let final =
        match first with
        | Service.Completed -> killed (* kill point beyond the run's saves *)
        | Service.Killed ->
            let resumed = Service.load (cfg ~jobs ~dir ()) in
            (match Service.run_until_idle resumed with
            | Service.Completed -> resumed
            | _ -> Alcotest.fail "warm start did not complete")
        | Service.Drained -> Alcotest.fail "kill reported as drain"
      in
      reports final soak_specs = Lazy.force soak_reference)

(* ------------------------------------------------------------------ *)
(* Graceful drain mid-run, then resume                                  *)

let test_drain_and_resume () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  let svc = Service.create (cfg ~jobs:1 ~dir ()) in
  List.iter (submit_ok svc) soak_specs;
  Service.start svc;
  (* Let work actually start, then drain mid-campaign.  However the race
     lands — mid-simulation, mid-inference or between campaigns — the
     final reports must be unaffected. *)
  let deadline = 20_000_000 in
  let rec wait n =
    if Service.running svc = 0 && n < deadline then begin
      Domain.cpu_relax ();
      wait (n + 1)
    end
  in
  wait 0;
  Service.drain svc;
  (* Drain is idempotent: a second request (double SIGTERM) is absorbed,
     not an error, and the verdict is still a clean drain. *)
  Service.drain svc;
  (match Service.join svc with
  | Service.Drained -> ()
  | Service.Completed -> ()
  | Service.Killed -> Alcotest.fail "drain reported as kill");
  Service.reset_drain svc;
  let resumed = Service.load (cfg ~jobs:2 ~dir ()) in
  (match Service.run_until_idle resumed with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "post-drain warm start did not complete");
  Alcotest.(check bool) "reports equal the uninterrupted service's" true
    (reports resumed soak_specs = Lazy.force soak_reference)

(* ------------------------------------------------------------------ *)
(* Crash isolation and retry exhaustion                                 *)

let test_isolation_and_retry_exhaustion () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  (* Campaign "bad" crashes at its first checkpoint write on every
     attempt; its siblings must finish healthy and the service must keep
     accepting and running work afterwards. *)
  let chaos ~id ~attempt:_ = if id = "bad" then Some 1 else None in
  let svc = Service.create (cfg ~jobs:2 ~max_attempts:3 ~chaos ~dir ()) in
  submit_ok svc (tiny_spec "good1");
  submit_ok svc (tiny_spec ~seed:5 "bad");
  submit_ok svc (tiny_spec ~seed:6 "good2");
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "service exited instead of isolating the crash");
  let health id =
    match Store.find (Service.store svc) ~id with
    | Some e -> Store.health_label e.Store.health
    | None -> "missing"
  in
  Alcotest.(check string) "good1 healthy" "healthy" (health "good1");
  Alcotest.(check string) "good2 healthy" "healthy" (health "good2");
  Alcotest.(check string) "bad insufficient" "insufficient" (health "bad");
  (match Store.find (Service.store svc) ~id:"bad" with
  | Some e ->
      Alcotest.(check int) "all attempts burned" 3 e.Store.attempts;
      let report = read_file (Service.report_path svc ~id:"bad") in
      Alcotest.(check bool) "exhaustion reason in report" true
        (contains ~sub:"retry budget exhausted" report)
  | None -> Alcotest.fail "bad missing");
  (match Store.rollup (Service.store svc) with
  | Supervise.Insufficient _ -> ()
  | _ -> Alcotest.fail "rollup ignores the insufficient campaign");
  Alcotest.(check int) "exit 4" 4 (Service.exit_code svc Service.Completed);
  (* Still alive: new work is admitted and completes. *)
  submit_ok svc (tiny_spec ~seed:8 "late");
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "second generation did not complete");
  Alcotest.(check string) "late healthy" "healthy" (health "late")

(* ------------------------------------------------------------------ *)
(* Corrupt queue snapshot on warm start: quarantine + cold restart      *)

let test_corrupt_queue_warm_start () =
  with_drain_reset @@ fun () ->
  let dir = fresh_dir () in
  let spec = tiny_spec "solo" in
  let svc = Service.create (cfg ~dir ()) in
  submit_ok svc spec;
  (match Service.run_until_idle svc with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "seed run did not complete");
  let reference = read_file (Service.report_path svc ~id:"solo") in
  (* Garble the queue store's manifest: the fingerprint no longer
     matches, so the warm start must quarantine the snapshot and come up
     cold — warned, not crashed. *)
  let manifest = Filename.concat (Filename.concat dir "queue.d") "MANIFEST" in
  Out_channel.with_open_bin manifest (fun oc ->
      Out_channel.output_string oc "because-other-thing/99\n");
  let reloaded = Service.load (cfg ~dir ()) in
  Alcotest.(check bool) "quarantine warned" true
    (Service.warnings reloaded <> []);
  Alcotest.(check (list string)) "store is cold" []
    (List.map
       (fun (e : Store.entry) -> e.Store.spec.Sspec.id)
       (Store.entries (Service.store reloaded)));
  (* The id is free again; rerunning the campaign reproduces the report. *)
  submit_ok reloaded spec;
  (match Service.run_until_idle reloaded with
  | Service.Completed -> ()
  | _ -> Alcotest.fail "cold restart did not complete");
  Alcotest.(check bool) "report reproduced bit-for-bit" true
    (String.equal reference
       (read_file (Service.report_path reloaded ~id:"solo")))

(* ------------------------------------------------------------------ *)

let suite =
  ( "service",
    [
      Alcotest.test_case "spec line roundtrip" `Quick test_spec_roundtrip;
      Alcotest.test_case "admission rejections" `Quick
        test_admission_rejections;
      Alcotest.test_case "service admission + backpressure" `Quick
        test_service_admission;
      Alcotest.test_case "campaigns complete, store serves results" `Quick
        test_service_completes;
      QCheck_alcotest.to_alcotest qcheck_service_kill_restart;
      Alcotest.test_case "drain mid-run, resume bit-for-bit" `Quick
        test_drain_and_resume;
      Alcotest.test_case "crash isolation + retry exhaustion" `Quick
        test_isolation_and_retry_exhaustion;
      Alcotest.test_case "corrupt queue quarantined on warm start" `Quick
        test_corrupt_queue_warm_start;
    ] )
