(* Heap, Engine, Network. *)
open Because_bgp
module Heap = Because_sim.Heap
module Engine = Because_sim.Engine
module Network = Because_sim.Network

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun t -> Heap.push h ~time:t t) [ 3.0; 1.0; 2.0; 0.5; 2.5 ];
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted" [ 0.5; 1.0; 2.0; 2.5; 3.0 ]
    (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~time:1.0 v) [ "a"; "b"; "c" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ] order

let test_heap_size_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~time:1.0 ();
  Alcotest.(check int) "size" 1 (Heap.size h);
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Heap.peek_time h)

let qcheck_heap_sorted =
  QCheck.Test.make ~name:"heap pops in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 100) (float_range 0.0 1e6))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t t) times;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort Float.compare times)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~time:2.0 "b";
  Engine.schedule e ~time:1.0 "a";
  Engine.run e ~until:10.0 ~handler:(fun ~now v -> log := (now, v) :: !log);
  Alcotest.(check (list (pair (float 0.0) string)))
    "ordered" [ (1.0, "a"); (2.0, "b") ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.schedule e ~time:1.0 ();
  Engine.schedule e ~time:5.0 ();
  Engine.run e ~until:3.0 ~handler:(fun ~now:_ () -> incr count);
  Alcotest.(check int) "stops at until" 1 !count;
  Alcotest.(check int) "pending kept" 1 (Engine.pending e)

let test_engine_handler_schedules () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~time:1.0 1;
  Engine.run e ~until:10.0 ~handler:(fun ~now v ->
      fired := v :: !fired;
      if v < 3 then Engine.schedule e ~time:(now +. 1.0) (v + 1));
  Alcotest.(check (list int)) "cascade" [ 1; 2; 3 ] (List.rev !fired)

let test_engine_past_clamped () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~time:5.0 "first";
  Engine.run e ~until:4.0 ~handler:(fun ~now:_ _ -> ());
  ignore (Engine.step e ~handler:(fun ~now:_ v -> log := v :: !log));
  (* now = 5; scheduling in the past clamps to now *)
  Engine.schedule e ~time:1.0 "late";
  ignore (Engine.step e ~handler:(fun ~now v ->
      Alcotest.(check (float 0.0)) "clamped time" 5.0 now;
      log := v :: !log));
  Alcotest.(check (list string)) "both ran" [ "late"; "first" ] !log

(* A 3-AS line: 65001 (origin, customer of 2) — 2 — 3 (customer of 2 hosting
   a vantage point). *)
let line_configs =
  let asn = Asn.of_int in
  [
    { Router.asn = asn 65001;
      neighbors = [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider; mrai = 0.0 } ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 2;
      neighbors =
        [ { Router.neighbor_asn = asn 65001; relationship = Policy.Customer; mrai = 0.0 };
          { Router.neighbor_asn = asn 3; relationship = Policy.Customer; mrai = 0.0 } ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 3;
      neighbors = [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider; mrai = 0.0 } ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
  ]

let make_line () =
  Network.create ~configs:line_configs
    ~delay:(fun ~from_asn:_ ~to_asn:_ -> 1.0)
    ~monitored:(Asn.Set.singleton (Asn.of_int 3)) ()

let prefix = Prefix.of_string "10.0.0.0/24"

let test_network_propagation () =
  let net = make_line () in
  Network.schedule_announce net ~time:0.0 ~origin:(Asn.of_int 65001) prefix;
  Network.run net ~until:100.0;
  let feed = Network.feed net (Asn.of_int 3) in
  (match feed with
  | [ (t, Update.Announce a) ] ->
      Alcotest.(check (float 1e-9)) "arrives after 2 hops" 2.0 t;
      Alcotest.(check (list int)) "full path" [ 3; 2; 65001 ]
        (List.map Asn.to_int a.as_path);
      let agg = Option.get a.aggregator in
      Alcotest.(check (float 0.0)) "aggregator stamped" 0.0 agg.Update.sent_at
  | _ -> Alcotest.fail "expected exactly one feed announcement");
  let stats = Network.stats net in
  Alcotest.(check int) "two deliveries" 2 stats.Network.deliveries

let test_network_withdraw () =
  let net = make_line () in
  Network.schedule_announce net ~time:0.0 ~origin:(Asn.of_int 65001) prefix;
  Network.schedule_withdraw net ~time:10.0 ~origin:(Asn.of_int 65001) prefix;
  Network.run net ~until:100.0;
  match Network.feed net (Asn.of_int 3) with
  | [ (_, Update.Announce _); (t, Update.Withdraw _) ] ->
      Alcotest.(check (float 1e-9)) "withdraw timing" 12.0 t
  | l -> Alcotest.failf "unexpected feed of %d records" (List.length l)

let test_network_unmonitored_silent () =
  let net = make_line () in
  Network.schedule_announce net ~time:0.0 ~origin:(Asn.of_int 65001) prefix;
  Network.run net ~until:100.0;
  Alcotest.(check int) "unmonitored AS has no feed" 0
    (List.length (Network.feed net (Asn.of_int 2)))

let test_network_mrai_batches () =
  (* With a 30 s MRAI on the middle router's session towards the VP host,
     rapid origin churn collapses into far fewer downstream announcements. *)
  let asn = Asn.of_int in
  let mk mrai =
    let configs =
      [
        { Router.asn = asn 65001;
          neighbors = [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider; mrai = 0.0 } ];
          rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
        { Router.asn = asn 2;
          neighbors =
            [ { Router.neighbor_asn = asn 65001; relationship = Policy.Customer; mrai = 0.0 };
              { Router.neighbor_asn = asn 3; relationship = Policy.Customer; mrai } ];
          rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
        { Router.asn = asn 3;
          neighbors = [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider; mrai = 0.0 } ];
          rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
      ]
    in
    let net =
      Network.create ~configs
        ~delay:(fun ~from_asn:_ ~to_asn:_ -> 0.1)
        ~monitored:(Asn.Set.singleton (asn 3)) ()
    in
    (* 20 announcements 5 s apart, each with a fresh aggregator. *)
    for k = 0 to 19 do
      Network.schedule_announce net ~time:(float_of_int k *. 5.0)
        ~origin:(asn 65001) prefix
    done;
    Network.run net ~until:500.0;
    List.length
      (List.filter
         (fun (_, u) -> Update.is_announce u)
         (Network.feed net (asn 3)))
  in
  let without_mrai = mk 0.0 in
  let with_mrai = mk 30.0 in
  Alcotest.(check int) "no MRAI: every update forwarded" 20 without_mrai;
  Alcotest.(check bool)
    (Printf.sprintf "MRAI batches (%d < %d)" with_mrai without_mrai)
    true
    (with_mrai <= 6)

let suite =
  ( "sim",
    [
      Alcotest.test_case "heap orders" `Quick test_heap_orders;
      Alcotest.test_case "heap FIFO ties" `Quick test_heap_fifo_ties;
      Alcotest.test_case "heap size/empty" `Quick test_heap_size_empty;
      QCheck_alcotest.to_alcotest qcheck_heap_sorted;
      Alcotest.test_case "engine order" `Quick test_engine_runs_in_order;
      Alcotest.test_case "engine until" `Quick test_engine_until;
      Alcotest.test_case "engine cascade" `Quick test_engine_handler_schedules;
      Alcotest.test_case "engine clamps past" `Quick test_engine_past_clamped;
      Alcotest.test_case "network propagation" `Quick test_network_propagation;
      Alcotest.test_case "network withdraw" `Quick test_network_withdraw;
      Alcotest.test_case "network unmonitored" `Quick
        test_network_unmonitored_silent;
      Alcotest.test_case "MRAI batches updates" `Quick test_network_mrai_batches;
    ] )
