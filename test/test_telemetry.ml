(* Telemetry subsystem: sharded registry semantics, exporters, and the
   zero-cost-when-off guarantee across a full campaign. *)
module Tel = Because_telemetry
module Registry = Tel.Registry
module Snapshot = Tel.Snapshot
module Sc = Because_scenario
open Because_bgp

(* --- registry basics --- *)

let test_counter_gauge_hist () =
  let reg = Registry.create () in
  Alcotest.(check bool) "enabled" true (Registry.is_enabled reg);
  let c = Registry.Counter.v reg "t.counter" in
  Registry.Counter.add c 5;
  Registry.Counter.incr c;
  let g = Registry.Gauge.v reg "t.gauge" in
  Registry.Gauge.set g 1.0;
  Registry.Gauge.set g 2.5;
  let h = Registry.Histogram.v reg "t.hist" in
  List.iter (Registry.Histogram.observe h) [ 0.5; 1.5; 1.7; 100.0 ];
  let s = Registry.snapshot reg in
  Alcotest.(check (option int)) "counter" (Some 6) (Snapshot.counter s "t.counter");
  Alcotest.(check (option (float 0.0))) "gauge last-write" (Some 2.5)
    (Snapshot.gauge s "t.gauge");
  (match Snapshot.hist s "t.hist" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "hist count" 4 h.Snapshot.count;
      Alcotest.(check (float 1e-9)) "hist sum" 103.7 h.Snapshot.sum);
  (* Same-name handles alias the same cell; kind clashes are errors. *)
  Registry.Counter.add (Registry.Counter.v reg "t.counter") 4;
  let s = Registry.snapshot reg in
  Alcotest.(check (option int)) "interned" (Some 10)
    (Snapshot.counter s "t.counter");
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Registry.Gauge.v reg "t.counter");
       false
     with Invalid_argument _ -> true)

let test_disabled_is_inert () =
  let reg = Registry.disabled in
  Alcotest.(check bool) "disabled" false (Registry.is_enabled reg);
  Registry.Counter.add (Registry.Counter.v reg "x") 7;
  Registry.Gauge.set (Registry.Gauge.v reg "y") 1.0;
  Registry.Histogram.observe (Registry.Histogram.v reg "z") 1.0;
  let r = Registry.Span.with_ reg ~name:"s" (fun () -> 41 + 1) in
  Alcotest.(check int) "span body runs" 42 r;
  Alcotest.(check bool) "snapshot empty" true
    (Registry.snapshot reg = Snapshot.empty)

let test_spans_and_overflow () =
  let reg = Tel.Telemetry.create ~span_capacity:4 () in
  for k = 1 to 10 do
    ignore (Registry.Span.with_ reg ~name:(Printf.sprintf "p%d" (k mod 2))
              (fun () -> Sys.opaque_identity k))
  done;
  let s = Registry.snapshot reg in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length s.Snapshot.spans);
  Alcotest.(check int) "overflow reported" 6 s.Snapshot.dropped_spans;
  List.iter
    (fun (sp : Snapshot.span) ->
      Alcotest.(check bool) "non-negative duration" true
        (sp.Snapshot.dur_ns >= 0L))
    s.Snapshot.spans;
  let starts = List.map (fun sp -> sp.Snapshot.start_ns) s.Snapshot.spans in
  Alcotest.(check bool) "sorted by start" true
    (starts = List.sort Int64.compare starts)

(* --- histogram merge algebra --- *)

let hist_of_values vs =
  let buckets = Array.make Snapshot.n_buckets 0 in
  List.iter
    (fun v ->
      let k = Snapshot.bucket_of v in
      buckets.(k) <- buckets.(k) + 1)
    vs;
  Snapshot.hist_of_buckets buckets
    ~sum:(List.fold_left ( +. ) 0.0 vs)

let hist_testable =
  Alcotest.testable
    (fun fmt (h : Snapshot.hist) ->
      Format.fprintf fmt "count=%d sum=%g" h.Snapshot.count h.Snapshot.sum)
    ( = )

(* Integer-valued observations keep the float sums exact, so merge is
   exactly associative and commutative, not just approximately. *)
let qcheck_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative and commutative"
    ~count:100
    QCheck.(
      triple
        (small_list (int_range 0 1000))
        (small_list (int_range 0 1000))
        (small_list (int_range 0 1000)))
    (fun (a, b, c) ->
      let h l = hist_of_values (List.map float_of_int l) in
      let ha = h a and hb = h b and hc = h c in
      let left = Snapshot.merge_hist (Snapshot.merge_hist ha hb) hc in
      let right = Snapshot.merge_hist ha (Snapshot.merge_hist hb hc) in
      left = right
      && Snapshot.merge_hist ha hb = Snapshot.merge_hist hb ha
      && left.Snapshot.count
         = List.length a + List.length b + List.length c)

let test_bucket_edges () =
  for k = 0 to Snapshot.n_buckets - 2 do
    let upper = Snapshot.bucket_upper k in
    Alcotest.(check bool) "value below edge lands at or below k" true
      (Snapshot.bucket_of (upper *. 0.99) <= k);
    Alcotest.(check bool) "edge value lands above k" true
      (Snapshot.bucket_of upper > k || k = Snapshot.n_buckets - 1)
  done;
  Alcotest.(check int) "non-positive to bucket 0" 0 (Snapshot.bucket_of 0.0);
  Alcotest.(check int) "negative to bucket 0" 0 (Snapshot.bucket_of (-3.0));
  Alcotest.(check bool) "top bucket open" true
    (Snapshot.bucket_upper (Snapshot.n_buckets - 1) = infinity)

(* --- multi-domain aggregation --- *)

let test_parallel_aggregation () =
  (* Counters recorded from inside work-stealing worker domains must merge
     to the exact total: each task bumps the shared counter and one
     task-private gauge from whichever domain ran it. *)
  let reg = Registry.create () in
  let n_tasks = 12 and per_task = 1000 in
  let tasks =
    Array.init n_tasks (fun t ->
        fun () ->
          let c = Registry.Counter.v reg "par.total" in
          let h = Registry.Histogram.v reg "par.obs" in
          for _ = 1 to per_task do
            Registry.Counter.incr c;
            Registry.Histogram.observe h 1.0
          done;
          Registry.Gauge.set
            (Registry.Gauge.v reg (Printf.sprintf "par.task%d" t))
            (float_of_int (t + 1));
          t)
  in
  let results = Because_stats.Parallel.run_tasks ~jobs:4 tasks in
  Alcotest.(check (list int)) "results in slot order"
    (List.init n_tasks Fun.id)
    (Array.to_list results);
  let s = Registry.snapshot reg in
  Alcotest.(check (option int)) "counter exact across domains"
    (Some (n_tasks * per_task))
    (Snapshot.counter s "par.total");
  (match Snapshot.hist s "par.obs" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "hist count exact" (n_tasks * per_task)
        h.Snapshot.count);
  for t = 0 to n_tasks - 1 do
    Alcotest.(check (option (float 0.0)))
      (Printf.sprintf "task gauge %d" t)
      (Some (float_of_int (t + 1)))
      (Snapshot.gauge s (Printf.sprintf "par.task%d" t))
  done

(* --- exporters --- *)

let sample_snapshot () =
  let reg = Registry.create () in
  Registry.Counter.add (Registry.Counter.v reg "sim.events") 123;
  Registry.Gauge.set (Registry.Gauge.v reg "sim.shard0.events") 123.0;
  let h = Registry.Histogram.v reg "sim.shard_events" in
  Registry.Histogram.observe h 123.0;
  ignore (Registry.Span.with_ reg ~name:"campaign.sim" (fun () -> ()));
  Registry.snapshot reg

let test_exporters () =
  let s = sample_snapshot () in
  let manifest =
    Tel.Manifest.make ~seed:7 ~params:[ ("cycles", "2") ] ()
  in
  let json = Tel.Export.to_json ~manifest s in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json schema" true
    (contains json "\"schema\": \"because-telemetry/1\"");
  Alcotest.(check bool) "json counter" true
    (contains json "\"sim.events\": 123");
  Alcotest.(check bool) "json manifest seed" true
    (contains json "\"seed\": 7");
  let prom = Tel.Export.to_prometheus s in
  Alcotest.(check string) "prom name sanitized"
    "because_sim_shard0_events"
    (Tel.Export.prom_name "sim.shard0.events");
  Alcotest.(check bool) "prom counter line" true
    (contains prom "because_sim_events_total 123");
  Alcotest.(check bool) "prom histogram +Inf" true
    (contains prom "because_sim_shard_events_bucket{le=\"+Inf\"} 1");
  let trace = Tel.Export.to_chrome_trace s in
  Alcotest.(check bool) "trace events" true (contains trace "\"traceEvents\"");
  Alcotest.(check bool) "trace complete event" true
    (contains trace "\"ph\": \"X\"");
  Alcotest.(check bool) "trace span name" true
    (contains trace "\"name\": \"campaign.sim\"");
  Alcotest.(check bool) "manifest json escapes" true
    (Tel.Manifest.json_escape "a\"b\\c\nd" = "a\\\"b\\\\c\\nd")

(* --- zero-cost-when-off: full campaign bit-for-bit --- *)

let tiny_world_params seed =
  {
    Sc.World.default_params with
    seed;
    n_vantage_hosts = 10;
    topology =
      { Because_topology.Generate.default_params with
        n_transit = 12; n_stub = 30 };
  }

let fast_params telemetry =
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  { p with
    Sc.Campaign.cycles = 1;
    sim_jobs = 2;
    telemetry;
    infer_config =
      { Because.Infer.default_config with n_samples = 120; burn_in = 80 } }

(* Everything downstream of the RNG streams, flattened to plain values so
   structural equality is meaningful. *)
let fingerprint (o : Sc.Campaign.outcome) =
  ( List.map
      (fun (lp : Because_labeling.Label.labeled_path) ->
        ( lp.Because_labeling.Label.vp.Because_collector.Vantage.vp_id,
          Prefix.to_string lp.Because_labeling.Label.prefix,
          List.map Asn.to_int lp.Because_labeling.Label.path,
          lp.Because_labeling.Label.rfd ))
      o.Sc.Campaign.labeled,
    List.map
      (fun (a, c) -> (Asn.to_int a, Because.Categorize.to_int c))
      o.Sc.Campaign.categories,
    ( o.Sc.Campaign.deliveries,
      o.Sc.Campaign.events,
      Array.to_list o.Sc.Campaign.shard_events ),
    o.Sc.Campaign.warnings )

let qcheck_campaign_identical_with_telemetry =
  QCheck.Test.make ~name:"telemetry off vs on: campaign bit-for-bit" ~count:2
    QCheck.(int_range 1 1000)
    (fun seed ->
      let world = Sc.World.build (tiny_world_params seed) in
      let off = Sc.Campaign.run world (fast_params Registry.disabled) in
      let reg = Registry.create () in
      let on = Sc.Campaign.run world (fast_params reg) in
      fingerprint off = fingerprint on
      && off.Sc.Campaign.telemetry = None
      && on.Sc.Campaign.telemetry <> None)

let test_campaign_snapshot_contents () =
  let world = Sc.World.build (tiny_world_params 11) in
  let reg = Registry.create () in
  let o = Sc.Campaign.run world (fast_params reg) in
  match o.Sc.Campaign.telemetry with
  | None -> Alcotest.fail "telemetry snapshot missing"
  | Some s ->
      Alcotest.(check (option int)) "sim.events matches outcome"
        (Some o.Sc.Campaign.events)
        (Snapshot.counter s "sim.events");
      Alcotest.(check (option int)) "deliveries counter matches"
        (Some o.Sc.Campaign.deliveries)
        (Snapshot.counter s "sim.deliveries");
      let cfg = (fast_params reg).Sc.Campaign.infer_config in
      let sweeps =
        cfg.Because.Infer.burn_in
        + (cfg.Because.Infer.n_samples * cfg.Because.Infer.thin)
      in
      (* MH + HMC, one chain each. *)
      Alcotest.(check (option int)) "mcmc.sweeps" (Some (2 * sweeps))
        (Snapshot.counter s "mcmc.sweeps");
      let has_span name =
        List.exists (fun (sp : Snapshot.span) -> sp.Snapshot.name = name)
          s.Snapshot.spans
      in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " span present") true (has_span n))
        [ "campaign.stimulus"; "campaign.sim"; "sim.shard0.replay";
          "sim.shard1.replay"; "sim.merge"; "campaign.collect";
          "campaign.label"; "campaign.infer"; "infer.MH.chain0";
          "infer.HMC.chain0" ];
      (* Shard gauges sum to the event total even though each was written
         from a different worker domain. *)
      let shard_sum =
        match
          ( Snapshot.gauge s "sim.shard0.events",
            Snapshot.gauge s "sim.shard1.events" )
        with
        | Some a, Some b -> int_of_float (a +. b)
        | _ -> -1
      in
      Alcotest.(check int) "shard gauges sum to total" o.Sc.Campaign.events
        shard_sum

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "counter, gauge, histogram" `Quick
        test_counter_gauge_hist;
      Alcotest.test_case "disabled registry is inert" `Quick
        test_disabled_is_inert;
      Alcotest.test_case "span ring overflow" `Quick test_spans_and_overflow;
      QCheck_alcotest.to_alcotest qcheck_merge_associative;
      Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
      Alcotest.test_case "aggregation under work-stealing" `Quick
        test_parallel_aggregation;
      Alcotest.test_case "exporters" `Quick test_exporters;
      QCheck_alcotest.to_alcotest qcheck_campaign_identical_with_telemetry;
      Alcotest.test_case "campaign snapshot contents" `Quick
        test_campaign_snapshot_contents;
    ] )
