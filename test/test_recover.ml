(* Durable checkpoint/resume and chain supervision.

   The heart of this suite is the crash property: a campaign killed at an
   arbitrary checkpoint save and then resumed must produce the bit-for-bit
   outcome of the uninterrupted run — chains compared draw-by-draw at the
   IEEE bit level, everything else by Marshal image — for sequential and
   parallel configurations alike. *)

module Codec = Because_recover.Codec
module Checkpoint = Because_recover.Checkpoint
module Supervise = Because_recover.Supervise
module Sampler_state = Because_recover.Sampler_state
module Chain = Because_mcmc.Chain
module Target = Because_mcmc.Target
module Metropolis = Because_mcmc.Metropolis
module Hmc = Because_mcmc.Hmc
module Gibbs = Because_mcmc.Gibbs
module Sc = Because_scenario
module Rng = Because_stats.Rng
module Dist = Because_stats.Dist

(* ------------------------------------------------------------------ *)
(* Codec primitives                                                     *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.u8 w 0;
  Codec.u8 w 255;
  Codec.int w min_int;
  Codec.int w max_int;
  Codec.i64 w Int64.min_int;
  Codec.float w Float.nan;
  Codec.float w Float.neg_infinity;
  Codec.float w (-0.0);
  Codec.bool w true;
  Codec.string w "";
  Codec.string w "hello \x00 world";
  Codec.option w Codec.int None;
  Codec.option w Codec.int (Some 17);
  Codec.list w Codec.float [ 1.5; -2.25 ];
  Codec.float_array w [| 0.1; Float.infinity |];
  Codec.int_array w [| -1; 0; 1 |];
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check int) "u8 lo" 0 (Codec.read_u8 r);
  Alcotest.(check int) "u8 hi" 255 (Codec.read_u8 r);
  Alcotest.(check int) "min_int" min_int (Codec.read_int r);
  Alcotest.(check int) "max_int" max_int (Codec.read_int r);
  Alcotest.(check int64) "i64" Int64.min_int (Codec.read_i64 r);
  Alcotest.(check bool) "nan bits survive" true
    (Int64.equal
       (Int64.bits_of_float Float.nan)
       (Int64.bits_of_float (Codec.read_float r)));
  Alcotest.(check (float 0.0)) "-inf" Float.neg_infinity (Codec.read_float r);
  Alcotest.(check bool) "-0. bits survive" true
    (Int64.equal (Int64.bits_of_float (-0.0))
       (Int64.bits_of_float (Codec.read_float r)));
  Alcotest.(check bool) "bool" true (Codec.read_bool r);
  Alcotest.(check string) "empty string" "" (Codec.read_string r);
  Alcotest.(check string) "binary string" "hello \x00 world"
    (Codec.read_string r);
  Alcotest.(check (option int)) "none" None (Codec.read_option r Codec.read_int);
  Alcotest.(check (option int)) "some" (Some 17)
    (Codec.read_option r Codec.read_int);
  Alcotest.(check (list (float 0.0))) "list" [ 1.5; -2.25 ]
    (Codec.read_list r Codec.read_float);
  Alcotest.(check (array (float 0.0))) "float array" [| 0.1; Float.infinity |]
    (Codec.read_float_array r);
  Alcotest.(check (array int)) "int array" [| -1; 0; 1 |]
    (Codec.read_int_array r);
  Codec.expect_end r

let test_codec_truncation () =
  let w = Codec.writer () in
  Codec.i64 w 42L;
  let body = Codec.contents w in
  let truncated = String.sub body 0 (String.length body - 1) in
  (match Codec.read_i64 (Codec.reader truncated) with
  | _ -> Alcotest.fail "read past end"
  | exception Codec.Malformed _ -> ());
  let r = Codec.reader body in
  ignore (Codec.read_i64 r);
  Codec.expect_end r;
  let r2 = Codec.reader body in
  match Codec.expect_end r2 with
  | () -> Alcotest.fail "expect_end accepted trailing bytes"
  | exception Codec.Malformed _ -> ()

let qcheck_codec_floats =
  QCheck.Test.make ~name:"Codec float round-trips every bit pattern"
    ~count:500 QCheck.float (fun f ->
      let w = Codec.writer () in
      Codec.float w f;
      let back = Codec.read_float (Codec.reader (Codec.contents w)) in
      Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float back))

(* ------------------------------------------------------------------ *)
(* Sampler snapshot format: legacy (row-array) generation               *)

(* Snapshots written before the flat-chain change stored the kept draws as
   an array of per-draw rows under tags 0/1/2.  These tests hand-encode
   that generation byte-for-byte and check that (a) decode flattens it to
   the layout the samplers now hold in memory and (b) resuming from such a
   snapshot replays the identical trajectory. *)

let rows_of_flat ~dim flat =
  Array.init
    (Array.length flat / dim)
    (fun k -> Array.sub flat (k * dim) dim)

(* A Beta(3,2) × Beta(2,5) target on the unit box, with a gradient so the
   same fixture drives all three samplers. *)
let unit_target =
  let a = [| 3.0; 2.0 |] and b = [| 2.0; 5.0 |] in
  Target.create ~dim:2 ~support:Target.Unit_interval
    ~grad:(fun p ->
      Array.init 2 (fun i ->
          let x = Float.max 1e-9 (Float.min (1.0 -. 1e-9) p.(i)) in
          ((a.(i) -. 1.0) /. x) -. ((b.(i) -. 1.0) /. (1.0 -. x))))
    (fun p ->
      let acc = ref 0.0 in
      for i = 0 to 1 do
        acc := !acc +. Dist.beta_log_pdf ~a:a.(i) ~b:b.(i) p.(i)
      done;
      !acc)

let check_float_bits msg a b =
  Alcotest.(check int64) msg (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_flat_array msg a b =
  Alcotest.(check (array int64))
    msg
    (Array.map Int64.bits_of_float a)
    (Array.map Int64.bits_of_float b)

(* Capture the control-hook state at a given sweep of a fresh run. *)
let capture_at capture_sweep run =
  let captured = ref None in
  let control ~sweep ~state =
    if sweep = capture_sweep then captured := Some (state ())
  in
  let result = run ~control in
  match !captured with
  | Some s -> (s, result)
  | None -> Alcotest.failf "control hook never reached sweep %d" capture_sweep

let test_legacy_mh_snapshot () =
  let n_samples = 40 and burn_in = 20 in
  let run ~control =
    Metropolis.run_single_site ~rng:(Rng.create 5) ~control ~n_samples
      ~burn_in unit_target
  in
  (* Sweep 35 = burn-in done, 15 draws kept: a mid-stream snapshot. *)
  let st, full = capture_at 35 run in
  Alcotest.(check bool) "snapshot holds draws" true
    (Array.length st.Metropolis.s_kept > 0);
  let encode_legacy (s : Metropolis.state) =
    let w = Codec.writer () in
    Codec.u8 w 0;
    Codec.int w s.s_sweep;
    Codec.string w s.s_rng;
    Codec.float_array w s.s_current;
    Codec.float_array w s.s_steps;
    Codec.float w s.s_log_post;
    Codec.int_array w s.s_accept_window;
    Codec.array w Codec.float_array (rows_of_flat ~dim:2 s.s_kept);
    Codec.int w s.s_accepted_post;
    Codec.int w s.s_proposed_post;
    Codec.option w Codec.float_array s.s_cache;
    Codec.contents w
  in
  let decoded =
    match Sampler_state.decode (Codec.reader (encode_legacy st)) with
    | Sampler_state.Mh s -> s
    | _ -> Alcotest.fail "legacy tag 0 did not decode to Mh"
  in
  Alcotest.(check int) "sweep" st.Metropolis.s_sweep decoded.Metropolis.s_sweep;
  Alcotest.(check string) "rng" st.Metropolis.s_rng decoded.Metropolis.s_rng;
  check_flat_array "current" st.Metropolis.s_current
    decoded.Metropolis.s_current;
  check_flat_array "steps" st.Metropolis.s_steps decoded.Metropolis.s_steps;
  check_float_bits "log_post" st.Metropolis.s_log_post
    decoded.Metropolis.s_log_post;
  check_flat_array "kept draws flattened row-major" st.Metropolis.s_kept
    decoded.Metropolis.s_kept;
  Alcotest.(check int) "draws_kept" 15
    (Sampler_state.draws_kept (Sampler_state.Mh decoded));
  (* Resume from the pre-flat snapshot: the finished chain must be
     bit-for-bit the uninterrupted one. *)
  let resumed =
    Metropolis.run_single_site ~rng:(Rng.create 0) ~resume:decoded ~n_samples
      ~burn_in unit_target
  in
  Alcotest.(check bool) "resumed chain bit-for-bit" true
    (Chain.equal full.Metropolis.chain resumed.Metropolis.chain);
  check_float_bits "resumed acceptance" full.Metropolis.acceptance
    resumed.Metropolis.acceptance;
  (* A burn-in-era legacy snapshot has zero rows: must flatten to [||]. *)
  let early, _ = capture_at 5 run in
  Alcotest.(check int) "no draws yet" 0 (Array.length early.Metropolis.s_kept);
  match Sampler_state.decode (Codec.reader (encode_legacy early)) with
  | Sampler_state.Mh s ->
      Alcotest.(check int) "empty rows flatten to empty" 0
        (Array.length s.Metropolis.s_kept)
  | _ -> Alcotest.fail "legacy tag 0 did not decode to Mh"

let test_legacy_hmc_snapshot () =
  let n_samples = 20 and burn_in = 10 in
  let run ~control =
    Hmc.run ~rng:(Rng.create 7) ~control ~n_samples ~burn_in
      ~leapfrog_steps:5 unit_target
  in
  let st, full = capture_at 18 run in
  Alcotest.(check bool) "snapshot holds draws" true
    (Array.length st.Hmc.s_kept > 0);
  let w = Codec.writer () in
  Codec.u8 w 1;
  Codec.int w st.Hmc.s_iter;
  Codec.string w st.Hmc.s_rng;
  Codec.float_array w st.Hmc.s_position;
  Codec.float w st.Hmc.s_step;
  Codec.float w st.Hmc.s_log_post;
  Codec.int w st.Hmc.s_accept_window;
  Codec.array w Codec.float_array (rows_of_flat ~dim:2 st.Hmc.s_kept);
  Codec.int w st.Hmc.s_accepted_post;
  Codec.int w st.Hmc.s_proposed_post;
  let decoded =
    match Sampler_state.decode (Codec.reader (Codec.contents w)) with
    | Sampler_state.Hmc s -> s
    | _ -> Alcotest.fail "legacy tag 1 did not decode to Hmc"
  in
  check_flat_array "kept draws flattened row-major" st.Hmc.s_kept
    decoded.Hmc.s_kept;
  check_flat_array "position" st.Hmc.s_position decoded.Hmc.s_position;
  check_float_bits "step" st.Hmc.s_step decoded.Hmc.s_step;
  let resumed =
    Hmc.run ~rng:(Rng.create 0) ~resume:decoded ~n_samples ~burn_in
      ~leapfrog_steps:5 unit_target
  in
  Alcotest.(check bool) "resumed chain bit-for-bit" true
    (Chain.equal full.Hmc.chain resumed.Hmc.chain)

let test_legacy_gibbs_snapshot () =
  let n_samples = 20 and burn_in = 5 in
  let run ~control =
    Gibbs.run ~rng:(Rng.create 11) ~control ~n_samples ~burn_in unit_target
  in
  let st, full = capture_at 15 run in
  Alcotest.(check bool) "snapshot holds draws" true
    (Array.length st.Gibbs.s_kept > 0);
  let w = Codec.writer () in
  Codec.u8 w 2;
  Codec.int w st.Gibbs.s_sweep;
  Codec.string w st.Gibbs.s_rng;
  Codec.float_array w st.Gibbs.s_current;
  Codec.array w Codec.float_array (rows_of_flat ~dim:2 st.Gibbs.s_kept);
  Codec.int w st.Gibbs.s_moved_sweeps;
  Codec.option w Codec.float_array st.Gibbs.s_cache;
  let decoded =
    match Sampler_state.decode (Codec.reader (Codec.contents w)) with
    | Sampler_state.Gibbs s -> s
    | _ -> Alcotest.fail "legacy tag 2 did not decode to Gibbs"
  in
  check_flat_array "kept draws flattened row-major" st.Gibbs.s_kept
    decoded.Gibbs.s_kept;
  let resumed =
    Gibbs.run ~rng:(Rng.create 0) ~resume:decoded ~n_samples ~burn_in
      unit_target
  in
  Alcotest.(check bool) "resumed chain bit-for-bit" true
    (Chain.equal full.Gibbs.chain resumed.Gibbs.chain)

let test_sampler_state_flat_roundtrip () =
  (* The current generation: encode always writes flat tags, and the
     round-trip is the identity on every field. *)
  let run ~control =
    Metropolis.run_single_site ~rng:(Rng.create 13) ~control ~n_samples:30
      ~burn_in:10 unit_target
  in
  let st, _ = capture_at 25 run in
  let w = Codec.writer () in
  Sampler_state.encode w (Sampler_state.Mh st);
  let body = Codec.contents w in
  Alcotest.(check int) "written with flat tag" 3
    (Char.code body.[0]);
  let r = Codec.reader body in
  (match Sampler_state.decode r with
  | Sampler_state.Mh s ->
      check_flat_array "kept" st.Metropolis.s_kept s.Metropolis.s_kept;
      Alcotest.(check string) "rng" st.Metropolis.s_rng s.Metropolis.s_rng
  | _ -> Alcotest.fail "flat tag 3 did not decode to Mh");
  Codec.expect_end r;
  (* Unknown future tags are rejected, not misparsed. *)
  let w2 = Codec.writer () in
  Codec.u8 w2 9;
  match Sampler_state.decode (Codec.reader (Codec.contents w2)) with
  | _ -> Alcotest.fail "unknown tag accepted"
  | exception Codec.Malformed _ -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint store                                                     *)

(* A unique, not-yet-existing directory name per call (temp_file reserves
   the name; the store creates the directory on open). *)
let fresh_dir () =
  let f = Filename.temp_file "because-recover" ".ckdir" in
  Sys.remove f;
  f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let test_store_roundtrip () =
  let dir = fresh_dir () in
  let store = Checkpoint.open_ ~dir ~fingerprint:"fp-1" () in
  Checkpoint.save store ~key:"alpha/beta" "payload-1";
  Checkpoint.save store ~key:"alpha/beta" "payload-2";
  Alcotest.(check (option string)) "latest wins" (Some "payload-2")
    (Checkpoint.load store ~key:"alpha/beta");
  Alcotest.(check (option string)) "missing key" None
    (Checkpoint.load store ~key:"gamma");
  (* Re-open with the same fingerprint: snapshots survive. *)
  let store2 = Checkpoint.open_ ~dir ~fingerprint:"fp-1" () in
  Alcotest.(check (option string)) "reopen" (Some "payload-2")
    (Checkpoint.load store2 ~key:"alpha/beta")

let corrupt_file path =
  let body = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string body in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x5a));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b)

let test_store_corruption_falls_back () =
  let dir = fresh_dir () in
  let store = Checkpoint.open_ ~dir ~fingerprint:"fp-c" () in
  Checkpoint.save store ~key:"k" "old";
  Checkpoint.save store ~key:"k" "new";
  (* Corrupt the latest snapshot on disk; load must detect it via CRC,
     quarantine it and fall back to the previous one — with a warning,
     never a crash or a silent wrong answer. *)
  corrupt_file (Filename.concat dir "k.ck");
  let store2 = Checkpoint.open_ ~dir ~fingerprint:"fp-c" () in
  Alcotest.(check (option string)) "previous snapshot recovered" (Some "old")
    (Checkpoint.load store2 ~key:"k");
  Alcotest.(check bool) "fallback counted" true
    (Checkpoint.fallbacks store2 > 0);
  Alcotest.(check bool) "warning recorded" true
    (Checkpoint.warnings store2 <> []);
  Alcotest.(check bool) "corrupt file quarantined" true
    (List.exists
       (fun f -> contains ~sub:"corrupt" f)
       (Array.to_list (Sys.readdir dir)))

let test_store_fingerprint_mismatch () =
  let dir = fresh_dir () in
  let store = Checkpoint.open_ ~dir ~fingerprint:"fp-old" () in
  Checkpoint.save store ~key:"k" "stale";
  let store2 = Checkpoint.open_ ~dir ~fingerprint:"fp-new" () in
  Alcotest.(check (option string)) "stale snapshot not loadable" None
    (Checkpoint.load store2 ~key:"k");
  Alcotest.(check bool) "mismatch warned" true
    (Checkpoint.warnings store2 <> [])

let test_store_wrong_key_rejected () =
  let dir = fresh_dir () in
  let store = Checkpoint.open_ ~dir ~fingerprint:"fp-k" () in
  Checkpoint.save store ~key:"a" "va";
  (* Copy a's snapshot over b's slot: the envelope carries the key, so the
     load must reject the transplant. *)
  let a_file = Filename.concat dir "a.ck" in
  let b_file = Filename.concat dir "b.ck" in
  let body = In_channel.with_open_bin a_file In_channel.input_all in
  Out_channel.with_open_bin b_file (fun oc ->
      Out_channel.output_string oc body);
  Alcotest.(check (option string)) "transplanted snapshot rejected" None
    (Checkpoint.load store ~key:"b")

(* ------------------------------------------------------------------ *)
(* Supervision                                                          *)

let test_supervise_sweep_budget_exact () =
  let token =
    Supervise.start ~label:"t"
      { Supervise.deadline_s = None; max_sweeps = Some 5 }
  in
  for _ = 1 to 4 do
    Supervise.tick token
  done;
  match Supervise.tick token with
  | () -> Alcotest.fail "budget not enforced"
  | exception Supervise.Aborted msg ->
      Alcotest.(check bool) "labelled" true
        (String.length msg > 0 && String.sub msg 0 1 = "t")

let test_supervise_backoff () =
  Alcotest.(check (float 1e-9)) "attempt 0" 0.0
    (Supervise.backoff_s ~attempt:0 ~base_s:0.01);
  Alcotest.(check (float 1e-9)) "attempt 1" 0.02
    (Supervise.backoff_s ~attempt:1 ~base_s:0.01);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.04
    (Supervise.backoff_s ~attempt:2 ~base_s:0.01);
  Alcotest.(check (float 1e-9)) "capped at 1s" 1.0
    (Supervise.backoff_s ~attempt:30 ~base_s:0.01)

let test_exit_codes () =
  Alcotest.(check int) "healthy" 0 (Supervise.exit_code Supervise.Healthy);
  Alcotest.(check int) "degraded" 3
    (Supervise.exit_code (Supervise.Degraded [ "r" ]));
  Alcotest.(check int) "insufficient" 4
    (Supervise.exit_code (Supervise.Insufficient [ "r" ]))

(* ------------------------------------------------------------------ *)
(* Campaign kill-and-resume                                             *)

let mini_world =
  lazy
    (Sc.World.build
       {
         Sc.World.default_params with
         n_vantage_hosts = 8;
         topology =
           { Because_topology.Generate.default_params with
             n_transit = 12; n_stub = 30 };
       })

let mini_params ~jobs ~sim_jobs =
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  let p =
    { p with
      Sc.Campaign.cycles = 1;
      infer_config =
        { p.Sc.Campaign.infer_config with
          Because.Infer.n_samples = 120; burn_in = 80 } }
  in
  Sc.Campaign.with_jobs ~sim_jobs p jobs

(* Everything result-bearing and Marshal-safe in one digest; chains and
   acceptance rates compared separately at the IEEE bit level.  No_sharing
   because checkpoint decode rebuilds structurally-equal values without the
   original physical sharing (an update delivered to several vantages is
   one block in a live run, several after a round-trip) and the comparison
   must be structural. *)
let outcome_digest (o : Sc.Campaign.outcome) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( o.Sc.Campaign.records, o.Sc.Campaign.labeled,
            o.Sc.Campaign.windows, o.Sc.Campaign.oscillating,
            o.Sc.Campaign.anchors, o.Sc.Campaign.categories_step1,
            o.Sc.Campaign.categories, o.Sc.Campaign.promotions,
            o.Sc.Campaign.heuristic_verdicts, o.Sc.Campaign.deliveries,
            o.Sc.Campaign.events, o.Sc.Campaign.fault_log,
            o.Sc.Campaign.insufficient, o.Sc.Campaign.warnings,
            o.Sc.Campaign.status )
          [ Marshal.No_sharing ]))

let runs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ra : Because.Infer.sampler_run) (rb : Because.Infer.sampler_run) ->
         String.equal ra.Because.Infer.name rb.Because.Infer.name
         && ra.Because.Infer.chain_index = rb.Because.Infer.chain_index
         && Int64.equal
              (Int64.bits_of_float ra.Because.Infer.acceptance)
              (Int64.bits_of_float rb.Because.Infer.acceptance)
         && Chain.equal ra.Because.Infer.chain rb.Because.Infer.chain)
       a b

let check_outcomes_equal ~what a b =
  Alcotest.(check string)
    (what ^ ": outcome digest")
    (outcome_digest a) (outcome_digest b);
  match (a.Sc.Campaign.result, b.Sc.Campaign.result) with
  | None, None -> ()
  | Some ra, Some rb ->
      Alcotest.(check bool) (what ^ ": chains bit-for-bit") true
        (runs_equal ra.Because.Infer.runs rb.Because.Infer.runs);
      Alcotest.(check (list string))
        (what ^ ": infer warnings")
        ra.Because.Infer.warnings rb.Because.Infer.warnings;
      Alcotest.(check (list string))
        (what ^ ": aborted")
        ra.Because.Infer.aborted rb.Because.Infer.aborted
  | _ -> Alcotest.failf "%s: one run has a posterior, the other does not" what

(* Run the campaign with a kill armed after [kill_after] saves; a [None]
   budget completes cleanly.  Returns the outcome when the run survived. *)
let run_checkpointed ?kill_after ~resume ~dir ~jobs ~sim_jobs () =
  let recovery =
    Sc.Recovery.create ~dir ~resume ~every_sweeps:25 ?kill_after_saves:kill_after
      ()
  in
  let world = Lazy.force mini_world in
  match Sc.Campaign.run ~recovery world (mini_params ~jobs ~sim_jobs) with
  | outcome -> Some (outcome, recovery)
  | exception Sc.Recovery.Killed -> None

let test_kill_and_resume ~jobs ~sim_jobs () =
  let clean =
    match
      Sc.Campaign.run (Lazy.force mini_world) (mini_params ~jobs ~sim_jobs)
    with
    | o -> o
  in
  (* Count the saves of an uninterrupted checkpointed run, then kill at a
     spread of save indices (first, middle, late) and resume each. *)
  let dir0 = fresh_dir () in
  let total_saves =
    match run_checkpointed ~resume:false ~dir:dir0 ~jobs ~sim_jobs () with
    | Some (full, recovery) ->
        check_outcomes_equal ~what:"checkpointing on vs off" clean full;
        Sc.Recovery.saves recovery
    | None -> Alcotest.fail "unkilled run raised Killed"
  in
  Alcotest.(check bool)
    (Printf.sprintf "enough save points to kill at (%d)" total_saves)
    true (total_saves >= 3);
  List.iter
    (fun kill_after ->
      let dir = fresh_dir () in
      (match
         run_checkpointed ~kill_after ~resume:false ~dir ~jobs ~sim_jobs ()
       with
      | None -> ()
      | Some _ -> Alcotest.failf "kill at save %d never fired" kill_after);
      match run_checkpointed ~resume:true ~dir ~jobs ~sim_jobs () with
      | None -> Alcotest.failf "resume after kill %d was killed" kill_after
      | Some (resumed, recovery) ->
          Alcotest.(check bool)
            (Printf.sprintf "kill %d: something was restored or resumable"
               kill_after)
            true
            (Sc.Recovery.restores recovery >= 0);
          check_outcomes_equal
            ~what:(Printf.sprintf "kill at save %d" kill_after)
            clean resumed)
    [ 1; total_saves / 2; total_saves - 1 ]

let qcheck_kill_any_save_point =
  (* The full property: for a random kill point and both parallelism
     shapes, interrupted-then-resumed equals uninterrupted bit-for-bit. *)
  let clean = lazy (
    Sc.Campaign.run (Lazy.force mini_world) (mini_params ~jobs:1 ~sim_jobs:1))
  in
  QCheck.Test.make ~name:"kill at a random save point, resume, bit-for-bit"
    ~count:6
    QCheck.(pair (int_range 1 12) (int_range 0 1))
    (fun (kill_after, par) ->
      let jobs = if par = 1 then 4 else 1 in
      let sim_jobs = jobs in
      let dir = fresh_dir () in
      match
        run_checkpointed ~kill_after ~resume:false ~dir ~jobs ~sim_jobs ()
      with
      | Some (outcome, _) ->
          (* Kill point beyond the run's total saves: completed normally —
             must still equal the clean run. *)
          outcome_digest outcome = outcome_digest (Lazy.force clean)
      | None -> (
          match run_checkpointed ~resume:true ~dir ~jobs ~sim_jobs () with
          | None -> false
          | Some (resumed, _) ->
              let c = Lazy.force clean in
              outcome_digest resumed = outcome_digest c
              &&
              (match (resumed.Sc.Campaign.result, c.Sc.Campaign.result) with
              | Some ra, Some rb ->
                  runs_equal ra.Because.Infer.runs rb.Because.Infer.runs
              | None, None -> true
              | _ -> false)))

let test_corrupted_checkpoint_recovers () =
  let dir = fresh_dir () in
  let clean =
    match run_checkpointed ~resume:false ~dir ~jobs:1 ~sim_jobs:1 () with
    | Some (o, _) -> o
    | None -> Alcotest.fail "clean run was killed"
  in
  (* Corrupt every snapshot of one chain (latest and previous), then
     resume: CRC detection must quarantine both, restart that chain from
     scratch, and still deliver the identical outcome plus a warning. *)
  Array.iter
    (fun f ->
      if
        Filename.check_suffix f ".ck"
        && String.length f >= 6
        && String.sub f 0 6 = "iv0.MH"
      then corrupt_file (Filename.concat dir f))
    (Sys.readdir dir);
  match run_checkpointed ~resume:true ~dir ~jobs:1 ~sim_jobs:1 () with
  | None -> Alcotest.fail "resume over corruption was killed"
  | Some (resumed, recovery) ->
      check_outcomes_equal ~what:"resume over corrupted chain snapshots"
        clean resumed;
      Alcotest.(check bool) "corruption warned" true
        (Sc.Recovery.warnings recovery <> [])

let test_budget_degrades_campaign () =
  let world = Lazy.force mini_world in
  let p = mini_params ~jobs:1 ~sim_jobs:1 in
  let p =
    { p with
      Sc.Campaign.infer_config =
        { p.Sc.Campaign.infer_config with
          Because.Infer.supervise =
            { Supervise.deadline_s = None; max_sweeps = Some 40 } } }
  in
  let outcome = Sc.Campaign.run world p in
  (match outcome.Sc.Campaign.status with
  | Supervise.Degraded reasons ->
      Alcotest.(check bool) "reasons name the budget" true
        (List.exists (contains ~sub:"budget") reasons)
  | s -> Alcotest.failf "expected Degraded, got %s" (Supervise.status_label s));
  Alcotest.(check int) "degraded exit code" 3
    (Supervise.exit_code outcome.Sc.Campaign.status);
  (* Heuristic localization still works on the degraded outcome. *)
  Alcotest.(check bool) "heuristic verdicts survive" true
    (outcome.Sc.Campaign.heuristic_verdicts <> [])

let test_resume_with_different_jobs () =
  (* Checkpoints carry exact RNG stream state, so a resume may change the
     worker count freely — outcomes are jobs-invariant either way. *)
  let clean =
    Sc.Campaign.run (Lazy.force mini_world) (mini_params ~jobs:1 ~sim_jobs:1)
  in
  let dir = fresh_dir () in
  (match
     run_checkpointed ~kill_after:3 ~resume:false ~dir ~jobs:1 ~sim_jobs:1 ()
   with
  | None -> ()
  | Some _ -> Alcotest.fail "kill never fired");
  match run_checkpointed ~resume:true ~dir ~jobs:4 ~sim_jobs:4 () with
  | None -> Alcotest.fail "resume was killed"
  | Some (resumed, _) ->
      check_outcomes_equal ~what:"resume under different parallelism" clean
        resumed

let test_shard_result_codec_roundtrip () =
  let sr =
    {
      Because_sim.Sharded.shard_feeds =
        Because_sim.Sharded.Feeds_mem
        [
          ( Because_bgp.Asn.of_int 65001,
            [
              ( 12.5,
                Because_bgp.Update.Announce
                  {
                    prefix = Because_bgp.Prefix.make 0x0A000000l 24;
                    as_path =
                      [ Because_bgp.Asn.of_int 65001;
                        Because_bgp.Asn.of_int 65002 ];
                    aggregator =
                      Some
                        {
                          Because_bgp.Update.aggregator_asn =
                            Because_bgp.Asn.of_int 65002;
                          sent_at = 12.25;
                          valid = true;
                        };
                  } );
              ( 99.75,
                Because_bgp.Update.Withdraw
                  { prefix = Because_bgp.Prefix.make 0x0A000000l 24 } );
            ] );
        ];
      shard_stats =
        {
          Because_sim.Network.deliveries = 7;
          announcements = 3;
          withdrawals = 2;
          lost = 1;
          duplicated = 0;
          session_drops = 4;
          session_recoveries = 4;
        };
      shard_fault_log =
        [
          ( 5.0,
            Because_sim.Network.Fault_session_down
              {
                owner = Because_bgp.Asn.of_int 65001;
                peer = Because_bgp.Asn.of_int 65002;
                reason = "reset";
              } );
          ( 6.0,
            Because_sim.Network.Fault_update_lost
              {
                from_asn = Because_bgp.Asn.of_int 65002;
                to_asn = Because_bgp.Asn.of_int 65003;
              } );
        ];
      shard_events_count = 42;
    }
  in
  let back = Sc.Recovery.decode_shard_result (Sc.Recovery.encode_shard_result sr) in
  Alcotest.(check string) "shard_result round-trips"
    (Digest.to_hex (Digest.string (Marshal.to_string sr [ Marshal.No_sharing ])))
    (Digest.to_hex (Digest.string (Marshal.to_string back [ Marshal.No_sharing ])))

let suite =
  ( "recover",
    [
      Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
      Alcotest.test_case "codec truncation detected" `Quick
        test_codec_truncation;
      QCheck_alcotest.to_alcotest qcheck_codec_floats;
      Alcotest.test_case "legacy MH snapshot decodes and resumes" `Quick
        test_legacy_mh_snapshot;
      Alcotest.test_case "legacy HMC snapshot decodes and resumes" `Quick
        test_legacy_hmc_snapshot;
      Alcotest.test_case "legacy Gibbs snapshot decodes and resumes" `Quick
        test_legacy_gibbs_snapshot;
      Alcotest.test_case "flat sampler snapshot round-trip" `Quick
        test_sampler_state_flat_roundtrip;
      Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
      Alcotest.test_case "store corruption falls back" `Quick
        test_store_corruption_falls_back;
      Alcotest.test_case "store fingerprint mismatch" `Quick
        test_store_fingerprint_mismatch;
      Alcotest.test_case "store rejects transplanted key" `Quick
        test_store_wrong_key_rejected;
      Alcotest.test_case "sweep budget exact" `Quick
        test_supervise_sweep_budget_exact;
      Alcotest.test_case "backoff schedule" `Quick test_supervise_backoff;
      Alcotest.test_case "exit codes 0/3/4" `Quick test_exit_codes;
      Alcotest.test_case "shard_result codec round-trip" `Quick
        test_shard_result_codec_roundtrip;
      Alcotest.test_case "kill and resume (sequential)" `Slow
        (test_kill_and_resume ~jobs:1 ~sim_jobs:1);
      Alcotest.test_case "kill and resume (4 jobs)" `Slow
        (test_kill_and_resume ~jobs:4 ~sim_jobs:4);
      QCheck_alcotest.to_alcotest qcheck_kill_any_save_point;
      Alcotest.test_case "corrupted chain snapshot recovers" `Slow
        test_corrupted_checkpoint_recovers;
      Alcotest.test_case "budget degrades, exit 3" `Slow
        test_budget_degrades_campaign;
      Alcotest.test_case "resume under different parallelism" `Slow
        test_resume_with_different_jobs;
    ] )
