open Because_bgp
module Path_ratio = Because_heuristics.Path_ratio
module Alt_paths = Because_heuristics.Alt_paths
module Burst_slope = Because_heuristics.Burst_slope
module Combine = Because_heuristics.Combine
module Label = Because_labeling.Label
module Vantage = Because_collector.Vantage
module Dump = Because_collector.Dump

let asn = Asn.of_int
let path ints = List.map asn ints

let test_path_ratio () =
  let obs =
    [ (path [ 1; 2 ], true); (path [ 1; 3 ], true); (path [ 1; 4 ], false);
      (path [ 5; 4 ], false) ]
  in
  let scores = Path_ratio.scores obs in
  let s i = Asn.Map.find (asn i) scores in
  Alcotest.(check (float 1e-9)) "AS1 two thirds" (2.0 /. 3.0) (s 1);
  Alcotest.(check (float 1e-9)) "AS2 full" 1.0 (s 2);
  Alcotest.(check (float 1e-9)) "AS4 zero" 0.0 (s 4);
  Alcotest.(check (float 1e-9)) "AS5 zero" 0.0 (s 5)

let test_path_ratio_prepending_safe () =
  (* An AS appearing twice on one path counts once. *)
  let obs = [ (path [ 1; 1; 2 ], true) ] in
  let scores = Path_ratio.scores obs in
  Alcotest.(check (float 1e-9)) "counted once" 1.0 (Asn.Map.find (asn 1) scores)

let vp = Vantage.make ~vp_id:0 ~host_asn:(asn 9) ~project:Because_collector.Project.Isolario
let prefix = Prefix.of_string "10.0.1.0/24"

let labeled ~rfd ~p ~alternatives =
  {
    Label.prefix;
    vp;
    path = path p;
    rfd;
    matched_pairs = (if rfd then 2 else 0);
    total_pairs = 2;
    pairs = [];
    mean_r_delta = None;
    alternatives = List.map path alternatives;
  }

let test_alt_paths () =
  (* Damped path through AS7; both alternatives avoid AS7 but use AS8. *)
  let lps =
    [
      labeled ~rfd:true ~p:[ 9; 7; 1 ] ~alternatives:[ [ 9; 8; 1 ]; [ 9; 8; 2; 1 ] ];
      labeled ~rfd:false ~p:[ 9; 8; 1 ] ~alternatives:[];
    ]
  in
  let scores = Alt_paths.scores lps in
  let s i = Asn.Map.find (asn i) scores in
  Alcotest.(check (float 1e-9)) "damper avoided on all alternatives" 1.0 (s 7);
  (* AS9 (the vantage host) is on every alternative. *)
  Alcotest.(check (float 1e-9)) "host never avoided" 0.0 (s 9);
  (* AS8 not on any damped primary: default 0. *)
  Alcotest.(check (float 1e-9)) "clean AS defaults to 0" 0.0 (s 8)

let test_alt_paths_no_alternatives () =
  let lps = [ labeled ~rfd:true ~p:[ 9; 7; 1 ] ~alternatives:[] ] in
  let scores = Alt_paths.scores lps in
  Alcotest.(check (float 1e-9)) "no alternatives → 0" 0.0
    (Asn.Map.find (asn 7) scores)

let test_burst_slope_scores () =
  (* A histogram that dies out scores ~1; flat scores 0. *)
  let dying = Array.init 40 (fun i -> Float.max 0.0 (20.0 -. float_of_int i)) in
  Alcotest.(check bool) "dying scores high" true
    (Burst_slope.score_of_histogram dying > 0.8);
  let flat = Array.make 40 5.0 in
  Alcotest.(check (float 1e-9)) "flat scores 0" 0.0
    (Burst_slope.score_of_histogram flat);
  let sparse = Array.make 40 0.1 in
  Alcotest.(check (float 1e-9)) "too little data scores 0" 0.0
    (Burst_slope.score_of_histogram sparse);
  let rising = Array.init 40 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "rising clamps to 0" 0.0
    (Burst_slope.score_of_histogram rising)

let record t p =
  {
    Dump.received_at = t;
    export_at = t;
    vp;
    update =
      Update.Announce
        {
          prefix;
          as_path = path p;
          aggregator =
            Some { Update.aggregator_asn = asn 1; sent_at = t; valid = true };
        };
  }

let test_burst_slope_histograms () =
  (* Burst [0, 400): AS7's announcements stop halfway, AS8's run through. *)
  let records =
    List.init 20 (fun k -> record (float_of_int k *. 10.0) [ 9; 7; 1 ])
    @ List.init 40 (fun k -> record (float_of_int k *. 10.0) [ 9; 8; 1 ])
  in
  let windows_of p = if Prefix.equal p prefix then [ (0.0, 400.0, 800.0) ] else [] in
  let scores = Burst_slope.scores ~records ~windows_of in
  let s i = Asn.Map.find (asn i) scores in
  Alcotest.(check bool)
    (Printf.sprintf "AS7 dies out (%.2f)" (s 7))
    true (s 7 > 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "AS8 stays flat (%.2f)" (s 8))
    true (s 8 < 0.2)

let test_combine () =
  let records =
    List.init 10 (fun k -> record (float_of_int k *. 10.0) [ 9; 7; 1 ])
    @ List.init 40 (fun k -> record (float_of_int k *. 10.0) [ 9; 8; 1 ])
  in
  let windows_of p = if Prefix.equal p prefix then [ (0.0, 400.0, 800.0) ] else [] in
  let lps =
    [
      labeled ~rfd:true ~p:[ 9; 7; 1 ] ~alternatives:[ [ 9; 8; 1 ] ];
      labeled ~rfd:false ~p:[ 9; 8; 1 ] ~alternatives:[ [ 9; 7; 1 ] ];
    ]
  in
  let verdicts = Combine.evaluate ~records ~labeled:lps ~windows_of () in
  let v7 = List.find (fun v -> Asn.equal v.Combine.asn (asn 7)) verdicts in
  let v8 = List.find (fun v -> Asn.equal v.Combine.asn (asn 8)) verdicts in
  Alcotest.(check (float 1e-9)) "m1 of damper" 1.0 v7.Combine.m1;
  Alcotest.(check bool) "damper scores above clean" true
    (v7.Combine.combined > v8.Combine.combined);
  Alcotest.(check bool) "sorted descending" true
    (List.for_all2
       (fun a b -> a.Combine.combined >= b.Combine.combined)
       (List.filteri (fun i _ -> i < List.length verdicts - 1) verdicts)
       (List.tl verdicts));
  Alcotest.(check (float 1e-9)) "combined is the mean"
    ((v7.Combine.m1 +. v7.Combine.m2 +. v7.Combine.m3) /. 3.0)
    v7.Combine.combined

let test_damping_set_threshold () =
  let records = [] in
  let windows_of _ = [] in
  let lps =
    [ labeled ~rfd:true ~p:[ 7 ] ~alternatives:[] ] (* m1(7) = 1.0 *)
  in
  let verdicts = Combine.evaluate ~threshold:0.3 ~records ~labeled:lps ~windows_of () in
  let s = Combine.damping_set verdicts in
  Alcotest.(check (list int)) "threshold applied" [ 7 ]
    (List.map Asn.to_int (Asn.Set.elements s))

let suite =
  ( "heuristics",
    [
      Alcotest.test_case "M1 path ratio" `Quick test_path_ratio;
      Alcotest.test_case "M1 prepending safe" `Quick test_path_ratio_prepending_safe;
      Alcotest.test_case "M2 alternative paths" `Quick test_alt_paths;
      Alcotest.test_case "M2 no alternatives" `Quick test_alt_paths_no_alternatives;
      Alcotest.test_case "M3 score shapes" `Quick test_burst_slope_scores;
      Alcotest.test_case "M3 histograms" `Quick test_burst_slope_histograms;
      Alcotest.test_case "combine" `Quick test_combine;
      Alcotest.test_case "damping set threshold" `Quick test_damping_set_threshold;
    ] )
