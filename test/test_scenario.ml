open Because_bgp
module Sc = Because_scenario
module Graph = Because_topology.Graph
module Rng = Because_stats.Rng

let small_world_params =
  {
    Sc.World.default_params with
    n_vantage_hosts = 20;
    topology =
      { Because_topology.Generate.default_params with
        n_transit = 25; n_stub = 80 };
  }

let world = lazy (Sc.World.build small_world_params)

let test_world_construction () =
  let w = Lazy.force world in
  let g = Sc.World.graph w in
  Alcotest.(check int) "ASes = topology + 7 origins" (8 + 25 + 80 + 7)
    (Graph.size g);
  Alcotest.(check int) "7 sites" 7 (List.length (Sc.World.site_origins w));
  List.iter
    (fun (_, origin) ->
      Alcotest.(check bool) "origin has providers" true
        (Graph.degree g origin >= 1))
    (Sc.World.site_origins w)

let test_origins_and_upstreams_clean () =
  let w = Lazy.force world in
  let dep = Sc.World.deployment w in
  let dampers = Sc.Deployment.dampers dep in
  List.iter
    (fun (_, origin) ->
      Alcotest.(check bool) "origin never damps" false
        (Asn.Set.mem origin dampers))
    (Sc.World.site_origins w);
  Asn.Set.iter
    (fun upstream ->
      Alcotest.(check bool)
        (Printf.sprintf "upstream %s never damps" (Asn.to_string upstream))
        false
        (Asn.Set.mem upstream dampers))
    (Sc.World.origin_upstreams w)

let test_deployment_share () =
  let w = Lazy.force world in
  let dep = Sc.World.deployment w in
  let n_dampers = Asn.Set.cardinal (Sc.Deployment.dampers dep) in
  let n_total = Graph.size (Sc.World.graph w) in
  let share = float_of_int n_dampers /. float_of_int n_total in
  Alcotest.(check bool)
    (Printf.sprintf "~9%% dampers (got %.3f)" share)
    true
    (share > 0.04 && share < 0.16);
  Alcotest.(check bool) "detectable subset" true
    (Asn.Set.subset (Sc.Deployment.detectable_dampers dep)
       (Sc.Deployment.dampers dep))

let test_inconsistent_damper_planted () =
  let w = Lazy.force world in
  let dep = Sc.World.deployment w in
  match Sc.Deployment.inconsistent dep with
  | None -> Alcotest.fail "expected an inconsistent damper"
  | Some (damper, spared) ->
      Alcotest.(check bool) "damper registered" true
        (Asn.Set.mem damper (Sc.Deployment.dampers dep));
      (match Sc.Deployment.scope_of dep damper with
      | Policy.All_except set ->
          Alcotest.(check bool) "spares exactly the spared" true
            (Asn.Set.equal set (Asn.Set.singleton spared))
      | _ -> Alcotest.fail "wrong scope");
      (* spared is a real neighbor *)
      Alcotest.(check bool) "spared is a neighbor" true
        (Graph.has_link (Sc.World.graph w) damper spared)

let test_vendor_mix () =
  let w = Lazy.force world in
  let dep = Sc.World.deployment w in
  let cisco = Sc.Deployment.vendor_share dep Sc.Deployment.Cisco in
  let juniper = Sc.Deployment.vendor_share dep Sc.Deployment.Juniper in
  let recommended = Sc.Deployment.vendor_share dep Sc.Deployment.Recommended in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 (cisco +. juniper +. recommended);
  Alcotest.(check bool)
    (Printf.sprintf "vendor defaults dominate (%.2f)" (cisco +. juniper))
    true
    (cisco +. juniper > 0.35)

let test_operator_families_release_times () =
  (* The Fig. 13 mechanism: after a 2-hour Burst of 1-minute flapping, each
     operator family releases ~ its max-suppress-time after the Burst end. *)
  List.iter
    (fun (vendor, max_suppress) ->
      let params = Sc.Deployment.operator_params vendor max_suppress in
      let state = Rfd.create params in
      let burst_end = 7200.0 in
      let t = ref 0.0 and w = ref true in
      while !t <= burst_end do
        Rfd.record state ~now:!t
          (if !w then Rfd.Withdrawal else Rfd.Readvertisement);
        w := not !w;
        t := !t +. 60.0
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%.0f suppressed at burst end"
           (Format.asprintf "%a" Sc.Deployment.pp_vendor vendor)
           max_suppress)
        true
        (Rfd.suppressed state ~now:burst_end);
      let eta = Option.get (Rfd.reuse_eta state ~now:burst_end) in
      let release_minutes = (eta -. burst_end) /. 60.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s release %.1f min vs %.0f min"
           (Format.asprintf "%a" Sc.Deployment.pp_vendor vendor)
           release_minutes max_suppress)
        true
        (Float.abs (release_minutes -. max_suppress) < 1.5))
    [
      (Sc.Deployment.Cisco, 10.0);
      (Sc.Deployment.Cisco, 30.0);
      (Sc.Deployment.Cisco, 60.0);
      (Sc.Deployment.Juniper, 10.0);
      (Sc.Deployment.Juniper, 30.0);
      (Sc.Deployment.Juniper, 60.0);
    ]

let test_world_determinism () =
  let w1 = Sc.World.build small_world_params in
  let w2 = Sc.World.build small_world_params in
  Alcotest.(check bool) "same dampers" true
    (Asn.Set.equal
       (Sc.Deployment.dampers (Sc.World.deployment w1))
       (Sc.Deployment.dampers (Sc.World.deployment w2)));
  Alcotest.(check int) "same vantage count"
    (List.length (Sc.World.vantages w1))
    (List.length (Sc.World.vantages w2))

let test_delay_deterministic_and_bounded () =
  let w = Lazy.force world in
  let a = Asn.of_int 100 and b = Asn.of_int 1000 in
  let d1 = Sc.World.delay w ~from_asn:a ~to_asn:b in
  let d2 = Sc.World.delay w ~from_asn:a ~to_asn:b in
  Alcotest.(check (float 0.0)) "stable" d1 d2;
  Alcotest.(check bool) "bounded" true
    (d1 >= small_world_params.Sc.World.link_delay_min
    && d1 <= small_world_params.Sc.World.link_delay_max)

let fast_campaign =
  lazy
    (let w = Lazy.force world in
     let p = Sc.Campaign.default_params ~update_interval:60.0 in
     let p =
       { p with
         Sc.Campaign.cycles = 2;
         infer_config =
           { Because.Infer.default_config with n_samples = 400; burn_in = 300 } }
     in
     Sc.Campaign.run w p)

let test_campaign_produces_labels () =
  let o = Lazy.force fast_campaign in
  Alcotest.(check bool) "records" true (o.Sc.Campaign.records <> []);
  Alcotest.(check bool) "labeled paths" true (o.Sc.Campaign.labeled <> []);
  let rfd_paths =
    List.filter (fun (lp : Because_labeling.Label.labeled_path) -> lp.rfd)
      o.Sc.Campaign.labeled
  in
  Alcotest.(check bool) "some paths damped" true (rfd_paths <> [])

let test_campaign_windows () =
  let o = Lazy.force fast_campaign in
  Alcotest.(check int) "cycles windows" 2 (List.length o.Sc.Campaign.windows);
  Prefix.Set.iter
    (fun p ->
      Alcotest.(check int) "oscillating windows" 2
        (List.length (Sc.Campaign.windows_of o p)))
    o.Sc.Campaign.oscillating;
  Prefix.Set.iter
    (fun p ->
      Alcotest.(check int) "anchors have no windows" 0
        (List.length (Sc.Campaign.windows_of o p)))
    o.Sc.Campaign.anchors

let test_campaign_inference_quality () =
  let w = Lazy.force world in
  let o = Lazy.force fast_campaign in
  let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment w) in
  let universe = Sc.Campaign.universe o in
  let m =
    Because.Evaluate.of_sets ~predicted:(Sc.Campaign.because_damping o) ~truth
      ~universe
  in
  Alcotest.(check bool)
    (Printf.sprintf "precision decent (%.2f)" m.Because.Evaluate.precision)
    true
    (m.Because.Evaluate.precision >= 0.6);
  Alcotest.(check bool)
    (Printf.sprintf "recall decent (%.2f)" m.Because.Evaluate.recall)
    true
    (m.Because.Evaluate.recall >= 0.35)

let test_campaign_no_deployment_no_rfd () =
  let clean_params =
    { small_world_params with
      deployment =
        { Sc.Deployment.default_spec with
          damping_share = 0.0; stub_damping_share = 0.0;
          inconsistent_damper = false } }
  in
  let w = Sc.World.build clean_params in
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  let p = { p with Sc.Campaign.cycles = 2; run_inference = false } in
  let o = Sc.Campaign.run w p in
  let rfd_paths =
    List.filter (fun (lp : Because_labeling.Label.labeled_path) -> lp.rfd)
      o.Sc.Campaign.labeled
  in
  Alcotest.(check (list string)) "no damping, no RFD labels" []
    (List.map
       (fun (lp : Because_labeling.Label.labeled_path) ->
         String.concat " " (List.map Asn.to_string lp.path))
       rfd_paths)

let test_run_multi_matches_single () =
  (* A multi-interval campaign yields one outcome per interval with the
     right prefixes, windows and per-interval parameters. *)
  let w = Lazy.force world in
  let p = Sc.Campaign.default_params ~update_interval:0.0 in
  let p = { p with Sc.Campaign.cycles = 2; run_inference = false } in
  let outcomes = Sc.Campaign.run_multi w p ~intervals:[ 60.0; 300.0 ] in
  Alcotest.(check int) "one outcome per interval" 2 (List.length outcomes);
  List.iter2
    (fun interval (o : Sc.Campaign.outcome) ->
      Alcotest.(check (float 0.0)) "interval recorded" interval
        o.Sc.Campaign.params.Sc.Campaign.update_interval;
      Alcotest.(check int) "7 oscillating prefixes" 7
        (Prefix.Set.cardinal o.Sc.Campaign.oscillating);
      Alcotest.(check bool) "labeled something" true
        (o.Sc.Campaign.labeled <> []))
    [ 60.0; 300.0 ] outcomes;
  (match outcomes with
  | [ a; b ] ->
      Alcotest.(check bool) "records shared" true
        (List.length a.Sc.Campaign.records = List.length b.Sc.Campaign.records);
      Alcotest.(check bool) "disjoint oscillating sets" true
        (Prefix.Set.is_empty
           (Prefix.Set.inter a.Sc.Campaign.oscillating
              b.Sc.Campaign.oscillating))
  | _ -> Alcotest.fail "expected two outcomes");
  Alcotest.(check bool) "duplicate intervals rejected" true
    (try ignore (Sc.Campaign.run_multi w p ~intervals:[ 60.0; 60.0 ]); false
     with Invalid_argument _ -> true)

let test_propagation_samples () =
  let o = Lazy.force fast_campaign in
  let anchors = Sc.Campaign.propagation_samples o ~role:`Anchor in
  Alcotest.(check bool) "anchor samples exist" true (Array.length anchors > 0);
  Alcotest.(check bool) "all below damping scale" true
    (Array.for_all (fun d -> d >= 0.0 && d < 300.0) anchors)

let test_campaign_deterministic () =
  (* Identical world + parameters must reproduce the exact same labels. *)
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  let p = { p with Sc.Campaign.cycles = 2; run_inference = false } in
  let run () =
    let w = Sc.World.build small_world_params in
    let o = Sc.Campaign.run w p in
    List.map
      (fun (lp : Because_labeling.Label.labeled_path) ->
        (List.map Asn.to_int lp.path, lp.rfd))
      o.Sc.Campaign.labeled
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-for-bit reproducible" true (a = b)

let test_seed_robustness () =
  (* The pipeline must work across seeds, not just the default world. *)
  List.iter
    (fun seed ->
      let w =
        Sc.World.build
          { small_world_params with Sc.World.seed; n_vantage_hosts = 25 }
      in
      let p = Sc.Campaign.default_params ~update_interval:60.0 in
      let p =
        { p with
          Sc.Campaign.cycles = 2;
          infer_config =
            { Because.Infer.default_config with n_samples = 350; burn_in = 250 } }
      in
      let o = Sc.Campaign.run w p in
      let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment w) in
      let m =
        Because.Evaluate.of_sets ~predicted:(Sc.Campaign.because_damping o)
          ~truth ~universe:(Sc.Campaign.universe o)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d precision %.2f" seed m.Because.Evaluate.precision)
        true
        (m.Because.Evaluate.precision >= 0.5);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d recall %.2f" seed m.Because.Evaluate.recall)
        true
        (m.Because.Evaluate.recall >= 0.25))
    [ 7; 99; 1234 ]

let test_sim_jobs_equivalence () =
  (* A fault-free campaign must be bit-for-bit independent of sim_jobs:
     identical dump records (times, vantage, update) and identical labels.
     Background churn is on so beacon and churn prefixes shard together. *)
  let w = Lazy.force world in
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  let p =
    { p with
      Sc.Campaign.cycles = 2;
      run_inference = false;
      background_prefixes = 5 }
  in
  let fingerprint sim_jobs =
    let o = Sc.Campaign.run w { p with Sc.Campaign.sim_jobs } in
    ( List.map
        (fun (r : Because_collector.Dump.record) ->
          ( r.Because_collector.Dump.received_at,
            r.Because_collector.Dump.export_at,
            r.Because_collector.Dump.vp.Because_collector.Vantage.vp_id,
            Format.asprintf "%a" Update.pp r.Because_collector.Dump.update ))
        o.Sc.Campaign.records,
      List.map
        (fun (lp : Because_labeling.Label.labeled_path) ->
          (List.map Asn.to_int lp.path, lp.rfd))
        o.Sc.Campaign.labeled,
      o.Sc.Campaign.deliveries )
  in
  let seq = fingerprint 1 in
  List.iter
    (fun sim_jobs ->
      let shd = fingerprint sim_jobs in
      Alcotest.(check bool)
        (Printf.sprintf "sim_jobs %d outcome identical" sim_jobs)
        true (seq = shd))
    [ 3; 8 ]

(* S1 regression: the churn space is 61440 /24s (all of 172.16/12 upward
   through 172/8), not the historical 4096 — counts past the old clamp must
   round-trip through simulation and labeling, and [Invalid_argument] fires
   only at the true wrap point. *)
let test_background_prefix_space () =
  let tiny =
    {
      Sc.World.default_params with
      n_vantage_hosts = 4;
      topology =
        { Because_topology.Generate.default_params with
          n_transit = 6; n_stub = 12 };
    }
  in
  let w = Sc.World.build tiny in
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  let p =
    { p with
      Sc.Campaign.cycles = 1;
      burst_duration = 120.0;
      break_duration = 120.0;
      lead_in = 30.0;
      anchor_period = 120.0;
      run_inference = false;
      background_prefixes = 4200;
      (* Effectively no re-flaps: each churn prefix contributes its initial
         announcement only, so 4200 of them stay fast on a tiny world. *)
      background_mean_gap = 1e9 }
  in
  let o = Sc.Campaign.run w p in
  (* The 4097th prefix onward lives past the old /12 boundary
     (172.16.0.0 + 4096 * /24 = 172.32.0.0). *)
  let old_boundary = Int32.add 0xAC100000l (Int32.shift_left 4096l 8) in
  let beyond =
    List.filter
      (fun (r : Because_collector.Dump.record) ->
        let net =
          Prefix.network (Update.prefix r.Because_collector.Dump.update)
        in
        Int32.unsigned_compare net old_boundary >= 0
        && Int32.unsigned_compare net 0xAD000000l < 0)
      o.Sc.Campaign.records
  in
  Alcotest.(check bool) "records beyond the old 4096-prefix clamp" true
    (beyond <> []);
  Alcotest.(check bool) "labeling still produces paths" true
    (o.Sc.Campaign.labeled <> []);
  Alcotest.(check bool) "count above the true wrap point rejected" true
    (try
       ignore (Sc.Campaign.run w { p with Sc.Campaign.background_prefixes = 61441 });
       false
     with Invalid_argument _ -> true)

(* Spilled feeds must leave a campaign's outcome untouched: same records,
   same labels, same delivery count — only where the feeds lived differs. *)
let test_campaign_feed_spill_invariant () =
  let w = Lazy.force world in
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  let p =
    { p with
      Sc.Campaign.cycles = 2;
      run_inference = false;
      background_prefixes = 5 }
  in
  let fingerprint p =
    let o = Sc.Campaign.run w p in
    ( List.map
        (fun (r : Because_collector.Dump.record) ->
          ( r.Because_collector.Dump.received_at,
            r.Because_collector.Dump.export_at,
            r.Because_collector.Dump.vp.Because_collector.Vantage.vp_id,
            Format.asprintf "%a" Update.pp r.Because_collector.Dump.update ))
        o.Sc.Campaign.records,
      List.map
        (fun (lp : Because_labeling.Label.labeled_path) ->
          (List.map Asn.to_int lp.path, lp.rfd))
        o.Sc.Campaign.labeled,
      o.Sc.Campaign.deliveries )
  in
  let mem = fingerprint p in
  let dir = Filename.temp_file "because-test-campaign-spill" ".dir" in
  Sys.remove dir;
  let spilled =
    fingerprint
      { p with
        Sc.Campaign.feed_spill_dir = Some dir;
        feed_buffer = 7;
        sim_shards = Some 4;
        sim_jobs = 2 }
  in
  Alcotest.(check bool) "spilled campaign outcome identical" true
    (mem = spilled)

let test_site_of_prefix () =
  let o = Lazy.force fast_campaign in
  let some_osc = Prefix.Set.min_elt o.Sc.Campaign.oscillating in
  Alcotest.(check bool) "oscillating maps to a site" true
    (Sc.Campaign.site_of_prefix o some_osc <> None);
  Alcotest.(check (option int)) "foreign prefix maps nowhere" None
    (Sc.Campaign.site_of_prefix o (Prefix.of_string "192.0.2.0/24"))

let suite =
  ( "scenario",
    [
      Alcotest.test_case "world construction" `Quick test_world_construction;
      Alcotest.test_case "origins clean" `Quick test_origins_and_upstreams_clean;
      Alcotest.test_case "deployment share" `Quick test_deployment_share;
      Alcotest.test_case "inconsistent damper" `Quick
        test_inconsistent_damper_planted;
      Alcotest.test_case "vendor mix" `Quick test_vendor_mix;
      Alcotest.test_case "operator families release at max-suppress" `Quick
        test_operator_families_release_times;
      Alcotest.test_case "world determinism" `Quick test_world_determinism;
      Alcotest.test_case "delay deterministic" `Quick
        test_delay_deterministic_and_bounded;
      Alcotest.test_case "campaign labels" `Slow test_campaign_produces_labels;
      Alcotest.test_case "campaign windows" `Slow test_campaign_windows;
      Alcotest.test_case "campaign inference quality" `Slow
        test_campaign_inference_quality;
      Alcotest.test_case "clean world stays clean" `Slow
        test_campaign_no_deployment_no_rfd;
      Alcotest.test_case "run_multi" `Slow test_run_multi_matches_single;
      Alcotest.test_case "seed robustness" `Slow test_seed_robustness;
      Alcotest.test_case "campaign determinism" `Slow test_campaign_deterministic;
      Alcotest.test_case "propagation samples" `Slow test_propagation_samples;
      Alcotest.test_case "sim_jobs equivalence" `Slow test_sim_jobs_equivalence;
      Alcotest.test_case "background prefix space" `Quick
        test_background_prefix_space;
      Alcotest.test_case "feed spill invariant" `Slow
        test_campaign_feed_spill_invariant;
      Alcotest.test_case "site of prefix" `Slow test_site_of_prefix;
    ] )
