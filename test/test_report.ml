open Because_bgp
module Sc = Because_scenario

let asn = Asn.of_int
let path ints = List.map asn ints

let test_links_of_path () =
  let links = Sc.Report.links_of_path (path [ 3; 1; 2 ]) in
  Alcotest.(check (list (pair int int))) "ordered pairs"
    [ (1, 3); (1, 2) ]
    (List.map (fun (a, b) -> (Asn.to_int a, Asn.to_int b)) links);
  Alcotest.(check (list (pair int int))) "single AS has no links" []
    (List.map (fun (a, b) -> (Asn.to_int a, Asn.to_int b))
       (Sc.Report.links_of_path (path [ 7 ])))

let test_plateau_mass () =
  let deltas = [| 600.0; 620.0; 1800.0; 3600.0; 3660.0 |] in
  Alcotest.(check (float 1e-9)) "10min plateau" 0.4
    (Sc.Report.plateau_mass deltas ~minutes:10.0 ~tolerance:1.0);
  Alcotest.(check (float 1e-9)) "30min plateau" 0.2
    (Sc.Report.plateau_mass deltas ~minutes:30.0 ~tolerance:1.0);
  Alcotest.(check (float 1e-9)) "60min plateau" 0.4
    (Sc.Report.plateau_mass deltas ~minutes:60.0 ~tolerance:1.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Sc.Report.plateau_mass [||] ~minutes:10.0 ~tolerance:1.0)

let test_link_encode_decode () =
  let link = (asn 1021, asn 300) in
  let node = Sc.Link_tomography.encode link in
  Alcotest.(check bool) "marked as link node" true
    (Sc.Link_tomography.is_link_node node);
  let a, b = Sc.Link_tomography.decode node in
  Alcotest.(check (pair int int)) "roundtrip (ordered)" (300, 1021)
    (Asn.to_int a, Asn.to_int b);
  Alcotest.(check bool) "plain ASN is not a link node" false
    (Sc.Link_tomography.is_link_node (asn 64000));
  Alcotest.(check bool) "oversized endpoint rejected" true
    (try ignore (Sc.Link_tomography.encode (asn 70000, asn 1)); false
     with Invalid_argument _ -> true)

let test_link_observations () =
  let obs = [ (path [ 1; 2; 3 ], true); (path [ 9 ], false) ] in
  match Sc.Link_tomography.observations obs with
  | [ (links, label) ] ->
      Alcotest.(check bool) "label preserved" true label;
      Alcotest.(check int) "two links" 2 (List.length links);
      Alcotest.(check bool) "all link nodes" true
        (List.for_all Sc.Link_tomography.is_link_node links)
  | l -> Alcotest.failf "expected one link path, got %d" (List.length l)

let test_median_incidence () =
  let obs =
    [ (path [ 1; 2 ], false); (path [ 1; 3 ], false); (path [ 1; 4 ], true) ]
  in
  (* AS1 on 3 paths, AS2/3/4 on 1 each: median 1. *)
  Alcotest.(check (float 1e-9)) "median" 1.0
    (Sc.Link_tomography.median_incidence obs)

let suite =
  ( "report",
    [
      Alcotest.test_case "links of path" `Quick test_links_of_path;
      Alcotest.test_case "plateau mass" `Quick test_plateau_mass;
      Alcotest.test_case "link encode/decode" `Quick test_link_encode_decode;
      Alcotest.test_case "link observations" `Quick test_link_observations;
      Alcotest.test_case "median incidence" `Quick test_median_incidence;
    ] )
