open Because_bgp
module Graph = Because_topology.Graph
module Generate = Because_topology.Generate
module Rng = Because_stats.Rng

let asn = Asn.of_int

let small_graph () =
  let g = Graph.create () in
  Graph.add_as g (asn 1) Graph.Tier1;
  Graph.add_as g (asn 2) Graph.Transit;
  Graph.add_as g (asn 3) Graph.Stub;
  Graph.add_customer_link g ~provider:(asn 1) ~customer:(asn 2);
  Graph.add_customer_link g ~provider:(asn 2) ~customer:(asn 3);
  g

let test_graph_basics () =
  let g = small_graph () in
  Alcotest.(check int) "size" 3 (Graph.size g);
  Alcotest.(check int) "links" 2 (Graph.link_count g);
  Alcotest.(check bool) "has link" true (Graph.has_link g (asn 1) (asn 2));
  Alcotest.(check bool) "symmetric" true (Graph.has_link g (asn 2) (asn 1));
  Alcotest.(check bool) "no link" false (Graph.has_link g (asn 1) (asn 3))

let test_graph_relationship_orientation () =
  let g = small_graph () in
  (* From AS1's perspective, AS2 is a customer; from AS2's, AS1 a provider. *)
  (match Graph.neighbors g (asn 1) with
  | [ (n, rel) ] ->
      Alcotest.(check int) "neighbor" 2 (Asn.to_int n);
      Alcotest.(check bool) "customer" true
        (Policy.relationship_equal rel Policy.Customer)
  | _ -> Alcotest.fail "tier1 neighbors");
  let rel_to_1 =
    List.assoc (asn 1) (Graph.neighbors g (asn 2))
  in
  Alcotest.(check bool) "provider" true
    (Policy.relationship_equal rel_to_1 Policy.Provider)

let test_graph_duplicates_rejected () =
  let g = small_graph () in
  Alcotest.(check bool) "dup AS" true
    (try Graph.add_as g (asn 1) Graph.Stub; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "dup link" true
    (try Graph.add_customer_link g ~provider:(asn 1) ~customer:(asn 2); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "self link" true
    (try Graph.add_peer_link g (asn 1) (asn 1); false
     with Invalid_argument _ -> true)

let test_customer_cone () =
  let g = small_graph () in
  Alcotest.(check int) "tier1 cone" 2 (Graph.customer_cone_size g (asn 1));
  Alcotest.(check int) "transit cone" 1 (Graph.customer_cone_size g (asn 2));
  Alcotest.(check int) "stub cone" 0 (Graph.customer_cone_size g (asn 3))

let test_links_undirected () =
  let g = small_graph () in
  let links = Graph.links g in
  Alcotest.(check int) "each link once" 2 (List.length links);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "ordered" true (Asn.compare a b < 0))
    links

let params =
  { Generate.default_params with n_tier1 = 5; n_transit = 20; n_stub = 60 }

let test_generate_sizes () =
  let g = Generate.generate (Rng.create 7) params in
  Alcotest.(check int) "total" 85 (Graph.size g);
  Alcotest.(check int) "tier1" 5 (List.length (Generate.tier1_asns g));
  Alcotest.(check int) "transit" 20 (List.length (Generate.transit_asns g));
  Alcotest.(check int) "stub" 60 (List.length (Generate.stub_asns g))

let test_generate_tier1_clique () =
  let g = Generate.generate (Rng.create 7) params in
  let tier1 = Generate.tier1_asns g in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Asn.equal a b) then begin
            Alcotest.(check bool) "clique link" true (Graph.has_link g a b);
            let rel = List.assoc b (Graph.neighbors g a) in
            Alcotest.(check bool) "peers" true
              (Policy.relationship_equal rel Policy.Peer)
          end)
        tier1)
    tier1

let test_generate_everyone_has_provider () =
  let g = Generate.generate (Rng.create 7) params in
  List.iter
    (fun a ->
      let has_provider =
        List.exists
          (fun (_, rel) -> Policy.relationship_equal rel Policy.Provider)
          (Graph.neighbors g a)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a provider" (Asn.to_string a))
        true has_provider)
    (Generate.transit_asns g @ Generate.stub_asns g)

let test_generate_deterministic () =
  let g1 = Generate.generate (Rng.create 9) params in
  let g2 = Generate.generate (Rng.create 9) params in
  Alcotest.(check int) "same link count" (Graph.link_count g1)
    (Graph.link_count g2);
  let l1 = List.map (fun (a, b) -> (Asn.to_int a, Asn.to_int b)) (Graph.links g1) in
  let l2 = List.map (fun (a, b) -> (Asn.to_int a, Asn.to_int b)) (Graph.links g2) in
  Alcotest.(check (list (pair int int))) "same links"
    (List.sort compare l1) (List.sort compare l2)

let test_generate_seed_sensitivity () =
  let g1 = Generate.generate (Rng.create 9) params in
  let g2 = Generate.generate (Rng.create 10) params in
  let l g = List.sort compare (List.map (fun (a, b) -> (Asn.to_int a, Asn.to_int b)) (Graph.links g)) in
  Alcotest.(check bool) "different seeds differ" false (l g1 = l g2)

let test_heavy_tail () =
  (* Preferential attachment should concentrate cones: the largest transit
     cone dwarfs the median. *)
  let g = Generate.generate (Rng.create 21) Generate.default_params in
  let cones =
    List.map (fun a -> Graph.customer_cone_size g a) (Generate.transit_asns g)
  in
  let sorted = List.sort (fun a b -> Int.compare b a) cones in
  let biggest = List.hd sorted in
  let median = List.nth sorted (List.length sorted / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "cone skew (max %d, median %d)" biggest median)
    true
    (biggest >= 4 * Stdlib.max 1 median)

let suite =
  ( "topology",
    [
      Alcotest.test_case "graph basics" `Quick test_graph_basics;
      Alcotest.test_case "relationship orientation" `Quick
        test_graph_relationship_orientation;
      Alcotest.test_case "duplicates rejected" `Quick
        test_graph_duplicates_rejected;
      Alcotest.test_case "customer cone" `Quick test_customer_cone;
      Alcotest.test_case "links undirected" `Quick test_links_undirected;
      Alcotest.test_case "generate sizes" `Quick test_generate_sizes;
      Alcotest.test_case "tier1 clique" `Quick test_generate_tier1_clique;
      Alcotest.test_case "providers everywhere" `Quick
        test_generate_everyone_has_provider;
      Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
      Alcotest.test_case "seed sensitivity" `Quick test_generate_seed_sensitivity;
      Alcotest.test_case "heavy-tailed cones" `Quick test_heavy_tail;
    ] )
