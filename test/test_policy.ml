open Because_bgp

let asn = Asn.of_int

let test_local_pref_order () =
  Alcotest.(check bool) "customer > peer" true
    (Policy.local_pref Policy.Customer > Policy.local_pref Policy.Peer);
  Alcotest.(check bool) "peer > provider" true
    (Policy.local_pref Policy.Peer > Policy.local_pref Policy.Provider)

let test_flip () =
  Alcotest.(check bool) "customer<->provider" true
    (Policy.relationship_equal (Policy.flip Policy.Customer) Policy.Provider);
  Alcotest.(check bool) "provider<->customer" true
    (Policy.relationship_equal (Policy.flip Policy.Provider) Policy.Customer);
  Alcotest.(check bool) "peer fixed" true
    (Policy.relationship_equal (Policy.flip Policy.Peer) Policy.Peer)

let test_export_valley_free () =
  let ok = Policy.export_ok in
  (* Self-originated: to everyone. *)
  List.iter
    (fun towards ->
      Alcotest.(check bool) "self to all" true (ok ~learned_from:None ~towards))
    [ Policy.Customer; Policy.Peer; Policy.Provider ];
  (* Customer-learned: to everyone. *)
  List.iter
    (fun towards ->
      Alcotest.(check bool) "customer to all" true
        (ok ~learned_from:(Some Policy.Customer) ~towards))
    [ Policy.Customer; Policy.Peer; Policy.Provider ];
  (* Peer-learned: only to customers. *)
  Alcotest.(check bool) "peer to customer" true
    (ok ~learned_from:(Some Policy.Peer) ~towards:Policy.Customer);
  Alcotest.(check bool) "peer to peer" false
    (ok ~learned_from:(Some Policy.Peer) ~towards:Policy.Peer);
  Alcotest.(check bool) "peer to provider" false
    (ok ~learned_from:(Some Policy.Peer) ~towards:Policy.Provider);
  (* Provider-learned: only to customers. *)
  Alcotest.(check bool) "provider to customer" true
    (ok ~learned_from:(Some Policy.Provider) ~towards:Policy.Customer);
  Alcotest.(check bool) "provider to peer" false
    (ok ~learned_from:(Some Policy.Provider) ~towards:Policy.Peer);
  Alcotest.(check bool) "provider to provider" false
    (ok ~learned_from:(Some Policy.Provider) ~towards:Policy.Provider)

let test_rfd_scopes () =
  let applies scope n rel = Policy.rfd_applies scope ~neighbor:(asn n) ~relationship:rel in
  Alcotest.(check bool) "no_rfd" false (applies Policy.No_rfd 1 Policy.Customer);
  Alcotest.(check bool) "all" true (applies Policy.All_neighbors 1 Policy.Provider);
  Alcotest.(check bool) "only customers: customer" true
    (applies Policy.Only_customers 1 Policy.Customer);
  Alcotest.(check bool) "only customers: peer" false
    (applies Policy.Only_customers 1 Policy.Peer);
  let set = Asn.Set.singleton (asn 7) in
  Alcotest.(check bool) "only set: member" true
    (applies (Policy.Only_neighbors set) 7 Policy.Peer);
  Alcotest.(check bool) "only set: other" false
    (applies (Policy.Only_neighbors set) 8 Policy.Peer);
  Alcotest.(check bool) "except: spared" false
    (applies (Policy.All_except set) 7 Policy.Peer);
  Alcotest.(check bool) "except: others" true
    (applies (Policy.All_except set) 8 Policy.Peer)

let test_scope_is_damping () =
  Alcotest.(check bool) "no_rfd" false (Policy.scope_is_damping Policy.No_rfd);
  Alcotest.(check bool) "all" true (Policy.scope_is_damping Policy.All_neighbors);
  Alcotest.(check bool) "empty only" false
    (Policy.scope_is_damping (Policy.Only_neighbors Asn.Set.empty));
  Alcotest.(check bool) "except" true
    (Policy.scope_is_damping (Policy.All_except (Asn.Set.singleton (asn 1))))

let suite =
  ( "policy",
    [
      Alcotest.test_case "local pref order" `Quick test_local_pref_order;
      Alcotest.test_case "flip" `Quick test_flip;
      Alcotest.test_case "valley-free export" `Quick test_export_valley_free;
      Alcotest.test_case "rfd scopes" `Quick test_rfd_scopes;
      Alcotest.test_case "scope_is_damping" `Quick test_scope_is_damping;
    ] )
