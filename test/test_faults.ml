(* Fault-injection subsystem: network-level session faults, fault plans and
   graceful campaign degradation. *)
open Because_bgp
module Network = Because_sim.Network
module Plan = Because_faults.Plan
module Injector = Because_faults.Injector
module Sc = Because_scenario
module Graph = Because_topology.Graph
module Rng = Because_stats.Rng

let asn = Asn.of_int
let prefix = Prefix.of_string "10.0.0.0/24"

let two_node_config =
  [
    { Router.asn = asn 65001;
      neighbors =
        [ { Router.neighbor_asn = asn 2; relationship = Policy.Provider;
            mrai = 0.0 } ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
    { Router.asn = asn 2;
      neighbors =
        [ { Router.neighbor_asn = asn 65001; relationship = Policy.Customer;
            mrai = 0.0 } ];
      rfd_scope = Policy.No_rfd; rfd_params = Rfd_params.cisco };
  ]

let two_node_net ?fault_rng () =
  Network.create ?fault_rng ~configs:two_node_config
    ~delay:(fun ~from_asn:_ ~to_asn:_ -> 1.0)
    ~monitored:(Asn.Set.singleton (asn 2))
    ()

let announces feed =
  List.filter
    (fun (_, u) -> match u with Update.Announce _ -> true | _ -> false)
    feed

let withdraws feed =
  List.filter
    (fun (_, u) -> match u with Update.Withdraw _ -> true | _ -> false)
    feed

(* --- network-level session faults --- *)

let test_session_reset_recovers () =
  let net = two_node_net () in
  Network.schedule_announce net ~time:0.0 ~origin:(asn 65001) prefix;
  Network.schedule_session_reset net ~time:50.0 ~a:(asn 65001) ~b:(asn 2);
  Network.run net ~until:2000.0;
  let feed = Network.feed net (asn 2) in
  Alcotest.(check bool) "withdrawal on session down" true
    (List.exists (fun (t, _) -> t >= 50.0 && t < 60.0) (withdraws feed));
  Alcotest.(check bool) "route re-learned after recovery" true
    (List.exists (fun (t, _) -> t > 50.0) (announces feed));
  let stats = Network.stats net in
  Alcotest.(check bool) "drops recorded" true (stats.Network.session_drops >= 1);
  Alcotest.(check bool) "recoveries recorded" true
    (stats.Network.session_recoveries >= 1);
  Alcotest.(check bool) "session re-established" true
    (Network.session_established net ~a:(asn 65001) ~b:(asn 2));
  let log = Network.fault_log net in
  let has p = List.exists (fun (_, e) -> p e) log in
  Alcotest.(check bool) "reset logged" true
    (has (function Network.Fault_session_reset _ -> true | _ -> false));
  Alcotest.(check bool) "down logged" true
    (has (function Network.Fault_session_down _ -> true | _ -> false));
  Alcotest.(check bool) "up logged" true
    (has (function Network.Fault_session_up _ -> true | _ -> false))

let test_link_flap_down_window () =
  let net = two_node_net () in
  Network.schedule_announce net ~time:0.0 ~origin:(asn 65001) prefix;
  Network.schedule_link_down net ~time:50.0 ~a:(asn 65001) ~b:(asn 2);
  Network.schedule_link_up net ~time:500.0 ~a:(asn 65001) ~b:(asn 2);
  Network.run net ~until:3000.0;
  let feed = Network.feed net (asn 2) in
  Alcotest.(check bool) "withdrawal when link fails" true
    (List.exists (fun (t, _) -> t >= 50.0 && t < 60.0) (withdraws feed));
  (* While the link is down the session cannot come back. *)
  Alcotest.(check bool) "no announcements in the down window" false
    (List.exists (fun (t, _) -> t > 60.0 && t < 500.0) (announces feed));
  Alcotest.(check bool) "route back after repair" true
    (List.exists (fun (t, _) -> t > 500.0) (announces feed));
  Alcotest.(check bool) "session up at the end" true
    (Network.session_established net ~a:(asn 65001) ~b:(asn 2))

let test_update_loss_impairment () =
  (* With 100% loss nothing survives the impaired session. *)
  let net = two_node_net ~fault_rng:(Rng.create 42) () in
  Network.set_link_impairment net ~a:(asn 65001) ~b:(asn 2) ~loss:1.0
    ~duplication:0.0;
  Network.schedule_announce net ~time:0.0 ~origin:(asn 65001) prefix;
  Network.run net ~until:100.0;
  Alcotest.(check int) "all updates lost" 0
    (List.length (Network.feed net (asn 2)));
  Alcotest.(check bool) "losses counted" true
    ((Network.stats net).Network.lost >= 1);
  Alcotest.(check bool) "losses logged" true
    (List.exists
       (fun (_, e) ->
         match e with Network.Fault_update_lost _ -> true | _ -> false)
       (Network.fault_log net))

let run_feed ~with_fault_rng =
  let net =
    if with_fault_rng then two_node_net ~fault_rng:(Rng.create 7) ()
    else two_node_net ()
  in
  Network.schedule_announce net ~time:0.0 ~origin:(asn 65001) prefix;
  Network.schedule_withdraw net ~time:100.0 ~origin:(asn 65001) prefix;
  Network.schedule_announce net ~time:200.0 ~origin:(asn 65001) prefix;
  Network.run net ~until:1000.0;
  (Network.feed net (asn 2), Network.fault_log net)

let test_no_faults_bit_for_bit () =
  (* Carrying a fault rng but injecting nothing must not disturb the run. *)
  let feed_plain, log_plain = run_feed ~with_fault_rng:false in
  let feed_armed, log_armed = run_feed ~with_fault_rng:true in
  Alcotest.(check int) "same feed length" (List.length feed_plain)
    (List.length feed_armed);
  List.iter2
    (fun (t1, u1) (t2, u2) ->
      Alcotest.(check (float 0.0)) "same timestamp" t1 t2;
      Alcotest.(check bool) "same update" true (u1 = u2))
    feed_plain feed_armed;
  Alcotest.(check int) "no fault events either way" 0
    (List.length log_plain + List.length log_armed)

(* --- fault plans --- *)

let test_draw_calm_is_empty () =
  let links = [ (asn 1, asn 2); (asn 2, asn 3) ] in
  let plan =
    Plan.draw (Rng.create 1) Plan.calm ~links ~site_ids:[ 0; 1 ]
      ~vp_ids:[ 0 ] ~horizon:1000.0
  in
  Alcotest.(check bool) "calm draws nothing" true (Plan.is_empty plan)

let qcheck_draw_deterministic_and_bounded =
  QCheck.Test.make ~name:"Plan.draw is seeded and bounded" ~count:50
    QCheck.(make Gen.(pair (int_bound 10_000) (oneofl [ Plan.mild; Plan.realistic; Plan.severe ])))
    (fun (seed, severity) ->
      let links = List.init 20 (fun i -> (asn (i + 1), asn (i + 100))) in
      let draw () =
        Plan.draw (Rng.create seed) severity ~links ~site_ids:[ 0; 1; 2 ]
          ~vp_ids:[ 0; 1; 2; 3 ] ~horizon:5000.0
      in
      let p1 = draw () and p2 = draw () in
      let same =
        Format.asprintf "%a" Plan.pp p1 = Format.asprintf "%a" Plan.pp p2
      in
      let bounded =
        List.for_all
          (function
            | Plan.Session_reset { at; _ } -> at >= 0.0 && at < 5000.0
            | Plan.Link_flap { down_at; duration; _ } ->
                down_at >= 0.0 && down_at < 5000.0 && duration >= 0.0
            | Plan.Site_outage { from_; _ } | Plan.Collector_outage { from_; _ }
              ->
                from_ >= 0.0 && from_ < 5000.0
            | Plan.Session_impairment { loss; duplication; _ } ->
                loss >= 0.0 && loss <= 1.0 && duplication >= 0.0
                && duplication <= 1.0)
          (Plan.specs p1)
      in
      same && bounded)

(* --- campaigns under faults --- *)

let tiny_world_params =
  {
    Sc.World.default_params with
    n_vantage_hosts = 12;
    topology =
      { Because_topology.Generate.default_params with
        n_transit = 15; n_stub = 40 };
  }

let tiny_world = lazy (Sc.World.build tiny_world_params)

let fast_params () =
  let p = Sc.Campaign.default_params ~update_interval:60.0 in
  { p with
    Sc.Campaign.cycles = 2;
    infer_config =
      { Because.Infer.default_config with n_samples = 300; burn_in = 200 } }

let labels_of outcome =
  List.map
    (fun (lp : Because_labeling.Label.labeled_path) ->
      ( lp.Because_labeling.Label.vp.Because_collector.Vantage.vp_id,
        Prefix.to_string lp.Because_labeling.Label.prefix,
        List.map Asn.to_int lp.Because_labeling.Label.path,
        lp.Because_labeling.Label.rfd ))
    outcome.Sc.Campaign.labeled

let test_empty_plan_reproduces_fault_free () =
  (* Same seed, Noise.none, empty plan: the fault machinery must neither
     consume randomness nor create session records — two runs and the
     explicitly-fault-free run agree label for label. *)
  let w = Lazy.force tiny_world in
  let base =
    { (fast_params ()) with
      Sc.Campaign.noise = Because_collector.Noise.none;
      run_inference = false }
  in
  let with_empty = { base with Sc.Campaign.faults = Plan.empty } in
  let o1 = Sc.Campaign.run w base in
  let o2 = Sc.Campaign.run w with_empty in
  Alcotest.(check bool) "identical labels" true (labels_of o1 = labels_of o2);
  Alcotest.(check int) "no fault events" 0
    (List.length o2.Sc.Campaign.fault_log);
  Alcotest.(check (list string)) "no warnings" [] o2.Sc.Campaign.warnings;
  Alcotest.(check bool) "nothing insufficient" true
    (o2.Sc.Campaign.insufficient = [])

let test_faulty_campaign_degrades_gracefully () =
  let w = Lazy.force tiny_world in
  let base = fast_params () in
  let links = Graph.links (Sc.World.graph w) in
  let l1 = List.nth links 0 and l2 = List.nth links 1 in
  let site_id = fst (List.hd (Sc.World.site_origins w)) in
  let plan =
    Plan.of_specs
      [
        Plan.Session_reset { a = fst l1; b = snd l1; at = 3000.0 };
        Plan.Link_flap
          { a = fst l2; b = snd l2; down_at = 4000.0; duration = 600.0 };
        Plan.Site_outage { site_id; from_ = 2000.0; duration = 3600.0 };
        Plan.Collector_outage { vp_id = 0; from_ = 1000.0; duration = 1800.0 };
      ]
  in
  let params =
    { base with Sc.Campaign.faults = plan; min_path_support = 2 }
  in
  let o = Sc.Campaign.run w params in
  (* The pipeline completed and the outcome records every injected fault. *)
  let has p = List.exists (fun (_, e) -> p e) o.Sc.Campaign.fault_log in
  Alcotest.(check bool) "reset recorded" true
    (has (function Injector.Session_reset _ -> true | _ -> false));
  Alcotest.(check bool) "link down recorded" true
    (has (function Injector.Link_down _ -> true | _ -> false));
  Alcotest.(check bool) "link up recorded" true
    (has (function Injector.Link_up _ -> true | _ -> false));
  Alcotest.(check bool) "site outage recorded" true
    (has (function Injector.Site_down { site_id = s } -> s = site_id | _ -> false));
  Alcotest.(check bool) "site recovery recorded" true
    (has (function Injector.Site_restored _ -> true | _ -> false));
  Alcotest.(check bool) "collector outage recorded" true
    (has (function Injector.Collector_down { vp_id } -> vp_id = 0 | _ -> false));
  Alcotest.(check bool) "collector recovery recorded" true
    (has (function Injector.Collector_restored _ -> true | _ -> false));
  (* Chronological log. *)
  let times = List.map fst o.Sc.Campaign.fault_log in
  Alcotest.(check bool) "log sorted" true
    (times = List.sort Float.compare times);
  (* Still a working measurement: labels exist and demoted ASs are C3. *)
  Alcotest.(check bool) "labeled paths survive" true
    (o.Sc.Campaign.labeled <> []);
  List.iter
    (fun a ->
      match List.assoc_opt a o.Sc.Campaign.categories with
      | Some c ->
          Alcotest.(check int)
            (Printf.sprintf "insufficient AS %s is C3" (Asn.to_string a))
            3
            (Because.Categorize.to_int c)
      | None -> Alcotest.fail "insufficient AS missing from categories")
    o.Sc.Campaign.insufficient

let test_collector_outage_truncates_feed () =
  let w = Lazy.force tiny_world in
  let base =
    { (fast_params ()) with
      Sc.Campaign.noise = Because_collector.Noise.none;
      run_inference = false }
  in
  let horizon = Sc.Campaign.horizon base in
  let plan =
    Plan.of_specs
      [ Plan.Collector_outage { vp_id = 0; from_ = 0.0; duration = horizon } ]
  in
  let o_free = Sc.Campaign.run w base in
  let o_cut =
    Sc.Campaign.run w { base with Sc.Campaign.faults = plan }
  in
  let vp0 records =
    List.length
      (List.filter
         (fun (r : Because_collector.Dump.record) ->
           r.Because_collector.Dump.vp.Because_collector.Vantage.vp_id = 0)
         records)
  in
  Alcotest.(check bool) "vantage point 0 saw records fault-free" true
    (vp0 o_free.Sc.Campaign.records > 0);
  Alcotest.(check int) "vantage point 0 silenced by the outage" 0
    (vp0 o_cut.Sc.Campaign.records)

let suite =
  ( "faults",
    [
      Alcotest.test_case "session reset recovers" `Quick
        test_session_reset_recovers;
      Alcotest.test_case "link flap window" `Quick test_link_flap_down_window;
      Alcotest.test_case "update loss" `Quick test_update_loss_impairment;
      Alcotest.test_case "no faults bit-for-bit" `Quick
        test_no_faults_bit_for_bit;
      Alcotest.test_case "calm plan empty" `Quick test_draw_calm_is_empty;
      QCheck_alcotest.to_alcotest qcheck_draw_deterministic_and_bounded;
      Alcotest.test_case "empty plan reproduces fault-free" `Quick
        test_empty_plan_reproduces_fault_free;
      Alcotest.test_case "faulty campaign degrades gracefully" `Quick
        test_faulty_campaign_degrades_gracefully;
      Alcotest.test_case "collector outage truncates feed" `Quick
        test_collector_outage_truncates_feed;
    ] )
