(* Summary, Histogram, Hdpi, Ecdf, Regression, Parallel. *)
module Summary = Because_stats.Summary
module Histogram = Because_stats.Histogram
module Hdpi = Because_stats.Hdpi
module Ecdf = Because_stats.Ecdf
module Regression = Because_stats.Regression
module Rng = Because_stats.Rng
module Dist = Because_stats.Dist

let close msg expected actual tol =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.6f, got %.6f)" msg expected actual)
    true
    (Float.abs (expected -. actual) < tol)

(* ---------------- Summary ---------------- *)

let test_mean_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  close "mean" 5.0 (Summary.mean xs) 1e-12;
  close "variance" (32.0 /. 7.0) (Summary.variance xs) 1e-12;
  close "std" (Float.sqrt (32.0 /. 7.0)) (Summary.std xs) 1e-12

let test_quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  close "q0" 1.0 (Summary.quantile xs 0.0) 1e-12;
  close "q1" 4.0 (Summary.quantile xs 1.0) 1e-12;
  close "median" 2.5 (Summary.median xs) 1e-12;
  close "q0.25" 1.75 (Summary.quantile xs 0.25) 1e-12

let test_quantile_unsorted_input () =
  let xs = [| 9.0; 1.0; 5.0 |] in
  close "median of unsorted" 5.0 (Summary.median xs) 1e-12;
  Alcotest.(check (float 0.0)) "input untouched" 9.0 xs.(0)

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  close "perfect" 1.0 (Summary.correlation xs ys) 1e-12;
  let inv = Array.map (fun x -> -.x) xs in
  close "inverse" (-1.0) (Summary.correlation xs inv) 1e-12;
  close "constant" 0.0 (Summary.correlation xs [| 1.0; 1.0; 1.0; 1.0 |]) 1e-12

(* ---------------- Histogram ---------------- *)

let test_histogram_counts () =
  let h = Histogram.of_array ~lo:0.0 ~hi:1.0 ~bins:4 [| 0.1; 0.3; 0.6; 0.9; 0.95 |] in
  Alcotest.(check (array int)) "counts" [| 1; 1; 1; 2 |] h.Histogram.counts;
  Alcotest.(check int) "total" 5 h.Histogram.total

let test_histogram_clamp () =
  let h = Histogram.of_array ~lo:0.0 ~hi:1.0 ~bins:2 [| -5.0; 5.0 |] in
  Alcotest.(check (array int)) "clamped to edges" [| 1; 1 |] h.Histogram.counts

let test_histogram_density () =
  let h = Histogram.of_array ~lo:0.0 ~hi:2.0 ~bins:4 [| 0.1; 0.6; 1.1; 1.6 |] in
  let d = Histogram.densities h in
  let integral =
    Array.fold_left (fun acc v -> acc +. (v *. Histogram.bin_width h)) 0.0 d
  in
  close "integrates to 1" 1.0 integral 1e-12

let test_histogram_mode_center () =
  let h = Histogram.of_array ~lo:0.0 ~hi:1.0 ~bins:10 [| 0.55; 0.52; 0.58; 0.1 |] in
  Alcotest.(check int) "mode bin" 5 (Histogram.mode_bin h);
  close "center of bin 5" 0.55 (Histogram.bin_center h 5) 1e-12

(* ---------------- Hdpi ---------------- *)

let test_hdpi_uniform () =
  let rng = Rng.create 42 in
  let xs = Array.init 20_000 (fun _ -> Rng.float rng) in
  let interval = Hdpi.compute ~mass:0.9 xs in
  close "width ~ mass on uniform" 0.9 (Hdpi.width interval) 0.02

let test_hdpi_point_mass () =
  let xs = Array.make 100 0.7 in
  let interval = Hdpi.compute xs in
  close "degenerate width" 0.0 (Hdpi.width interval) 1e-12;
  Alcotest.(check bool) "contains point" true (Hdpi.contains interval 0.7)

let test_hdpi_concentrated () =
  (* 95% of mass near 0.2, 5% outliers near 0.9: the interval should hug 0.2. *)
  let xs =
    Array.init 1000 (fun i ->
        if i < 950 then 0.2 +. (0.0001 *. float_of_int i) else 0.9)
  in
  let interval = Hdpi.compute ~mass:0.9 xs in
  Alcotest.(check bool) "excludes outliers" true (interval.Hdpi.hi < 0.5)

let test_hdpi_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Hdpi.compute: empty sample array")
    (fun () -> ignore (Hdpi.compute [||]))

let qcheck_hdpi_within_range =
  QCheck.Test.make ~name:"HDPI bounds lie within the sample range" ~count:150
    QCheck.(array_of_size Gen.(int_range 1 200) (float_range 0.0 1.0))
    (fun xs ->
      QCheck.assume (Array.length xs > 0);
      let interval = Hdpi.compute xs in
      let lo = Summary.min xs and hi = Summary.max xs in
      interval.Hdpi.lo >= lo -. 1e-12 && interval.Hdpi.hi <= hi +. 1e-12)

let qcheck_hdpi_covers_mass =
  QCheck.Test.make ~name:"HDPI contains at least the requested mass" ~count:100
    QCheck.(pair small_int (float_range 0.5 0.99))
    (fun (seed, mass) ->
      let rng = Rng.create (seed + 1) in
      let xs = Array.init 500 (fun _ -> Dist.beta rng ~a:2.0 ~b:3.0) in
      let interval = Hdpi.compute ~mass xs in
      let inside =
        Array.fold_left
          (fun acc x -> if Hdpi.contains interval x then acc + 1 else acc)
          0 xs
      in
      float_of_int inside /. 500.0 >= mass -. 1e-9)

(* ---------------- Ecdf ---------------- *)

let test_ecdf_eval () =
  let e = Ecdf.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  close "below" 0.0 (Ecdf.eval e 0.5) 1e-12;
  close "at 2" 0.5 (Ecdf.eval e 2.0) 1e-12;
  close "mid" 0.5 (Ecdf.eval e 2.5) 1e-12;
  close "top" 1.0 (Ecdf.eval e 4.0) 1e-12

let test_ecdf_quantile () =
  let e = Ecdf.of_array [| 10.0; 20.0; 30.0; 40.0 |] in
  close "q0.5" 20.0 (Ecdf.quantile e 0.5) 1e-12;
  close "q1" 40.0 (Ecdf.quantile e 1.0) 1e-12

let test_ecdf_series () =
  let e = Ecdf.of_array [| 0.0; 10.0 |] in
  let s = Ecdf.series ~points:11 e in
  Alcotest.(check int) "points" 11 (List.length s);
  let last_x, last_f = List.nth s 10 in
  close "last x" 10.0 last_x 1e-9;
  close "last F" 1.0 last_f 1e-12

let qcheck_ecdf_quantile_inverse =
  QCheck.Test.make ~name:"ECDF eval(quantile q) >= q" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 60) (float_range (-50.) 50.))
        (float_range 0.01 1.0))
    (fun (xs, q) ->
      QCheck.assume (Array.length xs > 0);
      let e = Ecdf.of_array xs in
      Ecdf.eval e (Ecdf.quantile e q) >= q -. 1e-9)

let qcheck_ecdf_monotone =
  QCheck.Test.make ~name:"ECDF is monotone" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
        (pair (float_range (-150.) 150.) (float_range (-150.) 150.)))
    (fun (xs, (a, b)) ->
      QCheck.assume (Array.length xs > 0);
      let e = Ecdf.of_array xs in
      let lo = Float.min a b and hi = Float.max a b in
      Ecdf.eval e lo <= Ecdf.eval e hi +. 1e-12)

(* ---------------- Regression ---------------- *)

let test_regression_exact () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (2.5 *. x) -. 1.0) xs in
  let f = Regression.fit xs ys in
  close "slope" 2.5 f.Regression.slope 1e-12;
  close "intercept" (-1.0) f.Regression.intercept 1e-12;
  close "r2" 1.0 f.Regression.r2 1e-12

let test_regression_flat () =
  let f = Regression.fit_heights [| 3.0; 3.0; 3.0; 3.0 |] in
  close "flat slope" 0.0 f.Regression.slope 1e-12;
  close "flat r2" 0.0 f.Regression.r2 1e-12

let test_relative_change () =
  let f = Regression.fit_heights [| 10.0; 8.0; 6.0; 4.0; 2.0 |] in
  (* fitted: 10 → 2 over 5 bins: relative change −0.8 *)
  close "dying" (-0.8) (Regression.relative_change f ~n:5) 1e-9

let test_regression_invalid () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Regression.fit: length mismatch") (fun () ->
      ignore (Regression.fit [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "constant x"
    (Invalid_argument "Regression.fit: constant x") (fun () ->
      ignore (Regression.fit [| 1.0; 1.0 |] [| 1.0; 2.0 |]))

(* ---------------- Parallel ---------------- *)

module Parallel = Because_stats.Parallel

let squares n = Array.init n (fun i -> (fun () -> i * i))

let test_parallel_order () =
  (* Results land in task order regardless of scheduling width. *)
  let expected = Array.init 9 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Parallel.run_tasks ~jobs (squares 9)))
    [ 1; 2; 4 ]

let test_parallel_reuse () =
  (* The shared pool survives across batches: repeated fan-outs keep
     producing correct results (the regression mode here is a worker
     wedged on a stale batch, which would hang or corrupt slot writes). *)
  for round = 1 to 20 do
    let n = 1 + (round mod 7) in
    let got = Parallel.run_tasks ~jobs:4 (squares n) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init n (fun i -> i * i))
      got
  done

let test_parallel_dedicated_pool () =
  let pool = Parallel.create ~workers:2 in
  for round = 1 to 5 do
    let got = Parallel.run pool ~jobs:2 (squares 8) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init 8 (fun i -> i * i))
      got
  done;
  Alcotest.(check bool) "never exceeds workers" true
    (Parallel.worker_count pool <= 2)

exception Task_boom of int

let test_parallel_exception () =
  (* A task exception is re-raised on the submitter; first failure wins and
     the remaining tasks are skipped, not left dangling. *)
  List.iter
    (fun jobs ->
      match
        Parallel.run_tasks ~jobs
          (Array.init 6 (fun i ->
               fun () -> if i = 3 then raise (Task_boom i) else i))
      with
      | _ -> Alcotest.failf "jobs=%d: expected Task_boom" jobs
      | exception Task_boom 3 -> ()
      | exception e ->
          Alcotest.failf "jobs=%d: wrong exception %s" jobs
            (Printexc.to_string e))
    [ 1; 4 ];
  (* Subsequent batches on the same pool still work after a failure. *)
  Alcotest.(check (array int))
    "pool usable after failure"
    (Array.init 4 (fun i -> i * i))
    (Parallel.run_tasks ~jobs:4 (squares 4))

let test_parallel_nested () =
  (* A task that itself fans out must not deadlock on the shared pool: the
     inner call finds the pool busy and takes the spawn fallback. *)
  let got =
    Parallel.run_tasks ~jobs:2
      (Array.init 3 (fun i ->
           fun () ->
             Array.fold_left ( + ) 0
               (Parallel.run_tasks ~jobs:2
                  (Array.init 4 (fun j -> fun () -> (10 * i) + j)))))
  in
  Alcotest.(check (array int))
    "nested totals"
    [| 6; 46; 86 |]
    got

let test_parallel_invalid () =
  Alcotest.check_raises "workers=0"
    (Invalid_argument "Parallel.create: workers must be positive") (fun () ->
      ignore (Parallel.create ~workers:0));
  Alcotest.check_raises "workers<0"
    (Invalid_argument "Parallel.create: workers must be positive") (fun () ->
      ignore (Parallel.create ~workers:(-3)));
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Parallel.run_tasks: jobs must be positive") (fun () ->
      ignore (Parallel.run_tasks ~jobs:0 (squares 2)));
  let pool = Parallel.create ~workers:2 in
  Alcotest.check_raises "run jobs=0"
    (Invalid_argument "Parallel.run: jobs must be positive") (fun () ->
      ignore (Parallel.run pool ~jobs:0 (squares 2)))

let test_parallel_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||]
    (Parallel.run_tasks ~jobs:4 [||]);
  Alcotest.(check (array int)) "single task" [| 7 |]
    (Parallel.run_tasks ~jobs:4 [| (fun () -> 7) |])

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean/variance" `Quick test_mean_variance;
      Alcotest.test_case "quantiles" `Quick test_quantiles;
      Alcotest.test_case "quantile unsorted" `Quick test_quantile_unsorted_input;
      Alcotest.test_case "correlation" `Quick test_correlation;
      Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
      Alcotest.test_case "histogram clamp" `Quick test_histogram_clamp;
      Alcotest.test_case "histogram density" `Quick test_histogram_density;
      Alcotest.test_case "histogram mode/center" `Quick test_histogram_mode_center;
      Alcotest.test_case "hdpi uniform" `Quick test_hdpi_uniform;
      Alcotest.test_case "hdpi point mass" `Quick test_hdpi_point_mass;
      Alcotest.test_case "hdpi concentrated" `Quick test_hdpi_concentrated;
      Alcotest.test_case "hdpi invalid" `Quick test_hdpi_invalid;
      QCheck_alcotest.to_alcotest qcheck_hdpi_covers_mass;
      QCheck_alcotest.to_alcotest qcheck_hdpi_within_range;
      Alcotest.test_case "ecdf eval" `Quick test_ecdf_eval;
      Alcotest.test_case "ecdf quantile" `Quick test_ecdf_quantile;
      Alcotest.test_case "ecdf series" `Quick test_ecdf_series;
      QCheck_alcotest.to_alcotest qcheck_ecdf_monotone;
      QCheck_alcotest.to_alcotest qcheck_ecdf_quantile_inverse;
      Alcotest.test_case "regression exact" `Quick test_regression_exact;
      Alcotest.test_case "regression flat" `Quick test_regression_flat;
      Alcotest.test_case "relative change" `Quick test_relative_change;
      Alcotest.test_case "regression invalid" `Quick test_regression_invalid;
      Alcotest.test_case "parallel order" `Quick test_parallel_order;
      Alcotest.test_case "parallel pool reuse" `Quick test_parallel_reuse;
      Alcotest.test_case "parallel dedicated pool" `Quick
        test_parallel_dedicated_pool;
      Alcotest.test_case "parallel exception" `Quick test_parallel_exception;
      Alcotest.test_case "parallel nested" `Quick test_parallel_nested;
      Alcotest.test_case "parallel invalid args" `Quick test_parallel_invalid;
      Alcotest.test_case "parallel empty/single" `Quick
        test_parallel_empty_and_single;
    ] )
