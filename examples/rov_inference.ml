(* §7 of the paper: the identical BeCAUSe algorithm, applied to a different
   AS property — RPKI Route Origin Validation.

   The paper benchmarks BeCAUSe by simulating the measurement output: real
   AS paths are labeled ROV iff a known-ROV AS sits on them (90% positive,
   no noise).  This example performs the same construction over synthetic
   topology paths and shows the characteristic outcome: perfect precision,
   recall limited by ASs "hiding" behind another ROV AS.

   Run with: dune exec examples/rov_inference.exe *)

open Because_bgp
module Rov = Because_rov.Rov

let asn = Asn.of_int
let path ints = List.map asn ints

let () =
  (* Paths towards two RPKI Beacon prefixes.  AS 50 is a large validator
     most paths cross; AS 51 and AS 52 also validate, but AS 52 only ever
     appears behind AS 50 — tomographically invisible. *)
  let rov_ases = Asn.Set.of_list [ asn 50; asn 51; asn 52 ] in
  let paths =
    List.concat
      (List.init 15 (fun k ->
           let leaf = 100 + k in
           [
             path [ leaf; 50; 9 ];
             path [ leaf; 52; 50; 9 ];
             path [ leaf; 51; 8; 9 ];
             (if k mod 5 < 2 then path [ leaf; 60; 8; 9 ] else path [ leaf; 50; 8; 9 ]);
           ]))
  in
  let labeled = Rov.label_paths ~paths ~rov_ases in
  let positive = List.length (List.filter snd labeled) in
  Printf.printf "dataset: %d paths, %.0f%% labeled ROV (paper: 90%%)\n"
    (List.length labeled)
    (100.0 *. float_of_int positive /. float_of_int (List.length labeled));

  let rng = Because_stats.Rng.create 11 in
  let b = Rov.benchmark ~rng ~paths ~rov_ases () in
  Format.printf "BeCAUSe on ROV: %a@." Because.Evaluate.pp b.Rov.metrics;
  print_string "hidden ROV ASs (expected misses):";
  Asn.Set.iter (fun a -> Printf.printf " %s" (Asn.to_string a)) b.Rov.hidden;
  print_newline ();
  print_endline
    "(an AS that only ever appears on positive paths together with another \
     ROV AS cannot be separated by any tomographic method — the paper's \
     recall gap)"
