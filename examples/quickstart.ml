(* Quickstart: the BeCAUSe core in ~40 lines.

   You have end-to-end path measurements — each AS path labeled with whether
   it exhibited some property (here: Route Flap Damping) — and want to know
   WHICH AS is responsible.  BeCAUSe samples the posterior distribution of
   each AS's "damping proportion" and categorises the results.

   Run with: dune exec examples/quickstart.exe *)

open Because_bgp

let asn = Asn.of_int
let path ints = List.map asn ints

let () =
  (* Eight path measurements: every path through AS 3 shows RFD, no path
     avoiding it does.  (vantage-point side first, origin last.) *)
  let observations =
    [
      (path [ 10; 3; 1 ], true);
      (path [ 11; 3; 1 ], true);
      (path [ 12; 3; 2; 1 ], true);
      (path [ 13; 3; 1 ], true);
      (path [ 10; 4; 1 ], false);
      (path [ 11; 4; 1 ], false);
      (path [ 12; 4; 2; 1 ], false);
      (path [ 13; 5; 2; 1 ], false);
    ]
  in
  let data = Because.Tomography.of_observations observations in

  (* Sample the posterior with both Metropolis-Hastings and Hamiltonian
     Monte Carlo (the paper runs both and keeps the highest category). *)
  let rng = Because_stats.Rng.create 7 in
  let result = Because.Infer.run ~rng data in

  (* Summarise each AS's marginal: mean, 95% HDPI, category 1-5. *)
  let categories = Because.Pinpoint.assign_with_pinpointing result in
  Printf.printf "%-8s %7s %16s  %s\n" "AS" "mean" "95% HDPI" "verdict";
  Array.iter
    (fun (m : Because.Posterior.marginal) ->
      let category = List.assoc m.Because.Posterior.asn categories in
      Printf.printf "%-8s %7.3f [%5.3f, %5.3f]  %s\n"
        (Asn.to_string m.Because.Posterior.asn)
        m.Because.Posterior.mean m.Because.Posterior.hdpi.lo
        m.Because.Posterior.hdpi.hi
        (if Because.Categorize.damping category then "DAMPING"
         else Format.asprintf "%a" Because.Categorize.pp category))
    (Because.Posterior.combined result)
