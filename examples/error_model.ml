(* The §7.2 extension: error-aware likelihood.

   The paper closes by noting that the likelihood can model measurement
   error explicitly — "it is possible that paths containing an RFD AS do not
   get recorded as RFD paths.  We can model this error in the likelihood."

   This example builds a dataset where a known damper sits on 20 positive
   paths, then flips 30% of those labels to clean (simulating lost
   re-advertisements), and compares the base model with the error-aware one:
   the base model is dragged towards "not damping" by the corrupted labels,
   while the ε-model keeps the damper clearly identified.

   Run with: dune exec examples/error_model.exe *)

open Because_bgp

let asn = Asn.of_int
let path ints = List.map asn ints

let () =
  let rng = Because_stats.Rng.create 17 in
  let damper = 42 in
  let clean_observations =
    List.concat
      (List.init 20 (fun k ->
           let leaf = 100 + k in
           [
             (path [ leaf; damper; 9 ], true);
             (path [ leaf; 7; 9 ], false);
             (path [ leaf; 8; 9 ], false);
           ]))
  in
  (* Flip 30% of the positive labels: false negatives of the labeler. *)
  let corrupted =
    List.map
      (fun (p, label) ->
        if label && Because_stats.Rng.float rng < 0.3 then (p, false)
        else (p, label))
      clean_observations
  in
  let flipped =
    List.length (List.filter (fun ((_, a), (_, b)) -> a <> b)
                   (List.combine clean_observations corrupted))
  in
  Printf.printf "corrupted %d of 20 positive labels to clean\n" flipped;
  let data = Because.Tomography.of_observations corrupted in
  List.iter
    (fun (name, epsilon) ->
      let config =
        { Because.Infer.default_config with
          n_samples = 800;
          false_negative_rate = epsilon;
          node_priors = [ (asn 9, Because.Prior.Near_zero) ] }
      in
      let result =
        Because.Infer.run ~rng:(Because_stats.Rng.create 5) ~config data
      in
      let marginals = Because.Posterior.combined result in
      let m =
        marginals.(Option.get (Because.Tomography.index_of data (asn damper)))
      in
      let categories = Because.Pinpoint.assign_with_pinpointing result in
      Printf.printf
        "%-12s (ε=%.2f): AS%d mean=%.2f HDPI=[%.2f, %.2f] → %s\n" name
        epsilon damper m.Because.Posterior.mean m.Because.Posterior.hdpi.lo
        m.Because.Posterior.hdpi.hi
        (Format.asprintf "%a" Because.Categorize.pp
           (List.assoc (asn damper) categories)))
    [ ("base model", 0.0); ("error-aware", 0.3) ]
