(* The AS 701 scenario (§5.1, Fig. 9c): an AS that damps all neighbors
   except one.

   Verizon's AS 701 damped every neighbor except AS 2497; most labeled paths
   through it looked clean (they entered via the spared neighbor), so its
   posterior mean stayed low — yet step 2 of BeCAUSe promotes it because it
   is the most likely damper on the paths that DO show RFD.

   This example builds that exact situation from raw path observations and
   shows step 1 missing the AS and the pinpointing step recovering it.

   Run with: dune exec examples/heterogeneous_policy.exe *)

open Because_bgp

let asn = Asn.of_int
let path ints = List.map asn ints

let verizon = 701

let () =
  (* AS 701 damps sessions from its customers 20..31 but spares AS 2497.
     Most observations reach it via 2497 (clean); a minority come in via the
     damped sessions (RFD).  The other ASs have plenty of clean traffic. *)
  let observations =
    List.concat
      (List.init 12 (fun k ->
           let leaf = 20 + k in
           [
             (* the spared session (via AS 2497): clean evidence dominates *)
             (path [ leaf; verizon; 2497; 9 ], false);
             (path [ leaf; verizon; 2497; 8 ], false);
             (* every other session into AS 701 is damped *)
             (path [ leaf; verizon; 9 ], true);
             (* unrelated clean routes pin the leaves down *)
             (path [ leaf; 7; 9 ], false);
             (path [ leaf; 7; 8 ], false);
             (path [ leaf; 6; 9 ], false);
             (path [ leaf; 6; 8 ], false);
           ]))
  in
  let data = Because.Tomography.of_observations observations in
  let rng = Because_stats.Rng.create 5 in
  (* The Beacon origins (AS 8, AS 9) are known not to damp — the same prior
     side-information the paper encodes (Â§3.2). *)
  let config =
    { Because.Infer.default_config with
      node_priors =
        [ (asn 8, Because.Prior.Near_zero); (asn 9, Because.Prior.Near_zero) ] }
  in
  let result = Because.Infer.run ~rng ~config data in

  let marginal =
    (Because.Posterior.combined result).(Option.get
                                           (Because.Tomography.index_of data
                                              (asn verizon)))
  in
  Printf.printf "AS %d posterior: mean %.2f, 95%% HDPI [%.2f, %.2f]\n" verizon
    marginal.Because.Posterior.mean marginal.Because.Posterior.hdpi.lo
    marginal.Because.Posterior.hdpi.hi;

  (* Step 1 alone: the contradictory evidence keeps the mean low. *)
  let step1 = Because.Categorize.assign result in
  Printf.printf "step 1 verdict:        %s\n"
    (Format.asprintf "%a" Because.Categorize.pp (List.assoc (asn verizon) step1));

  (* Step 2: every RFD path must contain a damper; AS 701 is the most likely
     one on the unexplained paths (eq. 8), so it is promoted. *)
  let promotions = Because.Pinpoint.promotions result ~categories:step1 in
  let final = Because.Pinpoint.apply step1 promotions in
  List.iter
    (fun (p : Because.Pinpoint.promotion) ->
      Printf.printf
        "promotion: %s is the most likely damper on path %d (P = %.2f)\n"
        (Asn.to_string p.Because.Pinpoint.asn)
        p.Because.Pinpoint.path_index p.Because.Pinpoint.posterior_prob)
    promotions;
  Printf.printf "with pinpointing:      %s\n"
    (Format.asprintf "%a" Because.Categorize.pp (List.assoc (asn verizon) final));
  if Because.Categorize.damping (List.assoc (asn verizon) final) then
    print_endline "=> the inconsistent damper is correctly identified"
  else print_endline "=> NOT identified (unexpected)"
