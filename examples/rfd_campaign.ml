(* A full measurement campaign, end to end, exactly like §4-§6 of the paper:

     1. build an Internet-like world with a hidden RFD deployment;
     2. announce two-phase Beacons from 7 sites for four Burst-Break pairs;
     3. collect the vantage points' dumps from three collector projects;
     4. label each (vantage point, prefix) path stream with the RFD
        signature;
     5. run BeCAUSe and the three heuristics;
     6. compare both against the planted ground truth.

   Run with: dune exec examples/rfd_campaign.exe *)

open Because_bgp
module Sc = Because_scenario

let () =
  (* A mid-sized world keeps this example under a minute. *)
  let world =
    Sc.World.build
      {
        Sc.World.default_params with
        seed = 2020;
        n_vantage_hosts = 40;
        topology =
          {
            Because_topology.Generate.default_params with
            n_transit = 50;
            n_stub = 200;
          };
      }
  in
  let deployment = Sc.World.deployment world in
  Printf.printf "planted deployment: %d damping ASs (%d provider-visible)\n"
    (Asn.Set.cardinal (Sc.Deployment.dampers deployment))
    (Asn.Set.cardinal (Sc.Deployment.detectable_dampers deployment));

  (* One-minute Beacons, the paper's sharpest probe. *)
  let outcome =
    Sc.Campaign.run world (Sc.Campaign.default_params ~update_interval:60.0)
  in
  let rfd_paths =
    List.filter
      (fun (lp : Because_labeling.Label.labeled_path) ->
        lp.Because_labeling.Label.rfd)
      outcome.Sc.Campaign.labeled
  in
  Printf.printf "labeled %d paths, %d show the RFD signature (%.0f%%)\n"
    (List.length outcome.Sc.Campaign.labeled)
    (List.length rfd_paths)
    (100.0
    *. float_of_int (List.length rfd_paths)
    /. float_of_int (max 1 (List.length outcome.Sc.Campaign.labeled)));

  (* Who does BeCAUSe accuse? *)
  let flagged = Sc.Campaign.because_damping outcome in
  print_string "BeCAUSe flags:";
  Asn.Set.iter (fun a -> Printf.printf " %s" (Asn.to_string a)) flagged;
  print_newline ();

  let truth = Sc.Deployment.detectable_dampers deployment in
  let universe = Sc.Campaign.universe outcome in
  Format.printf "BeCAUSe:    %a@." Because.Evaluate.pp
    (Because.Evaluate.of_sets ~predicted:flagged ~truth ~universe);
  Format.printf "heuristics: %a@." Because.Evaluate.pp
    (Because.Evaluate.of_sets
       ~predicted:(Sc.Campaign.heuristic_damping outcome)
       ~truth ~universe);

  (* The paper's headline: deployment share and parameter vintage. *)
  let categories = List.map snd outcome.Sc.Campaign.categories in
  let damping =
    List.length (List.filter Because.Categorize.damping categories)
  in
  Printf.printf
    "measured lower bound of RFD deployment: %.1f%% of %d ASs (paper: 9.1%%)\n"
    (100.0 *. float_of_int damping /. float_of_int (List.length categories))
    (List.length categories);
  Printf.printf "deprecated vendor defaults among planted dampers: %.0f%%\n"
    (100.0
    *. (Sc.Deployment.vendor_share deployment Sc.Deployment.Cisco
       +. Sc.Deployment.vendor_share deployment Sc.Deployment.Juniper))
