(* chaos_proxy — socket-level fault injection driver for the service
   plane.

   Starts a {!Because_http.Fault_proxy} in front of a running HTTP
   server, fires a deterministic probe schedule through it (slowloris'd,
   stalled, reset, and flooded connections mixed with clean ones), and
   classifies what came back.  A response is TORN when it is complete by
   its own framing (headers + declared Content-Length) but malformed —
   fault-truncated responses are expected weather, torn ones are server
   bugs.  Exit 0 when zero torn responses, 1 otherwise.

   Usage: chaos_proxy --upstream-port P [--port 0] [--seed N]
                      [--requests 64] [--flood 32] *)

module Proxy = Because_http.Fault_proxy

let upstream_port = ref 0
let listen_port = ref 0
let seed = ref 1
let requests = ref 64
let flood_conns = ref 32

let spec =
  [ ("--upstream-port", Arg.Set_int upstream_port, "PORT upstream server");
    ("--port", Arg.Set_int listen_port, "PORT proxy listen port (0 = any)");
    ("--seed", Arg.Set_int seed, "N deterministic fault schedule seed");
    ("--requests", Arg.Set_int requests, "N probe requests (default 64)");
    ("--flood", Arg.Set_int flood_conns, "N idle flood connections") ]

let usage = "chaos_proxy --upstream-port PORT [options]"

let recv_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 3.0
   with Unix.Unix_error _ -> ());
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  Buffer.contents buf

(* Classify one raw byte stream.  [`Complete] means the framing closed:
   we saw the header terminator and at least Content-Length body bytes.
   Only complete responses can be torn. *)
let classify raw =
  if raw = "" then `Empty
  else
    match String.index_opt raw ' ' with
    | None -> `Truncated
    | Some _ -> (
        let is_http = String.length raw >= 8 && String.sub raw 0 5 = "HTTP/" in
        if not is_http then `Torn
        else
          let hdr_end =
            let rec find i =
              if i + 3 >= String.length raw then None
              else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
              else find (i + 1)
            in
            find 0
          in
          match hdr_end with
          | None -> `Truncated
          | Some body_off -> (
              let headers = String.sub raw 0 body_off in
              let clen =
                let lower = String.lowercase_ascii headers in
                match
                  let tag = "content-length:" in
                  let rec find i =
                    if i + String.length tag > String.length lower then None
                    else if String.sub lower i (String.length tag) = tag then
                      Some (i + String.length tag)
                    else find (i + 1)
                  in
                  find 0
                with
                | None -> None
                | Some off ->
                    let stop =
                      match String.index_from_opt lower off '\r' with
                      | Some j -> j
                      | None -> String.length lower
                    in
                    int_of_string_opt
                      (String.trim (String.sub lower off (stop - off)))
              in
              match clen with
              | None -> `Complete (* no body contract to violate *)
              | Some n ->
                  let body_len = String.length raw - body_off in
                  if body_len < n then `Truncated
                  else if body_len > n then `Torn
                  else `Complete))

let probe ~port ~path =
  let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port))
      with
      | exception Unix.Unix_error _ -> `Refused
      | () ->
          let req =
            Printf.sprintf
              "GET %s HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n"
              path
          in
          (try
             ignore (Unix.write_substring fd req 0 (String.length req))
           with Unix.Unix_error _ -> ());
          classify (recv_all fd))

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !upstream_port <= 0 then begin
    prerr_endline "chaos_proxy: --upstream-port is required";
    exit 2
  end;
  let proxy =
    Proxy.start ~seed:!seed ~upstream_port:!upstream_port ~port:!listen_port
      ()
  in
  let port = Proxy.port proxy in
  let paths = [| "/status"; "/metrics"; "/matrix"; "/estimates" |] in
  let complete = ref 0
  and torn = ref 0
  and truncated = ref 0
  and empty = ref 0
  and refused = ref 0 in
  for i = 0 to !requests - 1 do
    (match probe ~port ~path:paths.(i mod Array.length paths) with
    | `Complete -> incr complete
    | `Torn -> incr torn
    | `Truncated -> incr truncated
    | `Empty -> incr empty
    | `Refused -> incr refused);
    if i = !requests / 2 && !flood_conns > 0 then
      ignore (Proxy.flood ~conns:!flood_conns ~hold_s:0.1 ~port ())
  done;
  let stats = Proxy.stats proxy in
  Proxy.stop proxy;
  Printf.printf
    "{ \"requests\": %d, \"complete\": %d, \"torn\": %d, \"truncated\": %d, \
     \"empty\": %d, \"refused\": %d, \"proxy\": { \"conns\": %d, \
     \"resets\": %d, \"stalls\": %d, \"trickled\": %d } }\n"
    !requests !complete !torn !truncated !empty !refused stats.Proxy.conns
    stats.Proxy.resets stats.Proxy.stalls stats.Proxy.trickled;
  if !torn > 0 then exit 1
