(* because — command-line interface to the BeCAUSe framework.

   Subcommands:
     topology    generate an Internet-like AS topology and print statistics
     rfd-trace   trace the RFD penalty state machine for a flapping prefix
     campaign    run a full measurement campaign on a simulated world
     sweep       run campaigns across all six update intervals (Fig. 12)
     infer       run BeCAUSe on labeled paths from a file
     rov         benchmark BeCAUSe on a simulated ROV dataset
     serve       always-on service: schedule many campaigns, drain on signal *)

open Because_bgp
open Cmdliner
module Sc = Because_scenario
module Rng = Because_stats.Rng
module Supervise = Because_recover.Supervise

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the MCMC samplers.  Chains are seeded from \
           pre-split RNG streams, so the output is bit-for-bit identical \
           for any value — only wall-clock time changes.")

let sim_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "sim-jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the BGP simulation itself: prefixes are \
           partitioned into N shards simulated in parallel.  1 (the \
           default) preserves the sequential event stream bit-for-bit; on \
           a fault-free campaign every value yields the identical outcome.")

let sim_shards_arg =
  Arg.(
    value & opt (some int) None
    & info [ "sim-shards" ] ~docv:"N"
        ~doc:
          "Simulation shard count, decoupled from --sim-jobs (default: one \
           shard per job).  More shards than jobs queue on the domain pool \
           — at most --sim-jobs shard networks are live at once, so peak \
           memory is bounded by the seat count while per-shard state \
           shrinks.  Fault-free outcomes are shard-invariant.")

let feed_spill_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "feed-spill-dir" ] ~docv:"DIR"
        ~doc:
          "Stream monitored vantage feeds through bounded buffers into \
           per-vantage binary logs under DIR instead of holding them in \
           memory — the memory knob for Internet-scale campaigns.  The \
           outcome is bit-for-bit identical to in-memory feeds.")

let feed_buffer_arg =
  Arg.(
    value
    & opt int Because_sim.Feed_log.default_buffer
    & info [ "feed-buffer" ] ~docv:"N"
        ~doc:
          "Updates buffered per vantage before a spill flush (with \
           --feed-spill-dir).")

let chains_arg =
  Arg.(
    value & opt int 1
    & info [ "chains" ] ~docv:"N"
        ~doc:
          "Independent chains per sampler; 2+ enables the cross-chain \
           R-hat convergence diagnostic.")

let telemetry_arg =
  Arg.(
    value & flag
    & info [ "telemetry" ]
        ~doc:
          "Collect run telemetry and print the summary table (phase \
           wall-times, simulator and sampler counters, per-chain \
           acceptance and R-hat gauges) plus the run manifest.  Telemetry \
           never touches the RNG streams, so results are bit-for-bit \
           identical with or without it.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the final metrics snapshot to FILE: Prometheus text \
           exposition format when FILE ends in .prom, JSON (with the run \
           manifest) otherwise.  Implies telemetry collection.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write recorded spans to FILE as Chrome trace_event JSON — load \
           it in chrome://tracing or Perfetto; each simulation shard \
           domain gets its own lane.  Implies telemetry collection.")

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Write durable, CRC-checksummed progress snapshots (finished \
           simulation shards, per-chain sampler state, the telemetry \
           snapshot) under DIR.  A later run with $(b,--resume) picks up \
           from them and produces the bit-for-bit identical outcome.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the snapshots in $(b,--checkpoint-dir) instead of \
           clearing them: completed simulation shards are skipped and \
           partial chains continue mid-stream.  Snapshots from a different \
           campaign configuration are detected by fingerprint, quarantined \
           and ignored.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every-sweeps" ] ~docv:"N"
        ~doc:
          "Snapshot each chain every N completed sweeps (in addition to \
           the default 30-second wall-clock cadence and the always-taken \
           final-sweep snapshot).")

let chain_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "chain-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per sampler chain.  A chain that exceeds it \
           is terminated cooperatively; the campaign completes with a \
           degraded (heuristic-only) localization and exit code 3.")

let sweep_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sweep-budget" ] ~docv:"N"
        ~doc:
          "Sweep-count budget per sampler chain; enforced exactly, so \
           budget-limited runs are reproducible.  Exceeding it degrades \
           the campaign (exit code 3) rather than failing it.")

(* The registry is created iff some telemetry output was requested; every
   instrumented layer otherwise sees the shared disabled registry and pays
   one predictable branch per record site. *)
let registry_of ~telemetry ~metrics_out ~trace_out =
  if telemetry || metrics_out <> None || trace_out <> None then
    Because_telemetry.Registry.create ()
  else Because_telemetry.Registry.disabled

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents;
      Out_channel.output_char oc '\n')

let emit_telemetry ~seed ~manifest_params ~telemetry ~metrics_out ~trace_out
    reg =
  if Because_telemetry.Registry.is_enabled reg then begin
    let module Tel = Because_telemetry in
    let snap = Tel.Registry.snapshot reg in
    let manifest = Tel.Manifest.make ~seed ~params:manifest_params () in
    Option.iter
      (fun path ->
        let body =
          if Filename.check_suffix path ".prom" then
            Tel.Export.to_prometheus snap
          else Tel.Export.to_json ~manifest snap
        in
        write_file path body;
        Printf.printf "metrics written to %s\n" path)
      metrics_out;
    Option.iter
      (fun path ->
        write_file path (Tel.Export.to_chrome_trace snap);
        Printf.printf "trace written to %s\n" path)
      trace_out;
    if telemetry then begin
      Format.printf "%a@." Tel.Telemetry.pp_summary snap;
      Format.printf "%a@." Tel.Manifest.pp manifest
    end
  end

let world_size_args =
  let transit =
    Arg.(value & opt int 80 & info [ "transit" ] ~doc:"Transit AS count.")
  in
  let stub =
    Arg.(value & opt int 360 & info [ "stub" ] ~doc:"Stub AS count.")
  in
  let vantage =
    Arg.(value & opt int 60 & info [ "vantage-hosts" ] ~doc:"Vantage hosts.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"FACTOR"
          ~doc:
            "Scale factor applied to the transit, stub and vantage-host \
             counts (the Tier-1 clique stays fixed) — e.g. --scale 22 grows \
             the default world to roughly 10k ASs.")
  in
  Term.(
    const (fun transit stub vantage scale ->
        if Float.equal scale 1.0 then (transit, stub, vantage)
        else begin
          if (not (Float.is_finite scale)) || scale <= 0.0 then
            failwith "--scale must be positive";
          let s n =
            max 1 (int_of_float (Float.round (float_of_int n *. scale)))
          in
          (s transit, s stub, s vantage)
        end)
    $ transit $ stub $ vantage $ scale)

let world_of ~seed (transit, stub, vantage) =
  Sc.World.build
    {
      Sc.World.default_params with
      seed;
      n_vantage_hosts = vantage;
      topology =
        {
          Because_topology.Generate.default_params with
          n_transit = transit;
          n_stub = stub;
        };
    }

(* ------------------------------------------------------------------ *)
(* topology                                                             *)

let topology_cmd =
  let run seed (transit, stub, _) =
    let rng = Rng.create seed in
    let graph =
      Because_topology.Generate.generate rng
        {
          Because_topology.Generate.default_params with
          n_transit = transit;
          n_stub = stub;
        }
    in
    Printf.printf "ASes: %d, links: %d\n"
      (Because_topology.Graph.size graph)
      (Because_topology.Graph.link_count graph);
    let cones =
      List.map
        (fun a -> (a, Because_topology.Graph.customer_cone_size graph a))
        (Because_topology.Generate.transit_asns graph)
    in
    let top = List.sort (fun (_, a) (_, b) -> Int.compare b a) cones in
    print_endline "largest customer cones:";
    List.iteri
      (fun i (asn, cone) ->
        if i < 10 then
          Printf.printf "  %-8s %d customers\n" (Asn.to_string asn) cone)
      top
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate an AS topology and print statistics.")
    Term.(const run $ seed_arg $ world_size_args)

(* ------------------------------------------------------------------ *)
(* rfd-trace                                                            *)

let rfd_trace_cmd =
  let vendor_arg =
    Arg.(
      value
      & opt
          (enum [ ("cisco", `Cisco); ("juniper", `Juniper); ("rfc7454", `Rfc) ])
          `Cisco
      & info [ "vendor" ] ~doc:"Parameter preset: cisco, juniper or rfc7454.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"MIN" ~doc:"Flap interval in minutes.")
  in
  let duration_arg =
    Arg.(
      value & opt float 40.0
      & info [ "flap-duration" ] ~docv:"MIN"
          ~doc:"How long the prefix flaps.")
  in
  let run vendor interval duration =
    let params =
      match vendor with
      | `Cisco -> Rfd_params.cisco
      | `Juniper -> Rfd_params.juniper
      | `Rfc -> Rfd_params.rfc7454
    in
    Format.printf "parameters: %a@." Rfd_params.pp params;
    let state = Rfd.create params in
    let step = interval *. 60.0 in
    let next_event = ref 0.0 and withdraw = ref true in
    for minute = 0 to int_of_float (duration +. 90.0) do
      let now = float_of_int minute *. 60.0 in
      while !next_event <= now && !next_event < duration *. 60.0 do
        Rfd.record state ~now:!next_event
          (if !withdraw then Rfd.Withdrawal else Rfd.Readvertisement);
        withdraw := not !withdraw;
        next_event := !next_event +. step
      done;
      if minute mod 2 = 0 then
        Printf.printf "t=%3d min penalty=%7.0f %s\n" minute
          (Rfd.penalty state ~now)
          (if Rfd.suppressed state ~now then "SUPPRESSED" else "")
    done
  in
  Cmd.v
    (Cmd.info "rfd-trace" ~doc:"Trace the RFD penalty for a flapping prefix.")
    Term.(const run $ vendor_arg $ interval_arg $ duration_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                             *)

let interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"MIN"
        ~doc:"Beacon update interval (minutes).")

let cycles_arg =
  Arg.(value & opt int 4 & info [ "cycles" ] ~doc:"Burst-Break pairs.")

let faults_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", None);
             ("mild", Some Because_faults.Plan.mild);
             ("realistic", Some Because_faults.Plan.realistic);
             ("severe", Some Because_faults.Plan.severe) ])
        None
    & info [ "faults" ] ~docv:"SEVERITY"
        ~doc:
          "Inject a seeded fault plan: session resets, link flaps, Beacon \
           site outages, collector outages and lossy sessions.  One of \
           none, mild, realistic or severe.")

let print_fault_summary outcome =
  let module Plan = Because_faults.Plan in
  let plan = outcome.Sc.Campaign.params.Sc.Campaign.faults in
  if not (Plan.is_empty plan) then begin
    Printf.printf
      "faults: %d injected (%d session resets, %d link flaps, %d site \
       outages, %d collector outages, %d impaired links), %d fault events \
       realized\n"
      (Plan.size plan)
      (Plan.count `Session_reset plan)
      (Plan.count `Link_flap plan)
      (Plan.count `Site_outage plan)
      (Plan.count `Collector_outage plan)
      (Plan.count `Session_impairment plan)
      (List.length outcome.Sc.Campaign.fault_log);
    (match outcome.Sc.Campaign.insufficient with
    | [] -> ()
    | demoted ->
        Printf.printf "insufficient data (demoted to C3):";
        List.iter (fun a -> Printf.printf " %s" (Asn.to_string a)) demoted;
        print_newline ());
    List.iter (Printf.printf "warning: %s\n") outcome.Sc.Campaign.warnings
  end

let print_campaign_summary world outcome =
  let rfd_paths =
    List.filter
      (fun (lp : Because_labeling.Label.labeled_path) ->
        lp.Because_labeling.Label.rfd)
      outcome.Sc.Campaign.labeled
  in
  Printf.printf
    "labeled paths: %d (%d RFD), measured ASs: %d, deliveries: %d\n"
    (List.length outcome.Sc.Campaign.labeled)
    (List.length rfd_paths)
    (Asn.Set.cardinal (Sc.Campaign.universe outcome))
    outcome.Sc.Campaign.deliveries;
  Printf.printf "events processed: %d" outcome.Sc.Campaign.events;
  let shard_events = outcome.Sc.Campaign.shard_events in
  if Array.length shard_events > 1 then begin
    Printf.printf " over %d shards:" (Array.length shard_events);
    Array.iter (Printf.printf " %d") shard_events
  end;
  print_newline ();
  let flagged = Sc.Campaign.because_damping outcome in
  Printf.printf "BeCAUSe flags %d damping ASs:" (Asn.Set.cardinal flagged);
  Asn.Set.iter (fun a -> Printf.printf " %s" (Asn.to_string a)) flagged;
  print_newline ();
  let truth = Sc.Deployment.detectable_dampers (Sc.World.deployment world) in
  let m =
    Because.Evaluate.of_sets ~predicted:flagged ~truth
      ~universe:(Sc.Campaign.universe outcome)
  in
  Format.printf "against planted deployment: %a@." Because.Evaluate.pp m

(* First SIGTERM/SIGINT: raise the process-wide drain flag — every
   supervised chain checkpoints at its next sweep boundary and the run
   exits 5, resumable with --resume.  Second signal: give up waiting and
   exit 6.  The handler body is async-safe: one atomic fetch-and-add plus
   one atomic store. *)
let install_drain_handlers () =
  let seen = Atomic.make 0 in
  let handle _ =
    if Atomic.fetch_and_add seen 1 = 0 then Supervise.request_drain ()
    else Stdlib.exit 6
  in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle handle))
    [ Sys.sigterm; Sys.sigint ]

let campaign_cmd =
  let run seed sizes interval cycles severity jobs chains sim_jobs sim_shards
      feed_spill_dir feed_buffer telemetry metrics_out trace_out checkpoint_dir
      resume checkpoint_every chain_deadline sweep_budget =
    if resume && checkpoint_dir = None then
      failwith "--resume requires --checkpoint-dir";
    install_drain_handlers ();
    let recovery =
      Option.map
        (fun dir ->
          Sc.Recovery.create ~dir ~resume ?every_sweeps:checkpoint_every ())
        checkpoint_dir
    in
    let world = world_of ~seed sizes in
    let reg = registry_of ~telemetry ~metrics_out ~trace_out in
    let base =
      Sc.Campaign.with_jobs ~n_chains:chains ~sim_jobs
        { (Sc.Campaign.default_params ~update_interval:(interval *. 60.0))
          with Sc.Campaign.cycles; telemetry = reg }
        jobs
    in
    let base =
      { base with
        Sc.Campaign.sim_shards;
        feed_spill_dir;
        feed_buffer;
        infer_config =
          { base.Sc.Campaign.infer_config with
            Because.Infer.supervise =
              { Supervise.deadline_s = chain_deadline;
                max_sweeps = sweep_budget } } }
    in
    let params =
      match severity with
      | None -> base
      | Some severity ->
          let plan = Sc.Campaign.draw_faults world base severity in
          Format.printf "fault plan:@.%a@." Because_faults.Plan.pp plan;
          { base with Sc.Campaign.faults = plan; min_path_support = 2 }
    in
    let outcome =
      match Sc.Campaign.run ?recovery world params with
      | outcome -> outcome
      | exception Supervise.Drained ->
          (* Exit-code 5: interrupted by signal, final checkpoint written
             (when --checkpoint-dir is set); rerun with --resume to finish
             bit-for-bit. *)
          Printf.eprintf
            "because: drained on signal; %s\n%!"
            (match checkpoint_dir with
            | Some dir ->
                Printf.sprintf
                  "state checkpointed under %s — rerun with --resume" dir
            | None -> "no --checkpoint-dir, progress discarded");
          Stdlib.exit 5
    in
    (* Recovery bookkeeping goes to stderr: stdout must be byte-for-byte
       identical between a clean run and an interrupted-then-resumed one
       (the CI resume-smoke job diffs them). *)
    Option.iter
      (fun r ->
        List.iter (Printf.eprintf "recovery: %s\n") (Sc.Recovery.warnings r);
        Printf.eprintf
          "recovery: %d snapshots restored, %d fallbacks, %d saved under %s\n%!"
          (Sc.Recovery.restores r) (Sc.Recovery.fallbacks r)
          (Sc.Recovery.saves r) (Sc.Recovery.dir r))
      recovery;
    print_fault_summary outcome;
    print_campaign_summary world outcome;
    List.iter
      (Printf.printf "degraded: %s\n")
      (Supervise.status_reasons outcome.Sc.Campaign.status);
    Printf.printf "status: %s\n"
      (Supervise.status_label outcome.Sc.Campaign.status);
    let transit, stub, vantage = sizes in
    emit_telemetry ~seed
      ~manifest_params:
        [ ("command", "campaign");
          ("interval_min", string_of_float interval);
          ("cycles", string_of_int cycles);
          ("transit", string_of_int transit);
          ("stub", string_of_int stub);
          ("vantage_hosts", string_of_int vantage);
          ("jobs", string_of_int jobs);
          ("chains", string_of_int chains);
          ("sim_jobs", string_of_int sim_jobs);
          ( "sim_shards",
            match sim_shards with
            | None -> "auto"
            | Some n -> string_of_int n );
          ( "feed_spill",
            match feed_spill_dir with None -> "off" | Some dir -> dir );
          ("feed_buffer", string_of_int feed_buffer);
          ( "faults",
            match severity with
            | None -> "none"
            | Some _ -> "drawn" ) ]
      ~telemetry ~metrics_out ~trace_out reg;
    (* Exit-code contract: 0 healthy, 3 degraded, 4 insufficient (hard
       failures exit 1 via the top-level handler). *)
    let code = Supervise.exit_code outcome.Sc.Campaign.status in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run one measurement campaign end to end on a simulated world.")
    Term.(
      const run $ seed_arg $ world_size_args $ interval_arg $ cycles_arg
      $ faults_arg $ jobs_arg $ chains_arg $ sim_jobs_arg $ sim_shards_arg
      $ feed_spill_dir_arg $ feed_buffer_arg $ telemetry_arg
      $ metrics_out_arg $ trace_out_arg $ checkpoint_dir_arg $ resume_arg
      $ checkpoint_every_arg $ chain_deadline_arg $ sweep_budget_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                                *)

let sweep_cmd =
  let run seed sizes cycles jobs sim_jobs =
    let world = world_of ~seed sizes in
    let outcomes =
      List.map
        (fun minutes ->
          Printf.printf "[interval %.0f min]\n%!" minutes;
          Sc.Campaign.run world
            (Sc.Campaign.with_jobs ~sim_jobs
               { (Sc.Campaign.default_params
                    ~update_interval:(minutes *. 60.0))
                 with Sc.Campaign.cycles }
               jobs))
        [ 1.0; 2.0; 3.0; 5.0; 10.0; 15.0 ]
    in
    let shares = Sc.Report.interval_shares outcomes in
    Printf.printf "%-10s %12s %14s %8s\n" "interval" "consistent"
      "+inconsistent" "share";
    List.iter
      (fun (s : Sc.Report.interval_share) ->
        Printf.printf "%7.0fmin %12d %14d %7.1f%%\n"
          (s.Sc.Report.interval /. 60.0)
          s.Sc.Report.consistent s.Sc.Report.with_promotions
          (100.0
          *. float_of_int s.Sc.Report.with_promotions
          /. float_of_int (max 1 s.Sc.Report.measured)))
      shares
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run campaigns at all six update intervals (Fig. 12).")
    Term.(
      const run $ seed_arg $ world_size_args $ cycles_arg $ jobs_arg
      $ sim_jobs_arg)

(* ------------------------------------------------------------------ *)
(* infer                                                                *)

let parse_observation line_number line =
  match String.split_on_char ' ' (String.trim line) with
  | [] | [ "" ] -> None
  | label :: (_ :: _ as path) ->
      let rfd =
        match String.lowercase_ascii label with
        | "rfd" | "1" | "true" -> true
        | "clean" | "0" | "false" -> false
        | other ->
            failwith
              (Printf.sprintf "line %d: unknown label %S (use rfd|clean)"
                 line_number other)
      in
      let asns =
        List.map
          (fun token ->
            match int_of_string_opt token with
            | Some v -> Asn.of_int v
            | None ->
                failwith
                  (Printf.sprintf "line %d: bad ASN %S" line_number token))
          path
      in
      Some (asns, rfd)
  | _ ->
      failwith
        (Printf.sprintf "line %d: expected 'label asn asn ...'" line_number)

let read_observations file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go n acc =
        match input_line ic with
        | line -> (
            match parse_observation n line with
            | Some obs -> go (n + 1) (obs :: acc)
            | None -> go (n + 1) acc)
        | exception End_of_file -> List.rev acc
      in
      go 1 [])

let infer_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Labeled paths, one per line: 'rfd|clean ASN ASN ...' with the \
             vantage-point side first.")
  in
  let samples_arg =
    Arg.(
      value & opt int 1000
      & info [ "samples" ] ~doc:"Posterior draws per sampler.")
  in
  let run seed file samples jobs chains =
    let observations = read_observations file in
    if observations = [] then failwith "no observations in file";
    let data = Because.Tomography.of_observations observations in
    Printf.printf "%d paths (%d RFD) over %d ASs\n"
      (Because.Tomography.n_paths data)
      (Because.Tomography.rfd_path_count data)
      (Because.Tomography.n_nodes data);
    let config =
      { Because.Infer.default_config with
        n_samples = samples; jobs; n_chains = chains }
    in
    let result = Because.Infer.run ~rng:(Rng.create seed) ~config data in
    if result.Because.Infer.runs <> [] then
      List.iter
        (fun (name, r) -> Printf.printf "R-hat %s: %.3f\n" name r)
        (Because.Infer.r_hat result);
    let marginals = Because.Posterior.combined result in
    let categories = Because.Pinpoint.assign_with_pinpointing result in
    Printf.printf "%-10s %8s %8s %8s  %s\n" "AS" "mean" "hdpi-lo" "hdpi-hi"
      "category";
    Array.iter
      (fun (m : Because.Posterior.marginal) ->
        let c =
          Option.value
            (List.assoc_opt m.Because.Posterior.asn categories)
            ~default:Because.Categorize.C3
        in
        Printf.printf "%-10s %8.3f %8.3f %8.3f  %d%s\n"
          (Asn.to_string m.Because.Posterior.asn)
          m.Because.Posterior.mean m.Because.Posterior.hdpi.lo
          m.Because.Posterior.hdpi.hi
          (Because.Categorize.to_int c)
          (if Because.Categorize.damping c then "  << RFD" else ""))
      marginals
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Run BeCAUSe (MH + HMC) on externally labeled paths and print the \
          per-AS marginals and categories.")
    Term.(
      const run $ seed_arg $ file_arg $ samples_arg $ jobs_arg $ chains_arg)

(* ------------------------------------------------------------------ *)
(* export-dump / label-dump: the file-based pipeline                    *)

(* The windows sidecar: "prefix burst_start burst_end break_end" lines. *)
let write_windows path outcome =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Prefix.Set.iter
        (fun prefix ->
          List.iter
            (fun (bs, be, bend) ->
              Printf.fprintf oc "%s %f %f %f\n" (Prefix.to_string prefix) bs
                be bend)
            (Sc.Campaign.windows_of outcome prefix))
        outcome.Sc.Campaign.oscillating)

let read_windows path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let table = Hashtbl.create 8 in
      let rec go () =
        match input_line ic with
        | line ->
            (match String.split_on_char ' ' (String.trim line) with
            | [ p; bs; be; bend ] ->
                let prefix = Prefix.of_string p in
                let window =
                  (float_of_string bs, float_of_string be, float_of_string bend)
                in
                Hashtbl.replace table prefix
                  (window
                  :: Option.value (Hashtbl.find_opt table prefix) ~default:[])
            | _ -> failwith ("bad windows line: " ^ line));
            go ()
        | exception End_of_file -> ()
      in
      go ();
      fun prefix ->
        List.rev (Option.value (Hashtbl.find_opt table prefix) ~default:[]))

let export_dump_cmd =
  let out_arg =
    Arg.(
      value & opt string "campaign"
      & info [ "out" ] ~docv:"BASE"
          ~doc:"Output base name: writes BASE.mrt and BASE.windows.")
  in
  let run seed sizes interval cycles out =
    let world = world_of ~seed sizes in
    let params =
      { (Sc.Campaign.default_params ~update_interval:(interval *. 60.0)) with
        Sc.Campaign.cycles; run_inference = false }
    in
    let outcome = Sc.Campaign.run world params in
    Because_collector.Mrt.write_file (out ^ ".mrt")
      outcome.Sc.Campaign.records;
    write_windows (out ^ ".windows") outcome;
    Printf.printf "wrote %s.mrt (%d records) and %s.windows\n" out
      (List.length outcome.Sc.Campaign.records)
      out
  in
  Cmd.v
    (Cmd.info "export-dump"
       ~doc:
         "Run a campaign and export the collector dumps as MRT (BGP4MP_ET) \
          plus a Burst-Break windows sidecar.")
    Term.(
      const run $ seed_arg $ world_size_args $ interval_arg $ cycles_arg
      $ out_arg)

let label_dump_cmd =
  let base_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASE" ~doc:"Base name written by export-dump.")
  in
  let run base =
    match Because_collector.Mrt.read_file (base ^ ".mrt") with
    | Error e -> failwith e
    | Ok records ->
        let windows_of = read_windows (base ^ ".windows") in
        let labeled =
          Because_labeling.Label.label_all ~min_r_delta:480.0 ~records
            ~windows_of ()
        in
        List.iter
          (fun (lp : Because_labeling.Label.labeled_path) ->
            Printf.printf "%s %s\n"
              (if lp.Because_labeling.Label.rfd then "rfd" else "clean")
              (String.concat " "
                 (List.map
                    (fun a -> string_of_int (Asn.to_int a))
                    lp.Because_labeling.Label.path)))
          labeled
  in
  Cmd.v
    (Cmd.info "label-dump"
       ~doc:
         "Label the paths of an exported MRT dump and print them in the \
          format `because infer` consumes.")
    Term.(const run $ base_arg)

(* ------------------------------------------------------------------ *)
(* rov                                                                  *)

let rov_cmd =
  let run seed sizes =
    let world = world_of ~seed sizes in
    let params = Sc.Campaign.default_params ~update_interval:60.0 in
    let params =
      { params with Sc.Campaign.cycles = 2; run_inference = false }
    in
    let outcome = Sc.Campaign.run world params in
    let b =
      Sc.Report.rov_benchmark ~rng:(Sc.World.fresh_rng world ~salt:17) outcome
    in
    Printf.printf "positive share: %.0f%%, hidden ROV ASs: %d\n"
      (100.0 *. b.Because_rov.Rov.positive_share)
      (Asn.Set.cardinal b.Because_rov.Rov.hidden);
    Format.printf "BeCAUSe on ROV: %a@." Because.Evaluate.pp
      b.Because_rov.Rov.metrics
  in
  Cmd.v
    (Cmd.info "rov" ~doc:"Benchmark BeCAUSe on a simulated ROV dataset (§7).")
    Term.(const run $ seed_arg $ world_size_args)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)

module Service = Because_service.Service
module Sspec = Because_service.Spec
module Admission = Because_service.Admission

let ingest_line svc line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else
    match Sspec.of_line line with
    | Error e -> Printf.eprintf "serve: reject: %s\n%!" e
    | Ok spec -> (
        match Service.submit svc spec with
        | Ok seq ->
            Printf.printf "serve: admitted %s (seq %d)\n%!" spec.Sspec.id seq
        | Error reason ->
            Printf.eprintf "serve: reject %s: %s\n%!" spec.Sspec.id
              (Admission.reason_to_string reason))

let ingest_file svc path =
  In_channel.with_open_text path (fun ic ->
      In_channel.input_lines ic |> List.iter (ingest_line svc))

(* Spool intake: every eligible *.campaign file under DIR is one or more
   spec lines; ingested files are renamed *.campaign.done so they are
   picked up exactly once.  A plain directory is the whole submission API —
   no sockets, no extra dependencies, trivially scriptable.  Producers must
   write-then-rename into place: Spool.eligible ignores dotfiles, so a
   partial write staged as ".x.campaign" is invisible until renamed.

   Reads race producers and NFS-style hiccups, so each file goes through
   the unified retry policy: transient Sys_errors are retried briefly,
   then the file is skipped (it stays eligible for the next poll). *)
let spool_retry =
  Because_resilience.Policy.make ~base_s:0.005 ~cap_s:0.05 ~max_attempts:3 ()

let scan_spool svc dir =
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match
        Because_resilience.Retry.run ~policy:spool_retry
          ~retryable:(function Sys_error _ -> true | _ -> false)
          ~label:("spool:" ^ f)
          (fun () ->
            ingest_file svc path;
            Sys.rename path (path ^ ".done"))
      with
      | () -> ()
      | exception Sys_error e ->
          Printf.eprintf "serve: spool: skipping %s: %s\n%!" f e)
    (Because_service.Spool.scan dir)

let serve_cmd =
  let state_dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Root of the service's durable state: queue snapshot, \
             per-campaign checkpoints, reports, status.json/metrics.prom.")
  in
  let spool_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Poll DIR for $(b,*.campaign) spec files (one key=value spec \
             per line); ingested files are renamed $(b,*.campaign.done).")
  in
  let spec_files_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"SPEC-FILE" ~doc:"Spec files to ingest at startup.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 16
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: submissions past N queued campaigns are \
             rejected (backpressure), never buffered unboundedly.")
  in
  let service_jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains — campaigns run concurrently, isolated.")
  in
  let campaign_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "campaign-jobs" ] ~docv:"N"
          ~doc:
            "Inference pool size inside each campaign (outcomes are \
             bit-for-bit jobs-invariant).")
  in
  let max_attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:
            "Runs per campaign before it is declared insufficient; \
             retries restart from the last checkpoint with capped \
             exponential backoff.")
  in
  let serve_resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Warm-start from the state directory: completed campaigns \
             keep their reports, interrupted ones resume from their \
             checkpoints bit-for-bit.  Without it the state directory is \
             wiped.")
  in
  let oneshot_arg =
    Arg.(
      value & flag
      & info [ "oneshot" ]
          ~doc:
            "Ingest the startup spec files and the spool once, run the \
             queue dry, exit.  Without it the service polls the spool \
             until a signal drains it.")
  in
  let poll_arg =
    Arg.(
      value & opt float 1.0
      & info [ "poll" ] ~docv:"SECONDS" ~doc:"Spool/status poll period.")
  in
  let kill_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after-saves" ] ~docv:"N"
          ~doc:
            "Chaos hook (testing): hard-kill every campaign at its next \
             checkpoint write once N saves happened service-wide, exit 5; \
             a --resume rerun must complete identically.")
  in
  let http_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "http-port" ] ~docv:"PORT"
          ~doc:
            "Serve the query plane on 127.0.0.1:PORT ($(b,/status), \
             $(b,/matrix), $(b,/metrics), $(b,/estimates), \
             $(b,/campaigns/:id/report), $(b,POST /submit)).  PORT 0 \
             picks a free port (printed on startup).  Without it no \
             socket is opened and behaviour is unchanged.")
  in
  let http_threads_arg =
    Arg.(
      value & opt int 4
      & info [ "http-threads" ] ~docv:"N"
          ~doc:"HTTP worker threads (connections served concurrently).")
  in
  let http_deadline_arg =
    Arg.(
      value & opt float 2.0
      & info [ "http-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request budget from first byte to response; requests \
             still incomplete at the deadline are answered 408 and \
             handlers shed waits that would cross it (503 + Retry-After).")
  in
  let http_shed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "http-shed-watermark" ] ~docv:"N"
          ~doc:
            "Connection-queue depth at which new clients are shed with \
             503 + Retry-After instead of queueing (default 2*threads+8).")
  in
  let compact_every_arg =
    Arg.(
      value & opt int 8
      & info [ "compact-every" ] ~docv:"N"
          ~doc:
            "Streaming epoch-chain compaction cadence: prune the \
             per-campaign epoch chain down to its newest N entries every \
             N epochs (the CRC-sealed compacted seed keeps cold resume \
             O(1) regardless).  0 disables pruning.")
  in
  let run state_dir spool spec_files max_queue jobs campaign_jobs
      max_attempts resume oneshot poll_s checkpoint_every chain_deadline
      sweep_budget telemetry metrics_out trace_out kill_after http_port
      http_threads http_deadline http_shed compact_every =
    (* The query plane serves /metrics, so an HTTP port implies a live
       registry (campaign results are bit-for-bit identical either way). *)
    let reg =
      registry_of
        ~telemetry:(telemetry || http_port <> None)
        ~metrics_out ~trace_out
    in
    let cfg =
      { (Service.default_config ~state_dir) with
        Service.limit = max_queue;
        jobs;
        campaign_jobs;
        max_attempts;
        every_sweeps =
          (match checkpoint_every with Some _ as e -> e | None -> Some 25);
        chain_deadline_s = chain_deadline;
        sweep_budget;
        telemetry = reg;
        kill_after_saves = kill_after;
        compact_every }
    in
    let svc = if resume then Service.load cfg else Service.create cfg in
    List.iter (Printf.eprintf "serve: recovery: %s\n%!") (Service.warnings svc);
    install_drain_handlers ();
    (* The query plane serves generation-stamped snapshots, so it can come
       up before any campaign runs and stays up through the drain (final
       states remain queryable until the process exits). *)
    let http =
      Option.map
        (fun port ->
          let srv =
            Because_http.Server.start ~registry:reg ~threads:http_threads
              ~request_deadline:http_deadline ?shed_watermark:http_shed
              ~port
              (Because_service.Query.router ~registry:reg svc)
          in
          Printf.printf "serve: http on 127.0.0.1:%d\n%!"
            (Because_http.Server.port srv);
          srv)
        http_port
    in
    List.iter (ingest_file svc) spec_files;
    Option.iter (scan_spool svc) spool;
    let verdict =
      if oneshot then Service.run_until_idle svc
      else begin
        Service.start svc;
        let last_matrix = ref "" in
        while not (Service.draining svc || Service.killed svc) do
          Unix.sleepf poll_s;
          Option.iter (scan_spool svc) spool;
          Service.write_status svc;
          let m = Because_service.Store.matrix (Service.store svc) in
          if m <> !last_matrix then begin
            last_matrix := m;
            print_string m;
            flush stdout
          end
        done;
        (* A signal raised the global drain flag; now do the mutex-side
           half the handler could not: stop admissions, wake idle
           workers. *)
        Service.drain svc;
        Service.join svc
      end
    in
    Option.iter Because_http.Server.stop http;
    let warned = Service.warnings svc in
    List.iteri
      (fun i w -> if i < 50 then Printf.eprintf "serve: recovery: %s\n%!" w)
      warned;
    print_string (Because_service.Store.matrix (Service.store svc));
    Printf.printf "serve: %s\n"
      (match verdict with
      | Service.Completed -> "completed"
      | Service.Drained -> "drained (resumable with --resume)"
      | Service.Killed -> "killed by chaos hook (resumable with --resume)");
    (* Exit contract: 0/3/4 health rollup when the queue ran dry; 5 when
       interrupted-but-checkpointed (drain or chaos kill); 6 on a second
       signal (forced, from the handler); 1 on hard failure. *)
    let code = Service.exit_code svc verdict in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Always-on tomography service: multiplex many campaigns over a \
          worker pool with bounded admission, per-campaign supervision \
          and graceful drain.  Exit codes: 0 healthy, 3 degraded, 4 \
          insufficient, 5 interrupted-but-checkpointed (rerun with \
          $(b,--resume)), 6 forced shutdown, 1 hard failure.")
    Term.(
      const run $ state_dir_arg $ spool_arg $ spec_files_arg $ max_queue_arg
      $ service_jobs_arg $ campaign_jobs_arg $ max_attempts_arg
      $ serve_resume_arg $ oneshot_arg $ poll_arg $ checkpoint_every_arg
      $ chain_deadline_arg $ sweep_budget_arg $ telemetry_arg
      $ metrics_out_arg $ trace_out_arg $ kill_after_arg $ http_port_arg
      $ http_threads_arg $ http_deadline_arg $ http_shed_arg
      $ compact_every_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "BeCAUSe: Bayesian computation for autonomous systems — locating Route \
     Flap Damping (IMC 2020 reproduction)"
  in
  (* ~catch:false so hard failures reach our handler and exit 1, keeping
     the documented contract (0 ok, 3 degraded, 4 insufficient, 1 hard
     failure) instead of cmdliner's internal-error code. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group (Cmd.info "because" ~doc)
            [
              topology_cmd; rfd_trace_cmd; campaign_cmd; sweep_cmd; infer_cmd;
              export_dump_cmd; label_dump_cmd; rov_cmd; serve_cmd;
            ])
     with e ->
       Printf.eprintf "because: fatal: %s\n" (Printexc.to_string e);
       1)
