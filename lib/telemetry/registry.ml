(* Per-domain sharded metric registry.

   The hot path never takes a lock and never touches an atomic: each domain
   owns a shard (plain int/float arrays plus a span ring) reached through
   [Domain.DLS], so concurrent recording under [Parallel.run_tasks]
   work-stealing is race-free by construction.  The registry lock guards
   only metric interning and the shard list — cold paths.  [snapshot] merges
   the shards; counters and gauges sum, histogram buckets add elementwise.

   A disabled registry ([enabled = false]) short-circuits every operation
   before any shard (or clock) is touched: handles are dummies, [Span.with_]
   tail-calls the body.  That is the whole zero-cost-when-off story — the
   instrumented code keeps a single branch per record. *)

type kind = Counter_k | Gauge_k | Histogram_k

type meta = { id : int; name : string; kind : kind }

type span_rec = {
  span_name : string;
  span_domain : int;
  start_ns : int64;
  dur_ns : int64;
}

type shard = {
  shard_domain : int;
  mutable counts : int array;
  mutable gauges : float array;
  mutable gauge_set : bool array;
  mutable hist_buckets : int array array;  (* [||] until first observation *)
  mutable hist_sums : float array;
  spans : span_rec array;                  (* ring buffer *)
  mutable span_next : int;
  mutable span_total : int;
}

type t = {
  enabled : bool;
  lock : Mutex.t;
  mutable metas : meta list;               (* newest first *)
  by_name : (string, meta) Hashtbl.t;
  mutable n_counters : int;
  mutable n_gauges : int;
  mutable n_hists : int;
  mutable shard_list : shard list;
  key : shard Domain.DLS.key;
  span_capacity : int;
}

let is_enabled t = t.enabled

let dummy_span = { span_name = ""; span_domain = 0; start_ns = 0L; dur_ns = 0L }

let new_shard reg =
  {
    shard_domain = (Domain.self () :> int);
    counts = Array.make (max 8 reg.n_counters) 0;
    gauges = Array.make (max 8 reg.n_gauges) 0.0;
    gauge_set = Array.make (max 8 reg.n_gauges) false;
    hist_buckets = Array.make (max 4 reg.n_hists) [||];
    hist_sums = Array.make (max 4 reg.n_hists) 0.0;
    spans = Array.make reg.span_capacity dummy_span;
    span_next = 0;
    span_total = 0;
  }

let create ?(span_capacity = 4096) () =
  if span_capacity < 1 then
    invalid_arg "Registry.create: span_capacity must be positive";
  (* The DLS initializer needs the registry it belongs to; tie the knot
     through a holder set immediately after construction. *)
  let holder = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        match !holder with
        | None -> failwith "Because_telemetry.Registry: shard before init"
        | Some reg ->
            let s = new_shard reg in
            Mutex.protect reg.lock (fun () ->
                reg.shard_list <- s :: reg.shard_list);
            s)
  in
  let reg =
    {
      enabled = true;
      lock = Mutex.create ();
      metas = [];
      by_name = Hashtbl.create 64;
      n_counters = 0;
      n_gauges = 0;
      n_hists = 0;
      shard_list = [];
      key;
      span_capacity;
    }
  in
  holder := Some reg;
  reg

let disabled =
  let key =
    Domain.DLS.new_key (fun () ->
        failwith "Because_telemetry.Registry: disabled registry has no shards")
  in
  {
    enabled = false;
    lock = Mutex.create ();
    metas = [];
    by_name = Hashtbl.create 1;
    n_counters = 0;
    n_gauges = 0;
    n_hists = 0;
    shard_list = [];
    key;
    span_capacity = 0;
  }

let kind_name = function
  | Counter_k -> "counter"
  | Gauge_k -> "gauge"
  | Histogram_k -> "histogram"

(* Interning is the only registration path; a name is bound to one kind for
   the registry's lifetime.  Safe to call concurrently from worker domains
   (flush sites create handles on first use). *)
let intern reg name kind =
  Mutex.protect reg.lock (fun () ->
      match Hashtbl.find_opt reg.by_name name with
      | Some m ->
          if m.kind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Because_telemetry: %S already registered as a %s" name
                 (kind_name m.kind));
          m.id
      | None ->
          let id =
            match kind with
            | Counter_k ->
                let i = reg.n_counters in
                reg.n_counters <- i + 1;
                i
            | Gauge_k ->
                let i = reg.n_gauges in
                reg.n_gauges <- i + 1;
                i
            | Histogram_k ->
                let i = reg.n_hists in
                reg.n_hists <- i + 1;
                i
          in
          let m = { id; name; kind } in
          Hashtbl.replace reg.by_name name m;
          reg.metas <- m :: reg.metas;
          id)

(* Shards are sized for the metrics known when the domain first recorded;
   later registrations grow them on demand. *)
let ensure_int_slot arr id =
  let len = Array.length !arr in
  if id >= len then begin
    let grown = Array.make (max (id + 1) (2 * max 1 len)) 0 in
    Array.blit !arr 0 grown 0 len;
    arr := grown
  end

let ensure_float_slot arr id ~default =
  let len = Array.length !arr in
  if id >= len then begin
    let grown = Array.make (max (id + 1) (2 * max 1 len)) default in
    Array.blit !arr 0 grown 0 len;
    arr := grown
  end

let ensure_bool_slot arr id =
  let len = Array.length !arr in
  if id >= len then begin
    let grown = Array.make (max (id + 1) (2 * max 1 len)) false in
    Array.blit !arr 0 grown 0 len;
    arr := grown
  end

let ensure_hist_slot arr id =
  let len = Array.length !arr in
  if id >= len then begin
    let grown = Array.make (max (id + 1) (2 * max 1 len)) [||] in
    Array.blit !arr 0 grown 0 len;
    arr := grown
  end

module Counter = struct
  type handle = { c_reg : t; c_id : int }

  let v reg name =
    if not reg.enabled then { c_reg = reg; c_id = -1 }
    else { c_reg = reg; c_id = intern reg name Counter_k }

  let add h n =
    if h.c_reg.enabled && n <> 0 then begin
      let s = Domain.DLS.get h.c_reg.key in
      let counts = ref s.counts in
      ensure_int_slot counts h.c_id;
      s.counts <- !counts;
      s.counts.(h.c_id) <- s.counts.(h.c_id) + n
    end

  let incr h = add h 1
end

module Gauge = struct
  type handle = { g_reg : t; g_id : int }

  let v reg name =
    if not reg.enabled then { g_reg = reg; g_id = -1 }
    else { g_reg = reg; g_id = intern reg name Gauge_k }

  let set h x =
    if h.g_reg.enabled then begin
      let s = Domain.DLS.get h.g_reg.key in
      let gauges = ref s.gauges in
      ensure_float_slot gauges h.g_id ~default:0.0;
      s.gauges <- !gauges;
      let set_flags = ref s.gauge_set in
      ensure_bool_slot set_flags h.g_id;
      s.gauge_set <- !set_flags;
      s.gauges.(h.g_id) <- x;
      s.gauge_set.(h.g_id) <- true
    end
end

module Histogram = struct
  type handle = { h_reg : t; h_id : int }

  let v reg name =
    if not reg.enabled then { h_reg = reg; h_id = -1 }
    else { h_reg = reg; h_id = intern reg name Histogram_k }

  let observe h x =
    if h.h_reg.enabled then begin
      let s = Domain.DLS.get h.h_reg.key in
      let hists = ref s.hist_buckets in
      ensure_hist_slot hists h.h_id;
      s.hist_buckets <- !hists;
      let sums = ref s.hist_sums in
      ensure_float_slot sums h.h_id ~default:0.0;
      s.hist_sums <- !sums;
      if Array.length s.hist_buckets.(h.h_id) = 0 then
        s.hist_buckets.(h.h_id) <- Array.make Snapshot.n_buckets 0;
      let b = Snapshot.bucket_of x in
      s.hist_buckets.(h.h_id).(b) <- s.hist_buckets.(h.h_id).(b) + 1;
      s.hist_sums.(h.h_id) <- s.hist_sums.(h.h_id) +. x
    end
end

module Span = struct
  let record reg ~name ~start_ns ~dur_ns =
    let s = Domain.DLS.get reg.key in
    let cap = Array.length s.spans in
    if cap > 0 then begin
      s.spans.(s.span_next) <-
        { span_name = name; span_domain = s.shard_domain; start_ns; dur_ns };
      s.span_next <- (s.span_next + 1) mod cap;
      s.span_total <- s.span_total + 1
    end

  let with_ reg ~name f =
    if not reg.enabled then f ()
    else begin
      let t0 = Monotonic_clock.now () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Monotonic_clock.now () in
          record reg ~name ~start_ns:t0 ~dur_ns:(Int64.sub t1 t0))
        f
    end
end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                             *)

let shard_counter s id = if id < Array.length s.counts then s.counts.(id) else 0

let shard_gauge s id =
  if id < Array.length s.gauges && s.gauge_set.(id) then Some s.gauges.(id)
  else None

let shard_hist s id =
  if id < Array.length s.hist_buckets
     && Array.length s.hist_buckets.(id) > 0
  then Some (s.hist_buckets.(id), s.hist_sums.(id))
  else None

(* Ring contents oldest-first. *)
let shard_spans s =
  let cap = Array.length s.spans in
  if cap = 0 || s.span_total = 0 then []
  else if s.span_total <= cap then
    Array.to_list (Array.sub s.spans 0 s.span_total)
  else
    List.init cap (fun k -> s.spans.((s.span_next + k) mod cap))

let snapshot reg =
  if not reg.enabled then Snapshot.empty
  else
    let metas, shards =
      Mutex.protect reg.lock (fun () -> (List.rev reg.metas, reg.shard_list))
    in
    (* Domain ids are never reused, so this order is stable and the float
       sums below are deterministic for a given set of shards. *)
    let shards =
      List.sort (fun a b -> Int.compare a.shard_domain b.shard_domain) shards
    in
    let counters = ref [] and gauges = ref [] and hists = ref [] in
    List.iter
      (fun m ->
        match m.kind with
        | Counter_k ->
            let total =
              List.fold_left (fun acc s -> acc + shard_counter s m.id) 0 shards
            in
            counters := (m.name, total) :: !counters
        | Gauge_k ->
            let seen = ref false and total = ref 0.0 in
            List.iter
              (fun s ->
                match shard_gauge s m.id with
                | Some v ->
                    seen := true;
                    total := !total +. v
                | None -> ())
              shards;
            if !seen then gauges := (m.name, !total) :: !gauges
        | Histogram_k ->
            let acc = ref None in
            List.iter
              (fun s ->
                match shard_hist s m.id with
                | Some (buckets, sum) ->
                    let h =
                      Snapshot.hist_of_buckets (Array.copy buckets) ~sum
                    in
                    acc :=
                      Some
                        (match !acc with
                        | None -> h
                        | Some prev -> Snapshot.merge_hist prev h)
                | None -> ())
              shards;
            (match !acc with
            | Some h -> hists := (m.name, h) :: !hists
            | None -> ()))
      metas;
    let by_name (a, _) (b, _) = String.compare a b in
    let spans =
      List.concat_map shard_spans shards
      |> List.stable_sort (fun a b -> Int64.compare a.start_ns b.start_ns)
      |> List.map (fun r ->
             {
               Snapshot.name = r.span_name;
               domain = r.span_domain;
               start_ns = r.start_ns;
               dur_ns = r.dur_ns;
             })
    in
    let dropped =
      List.fold_left
        (fun acc s -> acc + max 0 (s.span_total - Array.length s.spans))
        0 shards
    in
    {
      Snapshot.counters = List.sort by_name !counters;
      gauges = List.sort by_name !gauges;
      hists = List.sort by_name !hists;
      spans;
      dropped_spans = dropped;
    }
