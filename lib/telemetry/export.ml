(* Three export formats over one snapshot:

   - JSON: the full snapshot plus optional manifest, for jq-style analysis
     and the CI smoke job;
   - Prometheus text exposition format, for scrape-based collection;
   - Chrome trace_event JSON: complete ("X") events with one pid/tid per
     domain, so shard imbalance is directly visible as lane length in
     chrome://tracing or Perfetto. *)

let escape = Manifest.json_escape

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                        *)

let to_json ?manifest (s : Snapshot.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"because-telemetry/1\",\n";
  (match manifest with
  | Some m ->
      Buffer.add_string buf
        (Printf.sprintf "  \"manifest\": %s,\n" (Manifest.to_json m))
  | None -> ());
  Buffer.add_string buf "  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": %d" (escape name) v))
    s.Snapshot.counters;
  Buffer.add_string buf (if s.Snapshot.counters = [] then "},\n" else "\n  },\n");
  Buffer.add_string buf "  \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": %.6g" (escape name) v))
    s.Snapshot.gauges;
  Buffer.add_string buf (if s.Snapshot.gauges = [] then "},\n" else "\n  },\n");
  Buffer.add_string buf "  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": { \"count\": %d, \"sum\": %.6g, \"buckets\": ["
           (escape name) h.Snapshot.count h.Snapshot.sum);
      let first = ref true in
      Array.iteri
        (fun k n ->
          if n > 0 then begin
            if not !first then Buffer.add_string buf ", ";
            first := false;
            let upper = Snapshot.bucket_upper k in
            let upper_s =
              if Float.is_integer upper && Float.abs upper < 1e15 then
                Printf.sprintf "%.0f" upper
              else if upper = Float.infinity then "\"+Inf\""
              else Printf.sprintf "%.9g" upper
            in
            Buffer.add_string buf (Printf.sprintf "[%s, %d]" upper_s n)
          end)
        h.Snapshot.buckets;
      Buffer.add_string buf "] }")
    s.Snapshot.hists;
  Buffer.add_string buf (if s.Snapshot.hists = [] then "},\n" else "\n  },\n");
  Buffer.add_string buf "  \"spans\": [";
  List.iteri
    (fun i (sp : Snapshot.span) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"domain\": %d, \"start_ns\": %Ld, \
            \"dur_ns\": %Ld }"
           (escape sp.Snapshot.name) sp.Snapshot.domain sp.Snapshot.start_ns
           sp.Snapshot.dur_ns))
    s.Snapshot.spans;
  Buffer.add_string buf (if s.Snapshot.spans = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf
    (Printf.sprintf "  \"dropped_spans\": %d\n}\n" s.Snapshot.dropped_spans);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition format                                    *)

let prom_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "because_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus (s : Snapshot.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name ^ "_total" in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    s.Snapshot.counters;
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float v)))
    s.Snapshot.gauges;
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      let cumulative = ref 0 in
      Array.iteri
        (fun k count ->
          cumulative := !cumulative + count;
          (* Emit only edges that carry data, plus the mandatory +Inf. *)
          if count > 0 && k < Snapshot.n_buckets - 1 then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                 (prom_float (Snapshot.bucket_upper k))
                 !cumulative))
        h.Snapshot.buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.Snapshot.count);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" n (prom_float h.Snapshot.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.Snapshot.count))
    s.Snapshot.hists;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                              *)

let to_chrome_trace (s : Snapshot.t) =
  let t0 =
    List.fold_left
      (fun acc (sp : Snapshot.span) ->
        if Int64.compare sp.Snapshot.start_ns acc < 0 then sp.Snapshot.start_ns
        else acc)
      (match s.Snapshot.spans with
      | [] -> 0L
      | sp :: _ -> sp.Snapshot.start_ns)
      s.Snapshot.spans
  in
  let us_of ns = Int64.to_float ns /. 1e3 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i (sp : Snapshot.span) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"name\": \"%s\", \"cat\": \"because\", \"ph\": \"X\", \
            \"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d}"
           (escape sp.Snapshot.name)
           (us_of (Int64.sub sp.Snapshot.start_ns t0))
           (us_of sp.Snapshot.dur_ns)
           sp.Snapshot.domain sp.Snapshot.domain))
    s.Snapshot.spans;
  Buffer.add_string buf
    (if s.Snapshot.spans = [] then "], " else "\n], ");
  Buffer.add_string buf "\"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf
