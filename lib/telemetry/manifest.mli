(** Run manifest: seed, caller-chosen parameters and toolchain versions, so
    every exported artifact says how to reproduce it. *)

type t = {
  seed : int option;
  params : (string * string) list;
  ocaml_version : string;
  os_type : string;
  word_size : int;
  argv : string list;
}

val make : ?seed:int -> ?params:(string * string) list -> unit -> t
(** Captures [Sys.ocaml_version], [Sys.os_type], [Sys.word_size] and
    [Sys.argv] at call time. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val to_json : t -> string
(** The manifest as one JSON object (no trailing newline). *)

val pp : Format.formatter -> t -> unit
