(** Per-domain sharded metric registry: counters, gauges, log-bucketed
    histograms and monotonic-clock spans.

    Recording never takes a lock and never touches an atomic: every domain
    owns a shard reached through domain-local storage, so recording is safe
    under {!Because_stats.Parallel} work-stealing (and any other
    multi-domain schedule).  The registry mutex guards only metric
    registration and the shard list.  {!snapshot} merges the shards —
    counters and gauges sum, histogram buckets add elementwise, span rings
    concatenate.

    The {!disabled} registry short-circuits every operation before touching
    a shard or the clock: handles are inert, [Span.with_ f] tail-calls [f].
    Instrumented code pays one branch per record when telemetry is off. *)

type t

val create : ?span_capacity:int -> unit -> t
(** A fresh live registry.  [span_capacity] (default 4096) bounds the span
    ring of each domain shard; overflow overwrites the oldest spans and is
    reported as [Snapshot.dropped_spans]. *)

val disabled : t
(** The shared no-op registry: every record is a branch-and-return, spans
    never read the clock, {!snapshot} is {!Snapshot.empty}. *)

val is_enabled : t -> bool

module Counter : sig
  type handle

  val v : t -> string -> handle
  (** Intern (or look up) the counter [name].  Cheap enough to call at flush
      sites; hot loops should hoist the handle. *)

  val add : handle -> int -> unit
  val incr : handle -> unit
end

module Gauge : sig
  type handle

  val v : t -> string -> handle

  val set : handle -> float -> unit
  (** Last write per domain wins; {!snapshot} sums the per-domain values, so
      a gauge set from exactly one domain reads back unchanged while
      per-shard gauges (one writer each) read back as the process total. *)
end

module Histogram : sig
  type handle

  val v : t -> string -> handle

  val observe : handle -> float -> unit
  (** Record one observation into its log2 bucket
      (see {!Snapshot.bucket_of}). *)
end

module Span : sig
  val with_ : t -> name:string -> (unit -> 'a) -> 'a
  (** Run the body and record its wall time (monotonic clock) into the
      calling domain's span ring.  Exceptions propagate; the span is
      recorded either way.  On a disabled registry this is exactly [f ()] —
      no clock read. *)

  val record : t -> name:string -> start_ns:int64 -> dur_ns:int64 -> unit
  (** Low-level append for pre-measured intervals.  Must only be called on
      an enabled registry. *)
end

val snapshot : t -> Snapshot.t
(** Merge every domain shard into an immutable view.  Cold path (takes the
    registry lock); safe to call while other domains keep recording —
    in-flight increments land in the next snapshot. *)
