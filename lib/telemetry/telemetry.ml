(* Facade: the names instrumented code and the CLI actually use. *)

type registry = Registry.t

let create = Registry.create
let disabled = Registry.disabled
let is_enabled = Registry.is_enabled
let snapshot = Registry.snapshot

let pp_summary fmt (s : Snapshot.t) =
  let rollup = Snapshot.span_rollup s in
  if rollup <> [] then begin
    Format.fprintf fmt "phase wall-times:@.";
    List.iter
      (fun (name, n, total) ->
        Format.fprintf fmt "  %-36s %9.3f s" name
          (Snapshot.seconds_of_ns total);
        if n > 1 then Format.fprintf fmt "  (%d spans)" n;
        Format.fprintf fmt "@.")
      rollup
  end;
  if s.Snapshot.counters <> [] then begin
    Format.fprintf fmt "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %-36s %12d@." name v)
      s.Snapshot.counters
  end;
  if s.Snapshot.gauges <> [] then begin
    Format.fprintf fmt "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %-36s %12.4g@." name v)
      s.Snapshot.gauges
  end;
  if s.Snapshot.hists <> [] then begin
    Format.fprintf fmt "histograms:@.";
    List.iter
      (fun (name, h) ->
        Format.fprintf fmt "  %-36s count %d  mean %.4g@." name
          h.Snapshot.count (Snapshot.hist_mean h))
      s.Snapshot.hists
  end;
  if s.Snapshot.dropped_spans > 0 then
    Format.fprintf fmt "dropped spans (ring overflow): %d@."
      s.Snapshot.dropped_spans
