(** Convenience facade over {!Registry} plus the human-readable summary. *)

type registry = Registry.t

val create : ?span_capacity:int -> unit -> registry
val disabled : registry
(** See {!Registry.disabled}: the shared no-op registry. *)

val is_enabled : registry -> bool
val snapshot : registry -> Snapshot.t

val pp_summary : Format.formatter -> Snapshot.t -> unit
(** Phase wall-times (span rollup), counters, gauges and histogram
    count/mean — the generic part of the CLI's [--telemetry] table. *)
