(* Run manifest: the facts needed to reproduce the artifact it travels with.
   Embedded into the JSON metrics export and printed by the CLI summary. *)

type t = {
  seed : int option;
  params : (string * string) list;  (* flat key/value, caller-chosen *)
  ocaml_version : string;
  os_type : string;
  word_size : int;
  argv : string list;
}

let make ?seed ?(params = []) () =
  {
    seed;
    params;
    ocaml_version = Sys.ocaml_version;
    os_type = Sys.os_type;
    word_size = Sys.word_size;
    argv = Array.to_list Sys.argv;
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  (match t.seed with
  | Some s -> Buffer.add_string buf (Printf.sprintf "\"seed\": %d, " s)
  | None -> ());
  Buffer.add_string buf "\"params\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    t.params;
  Buffer.add_string buf "}, ";
  Buffer.add_string buf
    (Printf.sprintf "\"ocaml_version\": \"%s\", " (json_escape t.ocaml_version));
  Buffer.add_string buf
    (Printf.sprintf "\"os_type\": \"%s\", " (json_escape t.os_type));
  Buffer.add_string buf (Printf.sprintf "\"word_size\": %d, " t.word_size);
  Buffer.add_string buf "\"argv\": [";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape a)))
    t.argv;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  (match t.seed with
  | Some s -> Format.fprintf fmt "seed: %d@," s
  | None -> ());
  List.iter (fun (k, v) -> Format.fprintf fmt "%s: %s@," k v) t.params;
  Format.fprintf fmt "ocaml: %s (%s, %d-bit)@," t.ocaml_version t.os_type
    t.word_size;
  Format.fprintf fmt "argv: %s" (String.concat " " t.argv);
  Format.pp_close_box fmt ()
