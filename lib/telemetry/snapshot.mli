(** Immutable view of a {!Registry} at one instant, shards merged.

    Counters sum over shards; gauges sum the per-shard values (each shard
    sets its own cell, so for per-shard quantities the sum is the process
    total); histogram buckets add elementwise — an exactly associative and
    commutative merge, so the result is independent of shard order. *)

val n_buckets : int
(** Buckets per histogram (64): power-of-two widths spanning 2^-16 .. 2^47,
    with the bottom and top buckets absorbing under- and overflow. *)

val bucket_of : float -> int
(** Log2 bucket index of an observation; non-positive values land in
    bucket 0. *)

val bucket_upper : int -> float
(** Exclusive upper edge of a bucket; [infinity] for the top bucket. *)

type hist = { buckets : int array; count : int; sum : float }

val hist_of_buckets : int array -> sum:float -> hist
val merge_hist : hist -> hist -> hist
(** Elementwise bucket sums.  Raises [Invalid_argument] on bucket-count
    mismatch. *)

val hist_mean : hist -> float

type span = {
  name : string;
  domain : int;
  start_ns : int64;  (** Process-monotonic; comparable within one run. *)
  dur_ns : int64;
}

type t = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist) list;
  spans : span list;  (** Sorted by start time. *)
  dropped_spans : int;
      (** Spans lost to ring-buffer overwrites across all domains. *)
}

val empty : t
val counter : t -> string -> int option
val gauge : t -> string -> float option
val hist : t -> string -> hist option

val span_total_ns : t -> name:string -> int64
(** Summed duration of every span with that exact name. *)

val seconds_of_ns : int64 -> float

val span_rollup : t -> (string * int * int64) list
(** Distinct span names in first-start order with occurrence count and total
    duration — the phase wall-time table. *)
