(* Pure snapshot data: what a registry looked like at one instant, after
   merging every per-domain shard.  No clocks, no mutation — the exporters
   and the CLI summary all read this one structure. *)

let n_buckets = 64

(* Bucket [k] holds observations in [2^(k-17), 2^(k-16)): frexp exponent
   plus a 16 offset, so bucket 17 is [1, 2) and bucket 0 absorbs everything
   below 2^-16.  The top bucket absorbs overflow. *)
let bucket_offset = 16

let bucket_of v =
  if not (v > 0.0) then 0
  else
    let _, e = Float.frexp v in
    max 0 (min (n_buckets - 1) (e + bucket_offset))

(* Exclusive upper edge of bucket [k]; [infinity] for the overflow bucket. *)
let bucket_upper k =
  if k >= n_buckets - 1 then Float.infinity
  else Float.ldexp 1.0 (k - bucket_offset)

type hist = { buckets : int array; count : int; sum : float }

let hist_of_buckets buckets ~sum =
  { buckets; count = Array.fold_left ( + ) 0 buckets; sum }

(* Elementwise integer sums: exactly associative and commutative, which is
   what makes shard-order-independent merging safe (property-tested). *)
let merge_hist a b =
  if Array.length a.buckets <> Array.length b.buckets then
    invalid_arg "Snapshot.merge_hist: bucket count mismatch";
  {
    buckets = Array.init (Array.length a.buckets) (fun k -> a.buckets.(k) + b.buckets.(k));
    count = a.count + b.count;
    sum = a.sum +. b.sum;
  }

let hist_mean h =
  if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

type span = {
  name : string;
  domain : int;       (* numeric id of the domain that ran it *)
  start_ns : int64;   (* monotonic clock, comparable within one process *)
  dur_ns : int64;
}

type t = {
  counters : (string * int) list;     (* sorted by name *)
  gauges : (string * float) list;     (* sorted by name; shard values summed *)
  hists : (string * hist) list;       (* sorted by name *)
  spans : span list;                  (* sorted by start time *)
  dropped_spans : int;                (* ring-buffer overwrites, total *)
}

let empty =
  { counters = []; gauges = []; hists = []; spans = []; dropped_spans = 0 }

let counter t name = List.assoc_opt name t.counters
let gauge t name = List.assoc_opt name t.gauges
let hist t name = List.assoc_opt name t.hists

let span_total_ns t ~name =
  List.fold_left
    (fun acc (s : span) ->
      if String.equal s.name name then Int64.add acc s.dur_ns else acc)
    0L t.spans

let seconds_of_ns ns = Int64.to_float ns /. 1e9

(* Distinct span names with occurrence count and total duration, in order of
   first start — the "phase wall-times" rollup. *)
let span_rollup t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : span) ->
      match Hashtbl.find_opt tbl s.name with
      | Some (n, total) -> Hashtbl.replace tbl s.name (n + 1, Int64.add total s.dur_ns)
      | None ->
          order := s.name :: !order;
          Hashtbl.replace tbl s.name (1, s.dur_ns))
    t.spans;
  List.rev_map
    (fun name ->
      let n, total = Hashtbl.find tbl name in
      (name, n, total))
    !order
