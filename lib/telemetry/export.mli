(** Snapshot exporters: JSON, Prometheus text format, Chrome trace_event. *)

val to_json : ?manifest:Manifest.t -> Snapshot.t -> string
(** Schema ["because-telemetry/1"]: counters/gauges as objects, histograms
    as [(upper-edge, count)] pairs over non-empty buckets, spans with
    nanosecond start/duration, plus the optional run manifest. *)

val to_prometheus : Snapshot.t -> string
(** Text exposition format.  Metric names are sanitized to
    [[a-zA-Z0-9_:]] and prefixed [because_]; counters gain the [_total]
    suffix; histograms emit cumulative [_bucket{le=...}] lines over the
    log2 edges plus [_sum]/[_count]. *)

val to_chrome_trace : Snapshot.t -> string
(** Chrome [trace_event] JSON (complete ["X"] events, microsecond
    timestamps normalized to the earliest span).  Each domain gets its own
    pid/tid lane, so shard imbalance shows up directly in
    [chrome://tracing] or Perfetto. *)

val prom_name : string -> string
(** The sanitized, prefixed Prometheus base name of a metric. *)
