type t = { network : int32; length : int }

let mask_of_length length =
  if length = 0 then 0l
  else Int32.shift_left (-1l) (32 - length)

let make network length =
  if length < 0 || length > 32 then invalid_arg "Prefix.make: bad length";
  { network = Int32.logand network (mask_of_length length); length }

let of_string s =
  match String.split_on_char '/' s with
  | [ addr; len ] -> (
      let octets = String.split_on_char '.' addr in
      match (octets, int_of_string_opt len) with
      | [ a; b; c; d ], Some length ->
          let byte s =
            match int_of_string_opt s with
            | Some v when v >= 0 && v <= 255 -> v
            | _ -> invalid_arg "Prefix.of_string: bad octet"
          in
          let v =
            Int32.logor
              (Int32.shift_left (Int32.of_int (byte a)) 24)
              (Int32.logor
                 (Int32.shift_left (Int32.of_int (byte b)) 16)
                 (Int32.logor
                    (Int32.shift_left (Int32.of_int (byte c)) 8)
                    (Int32.of_int (byte d))))
          in
          make v length
      | _ -> invalid_arg "Prefix.of_string: malformed prefix")
  | _ -> invalid_arg "Prefix.of_string: expected addr/len"

let to_string t =
  let octet shift =
    Int32.to_int (Int32.logand (Int32.shift_right_logical t.network shift) 255l)
  in
  Printf.sprintf "%d.%d.%d.%d/%d" (octet 24) (octet 16) (octet 8) (octet 0)
    t.length

let pp fmt t = Format.pp_print_string fmt (to_string t)

let compare a b =
  match Int32.unsigned_compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let equal a b = compare a b = 0

(* Monomorphic: the network bits already are well-spread, so mixing in the
   length is enough for the router's per-neighbor tables. *)
(* Real prefix populations are /24-heavy, so the low network bits are almost
   always zero; Hashtbl masks the hash with [size - 1], so the distinguishing
   bits must be folded down into the low bits. *)
let hash t =
  let h = (Int32.to_int t.network * 0x9E3779B1) + t.length in
  (h lxor (h lsr 16)) land max_int
let length t = t.length
let network t = t.network

let contains outer inner =
  outer.length <= inner.length
  && Int32.equal
       (Int32.logand inner.network (mask_of_length outer.length))
       outer.network

let beacon ~site ~slot =
  if site < 0 || site > 255 || slot < 0 || slot > 255 then
    invalid_arg "Prefix.beacon: site and slot must fit a byte";
  make
    (Int32.logor 0x0A000000l
       (Int32.logor
          (Int32.shift_left (Int32.of_int site) 16)
          (Int32.shift_left (Int32.of_int slot) 8)))
    24

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
