(** Interned AS paths.

    Updates carry their AS path as a plain list on the wire; the router
    interns each received path once into this record — one traversal
    computing the length and a multiplicative hash — so that the decision
    process compares path lengths in O(1) and path equality (the hot
    comparison in duplicate detection and best-route stability checks) in
    O(1) for the almost-sure unequal case. *)

type t

val empty : t
val of_list : Asn.t list -> t

val nodes : t -> Asn.t list
(** The original list, neighbor first; shared, not copied. *)

val length : t -> int
val hash : t -> int
val is_empty : t -> bool

val equal : t -> t -> bool
(** Hash and length first, node walk only on a match. *)

val contains : Asn.t -> t -> bool
val pp : Format.formatter -> t -> unit
