type t = int

let of_int n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Asn.of_int: out of range";
  n

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp fmt t = Format.fprintf fmt "AS%d" t
let to_string t = "AS" ^ string_of_int t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
