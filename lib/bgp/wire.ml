type error =
  | Truncated of string
  | Bad_marker
  | Bad_message_type of int
  | Bad_attribute of string
  | Trailing_bytes of int

let pp_error fmt = function
  | Truncated what -> Format.fprintf fmt "truncated %s" what
  | Bad_marker -> Format.pp_print_string fmt "bad marker"
  | Bad_message_type t -> Format.fprintf fmt "unexpected message type %d" t
  | Bad_attribute what -> Format.fprintf fmt "bad attribute: %s" what
  | Trailing_bytes n -> Format.fprintf fmt "%d trailing bytes" n

(* ------------------------------------------------------------------ *)
(* Little byte-buffer helpers                                           *)

let u8 buf v = Buffer.add_uint8 buf (v land 0xFF)
let u16 buf v = Buffer.add_uint16_be buf (v land 0xFFFF)
let u32 buf v = Buffer.add_int32_be buf v

type reader = { data : bytes; mutable pos : int }

let read_u8 r what =
  if r.pos + 1 > Bytes.length r.data then Error (Truncated what)
  else begin
    let v = Bytes.get_uint8 r.data r.pos in
    r.pos <- r.pos + 1;
    Ok v
  end

let read_u16 r what =
  if r.pos + 2 > Bytes.length r.data then Error (Truncated what)
  else begin
    let v = Bytes.get_uint16_be r.data r.pos in
    r.pos <- r.pos + 2;
    Ok v
  end

let read_u32 r what =
  if r.pos + 4 > Bytes.length r.data then Error (Truncated what)
  else begin
    let v = Bytes.get_int32_be r.data r.pos in
    r.pos <- r.pos + 4;
    Ok v
  end

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Prefix encoding: length octet + ceil(len/8) network octets.          *)

let encode_prefix buf prefix =
  let len = Prefix.length prefix in
  let network = Prefix.network prefix in
  u8 buf len;
  let octets = (len + 7) / 8 in
  for i = 0 to octets - 1 do
    u8 buf
      (Int32.to_int
         (Int32.logand (Int32.shift_right_logical network (24 - (8 * i))) 255l))
  done

let decode_prefix r =
  let* len = read_u8 r "prefix length" in
  if len > 32 then Error (Bad_attribute "prefix length > 32")
  else begin
    let octets = (len + 7) / 8 in
    let rec collect i acc =
      if i = octets then Ok acc
      else
        let* b = read_u8 r "prefix octet" in
        collect (i + 1)
          (Int32.logor acc (Int32.shift_left (Int32.of_int b) (24 - (8 * i))))
    in
    let* network = collect 0 0l in
    Ok (Prefix.make network len)
  end

(* ------------------------------------------------------------------ *)
(* Attributes                                                           *)

let origin_igp = 0
let attr_origin = 1
let attr_as_path = 2
let attr_next_hop = 3
let attr_aggregator = 7
let flag_transitive = 0x40
let flag_optional = 0x80

let add_attribute buf ~flags ~code payload =
  u8 buf flags;
  u8 buf code;
  u8 buf (Bytes.length payload);
  Buffer.add_bytes buf payload

let as_path_payload as_path =
  let buf = Buffer.create 32 in
  u8 buf 2 (* AS_SEQUENCE *);
  u8 buf (List.length as_path);
  List.iter (fun asn -> u32 buf (Int32.of_int (Asn.to_int asn))) as_path;
  Buffer.to_bytes buf

let aggregator_payload (agg : Update.aggregator) =
  let buf = Buffer.create 8 in
  u32 buf (Int32.of_int (Asn.to_int agg.Update.aggregator_asn));
  (* The Beacon timestamp rides in the aggregator IP field; an invalid
     aggregator is the all-zero address the paper observed and discarded. *)
  let stamp =
    if agg.Update.valid then Int32.of_float (Float.max 0.0 agg.Update.sent_at)
    else 0l
  in
  u32 buf stamp;
  Buffer.to_bytes buf

let encode update =
  let body = Buffer.create 64 in
  (match update with
  | Update.Withdraw { prefix } ->
      let withdrawn = Buffer.create 8 in
      encode_prefix withdrawn prefix;
      u16 body (Buffer.length withdrawn);
      Buffer.add_buffer body withdrawn;
      u16 body 0 (* no path attributes *)
  | Update.Announce { prefix; as_path; aggregator } ->
      u16 body 0 (* no withdrawn routes *);
      let attrs = Buffer.create 48 in
      add_attribute attrs ~flags:flag_transitive ~code:attr_origin
        (Bytes.make 1 (Char.chr origin_igp));
      add_attribute attrs ~flags:flag_transitive ~code:attr_as_path
        (as_path_payload as_path);
      add_attribute attrs ~flags:flag_transitive ~code:attr_next_hop
        (Bytes.make 4 '\000');
      (match aggregator with
      | Some agg ->
          add_attribute attrs
            ~flags:(flag_optional lor flag_transitive)
            ~code:attr_aggregator (aggregator_payload agg)
      | None -> ());
      u16 body (Buffer.length attrs);
      Buffer.add_buffer body attrs;
      encode_prefix body prefix);
  let message = Buffer.create 96 in
  for _ = 1 to 16 do
    u8 message 0xFF
  done;
  u16 message (19 + Buffer.length body);
  u8 message 2 (* UPDATE *);
  Buffer.add_buffer message body;
  Buffer.to_bytes message

let decode_as_path r ~until =
  let* segment_type = read_u8 r "AS_PATH segment type" in
  if segment_type <> 2 then Error (Bad_attribute "AS_PATH segment not a sequence")
  else begin
    let* count = read_u8 r "AS_PATH length" in
    let rec collect k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* v = read_u32 r "AS_PATH member" in
        collect (k - 1) (Asn.of_int (Int32.to_int (Int32.logand v 0xFFFFFFFFl)) :: acc)
    in
    let* path = collect count [] in
    if r.pos <> until then Error (Bad_attribute "AS_PATH length mismatch")
    else Ok path
  end

let decode_aggregator r =
  let* asn = read_u32 r "aggregator ASN" in
  let* stamp = read_u32 r "aggregator IP" in
  let valid = stamp <> 0l in
  Ok
    {
      Update.aggregator_asn = Asn.of_int (Int32.to_int (Int32.logand asn 0xFFFFFFFFl));
      sent_at = Int32.to_float (Int32.logand stamp 0x7FFFFFFFl);
      valid;
    }

let decode_one r =
  (* Header *)
  let rec check_marker i =
    if i = 16 then Ok ()
    else
      let* b = read_u8 r "marker" in
      if b <> 0xFF then Error Bad_marker else check_marker (i + 1)
  in
  let* () = check_marker 0 in
  let* length = read_u16 r "length" in
  let* msg_type = read_u8 r "type" in
  if msg_type <> 2 then Error (Bad_message_type msg_type)
  else begin
    let body_end = r.pos + length - 19 in
    if body_end > Bytes.length r.data then Error (Truncated "body")
    else begin
      let* withdrawn_len = read_u16 r "withdrawn length" in
      let withdrawn_end = r.pos + withdrawn_len in
      let* withdrawn =
        if withdrawn_len = 0 then Ok None
        else
          let* p = decode_prefix r in
          if r.pos <> withdrawn_end then
            Error (Bad_attribute "withdrawn-routes length mismatch")
          else Ok (Some p)
      in
      let* attrs_len = read_u16 r "attributes length" in
      let attrs_end = r.pos + attrs_len in
      if attrs_end > body_end then Error (Truncated "attributes")
      else begin
        let as_path = ref None and aggregator = ref None in
        let rec attrs () =
          if r.pos >= attrs_end then Ok ()
          else begin
            let* flags = read_u8 r "attribute flags" in
            let* code = read_u8 r "attribute code" in
            let* len =
              if flags land 0x10 <> 0 then read_u16 r "attribute length"
              else read_u8 r "attribute length"
            in
            let value_end = r.pos + len in
            if value_end > attrs_end then Error (Truncated "attribute value")
            else begin
              let* () =
                if code = attr_as_path then begin
                  let* path = decode_as_path r ~until:value_end in
                  as_path := Some path;
                  Ok ()
                end
                else if code = attr_aggregator then begin
                  let* agg = decode_aggregator r in
                  if r.pos <> value_end then
                    Error (Bad_attribute "aggregator length mismatch")
                  else begin
                    aggregator := Some agg;
                    Ok ()
                  end
                end
                else if code = attr_origin || code = attr_next_hop
                        || flags land flag_optional <> 0 then begin
                  r.pos <- value_end;
                  Ok ()
                end
                else
                  Error
                    (Bad_attribute
                       (Printf.sprintf "unknown well-known attribute %d" code))
              in
              attrs ()
            end
          end
        in
        let* () = attrs () in
        match withdrawn with
        | Some prefix ->
            if r.pos <> body_end then Error (Trailing_bytes (body_end - r.pos))
            else Ok (Update.Withdraw { prefix })
        | None -> (
            (* NLRI *)
            let* prefix = decode_prefix r in
            if r.pos <> body_end then Error (Trailing_bytes (body_end - r.pos))
            else
              match !as_path with
              | None -> Error (Bad_attribute "announcement without AS_PATH")
              | Some as_path ->
                  Ok (Update.Announce { prefix; as_path; aggregator = !aggregator }))
      end
    end
  end

let decode data =
  let r = { data; pos = 0 } in
  let* update = decode_one r in
  if r.pos <> Bytes.length data then
    Error (Trailing_bytes (Bytes.length data - r.pos))
  else Ok update

let encode_many updates =
  let buf = Buffer.create 256 in
  List.iter (fun u -> Buffer.add_bytes buf (encode u)) updates;
  Buffer.to_bytes buf

let decode_many data =
  let r = { data; pos = 0 } in
  let rec go acc =
    if r.pos = Bytes.length data then Ok (List.rev acc)
    else
      let* u = decode_one r in
      go (u :: acc)
  in
  go []
