(** An AS-level BGP speaker.

    Each AS is modelled as one router holding an adj-RIB-in per neighbor
    session, a loc-RIB, and an adj-RIB-out per neighbor, with:

    - Gao–Rexford route selection (customer > peer > provider local-pref,
      then shortest AS path, then lowest neighbor ASN);
    - valley-free export filtering;
    - per-session Route Flap Damping ({!Rfd}) scoped by
      {!Policy.rfd_scope} — a suppressed session's route is invisible to the
      decision process, which is what produces downstream withdrawals, path
      hunting, and the delayed re-advertisement of the RFD signature;
    - per-(neighbor, prefix) Minimum Route Advertisement Interval gating of
      announcements (withdrawals are sent immediately, per RFC 4271).

    The router is a pure event reactor: every entry point returns the
    {!action} list the caller (normally {!Because_sim.Network}) must
    perform — message deliveries, timer requests, and full-feed observations
    for an attached vantage point. *)

type neighbor = {
  neighbor_asn : Asn.t;
  relationship : Policy.relationship;
      (** The neighbor's role relative to this AS. *)
  mrai : float;  (** MRAI seconds for announcements to this neighbor; 0 disables. *)
}

type config = {
  asn : Asn.t;
  neighbors : neighbor list;
  rfd_scope : Policy.rfd_scope;
  rfd_params : Rfd_params.t;
}

(** The loc-RIB entry for a prefix. *)
type best =
  | Origin of Update.aggregator option  (** Self-originated. *)
  | Via of {
      from_asn : Asn.t;
      relationship : Policy.relationship;
      as_path : Apath.t;  (** As received (neighbor first), interned. *)
      aggregator : Update.aggregator option;
    }

type action =
  | Send of { to_asn : Asn.t; update : Update.t }
      (** Deliver [update] over the session to [to_asn]. *)
  | Set_reuse_timer of { neighbor : Asn.t; prefix : Prefix.t; at : float }
      (** Ask to be called back via {!handle_reuse_check} at time [at]. *)
  | Set_mrai_timer of { neighbor : Asn.t; prefix : Prefix.t; at : float }
      (** Ask to be called back via {!handle_mrai_expiry} at time [at]. *)
  | Feed of Update.t
      (** What a full-feed customer session (a route-collector vantage point)
          observes at this instant: the loc-RIB change with this AS
          prepended. *)

type t

type stats = {
  mutable rfd_suppressions : int;
      (** Transitions into suppression (a reuse timer was armed). *)
  mutable rfd_releases : int;
      (** Reuse checks that found the penalty decayed and re-ran best-path
          selection — the release side of the RFD cycle. *)
}

type table_sizes = {
  rib_in_entries : int;   (** Entries across every neighbor's adj-RIB-in. *)
  rfd_states : int;       (** Live RFD penalty states across neighbors. *)
  adj_out_entries : int;  (** Entries across every neighbor's adj-RIB-out. *)
  mrai_states : int;      (** MRAI gate states across neighbors. *)
  loc_rib_entries : int;
}

val create : config -> t
val asn : t -> Asn.t
val config : t -> config

val stats : t -> stats
(** Always-on RFD transition tallies (shared mutable record; read after the
    run, or copy). *)

val table_sizes : t -> table_sizes
(** Current cache-table entry counts — the telemetry memory gauges.  Walks
    the neighbor array; call at snapshot time, not per event. *)

val handle_update : t -> now:float -> from:Asn.t -> Update.t -> action list
(** Process one update received from a configured neighbor.  Raises
    [Invalid_argument] if [from] is not a neighbor. *)

val originate :
  t -> now:float -> ?aggregator:Update.aggregator -> Prefix.t -> action list
(** (Re-)announce a locally originated prefix.  Repeated calls with fresh
    aggregator timestamps model Beacon announcements. *)

val withdraw_origin : t -> now:float -> Prefix.t -> action list

val handle_reuse_check :
  t -> now:float -> neighbor:Asn.t -> prefix:Prefix.t -> action list
(** Fired by a [Set_reuse_timer] request: releases the session's route if the
    penalty has decayed below the reuse threshold (re-advertising downstream),
    otherwise re-arms the timer. *)

val handle_mrai_expiry :
  t -> now:float -> neighbor:Asn.t -> prefix:Prefix.t -> action list
(** Fired by a [Set_mrai_timer] request: flushes a pending announcement. *)

val handle_session_down : t -> now:float -> neighbor:Asn.t -> action list
(** The BGP session to [neighbor] dropped ({!Because_bgp.Session}'s
    [Session_down]): every route learned on it is removed from the
    adj-RIB-in, the adj-RIB-out and MRAI state towards the neighbor are
    cleared, and each affected prefix is re-decided — producing the
    downstream withdrawals and failover announcements of path
    re-exploration.  Raises [Invalid_argument] if [neighbor] is not
    configured. *)

val handle_session_up : t -> now:float -> neighbor:Asn.t -> action list
(** The session to [neighbor] (re-)established ([Session_up]): the current
    loc-RIB is re-advertised from an empty adj-RIB-out, subject to the usual
    export policy.  Raises [Invalid_argument] if [neighbor] is not
    configured. *)

val best_route : t -> Prefix.t -> best option
(** Current loc-RIB entry. *)

val rfd_state : t -> neighbor:Asn.t -> prefix:Prefix.t -> Rfd.t option
(** The damping state of a session, if RFD applies and the session has seen
    updates.  Exposed for tests and the Fig. 2 reproduction. *)

val is_suppressing : t -> now:float -> bool
(** True if any session of this router currently suppresses a prefix. *)
