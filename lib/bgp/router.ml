type neighbor = {
  neighbor_asn : Asn.t;
  relationship : Policy.relationship;
  mrai : float;
}

type config = {
  asn : Asn.t;
  neighbors : neighbor list;
  rfd_scope : Policy.rfd_scope;
  rfd_params : Rfd_params.t;
}

type best =
  | Origin of Update.aggregator option
  | Via of {
      from_asn : Asn.t;
      relationship : Policy.relationship;
      as_path : Apath.t;
      aggregator : Update.aggregator option;
    }

type action =
  | Send of { to_asn : Asn.t; update : Update.t }
  | Set_reuse_timer of { neighbor : Asn.t; prefix : Prefix.t; at : float }
  | Set_mrai_timer of { neighbor : Asn.t; prefix : Prefix.t; at : float }
  | Feed of Update.t

type rib_in_entry = {
  in_path : Apath.t;
  in_aggregator : Update.aggregator option;
}

type mrai_state = {
  mutable gate_until : float;  (* announcements blocked before this time *)
  mutable pending : bool;      (* a flush timer is armed *)
}

(* Monomorphic prefix-keyed tables: every per-session RIB structure is held
   per neighbor, so the former polymorphic (Asn.t * Prefix.t) lookups become
   a dense array index plus one monomorphic prefix hash. *)
module Ptbl = Hashtbl.Make (struct
  type t = Prefix.t

  let equal = Prefix.equal
  let hash = Prefix.hash
end)

module Atbl = Hashtbl.Make (struct
  type t = Asn.t

  let equal = Asn.equal
  let hash a = Asn.to_int a * 0x9E3779B1 land max_int
end)

let rel_index = function
  | Policy.Customer -> 0
  | Policy.Peer -> 1
  | Policy.Provider -> 2

(* One neighbor session, flattened: the static config plus every per-session
   table and the precomputed policy decisions that used to be recomputed per
   update. *)
type neighbor_state = {
  nb : neighbor;
  local_pref : int;                       (* Policy.local_pref nb.relationship *)
  damps : bool;                           (* RFD applies on this session *)
  export_from : bool array;               (* learned relationship -> export ok *)
  rib_in : rib_in_entry Ptbl.t;
  rfd : Rfd.t Ptbl.t;
  adj_out : Update.t Ptbl.t;              (* last update sent *)
  mrai : mrai_state Ptbl.t;
}

(* Always-on tallies for the rare RFD state transitions; a couple of int
   writes per suppression keeps them off the telemetry fast-path budget. *)
type stats = {
  mutable rfd_suppressions : int;
  mutable rfd_releases : int;
}

type table_sizes = {
  rib_in_entries : int;
  rfd_states : int;
  adj_out_entries : int;
  mrai_states : int;
  loc_rib_entries : int;
}

type t = {
  cfg : config;
  nstates : neighbor_state array;         (* in config order *)
  index_of : int Atbl.t;                  (* neighbor ASN -> nstates index *)
  originated : Update.aggregator option Ptbl.t;
  loc_rib : best Ptbl.t;
  last_feed : Update.t Ptbl.t;
  stats : stats;
}

let create cfg =
  let n = List.length cfg.neighbors in
  let index_of = Atbl.create (2 * max 1 n) in
  let make_state nb =
    if Asn.equal nb.neighbor_asn cfg.asn then
      invalid_arg "Router.create: self-neighboring";
    if Atbl.mem index_of nb.neighbor_asn then
      invalid_arg "Router.create: duplicate neighbor";
    Atbl.replace index_of nb.neighbor_asn (Atbl.length index_of);
    {
      nb;
      local_pref = Policy.local_pref nb.relationship;
      damps =
        Policy.rfd_applies cfg.rfd_scope ~neighbor:nb.neighbor_asn
          ~relationship:nb.relationship;
      export_from =
        Array.map
          (fun learned ->
            Policy.export_ok ~learned_from:(Some learned)
              ~towards:nb.relationship)
          [| Policy.Customer; Policy.Peer; Policy.Provider |];
      (* Tables start tiny and grow with the prefixes actually heard on the
         session: at Internet scale most of a router's sessions carry a
         small slice of the prefix universe, and a 10k-AS world holds
         ~4 tables x ~40k sessions — pre-sizing for the worst case would
         cost hundreds of megabytes before the first update flows. *)
      rib_in = Ptbl.create 8;
      rfd = Ptbl.create 4;
      adj_out = Ptbl.create 8;
      mrai = Ptbl.create 8;
    }
  in
  let nstates =
    (* Fold left so dense ids follow config order. *)
    List.fold_left (fun acc nb -> make_state nb :: acc) [] cfg.neighbors
    |> List.rev |> Array.of_list
  in
  {
    cfg;
    nstates;
    index_of;
    originated = Ptbl.create 4;
    loc_rib = Ptbl.create 8;
    last_feed = Ptbl.create 8;
    stats = { rfd_suppressions = 0; rfd_releases = 0 };
  }

let asn t = t.cfg.asn
let config t = t.cfg
let stats t = t.stats

let table_sizes t =
  let per_neighbor f =
    Array.fold_left (fun acc ns -> acc + f ns) 0 t.nstates
  in
  {
    rib_in_entries = per_neighbor (fun ns -> Ptbl.length ns.rib_in);
    rfd_states = per_neighbor (fun ns -> Ptbl.length ns.rfd);
    adj_out_entries = per_neighbor (fun ns -> Ptbl.length ns.adj_out);
    mrai_states = per_neighbor (fun ns -> Ptbl.length ns.mrai);
    loc_rib_entries = Ptbl.length t.loc_rib;
  }

let state_exn t asn_ =
  match Atbl.find_opt t.index_of asn_ with
  | Some i -> t.nstates.(i)
  | None ->
      invalid_arg
        (Printf.sprintf "Router %s: %s is not a neighbor"
           (Asn.to_string t.cfg.asn) (Asn.to_string asn_))

let rfd_state t ~neighbor ~prefix =
  match Atbl.find_opt t.index_of neighbor with
  | None -> None
  | Some i -> Ptbl.find_opt t.nstates.(i).rfd prefix

let rfd_state_ensure ns prefix params =
  match Ptbl.find_opt ns.rfd prefix with
  | Some s -> s
  | None ->
      let s = Rfd.create params in
      Ptbl.replace ns.rfd prefix s;
      s

exception Found_suppressed

let is_suppressing t ~now =
  (* Early exit on the first suppressed entry instead of folding over every
     RFD record of every session. *)
  try
    Array.iter
      (fun ns ->
        Ptbl.iter
          (fun _ s -> if Rfd.suppressed s ~now then raise_notrace Found_suppressed)
          ns.rfd)
      t.nstates;
    false
  with Found_suppressed -> true

let best_route t prefix = Ptbl.find_opt t.loc_rib prefix

(* ------------------------------------------------------------------ *)
(* Decision process                                                     *)

let best_equal a b =
  match (a, b) with
  | Origin x, Origin y -> Update.aggregator_equal x y
  | Via x, Via y ->
      Asn.equal x.from_asn y.from_asn
      && Apath.equal x.as_path y.as_path
      && Update.aggregator_equal x.aggregator y.aggregator
  | Origin _, Via _ | Via _, Origin _ -> false

let usable ns ~now prefix =
  match Ptbl.find_opt ns.rib_in prefix with
  | None -> None
  | Some entry -> (
      match Ptbl.find_opt ns.rfd prefix with
      | Some s when Rfd.suppressed s ~now -> None
      | Some _ | None -> Some entry)

(* Gao–Rexford selection over the dense neighbor array: highest local-pref,
   then shortest path (O(1) via the interned length), then lowest ASN. *)
let decide t ~now prefix =
  match Ptbl.find_opt t.originated prefix with
  | Some aggregator -> Some (Origin aggregator)
  | None ->
      let winner = ref None in
      let w_pref = ref min_int and w_len = ref max_int in
      let w_asn = ref Asn.(of_int 0) in
      Array.iter
        (fun ns ->
          match usable ns ~now prefix with
          | None -> ()
          | Some entry ->
              let pref = ns.local_pref in
              let len = Apath.length entry.in_path in
              let better =
                match !winner with
                | None -> true
                | Some _ ->
                    if pref <> !w_pref then pref > !w_pref
                    else if len <> !w_len then len < !w_len
                    else Asn.compare ns.nb.neighbor_asn !w_asn < 0
              in
              if better then begin
                winner := Some (ns, entry);
                w_pref := pref;
                w_len := len;
                w_asn := ns.nb.neighbor_asn
              end)
        t.nstates;
      match !winner with
      | None -> None
      | Some (ns, entry) ->
          Some
            (Via
               {
                 from_asn = ns.nb.neighbor_asn;
                 relationship = ns.nb.relationship;
                 as_path = entry.in_path;
                 aggregator = entry.in_aggregator;
               })

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

let export_update t prefix = function
  | Origin aggregator ->
      Update.Announce { prefix; as_path = [ t.cfg.asn ]; aggregator }
  | Via { as_path; aggregator; _ } ->
      Update.Announce
        { prefix; as_path = t.cfg.asn :: Apath.nodes as_path; aggregator }

(* The exported update is identical towards every neighbor (the AS prepends
   itself to the best path regardless of the receiver), so one
   reconsideration shares a single lazily built announce and withdraw
   instead of allocating per neighbor — at 10k ASs with high-degree transit
   cores that is the dominant allocation of the delivery hot path. *)
let shared_exports t prefix best =
  ( (match best with
    | Some b -> lazy (export_update t prefix b)
    | None -> lazy (Update.Withdraw { prefix }) (* never forced *)),
    lazy (Update.Withdraw { prefix }) )

(* The desired adj-out state towards a neighbor for [prefix], or None when
   nothing should be advertised.  The valley-free decision is a precomputed
   per-(learned relationship, neighbor) bit. *)
let desired_towards ~export best ns =
  match best with
  | None -> None
  | Some (Origin _) -> Some (Lazy.force export)
  | Some (Via v) ->
      if Asn.equal v.from_asn ns.nb.neighbor_asn then None (* split horizon *)
      else if ns.export_from.(rel_index v.relationship) then
        Some (Lazy.force export)
      else None

let mrai_state_of ns prefix =
  match Ptbl.find_opt ns.mrai prefix with
  | Some s -> s
  | None ->
      let s = { gate_until = 0.0; pending = false } in
      Ptbl.replace ns.mrai prefix s;
      s

(* Push the desired state towards the neighbor, respecting MRAI for
   announcements.  Returns actions. *)
let sync_neighbor ~now prefix best ns ~export ~withdraw =
  let previously = Ptbl.find_opt ns.adj_out prefix in
  let desired = desired_towards ~export best ns in
  let already_withdrawn =
    match previously with
    | None -> true
    | Some (Update.Withdraw _) -> true
    | Some (Update.Announce _) -> false
  in
  match desired with
  | None ->
      if already_withdrawn then []
      else begin
        (* Withdrawals bypass MRAI (RFC 4271 §9.2.1.1). *)
        let w = Lazy.force withdraw in
        Ptbl.replace ns.adj_out prefix w;
        [ Send { to_asn = ns.nb.neighbor_asn; update = w } ]
      end
  | Some u ->
      let same =
        match previously with Some p -> Update.equal p u | None -> false
      in
      if same then []
      else begin
        let ms = mrai_state_of ns prefix in
        if ns.nb.mrai <= 0.0 || now >= ms.gate_until then begin
          ms.gate_until <- now +. ns.nb.mrai;
          Ptbl.replace ns.adj_out prefix u;
          [ Send { to_asn = ns.nb.neighbor_asn; update = u } ]
        end
        else if ms.pending then []
        else begin
          ms.pending <- true;
          [ Set_mrai_timer
              { neighbor = ns.nb.neighbor_asn; prefix; at = ms.gate_until } ]
        end
      end

let feed_action t prefix best ~export ~withdraw =
  let observation =
    match best with
    | Some _ -> Lazy.force export
    | None -> Lazy.force withdraw
  in
  let same =
    match Ptbl.find_opt t.last_feed prefix with
    | Some prev -> Update.equal prev observation
    | None ->
        (* A withdraw for a never-announced prefix is not an observation. *)
        not (Update.is_announce observation)
  in
  if same then []
  else begin
    Ptbl.replace t.last_feed prefix observation;
    [ Feed observation ]
  end

let reconsider t ~now prefix =
  let old_best = Ptbl.find_opt t.loc_rib prefix in
  let new_best = decide t ~now prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b -> not (best_equal a b)
    | None, Some _ | Some _, None -> true
  in
  if not changed then []
  else begin
    (match new_best with
    | Some b -> Ptbl.replace t.loc_rib prefix b
    | None -> Ptbl.remove t.loc_rib prefix);
    let export, withdraw = shared_exports t prefix new_best in
    let exports = ref [] in
    for i = Array.length t.nstates - 1 downto 0 do
      exports :=
        sync_neighbor ~now prefix new_best t.nstates.(i) ~export ~withdraw
        @ !exports
    done;
    !exports @ feed_action t prefix new_best ~export ~withdraw
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let classify_rfd_event existing update interned =
  match (update, existing) with
  | Update.Withdraw _, Some _ -> Some Rfd.Withdrawal
  | Update.Withdraw _, None -> None (* spurious withdrawal: no penalty *)
  | Update.Announce _, None -> Some Rfd.Readvertisement
  | Update.Announce a, Some (old : rib_in_entry) ->
      let same_path = Apath.equal interned old.in_path in
      let same_aggregator =
        Update.aggregator_equal a.aggregator old.in_aggregator
      in
      if same_path && same_aggregator then None (* exact duplicate *)
      else Some Rfd.Attribute_change

let handle_update t ~now ~from update =
  let ns = state_exn t from in
  let prefix = Update.prefix update in
  let existing = Ptbl.find_opt ns.rib_in prefix in
  (* Loop prevention: an announcement containing our own ASN is rejected,
     which for RIB purposes equals a withdrawal of that session's route. *)
  let update =
    if Update.path_contains t.cfg.asn update then Update.Withdraw { prefix }
    else update
  in
  (* Intern the received path once: one traversal pre-computes the length
     and hash every later comparison uses. *)
  let interned =
    match update with
    | Update.Announce a -> Apath.of_list a.as_path
    | Update.Withdraw _ -> Apath.empty
  in
  let timer_actions =
    if ns.damps then begin
      match classify_rfd_event existing update interned with
      | None -> []
      | Some event ->
          let state = rfd_state_ensure ns prefix t.cfg.rfd_params in
          let was = Rfd.suppressed state ~now in
          Rfd.record state ~now event;
          let is_now = Rfd.suppressed state ~now in
          if is_now && not was then begin
            t.stats.rfd_suppressions <- t.stats.rfd_suppressions + 1;
            match Rfd.reuse_eta state ~now with
            | Some at -> [ Set_reuse_timer { neighbor = from; prefix; at } ]
            | None -> []
          end
          else []
    end
    else []
  in
  (match update with
  | Update.Withdraw _ -> Ptbl.remove ns.rib_in prefix
  | Update.Announce a ->
      Ptbl.replace ns.rib_in prefix
        { in_path = interned; in_aggregator = a.aggregator });
  timer_actions @ reconsider t ~now prefix

let originate t ~now ?aggregator prefix =
  Ptbl.replace t.originated prefix aggregator;
  reconsider t ~now prefix

let withdraw_origin t ~now prefix =
  Ptbl.remove t.originated prefix;
  reconsider t ~now prefix

let handle_reuse_check t ~now ~neighbor ~prefix =
  match rfd_state t ~neighbor ~prefix with
  | None -> []
  | Some state ->
      if Rfd.suppressed state ~now then begin
        (* Penalty grew since the timer was set: re-arm. *)
        match Rfd.reuse_eta state ~now with
        | Some at when at > now -> [ Set_reuse_timer { neighbor; prefix; at } ]
        | Some _ | None -> []
      end
      else begin
        t.stats.rfd_releases <- t.stats.rfd_releases + 1;
        reconsider t ~now prefix
      end

let handle_session_down t ~now ~neighbor =
  let ns = state_exn t neighbor in
  (* Routes learned on the session are gone: clear the adj-RIB-in ... *)
  let affected =
    Ptbl.fold (fun prefix _ acc -> prefix :: acc) ns.rib_in []
    |> List.sort_uniq Prefix.compare
  in
  Ptbl.reset ns.rib_in;
  (* ... and forget what we advertised over it, together with its MRAI
     state — a re-established session starts from an empty adj-RIB-out. *)
  Ptbl.reset ns.adj_out;
  Ptbl.reset ns.mrai;
  (* Path re-exploration: every prefix routed via the dead session is
     reconsidered, producing withdrawals or failover announcements
     downstream. *)
  List.concat_map (reconsider t ~now) affected

let handle_session_up t ~now ~neighbor =
  let ns = state_exn t neighbor in
  (* The peer's RIB is empty after the reset: re-advertise the current
     loc-RIB from scratch, subject to the usual export policy. *)
  let prefixes =
    Ptbl.fold (fun prefix _ acc -> prefix :: acc) t.loc_rib []
    |> List.sort_uniq Prefix.compare
  in
  List.concat_map
    (fun prefix ->
      Ptbl.remove ns.adj_out prefix;
      Ptbl.remove ns.mrai prefix;
      let best = Ptbl.find_opt t.loc_rib prefix in
      let export, withdraw = shared_exports t prefix best in
      sync_neighbor ~now prefix best ns ~export ~withdraw)
    prefixes

let handle_mrai_expiry t ~now ~neighbor ~prefix =
  let ns = state_exn t neighbor in
  let ms = mrai_state_of ns prefix in
  ms.pending <- false;
  ms.gate_until <- Float.min ms.gate_until now;
  let best = Ptbl.find_opt t.loc_rib prefix in
  let export, withdraw = shared_exports t prefix best in
  sync_neighbor ~now prefix best ns ~export ~withdraw
