(** The BGP finite-state machine (RFC 4271 §8).

    The AS-level simulator treats sessions as always-established; this module
    supplies the session layer a full BGP implementation needs — the
    Idle → Connect → Active → OpenSent → OpenConfirm → Established machine
    with its timers — and is what a future packet-level mode (and the
    session-reset noise model) hangs off.

    The machine is pure: {!handle} consumes an event and returns the new
    state plus the actions the caller must perform (send a message, arm a
    timer, tear down the transport).  Timers are the caller's job; expiry is
    delivered back as an event. *)

type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

type event =
  | Manual_start
  | Manual_stop
  | Transport_connected       (** TCP session came up. *)
  | Transport_failed          (** TCP failed or was torn down. *)
  | Open_received of { peer_asn : Asn.t; hold_time : float }
  | Keepalive_received
  | Update_received
  | Notification_received
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

type action =
  | Initiate_transport
  | Close_transport
  | Send_open
  | Send_keepalive
  | Send_notification of string
  | Start_hold_timer of float
  | Start_keepalive_timer of float
  | Start_connect_retry_timer of float
  | Session_up                (** Routes may now be exchanged. *)
  | Session_down of string    (** Drop all routes learned on this session. *)

type config = {
  my_asn : Asn.t;
  hold_time : float;        (** Proposed hold time (default 90 s). *)
  connect_retry : float;    (** ConnectRetry timer (default 120 s). *)
}

val default_config : Asn.t -> config

type t

val create : config -> t
val state : t -> state
val peer : t -> Asn.t option
(** The peer's ASN once an OPEN has been accepted. *)

val negotiated_hold_time : t -> float option
(** Minimum of ours and the peer's, once negotiated (0 disables). *)

val handle : t -> event -> t * action list
(** Pure transition.  Unexpected events in a state fall back to Idle with
    [Close_transport]/[Session_down] as RFC 4271 prescribes for FSM errors
    (collapsing its NOTIFICATION sub-cases). *)
