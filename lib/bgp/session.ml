type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

type event =
  | Manual_start
  | Manual_stop
  | Transport_connected
  | Transport_failed
  | Open_received of { peer_asn : Asn.t; hold_time : float }
  | Keepalive_received
  | Update_received
  | Notification_received
  | Hold_timer_expired
  | Keepalive_timer_expired
  | Connect_retry_expired

type action =
  | Initiate_transport
  | Close_transport
  | Send_open
  | Send_keepalive
  | Send_notification of string
  | Start_hold_timer of float
  | Start_keepalive_timer of float
  | Start_connect_retry_timer of float
  | Session_up
  | Session_down of string

type config = { my_asn : Asn.t; hold_time : float; connect_retry : float }

let default_config my_asn =
  { my_asn; hold_time = 90.0; connect_retry = 120.0 }

type t = {
  cfg : config;
  state : state;
  peer : Asn.t option;
  hold : float option;  (* negotiated hold time *)
}

let create cfg = { cfg; state = Idle; peer = None; hold = None }
let state t = t.state
let peer t = t.peer
let negotiated_hold_time t = t.hold

(* Keepalives run at a third of the hold time, per RFC 4271's suggestion. *)
let keepalive_interval hold = hold /. 3.0

let reset ?(reason = "FSM error") ?(was_established = false) t =
  let actions =
    Close_transport :: (if was_established then [ Session_down reason ] else [])
  in
  ({ t with state = Idle; peer = None; hold = None }, actions)

let handle t event =
  match (t.state, event) with
  (* --- Idle --- *)
  | Idle, Manual_start ->
      ( { t with state = Connect },
        [ Initiate_transport; Start_connect_retry_timer t.cfg.connect_retry ] )
  | Idle, (Manual_stop | Transport_failed | Notification_received) -> (t, [])
  (* --- Connect --- *)
  | Connect, Transport_connected ->
      ({ t with state = Open_sent }, [ Send_open; Start_hold_timer 240.0 ])
  | Connect, Transport_failed ->
      ( { t with state = Active },
        [ Start_connect_retry_timer t.cfg.connect_retry ] )
  | Connect, Connect_retry_expired ->
      ( t,
        [ Close_transport; Initiate_transport;
          Start_connect_retry_timer t.cfg.connect_retry ] )
  | Connect, Manual_stop -> reset ~reason:"manual stop" t
  (* --- Active --- *)
  | Active, Connect_retry_expired ->
      ( { t with state = Connect },
        [ Initiate_transport; Start_connect_retry_timer t.cfg.connect_retry ] )
  | Active, Transport_connected ->
      ({ t with state = Open_sent }, [ Send_open; Start_hold_timer 240.0 ])
  | Active, Manual_stop -> reset ~reason:"manual stop" t
  | Active, Transport_failed ->
      (t, [ Start_connect_retry_timer t.cfg.connect_retry ])
  (* --- OpenSent --- *)
  | Open_sent, Open_received { peer_asn; hold_time } ->
      let negotiated = Float.min t.cfg.hold_time hold_time in
      let timer_actions =
        if negotiated > 0.0 then
          [ Start_hold_timer negotiated;
            Start_keepalive_timer (keepalive_interval negotiated) ]
        else []
      in
      ( { t with state = Open_confirm; peer = Some peer_asn;
          hold = Some negotiated },
        Send_keepalive :: timer_actions )
  | Open_sent, Transport_failed ->
      ( { t with state = Active },
        [ Start_connect_retry_timer t.cfg.connect_retry ] )
  | Open_sent, Hold_timer_expired ->
      let t', actions = reset ~reason:"hold timer" t in
      (t', Send_notification "hold timer expired" :: actions)
  | Open_sent, Manual_stop ->
      let t', actions = reset ~reason:"manual stop" t in
      (t', Send_notification "cease" :: actions)
  (* --- OpenConfirm --- *)
  | Open_confirm, Keepalive_received ->
      (match t.hold with
      | Some hold when hold > 0.0 ->
          ({ t with state = Established }, [ Session_up; Start_hold_timer hold ])
      | _ -> ({ t with state = Established }, [ Session_up ]))
  | Open_confirm, Keepalive_timer_expired -> (
      ( t,
        Send_keepalive
        ::
        (match t.hold with
        | Some hold when hold > 0.0 ->
            [ Start_keepalive_timer (keepalive_interval hold) ]
        | _ -> []) ))
  | Open_confirm, Hold_timer_expired ->
      let t', actions = reset ~reason:"hold timer" t in
      (t', Send_notification "hold timer expired" :: actions)
  | Open_confirm, (Transport_failed | Notification_received) ->
      reset ~reason:"transport lost" t
  | Open_confirm, Manual_stop ->
      let t', actions = reset ~reason:"manual stop" t in
      (t', Send_notification "cease" :: actions)
  (* --- Established --- *)
  | Established, (Update_received | Keepalive_received) -> (
      ( t,
        match t.hold with
        | Some hold when hold > 0.0 -> [ Start_hold_timer hold ]
        | _ -> [] ))
  | Established, Keepalive_timer_expired -> (
      ( t,
        Send_keepalive
        ::
        (match t.hold with
        | Some hold when hold > 0.0 ->
            [ Start_keepalive_timer (keepalive_interval hold) ]
        | _ -> []) ))
  | Established, Hold_timer_expired ->
      let t', actions = reset ~was_established:true ~reason:"hold timer" t in
      (t', Send_notification "hold timer expired" :: actions)
  | Established, (Transport_failed | Notification_received) ->
      reset ~was_established:true ~reason:"session lost" t
  | Established, Manual_stop ->
      let t', actions = reset ~was_established:true ~reason:"manual stop" t in
      (t', Send_notification "cease" :: actions)
  (* --- FSM errors: anything else drops to Idle. --- *)
  | state, _ -> reset ~was_established:(state = Established) t
