(** Route Flap Damping configuration parameters (RFC 2439, Appendix B of the
    paper).

    All times are seconds; penalties are dimensionless.  The penalty is capped
    at a ceiling derived from the reuse threshold and the max-suppress-time so
    that, as in vendor implementations, no route stays suppressed longer than
    [max_suppress_time] after its last flap. *)

type t = {
  withdrawal_penalty : float;        (** Added per withdrawal (1000). *)
  readvertisement_penalty : float;   (** Added per re-advertisement (Cisco 0, Juniper 1000). *)
  attribute_change_penalty : float;  (** Added per attribute change (500). *)
  suppress_threshold : float;        (** Damp when penalty exceeds this. *)
  half_life : float;                 (** Exponential decay half-life. *)
  reuse_threshold : float;           (** Release when penalty decays below this. *)
  max_suppress_time : float;         (** Longest suppression after the last flap. *)
  timer_based_suppression : bool;
      (** How max-suppress-time is enforced.  [false] (Cisco/IOS): the
          penalty is capped at {!penalty_ceiling}, so a route stays damped
          while it keeps flapping and is released max-suppress-time after the
          last flap.  [true] (Juniper/Junos): an explicit timer releases the
          route max-suppress-time after the suppression began, even
          mid-flap — the next flap re-suppresses it.  The two semantics
          produce the distinct r-delta signatures behind Fig. 13. *)
}

val cisco : t
(** Deprecated vendor default: suppress-threshold 2000, half-life 15 min,
    reuse 750, max-suppress 60 min, no re-advertisement penalty. *)

val juniper : t
(** Deprecated vendor default: suppress-threshold 3000, re-advertisement
    penalty 1000, otherwise as Cisco.  Junos also supports an explicit
    suppression timer; set [timer_based_suppression] to model it. *)

val rfc7454 : t
(** RIPE-580 / RFC 7454 recommended: suppress-threshold 6000 — only routes
    flapping every couple of minutes get damped. *)

val with_max_suppress : t -> minutes:float -> t
(** Override the max-suppress-time (the paper finds operators use 10, 30 and
    60 minutes; Fig. 13's plateaus). *)

val with_max_suppress_scaled : t -> minutes:float -> t
(** Like {!with_max_suppress} but also scales the half-life to a quarter of
    the max-suppress-time (the vendor-default 60 min / 15 min ratio).  IOS
    refuses configurations whose penalty ceiling falls below the suppress
    threshold, so operators shortening the max-suppress-time shorten the
    half-life with it; keeping the ratio keeps the ceiling at 16× the reuse
    threshold, above every preset's suppress threshold. *)

val penalty_ceiling : t -> float
(** [reuse_threshold · 2^(max_suppress_time / half_life)]: the cap that
    enforces [max_suppress_time]. *)

val flaps_to_suppress : t -> int
(** Number of withdrawal+re-advertisement rounds (ignoring decay) needed to
    cross the suppress threshold — a quick sanity metric used in tests. *)

val pp : Format.formatter -> t -> unit
