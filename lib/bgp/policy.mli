(** Inter-AS routing policy: Gao–Rexford preferences, valley-free export, and
    per-neighbor RFD scoping.

    [relationship] is the role of the {e neighbor} relative to the local AS:
    a [Customer] neighbor pays us; a [Provider] neighbor is paid by us. *)

type relationship = Customer | Peer | Provider

val relationship_equal : relationship -> relationship -> bool
val pp_relationship : Format.formatter -> relationship -> unit

val flip : relationship -> relationship
(** The relationship as seen from the other end of the link. *)

val local_pref : relationship -> int
(** Customer routes (300) over peer routes (200) over provider routes
    (100). *)

val export_ok : learned_from:relationship option -> towards:relationship -> bool
(** Valley-free export: self-originated ([learned_from = None]) and
    customer-learned routes go to everyone; peer- and provider-learned routes
    go only to customers. *)

(** Where an AS applies Route Flap Damping.  The paper (§2.1) observes that
    operators often restrict RFD to a subset of sessions — e.g. only
    customers, or all neighbors except one (Verizon's AS 701 damps all
    neighbors except AS 2497). *)
type rfd_scope =
  | No_rfd
  | All_neighbors
  | Only_customers
  | Only_neighbors of Asn.Set.t
  | All_except of Asn.Set.t

val rfd_applies :
  rfd_scope -> neighbor:Asn.t -> relationship:relationship -> bool
(** Does this AS damp updates received on the session to [neighbor]? *)

val scope_is_damping : rfd_scope -> bool
(** [true] iff the scope damps at least one potential session. *)

val pp_scope : Format.formatter -> rfd_scope -> unit
