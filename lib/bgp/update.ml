type aggregator = { aggregator_asn : Asn.t; sent_at : float; valid : bool }

type t =
  | Announce of {
      prefix : Prefix.t;
      as_path : Asn.t list;
      aggregator : aggregator option;
    }
  | Withdraw of { prefix : Prefix.t }

let prefix = function
  | Announce { prefix; _ } -> prefix
  | Withdraw { prefix } -> prefix

let is_announce = function Announce _ -> true | Withdraw _ -> false

let as_path = function
  | Announce { as_path; _ } -> Some as_path
  | Withdraw _ -> None

let aggregator = function
  | Announce { aggregator; _ } -> aggregator
  | Withdraw _ -> None

let prepend asn = function
  | Announce a -> Announce { a with as_path = asn :: a.as_path }
  | Withdraw _ as w -> w

let path_contains asn = function
  | Announce { as_path; _ } -> List.exists (Asn.equal asn) as_path
  | Withdraw _ -> false

let aggregator_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
      Asn.equal x.aggregator_asn y.aggregator_asn
      && Float.equal x.sent_at y.sent_at && Bool.equal x.valid y.valid
  | None, Some _ | Some _, None -> false

(* Single early-exit walk instead of two List.length traversals plus
   for_all2 — this comparison sits on the adj-RIB-out hot path. *)
let rec path_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> Asn.equal x y && path_equal xs ys
  | [], _ :: _ | _ :: _, [] -> false

let equal a b =
  match (a, b) with
  | Announce x, Announce y ->
      Prefix.equal x.prefix y.prefix
      && path_equal x.as_path y.as_path
      && aggregator_equal x.aggregator y.aggregator
  | Withdraw x, Withdraw y -> Prefix.equal x.prefix y.prefix
  | Announce _, Withdraw _ | Withdraw _, Announce _ -> false

let pp fmt = function
  | Announce { prefix; as_path; _ } ->
      Format.fprintf fmt "A %a [%a]" Prefix.pp prefix
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " ")
           Asn.pp)
        as_path
  | Withdraw { prefix } -> Format.fprintf fmt "W %a" Prefix.pp prefix
