(** BGP update messages.

    Announcements carry the AS path and, like the paper's Beacons, encode the
    Beacon send timestamp in the transitive aggregator attribute so vantage
    points can associate each received announcement with the Beacon event
    that caused it.  A corrupted aggregator ([valid = false]) models the 1 %
    of real announcements observed with an empty/invalid aggregator IP, which
    the analysis pipeline must discard. *)

type aggregator = {
  aggregator_asn : Asn.t;  (** The Beacon's origin AS. *)
  sent_at : float;         (** Beacon send time, seconds since campaign start. *)
  valid : bool;            (** [false] models a corrupted aggregator IP field. *)
}

type t =
  | Announce of {
      prefix : Prefix.t;
      as_path : Asn.t list;  (** Nearest AS first, origin AS last. *)
      aggregator : aggregator option;
    }
  | Withdraw of { prefix : Prefix.t }

val prefix : t -> Prefix.t
val is_announce : t -> bool

val as_path : t -> Asn.t list option
(** [Some path] for announcements, [None] for withdrawals. *)

val aggregator : t -> aggregator option

val prepend : Asn.t -> t -> t
(** [prepend asn u] prefixes [asn] to the AS path of an announcement (the
    sending router's AS); withdrawals pass through unchanged. *)

val path_contains : Asn.t -> t -> bool
(** Loop check: does the announcement's path already contain [asn]? *)

val aggregator_equal : aggregator option -> aggregator option -> bool

(** [equal] is structural equality including the aggregator attribute — two
    Beacon announcements that differ only in their encoded timestamp are
    distinct updates and must both propagate. *)
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
