(** IPv4 prefixes. *)

type t = private { network : int32; length : int }

val make : int32 -> int -> t
(** [make network length] masks [network] to [length] bits.  [length] must
    be within 0–32. *)

val of_string : string -> t
(** Parse dotted-quad/length notation, e.g. ["192.0.2.0/24"].  Raises
    [Invalid_argument] on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val length : t -> int
val network : t -> int32

val contains : t -> t -> bool
(** [contains outer inner] is true when [inner] is fully covered by
    [outer]. *)

val beacon : site:int -> slot:int -> t
(** Deterministic /24 Beacon prefix allocator: site [s], slot [k] maps to
    [10.s.k.0/24] — mirroring the paper's layout of four prefixes (one
    anchor + three oscillating) per Beacon site. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
