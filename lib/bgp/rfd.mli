(** The RFC 2439 Route Flap Damping penalty state machine.

    One [t] tracks one (prefix, BGP session) pair, exactly as the paper's §2.1
    describes: the penalty increases additively with each update, decays
    exponentially with the configured half-life in between, suppresses the
    route when it exceeds the suppress threshold, and releases it when it
    decays below the reuse threshold.  The penalty is capped at
    {!Rfd_params.penalty_ceiling} (Cisco semantics): once flapping stops, a
    capped penalty decays to the reuse threshold in exactly
    max-suppress-time — the mechanism behind Fig. 13's 10/30/60-minute
    re-advertisement plateaus — while continued flapping keeps the route
    suppressed. *)

type event =
  | Withdrawal          (** A withdrawal for a previously announced route. *)
  | Readvertisement     (** An announcement after a withdrawal. *)
  | Attribute_change    (** An announcement replacing a live route with new attributes. *)

type t

val create : Rfd_params.t -> t
val params : t -> Rfd_params.t

val penalty : t -> now:float -> float
(** Decayed penalty at time [now]. *)

val suppressed : t -> now:float -> bool
(** Whether the route is suppressed at [now] (applies decay and release). *)

val record : t -> now:float -> event -> unit
(** Account one update.  May transition into suppression. *)

val reuse_eta : t -> now:float -> float option
(** If currently suppressed, the absolute time at which the penalty will have
    decayed to the reuse threshold (assuming no further updates). *)

val suppression_started : t -> float option
(** Time at which the current suppression began, if suppressed. *)

val history : t -> (float * float) list
(** [(time, penalty-after-event)] pairs, oldest first — used to draw the
    Fig. 2 penalty curve. *)
