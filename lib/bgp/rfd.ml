type event = Withdrawal | Readvertisement | Attribute_change

type t = {
  params : Rfd_params.t;
  mutable penalty : float;      (* value at [last_time] *)
  mutable last_time : float;
  mutable suppressed : bool;
  mutable suppressed_since : float;
  mutable history : (float * float) list;  (* newest first *)
}

let create params =
  {
    params;
    penalty = 0.0;
    last_time = 0.0;
    suppressed = false;
    suppressed_since = 0.0;
    history = [];
  }

let params t = t.params

let decayed t ~now =
  let dt = now -. t.last_time in
  if dt <= 0.0 then t.penalty
  else t.penalty *. Float.pow 2.0 (-.dt /. t.params.Rfd_params.half_life)

let penalty t ~now = decayed t ~now

(* Fold the decay into the stored penalty and release when it drops below
   the reuse threshold.  Max-suppress-time is enforced through the penalty
   ceiling (Cisco semantics): a capped penalty decays to the reuse threshold
   in exactly max-suppress-time, so suppression never outlives it once the
   flapping stops — while continued flapping keeps the route suppressed. *)
let refresh t ~now =
  let p = decayed t ~now in
  t.penalty <- p;
  t.last_time <- Float.max t.last_time now;
  if t.suppressed then begin
    let timer_release =
      t.params.Rfd_params.timer_based_suppression
      && now -. t.suppressed_since >= t.params.Rfd_params.max_suppress_time
    in
    if p < t.params.Rfd_params.reuse_threshold || timer_release then
      t.suppressed <- false
  end

let suppressed t ~now =
  refresh t ~now;
  t.suppressed

let increment params event =
  match event with
  | Withdrawal -> params.Rfd_params.withdrawal_penalty
  | Readvertisement -> params.Rfd_params.readvertisement_penalty
  | Attribute_change -> params.Rfd_params.attribute_change_penalty

let record t ~now event =
  refresh t ~now;
  let bumped = t.penalty +. increment t.params event in
  (* The ceiling cap is how IOS enforces max-suppress-time; under timer
     semantics the timer does that job and the penalty runs free. *)
  t.penalty <-
    (if t.params.Rfd_params.timer_based_suppression then bumped
     else Float.min (Rfd_params.penalty_ceiling t.params) bumped);
  t.last_time <- now;
  if (not t.suppressed) && t.penalty > t.params.Rfd_params.suppress_threshold
  then begin
    t.suppressed <- true;
    t.suppressed_since <- now
  end;
  t.history <- (now, t.penalty) :: t.history

let reuse_eta t ~now =
  refresh t ~now;
  if not t.suppressed then None
  else begin
    let reuse = t.params.Rfd_params.reuse_threshold in
    let decay_eta =
      if t.penalty <= reuse then now
      else
        (* penalty · 2^(−dt/half_life) = reuse  ⇒  dt = h · log2(p/reuse) *)
        t.last_time
        +. t.params.Rfd_params.half_life
           *. (Float.log (t.penalty /. reuse) /. Float.log 2.0)
    in
    if t.params.Rfd_params.timer_based_suppression then
      Some
        (Float.min decay_eta
           (t.suppressed_since +. t.params.Rfd_params.max_suppress_time))
    else Some decay_eta
  end

let suppression_started t = if t.suppressed then Some t.suppressed_since else None
let history t = List.rev t.history
