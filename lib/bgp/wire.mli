(** RFC 4271 BGP UPDATE wire format.

    Encodes {!Update.t} to the bytes a BGP speaker would put on the wire and
    decodes them back.  Faithful to the paper's measurement trick: the Beacon
    send time is carried in the AGGREGATOR attribute's IPv4 field as a 32-bit
    second counter (exactly how the RIPE Beacons encode timestamps), and a
    corrupted aggregator is encoded as 0.0.0.0 — the "empty, invalid
    aggregator IP" the paper had to discard.

    Supported path attributes: ORIGIN (1), AS_PATH (2, one AS_SEQUENCE
    segment with four-octet ASNs per RFC 6793), NEXT_HOP (3) and
    AGGREGATOR (7, four-octet ASN form).  Unknown optional attributes are
    skipped on decode; unknown well-known attributes are an error. *)

type error =
  | Truncated of string        (** Input ended inside the named field. *)
  | Bad_marker                 (** Header marker is not all-ones. *)
  | Bad_message_type of int    (** Not an UPDATE (type 2). *)
  | Bad_attribute of string    (** Malformed path attribute. *)
  | Trailing_bytes of int      (** Message shorter than its payload. *)

val pp_error : Format.formatter -> error -> unit

val encode : Update.t -> bytes
(** The complete BGP message: 16-byte marker, length, type 2, UPDATE body.
    Announcements carry ORIGIN IGP, the AS path, NEXT_HOP 0.0.0.0 and, when
    present, the AGGREGATOR with the encoded timestamp; withdrawals carry
    the prefix in the withdrawn-routes field. *)

val decode : bytes -> (Update.t, error) result
(** Inverse of {!encode}.  [decode (encode u)] returns an update equal to
    [u] up to timestamp quantisation (whole seconds). *)

val encode_many : Update.t list -> bytes
val decode_many : bytes -> (Update.t list, error) result
(** Concatenated messages, as they appear in a BGP session stream. *)
