type t = { nodes : Asn.t list; length : int; hash : int }

let empty = { nodes = []; length = 0; hash = 17 }

let of_list nodes =
  let rec go h n = function
    | [] -> (h land max_int, n)
    | a :: rest -> go ((h * 31) + Asn.to_int a) (n + 1) rest
  in
  let hash, length = go 17 0 nodes in
  { nodes; length; hash }

let nodes t = t.nodes
let length t = t.length
let hash t = t.hash
let is_empty t = t.length = 0

let rec nodes_equal a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> Asn.equal x y && nodes_equal xs ys
  | [], _ :: _ | _ :: _, [] -> false

(* Hash and length disagree on almost every unequal pair, so the node walk
   runs only on (near-certain) equality. *)
let equal a b =
  a.hash = b.hash && a.length = b.length
  && (a.nodes == b.nodes || nodes_equal a.nodes b.nodes)

let contains asn t = List.exists (Asn.equal asn) t.nodes

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f " ")
    Asn.pp fmt t.nodes
