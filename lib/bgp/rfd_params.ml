type t = {
  withdrawal_penalty : float;
  readvertisement_penalty : float;
  attribute_change_penalty : float;
  suppress_threshold : float;
  half_life : float;
  reuse_threshold : float;
  max_suppress_time : float;
  timer_based_suppression : bool;
}

let minutes m = m *. 60.0

let cisco =
  {
    withdrawal_penalty = 1000.0;
    readvertisement_penalty = 0.0;
    attribute_change_penalty = 500.0;
    suppress_threshold = 2000.0;
    half_life = minutes 15.0;
    reuse_threshold = 750.0;
    max_suppress_time = minutes 60.0;
    timer_based_suppression = false;
  }

let juniper =
  {
    cisco with
    readvertisement_penalty = 1000.0;
    suppress_threshold = 3000.0;
  }

let rfc7454 =
  {
    cisco with
    readvertisement_penalty = 1000.0;
    suppress_threshold = 6000.0;
  }

let with_max_suppress t ~minutes:m = { t with max_suppress_time = minutes m }

let with_max_suppress_scaled t ~minutes:m =
  { t with max_suppress_time = minutes m; half_life = minutes (m /. 4.0) }

let penalty_ceiling t =
  t.reuse_threshold *. Float.pow 2.0 (t.max_suppress_time /. t.half_life)

let flaps_to_suppress t =
  let per_round = t.withdrawal_penalty +. t.readvertisement_penalty in
  let per_round = Float.max per_round 1.0 in
  int_of_float (Float.ceil (t.suppress_threshold /. per_round))

let pp fmt t =
  Format.fprintf fmt
    "{suppress=%.0f reuse=%.0f half-life=%.0fmin max-suppress=%.0fmin \
     penalties=w%.0f/r%.0f/a%.0f}"
    t.suppress_threshold t.reuse_threshold (t.half_life /. 60.0)
    (t.max_suppress_time /. 60.0) t.withdrawal_penalty
    t.readvertisement_penalty t.attribute_change_penalty
