type relationship = Customer | Peer | Provider

let relationship_equal a b =
  match (a, b) with
  | Customer, Customer | Peer, Peer | Provider, Provider -> true
  | (Customer | Peer | Provider), _ -> false

let pp_relationship fmt = function
  | Customer -> Format.pp_print_string fmt "customer"
  | Peer -> Format.pp_print_string fmt "peer"
  | Provider -> Format.pp_print_string fmt "provider"

let flip = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer

let local_pref = function Customer -> 300 | Peer -> 200 | Provider -> 100

let export_ok ~learned_from ~towards =
  match learned_from with
  | None -> true
  | Some Customer -> true
  | Some (Peer | Provider) -> (
      match towards with Customer -> true | Peer | Provider -> false)

type rfd_scope =
  | No_rfd
  | All_neighbors
  | Only_customers
  | Only_neighbors of Asn.Set.t
  | All_except of Asn.Set.t

let rfd_applies scope ~neighbor ~relationship =
  match scope with
  | No_rfd -> false
  | All_neighbors -> true
  | Only_customers -> relationship_equal relationship Customer
  | Only_neighbors set -> Asn.Set.mem neighbor set
  | All_except set -> not (Asn.Set.mem neighbor set)

let scope_is_damping = function
  | No_rfd -> false
  | All_neighbors | Only_customers -> true
  | Only_neighbors set -> not (Asn.Set.is_empty set)
  | All_except _ -> true

let pp_scope fmt = function
  | No_rfd -> Format.pp_print_string fmt "no-rfd"
  | All_neighbors -> Format.pp_print_string fmt "all-neighbors"
  | Only_customers -> Format.pp_print_string fmt "only-customers"
  | Only_neighbors set ->
      Format.fprintf fmt "only[%d neighbors]" (Asn.Set.cardinal set)
  | All_except set ->
      Format.fprintf fmt "all-except[%d neighbors]" (Asn.Set.cardinal set)
