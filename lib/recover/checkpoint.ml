(* Durable on-disk checkpoint store.

   Layout of a store directory:

     MANIFEST            envelope, payload = fingerprint string
     LATEST              envelope, payload = key + save counter (informational)
     <key>.ck            current snapshot for [key]
     <key>.prev.ck       previous snapshot (fallback if .ck is corrupt)
     <key>.ck.corrupt-*  quarantined files that failed CRC/version checks

   Every file is a self-checking envelope: magic + format version + key +
   payload, followed by the CRC-32 of everything before it.  Writes go
   through a temp file and rename so a crash mid-write can never destroy
   the last good snapshot; the previous snapshot is rotated aside before
   the rename so even a post-rename corruption (bad disk) still leaves a
   recovery point. *)

module Policy = Because_resilience.Policy
module Breaker = Because_resilience.Breaker
module Retry = Because_resilience.Retry

let magic = "BCKP"
let version = 1

type t = {
  dir : string;
  fingerprint : string;
  retry : Policy.t;
  breaker : Breaker.t;
  mutex : Mutex.t;
  mutable warnings : string list; (* newest first *)
  mutable saves : int;
  mutable restores : int;
  mutable fallbacks : int;
  mutable write_retries : int;
}

let warn t fmt =
  Printf.ksprintf
    (fun s ->
      Mutex.lock t.mutex;
      t.warnings <- s :: t.warnings;
      Mutex.unlock t.mutex)
    fmt

let warnings t = List.rev t.warnings
let saves t = t.saves
let restores t = t.restores
let fallbacks t = t.fallbacks
let write_retries t = t.write_retries
let dir t = t.dir
let fingerprint t = t.fingerprint

(* --- envelope --- *)

let seal ~key payload =
  let w = Codec.writer () in
  Codec.string w magic;
  Codec.int w version;
  Codec.string w key;
  Codec.string w payload;
  let body = Codec.contents w in
  let crc = Codec.crc32_string body in
  let w2 = Codec.writer () in
  Codec.i64 w2 (Int64.of_int32 crc);
  body ^ Codec.contents w2

let unseal ~key blob =
  let n = String.length blob in
  if n < 8 then raise (Codec.Malformed "envelope shorter than its checksum");
  let body = String.sub blob 0 (n - 8) in
  let stored_crc = Int64.to_int32 (String.get_int64_le blob (n - 8)) in
  let actual_crc = Codec.crc32_string body in
  if stored_crc <> actual_crc then
    raise
      (Codec.Malformed
         (Printf.sprintf "checksum mismatch: stored %08lx, computed %08lx"
            stored_crc actual_crc));
  let r = Codec.reader body in
  let m = Codec.read_string r in
  if m <> magic then raise (Codec.Malformed "bad magic");
  let v = Codec.read_int r in
  if v <> version then
    raise (Codec.Malformed (Printf.sprintf "unsupported format version %d" v));
  let k = Codec.read_string r in
  if k <> key then
    raise
      (Codec.Malformed (Printf.sprintf "key mismatch: file is for %S" k));
  let payload = Codec.read_string r in
  Codec.expect_end r;
  payload

(* --- filesystem helpers (Sys/Stdlib only; no Unix dependency) --- *)

(* Keys may contain characters unfit for filenames (shard separators,
   interval prefixes); encode anything outside a safe set as %XX. *)
let encode_key key =
  let b = Buffer.create (String.length key) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' ->
          Buffer.add_char b c
      | _ -> Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c)))
    key;
  Buffer.contents b

let path t key suffix = Filename.concat t.dir (encode_key key ^ suffix)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* All durable writes go through the injectable shim (and the store's
   retry policy, below): a transient disk fault is retried with backoff;
   a torn write that "succeeds" lands a file the CRC check quarantines. *)
let write_file_atomic = Io.write_file_atomic

let sys_error_only = function Sys_error _ -> true | _ -> false

let with_write_retry t ~label f =
  Retry.run ~policy:t.retry ~breaker:t.breaker ~retryable:sys_error_only
    ~on_retry:(fun ~attempt:_ _ -> t.write_retries <- t.write_retries + 1)
    ~label f

(* Quarantine a bad file under a unique name so it never gets retried but
   remains available for post-mortem. *)
let quarantine _t file =
  let rec pick n =
    let candidate = Printf.sprintf "%s.corrupt-%d" file n in
    if Sys.file_exists candidate then pick (n + 1) else candidate
  in
  let dest = pick 0 in
  (try Sys.rename file dest
   with Sys_error _ -> ( try Sys.remove file with Sys_error _ -> ()));
  Filename.basename dest

(* --- store lifecycle --- *)

let manifest_key = "__manifest__"
let latest_key = "__latest__"

let list_snapshots dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".ck" || Filename.check_suffix f ".prev.ck")

let write_manifest t =
  with_write_retry t ~label:"checkpoint:manifest" (fun () ->
      write_file_atomic ~dir:t.dir
        ~file:(Filename.concat t.dir "MANIFEST")
        (seal ~key:manifest_key t.fingerprint))

let default_retry = Policy.make ~base_s:0.002 ~cap_s:0.05 ~max_attempts:3 ()

let open_ ?(retry = default_retry) ~dir ~fingerprint () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Checkpoint.open_: %s is not a directory" dir);
  let t =
    {
      dir;
      fingerprint;
      retry;
      breaker = Breaker.create ();
      mutex = Mutex.create ();
      warnings = [];
      saves = 0;
      restores = 0;
      fallbacks = 0;
      write_retries = 0;
    }
  in
  let manifest = Filename.concat dir "MANIFEST" in
  (if Sys.file_exists manifest then
     match unseal ~key:manifest_key (read_file manifest) with
     | stored when stored = fingerprint -> ()
     | stored ->
         (* A different campaign's snapshots: quarantine everything rather
            than resume from state that silently mismatches the request. *)
         List.iter
           (fun f -> ignore (quarantine t (Filename.concat dir f)))
           (list_snapshots dir);
         ignore (quarantine t manifest);
         warn t
           "checkpoint dir %s was written by a different campaign \
            (fingerprint %s, expected %s); quarantined its snapshots and \
            starting fresh"
           dir
           (String.sub stored 0 (min 12 (String.length stored)))
           (String.sub fingerprint 0 (min 12 (String.length fingerprint)))
     | exception Codec.Malformed reason ->
         List.iter
           (fun f -> ignore (quarantine t (Filename.concat dir f)))
           (list_snapshots dir);
         ignore (quarantine t manifest);
         warn t
           "checkpoint manifest in %s is corrupt (%s); quarantined the \
            directory's snapshots and starting fresh"
           dir reason);
  write_manifest t;
  t

(* --- save / load --- *)

let save t ~key payload =
  let blob = seal ~key payload in
  let current = path t key ".ck" in
  let prev = path t key ".prev.ck" in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      with_write_retry t ~label:("checkpoint:" ^ key) (fun () ->
          (* Rotation is idempotent across retries: once the current
             snapshot has moved aside, a re-run skips straight to the
             write. *)
          if Sys.file_exists current then Io.rename current prev;
          write_file_atomic ~dir:t.dir ~file:current blob);
      t.saves <- t.saves + 1;
      let w = Codec.writer () in
      Codec.string w key;
      Codec.int w t.saves;
      with_write_retry t ~label:"checkpoint:latest" (fun () ->
          write_file_atomic ~dir:t.dir
            ~file:(Filename.concat t.dir "LATEST")
            (seal ~key:latest_key (Codec.contents w))))

let remove t ~key =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      List.iter
        (fun suffix ->
          let f = path t key suffix in
          if Sys.file_exists f then
            try Sys.remove f with Sys_error _ -> ())
        [ ".ck"; ".prev.ck" ])

(* Inverse of [encode_key]; %XX escapes decode back to the raw byte. *)
let decode_key s =
  let n = String.length s in
  let b = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> -1
  in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n && hex s.[!i + 1] >= 0 && hex s.[!i + 2] >= 0
     then begin
       Buffer.add_char b
         (Char.chr ((hex s.[!i + 1] * 16) + hex s.[!i + 2]));
       i := !i + 2
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let keys t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun f ->
             if
               Filename.check_suffix f ".ck"
               && not (Filename.check_suffix f ".prev.ck")
             then Some (decode_key (Filename.chop_suffix f ".ck"))
             else None)
      |> List.sort compare

(* Caller holds [t.mutex] (the OCaml runtime Mutex is not recursive), so
   counters and warnings are mutated directly here. *)
let load_file_unlocked t ~key file =
  if not (Sys.file_exists file) then None
  else
    match unseal ~key (read_file file) with
    | payload -> Some payload
    | exception Codec.Malformed reason ->
        let where = quarantine t file in
        t.fallbacks <- t.fallbacks + 1;
        t.warnings <-
          Printf.sprintf
            "checkpoint %s for %S failed validation (%s); quarantined as %s"
            (Filename.basename file) key reason where
          :: t.warnings;
        None

let load t ~key =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let result =
        match load_file_unlocked t ~key (path t key ".ck") with
        | Some payload -> Some payload
        | None -> (
            match load_file_unlocked t ~key (path t key ".prev.ck") with
            | Some payload ->
                t.warnings <-
                  Printf.sprintf "recovered %S from the previous snapshot" key
                  :: t.warnings;
                Some payload
            | None -> None)
      in
      (match result with
      | Some _ -> t.restores <- t.restores + 1
      | None -> ());
      result)

let latest t =
  let file = Filename.concat t.dir "LATEST" in
  if not (Sys.file_exists file) then None
  else
    match unseal ~key:latest_key (read_file file) with
    | payload ->
        let r = Codec.reader payload in
        let key = Codec.read_string r in
        let saves = Codec.read_int r in
        Codec.expect_end r;
        Some (key, saves)
    | exception Codec.Malformed _ -> None
