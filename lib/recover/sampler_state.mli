(** Serialized form of a sampler's mid-run state.

    One variant per resumable sampler, wrapping the transparent state
    record the sampler itself defines.  The encode/decode pair is the only
    place the on-disk layout of MCMC state is known.

    Two on-disk generations exist: legacy tags 0/1/2 stored kept draws as
    an array of rows, current tags 3/4/5 store them flat (row-major).
    {!encode} always writes the flat form; {!decode} accepts both. *)

type t =
  | Mh of Because_mcmc.Metropolis.state
  | Hmc of Because_mcmc.Hmc.state
  | Gibbs of Because_mcmc.Gibbs.state

val sweep : t -> int
(** Completed sweeps (iterations for HMC) at the snapshot. *)

val draws_kept : t -> int
(** Retained posterior draws at the snapshot. *)

val encode : Codec.writer -> t -> unit

val decode : Codec.reader -> t
(** Raises {!Codec.Malformed} on an unrecognized or inconsistent
    serialization. *)
