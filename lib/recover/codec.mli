(** Fixed-width binary serialization for checkpoints.

    Resume must be bit-for-bit faithful, so this codec never loses width:
    integers and floats are stored as full 8-byte little-endian words
    (floats via [Int64.bits_of_float]), booleans and tags as single bytes,
    strings length-prefixed.  Readers validate as they go and raise
    {!Malformed} on any inconsistency — the checkpoint layer treats that
    exactly like a checksum failure (quarantine and fall back). *)

exception Malformed of string
(** Raised by all [read_*] functions on truncated or inconsistent input. *)

(** {1 CRC-32} *)

val crc32 : ?crc:int32 -> string -> pos:int -> len:int -> int32
(** IEEE 802.3 CRC-32 (polynomial [0xEDB88320]) of a substring; pass the
    previous value via [?crc] to checksum incrementally. *)

val crc32_string : string -> int32
(** [crc32_string s] is the CRC-32 of the whole string. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val u8 : writer -> int -> unit
val i64 : writer -> int64 -> unit
val int : writer -> int -> unit
val float : writer -> float -> unit
val bool : writer -> bool -> unit
val string : writer -> string -> unit
val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val float_array : writer -> float array -> unit
val int_array : writer -> int array -> unit

(** {1 Reading} *)

type reader

val reader : string -> reader
val read_u8 : reader -> int
val read_i64 : reader -> int64
val read_int : reader -> int
val read_float : reader -> float
val read_bool : reader -> bool
val read_string : reader -> string
val read_option : reader -> (reader -> 'a) -> 'a option
val read_list : reader -> (reader -> 'a) -> 'a list
val read_array : reader -> (reader -> 'a) -> 'a array
val read_float_array : reader -> float array
val read_int_array : reader -> int array

val at_end : reader -> bool
(** True when every byte has been consumed. *)

val expect_end : reader -> unit
(** Raises {!Malformed} unless the reader consumed the whole input. *)
