(* Per-chain checkpoint plumbing: what the inference driver needs to save
   and restore a chain, without knowing about stores, files or cadences. *)

type saved = { state : Sampler_state.t; prior_warnings : string list }

type hooks = {
  load : key:string -> saved option;
  save : key:string -> sweep:int -> saved -> unit;
  every_sweeps : int option;
  every_seconds : float option;
}

let default_every_seconds = 30.0

let encode_saved sv =
  let w = Codec.writer () in
  Sampler_state.encode w sv.state;
  Codec.list w Codec.string sv.prior_warnings;
  Codec.contents w

let decode_saved payload =
  let r = Codec.reader payload in
  let state = Sampler_state.decode r in
  let prior_warnings = Codec.read_list r Codec.read_string in
  Codec.expect_end r;
  { state; prior_warnings }

let store_hooks store ~namespace ?(every_sweeps = None)
    ?(every_seconds = Some default_every_seconds) () =
  let full key = namespace ^ key in
  let load ~key =
    match Checkpoint.load store ~key:(full key) with
    | None -> None
    | Some payload -> (
        (* A payload that passed the CRC but fails to decode is treated
           the same as corruption: warn and start the chain fresh. *)
        match decode_saved payload with
        | sv -> Some sv
        | exception Codec.Malformed _ -> None)
  in
  let save ~key ~sweep:_ sv =
    Checkpoint.save store ~key:(full key) (encode_saved sv)
  in
  { load; save; every_sweeps; every_seconds }

let save_now hooks ~key ~prior_warnings ~sweep ~state =
  hooks.save ~key ~sweep { state = state (); prior_warnings }

let make_control hooks ~key ~final_sweep ~prior_warnings =
  let last_save_sweep = ref 0 in
  let last_save_ns = ref (Monotonic_clock.now ()) in
  fun ~sweep ~state ->
    let due_sweeps =
      match hooks.every_sweeps with
      | Some n when n > 0 -> sweep - !last_save_sweep >= n
      | _ -> false
    in
    let due_clock () =
      match hooks.every_seconds with
      | Some s ->
          Int64.to_float (Int64.sub (Monotonic_clock.now ()) !last_save_ns)
          *. 1e-9
          >= s
      | None -> false
    in
    (* Always persist the final sweep: a chain that finished just before a
       kill then resumes instantly instead of replaying from its last
       periodic snapshot. *)
    if due_sweeps || sweep >= final_sweep || due_clock () then begin
      hooks.save ~key ~sweep { state = state (); prior_warnings };
      last_save_sweep := sweep;
      last_save_ns := Monotonic_clock.now ()
    end
