(** Per-chain checkpoint hooks for the inference driver.

    The driver sees only {!hooks}: a way to load the last snapshot for a
    chain key and a way to save one.  How snapshots are stored
    ({!Checkpoint}), and when ({!make_control}'s cadence), is decided
    here, so the sampling code has no filesystem or policy knowledge. *)

type saved = {
  state : Sampler_state.t;
  prior_warnings : string list;
      (** Restart warnings accumulated before the snapshot, so a resumed
          chain reports exactly what an uninterrupted one would. *)
}

type hooks = {
  load : key:string -> saved option;
  save : key:string -> sweep:int -> saved -> unit;
  every_sweeps : int option;  (** Save every N completed sweeps. *)
  every_seconds : float option;  (** …or when this much wall time passed. *)
}

val default_every_seconds : float
(** Default wall-clock cadence (30 s) — chosen so checkpointing costs
    nothing measurable on runs that take minutes and at most one redundant
    save on runs that take seconds. *)

val encode_saved : saved -> string
val decode_saved : string -> saved
(** Raises {!Codec.Malformed} on bad input. *)

val store_hooks :
  Checkpoint.t ->
  namespace:string ->
  ?every_sweeps:int option ->
  ?every_seconds:float option ->
  unit ->
  hooks
(** Hooks backed by a {!Checkpoint} store; [namespace] prefixes every key
    (e.g. one namespace per Beacon interval).  A snapshot that passes the
    CRC but fails to decode loads as [None] (fresh start), never an
    exception. *)

val save_now :
  hooks ->
  key:string ->
  prior_warnings:string list ->
  sweep:int ->
  state:(unit -> Sampler_state.t) ->
  unit
(** Persist the chain's state unconditionally — the drain path: a chain
    told to stop ({!Supervise.request_drain}) writes one final snapshot at
    the sweep it reached, so a later resume loses no work. *)

val make_control :
  hooks ->
  key:string ->
  final_sweep:int ->
  prior_warnings:string list ->
  sweep:int ->
  state:(unit -> Sampler_state.t) ->
  unit
(** Per-sweep callback for a sampler's [?control] (after partial
    application up to [prior_warnings]).  Saves when the sweep or
    wall-clock cadence is due, and always on [final_sweep] so completed
    chains resume instantly. *)
