(** Chain supervision: budgets, cooperative cancellation, retry backoff,
    and the campaign health verdict.

    A {!budget} caps a single chain by wall-clock and/or sweep count.  The
    sampler reports each completed sweep via {!tick} on its {!token};
    crossing a limit raises {!Aborted}, which the inference driver catches
    and converts into a degraded (heuristic-only) outcome instead of a
    failed run.  The sweep budget always fires after the same sweep, so
    budget-limited runs are as reproducible as completed ones. *)

exception Aborted of string
(** Raised by {!tick}/{!check} when a budget limit is crossed.  Samplers
    must let it propagate (it is not an error in the target density). *)

type budget = {
  deadline_s : float option;  (** Wall-clock limit per chain, seconds. *)
  max_sweeps : int option;  (** Sweep-count limit per chain. *)
}

val unlimited : budget
val is_unlimited : budget -> bool

type token
(** One supervised chain execution: a budget plus a monotonic start time
    and a sweep counter. *)

val start : label:string -> budget -> token
(** [start ~label budget] begins supervision; [label] prefixes abort
    messages (e.g. ["mh-0"]). *)

val tick : token -> unit
(** Count one completed sweep and enforce the budget.  The sweep limit is
    checked every call; the wall-clock deadline every 32 sweeps (it is
    inherently timing-dependent, so precision buys nothing). *)

val check : token -> unit
(** Enforce the budget without counting a sweep. *)

val sweeps : token -> int
val elapsed_s : token -> float

(** {1 Cooperative drain}

    A graceful shutdown (SIGTERM/SIGINT, service drain) is requested by
    setting one process-wide flag; sampler control callbacks poll it once
    per sweep, checkpoint their chain state and raise {!Drained}.  Unlike
    {!Aborted} — which marks a chain as over budget and degrades the
    campaign — {!Drained} propagates out of the whole run untouched: the
    interrupted campaign is neither failed nor degraded, just unfinished,
    and a resume completes it bit-for-bit. *)

exception Drained
(** Raised by {!check_drain} (and the inference driver's per-sweep control)
    once a drain was requested.  Never caught below the campaign driver. *)

val request_drain : unit -> unit
(** Ask every supervised chain in the process to checkpoint and stop at its
    next sweep boundary.  Async-signal-safe (one atomic store). *)

val clear_drain : unit -> unit
(** Reset the flag — a fresh service generation (or the next test) starts
    undrained. *)

val draining : unit -> bool
val check_drain : unit -> unit

val backoff_s : attempt:int -> base_s:float -> float
(** Exponential backoff delay before restart [attempt] (1-based), capped
    at one second.  [attempt <= 0] is [0]. *)

val wait_backoff : attempt:int -> base_s:float -> unit
(** Busy-wait the backoff delay on the monotonic clock ([cpu_relax] in the
    loop; no Unix dependency). *)

(** {1 Campaign health} *)

type status =
  | Healthy
  | Degraded of string list
      (** Inference incomplete (budget-aborted or dead chains); results
          fall back to heuristic localization.  Reasons attached. *)
  | Insufficient of string list
      (** Not enough observations survived to attempt localization. *)

val exit_code : status -> int
(** Process exit code contract: 0 healthy, 3 degraded, 4 insufficient.
    (Hard failures exit 1 via the normal exception path.) *)

val status_label : status -> string
val status_reasons : status -> string list
