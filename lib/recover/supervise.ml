(* Per-chain supervision: wall-clock deadlines, sweep budgets, retry
   backoff, and the campaign-level health verdict.

   Budgets are enforced *cooperatively*: the sampler calls [tick] once per
   completed sweep and we raise [Aborted] when a limit is crossed.  That
   keeps cancellation deterministic for the sweep budget (always after the
   same sweep) while the wall-clock deadline — inherently racy — is only
   consulted every few sweeps to keep the healthy-path cost at an integer
   compare. *)

exception Aborted of string

type budget = { deadline_s : float option; max_sweeps : int option }

let unlimited = { deadline_s = None; max_sweeps = None }
let is_unlimited b = b.deadline_s = None && b.max_sweeps = None

type token = {
  budget : budget;
  label : string;
  start_ns : int64;
  mutable sweeps : int;
}

(* How often (in sweeps) the wall-clock deadline is consulted; the sweep
   budget itself is checked every tick. *)
let deadline_stride = 32

let start ~label budget =
  { budget; label; start_ns = Monotonic_clock.now (); sweeps = 0 }

let elapsed_s token =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) token.start_ns) *. 1e-9

let sweeps token = token.sweeps

let abort token fmt =
  Printf.ksprintf (fun s -> raise (Aborted (token.label ^ ": " ^ s))) fmt

let check token =
  (match token.budget.max_sweeps with
  | Some limit when token.sweeps >= limit ->
      abort token "sweep budget exhausted (%d sweeps)" limit
  | _ -> ());
  match token.budget.deadline_s with
  | Some limit when token.sweeps mod deadline_stride = 0 ->
      let t = elapsed_s token in
      if t > limit then
        abort token "deadline exceeded (%.1fs elapsed, budget %.1fs)" limit t
  | _ -> ()

let tick token =
  token.sweeps <- token.sweeps + 1;
  check token

(* --- cooperative drain --- *)

(* One process-wide flag, not per-token: a drain (SIGTERM, service
   shutdown) applies to every chain of every campaign in the process, and
   the flag must be readable from any worker domain without plumbing a
   handle through the sampler layers.  Signal handlers only set it; sampler
   control callbacks poll it once per sweep. *)
exception Drained

let drain_flag = Atomic.make false
let request_drain () = Atomic.set drain_flag true
let clear_drain () = Atomic.set drain_flag false
let draining () = Atomic.get drain_flag
let check_drain () = if Atomic.get drain_flag then raise Drained

(* --- retry backoff --- *)

(* Busy-wait on the monotonic clock: the stats/mcmc layers have no Unix
   dependency and restarts are rare, so burning a few milliseconds beats
   pulling in a sleep syscall.  Capped so a misconfigured factor cannot
   stall a chain. *)
let backoff_s ~attempt ~base_s =
  if attempt <= 0 then 0.0 else min 1.0 (base_s *. Float.of_int (1 lsl min attempt 10))

let wait_backoff ~attempt ~base_s =
  let d = backoff_s ~attempt ~base_s in
  if d > 0.0 then begin
    let t0 = Monotonic_clock.now () in
    let target = Int64.add t0 (Int64.of_float (d *. 1e9)) in
    while Int64.compare (Monotonic_clock.now ()) target < 0 do
      Domain.cpu_relax ()
    done
  end

(* --- campaign health --- *)

type status = Healthy | Degraded of string list | Insufficient of string list

let exit_code = function
  | Healthy -> 0
  | Degraded _ -> 3
  | Insufficient _ -> 4

let status_label = function
  | Healthy -> "healthy"
  | Degraded _ -> "degraded"
  | Insufficient _ -> "insufficient"

let status_reasons = function
  | Healthy -> []
  | Degraded rs | Insufficient rs -> rs
