type t = {
  epoch : int;
  gate_sweeps : int option;
  means : (int * float) array;
}

let key = "posterior.seed"

let version = 1

let encode t =
  let w = Codec.writer () in
  Codec.u8 w version;
  Codec.int w t.epoch;
  Codec.option w Codec.int t.gate_sweeps;
  Codec.array w
    (fun w (asn, mean) ->
      Codec.int w asn;
      Codec.float w mean)
    t.means;
  Codec.contents w

let decode payload =
  match
    let r = Codec.reader payload in
    let v = Codec.read_u8 r in
    if v <> version then raise (Codec.Malformed "seed: unknown version");
    let epoch = Codec.read_int r in
    let gate_sweeps = Codec.read_option r Codec.read_int in
    let means =
      Codec.read_array r (fun r ->
          let asn = Codec.read_int r in
          let mean = Codec.read_float r in
          (asn, mean))
    in
    Codec.expect_end r;
    { epoch; gate_sweeps; means }
  with
  | seed -> Some seed
  | exception Codec.Malformed _ -> None

let lookup t asn =
  let lo = ref 0 and hi = ref (Array.length t.means - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let a, m = t.means.(mid) in
    if a = asn then found := Some m
    else if a < asn then lo := mid + 1
    else hi := mid - 1
  done;
  !found
