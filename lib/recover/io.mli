(** Injectable I/O layer for durable writes.

    Every atomic file write in the recovery path (checkpoint snapshots,
    reports, status documents) goes through this module, so the chaos
    harness can inject the disk's real failure modes — short writes,
    [ENOSPC], rename failure — at the exact boundary where they happen
    in production, without stubbing the filesystem.

    Faults surface the way the OS would surface them: as [Sys_error].
    A {!Short_write} is the nastiest case — the write {e appears} to
    succeed but the file lands truncated, which is precisely what the
    CRC-sealed envelope layer above exists to catch.

    The hook is process-wide (one atomic reference) and defaults to
    passthrough; production never pays more than one atomic load per
    write. *)

type op =
  | Write of string  (** Destination path of an atomic write. *)
  | Rename of string * string  (** [Rename (src, dst)]. *)

type fault =
  | Short_write of float
      (** Keep this fraction of the payload, then "succeed": the rename
          lands a torn file for the checksum layer to quarantine. *)
  | Enospc  (** Fail before writing, as a full disk would. *)
  | Rename_fail  (** Write the temp file, then fail the rename. *)

val inject : (op -> fault option) -> unit
(** Install the process-wide fault hook ([None] = let the op through). *)

val clear : unit -> unit
(** Remove the hook (all I/O passes through again). *)

val with_faults : (op -> fault option) -> (unit -> 'a) -> 'a
(** Scoped {!inject}/{!clear} for tests.  Not reentrant. *)

val faults_injected : unit -> int
(** How many operations the hook has faulted so far (process-wide). *)

val write_file_atomic : dir:string -> file:string -> string -> unit
(** Write [data] to a temp file in [dir] and rename it to [file].
    A crash (or injected fault) mid-write never destroys an existing
    [file]; on error the temp file is removed.  Raises [Sys_error]. *)

val rename : string -> string -> unit
(** [rename src dst], subject to injected faults.  A faulted rename
    raises [Sys_error] and leaves [src] in place. *)
