(** Posterior seed snapshots for warm-started streaming epochs.

    After a streaming campaign epoch completes, the service records the
    per-AS posterior means (plus the epoch number and its measured
    sweeps-to-convergence) in a {!Checkpoint} store that survives across
    epochs.  The next epoch — same campaign, a grown observation spool —
    loads the seed and starts its chains at those means instead of the
    samplers' cold defaults, which is what buys the recorded convergence
    saving.

    The payload rides the same CRC-sealed envelope as every other
    checkpoint; this module only defines the inner codec, so a corrupt or
    foreign payload decodes to [None] and the epoch falls back to a cold
    start rather than failing. *)

type t = {
  epoch : int;            (** Epoch that produced this posterior (1-based). *)
  gate_sweeps : int option;
      (** Sweeps (burn-in + gated retained draws) that epoch needed to pass
          the convergence gate; [None] when the gate never passed. *)
  means : (int * float) array;
      (** Per-AS posterior means, [(asn, mean)] sorted by ASN. *)
}

val key : string
(** Store key the seed is saved under (["posterior.seed"]). *)

val encode : t -> string

val decode : string -> t option
(** [None] on any malformed or wrong-version payload — never raises. *)

val lookup : t -> int -> float option
(** [lookup t asn] is the seeded mean for [asn] (binary search). *)
