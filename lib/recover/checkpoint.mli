(** Durable, self-checking checkpoint store.

    A store is a directory of independent snapshots, one per [key]
    (a sim shard, an MCMC chain, the campaign summary).  Each file is a
    versioned envelope — magic, format version, key, payload — closed by a
    CRC-32 of everything before it, so corruption of any kind (torn write,
    bit flip, truncation, wrong file) is detected before a single payload
    byte is trusted.

    Durability protocol per {!save}: write to a temp file, rotate the
    current snapshot to [<key>.prev.ck], then atomically rename the temp
    file to [<key>.ck] and refresh the rolling [LATEST] pointer.  {!load}
    tries [<key>.ck] first; a file that fails validation is renamed to a
    unique [*.corrupt-N] quarantine name (kept for post-mortem, never
    retried) and the previous snapshot is used instead, with a recorded
    warning — never a crash, never a silent wrong answer.

    The directory's [MANIFEST] pins the campaign fingerprint; opening a
    store whose manifest names a different fingerprint quarantines the
    stale snapshots rather than resuming from a mismatched run.

    All operations are mutex-guarded and safe to call from multiple
    domains (the work-stealing pool checkpoints chains concurrently). *)

type t

val open_ :
  ?retry:Because_resilience.Policy.t ->
  dir:string ->
  fingerprint:string ->
  unit ->
  t
(** [open_ ~dir ~fingerprint] opens (creating if needed) the store at
    [dir].  If the directory already holds snapshots for a different
    fingerprint, or a corrupt manifest, those snapshots are quarantined
    and a warning recorded.  Raises [Invalid_argument] if [dir] exists
    but is not a directory.

    [retry] is the write retry policy (default: 3 attempts, 2ms base
    backoff).  Transient [Sys_error]s during a save are retried under
    it, behind a per-store circuit breaker; a save that exhausts the
    budget (or hits an open circuit) raises. *)

val save : t -> key:string -> string -> unit
(** [save t ~key payload] durably replaces the snapshot for [key]
    (atomic rename; previous snapshot kept as fallback).  All file
    writes go through {!Io} and the store's retry policy. *)

val remove : t -> key:string -> unit
(** Delete the snapshot (and its fallback) for [key], if any.  Used by
    epoch compaction to prune folded chain entries.  Quarantined
    [*.corrupt-N] files are never touched. *)

val keys : t -> string list
(** Keys with a current snapshot file on disk, sorted.  Fallback-only
    and quarantined files are excluded. *)

val load : t -> key:string -> string option
(** [load t ~key] returns the newest valid snapshot payload for [key],
    falling back to the previous snapshot (with a warning) when the
    current one fails its checksum, and [None] when no valid snapshot
    exists. *)

val latest : t -> (string * int) option
(** Rolling pointer: key of the most recent save and the store's save
    counter at that point.  Informational. *)

val dir : t -> string
val fingerprint : t -> string

val warnings : t -> string list
(** Recovery warnings recorded so far, oldest first (corruption,
    quarantine, fingerprint mismatch).  These are operational notes about
    *this process's* recovery — they are deliberately kept out of campaign
    outcomes so a resumed run stays bit-for-bit equal to a clean one. *)

val saves : t -> int
val restores : t -> int

val fallbacks : t -> int
(** Number of snapshot files that failed validation and were quarantined. *)

val write_retries : t -> int
(** Number of write attempts that failed transiently and were retried
    under the store's policy. *)
