(* Fixed-width little-endian binary codec.

   Checkpoints must restore *exactly* the state they captured, so every
   number is stored in full width: ints and floats travel as 8-byte
   little-endian words (floats via [Int64.bits_of_float]), never as text.
   The format is deliberately boring — no varints, no compression — because
   the reader must be able to reject a torn or bit-flipped file before any
   field is trusted, and the CRC-32 over the raw bytes does exactly that. *)

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* --- CRC-32 (IEEE 802.3, polynomial 0xEDB88320) --- *)

(* The table and running remainder live in native ints (always ≥ 32 value
   bits here) so the per-byte loop is allocation-free — with boxed [Int32]
   arithmetic, checksumming a multi-megabyte shard snapshot allocated
   several words per input byte and dominated the save cost. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32";
  let table = Lazy.force crc_table in
  let c = ref (Int32.to_int crc land 0xFFFFFFFF lxor 0xFFFFFFFF) in
  for k = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s k)) land 0xFF)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xFFFFFFFF)

let crc32_string s = crc32 s ~pos:0 ~len:(String.length s)

(* --- writer --- *)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents w = Buffer.contents w
let u8 w v = Buffer.add_uint8 w (v land 0xFF)
let i64 w v = Buffer.add_int64_le w v
let int w v = i64 w (Int64.of_int v)
let float w v = i64 w (Int64.bits_of_float v)
let bool w v = u8 w (if v then 1 else 0)

let string w s =
  int w (String.length s);
  Buffer.add_string w s

let option w f = function
  | None -> bool w false
  | Some v ->
      bool w true;
      f w v

let list w f xs =
  int w (List.length xs);
  List.iter (f w) xs

let array w f xs =
  int w (Array.length xs);
  Array.iter (f w) xs

let float_array w xs = array w float xs
let int_array w xs = array w int xs

(* --- reader --- *)

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let need r n what =
  if r.pos + n > String.length r.src then
    malformed "truncated input reading %s at byte %d" what r.pos

let read_u8 r =
  need r 1 "byte";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_i64 r =
  need r 8 "int64";
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let read_int r = Int64.to_int (read_i64 r)
let read_float r = Int64.float_of_bits (read_i64 r)

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> malformed "bad boolean byte %d" v

let read_string r =
  let n = read_int r in
  if n < 0 then malformed "negative string length %d" n;
  need r n "string body";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_option r f = if read_bool r then Some (f r) else None

let read_count r what =
  let n = read_int r in
  if n < 0 || n > 0x10000000 then malformed "implausible %s count %d" what n;
  n

let read_list r f =
  let n = read_count r "list" in
  List.init n (fun _ -> f r)

let read_array r f =
  let n = read_count r "array" in
  Array.init n (fun _ -> f r)

let read_float_array r = read_array r read_float
let read_int_array r = read_array r read_int

let at_end r = r.pos = String.length r.src

let expect_end r =
  if not (at_end r) then
    malformed "%d trailing bytes" (String.length r.src - r.pos)
