(* Serialization for the samplers' transparent state records.

   The mcmc layer defines what a mid-run state *is*; this module defines
   what it looks like on disk.  Keeping the two apart means the samplers
   never learn about envelopes or checksums, and the wire format can
   version independently of the sampler internals.

   Format history: tags 0/1/2 (Mh/Hmc/Gibbs) stored the kept draws as an
   array of per-draw rows; tags 3/4/5 store them as one flat row-major
   float array, matching the samplers' in-memory representation.  New
   snapshots are always written with the flat tags; both generations
   decode, so resuming from a pre-flat checkpoint keeps working. *)

module Metropolis = Because_mcmc.Metropolis
module Hmc = Because_mcmc.Hmc
module Gibbs = Because_mcmc.Gibbs

type t =
  | Mh of Metropolis.state
  | Hmc of Hmc.state
  | Gibbs of Gibbs.state

let sweep = function
  | Mh s -> s.Metropolis.s_sweep
  | Hmc s -> s.Hmc.s_iter
  | Gibbs s -> s.Gibbs.s_sweep

(* [s_kept] is flat, so the draw count is values / dim; the dimension comes
   from the current point, which always has the target's (positive) dim. *)
let draws_kept = function
  | Mh s ->
      Array.length s.Metropolis.s_kept / Array.length s.Metropolis.s_current
  | Hmc s -> Array.length s.Hmc.s_kept / Array.length s.Hmc.s_position
  | Gibbs s -> Array.length s.Gibbs.s_kept / Array.length s.Gibbs.s_current

(* Legacy row-array draws (tags 0/1/2): decode and flatten row-major, which
   is exactly the layout the flat samplers expect back. *)
let read_legacy_samples r =
  let rows = Codec.read_array r Codec.read_float_array in
  Array.concat (Array.to_list rows)

let encode_mh w (s : Metropolis.state) =
  Codec.int w s.s_sweep;
  Codec.string w s.s_rng;
  Codec.float_array w s.s_current;
  Codec.float_array w s.s_steps;
  Codec.float w s.s_log_post;
  Codec.int_array w s.s_accept_window;
  Codec.float_array w s.s_kept;
  Codec.int w s.s_accepted_post;
  Codec.int w s.s_proposed_post;
  Codec.option w Codec.float_array s.s_cache

let decode_mh ~legacy r : Metropolis.state =
  let s_sweep = Codec.read_int r in
  let s_rng = Codec.read_string r in
  let s_current = Codec.read_float_array r in
  let s_steps = Codec.read_float_array r in
  let s_log_post = Codec.read_float r in
  let s_accept_window = Codec.read_int_array r in
  let s_kept =
    if legacy then read_legacy_samples r else Codec.read_float_array r
  in
  let s_accepted_post = Codec.read_int r in
  let s_proposed_post = Codec.read_int r in
  let s_cache = Codec.read_option r Codec.read_float_array in
  {
    s_sweep;
    s_rng;
    s_current;
    s_steps;
    s_log_post;
    s_accept_window;
    s_kept;
    s_accepted_post;
    s_proposed_post;
    s_cache;
  }

let encode_hmc w (s : Hmc.state) =
  Codec.int w s.s_iter;
  Codec.string w s.s_rng;
  Codec.float_array w s.s_position;
  Codec.float w s.s_step;
  Codec.float w s.s_log_post;
  Codec.int w s.s_accept_window;
  Codec.float_array w s.s_kept;
  Codec.int w s.s_accepted_post;
  Codec.int w s.s_proposed_post

let decode_hmc ~legacy r : Hmc.state =
  let s_iter = Codec.read_int r in
  let s_rng = Codec.read_string r in
  let s_position = Codec.read_float_array r in
  let s_step = Codec.read_float r in
  let s_log_post = Codec.read_float r in
  let s_accept_window = Codec.read_int r in
  let s_kept =
    if legacy then read_legacy_samples r else Codec.read_float_array r
  in
  let s_accepted_post = Codec.read_int r in
  let s_proposed_post = Codec.read_int r in
  {
    s_iter;
    s_rng;
    s_position;
    s_step;
    s_log_post;
    s_accept_window;
    s_kept;
    s_accepted_post;
    s_proposed_post;
  }

let encode_gibbs w (s : Gibbs.state) =
  Codec.int w s.s_sweep;
  Codec.string w s.s_rng;
  Codec.float_array w s.s_current;
  Codec.float_array w s.s_kept;
  Codec.int w s.s_moved_sweeps;
  Codec.option w Codec.float_array s.s_cache

let decode_gibbs ~legacy r : Gibbs.state =
  let s_sweep = Codec.read_int r in
  let s_rng = Codec.read_string r in
  let s_current = Codec.read_float_array r in
  let s_kept =
    if legacy then read_legacy_samples r else Codec.read_float_array r
  in
  let s_moved_sweeps = Codec.read_int r in
  let s_cache = Codec.read_option r Codec.read_float_array in
  { s_sweep; s_rng; s_current; s_kept; s_moved_sweeps; s_cache }

let encode w = function
  | Mh s ->
      Codec.u8 w 3;
      encode_mh w s
  | Hmc s ->
      Codec.u8 w 4;
      encode_hmc w s
  | Gibbs s ->
      Codec.u8 w 5;
      encode_gibbs w s

let decode r =
  match Codec.read_u8 r with
  | 0 -> Mh (decode_mh ~legacy:true r)
  | 1 -> Hmc (decode_hmc ~legacy:true r)
  | 2 -> Gibbs (decode_gibbs ~legacy:true r)
  | 3 -> Mh (decode_mh ~legacy:false r)
  | 4 -> Hmc (decode_hmc ~legacy:false r)
  | 5 -> Gibbs (decode_gibbs ~legacy:false r)
  | tag -> raise (Codec.Malformed (Printf.sprintf "unknown sampler tag %d" tag))
