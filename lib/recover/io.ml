type op = Write of string | Rename of string * string

type fault = Short_write of float | Enospc | Rename_fail

let hook : (op -> fault option) option Atomic.t = Atomic.make None
let injected = Atomic.make 0

let inject f = Atomic.set hook (Some f)
let clear () = Atomic.set hook None

let with_faults f body =
  inject f;
  Fun.protect ~finally:clear body

let faults_injected () = Atomic.get injected

let consult op =
  match Atomic.get hook with
  | None -> None
  | Some f ->
      let r = f op in
      if r <> None then Atomic.incr injected;
      r

let rename src dst =
  match consult (Rename (src, dst)) with
  | Some Rename_fail ->
      raise (Sys_error (dst ^ ": rename failed (injected)"))
  | Some (Short_write _) | Some Enospc | None -> Sys.rename src dst

let write_file_atomic ~dir ~file data =
  let fault = consult (Write file) in
  (match fault with
  | Some Enospc -> raise (Sys_error (file ^ ": No space left on device"))
  | _ -> ());
  let data =
    match fault with
    | Some (Short_write frac) ->
        let keep =
          int_of_float (frac *. float_of_int (String.length data))
        in
        String.sub data 0 (max 0 (min keep (String.length data)))
    | _ -> data
  in
  let tmp = Filename.temp_file ~temp_dir:dir "ck" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  match fault with
  | Some Rename_fail ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise (Sys_error (file ^ ": rename failed (injected)"))
  | _ -> Sys.rename tmp file
