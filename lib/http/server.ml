module Registry = Because_telemetry.Registry

type metrics = {
  requests : Registry.Counter.handle;
  resp_2xx : Registry.Counter.handle;
  resp_4xx : Registry.Counter.handle;
  resp_5xx : Registry.Counter.handle;
  rejected : Registry.Counter.handle;
  shed : Registry.Counter.handle;
  timeouts : Registry.Counter.handle;
  latency : Registry.Histogram.handle;
}

let metrics_of registry =
  {
    requests = Registry.Counter.v registry "http.requests";
    resp_2xx = Registry.Counter.v registry "http.responses.2xx";
    resp_4xx = Registry.Counter.v registry "http.responses.4xx";
    resp_5xx = Registry.Counter.v registry "http.responses.5xx";
    rejected = Registry.Counter.v registry "http.rejected";
    shed = Registry.Counter.v registry "http.shed";
    timeouts = Registry.Counter.v registry "http.timeouts";
    latency = Registry.Histogram.v registry "http.request_seconds";
  }

type t = {
  bound_port : int;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  accept_domain : unit Domain.t;
}

(* Bounded multi-producer/multi-consumer queue of connections.  [None] is
   the worker shutdown sentinel and is never refused. *)
type conn_queue = {
  q : Unix.file_descr option Queue.t;
  capacity : int;
  mu : Mutex.t;
  nonempty : Condition.t;
}

let queue_create capacity =
  { q = Queue.create (); capacity; mu = Mutex.create ();
    nonempty = Condition.create () }

let queue_push cq item =
  Mutex.lock cq.mu;
  let accepted =
    match item with
    | None -> Queue.push item cq.q; true
    | Some _ when Queue.length cq.q < cq.capacity ->
        Queue.push item cq.q; true
    | Some _ -> false
  in
  if accepted then Condition.signal cq.nonempty;
  Mutex.unlock cq.mu;
  accepted

let queue_pop cq =
  Mutex.lock cq.mu;
  while Queue.is_empty cq.q do Condition.wait cq.nonempty cq.mu done;
  let item = Queue.pop cq.q in
  Mutex.unlock cq.mu;
  item

let queue_depth cq =
  Mutex.lock cq.mu;
  let d = Queue.length cq.q in
  Mutex.unlock cq.mu;
  d

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let count_status m status =
  if status < 400 then Registry.Counter.incr m.resp_2xx
  else if status < 500 then Registry.Counter.incr m.resp_4xx
  else Registry.Counter.incr m.resp_5xx

(* Serve one connection to completion: pipelined keep-alive requests
   until EOF, error, deadline, or server shutdown.

   Deadline discipline: every request carries an absolute deadline from
   its first byte (the first request's from accept) to its response.
   While a request is incomplete, reads are capped at the smaller of the
   per-read timeout and the time remaining; a request that is still
   partial at its deadline is answered 408 and the connection closed —
   never silently hung on a worker.  Between pipelined requests the
   deadline is disarmed and only the idle [read_timeout] applies. *)
let serve_conn ~router ~limits ~read_timeout ~request_deadline ~stopping m fd =
  (* A peer that stops reading must not pin a worker in [write(2)]
     forever either: bound sends by the same per-op timeout. *)
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO read_timeout
   with Unix.Unix_error _ -> ());
  let chunk = Bytes.create 8192 in
  let buf = ref "" in
  let pos = ref 0 in
  let alive = ref true in
  (* Absolute deadline of the request currently being read or served;
     [infinity] = idle between requests.  The first request's clock
     starts at accept. *)
  let deadline = ref (Unix.gettimeofday () +. request_deadline) in
  let respond_408 () =
    Registry.Counter.incr m.timeouts;
    Registry.Counter.incr m.requests;
    count_status m 408;
    (try
       write_all fd
         (Response.to_string ~keep_alive:false
            (Response.text ~status:408 "request timeout\n"))
     with Exit | Unix.Unix_error _ -> ());
    alive := false
  in
  (try
     while !alive do
       match Request.parse ~limits !buf ~pos:!pos with
       | `Ok (req, next) ->
           pos := next;
           if !pos = String.length !buf then begin buf := ""; pos := 0 end;
           let req = { req with Request.deadline = Some !deadline } in
           let t0 = Unix.gettimeofday () in
           let resp = Router.dispatch router req in
           Registry.Counter.incr m.requests;
           count_status m resp.Response.status;
           Registry.Histogram.observe m.latency (Unix.gettimeofday () -. t0);
           let keep =
             Request.keep_alive req && not (Atomic.get stopping)
           in
           write_all fd (Response.to_string ~keep_alive:keep resp);
           if not keep then alive := false
           else
             (* A pipelined successor is already on the clock; otherwise
                disarm until its first byte arrives. *)
             deadline :=
               if !pos < String.length !buf then
                 Unix.gettimeofday () +. request_deadline
               else infinity
       | `Error e ->
           let resp =
             Response.text ~status:(Request.error_status e)
               (Request.error_message e ^ "\n")
           in
           Registry.Counter.incr m.requests;
           count_status m resp.Response.status;
           write_all fd (Response.to_string ~keep_alive:false resp);
           alive := false
       | `More ->
           (* Compact consumed bytes before growing the buffer. *)
           if !pos > 0 then begin
             buf := String.sub !buf !pos (String.length !buf - !pos);
             pos := 0
           end;
           let partial = String.length !buf > 0 in
           let now = Unix.gettimeofday () in
           if now >= !deadline then
             (* Out of budget: a half-received request gets told, a
                silent fresh connection just gets dropped. *)
             if partial then respond_408 () else alive := false
           else begin
             let slice =
               Float.max 0.01 (Float.min read_timeout (!deadline -. now))
             in
             (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO slice
              with Unix.Unix_error _ -> ());
             match Unix.read fd chunk 0 (Bytes.length chunk) with
             | 0 -> alive := false
             | n ->
                 buf := !buf ^ Bytes.sub_string chunk 0 n;
                 if !deadline = infinity then
                   deadline := Unix.gettimeofday () +. request_deadline
             | exception
                 Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _)
               ->
                 (* Read deadline hit: 408 a half-sent request (the
                    adversarial-pacing contract), silently drop an idle
                    keep-alive client. *)
                 if partial then respond_408 () else alive := false
           end
     done
   with
  | Exit -> ()
  | Unix.Unix_error _ -> ());
  close_quietly fd

let worker ~router ~limits ~read_timeout ~request_deadline ~stopping m cq =
  let rec loop () =
    match queue_pop cq with
    | None -> ()
    | Some fd ->
        serve_conn ~router ~limits ~read_timeout ~request_deadline ~stopping
          m fd;
        loop ()
  in
  loop ()

(* Shed responses are built per refusal (they carry the live queue
   depth); rare by construction, so the allocation is irrelevant. *)
let shed_response ~depth =
  Response.to_string ~keep_alive:false
    (Response.overloaded ~depth "server busy\n")

let accept_loop ~router ~limits ~read_timeout ~request_deadline
    ~shed_watermark ~stopping ~threads m cq listen_fd =
  let workers =
    List.init threads (fun _ ->
        Thread.create
          (worker ~router ~limits ~read_timeout ~request_deadline ~stopping m)
          cq)
  in
  let shed fd depth =
    Registry.Counter.incr m.rejected;
    Registry.Counter.incr m.shed;
    (try write_all fd (shed_response ~depth) with
    | Exit | Unix.Unix_error _ -> ());
    close_quietly fd
  in
  (* Poll with a short deadline so [stop] is noticed without relying on a
     cross-domain close to interrupt a blocked [accept]. *)
  Unix.set_nonblock listen_fd;
  let running = ref true in
  while !running && not (Atomic.get stopping) do
    match Unix.select [ listen_fd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true listen_fd with
        | fd, _ ->
            (* Adaptive load shedding: refuse at the watermark, before
               the queue is full — a client told "come back in a second"
               immediately beats one parked behind a hopeless backlog.
               The queue-full race below is the backstop. *)
            let depth = queue_depth cq in
            if depth >= shed_watermark then shed fd depth
            else if not (queue_push cq (Some fd)) then shed fd depth
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> running := false)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> running := false
  done;
  close_quietly listen_fd;
  List.iter (fun _ -> ignore (queue_push cq None)) workers;
  List.iter Thread.join workers

let start ?(registry = Registry.disabled) ?(addr = "127.0.0.1")
    ?(threads = 4) ?(limits = Request.default_limits)
    ?(read_timeout = 5.0) ?(request_deadline = 2.0) ?shed_watermark ~port
    router =
  if threads < 1 then invalid_arg "Server.start: threads < 1";
  if request_deadline <= 0.0 then
    invalid_arg "Server.start: request_deadline <= 0";
  let capacity = (threads * 4) + 16 in
  let shed_watermark =
    match shed_watermark with
    | None -> (threads * 2) + 8
    | Some w when w >= 1 -> min w capacity
    | Some _ -> invalid_arg "Server.start: shed_watermark < 1"
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let inet = Unix.inet_addr_of_string addr in
  let listen_fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (ADDR_INET (inet, port));
     Unix.listen listen_fd 128
   with e -> close_quietly listen_fd; raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  let stopping = Atomic.make false in
  let m = metrics_of registry in
  let cq = queue_create capacity in
  let accept_domain =
    Domain.spawn (fun () ->
        accept_loop ~router ~limits ~read_timeout ~request_deadline
          ~shed_watermark ~stopping ~threads m cq listen_fd)
  in
  { bound_port; stopping; stopped = Atomic.make false; accept_domain }

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    (* The accept loop polls [stopping]; it closes the listen socket,
       drains and joins its workers, then the domain returns. *)
    Domain.join t.accept_domain
  end
