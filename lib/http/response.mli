(** HTTP/1.1 response construction and serialization. *)

type t = {
  status : int;
  headers : (string * string) list;  (** Extra headers; [Content-Length] and
                                         [Connection] are added on write. *)
  body : string;
}

val make : ?headers:(string * string) list -> ?body:string -> int -> t
(** [make status] builds a response; [body] defaults to empty. *)

val text : ?status:int -> string -> t
(** Plain-text response ([Content-Type: text/plain; charset=utf-8]). *)

val json : ?status:int -> string -> t
(** JSON response ([Content-Type: application/json]). *)

val reason : int -> string
(** Canonical reason phrase ([200] -> ["OK"], unknown -> ["Unknown"]). *)

val with_header : string -> string -> t -> t
(** [with_header name value t] appends one header. *)

val overloaded : ?status:int -> ?retry_after_s:int -> depth:int -> string -> t
(** Backpressure response (default status 503): plain-text [body] with
    [Retry-After] (default 1s) and [X-Queue-Depth: depth] headers — the
    contract every 429/503 this server sheds must honour. *)

val to_string : ?keep_alive:bool -> t -> string
(** Serialize with status line, caller headers, [Content-Length] and
    [Connection: keep-alive|close] (from [keep_alive], default true). *)
