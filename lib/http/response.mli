(** HTTP/1.1 response construction and serialization. *)

type t = {
  status : int;
  headers : (string * string) list;  (** Extra headers; [Content-Length] and
                                         [Connection] are added on write. *)
  body : string;
}

val make : ?headers:(string * string) list -> ?body:string -> int -> t
(** [make status] builds a response; [body] defaults to empty. *)

val text : ?status:int -> string -> t
(** Plain-text response ([Content-Type: text/plain; charset=utf-8]). *)

val json : ?status:int -> string -> t
(** JSON response ([Content-Type: application/json]). *)

val reason : int -> string
(** Canonical reason phrase ([200] -> ["OK"], unknown -> ["Unknown"]). *)

val to_string : ?keep_alive:bool -> t -> string
(** Serialize with status line, caller headers, [Content-Length] and
    [Connection: keep-alive|close] (from [keep_alive], default true). *)
