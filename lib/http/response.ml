type t = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let make ?(headers = []) ?(body = "") status = { status; headers; body }

let text ?(status = 200) body =
  make status
    ~headers:[ ("Content-Type", "text/plain; charset=utf-8") ]
    ~body

let json ?(status = 200) body =
  make status ~headers:[ ("Content-Type", "application/json") ] ~body

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let with_header name value t = { t with headers = t.headers @ [ (name, value) ] }

(* Overload contract: every shed/backpressure response tells the client
   when to come back and how deep the queue was when it was refused. *)
let overloaded ?(status = 503) ?(retry_after_s = 1) ~depth body =
  text ~status body
  |> with_header "Retry-After" (string_of_int retry_after_s)
  |> with_header "X-Queue-Depth" (string_of_int depth)

let to_string ?(keep_alive = true) t =
  let b = Buffer.create (256 + String.length t.body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" t.status (reason t.status));
  List.iter
    (fun (name, value) ->
      Buffer.add_string b name;
      Buffer.add_string b ": ";
      Buffer.add_string b value;
      Buffer.add_string b "\r\n")
    t.headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length t.body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b t.body;
  Buffer.contents b
