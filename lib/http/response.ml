type t = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let make ?(headers = []) ?(body = "") status = { status; headers; body }

let text ?(status = 200) body =
  make status
    ~headers:[ ("Content-Type", "text/plain; charset=utf-8") ]
    ~body

let json ?(status = 200) body =
  make status ~headers:[ ("Content-Type", "application/json") ] ~body

let reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let to_string ?(keep_alive = true) t =
  let b = Buffer.create (256 + String.length t.body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" t.status (reason t.status));
  List.iter
    (fun (name, value) ->
      Buffer.add_string b name;
      Buffer.add_string b ": ";
      Buffer.add_string b value;
      Buffer.add_string b "\r\n")
    t.headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length t.body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b t.body;
  Buffer.contents b
