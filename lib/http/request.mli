(** Hardened HTTP/1.1 request parser.

    Pure and incremental: {!parse} inspects a byte buffer at an offset and
    either yields a complete request plus the number of bytes it consumed
    (so pipelined requests parse back to back from one buffer), asks for
    more bytes, or rejects the stream with a typed error.  It never raises
    on any input — the server's fuzz suite feeds it arbitrary garbage and
    arbitrary split points.

    Limits are explicit and enforced before anything is copied: an
    attacker-controlled Content-Length or an unbounded header block is
    refused as soon as the declared (not received) size crosses the cap,
    so a slow or hostile client cannot make the server buffer without
    bound. *)

type t = {
  meth : string;                      (** Verb, as sent (e.g. [GET]). *)
  target : string;                    (** Raw request target. *)
  path : string;                      (** Percent-decoded path, no query. *)
  query : (string * string) list;     (** Decoded query pairs, in order. *)
  version : string;                   (** [HTTP/1.0] or [HTTP/1.1]. *)
  headers : (string * string) list;   (** Names lowercased, values trimmed. *)
  body : string;
  deadline : float option;
      (** Absolute wall-clock deadline (epoch seconds) by which the
          response should be written.  The parser always leaves it
          [None]; the server stamps it — armed when the request's first
          byte arrives — before dispatch, so handlers can bound their
          own waits ({!remaining_s}) and the deadline propagates from
          accept to response. *)
}

type error =
  | Bad_request of string   (** Malformed request line, header or framing. *)
  | Too_large of string     (** Declared or received size over a limit. *)

val error_status : error -> int
(** The response status an error maps to: 400 or 413. *)

val error_message : error -> string

type limits = {
  max_head : int;  (** Request line + headers, bytes (default 8192). *)
  max_body : int;  (** Entity body, bytes (default 65536). *)
}

val default_limits : limits

val parse :
  ?limits:limits ->
  string ->
  pos:int ->
  [ `Ok of t * int | `More | `Error of error ]
(** [parse buf ~pos] parses one request starting at [pos].  [`Ok (req, n)]
    consumed bytes [pos .. n-1]; parsing of a pipelined successor restarts
    at [n].  [`More] means the bytes so far are a valid prefix — read more.
    Never raises. *)

val header : t -> string -> string option
(** Case-insensitive header lookup (names are stored lowercased). *)

val keep_alive : t -> bool
(** Whether the connection should persist after this request: HTTP/1.1
    unless [Connection: close], HTTP/1.0 only with
    [Connection: keep-alive]. *)

val query_param : t -> string -> string option

val remaining_s : t -> float option
(** Seconds left until the request's deadline ([None] when unstamped);
    negative once the deadline has passed. *)

val expired : t -> bool
(** Whether a stamped deadline has passed.  [false] when unstamped. *)

val percent_decode : string -> string
(** Decode [%XX] escapes and [+]-as-space; invalid escapes pass through
    literally rather than failing. *)
