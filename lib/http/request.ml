type t = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
  deadline : float option;
}

type error =
  | Bad_request of string
  | Too_large of string

let error_status = function Bad_request _ -> 400 | Too_large _ -> 413

let error_message = function Bad_request m -> m | Too_large m -> m

type limits = { max_head : int; max_body : int }

let default_limits = { max_head = 8192; max_body = 65536 }

let max_headers = 100

(* Control-flow exception, never escapes [parse]. *)
exception Fail of error

let fail fmt = Printf.ksprintf (fun m -> raise (Fail (Bad_request m))) fmt

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let decode ~plus s =
  if not (String.exists (fun c -> c = '%' || c = '+') s) then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '+' when plus -> Buffer.add_char b ' '
      | '%' when !i + 2 < n && hex_val s.[!i + 1] >= 0 && hex_val s.[!i + 2] >= 0
        ->
          Buffer.add_char b
            (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
          i := !i + 2
      | c -> Buffer.add_char b c);
      incr i
    done;
    Buffer.contents b
  end

let percent_decode s = decode ~plus:true s

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (decode ~plus:true pair, "")
             | Some i ->
                 Some
                   ( decode ~plus:true (String.sub pair 0 i),
                     decode ~plus:true
                       (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let is_token_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
      true
  | _ -> false

let trim_ows s =
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j > !i && (s.[!j - 1] = ' ' || s.[!j - 1] = '\t') do decr j done;
  String.sub s !i (!j - !i)

(* Find "\r\n\r\n" in [s] starting at [pos]; [None] when absent. *)
let find_head_end s ~pos =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go pos

let split_lines head =
  (* [head] excludes the terminating blank line; every line ends in \r\n
     except we receive it already stripped of the final \r\n\r\n. *)
  String.split_on_char '\n' head
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if meth = "" || not (String.for_all is_token_char meth) then
        fail "malformed method";
      if target = "" then fail "empty request target";
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        fail "unsupported HTTP version %S" version;
      (meth, target, version)
  | _ -> fail "malformed request line"

let parse_header line =
  match String.index_opt line ':' with
  | None | Some 0 -> fail "malformed header line"
  | Some i ->
      let name = String.sub line 0 i in
      if not (String.for_all is_token_char name) then
        fail "malformed header name";
      let value = trim_ows (String.sub line (i + 1) (String.length line - i - 1)) in
      if String.exists (fun c -> Char.code c < 0x20 && c <> '\t') value then
        fail "control byte in header value";
      (String.lowercase_ascii name, value)

let header t name =
  List.assoc_opt (String.lowercase_ascii name) t.headers

let content_length headers =
  match List.filter (fun (n, _) -> n = "content-length") headers with
  | [] -> 0
  | [ (_, v) ] -> (
      match int_of_string_opt (trim_ows v) with
      | Some n when n >= 0 -> n
      | _ -> fail "malformed Content-Length %S" v)
  | _ :: _ :: _ -> fail "multiple Content-Length headers"

let parse ?(limits = default_limits) buf ~pos =
  let total = String.length buf in
  try
    match find_head_end buf ~pos with
    | None ->
        if total - pos > limits.max_head then
          `Error (Too_large "request head exceeds limit")
        else `More
    | Some head_end ->
        if head_end - pos > limits.max_head then
          raise (Fail (Too_large "request head exceeds limit"));
        let head = String.sub buf pos (head_end - pos) in
        let body_start = head_end + 4 in
        (match split_lines head with
        | [] | [ "" ] -> `Error (Bad_request "empty request")
        | request_line :: header_lines ->
            let meth, target, version = parse_request_line request_line in
            if List.length header_lines > max_headers then
              fail "too many headers";
            let headers = List.map parse_header header_lines in
            if List.mem_assoc "transfer-encoding" headers then
              fail "Transfer-Encoding is not supported";
            let clen = content_length headers in
            if clen > limits.max_body then
              raise (Fail (Too_large "declared body exceeds limit"));
            if total - body_start < clen then `More
            else begin
              let body = String.sub buf body_start clen in
              let path_raw, query_raw =
                match String.index_opt target '?' with
                | None -> (target, "")
                | Some i ->
                    ( String.sub target 0 i,
                      String.sub target (i + 1) (String.length target - i - 1)
                    )
              in
              let req =
                {
                  meth;
                  target;
                  path = decode ~plus:false path_raw;
                  query = parse_query query_raw;
                  version;
                  headers;
                  body;
                  deadline = None;
                }
              in
              `Ok (req, body_start + clen)
            end)
  with Fail e -> `Error e

let remaining_s t =
  Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let expired t =
  match remaining_s t with Some r -> r <= 0.0 | None -> false

let keep_alive t =
  let conn =
    Option.map String.lowercase_ascii (header t "connection")
  in
  match t.version, conn with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

let query_param t name = List.assoc_opt name t.query
