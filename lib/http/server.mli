(** Threaded HTTP/1.1 server on [Unix] sockets.

    One dedicated domain runs the accept loop and hosts a bounded pool of
    worker threads; blocking socket calls release the domain lock, so the
    server never contends with the domains doing inference.  Each accepted
    connection gets a read deadline ([SO_RCVTIMEO]) so a slow client is
    dropped rather than pinning a worker, pipelined requests are served
    back to back from one buffer, and when every worker is busy and the
    connection queue is full new clients receive an immediate 503 instead
    of queueing without bound.

    Telemetry (when a live registry is supplied): [http.requests],
    [http.responses.<class>xx], [http.rejected] counters and an
    [http.request_seconds] latency histogram. *)

type t

val start :
  ?registry:Because_telemetry.Registry.t ->
  ?addr:string ->
  ?threads:int ->
  ?limits:Request.limits ->
  ?read_timeout:float ->
  port:int ->
  Router.t ->
  t
(** Bind [addr] (default ["127.0.0.1"]) on [port] ([0] picks a free port)
    and serve [router] on [threads] workers (default 4).  [read_timeout]
    (default 5s) is the per-read deadline on client sockets.
    Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val stop : t -> unit
(** Close the listen socket, drain in-flight connections, join every
    worker and the accept domain.  Idempotent. *)
