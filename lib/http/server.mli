(** Threaded HTTP/1.1 server on [Unix] sockets, hardened for overload.

    One dedicated domain runs the accept loop and hosts a bounded pool of
    worker threads; blocking socket calls release the domain lock, so the
    server never contends with the domains doing inference.

    {b Deadlines.}  Every request carries an absolute deadline from its
    first byte (the first request of a connection from accept) to its
    response, stamped into {!Request.t.deadline} before dispatch so
    handlers can bound their own waits.  A request still incomplete at
    its deadline — or at the per-read [read_timeout] — is answered
    [408 Request Timeout] and the connection closed; an idle keep-alive
    client is dropped silently.  Writes are bounded by [SO_SNDTIMEO], so
    a peer that stops reading cannot pin a worker.

    {b Load shedding.}  When the connection queue reaches
    [shed_watermark] (before it is full), new clients are refused
    immediately with [503 + Retry-After + X-Queue-Depth] instead of
    queueing to death; a full queue is the backstop with the same
    response.

    Telemetry (when a live registry is supplied): [http.requests],
    [http.responses.<class>xx], [http.rejected], [http.shed],
    [http.timeouts] counters and an [http.request_seconds] latency
    histogram. *)

type t

val start :
  ?registry:Because_telemetry.Registry.t ->
  ?addr:string ->
  ?threads:int ->
  ?limits:Request.limits ->
  ?read_timeout:float ->
  ?request_deadline:float ->
  ?shed_watermark:int ->
  port:int ->
  Router.t ->
  t
(** Bind [addr] (default ["127.0.0.1"]) on [port] ([0] picks a free port)
    and serve [router] on [threads] workers (default 4).  [read_timeout]
    (default 5s) is the per-read deadline on client sockets;
    [request_deadline] (default 2s) the per-request budget from first
    byte to response; [shed_watermark] (default [2*threads + 8], clamped
    to the queue capacity [4*threads + 16]) the connection-queue depth at
    which new clients are shed.  Raises [Unix.Unix_error] if the bind
    fails, [Invalid_argument] on nonsensical parameters. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val stop : t -> unit
(** Close the listen socket, drain in-flight connections, join every
    worker and the accept domain.  Idempotent. *)
