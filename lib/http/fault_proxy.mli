(** Socket-level fault proxy for chaos testing the real server.

    The proxy listens on its own port and forwards every connection to
    an upstream HTTP server, injecting the transport layer's real
    failure modes on the way: slowloris request trickling, stalled
    response forwarding, and mid-response TCP resets ([SO_LINGER 0], so
    the client sees an RST, not a FIN).  Which fault a connection gets
    is a deterministic function of the proxy seed and the connection's
    accept index, so a chaos schedule replays exactly.

    The proxy is test/ops tooling: correctness of the system under test
    is asserted by the callers (zero torn responses, deterministic
    shedding), the proxy only creates the weather and counts what it
    did. *)

type fault =
  | Passthrough
  | Slowloris of { byte_delay_s : float }
      (** Trickle client→upstream bytes one at a time, [byte_delay_s]
          apart: the upstream sees the request arrive at every split
          boundary, ending in a read-deadline if the trickle is slower
          than its budget. *)
  | Stall_response of { after_bytes : int; stall_s : float }
      (** Forward the upstream's response normally for [after_bytes]
          bytes, then stop forwarding for [stall_s] before resuming —
          a client that reads, then wedges, then recovers. *)
  | Reset_response of { after_bytes : int }
      (** Forward [after_bytes] response bytes, then reset the client
          connection (RST) and drop the upstream. *)

type stats = {
  conns : int;       (** Connections accepted. *)
  resets : int;      (** Client connections reset mid-response. *)
  stalls : int;      (** Responses stalled. *)
  trickled : int;    (** Connections slowloris'd. *)
}

type t

val start :
  ?seed:int ->
  ?faults:fault array ->
  upstream_port:int ->
  port:int ->
  unit ->
  t
(** Start the proxy on [port] ([0] picks a free port), forwarding to
    [127.0.0.1:upstream_port].  Connection [n] gets
    [faults.(hash (seed, n) mod length)] (default mix: passthrough,
    slowloris, stall, reset). *)

val port : t -> int

val stats : t -> stats

val stop : t -> unit
(** Stop accepting, close the listener, and join the accept domain.
    In-flight pump threads are joined too.  Idempotent. *)

val flood : ?conns:int -> ?hold_s:float -> port:int -> unit -> int
(** Open [conns] (default 64) connections to [127.0.0.1:port], send
    nothing, hold them [hold_s] (default 0.2s), then close — a
    connection flood for exercising accept-queue watermarks.  Returns
    how many connections were actually established. *)
