(** Segment-matching request router.

    Routes are registered as [(meth, pattern, handler)] where pattern
    segments starting with [:] capture the corresponding path segment
    (e.g. ["/campaigns/:id/report"]).  Dispatch yields 404 when no
    pattern matches the path and 405 (with an [Allow] header) when a
    pattern matches but under a different method.  A handler that raises
    is converted to a 500 so a bad renderer cannot kill a worker. *)

type params = (string * string) list
(** Captured [:name] segments, decoded. *)

type handler = Request.t -> params -> Response.t

type t

val create : unit -> t

val add : t -> meth:string -> pattern:string -> handler -> unit

val dispatch : t -> Request.t -> Response.t
(** Total: never raises. *)
