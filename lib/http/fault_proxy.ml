type fault =
  | Passthrough
  | Slowloris of { byte_delay_s : float }
  | Stall_response of { after_bytes : int; stall_s : float }
  | Reset_response of { after_bytes : int }

type stats = {
  conns : int;
  resets : int;
  stalls : int;
  trickled : int;
}

type stats_mut = {
  mu : Mutex.t;
  mutable s_conns : int;
  mutable s_resets : int;
  mutable s_stalls : int;
  mutable s_trickled : int;
}

(* One proxied connection: both sides, closed exactly once (fd numbers
   are reused by the kernel, so a double close from racing pump threads
   could hit a stranger's descriptor). *)
type conn = {
  client : Unix.file_descr;
  upstream : Unix.file_descr;
  cmu : Mutex.t;
  mutable closed : bool;
}

type t = {
  bound_port : int;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  accept_domain : unit Domain.t;
  st : stats_mut;
}

let default_faults =
  [| Passthrough;
     Slowloris { byte_delay_s = 0.002 };
     Passthrough;
     Stall_response { after_bytes = 40; stall_s = 0.05 };
     Reset_response { after_bytes = 30 };
     Passthrough |]

(* splitmix64 finalizer: fault choice is a pure function of (seed, conn
   index) so a chaos schedule replays exactly. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let pick_fault ~seed ~index faults =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int index))
  in
  faults.(Int64.to_int (Int64.rem (Int64.logand z Int64.max_int)
                          (Int64.of_int (Array.length faults))))

let close_conn ?(reset = false) conn =
  Mutex.lock conn.cmu;
  let first = not conn.closed in
  conn.closed <- true;
  Mutex.unlock conn.cmu;
  if first then begin
    if reset then
      (* Linger 0: close sends RST, the mid-response abort a flaky peer
         or middlebox would produce. *)
      (try Unix.setsockopt_optint conn.client Unix.SO_LINGER (Some 0)
       with Unix.Unix_error _ -> ());
    (try Unix.close conn.client with Unix.Unix_error _ -> ());
    try Unix.close conn.upstream with Unix.Unix_error _ -> ()
  end

let is_closed conn = Mutex.protect conn.cmu (fun () -> conn.closed)

(* Copy [src] to [dst] until EOF or error, calling [forward] for each
   chunk (which may delay, stall, or abort by raising [Exit]).  Reads
   poll on a short timeout so [stop] is never blocked behind a silent
   peer. *)
let pump ~stopping conn src dst forward =
  let chunk = Bytes.create 4096 in
  (try Unix.setsockopt_float src Unix.SO_RCVTIMEO 0.25
   with Unix.Unix_error _ -> ());
  let rec loop () =
    if Atomic.get stopping || is_closed conn then ()
    else
      match Unix.read src chunk 0 (Bytes.length chunk) with
      | 0 -> close_conn conn
      | n ->
          forward dst chunk n;
          loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _)
        ->
          loop ()
      | exception Unix.Unix_error _ -> close_conn conn
      | exception Exit -> ()
  in
  loop ()

let write_all fd b off len =
  let sent = ref off in
  while !sent < off + len do
    let w = Unix.write fd b !sent (off + len - !sent) in
    if w <= 0 then raise Exit;
    sent := !sent + w
  done

let serve_conn ~stopping st fault conn =
  let up_forward =
    match fault with
    | Slowloris { byte_delay_s } ->
        Mutex.protect st.mu (fun () -> st.s_trickled <- st.s_trickled + 1);
        fun dst b n ->
          for i = 0 to n - 1 do
            Thread.delay byte_delay_s;
            if Atomic.get stopping || is_closed conn then raise Exit;
            write_all dst b i 1
          done
    | _ -> fun dst b n -> write_all dst b 0 n
  in
  let down_forward =
    match fault with
    | Stall_response { after_bytes; stall_s } ->
        let sent = ref 0 and stalled = ref false in
        fun dst b n ->
          if (not !stalled) && !sent + n > after_bytes then begin
            stalled := true;
            Mutex.protect st.mu (fun () -> st.s_stalls <- st.s_stalls + 1);
            Thread.delay stall_s
          end;
          sent := !sent + n;
          write_all dst b 0 n
    | Reset_response { after_bytes } ->
        let sent = ref 0 in
        fun dst b n ->
          let room = after_bytes - !sent in
          if room > 0 then write_all dst b 0 (min n room);
          sent := !sent + n;
          if !sent >= after_bytes then begin
            Mutex.protect st.mu (fun () -> st.s_resets <- st.s_resets + 1);
            close_conn ~reset:true conn;
            raise Exit
          end
    | _ -> fun dst b n -> write_all dst b 0 n
  in
  let up =
    Thread.create
      (fun () ->
        (try pump ~stopping conn conn.client conn.upstream up_forward
         with _ -> ());
        close_conn conn)
      ()
  in
  (try pump ~stopping conn conn.upstream conn.client down_forward
   with _ -> ());
  close_conn conn;
  Thread.join up

let accept_loop ~seed ~faults ~upstream_port ~stopping st listen_fd =
  let live = ref [] in
  let index = ref 0 in
  Unix.set_nonblock listen_fd;
  let running = ref true in
  while !running && not (Atomic.get stopping) do
    match Unix.select [ listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true listen_fd with
        | client, _ -> (
            let n = !index in
            incr index;
            Mutex.protect st.mu (fun () -> st.s_conns <- st.s_conns + 1);
            match
              let upstream =
                Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0
              in
              (try
                 Unix.connect upstream
                   (ADDR_INET (Unix.inet_addr_loopback, upstream_port))
               with e -> (try Unix.close upstream with _ -> ()); raise e);
              upstream
            with
            | upstream ->
                let conn =
                  { client; upstream; cmu = Mutex.create (); closed = false }
                in
                let fault = pick_fault ~seed ~index:n faults in
                let th =
                  Thread.create (fun () ->
                      serve_conn ~stopping st fault conn) ()
                in
                live := (th, conn) :: !live
            | exception _ ->
                (try Unix.close client with Unix.Unix_error _ -> ()))
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> running := false)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> running := false
  done;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  List.iter (fun (_, conn) -> close_conn conn) !live;
  List.iter (fun (th, _) -> Thread.join th) !live

let start ?(seed = 0) ?(faults = default_faults) ~upstream_port ~port () =
  if Array.length faults = 0 then invalid_arg "Fault_proxy.start: no faults";
  let listen_fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  let stopping = Atomic.make false in
  let st =
    { mu = Mutex.create (); s_conns = 0; s_resets = 0; s_stalls = 0;
      s_trickled = 0 }
  in
  let accept_domain =
    Domain.spawn (fun () ->
        accept_loop ~seed ~faults ~upstream_port ~stopping st listen_fd)
  in
  { bound_port; stopping; stopped = Atomic.make false; accept_domain; st }

let port t = t.bound_port

let stats t =
  Mutex.protect t.st.mu (fun () ->
      { conns = t.st.s_conns; resets = t.st.s_resets;
        stalls = t.st.s_stalls; trickled = t.st.s_trickled })

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    Domain.join t.accept_domain
  end

let flood ?(conns = 64) ?(hold_s = 0.2) ~port () =
  let fds =
    List.filter_map
      (fun _ ->
        let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        match
          Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port))
        with
        | () -> Some fd
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            None)
      (List.init conns Fun.id)
  in
  Thread.delay hold_s;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds;
  List.length fds
