type params = (string * string) list

type handler = Request.t -> params -> Response.t

type route = {
  meth : string;
  segments : string list;  (* ":name" segments capture *)
  handler : handler;
}

type t = { mutable routes : route list }

let create () = { routes = [] }

let split_path p =
  String.split_on_char '/' p |> List.filter (fun s -> s <> "")

let add t ~meth ~pattern handler =
  t.routes <-
    t.routes @ [ { meth; segments = split_path pattern; handler } ]

(* Match pattern segments against path segments; [None] on shape
   mismatch, captured params otherwise. *)
let rec match_segments pat path acc =
  match (pat, path) with
  | [], [] -> Some (List.rev acc)
  | p :: pat', s :: path' ->
      if String.length p > 0 && p.[0] = ':' then
        match_segments pat' path'
          ((String.sub p 1 (String.length p - 1), s) :: acc)
      else if p = s then match_segments pat' path' acc
      else None
  | _ -> None

let dispatch t req =
  let path = split_path req.Request.path in
  let matches =
    List.filter_map
      (fun r ->
        match match_segments r.segments path [] with
        | Some params -> Some (r, params)
        | None -> None)
      t.routes
  in
  match
    List.find_opt (fun (r, _) -> r.meth = req.Request.meth) matches
  with
  | Some (r, params) -> (
      try r.handler req params
      with _ -> Response.text ~status:500 "internal error\n")
  | None -> (
      match matches with
      | [] -> Response.text ~status:404 "not found\n"
      | _ :: _ ->
          let allow =
            matches
            |> List.map (fun (r, _) -> r.meth)
            |> List.sort_uniq compare
            |> String.concat ", "
          in
          Response.make 405
            ~headers:
              [ ("Allow", allow);
                ("Content-Type", "text/plain; charset=utf-8") ]
            ~body:"method not allowed\n")
