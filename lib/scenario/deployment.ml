open Because_bgp
module Rng = Because_stats.Rng
module Graph = Because_topology.Graph

type vendor = Cisco | Juniper | Recommended

type assignment = {
  vendor : vendor;
  params : Rfd_params.t;
  scope : Policy.rfd_scope;
}

type spec = {
  damping_share : float;
  stub_damping_share : float;
  vendor_default_share : float;
  max_suppress_minutes : float array;
  only_customer_share : float;
  inconsistent_damper : bool;
}

let default_spec =
  {
    damping_share = 0.12;
    stub_damping_share = 0.06;
    vendor_default_share = 0.6;
    (* The three plateaus Fig. 13 reveals. *)
    max_suppress_minutes = [| 10.0; 30.0; 60.0 |];
    only_customer_share = 0.1;
    inconsistent_damper = true;
  }

type t = {
  assignments : assignment Asn.Map.t;
  inconsistent : (Asn.t * Asn.t) option;
}

let pp_vendor fmt = function
  | Cisco -> Format.pp_print_string fmt "cisco"
  | Juniper -> Format.pp_print_string fmt "juniper"
  | Recommended -> Format.pp_print_string fmt "recommended"

let draw_vendor rng spec =
  if Rng.float rng < spec.vendor_default_share then
    if Rng.bool rng then Cisco else Juniper
  else Recommended

let preset = function
  | Cisco -> Rfd_params.cisco
  | Juniper -> Rfd_params.juniper
  | Recommended -> Rfd_params.rfc7454

(* Coherent operator configurations per max-suppress-time.  For the
   re-advertisement plateau to sit exactly at the max-suppress-time
   (Fig. 13), the penalty must reach the ceiling during a fast Burst, which
   requires the half-life to be large relative to the flap interval yet small
   relative to max-suppress — so operators shortening max-suppress also
   shorten the half-life and (at 10 min) lower both thresholds.  Operators
   following the RIPE/IETF recommendation keep the default timers. *)
let operator_params vendor max_suppress =
  let base = preset vendor in
  let minutes m = m *. 60.0 in
  match (vendor, max_suppress) with
  | Recommended, _ -> base
  | (Cisco | Juniper), m when m <= 10.0 ->
      {
        base with
        Rfd_params.readvertisement_penalty = 1000.0;
        suppress_threshold = 1500.0;
        reuse_threshold = 500.0;
        half_life = minutes 5.0;
        max_suppress_time = minutes 10.0;
      }
  | (Cisco | Juniper), m when m <= 30.0 ->
      {
        base with
        Rfd_params.readvertisement_penalty = 1000.0;
        half_life = minutes 7.5;
        max_suppress_time = minutes 30.0;
      }
  | (Cisco | Juniper), _ -> base

let draw_assignment rng spec =
  let vendor = draw_vendor rng spec in
  let max_suppress = Rng.choice rng spec.max_suppress_minutes in
  let params = operator_params vendor max_suppress in
  let scope =
    if Rng.float rng < spec.only_customer_share then Policy.Only_customers
    else Policy.All_neighbors
  in
  { vendor; params; scope }

let plant rng graph spec ~exclude =
  let eligible =
    List.filter (fun a -> not (Asn.Set.mem a exclude)) (Graph.ases graph)
  in
  let assignments = ref Asn.Map.empty in
  List.iter
    (fun asn ->
      let share =
        match Graph.tier_of graph asn with
        | Graph.Tier1 | Graph.Transit -> spec.damping_share
        | Graph.Stub -> spec.stub_damping_share
      in
      if Rng.float rng < share then
        assignments := Asn.Map.add asn (draw_assignment rng spec) !assignments)
    eligible;
  (* Promote (or convert) the largest-cone eligible transit into the
     inconsistent damper: damps every neighbor except one (AS-701 style). *)
  let inconsistent =
    if not spec.inconsistent_damper then None
    else begin
      let transits =
        List.filter
          (fun a ->
            Graph.tier_of graph a = Graph.Transit
            && not (Asn.Set.mem a exclude))
          (Graph.ases graph)
      in
      let largest =
        List.fold_left
          (fun acc a ->
            let cone = Graph.customer_cone_size graph a in
            match acc with
            | Some (_, best) when best >= cone -> acc
            | _ -> Some (a, cone))
          None transits
      in
      match largest with
      | None -> None
      | Some (asn, _) -> (
          match Graph.neighbors graph asn with
          | [] -> None
          | neighbors ->
              (* Spare the lowest-ASN provider/peer so Beacon signal through
                 that neighbor is never damped (contradictory evidence). *)
              let spared =
                List.fold_left
                  (fun acc (n, rel) ->
                    match rel with
                    | Policy.Provider | Policy.Peer -> (
                        match acc with
                        | Some best when Asn.compare best n <= 0 -> acc
                        | _ -> Some n)
                    | Policy.Customer -> acc)
                  None neighbors
              in
              let spared =
                match spared with
                | Some n -> n
                | None -> fst (List.hd neighbors)
              in
              let vendor = if Rng.bool rng then Cisco else Juniper in
              let params = operator_params vendor 60.0 in
              let scope = Policy.All_except (Asn.Set.singleton spared) in
              assignments :=
                Asn.Map.add asn { vendor; params; scope } !assignments;
              Some (asn, spared))
    end
  in
  { assignments = !assignments; inconsistent }

let assignment_of t asn = Asn.Map.find_opt asn t.assignments

let scope_of t asn =
  match assignment_of t asn with
  | Some a -> a.scope
  | None -> Policy.No_rfd

let params_of t asn =
  match assignment_of t asn with
  | Some a -> a.params
  | None -> Rfd_params.cisco

let dampers t =
  Asn.Map.fold (fun asn _ acc -> Asn.Set.add asn acc) t.assignments
    Asn.Set.empty

let detectable_dampers t =
  Asn.Map.fold
    (fun asn a acc ->
      match a.scope with
      | Policy.Only_customers -> acc
      | Policy.No_rfd -> acc
      | Policy.All_neighbors | Policy.Only_neighbors _ | Policy.All_except _
        ->
          Asn.Set.add asn acc)
    t.assignments Asn.Set.empty

let inconsistent t = t.inconsistent

let vendor_share t v =
  let total = Asn.Map.cardinal t.assignments in
  if total = 0 then 0.0
  else begin
    let count =
      Asn.Map.fold
        (fun _ a acc -> if a.vendor = v then acc + 1 else acc)
        t.assignments 0
    in
    float_of_int count /. float_of_int total
  end
