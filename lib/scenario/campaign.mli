(** A measurement campaign: one update interval, end to end.

    Mirrors the paper's §4.3 procedure — install the two-phase Beacons at all
    sites, run the BGP world, collect the three projects' dumps, clean and
    label every (vantage point, prefix) stream, then run BeCAUSe and the
    heuristics on the labeled paths. *)

open Because_bgp

type params = {
  update_interval : float;  (** Seconds between Burst updates. *)
  burst_duration : float;   (** Paper: 2 h. *)
  break_duration : float;   (** Paper: 2 h (April) / 6 h (March). *)
  cycles : int;             (** Burst–Break pairs. *)
  lead_in : float;          (** Quiet time after the initial announcement. *)
  anchor_period : float;    (** Anchor oscillation period (2 h). *)
  noise : Because_collector.Noise.params;
  min_r_delta : float;
  match_threshold : float;
  infer_config : Because.Infer.config;
  run_inference : bool;
  background_prefixes : int;     (** Synthetic churn prefixes (Appendix A). *)
  background_mean_gap : float;   (** Mean seconds between churn updates. *)
  faults : Because_faults.Plan.t;
      (** Injected faults (session resets, link flaps, site and collector
          outages, lossy sessions).  {!Because_faults.Plan.empty} — the
          default — leaves the campaign bit-for-bit fault-free. *)
  min_path_support : int;
      (** Minimum observations crossing an AS before its posterior is
          trusted; below it the AS is demoted to C3 and listed in
          [outcome.insufficient].  Default 1 (no demotion). *)
  sim_jobs : int;
      (** Worker domains for the BGP simulation itself: the campaign's
          prefixes are partitioned into shards run in parallel
          ({!Because_sim.Sharded}).  At 1 — the default — the historical
          sequential event stream is preserved bit-for-bit; on a fault-free
          campaign every value of [sim_jobs] yields the identical outcome. *)
  sim_shards : int option;
      (** Simulation shard count, decoupled from [sim_jobs] ([None] — the
          default — means one shard per job, the historical behaviour).
          More shards than jobs queue on the domain pool, bounding peak
          live router state by the seat count while shrinking per-shard
          state — the spill mode for Internet-scale prefix sets.  Fault-free
          outcomes are shard-invariant (property-tested). *)
  feed_spill_dir : string option;
      (** When set, monitored vantage feeds stream through bounded buffers
          into per-vantage binary logs under this directory
          ({!Because_sim.Feed_log}) instead of accumulating in memory, and
          are replayed lazily by collection — outcome bit-for-bit identical
          (property-tested).  Default [None] (in-memory feeds). *)
  feed_buffer : int;
      (** Updates buffered per vantage before a spill flush (default
          4096).  Only meaningful with [feed_spill_dir]. *)
  telemetry : Because_telemetry.Registry.t;
      (** Observability sink threaded through every phase: campaign phase
          spans, simulator traffic/RFD counters and table gauges, fault
          planned/realized counters, and per-chain sampler metrics.
          {!Because_telemetry.Registry.disabled} — the default — costs one
          predictable branch per record site and leaves the outcome
          bit-for-bit identical (property-tested). *)
  init_posterior : (Asn.t * float) list option;
      (** Warm-start seed: per-AS posterior means from a previous epoch of
          the same streaming campaign.  When set, every chain starts at the
          seeded mean (clamped into the open unit interval; ASs absent from
          the seed start at the sampler default) and the campaign
          fingerprint is extended with the seed, so checkpoints of warm and
          cold runs can never be mixed.  [None] — the default — changes
          nothing: fingerprints and outcomes stay bit-for-bit the
          historical ones. *)
}

val default_params : update_interval:float -> params
(** 2-hour Bursts and Breaks, 4 cycles, realistic noise, inference on,
    no background churn, no faults. *)

type outcome = {
  params : params;
  schedule : Because_beacon.Schedule.t;   (** The oscillating schedule. *)
  sites : Because_beacon.Site.t list;
  records : Because_collector.Dump.record list;
  labeled : Because_labeling.Label.labeled_path list;
  windows : (float * float * float) list;
  oscillating : Prefix.Set.t;
  anchors : Prefix.Set.t;
  result : Because.Infer.result option;   (** [None] when inference was off or no paths labeled. *)
  categories_step1 : (Asn.t * Because.Categorize.t) list;
      (** Before pinpointing (Fig. 12's "consistent" bars). *)
  categories : (Asn.t * Because.Categorize.t) list;
      (** After pinpointing (Fig. 12's full bars). *)
  promotions : Because.Pinpoint.promotion list;
  heuristic_verdicts : Because_heuristics.Combine.verdict list;
  deliveries : int;          (** Total updates delivered in the simulation. *)
  events : int;              (** Total simulator events processed. *)
  shard_events : int array;
      (** Events processed per simulation shard — the load-balance view;
          [\[| events |\]] when [sim_jobs = 1]. *)
  campaign_end : float;
  fault_log : (float * Because_faults.Injector.injected) list;
      (** Every injected fault that materialized, chronological: session
          teardowns/recoveries, link transitions, lost/duplicated updates,
          site and collector outage windows.  Empty on a fault-free run. *)
  insufficient : Asn.t list;
      (** ASs demoted to C3 because fewer than [min_path_support]
          observations survived the faults. *)
  warnings : string list;
      (** Sampler-divergence notes propagated from {!Because.Infer}. *)
  telemetry : Because_telemetry.Snapshot.t option;
      (** Merged metrics/span snapshot of the whole campaign, [Some] iff
          [params.telemetry] was enabled.  {!run_multi} outcomes share one
          snapshot taken after the last interval's inference. *)
  status : Because_recover.Supervise.status;
      (** Campaign health verdict, driving the CLI exit-code contract
          (0/3/4 via {!Because_recover.Supervise.exit_code}): [Degraded]
          when any chain was budget-aborted or every chain died (fall back
          to heuristic localization); [Insufficient] when inference was
          requested but no labeled observations survived; [Healthy]
          otherwise.  Recovery/restore notes never appear here — a resumed
          campaign's outcome equals the uninterrupted one bit-for-bit. *)
}

val run : ?recovery:Recovery.t -> World.t -> params -> outcome
(** [recovery] attaches a durable checkpoint store once the stimulus is
    built and fingerprinted: finished simulation shards are skipped on
    resume, partial MCMC chains continue mid-stream, and the interrupted
    run's outcome is bit-for-bit the uninterrupted one
    (property-tested, including kills at arbitrary save points). *)

val with_jobs : ?n_chains:int -> ?sim_jobs:int -> params -> int -> params
(** [with_jobs params jobs] spreads each interval's inference over [jobs]
    worker domains (and optionally [n_chains] independent chains per
    sampler) by rewriting [params.infer_config]; [sim_jobs] additionally
    shards the simulation itself.  Campaign outcomes are bit-for-bit
    independent of [jobs] — only wall-clock changes. *)

val run_multi :
  ?recovery:Recovery.t -> World.t -> params -> intervals:float list -> outcome list
(** One simulation carrying several oscillating prefixes per site — the
    paper's actual setup (March: 1/2/3-minute prefixes together, April:
    5/10/15).  Each site announces one prefix per interval plus the anchor;
    the shared dump is then labeled and inferred per interval, one outcome
    per interval in input order.  [params.update_interval] is ignored. *)

val horizon : params -> float
(** The campaign end time a single-interval {!run} will use — the window
    within which injected faults can land. *)

val draw_faults :
  World.t -> params -> Because_faults.Plan.severity -> Because_faults.Plan.t
(** Draw a seeded fault plan for this world (its own RNG stream, so the
    same world seed and severity reproduce the same plan) covering the
    world's links, Beacon sites and vantage points over {!horizon}. *)

val windows_of : outcome -> Prefix.t -> (float * float * float) list
(** Burst–Break windows of an oscillating prefix; [\[\]] otherwise. *)

val observations : outcome -> (Asn.t list * bool) list
val because_damping : outcome -> Asn.Set.t
(** ASs flagged Category 4/5 by the full BeCAUSe procedure. *)

val heuristic_damping : outcome -> Asn.Set.t

val universe : outcome -> Asn.Set.t
(** Every AS appearing on a labeled path — the set the campaign can make
    statements about. *)

val site_of_prefix : outcome -> Prefix.t -> int option
(** Which Beacon site announced a prefix. *)

val propagation_samples : outcome -> role:[ `Anchor | `Oscillating ] -> float array
(** Per announcement record: observation time − encoded Beacon send time
    (the Fig. 8 propagation measurement). *)
