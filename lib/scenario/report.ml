open Because_bgp
module Label = Because_labeling.Label
module Project = Because_collector.Project
module Vantage = Because_collector.Vantage
module Rng = Because_stats.Rng

let links_of_path path =
  let rec go = function
    | a :: (b :: _ as rest) ->
        let link = if Asn.compare a b <= 0 then (a, b) else (b, a) in
        link :: go rest
    | _ -> []
  in
  go path

module Link_set = Set.Make (struct
  type t = Asn.t * Asn.t

  let compare (a1, b1) (a2, b2) =
    match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c
end)

type link_coverage = {
  site_id : int;
  links_seen : int;
  share_of_all : float;
}

let site_links outcome =
  (* site id -> link set over all that site's labeled paths. *)
  let per_site = Hashtbl.create 8 in
  let all = ref Link_set.empty in
  List.iter
    (fun (lp : Label.labeled_path) ->
      match Campaign.site_of_prefix outcome lp.Label.prefix with
      | None -> ()
      | Some site ->
          let links = links_of_path lp.Label.path in
          let set =
            Option.value (Hashtbl.find_opt per_site site)
              ~default:Link_set.empty
          in
          let set =
            List.fold_left (fun s l -> Link_set.add l s) set links
          in
          Hashtbl.replace per_site site set;
          all := List.fold_left (fun s l -> Link_set.add l s) !all links)
    outcome.Campaign.labeled;
  (per_site, !all)

let site_link_coverage outcome =
  let per_site, all = site_links outcome in
  let total = Link_set.cardinal all in
  let coverage =
    Hashtbl.fold
      (fun site set acc ->
        {
          site_id = site;
          links_seen = Link_set.cardinal set;
          share_of_all =
            (if total = 0 then 0.0
             else float_of_int (Link_set.cardinal set) /. float_of_int total);
        }
        :: acc)
      per_site []
  in
  (List.sort (fun a b -> Int.compare a.site_id b.site_id) coverage, total)

let paths_per_link_counts outcome ~sites =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (lp : Label.labeled_path) ->
      match Campaign.site_of_prefix outcome lp.Label.prefix with
      | Some site when List.mem site sites ->
          List.iter
            (fun link ->
              Hashtbl.replace counts link
                (1 + Option.value (Hashtbl.find_opt counts link) ~default:0))
            (links_of_path lp.Label.path)
      | Some _ | None -> ())
    outcome.Campaign.labeled;
  Hashtbl.fold (fun _ c acc -> float_of_int c :: acc) counts []

let paths_per_link_median outcome ~all_sites =
  let sites =
    List.map (fun (s : Because_beacon.Site.t) -> s.Because_beacon.Site.site_id)
      outcome.Campaign.sites
  in
  let chosen =
    if all_sites then sites
    else begin
      (* Busiest single site by observed link count. *)
      let coverage, _ = site_link_coverage outcome in
      match
        List.sort (fun a b -> Int.compare b.links_seen a.links_seen) coverage
      with
      | best :: _ -> [ best.site_id ]
      | [] -> []
    end
  in
  match paths_per_link_counts outcome ~sites:chosen with
  | [] -> 0.0
  | counts -> Because_stats.Summary.median (Array.of_list counts)

type overlap = {
  per_project : (Project.t * int) list;
  pairwise : ((Project.t * Project.t) * int) list;
  all_three : int;
  total : int;
}

let project_overlap outcome =
  let of_project project =
    List.fold_left
      (fun acc (lp : Label.labeled_path) ->
        if Project.equal lp.Label.vp.Vantage.project project then
          List.fold_left
            (fun s l -> Link_set.add l s)
            acc
            (links_of_path lp.Label.path)
        else acc)
      Link_set.empty outcome.Campaign.labeled
  in
  let sets = List.map (fun p -> (p, of_project p)) Project.all in
  let union =
    List.fold_left (fun acc (_, s) -> Link_set.union acc s) Link_set.empty sets
  in
  let rec pairs = function
    | [] -> []
    | (p1, s1) :: rest ->
        List.map
          (fun (p2, s2) ->
            ((p1, p2), Link_set.cardinal (Link_set.inter s1 s2)))
          rest
        @ pairs rest
  in
  let all_three =
    match sets with
    | (_, first) :: rest ->
        Link_set.cardinal
          (List.fold_left (fun acc (_, s) -> Link_set.inter acc s) first rest)
    | [] -> 0
  in
  {
    per_project = List.map (fun (p, s) -> (p, Link_set.cardinal s)) sets;
    pairwise = pairs sets;
    all_three;
    total = Link_set.cardinal union;
  }

type archetype = {
  label : string;
  marginal : Because.Posterior.marginal;
  category : Because.Categorize.t;
}

let archetypes world outcome =
  match outcome.Campaign.result with
  | None -> []
  | Some result ->
      let marginals = Because.Posterior.combined result in
      let categories = outcome.Campaign.categories in
      let category_of asn =
        Option.value
          (List.assoc_opt asn categories)
          ~default:Because.Categorize.C3
      in
      let best ~better =
        Array.fold_left
          (fun acc (m : Because.Posterior.marginal) ->
            match acc with
            | Some current when not (better m current) -> acc
            | _ -> Some m)
          None marginals
      in
      let strong_damper =
        best ~better:(fun (m : Because.Posterior.marginal) c ->
            m.Because.Posterior.mean *. m.Because.Posterior.certainty
            > c.Because.Posterior.mean *. c.Because.Posterior.certainty)
      in
      let strong_clean =
        best ~better:(fun m c ->
            (1.0 -. m.Because.Posterior.mean) *. m.Because.Posterior.certainty
            > (1.0 -. c.Because.Posterior.mean) *. c.Because.Posterior.certainty)
      in
      let prior_recovered =
        best ~better:(fun m c ->
            m.Because.Posterior.certainty < c.Because.Posterior.certainty)
      in
      let inconsistent =
        match Deployment.inconsistent (World.deployment world) with
        | Some (asn, _) ->
            Array.fold_left
              (fun acc (m : Because.Posterior.marginal) ->
                if Asn.equal m.Because.Posterior.asn asn then Some m else acc)
              None marginals
        | None -> None
      in
      List.filter_map
        (fun (label, m) ->
          Option.map
            (fun (m : Because.Posterior.marginal) ->
              { label; marginal = m;
                category = category_of m.Because.Posterior.asn })
            m)
        [
          ("(a) strong evidence of damping", strong_damper);
          ("(b) strong evidence of no damping", strong_clean);
          ("(c) inconsistent damper (AS 701 analogue)", inconsistent);
          ("(d) little data: prior recovered", prior_recovered);
        ]

type scatter_point = {
  asn : Asn.t;
  mean : float;
  certainty : float;
  category : Because.Categorize.t;
}

let scatter outcome =
  match outcome.Campaign.result with
  | None -> []
  | Some result ->
      let marginals = Because.Posterior.combined result in
      let categories = outcome.Campaign.categories in
      Array.to_list
        (Array.map
           (fun (m : Because.Posterior.marginal) ->
             {
               asn = m.Because.Posterior.asn;
               mean = m.Because.Posterior.mean;
               certainty = m.Because.Posterior.certainty;
               category =
                 Option.value
                   (List.assoc_opt m.Because.Posterior.asn categories)
                   ~default:Because.Categorize.C3;
             })
           marginals)

type interval_share = {
  interval : float;
  consistent : int;
  with_promotions : int;
  measured : int;
}

let interval_shares outcomes =
  (* Only ASs measured in every campaign count (Fig. 12's caption). *)
  let universes = List.map Campaign.universe outcomes in
  let common =
    match universes with
    | [] -> Asn.Set.empty
    | first :: rest -> List.fold_left Asn.Set.inter first rest
  in
  List.map
    (fun (o : Campaign.outcome) ->
      let damping_in categories =
        Asn.Set.cardinal
          (Asn.Set.inter common (Because.Evaluate.damping_set categories))
      in
      {
        interval = o.Campaign.params.Campaign.update_interval;
        consistent = damping_in o.Campaign.categories_step1;
        with_promotions = damping_in o.Campaign.categories;
        measured = Asn.Set.cardinal common;
      })
    outcomes

let damped_path_r_deltas outcome =
  let deltas =
    List.filter_map
      (fun (lp : Label.labeled_path) ->
        if lp.Label.rfd then lp.Label.mean_r_delta else None)
      outcome.Campaign.labeled
  in
  Array.of_list deltas

let plateau_mass r_deltas ~minutes ~tolerance =
  let n = Array.length r_deltas in
  if n = 0 then 0.0
  else begin
    let lo = (minutes -. tolerance) *. 60.0 in
    let hi = (minutes +. tolerance) *. 60.0 in
    let hits =
      Array.fold_left
        (fun acc d -> if d >= lo && d <= hi then acc + 1 else acc)
        0 r_deltas
    in
    float_of_int hits /. float_of_int n
  end

type verdict_pair = {
  subject : Asn.t;
  truth : bool;
  because_says : bool;
  heuristics_say : bool;
  reason : string;
}

type ground_truth_report = {
  cases : verdict_pair list;
  because_metrics : Because.Evaluate.metrics;
  heuristic_metrics : Because.Evaluate.metrics;
}

let against_ground_truth ?(feedback_size = 75) ~rng world outcome =
  let deployment = World.deployment world in
  let dampers = Deployment.dampers deployment in
  let detectable = Deployment.detectable_dampers deployment in
  let universe = Campaign.universe outcome in
  let because_set = Campaign.because_damping outcome in
  let heuristic_set = Campaign.heuristic_damping outcome in
  (* Feedback subset: every visible damper replies, plus a random sample of
     clean ASs — like the paper's 75 operator replies.  ASs whose damping is
     undetectable by construction (customer-only scopes) are excluded, as the
     paper excluded AS 8218 and AS 7575. *)
  let visible_dampers =
    Asn.Set.elements (Asn.Set.inter detectable universe)
  in
  let clean_pool =
    Asn.Set.elements (Asn.Set.diff universe dampers)
  in
  let clean_pool = Array.of_list clean_pool in
  Rng.shuffle rng clean_pool;
  let n_clean =
    Stdlib.min (Array.length clean_pool)
      (Stdlib.max 0 (feedback_size - List.length visible_dampers))
  in
  let subjects =
    visible_dampers @ Array.to_list (Array.sub clean_pool 0 n_clean)
  in
  let upstream_dampers_of asn =
    (* Does some labeled path place a damper between this AS and the
       Beacon? — the paper's "upstream uses RFD" divergence reason. *)
    List.exists
      (fun (lp : Label.labeled_path) ->
        lp.Label.rfd
        && List.exists (Asn.equal asn) lp.Label.path
        && List.exists
             (fun other ->
               (not (Asn.equal other asn)) && Asn.Set.mem other dampers)
             lp.Label.path)
      outcome.Campaign.labeled
  in
  let inconsistent_asn =
    Option.map fst (Deployment.inconsistent deployment)
  in
  let cases =
    List.map
      (fun subject ->
        let truth = Asn.Set.mem subject dampers in
        let because_says = Asn.Set.mem subject because_set in
        let heuristics_say = Asn.Set.mem subject heuristic_set in
        let reason =
          if Bool.equal truth because_says && Bool.equal truth heuristics_say
          then "-"
          else if truth && because_says && not heuristics_say then
            if Some subject = inconsistent_asn then
              "Heterogeneous configuration"
            else "Heuristics below threshold"
          else if truth && (not because_says) && heuristics_say then
            "Upstream uses RFD"
          else if (not truth) && heuristics_say then
            if upstream_dampers_of subject then "Upstream uses RFD"
            else "Heuristic false positive"
          else if truth && not (because_says || heuristics_say) then
            if upstream_dampers_of subject then "Hidden behind a damper"
            else "Not visible on damped paths"
          else "Other"
        in
        { subject; truth; because_says; heuristics_say; reason })
      subjects
  in
  let subject_set =
    List.fold_left (fun s c -> Asn.Set.add c.subject s) Asn.Set.empty cases
  in
  {
    cases;
    because_metrics =
      Because.Evaluate.of_sets ~predicted:because_set ~truth:dampers
        ~universe:subject_set;
    heuristic_metrics =
      Because.Evaluate.of_sets ~predicted:heuristic_set ~truth:dampers
        ~universe:subject_set;
  }

let beacon_update_share outcome =
  let beacon_space = Prefix.of_string "10.0.0.0/8" in
  let total = List.length outcome.Campaign.records in
  if total = 0 then 0.0
  else begin
    let beacon =
      List.length
        (List.filter
           (fun (r : Because_collector.Dump.record) ->
             Prefix.contains beacon_space (Update.prefix r.Because_collector.Dump.update))
           outcome.Campaign.records)
    in
    float_of_int beacon /. float_of_int total
  end

let rov_benchmark ~rng ?config outcome =
  (* Distinct observed paths are the path substrate, as §7 used the AS paths
     of the two RPKI Beacon prefixes. *)
  let paths =
    List.sort_uniq (List.compare Asn.compare)
      (List.map (fun (lp : Label.labeled_path) -> lp.Label.path)
         outcome.Campaign.labeled)
  in
  (* Plant ROV at the most frequent transit ASs until ≈90% of paths are
     positive — the paper's dataset had 90% ROV paths. *)
  let freq = Hashtbl.create 64 in
  List.iter
    (fun path ->
      List.iter
        (fun asn ->
          Hashtbl.replace freq asn
            (1 + Option.value (Hashtbl.find_opt freq asn) ~default:0))
        path)
    paths;
  let ranked =
    Hashtbl.fold (fun asn c acc -> (asn, c) :: acc) freq []
    |> List.sort (fun (a1, c1) (a2, c2) ->
           match Int.compare c2 c1 with 0 -> Asn.compare a1 a2 | c -> c)
  in
  (* A realistic mix, like the isbgpsafeyet-style ground truth the paper
     used: the top transit plus a spread of smaller ASs (~12 % of the
     measured ASs).  The big validator alone pushes the positive share to
     ≈90 % and hides the smaller ones behind it — the recall gap of
     Table 4. *)
  let rov_ases =
    List.fold_left
      (fun acc (i, asn) ->
        (* The two busiest transits push the positive share to the paper's
           ~90%; the every-8th tail spreads smaller validators, several of
           which end up hidden behind the big two. *)
        if i < 2 || i mod 8 = 0 then Asn.Set.add asn acc else acc)
      Asn.Set.empty
      (List.mapi (fun i (asn, _) -> (i, asn)) ranked)
  in
  Because_rov.Rov.benchmark ~rng ?config ~paths ~rov_ases ()
