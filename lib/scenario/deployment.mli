(** Planted RFD deployments — the simulated ground truth.

    The paper {e measures} an unknown deployment; to validate the pipeline we
    {e plant} one with the paper's findings as its shape and check that the
    pipeline recovers it: ≈9 % of ASs damp, ≈60 % of dampers run deprecated
    vendor defaults (Cisco/Juniper) and the rest the RIPE/IETF recommended
    parameters, max-suppress-times cluster at 10/30/60 minutes, one
    large-cone AS damps inconsistently (all neighbors except one), and a few
    ASs damp only customers (undetectable from provider-side Beacons). *)

open Because_bgp

type vendor = Cisco | Juniper | Recommended

type assignment = {
  vendor : vendor;
  params : Rfd_params.t;   (** Vendor preset with the drawn max-suppress-time. *)
  scope : Policy.rfd_scope;
}

type spec = {
  damping_share : float;
      (** Fraction of transit/Tier-1 ASs that damp (0.12).  The paper's
          "9 % of measured ASs" refers to ASs on observed paths, which are
          predominantly transits.  Note that with a core this much smaller
          than the Internet's, several dampers stack on most paths, so more
          of the identification happens in the eq.-8 pinpointing step than
          in the paper (see EXPERIMENTS.md, Fig. 12). *)
  stub_damping_share : float;     (** Fraction of stub ASs that damp (0.06). *)
  vendor_default_share : float;   (** Fraction of dampers on deprecated defaults (0.6). *)
  max_suppress_minutes : float array;  (** Drawn uniformly; {10, 30, 60, 60}. *)
  only_customer_share : float;    (** Dampers that damp only customers (0.1). *)
  inconsistent_damper : bool;     (** Plant one AS-701-like all-except-one damper. *)
}

val default_spec : spec

val operator_params : vendor -> float -> Rfd_params.t
(** [operator_params vendor max_suppress_minutes] — the coherent operator
    configuration behind each Fig.-13 plateau: for the re-advertisement
    delay to sit exactly at the max-suppress-time, the penalty must reach
    the ceiling during a fast Burst, which pins the half-life (and, at
    10 minutes, lower thresholds).  Operators on the RIPE/IETF
    recommendation keep the default timers regardless. *)

type t

val plant :
  Because_stats.Rng.t ->
  Because_topology.Graph.t ->
  spec ->
  exclude:Asn.Set.t ->
  t
(** Draw a deployment over the graph's ASs, never assigning RFD to an AS in
    [exclude] (Beacon origins and their upstream providers). *)

val scope_of : t -> Asn.t -> Policy.rfd_scope
val params_of : t -> Asn.t -> Rfd_params.t
val assignment_of : t -> Asn.t -> assignment option

val dampers : t -> Asn.Set.t
(** Every AS with RFD enabled on at least one session (the ground truth). *)

val detectable_dampers : t -> Asn.Set.t
(** Dampers whose scope provider-side Beacons can trigger (everything except
    [Only_customers]). *)

val inconsistent : t -> (Asn.t * Asn.t) option
(** The planted inconsistent damper and the neighbor it spares, if any. *)

val vendor_share : t -> vendor -> float
(** Share of dampers using the given parameter family. *)

val pp_vendor : Format.formatter -> vendor -> unit
