open Because_bgp
module Rng = Because_stats.Rng
module Graph = Because_topology.Graph
module Generate = Because_topology.Generate
module Vantage = Because_collector.Vantage

type params = {
  seed : int;
  topology : Generate.params;
  n_sites : int;
  n_vantage_hosts : int;
  deployment : Deployment.spec;
  mrai_share : float;
  mrai_seconds : float;
  link_delay_min : float;
  link_delay_max : float;
}

let default_params =
  {
    seed = 42;
    topology = Generate.default_params;
    n_sites = 7;
    n_vantage_hosts = 100;
    deployment = Deployment.default_spec;
    mrai_share = 0.8;
    mrai_seconds = 30.0;
    link_delay_min = 0.5;
    link_delay_max = 5.0;
  }

(* Grow a world towards Internet size along one axis.  The Tier-1 clique
   stays fixed (the real Internet's is ~a dozen however large the edge) while
   the transit layer, the stub edge and the vantage-point population scale
   with the factor — the shape the `scale` bench and `--scale` CLI flag
   sweep. *)
let scale_params p ~factor =
  if not (Float.is_finite factor) || factor <= 0.0 then
    invalid_arg "World.scale_params: factor must be positive";
  let scale n = max 1 (int_of_float (Float.round (float_of_int n *. factor))) in
  {
    p with
    topology =
      {
        p.topology with
        Generate.n_transit = scale p.topology.Generate.n_transit;
        n_stub = scale p.topology.Generate.n_stub;
      };
    n_vantage_hosts = scale p.n_vantage_hosts;
  }

type t = {
  params : params;
  graph : Graph.t;
  deployment : Deployment.t;
  site_origins : (int * Asn.t) list;
  origin_upstreams : Asn.Set.t;
  vantages : Vantage.t list;
  mrai_ases : Asn.Set.t;
}

let params t = t.params
let graph t = t.graph
let deployment t = t.deployment
let site_origins t = t.site_origins
let origin_upstreams t = t.origin_upstreams
let vantages t = t.vantages
let monitored t = Vantage.hosts t.vantages

let fresh_rng t ~salt = Rng.create ((t.params.seed * 1_000_003) + salt)

(* Beacon origins: new stub ASs, each multihomed to a Tier-1 and a transit —
   "a maximum of two AS hops away from a Tier 1 provider". *)
let place_sites rng graph n_sites =
  let tier1 = Array.of_list (Generate.tier1_asns graph) in
  let transit = Array.of_list (Generate.transit_asns graph) in
  List.init n_sites (fun site_id ->
      let origin = Asn.of_int (65001 + site_id) in
      Graph.add_as graph origin Graph.Stub;
      let p1 = Rng.choice rng tier1 in
      Graph.add_customer_link graph ~provider:p1 ~customer:origin;
      let p2 = Rng.choice rng transit in
      if not (Graph.has_link graph p2 origin) then
        Graph.add_customer_link graph ~provider:p2 ~customer:origin;
      (site_id, origin))

let pick_vantage_hosts rng graph ~exclude ~count =
  let eligible =
    List.filter
      (fun a -> not (Asn.Set.mem a exclude))
      (Generate.transit_asns graph @ Generate.stub_asns graph)
  in
  let arr = Array.of_list eligible in
  let n = Stdlib.min count (Array.length arr) in
  Array.to_list (Rng.sample_without_replacement rng n arr)

let build params =
  let rng = Rng.create params.seed in
  let topology_rng = Rng.split rng in
  let site_rng = Rng.split rng in
  let deployment_rng = Rng.split rng in
  let vantage_rng = Rng.split rng in
  let mrai_rng = Rng.split rng in
  let graph = Generate.generate topology_rng params.topology in
  let site_origins = place_sites site_rng graph params.n_sites in
  let origins =
    List.fold_left
      (fun acc (_, o) -> Asn.Set.add o acc)
      Asn.Set.empty site_origins
  in
  let origin_upstreams =
    Asn.Set.fold
      (fun origin acc ->
        List.fold_left
          (fun acc (n, _) -> Asn.Set.add n acc)
          acc (Graph.neighbors graph origin))
      origins Asn.Set.empty
  in
  let deployment =
    Deployment.plant deployment_rng graph params.deployment
      ~exclude:(Asn.Set.union origins origin_upstreams)
  in
  let hosts =
    pick_vantage_hosts vantage_rng graph ~exclude:origins
      ~count:params.n_vantage_hosts
  in
  let vantages =
    Vantage.assign vantage_rng ~hosts ~per_project_share:[ 0.5; 0.45; 0.35 ]
  in
  let mrai_ases =
    List.fold_left
      (fun acc asn ->
        if Rng.float mrai_rng < params.mrai_share then Asn.Set.add asn acc
        else acc)
      Asn.Set.empty (Graph.ases graph)
  in
  {
    params;
    graph;
    deployment;
    site_origins;
    origin_upstreams;
    vantages;
    mrai_ases;
  }

let router_configs t =
  List.map
    (fun asn ->
      let mrai =
        if Asn.Set.mem asn t.mrai_ases then t.params.mrai_seconds else 0.0
      in
      let neighbors =
        List.map
          (fun (n, relationship) ->
            { Router.neighbor_asn = n; relationship; mrai })
          (Graph.neighbors t.graph asn)
      in
      {
        Router.asn;
        neighbors;
        rfd_scope = Deployment.scope_of t.deployment asn;
        rfd_params = Deployment.params_of t.deployment asn;
      })
    (Graph.ases t.graph)

(* Deterministic per-directed-link delay from a lightweight hash. *)
let delay t ~from_asn ~to_asn =
  let mix h v =
    let h = h lxor (v * 0x9E3779B1) in
    let h = (h lxor (h lsr 16)) * 0x85EBCA6B in
    h lxor (h lsr 13)
  in
  let h = mix (mix (mix 0x2545F491 t.params.seed) (Asn.to_int from_asn)) (Asn.to_int to_asn) in
  let unit = float_of_int (h land 0xFFFFFF) /. float_of_int 0xFFFFFF in
  t.params.link_delay_min
  +. (unit *. (t.params.link_delay_max -. t.params.link_delay_min))

let node_priors t =
  List.map (fun (_, origin) -> (origin, Because.Prior.Near_zero)) t.site_origins
