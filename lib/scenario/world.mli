(** A measurement world: topology + Beacon sites + vantage points + planted
    RFD deployment — everything §4.3's setup describes, held constant across
    the per-interval campaigns so that "ASs measured in all experiments" is a
    meaningful universe (Fig. 12). *)

open Because_bgp

type params = {
  seed : int;
  topology : Because_topology.Generate.params;
  n_sites : int;               (** Beacon sites (paper: 7). *)
  n_vantage_hosts : int;       (** ASs hosting collector sessions. *)
  deployment : Deployment.spec;
  mrai_share : float;          (** Share of ASs applying a 30-second MRAI. *)
  mrai_seconds : float;
  link_delay_min : float;      (** Per-link one-way delay bounds, seconds. *)
  link_delay_max : float;
}

val default_params : params

val scale_params : params -> factor:float -> params
(** Grow (or shrink) a world towards Internet size: transit count, stub
    count and vantage-host count are multiplied by [factor] (minimum 1
    each) while the Tier-1 clique and Beacon sites stay fixed.  Raises
    [Invalid_argument] on a non-positive factor. *)

type t

val build : params -> t

val params : t -> params
val graph : t -> Because_topology.Graph.t
val deployment : t -> Deployment.t

val site_origins : t -> (int * Asn.t) list
(** [(site_id, origin ASN)] pairs. *)

val origin_upstreams : t -> Asn.Set.t
(** The Beacon sites' providers — verified (by construction) not to damp. *)

val vantages : t -> Because_collector.Vantage.t list
val monitored : t -> Asn.Set.t

val router_configs : t -> Router.config list
(** One config per AS including Beacon origins, with deployment-driven RFD
    scopes/parameters and per-AS MRAI. *)

val delay : t -> from_asn:Asn.t -> to_asn:Asn.t -> float
(** Deterministic per-directed-link propagation delay. *)

val node_priors : t -> (Asn.t * Because.Prior.t) list
(** Prior side-information: Beacon origins are known not to damp (§3.2
    "our Beacons do not dampen routes"). *)

val fresh_rng : t -> salt:int -> Because_stats.Rng.t
(** An independent stream derived from the world seed; campaigns use
    different salts. *)
