(** Link-granularity tomography (§6.3).

    Heterogeneous RFD configurations damp {e sessions}, not whole ASs, so the
    natural unknowns would be AS links.  The paper notes this and observes
    that path data is too sparse at link granularity to give reasonable
    results.  Because BeCAUSe is generic, the link problem is the same
    algorithm over a transformed dataset: each AS path becomes a path of
    {e link nodes}, and everything downstream (model, samplers, categories)
    is reused unchanged.

    Links are packed into synthetic ASNs ([a·2¹⁶ + b] with [a < b]), which
    requires both endpoints below 65536 — true for every generated world. *)

open Because_bgp

val encode : Asn.t * Asn.t -> Asn.t
(** Raises [Invalid_argument] if either endpoint is ≥ 65536. *)

val decode : Asn.t -> Asn.t * Asn.t
val is_link_node : Asn.t -> bool

val observations : (Asn.t list * bool) list -> (Asn.t list * bool) list
(** Transform AS-path observations into link-path observations.  Paths
    shorter than two ASs are dropped (they cross no link). *)

val median_incidence : (Asn.t list * bool) list -> float
(** Median number of paths per node of a dataset — the sparsity measure that
    explains why link granularity fails. *)
