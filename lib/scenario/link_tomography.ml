open Because_bgp

let encode (a, b) =
  let a = Asn.to_int a and b = Asn.to_int b in
  let lo = Stdlib.min a b and hi = Stdlib.max a b in
  if hi >= 65536 then
    invalid_arg "Link_tomography.encode: endpoint does not fit 16 bits";
  Asn.of_int ((lo * 65536) + hi)

let decode node =
  let v = Asn.to_int node in
  (Asn.of_int (v / 65536), Asn.of_int (v mod 65536))

let is_link_node node = Asn.to_int node >= 65536

let observations obs =
  List.filter_map
    (fun (path, label) ->
      match Report.links_of_path path with
      | [] -> None
      | links -> Some (List.map encode links, label))
    obs

let median_incidence obs =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (path, _) ->
      List.iter
        (fun node ->
          Hashtbl.replace counts node
            (1 + Option.value (Hashtbl.find_opt counts node) ~default:0))
        (List.sort_uniq Asn.compare path))
    obs;
  let values = Hashtbl.fold (fun _ c acc -> float_of_int c :: acc) counts [] in
  match values with
  | [] -> 0.0
  | _ -> Because_stats.Summary.median (Array.of_list values)
