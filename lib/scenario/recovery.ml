(* Campaign-level recovery: one durable checkpoint store shared by the
   simulation shards and every MCMC chain, plus the scenario-specific
   serializers the lower layers deliberately know nothing about.

   The store is attached once per campaign run under a fingerprint of the
   full stimulus (world parameters, schedules, script, inference settings),
   so snapshots can only ever resume the campaign that wrote them. *)

module Codec = Because_recover.Codec
module Checkpoint = Because_recover.Checkpoint
module Chain_ckpt = Because_recover.Chain_ckpt
module Sharded = Because_sim.Sharded
module Network = Because_sim.Network

exception Killed
(* Test hook: simulates a hard kill at the moment a configured save would
   have happened.  Raised *before* the write, like a real crash. *)

type t = {
  dir : string;
  resume : bool;
  every_sweeps : int option;
  every_seconds : float option;
  kill_after_saves : int option;
  kill_switch : (unit -> bool) option;
  save_count : int Atomic.t;
  mutable store : Checkpoint.t option;
  mutex : Mutex.t;
  mutable decode_warnings : string list; (* newest first *)
}

let create ~dir ?(resume = false) ?every_sweeps
    ?(every_seconds = Chain_ckpt.default_every_seconds) ?kill_after_saves
    ?kill_switch () =
  {
    dir;
    resume;
    every_sweeps;
    every_seconds = Some every_seconds;
    kill_after_saves;
    kill_switch;
    save_count = Atomic.make 0;
    store = None;
    mutex = Mutex.create ();
    decode_warnings = [];
  }

let dir t = t.dir
let resuming t = t.resume

let record_warning t msg =
  Mutex.lock t.mutex;
  t.decode_warnings <- msg :: t.decode_warnings;
  Mutex.unlock t.mutex

let warnings t =
  let store_warnings =
    match t.store with Some s -> Checkpoint.warnings s | None -> []
  in
  store_warnings @ List.rev t.decode_warnings

let saves t = match t.store with Some s -> Checkpoint.saves s | None -> 0

let restores t =
  match t.store with Some s -> Checkpoint.restores s | None -> 0

let fallbacks t =
  match t.store with Some s -> Checkpoint.fallbacks s | None -> 0

(* A fresh (non-resuming) run must not read a previous run's snapshots even
   when the fingerprint matches, so its attach clears the directory first;
   quarantined *.corrupt-N files are kept for post-mortem. *)
let wipe_snapshots dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if
          Filename.check_suffix f ".ck"
          || f = "MANIFEST" || f = "LATEST"
        then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let attach t ~fingerprint =
  if not t.resume then wipe_snapshots t.dir;
  t.store <- Some (Checkpoint.open_ ~dir:t.dir ~fingerprint ())

let maybe_kill t =
  (match t.kill_after_saves with
  | None -> ()
  | Some limit ->
      if Atomic.fetch_and_add t.save_count 1 >= limit then raise Killed);
  match t.kill_switch with
  | Some tripped when tripped () -> raise Killed
  | _ -> ()

let save_payload t ~key payload =
  match t.store with
  | None -> ()
  | Some store ->
      maybe_kill t;
      Checkpoint.save store ~key payload

let load_payload t ~key =
  match t.store with None -> None | Some store -> Checkpoint.load store ~key

(* --- scenario value codecs ---

   The RFC 4271 wire codec is deliberately lossy (whole-second timestamps,
   collapsed invalid aggregators) and therefore unusable here: resume must
   reproduce feeds bit-for-bit, floats and all.  The asn/prefix/update
   codecs are shared with the streaming feed-log layer
   ({!Because_sim.Feed_log}) so an update has exactly one durable
   encoding. *)

module Feed_log = Because_sim.Feed_log

let w_asn = Feed_log.w_asn
let r_asn = Feed_log.r_asn
let w_update = Feed_log.w_update
let r_update = Feed_log.r_update

let w_fault_event w = function
  | Network.Fault_link_down { a; b } ->
      Codec.u8 w 0;
      w_asn w a;
      w_asn w b
  | Network.Fault_link_up { a; b } ->
      Codec.u8 w 1;
      w_asn w a;
      w_asn w b
  | Network.Fault_session_reset { a; b } ->
      Codec.u8 w 2;
      w_asn w a;
      w_asn w b
  | Network.Fault_session_down { owner; peer; reason } ->
      Codec.u8 w 3;
      w_asn w owner;
      w_asn w peer;
      Codec.string w reason
  | Network.Fault_session_up { owner; peer } ->
      Codec.u8 w 4;
      w_asn w owner;
      w_asn w peer
  | Network.Fault_update_lost { from_asn; to_asn } ->
      Codec.u8 w 5;
      w_asn w from_asn;
      w_asn w to_asn
  | Network.Fault_update_duplicated { from_asn; to_asn } ->
      Codec.u8 w 6;
      w_asn w from_asn;
      w_asn w to_asn

let r_fault_event r =
  match Codec.read_u8 r with
  | 0 ->
      let a = r_asn r in
      let b = r_asn r in
      Network.Fault_link_down { a; b }
  | 1 ->
      let a = r_asn r in
      let b = r_asn r in
      Network.Fault_link_up { a; b }
  | 2 ->
      let a = r_asn r in
      let b = r_asn r in
      Network.Fault_session_reset { a; b }
  | 3 ->
      let owner = r_asn r in
      let peer = r_asn r in
      let reason = Codec.read_string r in
      Network.Fault_session_down { owner; peer; reason }
  | 4 ->
      let owner = r_asn r in
      let peer = r_asn r in
      Network.Fault_session_up { owner; peer }
  | 5 ->
      let from_asn = r_asn r in
      let to_asn = r_asn r in
      Network.Fault_update_lost { from_asn; to_asn }
  | 6 ->
      let from_asn = r_asn r in
      let to_asn = r_asn r in
      Network.Fault_update_duplicated { from_asn; to_asn }
  | tag ->
      raise (Codec.Malformed (Printf.sprintf "unknown fault tag %d" tag))

let w_timed f w (time, v) =
  Codec.float w time;
  f w v

let r_timed f r =
  let time = Codec.read_float r in
  let v = f r in
  (time, v)

let w_stats w (s : Network.stats) =
  Codec.int w s.Network.deliveries;
  Codec.int w s.Network.announcements;
  Codec.int w s.Network.withdrawals;
  Codec.int w s.Network.lost;
  Codec.int w s.Network.duplicated;
  Codec.int w s.Network.session_drops;
  Codec.int w s.Network.session_recoveries

let r_stats r : Network.stats =
  let deliveries = Codec.read_int r in
  let announcements = Codec.read_int r in
  let withdrawals = Codec.read_int r in
  let lost = Codec.read_int r in
  let duplicated = Codec.read_int r in
  let session_drops = Codec.read_int r in
  let session_recoveries = Codec.read_int r in
  {
    Network.deliveries;
    announcements;
    withdrawals;
    lost;
    duplicated;
    session_drops;
    session_recoveries;
  }

(* Feeds are persisted materialized whatever their in-memory form: a spilled
   store's log files live under a transient spill directory, while a
   checkpoint must survive on its own — so the envelope byte layout is
   unchanged from the pre-spill format and older checkpoints still decode. *)
let encode_shard_result (sr : Sharded.shard_result) =
  let w = Codec.writer () in
  Codec.list w
    (fun w (asn, feed) ->
      w_asn w asn;
      Codec.list w (w_timed w_update) feed)
    (Sharded.store_entries sr.Sharded.shard_feeds);
  w_stats w sr.Sharded.shard_stats;
  Codec.list w (w_timed w_fault_event) sr.Sharded.shard_fault_log;
  Codec.int w sr.Sharded.shard_events_count;
  Codec.contents w

let decode_shard_result payload =
  let r = Codec.reader payload in
  let shard_feeds =
    Codec.read_list r (fun r ->
        let asn = r_asn r in
        let feed = Codec.read_list r (r_timed r_update) in
        (asn, feed))
  in
  let shard_stats = r_stats r in
  let shard_fault_log = Codec.read_list r (r_timed r_fault_event) in
  let shard_events_count = Codec.read_int r in
  Codec.expect_end r;
  {
    Sharded.shard_feeds = Sharded.Feeds_mem shard_feeds;
    shard_stats;
    shard_fault_log;
    shard_events_count;
  }

(* --- hooks --- *)

let shard_key ~shard ~shards = Printf.sprintf "sim.shard%dof%d" shard shards

let sim_hooks t =
  {
    Sharded.load_shard =
      (fun ~shard ~shards ->
        match load_payload t ~key:(shard_key ~shard ~shards) with
        | None -> None
        | Some payload -> (
            match decode_shard_result payload with
            | sr -> Some sr
            | exception Codec.Malformed reason ->
                record_warning t
                  (Printf.sprintf
                     "checkpointed shard %d/%d failed to decode (%s); \
                      re-simulating"
                     shard shards reason);
                None));
    save_shard =
      (fun ~shard ~shards sr ->
        save_payload t
          ~key:(shard_key ~shard ~shards)
          (encode_shard_result sr));
  }

let chain_hooks t ~namespace =
  {
    Chain_ckpt.load =
      (fun ~key ->
        match load_payload t ~key:(namespace ^ key) with
        | None -> None
        | Some payload -> (
            match Chain_ckpt.decode_saved payload with
            | sv -> Some sv
            | exception Codec.Malformed reason ->
                record_warning t
                  (Printf.sprintf
                     "checkpointed chain %s%s failed to decode (%s); \
                      restarting the chain"
                     namespace key reason);
                None));
    save =
      (fun ~key ~sweep:_ sv ->
        save_payload t ~key:(namespace ^ key) (Chain_ckpt.encode_saved sv));
    every_sweeps = t.every_sweeps;
    every_seconds = t.every_seconds;
  }

(* Informational snapshots: phase progress and the final telemetry view.
   Both replace-on-write; neither participates in resume decisions. *)

let note_phase t phase = save_payload t ~key:"campaign.phase" phase

let phase t =
  match load_payload t ~key:"campaign.phase" with
  | Some p -> Some p
  | None -> None

let save_telemetry t snapshot =
  save_payload t ~key:"telemetry.json"
    (Because_telemetry.Export.to_json snapshot)
