open Because_bgp
module Rng = Because_stats.Rng
module Dist = Because_stats.Dist
module Schedule = Because_beacon.Schedule
module Site = Because_beacon.Site
module Script = Because_sim.Script
module Sharded = Because_sim.Sharded
module Dump = Because_collector.Dump
module Noise = Because_collector.Noise
module Label = Because_labeling.Label
module Combine = Because_heuristics.Combine
module Plan = Because_faults.Plan
module Injector = Because_faults.Injector
module Tel = Because_telemetry.Registry
module Supervise = Because_recover.Supervise

type params = {
  update_interval : float;
  burst_duration : float;
  break_duration : float;
  cycles : int;
  lead_in : float;
  anchor_period : float;
  noise : Noise.params;
  min_r_delta : float;
  match_threshold : float;
  infer_config : Because.Infer.config;
  run_inference : bool;
  background_prefixes : int;
  background_mean_gap : float;
  faults : Plan.t;
  min_path_support : int;
  sim_jobs : int;
  sim_shards : int option;
  feed_spill_dir : string option;
  feed_buffer : int;
  telemetry : Tel.t;
  init_posterior : (Asn.t * float) list option;
}

let default_params ~update_interval =
  {
    update_interval;
    burst_duration = 7200.0;
    break_duration = 7200.0;
    cycles = 4;
    lead_in = 1800.0;
    anchor_period = 7200.0;
    noise = Noise.realistic;
    (* The paper separates signals at 5 min for a world with ≤1 min
       propagation; our collector export latency reaches 2 min and MRAI
       chains stack, while the fastest genuine release (10-min
       max-suppress timer) sits at 600 s — so the default threshold sits
       between the two.  The `ablations` bench sweeps this value. *)
    min_r_delta = 480.0;
    match_threshold = 0.9;
    infer_config = Because.Infer.default_config;
    run_inference = true;
    background_prefixes = 0;
    background_mean_gap = 1800.0;
    faults = Plan.empty;
    min_path_support = 1;
    sim_jobs = 1;
    sim_shards = None;
    feed_spill_dir = None;
    feed_buffer = Because_sim.Feed_log.default_buffer;
    telemetry = Tel.disabled;
    init_posterior = None;
  }

type outcome = {
  params : params;
  schedule : Schedule.t;
  sites : Site.t list;
  records : Dump.record list;
  labeled : Label.labeled_path list;
  windows : (float * float * float) list;
  oscillating : Prefix.Set.t;
  anchors : Prefix.Set.t;
  result : Because.Infer.result option;
  categories_step1 : (Asn.t * Because.Categorize.t) list;
  categories : (Asn.t * Because.Categorize.t) list;
  promotions : Because.Pinpoint.promotion list;
  heuristic_verdicts : Combine.verdict list;
  deliveries : int;
  events : int;
  shard_events : int array;
  campaign_end : float;
  fault_log : (float * Injector.injected) list;
  insufficient : Asn.t list;
  warnings : string list;
  telemetry : Because_telemetry.Snapshot.t option;
  status : Supervise.status;
}

(* A /24 per churn prefix starting at 172.16.0.0 and growing upward through
   172/8: the first 4096 land in the historical 172.16.0.0/12 home (the
   addition below equals the old logor for k < 4096, so existing campaigns
   reproduce bit-for-bit), and the space runs to the top of 172.255.255.0/24
   — 61440 prefixes, still disjoint from the 10/8 Beacon ranges — before it
   would wrap into 173/8. *)
let max_background_prefixes = 61440

let schedule_background rng world script ~count ~mean_gap ~campaign_end =
  if count > max_background_prefixes then
    invalid_arg
      (Printf.sprintf
         "Campaign: background_prefixes %d exceeds the %d /24s between \
          172.16.0.0 and the top of 172/8"
         count max_background_prefixes);
  if count > 0 then begin
    let graph = World.graph world in
    let origins =
      List.fold_left
        (fun acc (_, o) -> Asn.Set.add o acc)
        Asn.Set.empty (World.site_origins world)
    in
    let candidates =
      Array.of_list
        (List.filter
           (fun a -> not (Asn.Set.mem a origins))
           (Because_topology.Graph.ases graph))
    in
    for k = 0 to count - 1 do
      let origin = Rng.choice rng candidates in
      let prefix =
        (* 172.16+ space keeps churn clearly apart from Beacons. *)
        Prefix.make
          (Int32.add 0xAC100000l (Int32.shift_left (Int32.of_int k) 8))
          24
      in
      Script.announce script ~time:0.0 ~origin prefix;
      let t = ref (Dist.exponential rng ~rate:(1.0 /. mean_gap)) in
      let announced = ref true in
      while !t < campaign_end do
        if !announced then Script.withdraw script ~time:!t ~origin prefix
        else Script.announce script ~time:!t ~origin prefix;
        announced := not !announced;
        t := !t +. Dist.exponential rng ~rate:(1.0 /. mean_gap)
      done
    done
  end

(* Fingerprint of everything that determines the campaign's results: world
   parameters, the fully-recorded stimulus script, the interval set, every
   result-affecting campaign scalar, the noise and fault plans, and the
   inference settings.  Parallelism and memory knobs ([sim_jobs],
   [sim_shards], [feed_spill_dir], [feed_buffer], [infer_config.jobs]), the
   supervision budget and wall-clock-only backoff are deliberately excluded:
   outcomes are jobs-invariant and spill-invariant, and resuming with more
   workers, a larger budget, or feeds on disk is exactly the operational
   move the checkpoint store exists to allow. *)
let fingerprint world params ~intervals ~script =
  let ic = params.infer_config in
  let infer_scalars =
    ( ic.Because.Infer.n_samples,
      ic.Because.Infer.burn_in,
      ic.Because.Infer.thin,
      ic.Because.Infer.prior,
      ic.Because.Infer.false_negative_rate,
      ic.Because.Infer.leapfrog_steps,
      ic.Because.Infer.run_mh,
      ic.Because.Infer.run_hmc,
      ic.Because.Infer.max_restarts,
      ic.Because.Infer.n_chains )
  in
  let campaign_scalars =
    ( params.burst_duration,
      params.break_duration,
      params.cycles,
      params.lead_in,
      params.anchor_period,
      params.min_r_delta,
      params.match_threshold,
      params.run_inference,
      params.background_prefixes,
      params.background_mean_gap,
      params.min_path_support )
  in
  let base =
    Marshal.to_string
      ( World.params world,
        Script.ops script,
        intervals,
        campaign_scalars,
        params.noise,
        params.faults,
        infer_scalars )
      [ Marshal.No_sharing ]
  in
  (* The warm-start seed determines the chains' trajectories, so it must be
     covered — but only when present, so every historical (cold) campaign
     keeps its exact historical fingerprint and its checkpoints stay
     resumable. *)
  let keyed =
    match params.init_posterior with
    | None -> base
    | Some seed ->
        base
        ^ Marshal.to_string
            (List.map (fun (a, m) -> (Asn.to_int a, m)) seed)
            [ Marshal.No_sharing ]
  in
  Digest.to_hex (Digest.string keyed)

(* Campaign health for one interval's outcome: inference that was asked for
   but starved of observations is [Insufficient]; budget-aborted or fully
   dead chains degrade to heuristics; everything else is healthy. *)
let status_of ~params ~interval ~observations result =
  if not params.run_inference then Supervise.Healthy
  else
    match result with
    | None ->
        if observations = [] then
          Supervise.Insufficient
            [
              Printf.sprintf
                "interval %gs: no labeled observations survived to localize"
                interval;
            ]
        else Supervise.Healthy
    | Some r ->
        if r.Because.Infer.aborted <> [] then
          Supervise.Degraded r.Because.Infer.aborted
        else if r.Because.Infer.runs = [] then
          Supervise.Degraded
            (match r.Because.Infer.warnings with
            | [] -> [ "every sampler chain was dropped" ]
            | ws -> ws)
        else Supervise.Healthy

let run_multi ?recovery world params ~intervals =
  if intervals = [] then invalid_arg "Campaign.run_multi: no intervals";
  let distinct = List.sort_uniq Float.compare intervals in
  if List.length distinct <> List.length intervals then
    invalid_arg "Campaign.run_multi: intervals must be distinct";
  let salt =
    List.fold_left
      (fun acc iv -> (acc * 31) + int_of_float (iv *. 7919.0))
      params.cycles intervals
  in
  let noise_rng = World.fresh_rng world ~salt:(salt + 1) in
  let churn_rng = World.fresh_rng world ~salt:(salt + 2) in
  let schedule_of interval =
    Schedule.of_durations ~lead_in:params.lead_in ~update_interval:interval
      ~burst_duration:params.burst_duration
      ~break_duration:params.break_duration ~cycles:params.cycles ()
  in
  let schedules = List.map schedule_of intervals in
  let campaign_end =
    List.fold_left
      (fun acc s -> Float.max acc (Schedule.end_time s))
      0.0 schedules
    +. params.break_duration +. 600.0
  in
  let anchor_cycles =
    1 + int_of_float (Float.ceil (campaign_end /. (2.0 *. params.anchor_period)))
  in
  let sites =
    List.map
      (fun (site_id, origin) ->
        Site.make ~site_id ~origin ~anchor_period:params.anchor_period
          ~anchor_cycles ~oscillating:schedules ())
      (World.site_origins world)
  in
  (* The whole stimulus — fault plan, Beacon schedules, background churn —
     is recorded into a script in the historical scheduling order, then
     replayed over [sim_jobs] per-prefix shards.  At [sim_jobs = 1] the
     replay reproduces the sequential event stream bit-for-bit. *)
  let script = Script.create () in
  let gaps_of vp_id = Plan.collector_outages params.faults ~vp_id in
  (* A non-empty fault plan gets its own RNG stream (salt + 4); the empty
     plan touches nothing, keeping the event stream bit-for-bit the
     fault-free one. *)
  let fault_rng =
    Tel.Span.with_ params.telemetry ~name:"campaign.stimulus" (fun () ->
        let fault_rng =
          if Plan.is_empty params.faults then None
          else begin
            Injector.install params.faults script;
            Some (World.fresh_rng world ~salt:(salt + 4))
          end
        in
        List.iter
          (fun site ->
            let outages =
              Plan.site_outages params.faults ~site_id:site.Site.site_id
            in
            Site.install ~outages site script)
          sites;
        schedule_background churn_rng world script
          ~count:params.background_prefixes
          ~mean_gap:params.background_mean_gap ~campaign_end;
        fault_rng)
  in
  (* The store opens only once the stimulus is complete: the fingerprint
     covers the recorded script, so a snapshot can never be replayed into a
     different campaign. *)
  (match recovery with
  | Some r ->
      Recovery.attach r ~fingerprint:(fingerprint world params ~intervals ~script);
      Recovery.note_phase r "stimulus"
  | None -> ());
  let sim =
    Tel.Span.with_ params.telemetry ~name:"campaign.sim" (fun () ->
        Sharded.run ?fault_rng ~telemetry:params.telemetry
          ?checkpoint:(Option.map Recovery.sim_hooks recovery)
          ?shards:params.sim_shards
          ?feed_spill:
            (Option.map
               (fun dir ->
                 { Because_sim.Feed_log.dir; buffer = params.feed_buffer })
               params.feed_spill_dir)
          ~jobs:params.sim_jobs
          ~configs:(World.router_configs world)
          ~delay:(World.delay world)
          ~monitored:(World.monitored world)
          ~until:campaign_end script)
  in
  Option.iter (fun r -> Recovery.note_phase r "simulated") recovery;
  (* Drain boundary: a shutdown requested mid-simulation lands here once
     the in-flight shards have checkpointed; everything below is cheaper to
     recompute on resume than to persist. *)
  Supervise.check_drain ();
  let fault_log = Injector.log_of ~plan:params.faults sim.Sharded.fault_log in
  if Tel.is_enabled params.telemetry then
    Injector.flush_telemetry params.telemetry ~plan:params.faults
      ~log:fault_log;
  let records =
    Tel.Span.with_ params.telemetry ~name:"campaign.collect" (fun () ->
        Dump.of_feeds ~gaps_of noise_rng ~feed_of:(Sharded.feed sim)
          ~vantages:(World.vantages world) ~noise:params.noise ~campaign_end
          ())
  in
  let anchors =
    List.fold_left
      (fun anc site ->
        match Site.anchor_prefix site with
        | Some p -> Prefix.Set.add p anc
        | None -> anc)
      Prefix.Set.empty sites
  in
  let deliveries = sim.Sharded.stats.Because_sim.Network.deliveries in
  let outcomes =
    List.mapi
    (fun k (interval, schedule) ->
      Supervise.check_drain ();
      let infer_rng = World.fresh_rng world ~salt:(salt + 3 + k) in
      let oscillating =
        List.fold_left
          (fun osc site ->
            match Site.oscillating_prefix site ~interval with
            | Some p -> Prefix.Set.add p osc
            | None -> osc)
          Prefix.Set.empty sites
      in
      let windows = Schedule.windows schedule in
      let windows_of prefix =
        if Prefix.Set.mem prefix oscillating then windows else []
      in
      let labeled =
        Tel.Span.with_ params.telemetry ~name:"campaign.label" (fun () ->
            Label.label_all ~min_r_delta:params.min_r_delta
              ~match_threshold:params.match_threshold ~gaps_of ~records
              ~windows_of ())
      in
      let observations = Label.observations labeled in
      let result =
        if params.run_inference && observations <> [] then begin
          let data = Because.Tomography.of_observations observations in
          let checkpoint =
            match recovery with
            | Some r ->
                (* One key namespace per interval: chains of different
                   intervals are distinct posteriors. *)
                Some
                  (Recovery.chain_hooks r
                     ~namespace:(Printf.sprintf "iv%d." k))
            | None -> params.infer_config.Because.Infer.checkpoint
          in
          let init =
            match params.init_posterior with
            | None -> params.infer_config.Because.Infer.init
            | Some seed ->
                (* One starting value per dataset node, in node order; an AS
                   the previous epoch never saw starts at the sampler
                   default for the unit interval.  Clamped strictly inside
                   (0, 1) so the HMC logit transform stays finite. *)
                let clamp m = Float.max 1e-4 (Float.min (1.0 -. 1e-4) m) in
                Some
                  (Array.map
                     (fun asn ->
                       match
                         List.find_opt (fun (a, _) -> Asn.equal a asn) seed
                       with
                       | Some (_, m) -> clamp m
                       | None -> 0.5)
                     (Because.Tomography.nodes data))
          in
          let config =
            { params.infer_config with
              Because.Infer.node_priors = World.node_priors world;
              telemetry = params.telemetry;
              checkpoint;
              init }
          in
          Tel.Span.with_ params.telemetry ~name:"campaign.infer" (fun () ->
              Some (Because.Infer.run ~rng:infer_rng ~config data))
        end
        else None
      in
      let status = status_of ~params ~interval ~observations result in
      let categories_step1, categories, promotions, insufficient, warnings =
        match result with
        | None -> ([], [], [], [], [])
        | Some r ->
            Tel.Span.with_ params.telemetry ~name:"campaign.categorize"
              (fun () ->
                let min_support = params.min_path_support in
                let step1 = Because.Categorize.assign ~min_support r in
                let insufficient =
                  Because.Categorize.insufficient r ~min_support
                in
                let promos =
                  (* An AS demoted for lack of surviving evidence must stay
                     "insufficient data", not get promoted back to C4. *)
                  List.filter
                    (fun (p : Because.Pinpoint.promotion) ->
                      not (List.exists (Asn.equal p.Because.Pinpoint.asn)
                             insufficient))
                    (Because.Pinpoint.promotions r ~categories:step1)
                in
                ( step1,
                  Because.Pinpoint.apply step1 promos,
                  promos,
                  insufficient,
                  r.Because.Infer.warnings ))
      in
      let heuristic_verdicts =
        if labeled = [] then []
        else
          Tel.Span.with_ params.telemetry ~name:"campaign.heuristics"
            (fun () -> Combine.evaluate ~records ~labeled ~windows_of ())
      in
      {
        params = { params with update_interval = interval };
        schedule;
        sites;
        records;
        labeled;
        windows;
        oscillating;
        anchors;
        result;
        categories_step1;
        categories;
        promotions;
        heuristic_verdicts;
        deliveries;
        events = sim.Sharded.events;
        shard_events = sim.Sharded.shard_events;
        campaign_end;
        fault_log;
        insufficient;
        warnings;
        telemetry = None;
        status;
      })
    (List.combine intervals schedules)
  in
  (* One snapshot for the whole multi-interval campaign, taken after every
     phase has flushed; each per-interval outcome carries the same view. *)
  let snap =
    if Tel.is_enabled params.telemetry then Some (Tel.snapshot params.telemetry)
    else None
  in
  (match recovery with
  | Some r ->
      Recovery.note_phase r "complete";
      Option.iter (Recovery.save_telemetry r) snap
  | None -> ());
  match snap with
  | Some s -> List.map (fun o -> { o with telemetry = Some s }) outcomes
  | None -> outcomes

let run ?recovery world params =
  List.hd (run_multi ?recovery world params ~intervals:[ params.update_interval ])

let with_jobs ?n_chains ?sim_jobs params jobs =
  let infer_config =
    { params.infer_config with
      Because.Infer.jobs;
      n_chains =
        Option.value n_chains
          ~default:params.infer_config.Because.Infer.n_chains }
  in
  { params with
    infer_config;
    sim_jobs = Option.value sim_jobs ~default:params.sim_jobs }

let horizon params =
  let s =
    Schedule.of_durations ~lead_in:params.lead_in
      ~update_interval:params.update_interval
      ~burst_duration:params.burst_duration
      ~break_duration:params.break_duration ~cycles:params.cycles ()
  in
  Schedule.end_time s +. params.break_duration +. 600.0

let draw_faults world params severity =
  let rng = World.fresh_rng world ~salt:5 in
  let links = Because_topology.Graph.links (World.graph world) in
  let site_ids = List.map fst (World.site_origins world) in
  let vp_ids =
    List.map
      (fun (v : Because_collector.Vantage.t) ->
        v.Because_collector.Vantage.vp_id)
      (World.vantages world)
  in
  Plan.draw rng severity ~links ~site_ids ~vp_ids ~horizon:(horizon params)

let windows_of outcome prefix =
  if Prefix.Set.mem prefix outcome.oscillating then outcome.windows else []

let observations outcome = Label.observations outcome.labeled

let because_damping outcome =
  Because.Evaluate.damping_set outcome.categories

let heuristic_damping outcome = Combine.damping_set outcome.heuristic_verdicts

let universe outcome =
  List.fold_left
    (fun acc (path, _) ->
      List.fold_left (fun acc asn -> Asn.Set.add asn acc) acc path)
    Asn.Set.empty (observations outcome)

let site_of_prefix outcome prefix =
  List.find_map
    (fun (site : Site.t) ->
      if
        List.exists
          (fun (bp : Site.beacon_prefix) ->
            Prefix.equal bp.Site.prefix prefix)
          site.Site.prefixes
      then Some site.Site.site_id
      else None)
    outcome.sites

let propagation_samples outcome ~role =
  let wanted =
    match role with
    | `Anchor -> outcome.anchors
    | `Oscillating -> outcome.oscillating
  in
  let samples =
    List.filter_map
      (fun (r : Dump.record) ->
        let prefix = Update.prefix r.Dump.update in
        if Prefix.Set.mem prefix wanted then
          match Update.aggregator r.Dump.update with
          | Some { sent_at; valid = true; _ } ->
              let delta = r.Dump.export_at -. sent_at in
              (* Propagation measurement, not damping: skip held-back
                 re-advertisements. *)
              if delta >= 0.0 && delta < 300.0 then Some delta else None
          | Some _ | None -> None
        else None)
      outcome.records
  in
  Array.of_list samples
