(** Computations behind the paper's evaluation figures and tables.

    Each function digests campaign outcomes into exactly the series/rows the
    corresponding figure or table plots; the bench harness does the
    printing. *)

open Because_bgp

val links_of_path : Asn.t list -> (Asn.t * Asn.t) list
(** Unordered adjacent-AS pairs along a path ([fst < snd]). *)

type link_coverage = {
  site_id : int;
  links_seen : int;
  share_of_all : float;  (** Fraction of all observed links this site sees (Fig. 6). *)
}

val site_link_coverage : Campaign.outcome -> link_coverage list * int
(** Per-site coverage and the total number of distinct observed links. *)

val paths_per_link_median :
  Campaign.outcome -> all_sites:bool -> float
(** Median number of observed paths crossing a link, using all sites or only
    the busiest single site (the paper: 11 vs 3). *)

type overlap = {
  per_project : (Because_collector.Project.t * int) list;
  pairwise : ((Because_collector.Project.t * Because_collector.Project.t) * int) list;
  all_three : int;
  total : int;
}

val project_overlap : Campaign.outcome -> overlap
(** Distinct AS links observed per collector project and their intersections
    (Fig. 7). *)

type archetype = {
  label : string;  (** Which Fig. 9 panel this AS illustrates. *)
  marginal : Because.Posterior.marginal;
  category : Because.Categorize.t;
}

val archetypes : World.t -> Campaign.outcome -> archetype list
(** The four diagnostic marginals of Fig. 9: strong damper, strong
    non-damper, inconsistent damper, prior recovered. *)

type scatter_point = {
  asn : Asn.t;
  mean : float;
  certainty : float;
  category : Because.Categorize.t;
}

val scatter : Campaign.outcome -> scatter_point list
(** The Fig. 11 scatter: per measured AS, posterior mean vs certainty with
    its assigned category. *)

type interval_share = {
  interval : float;
  consistent : int;      (** Step-1 flagged ASs (Fig. 12 orange). *)
  with_promotions : int; (** After pinpointing (Fig. 12 blue). *)
  measured : int;        (** ASs measured in all campaigns. *)
}

val interval_shares : Campaign.outcome list -> interval_share list
(** Fig. 12: damping shares per update interval over the ASs measured in
    every campaign. *)

val damped_path_r_deltas : Campaign.outcome -> float array
(** Mean r-delta of each damped path (Fig. 13's CDF input). *)

val plateau_mass : float array -> minutes:float -> tolerance:float -> float
(** Fraction of r-deltas within [tolerance] minutes of a plateau value. *)

(** Ground-truth comparison (Table 3 / Table 4). *)

type verdict_pair = {
  subject : Asn.t;
  truth : bool;
  because_says : bool;
  heuristics_say : bool;
  reason : string;  (** Divergence classification in the paper's terms. *)
}

type ground_truth_report = {
  cases : verdict_pair list;
  because_metrics : Because.Evaluate.metrics;
  heuristic_metrics : Because.Evaluate.metrics;
}

val against_ground_truth :
  ?feedback_size:int ->
  rng:Because_stats.Rng.t ->
  World.t ->
  Campaign.outcome ->
  ground_truth_report
(** Evaluate both pinpointing methods against the planted deployment on an
    operator-feedback-style subset: every visible damper plus a sample of
    clean ASs ([feedback_size] total, default 75 as in the paper). *)

val beacon_update_share : Campaign.outcome -> float
(** Fraction of dump records caused by Beacon prefixes (Appendix A). *)

val rov_benchmark :
  rng:Because_stats.Rng.t ->
  ?config:Because.Infer.config ->
  Campaign.outcome ->
  Because_rov.Rov.benchmark
(** §7: build the ROV dataset from the campaign's observed paths — planting
    ROV at well-connected transit ASs until ≈90 % of paths are positive —
    and benchmark BeCAUSe on it. *)
