(** Campaign-level durable recovery.

    One {!Because_recover.Checkpoint} store shared by everything a campaign
    run produces incrementally: finished simulation shards, in-flight MCMC
    chain states, a phase-progress note and the final telemetry snapshot.
    The store is bound to a fingerprint of the campaign's full stimulus, so
    snapshots can only resume the exact campaign that wrote them —
    mismatches quarantine the old snapshots and start fresh.

    Construction is cheap and pure; nothing touches the filesystem until
    {!attach} is called (which {!Campaign.run} does once the stimulus is
    built and fingerprinted). *)

exception Killed
(** Raised by a configured [kill_after_saves] test hook {e before} the
    write that would have exceeded the budget — simulating a hard crash at
    an arbitrary checkpoint boundary.  Never raised in production use. *)

type t

val create :
  dir:string ->
  ?resume:bool ->
  ?every_sweeps:int ->
  ?every_seconds:float ->
  ?kill_after_saves:int ->
  ?kill_switch:(unit -> bool) ->
  unit ->
  t
(** [resume] (default [false]): a fresh run clears previous snapshots on
    {!attach} (quarantined [*.corrupt-N] files are kept); a resuming run
    reads them.  [every_sweeps] / [every_seconds] set the chain snapshot
    cadence ([every_seconds] defaults to
    {!Because_recover.Chain_ckpt.default_every_seconds}).
    [kill_after_saves] arms the {!Killed} test hook on this store's own
    save counter; [kill_switch] is its service-wide sibling — consulted
    before every save, it lets one shared counter kill every campaign of a
    multi-campaign service at an arbitrary point (the whole-service crash
    harness). *)

val attach : t -> fingerprint:string -> unit
(** Open (creating if needed) the store under [dir], pinned to
    [fingerprint].  Wipes prior snapshots first unless resuming. *)

val dir : t -> string
val resuming : t -> bool

val warnings : t -> string list
(** Store-level recovery notes (corruption, quarantine, fallback) followed
    by decode-level notes (snapshot re-simulated / chain restarted),
    oldest first.  These never enter the campaign outcome — a resumed run
    must equal a clean one — and are surfaced on stderr by the CLI. *)

val saves : t -> int
val restores : t -> int
val fallbacks : t -> int

val sim_hooks : t -> Because_sim.Sharded.checkpoint_hooks
(** Shard save/load keyed [sim.shard<i>of<n>]; a snapshot that passes the
    CRC but fails to decode re-simulates with a warning, never raises. *)

val chain_hooks : t -> namespace:string -> Because_recover.Chain_ckpt.hooks
(** Chain snapshot hooks with keys prefixed by [namespace] (one namespace
    per Beacon interval), on this store's cadence. *)

val note_phase : t -> string -> unit
(** Record an informational phase-progress note (replaces the previous
    one).  Purely diagnostic — resume decisions never read it. *)

val phase : t -> string option

val save_telemetry : t -> Because_telemetry.Snapshot.t -> unit
(** Persist the final telemetry snapshot as JSON under [telemetry.json]. *)

(** {2 Codec internals, exposed for round-trip tests} *)

val encode_shard_result : Because_sim.Sharded.shard_result -> string

val decode_shard_result : string -> Because_sim.Sharded.shard_result
(** Raises {!Because_recover.Codec.Malformed} on bad input. *)
