(** Install a {!Plan} into a running simulation and collect what happened.

    Network-level specs (session resets, link flaps, impairments) are
    recorded into the {!Because_sim.Script}; collection-layer specs
    (site and collector outages) are no-ops here — the campaign applies them
    when installing Beacon sites and exporting dumps — but they still appear
    in {!log} so the outcome records every injected fault. *)

open Because_bgp

val install : Plan.t -> Because_sim.Script.t -> unit
(** Record every network-level spec of the plan into the simulation script.
    Call once, before the script is replayed.  Replaying a plan with a
    positive loss/duplication rate requires the target network to carry a
    fault rng. *)

(** One realized fault event, merging the network's {!type:Because_sim.Network.fault_event}
    log with the collection-layer windows of the plan. *)
type injected =
  | Link_down of { a : Asn.t; b : Asn.t }
  | Link_up of { a : Asn.t; b : Asn.t }
  | Session_reset of { a : Asn.t; b : Asn.t }
  | Session_down of { owner : Asn.t; peer : Asn.t; reason : string }
  | Session_up of { owner : Asn.t; peer : Asn.t }
  | Update_lost of { from_asn : Asn.t; to_asn : Asn.t }
  | Update_duplicated of { from_asn : Asn.t; to_asn : Asn.t }
  | Site_down of { site_id : int }
  | Site_restored of { site_id : int }
  | Collector_down of { vp_id : int }
  | Collector_restored of { vp_id : int }

val log :
  plan:Plan.t -> Because_sim.Network.t -> (float * injected) list
(** Chronological record of every fault that was injected: the network's
    fault log plus the plan's site/collector outage windows. *)

val log_of :
  plan:Plan.t ->
  (float * Because_sim.Network.fault_event) list ->
  (float * injected) list
(** As {!log}, from an already-extracted (possibly shard-merged) network
    fault log. *)

val flush_telemetry :
  Because_telemetry.Registry.t ->
  plan:Plan.t ->
  log:(float * injected) list ->
  unit
(** Record [faults.planned.*] (per spec kind) and [faults.realized.*] (per
    realized event kind) counters.  A no-op on a disabled registry. *)

val pp_injected : Format.formatter -> injected -> unit
