open Because_bgp
module Rng = Because_stats.Rng

type spec =
  | Session_reset of { a : Asn.t; b : Asn.t; at : float }
  | Link_flap of { a : Asn.t; b : Asn.t; down_at : float; duration : float }
  | Site_outage of { site_id : int; from_ : float; duration : float }
  | Collector_outage of { vp_id : int; from_ : float; duration : float }
  | Session_impairment of {
      a : Asn.t;
      b : Asn.t;
      loss : float;
      duplication : float;
    }

type t = { specs : spec list }

let empty = { specs = [] }
let is_empty t = t.specs = []
let of_specs specs = { specs }
let specs t = t.specs
let size t = List.length t.specs

type severity = {
  session_reset_share : float;
  link_flap_share : float;
  flap_duration : float;
  site_outage_prob : float;
  site_outage_duration : float;
  collector_outage_share : float;
  collector_outage_duration : float;
  impaired_link_share : float;
  loss_rate : float;
  duplication_rate : float;
}

let calm =
  {
    session_reset_share = 0.0;
    link_flap_share = 0.0;
    flap_duration = 0.0;
    site_outage_prob = 0.0;
    site_outage_duration = 0.0;
    collector_outage_share = 0.0;
    collector_outage_duration = 0.0;
    impaired_link_share = 0.0;
    loss_rate = 0.0;
    duplication_rate = 0.0;
  }

let mild =
  {
    session_reset_share = 0.01;
    link_flap_share = 0.005;
    flap_duration = 900.0;
    site_outage_prob = 0.0;
    site_outage_duration = 0.0;
    collector_outage_share = 0.05;
    collector_outage_duration = 900.0;
    impaired_link_share = 0.005;
    loss_rate = 0.01;
    duplication_rate = 0.01;
  }

let realistic =
  {
    session_reset_share = 0.03;
    link_flap_share = 0.015;
    flap_duration = 1800.0;
    site_outage_prob = 0.1;
    site_outage_duration = 3600.0;
    collector_outage_share = 0.1;
    collector_outage_duration = 1800.0;
    impaired_link_share = 0.01;
    loss_rate = 0.02;
    duplication_rate = 0.02;
  }

let severe =
  {
    session_reset_share = 0.1;
    link_flap_share = 0.05;
    flap_duration = 3600.0;
    site_outage_prob = 0.3;
    site_outage_duration = 7200.0;
    collector_outage_share = 0.25;
    collector_outage_duration = 3600.0;
    impaired_link_share = 0.05;
    loss_rate = 0.05;
    duplication_rate = 0.05;
  }

let severity_of_string = function
  | "none" | "calm" -> Ok calm
  | "mild" -> Ok mild
  | "realistic" -> Ok realistic
  | "severe" -> Ok severe
  | other ->
      Error
        (Printf.sprintf
           "unknown fault severity %S (expected none, mild, realistic or \
            severe)"
           other)

let severity_names = [ "none"; "mild"; "realistic"; "severe" ]

let draw rng severity ~links ~site_ids ~vp_ids ~horizon =
  if horizon <= 0.0 then invalid_arg "Plan.draw: horizon must be positive";
  let when_ () = Rng.range_float rng 0.0 horizon in
  let specs = ref [] in
  let add s = specs := s :: !specs in
  List.iter
    (fun (a, b) ->
      if Rng.float rng < severity.session_reset_share then
        add (Session_reset { a; b; at = when_ () });
      if Rng.float rng < severity.link_flap_share then
        add
          (Link_flap
             { a; b; down_at = when_ (); duration = severity.flap_duration });
      if Rng.float rng < severity.impaired_link_share then
        add
          (Session_impairment
             {
               a;
               b;
               loss = severity.loss_rate;
               duplication = severity.duplication_rate;
             }))
    links;
  List.iter
    (fun site_id ->
      if Rng.float rng < severity.site_outage_prob then
        add
          (Site_outage
             { site_id; from_ = when_ ();
               duration = severity.site_outage_duration }))
    site_ids;
  List.iter
    (fun vp_id ->
      if Rng.float rng < severity.collector_outage_share then
        add
          (Collector_outage
             { vp_id; from_ = when_ ();
               duration = severity.collector_outage_duration }))
    vp_ids;
  { specs = List.rev !specs }

let site_outages t ~site_id =
  List.filter_map
    (function
      | Site_outage o when o.site_id = site_id ->
          Some (o.from_, o.from_ +. o.duration)
      | _ -> None)
    t.specs
  |> List.sort compare

let collector_outages t ~vp_id =
  List.filter_map
    (function
      | Collector_outage o when o.vp_id = vp_id ->
          Some (o.from_, o.from_ +. o.duration)
      | _ -> None)
    t.specs
  |> List.sort compare

let count kind t =
  List.length
    (List.filter
       (fun spec ->
         match (kind, spec) with
         | `Session_reset, Session_reset _
         | `Link_flap, Link_flap _
         | `Site_outage, Site_outage _
         | `Collector_outage, Collector_outage _
         | `Session_impairment, Session_impairment _ -> true
         | _ -> false)
       t.specs)

let pp_spec fmt = function
  | Session_reset { a; b; at } ->
      Format.fprintf fmt "session-reset %a--%a @@ %.0fs" Asn.pp a Asn.pp b at
  | Link_flap { a; b; down_at; duration } ->
      Format.fprintf fmt "link-flap %a--%a @@ %.0fs for %.0fs" Asn.pp a Asn.pp
        b down_at duration
  | Site_outage { site_id; from_; duration } ->
      Format.fprintf fmt "site-outage site%d @@ %.0fs for %.0fs" site_id from_
        duration
  | Collector_outage { vp_id; from_; duration } ->
      Format.fprintf fmt "collector-outage vp%d @@ %.0fs for %.0fs" vp_id
        from_ duration
  | Session_impairment { a; b; loss; duplication } ->
      Format.fprintf fmt "impairment %a--%a loss=%.3f dup=%.3f" Asn.pp a
        Asn.pp b loss duplication

let pp fmt t =
  if is_empty t then Format.fprintf fmt "(no faults)"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
      pp_spec fmt t.specs
