(** Declarative, seeded fault plans.

    A plan is a list of concrete faults with absolute times, drawn once from
    a {!severity} preset and a seeded RNG ({!draw}) — so the same world seed
    and severity reproduce the same faults — or assembled by hand with
    {!of_specs}.  The empty plan injects nothing and leaves a campaign
    bit-for-bit identical to a fault-free run. *)

open Because_bgp

type spec =
  | Session_reset of { a : Asn.t; b : Asn.t; at : float }
      (** Reset the BGP session on link [a]–[b] at [at]; it re-establishes
          through the full FSM handshake. *)
  | Link_flap of { a : Asn.t; b : Asn.t; down_at : float; duration : float }
      (** Physical link outage: down at [down_at], restored [duration]
          seconds later. *)
  | Site_outage of { site_id : int; from_ : float; duration : float }
      (** A Beacon site fails: scheduled Beacon updates in the window are
          skipped (Burst phases are lost) and its prefixes are withdrawn. *)
  | Collector_outage of { vp_id : int; from_ : float; duration : float }
      (** A vantage-point collector session drops: records in the window
          are missing from the dump, truncating the feed mid-campaign. *)
  | Session_impairment of {
      a : Asn.t;
      b : Asn.t;
      loss : float;
      duplication : float;
    }  (** Lossy/duplicating session for the whole campaign. *)

type t

val empty : t
val is_empty : t -> bool
val of_specs : spec list -> t
val specs : t -> spec list
val size : t -> int

(** Fault intensity: each field is a per-entity probability or duration used
    by {!draw}. *)
type severity = {
  session_reset_share : float;      (** Share of links suffering one reset. *)
  link_flap_share : float;          (** Share of links with one down-window. *)
  flap_duration : float;
  site_outage_prob : float;         (** Per Beacon site. *)
  site_outage_duration : float;
  collector_outage_share : float;   (** Share of vantage points truncated. *)
  collector_outage_duration : float;
  impaired_link_share : float;      (** Share of links losing/duplicating. *)
  loss_rate : float;
  duplication_rate : float;
}

val calm : severity
(** All rates zero: {!draw} yields {!empty}. *)

val mild : severity
val realistic : severity
(** Roughly the paper's operational reality: a few percent of links reset or
    flap, 10 % of vantage points suffer a 30-minute outage, occasional site
    failures. *)

val severe : severity

val severity_of_string : string -> (severity, string) result
val severity_names : string list

val draw :
  Because_stats.Rng.t ->
  severity ->
  links:(Asn.t * Asn.t) list ->
  site_ids:int list ->
  vp_ids:int list ->
  horizon:float ->
  t
(** Draw a concrete plan: each link/site/vantage point independently suffers
    each fault kind with the severity's probability, at a uniform time in
    [\[0, horizon)]. *)

val site_outages : t -> site_id:int -> (float * float) list
(** [(from, until)] outage windows of one Beacon site, sorted. *)

val collector_outages : t -> vp_id:int -> (float * float) list

val count :
  [ `Session_reset | `Link_flap | `Site_outage | `Collector_outage
  | `Session_impairment ] ->
  t ->
  int

val pp_spec : Format.formatter -> spec -> unit
val pp : Format.formatter -> t -> unit
