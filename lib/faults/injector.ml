open Because_bgp
module Network = Because_sim.Network
module Script = Because_sim.Script

let install plan script =
  List.iter
    (fun spec ->
      match spec with
      | Plan.Session_reset { a; b; at } ->
          Script.session_reset script ~time:at ~a ~b
      | Plan.Link_flap { a; b; down_at; duration } ->
          Script.link_down script ~time:down_at ~a ~b;
          Script.link_up script ~time:(down_at +. duration) ~a ~b
      | Plan.Session_impairment { a; b; loss; duplication } ->
          Script.impair script ~a ~b ~loss ~duplication
      | Plan.Site_outage _ | Plan.Collector_outage _ ->
          (* Collection-layer faults: applied by the campaign when
             installing sites and exporting dumps. *)
          ())
    (Plan.specs plan)

type injected =
  | Link_down of { a : Asn.t; b : Asn.t }
  | Link_up of { a : Asn.t; b : Asn.t }
  | Session_reset of { a : Asn.t; b : Asn.t }
  | Session_down of { owner : Asn.t; peer : Asn.t; reason : string }
  | Session_up of { owner : Asn.t; peer : Asn.t }
  | Update_lost of { from_asn : Asn.t; to_asn : Asn.t }
  | Update_duplicated of { from_asn : Asn.t; to_asn : Asn.t }
  | Site_down of { site_id : int }
  | Site_restored of { site_id : int }
  | Collector_down of { vp_id : int }
  | Collector_restored of { vp_id : int }

let of_network_event : Network.fault_event -> injected = function
  | Network.Fault_link_down { a; b } -> Link_down { a; b }
  | Network.Fault_link_up { a; b } -> Link_up { a; b }
  | Network.Fault_session_reset { a; b } -> Session_reset { a; b }
  | Network.Fault_session_down { owner; peer; reason } ->
      Session_down { owner; peer; reason }
  | Network.Fault_session_up { owner; peer } -> Session_up { owner; peer }
  | Network.Fault_update_lost { from_asn; to_asn } ->
      Update_lost { from_asn; to_asn }
  | Network.Fault_update_duplicated { from_asn; to_asn } ->
      Update_duplicated { from_asn; to_asn }

(* Collection-layer fault events the network cannot see. *)
let plan_events plan =
  List.concat_map
    (fun spec ->
      match spec with
      | Plan.Site_outage { site_id; from_; duration } ->
          [ (from_, Site_down { site_id });
            (from_ +. duration, Site_restored { site_id }) ]
      | Plan.Collector_outage { vp_id; from_; duration } ->
          [ (from_, Collector_down { vp_id });
            (from_ +. duration, Collector_restored { vp_id }) ]
      | Plan.Session_reset _ | Plan.Link_flap _ | Plan.Session_impairment _ ->
          [])
    (Plan.specs plan)

let log_of ~plan events =
  let network_events =
    List.map (fun (time, ev) -> (time, of_network_event ev)) events
  in
  List.stable_sort
    (fun (ta, _) (tb, _) -> Float.compare ta tb)
    (network_events @ plan_events plan)

let log ~plan net = log_of ~plan (Network.fault_log net)

(* Flush the planned and realized fault counts into a telemetry registry.
   Called once per campaign, after the simulation: the planned side comes
   from the plan, the realized side from the merged fault log. *)
let flush_telemetry reg ~plan ~log =
  let module Tel = Because_telemetry.Registry in
  if Tel.is_enabled reg then begin
    let c name n = Tel.Counter.add (Tel.Counter.v reg name) n in
    c "faults.planned.session_resets" (Plan.count `Session_reset plan);
    c "faults.planned.link_flaps" (Plan.count `Link_flap plan);
    c "faults.planned.site_outages" (Plan.count `Site_outage plan);
    c "faults.planned.collector_outages" (Plan.count `Collector_outage plan);
    c "faults.planned.impairments" (Plan.count `Session_impairment plan);
    let realized name p =
      c name (List.length (List.filter (fun (_, ev) -> p ev) log))
    in
    realized "faults.realized.session_resets" (function
      | Session_reset _ -> true
      | _ -> false);
    realized "faults.realized.link_transitions" (function
      | Link_down _ | Link_up _ -> true
      | _ -> false);
    realized "faults.realized.session_transitions" (function
      | Session_down _ | Session_up _ -> true
      | _ -> false);
    realized "faults.realized.updates_lost" (function
      | Update_lost _ -> true
      | _ -> false);
    realized "faults.realized.updates_duplicated" (function
      | Update_duplicated _ -> true
      | _ -> false);
    realized "faults.realized.outage_transitions" (function
      | Site_down _ | Site_restored _ | Collector_down _
      | Collector_restored _ -> true
      | _ -> false)
  end

let pp_injected fmt = function
  | Link_down { a; b } ->
      Format.fprintf fmt "link down %a--%a" Asn.pp a Asn.pp b
  | Link_up { a; b } -> Format.fprintf fmt "link up %a--%a" Asn.pp a Asn.pp b
  | Session_reset { a; b } ->
      Format.fprintf fmt "session reset %a--%a" Asn.pp a Asn.pp b
  | Session_down { owner; peer; reason } ->
      Format.fprintf fmt "session down %a->%a (%s)" Asn.pp owner Asn.pp peer
        reason
  | Session_up { owner; peer } ->
      Format.fprintf fmt "session up %a->%a" Asn.pp owner Asn.pp peer
  | Update_lost { from_asn; to_asn } ->
      Format.fprintf fmt "update lost %a->%a" Asn.pp from_asn Asn.pp to_asn
  | Update_duplicated { from_asn; to_asn } ->
      Format.fprintf fmt "update duplicated %a->%a" Asn.pp from_asn Asn.pp
        to_asn
  | Site_down { site_id } -> Format.fprintf fmt "site %d down" site_id
  | Site_restored { site_id } -> Format.fprintf fmt "site %d restored" site_id
  | Collector_down { vp_id } -> Format.fprintf fmt "collector vp%d down" vp_id
  | Collector_restored { vp_id } ->
      Format.fprintf fmt "collector vp%d restored" vp_id
