open Because_bgp

let label_paths ~paths ~rov_ases =
  List.map
    (fun path ->
      (path, List.exists (fun asn -> Asn.Set.mem asn rov_ases) path))
    paths

let hidden_ases ~paths ~rov_ases =
  (* An ROV AS is observable iff some path contains it and no other ROV AS. *)
  let observable =
    List.fold_left
      (fun acc path ->
        let rov_on_path =
          List.filter (fun asn -> Asn.Set.mem asn rov_ases) path
        in
        match rov_on_path with
        | [ only ] -> Asn.Set.add only acc
        | _ -> acc)
      Asn.Set.empty paths
  in
  let seen =
    List.fold_left
      (fun acc path ->
        List.fold_left
          (fun acc asn ->
            if Asn.Set.mem asn rov_ases then Asn.Set.add asn acc else acc)
          acc path)
      Asn.Set.empty paths
  in
  Asn.Set.diff seen observable

type benchmark = {
  result : Because.Infer.result;
  categories : (Asn.t * Because.Categorize.t) list;
  metrics : Because.Evaluate.metrics;
  hidden : Asn.Set.t;
  positive_share : float;
}

let benchmark ~rng ?config ~paths ~rov_ases () =
  let observations = label_paths ~paths ~rov_ases in
  let data = Because.Tomography.of_observations observations in
  let result = Because.Infer.run ~rng ?config data in
  let categories = Because.Pinpoint.assign_with_pinpointing result in
  let universe =
    Array.fold_left
      (fun acc asn -> Asn.Set.add asn acc)
      Asn.Set.empty (Because.Tomography.nodes data)
  in
  let metrics =
    Because.Evaluate.of_sets
      ~predicted:(Because.Evaluate.damping_set categories)
      ~truth:rov_ases ~universe
  in
  {
    result;
    categories;
    metrics;
    hidden = hidden_ases ~paths ~rov_ases;
    positive_share = Because.Tomography.positive_share data;
  }
