(** §7 — applying BeCAUSe beyond RFD: Route Origin Validation.

    The paper benchmarks the unchanged algorithm on a second property by
    {e simulating} the measurement output: real AS paths towards two RPKI
    Beacon prefixes are labeled ROV iff a known-ROV AS sits on the path
    (no noise, ≈90 % positive paths).  This module performs the identical
    construction over the caller's path set and evaluates the result. *)

open Because_bgp

val label_paths :
  paths:Asn.t list list -> rov_ases:Asn.Set.t -> (Asn.t list * bool) list
(** A path is ROV iff at least one known-ROV AS is on it. *)

val hidden_ases : paths:Asn.t list list -> rov_ases:Asn.Set.t -> Asn.Set.t
(** ROV ASs that only ever appear on paths together with another ROV AS
    closer to the vantage point or anywhere on the path — indistinguishable
    by any tomographic method, the cause of the recall gap in Table 4. *)

type benchmark = {
  result : Because.Infer.result;
  categories : (Asn.t * Because.Categorize.t) list;
  metrics : Because.Evaluate.metrics;
  hidden : Asn.Set.t;
  positive_share : float;
}

val benchmark :
  rng:Because_stats.Rng.t ->
  ?config:Because.Infer.config ->
  paths:Asn.t list list ->
  rov_ases:Asn.Set.t ->
  unit ->
  benchmark
(** Label, infer, categorise (with pinpointing) and score against the planted
    ROV set over all ASs appearing on the paths. *)
