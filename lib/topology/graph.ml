open Because_bgp

type tier = Tier1 | Transit | Stub

type t = {
  mutable order : Asn.t list;  (* reversed registration order *)
  tiers : (Asn.t, tier) Hashtbl.t;
  adj : (Asn.t, (Asn.t * Policy.relationship) list ref) Hashtbl.t;
  mutable n_links : int;
}

let create () =
  { order = []; tiers = Hashtbl.create 64; adj = Hashtbl.create 64;
    n_links = 0 }

let add_as t asn tier =
  if Hashtbl.mem t.tiers asn then
    invalid_arg ("Graph.add_as: duplicate " ^ Asn.to_string asn);
  Hashtbl.replace t.tiers asn tier;
  Hashtbl.replace t.adj asn (ref []);
  t.order <- asn :: t.order

let adj_exn t asn =
  match Hashtbl.find_opt t.adj asn with
  | Some l -> l
  | None -> invalid_arg ("Graph: unknown AS " ^ Asn.to_string asn)

let has_link t a b =
  List.exists (fun (n, _) -> Asn.equal n b) !(adj_exn t a)

let add_edge t a b rel_of_b_for_a =
  if Asn.equal a b then invalid_arg "Graph: self link";
  if has_link t a b then invalid_arg "Graph: duplicate link";
  let la = adj_exn t a and lb = adj_exn t b in
  la := (b, rel_of_b_for_a) :: !la;
  lb := (a, Policy.flip rel_of_b_for_a) :: !lb;
  t.n_links <- t.n_links + 1

let add_customer_link t ~provider ~customer =
  (* From the provider's viewpoint the neighbor is a customer. *)
  add_edge t provider customer Policy.Customer

let add_peer_link t a b = add_edge t a b Policy.Peer

let ases t = List.rev t.order
let size t = Hashtbl.length t.tiers
let link_count t = t.n_links

let tier_of t asn =
  match Hashtbl.find_opt t.tiers asn with
  | Some tier -> tier
  | None -> invalid_arg ("Graph.tier_of: unknown AS " ^ Asn.to_string asn)

let neighbors t asn = !(adj_exn t asn)

let links t =
  Hashtbl.fold
    (fun a l acc ->
      List.fold_left
        (fun acc (b, _) ->
          if Asn.compare a b < 0 then (a, b) :: acc else acc)
        acc !l)
    t.adj []

let degree t asn = List.length (neighbors t asn)

let customer_cone_size t asn =
  let seen = Hashtbl.create 16 in
  let rec descend a =
    List.iter
      (fun (n, rel) ->
        match rel with
        | Policy.Customer ->
            if not (Hashtbl.mem seen n) then begin
              Hashtbl.replace seen n ();
              descend n
            end
        | Policy.Peer | Policy.Provider -> ())
      (neighbors t a)
  in
  descend asn;
  Hashtbl.length seen

let pp_tier fmt = function
  | Tier1 -> Format.pp_print_string fmt "tier1"
  | Transit -> Format.pp_print_string fmt "transit"
  | Stub -> Format.pp_print_string fmt "stub"
