open Because_bgp

type tier = Tier1 | Transit | Stub

(* Compact interned adjacency.  ASNs are interned to dense ids at
   registration; tiers and adjacency live in flat arrays indexed by id, and
   each adjacency entry packs (neighbor id, relationship) into one
   immediate int — [(id lsl 2) lor rel].  At 10k+ ASs this replaces a
   Hashtbl of boxed (Asn.t * relationship) list refs with a handful of flat
   arrays: one hash lookup per public call, then pure array walks. *)

module Itbl = Hashtbl.Make (struct
  type t = Asn.t

  let equal = Asn.equal
  let hash a = Asn.to_int a * 0x9E3779B1 land max_int
end)

let rel_code = function
  | Policy.Customer -> 0
  | Policy.Peer -> 1
  | Policy.Provider -> 2

let code_rel = function
  | 0 -> Policy.Customer
  | 1 -> Policy.Peer
  | _ -> Policy.Provider

type t = {
  ids : int Itbl.t;              (* ASN -> dense id *)
  mutable asns : Asn.t array;    (* id -> ASN, registration order *)
  mutable tiers : tier array;    (* id -> tier *)
  mutable n : int;               (* registered ASs *)
  mutable adj : int array array; (* id -> packed entries, append order *)
  mutable adj_len : int array;   (* id -> used entries of adj.(id) *)
  mutable n_links : int;
}

let create () =
  {
    ids = Itbl.create 128;
    asns = Array.make 64 (Asn.of_int 0);
    tiers = Array.make 64 Stub;
    n = 0;
    adj = Array.make 64 [||];
    adj_len = Array.make 64 0;
    n_links = 0;
  }

let grow_nodes t =
  let cap = Array.length t.asns in
  if t.n = cap then begin
    let cap' = 2 * cap in
    let asns' = Array.make cap' (Asn.of_int 0) in
    Array.blit t.asns 0 asns' 0 cap;
    t.asns <- asns';
    let tiers' = Array.make cap' Stub in
    Array.blit t.tiers 0 tiers' 0 cap;
    t.tiers <- tiers';
    let adj' = Array.make cap' [||] in
    Array.blit t.adj 0 adj' 0 cap;
    t.adj <- adj';
    let len' = Array.make cap' 0 in
    Array.blit t.adj_len 0 len' 0 cap;
    t.adj_len <- len'
  end

let add_as t asn tier =
  if Itbl.mem t.ids asn then
    invalid_arg ("Graph.add_as: duplicate " ^ Asn.to_string asn);
  grow_nodes t;
  Itbl.replace t.ids asn t.n;
  t.asns.(t.n) <- asn;
  t.tiers.(t.n) <- tier;
  t.adj.(t.n) <- [||];
  t.adj_len.(t.n) <- 0;
  t.n <- t.n + 1

let id_exn t asn =
  match Itbl.find_opt t.ids asn with
  | Some i -> i
  | None -> invalid_arg ("Graph: unknown AS " ^ Asn.to_string asn)

let mem_entry t i j =
  let a = t.adj.(i) and len = t.adj_len.(i) in
  let rec scan k = k < len && (a.(k) lsr 2 = j || scan (k + 1)) in
  scan 0

let append_entry t i packed =
  let a = t.adj.(i) and len = t.adj_len.(i) in
  let a =
    if len = Array.length a then begin
      let a' = Array.make (max 4 (2 * len)) 0 in
      Array.blit a 0 a' 0 len;
      t.adj.(i) <- a';
      a'
    end
    else a
  in
  a.(len) <- packed;
  t.adj_len.(i) <- len + 1

let has_link t a b = mem_entry t (id_exn t a) (id_exn t b)

let add_edge t a b rel_of_b_for_a =
  if Asn.equal a b then invalid_arg "Graph: self link";
  let ia = id_exn t a and ib = id_exn t b in
  if mem_entry t ia ib then invalid_arg "Graph: duplicate link";
  append_entry t ia ((ib lsl 2) lor rel_code rel_of_b_for_a);
  append_entry t ib ((ia lsl 2) lor rel_code (Policy.flip rel_of_b_for_a));
  t.n_links <- t.n_links + 1

let add_customer_link t ~provider ~customer =
  (* From the provider's viewpoint the neighbor is a customer. *)
  add_edge t provider customer Policy.Customer

let add_peer_link t a b = add_edge t a b Policy.Peer

let ases t = Array.to_list (Array.sub t.asns 0 t.n)
let size t = t.n
let link_count t = t.n_links

let tier_of t asn = t.tiers.(id_exn t asn)

(* Newest link first, exactly the historical cons order: router configs —
   and through them the whole event stream — depend on it. *)
let neighbors t asn =
  let i = id_exn t asn in
  let a = t.adj.(i) and len = t.adj_len.(i) in
  let acc = ref [] in
  for k = 0 to len - 1 do
    let e = a.(k) in
    acc := (t.asns.(e lsr 2), code_rel (e land 3)) :: !acc
  done;
  !acc

let links t =
  let acc = ref [] in
  for i = 0 to t.n - 1 do
    let a = t.adj.(i) and len = t.adj_len.(i) in
    let asn_i = t.asns.(i) in
    for k = 0 to len - 1 do
      let j = a.(k) lsr 2 in
      let asn_j = t.asns.(j) in
      if Asn.compare asn_i asn_j < 0 then acc := (asn_i, asn_j) :: !acc
    done
  done;
  !acc

let degree t asn = t.adj_len.(id_exn t asn)

let customer_cone_size t asn =
  let seen = Bytes.make t.n '\000' in
  let count = ref 0 in
  let stack = ref [ id_exn t asn ] in
  let visit j =
    if Bytes.get seen j = '\000' then begin
      Bytes.set seen j '\001';
      incr count;
      stack := j :: !stack
    end
  in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        let a = t.adj.(i) and len = t.adj_len.(i) in
        for k = 0 to len - 1 do
          let e = a.(k) in
          if e land 3 = 0 (* Customer *) then visit (e lsr 2)
        done
  done;
  !count

let pp_tier fmt = function
  | Tier1 -> Format.pp_print_string fmt "tier1"
  | Transit -> Format.pp_print_string fmt "transit"
  | Stub -> Format.pp_print_string fmt "stub"
