(** AS-level topology with business relationships.

    An undirected multigraph-free graph whose edges carry Gao–Rexford
    relationships.  The adjacency view is directional: [neighbors g a] lists
    each neighbor together with {e the neighbor's role relative to [a]}, which
    is exactly the orientation {!Because_bgp.Router.neighbor} expects. *)

open Because_bgp

type tier = Tier1 | Transit | Stub

type t

val create : unit -> t

val add_as : t -> Asn.t -> tier -> unit
(** Register an AS.  Raises [Invalid_argument] on duplicates. *)

val add_customer_link : t -> provider:Asn.t -> customer:Asn.t -> unit
(** Add a provider–customer edge.  Both endpoints must exist; re-adding or
    linking an AS to itself raises [Invalid_argument]. *)

val add_peer_link : t -> Asn.t -> Asn.t -> unit

val has_link : t -> Asn.t -> Asn.t -> bool

val ases : t -> Asn.t list
(** All registered ASs, in registration order. *)

val size : t -> int
val link_count : t -> int

val tier_of : t -> Asn.t -> tier

val neighbors : t -> Asn.t -> (Asn.t * Policy.relationship) list
(** [(neighbor, role-of-neighbor-relative-to-the-queried-AS)] pairs. *)

val links : t -> (Asn.t * Asn.t) list
(** Undirected edge list with [fst < snd] by ASN. *)

val customer_cone_size : t -> Asn.t -> int
(** Number of ASs reachable by repeatedly descending provider→customer
    edges (excluding the AS itself). *)

val degree : t -> Asn.t -> int

val pp_tier : Format.formatter -> tier -> unit
