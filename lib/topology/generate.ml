open Because_bgp
module Rng = Because_stats.Rng

type params = {
  n_tier1 : int;
  n_transit : int;
  n_stub : int;
  transit_max_providers : int;
  stub_max_providers : int;
  transit_peer_degree : float;
}

let default_params =
  {
    n_tier1 = 8;
    n_transit = 80;
    n_stub = 360;
    transit_max_providers = 3;
    stub_max_providers = 3;
    transit_peer_degree = 1.5;
  }

let by_tier g tier =
  List.filter (fun a -> Graph.tier_of g a = tier) (Graph.ases g)

let tier1_asns g = by_tier g Graph.Tier1
let transit_asns g = by_tier g Graph.Transit
let stub_asns g = by_tier g Graph.Stub

(* Preferential attachment: weight each candidate provider by current degree
   plus a smoothing constant, so early transits accrete large cones. *)
let pick_provider rng g candidates exclude =
  let eligible =
    List.filter (fun a -> not (List.exists (Asn.equal a) exclude)) candidates
  in
  match eligible with
  | [] -> None
  | _ ->
      let arr = Array.of_list eligible in
      let weights =
        Array.map (fun a -> float_of_int (Graph.degree g a) +. 1.0) arr
      in
      Some arr.(Because_stats.Dist.categorical rng weights)

let generate rng params =
  if params.n_tier1 < 2 then invalid_arg "Generate: need at least 2 tier-1s";
  let g = Graph.create () in
  let tier1 =
    List.init params.n_tier1 (fun i -> Asn.of_int (100 + (i * 100)))
  in
  let transit =
    List.init params.n_transit (fun i -> Asn.of_int (1000 + i))
  in
  let stub = List.init params.n_stub (fun i -> Asn.of_int (10000 + i)) in
  List.iter (fun a -> Graph.add_as g a Graph.Tier1) tier1;
  List.iter (fun a -> Graph.add_as g a Graph.Transit) transit;
  List.iter (fun a -> Graph.add_as g a Graph.Stub) stub;
  (* Tier-1 full mesh of peer links. *)
  let rec clique = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> Graph.add_peer_link g a b) rest;
        clique rest
  in
  clique tier1;
  (* Transits attach to 1..max providers drawn from tier-1s and
     already-placed transits (preferentially by degree). *)
  let placed_transit = ref [] in
  List.iter
    (fun a ->
      let n_providers = 1 + Rng.int rng params.transit_max_providers in
      let candidates = tier1 @ !placed_transit in
      let chosen = ref [] in
      for _ = 1 to n_providers do
        match pick_provider rng g candidates (a :: !chosen) with
        | Some p ->
            Graph.add_customer_link g ~provider:p ~customer:a;
            chosen := p :: !chosen
        | None -> ()
      done;
      placed_transit := a :: !placed_transit)
    transit;
  (* Lateral transit peering. *)
  let transit_arr = Array.of_list transit in
  let n_peer_links =
    int_of_float
      (params.transit_peer_degree *. float_of_int params.n_transit /. 2.0)
  in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < n_peer_links && !attempts < n_peer_links * 20 do
    incr attempts;
    let a = Rng.choice rng transit_arr in
    let b = Rng.choice rng transit_arr in
    if (not (Asn.equal a b)) && not (Graph.has_link g a b) then begin
      Graph.add_peer_link g a b;
      incr added
    end
  done;
  (* Stubs multihome to transits (and occasionally a tier-1). *)
  List.iter
    (fun a ->
      let n_providers = 1 + Rng.int rng params.stub_max_providers in
      let candidates =
        if Rng.float rng < 0.05 then tier1 @ transit else transit
      in
      let chosen = ref [] in
      for _ = 1 to n_providers do
        match pick_provider rng g candidates (a :: !chosen) with
        | Some p ->
            Graph.add_customer_link g ~provider:p ~customer:a;
            chosen := p :: !chosen
        | None -> ()
      done)
    stub;
  g
