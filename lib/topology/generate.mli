(** Internet-like AS topology generation.

    Produces a three-tier hierarchy: a clique of Tier-1 providers, a layer of
    transit ASs multihomed to providers chosen by preferential attachment
    (yielding the heavy-tailed customer cones of the real AS graph), lateral
    peering between transits, and stub ASs at the edge.  All randomness comes
    from the supplied {!Because_stats.Rng.t}, so a (seed, params) pair
    identifies a topology. *)

open Because_bgp

type params = {
  n_tier1 : int;            (** Size of the Tier-1 clique. *)
  n_transit : int;
  n_stub : int;
  transit_max_providers : int;  (** Providers per transit AS (1..max). *)
  stub_max_providers : int;     (** Providers per stub AS (1..max). *)
  transit_peer_degree : float;  (** Expected lateral peer links per transit. *)
}

val default_params : params
(** 8 Tier-1s, 80 transits, 360 stubs — a few-hundred-AS world comparable in
    diversity (not size) to the measured Internet slice in the paper. *)

val generate : Because_stats.Rng.t -> params -> Graph.t

val tier1_asns : Graph.t -> Asn.t list
val transit_asns : Graph.t -> Asn.t list
val stub_asns : Graph.t -> Asn.t list
