module Rng = Because_stats.Rng
module Dist = Because_stats.Dist

type t = Ris | Routeviews | Isolario

let all = [ Ris; Routeviews; Isolario ]

let name = function
  | Ris -> "RIPE RIS"
  | Routeviews -> "RouteViews"
  | Isolario -> "Isolario"

let pp fmt t = Format.pp_print_string fmt (name t)

let equal a b =
  match (a, b) with
  | Ris, Ris | Routeviews, Routeviews | Isolario, Isolario -> true
  | (Ris | Routeviews | Isolario), _ -> false

let export_delay rng t ~sent_to_received =
  match t with
  | Routeviews ->
      (* Export lands almost exactly 50 s after the Beacon send time. *)
      Float.max 0.0 (50.0 -. sent_to_received)
      +. Dist.uniform rng ~lo:0.0 ~hi:2.0
  | Isolario ->
      (* Within 30 s of the send for (almost) all vantage points. *)
      Float.max 0.0
        (Float.min
           (Dist.uniform rng ~lo:2.0 ~hi:25.0)
           (30.0 -. sent_to_received))
  | Ris ->
      (* Diverse: a wide exponential spread. *)
      Float.min 120.0 (Dist.exponential rng ~rate:(1.0 /. 25.0))
