open Because_bgp
module Rng = Because_stats.Rng

type params = {
  invalid_aggregator_rate : float;
  session_reset_rate : float;
  reset_outage : float;
  max_outages : int;
}

let none =
  { invalid_aggregator_rate = 0.0; session_reset_rate = 0.0;
    reset_outage = 0.0; max_outages = 1 }

let realistic =
  { invalid_aggregator_rate = 0.01; session_reset_rate = 0.1;
    reset_outage = 1800.0; max_outages = 1 }

let corrupt_aggregator rng params update =
  match update with
  | Update.Announce a when Rng.float rng < params.invalid_aggregator_rate -> (
      match a.aggregator with
      | Some agg ->
          Update.Announce
            { a with aggregator = Some { agg with valid = false } }
      | None -> update)
  | Update.Announce _ | Update.Withdraw _ -> update

(* Each of the [max_outages] slots is an independent Bernoulli draw followed,
   on a hit, by a uniform start time — so with [max_outages = 1] the RNG
   stream is exactly the historical single-window one. *)
let outage_windows rng params ~campaign_end =
  if params.max_outages < 0 then
    invalid_arg "Noise.outage_windows: max_outages must be non-negative";
  let rec go k acc =
    if k = 0 then List.rev acc
    else begin
      let acc =
        if Rng.float rng < params.session_reset_rate && campaign_end > 0.0
        then begin
          let start = Rng.range_float rng 0.0 campaign_end in
          (start, start +. params.reset_outage) :: acc
        end
        else acc
      in
      go (k - 1) acc
    end
  in
  go params.max_outages [] |> List.sort compare
