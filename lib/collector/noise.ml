open Because_bgp
module Rng = Because_stats.Rng

type params = {
  invalid_aggregator_rate : float;
  session_reset_rate : float;
  reset_outage : float;
}

let none =
  { invalid_aggregator_rate = 0.0; session_reset_rate = 0.0;
    reset_outage = 0.0 }

let realistic =
  { invalid_aggregator_rate = 0.01; session_reset_rate = 0.1;
    reset_outage = 1800.0 }

let corrupt_aggregator rng params update =
  match update with
  | Update.Announce a when Rng.float rng < params.invalid_aggregator_rate -> (
      match a.aggregator with
      | Some agg ->
          Update.Announce
            { a with aggregator = Some { agg with valid = false } }
      | None -> update)
  | Update.Announce _ | Update.Withdraw _ -> update

let outage_window rng params ~campaign_end =
  if Rng.float rng < params.session_reset_rate && campaign_end > 0.0 then begin
    let start = Rng.range_float rng 0.0 campaign_end in
    Some (start, start +. params.reset_outage)
  end
  else None
