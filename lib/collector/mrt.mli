(** MRT export of dump records (RFC 6396).

    Route collectors publish their feeds as MRT files; this module writes
    {!Dump.record}s as BGP4MP_ET records (MRT type 17, subtype
    BGP4MP_MESSAGE_AS4) wrapping RFC 4271 UPDATE messages encoded by
    {!Because_bgp.Wire}, and reads them back.  The mapping:

    - the MRT extended timestamp carries [export_at] (seconds +
      microseconds);
    - the peer AS is the vantage point's host AS;
    - the peer IP field carries the vantage-point id, the local IP field the
      collector project (1 = RIS, 2 = RouteViews, 3 = Isolario);
    - [received_at] is not representable in MRT and is restored as
      [export_at] on read. *)

val encode_records : Dump.record list -> bytes
val decode_records : bytes -> (Dump.record list, string) result

val write_file : string -> Dump.record list -> unit
(** Raises [Sys_error] on I/O failure. *)

val read_file : string -> (Dump.record list, string) result
