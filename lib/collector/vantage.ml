open Because_bgp
module Rng = Because_stats.Rng

type t = { vp_id : int; host_asn : Asn.t; project : Project.t }

let make ~vp_id ~host_asn ~project = { vp_id; host_asn; project }

let pp fmt t =
  Format.fprintf fmt "vp%d(%a@%s)" t.vp_id Asn.pp t.host_asn
    (Project.name t.project)

let hosts vps =
  List.fold_left (fun acc vp -> Asn.Set.add vp.host_asn acc) Asn.Set.empty vps

let assign rng ~hosts ~per_project_share =
  if List.length per_project_share <> List.length Project.all then
    invalid_arg "Vantage.assign: one share per project required";
  let next_id = ref 0 in
  List.concat_map
    (fun host ->
      let sessions =
        List.concat
          (List.map2
             (fun project share ->
               if Rng.float rng < share then begin
                 let vp =
                   make ~vp_id:!next_id ~host_asn:host ~project
                 in
                 incr next_id;
                 [ vp ]
               end
               else [])
             Project.all per_project_share)
      in
      match sessions with
      | [] ->
          (* Guarantee at least one session per host. *)
          let project = Rng.choice rng (Array.of_list Project.all) in
          let vp = make ~vp_id:!next_id ~host_asn:host ~project in
          incr next_id;
          [ vp ]
      | _ -> sessions)
    hosts
