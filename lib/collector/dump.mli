(** Update dumps: the MRT-like records the analysis pipeline consumes.

    {!of_network} turns the monitored full feeds of a finished simulation
    into per-vantage-point dump records, adding project-specific export
    latency and applying {!Noise}. *)

open Because_bgp

type record = {
  received_at : float;  (** When the host AS's loc-RIB changed. *)
  export_at : float;    (** When the record appears in the project dump. *)
  vp : Vantage.t;
  update : Update.t;
}

val of_feeds :
  ?gaps_of:(int -> (float * float) list) ->
  Because_stats.Rng.t ->
  feed_of:(Asn.t -> (float * Update.t) list) ->
  vantages:Vantage.t list ->
  noise:Noise.params ->
  campaign_end:float ->
  unit ->
  record list
(** All records across all vantage points, sorted by [export_at].
    [feed_of] maps a host AS to its chronological full-feed observations
    (e.g. {!Because_sim.Network.feed} or {!Because_sim.Sharded.feed}).

    [gaps_of vp_id] returns extra collector-outage windows for a vantage
    point (e.g. from an injected fault plan); records received inside any
    window — drawn from [noise] or supplied here — are dropped, truncating
    that feed.  Defaults to no extra gaps.

    Noise draws are made per vantage in list order, then per feed record —
    identical feeds therefore yield identical dumps for a given [rng]. *)

val of_network :
  ?gaps_of:(int -> (float * float) list) ->
  Because_stats.Rng.t ->
  Because_sim.Network.t ->
  vantages:Vantage.t list ->
  noise:Noise.params ->
  campaign_end:float ->
  record list
(** [of_feeds] over a finished simulation's monitored feeds. *)

val for_prefix_vp : record list -> Prefix.t -> int -> record list
(** Records of one (prefix, vantage point) pair, chronological. *)

val prefixes : record list -> Prefix.Set.t
val vp_ids : record list -> int list

val announcements_with_valid_aggregator : record list -> record list
(** The paper's cleaning step: discard announcements whose aggregator IP is
    missing or invalid (their encoded send timestamp is unusable).
    Withdrawals are kept. *)
