(** Measurement noise models (§4.3 "Validation" of the paper).

    Two imperfections the real pipeline had to survive:

    - ≈1 % of announcements carried an empty/invalid aggregator IP and had to
      be discarded because the encoded send timestamp was missing;
    - occasional session resets / infrastructure failures, which the ≥90 %
      Burst–Break labeling rule absorbs. *)

type params = {
  invalid_aggregator_rate : float;  (** Probability an announcement's aggregator is corrupted. *)
  session_reset_rate : float;
      (** Probability that a given vantage point suffers one reset during the
          campaign. *)
  reset_outage : float;  (** Duration of the data gap a reset causes, seconds. *)
}

val none : params
val realistic : params
(** 1 % invalid aggregators, 10 % of vantage points suffer one 30-minute
    outage. *)

val corrupt_aggregator :
  Because_stats.Rng.t -> params -> Because_bgp.Update.t -> Because_bgp.Update.t
(** Possibly invalidate an announcement's aggregator (withdrawals pass
    through). *)

val outage_window :
  Because_stats.Rng.t -> params -> campaign_end:float -> (float * float) option
(** Draw the outage window for one vantage point, if any. *)
