(** Measurement noise models (§4.3 "Validation" of the paper).

    Two imperfections the real pipeline had to survive:

    - ≈1 % of announcements carried an empty/invalid aggregator IP and had to
      be discarded because the encoded send timestamp was missing;
    - occasional session resets / infrastructure failures, which the ≥90 %
      Burst–Break labeling rule absorbs. *)

type params = {
  invalid_aggregator_rate : float;  (** Probability an announcement's aggregator is corrupted. *)
  session_reset_rate : float;
      (** Per-slot probability that a vantage point suffers a reset during
          the campaign (see [max_outages]). *)
  reset_outage : float;  (** Duration of the data gap a reset causes, seconds. *)
  max_outages : int;
      (** Number of independent reset slots per vantage point; each hits
          with [session_reset_rate].  The historical behavior is
          [max_outages = 1]. *)
}

val none : params
val realistic : params
(** 1 % invalid aggregators, 10 % of vantage points suffer one 30-minute
    outage. *)

val corrupt_aggregator :
  Because_stats.Rng.t -> params -> Because_bgp.Update.t -> Because_bgp.Update.t
(** Possibly invalidate an announcement's aggregator (withdrawals pass
    through). *)

val outage_windows :
  Because_stats.Rng.t -> params -> campaign_end:float -> (float * float) list
(** Draw the outage windows for one vantage point: up to [max_outages]
    windows, sorted by start time (possibly overlapping).  With
    [max_outages = 1] this consumes the same RNG draws as the historical
    single-window API it replaced. *)
