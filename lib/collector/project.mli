(** Route-collector projects.

    The paper consumes dumps from three projects — RIPE RIS, RouteViews and
    Isolario — whose vantage points exhibit distinct export-latency behaviour
    (Fig. 8): RouteViews peers export almost exactly 50 s after the Beacon
    send time, Isolario peers within 30 s, and RIS peers are diverse. *)

type t = Ris | Routeviews | Isolario

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val export_delay :
  Because_stats.Rng.t -> t -> sent_to_received:float -> float
(** Additional delay between a vantage point receiving an update and the
    update appearing in the project's dump.  [sent_to_received] is the
    propagation time so far (Beacon send → vantage point), used by the
    RouteViews model to hit its characteristic 50-second total. *)
