(** Vantage points: full-feed peering sessions between an AS and a
    route-collector project. *)

open Because_bgp

type t = {
  vp_id : int;             (** Unique within a measurement setup. *)
  host_asn : Asn.t;        (** The AS exporting its full feed. *)
  project : Project.t;
}

val make : vp_id:int -> host_asn:Asn.t -> project:Project.t -> t
val pp : Format.formatter -> t -> unit

val hosts : t list -> Asn.Set.t
(** Set of ASs hosting at least one vantage point — the set the simulator
    must monitor. *)

val assign :
  Because_stats.Rng.t -> hosts:Asn.t list -> per_project_share:float list -> t list
(** [assign rng ~hosts ~per_project_share] attaches each host AS to one or
    more projects: shares (summing to ≤ 3.0, one per project in
    {!Project.all} order) give the probability that a host peers with each
    project.  Every host receives at least one session. *)
