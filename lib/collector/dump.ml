open Because_bgp
module Rng = Because_stats.Rng

type record = {
  received_at : float;
  export_at : float;
  vp : Vantage.t;
  update : Update.t;
}

let of_feeds ?(gaps_of = fun _ -> []) rng ~feed_of ~vantages ~noise
    ~campaign_end () =
  let records =
    List.concat_map
      (fun (vp : Vantage.t) ->
        let feed = feed_of vp.Vantage.host_asn in
        let outages =
          Noise.outage_windows rng noise ~campaign_end
          @ gaps_of vp.Vantage.vp_id
        in
        List.filter_map
          (fun (received_at, update) ->
            let in_outage =
              List.exists
                (fun (lo, hi) -> received_at >= lo && received_at <= hi)
                outages
            in
            if in_outage then None
            else begin
              let sent_to_received =
                match Update.aggregator update with
                | Some agg -> Float.max 0.0 (received_at -. agg.sent_at)
                | None -> received_at
              in
              let export_at =
                received_at
                +. Project.export_delay rng vp.Vantage.project
                     ~sent_to_received
              in
              let update = Noise.corrupt_aggregator rng noise update in
              Some { received_at; export_at; vp; update }
            end)
          feed)
      vantages
  in
  List.sort (fun a b -> Float.compare a.export_at b.export_at) records

let of_network ?gaps_of rng net ~vantages ~noise ~campaign_end =
  of_feeds ?gaps_of rng
    ~feed_of:(Because_sim.Network.feed net)
    ~vantages ~noise ~campaign_end ()

let for_prefix_vp records prefix vp_id =
  List.filter
    (fun r ->
      r.vp.Vantage.vp_id = vp_id
      && Prefix.equal (Update.prefix r.update) prefix)
    records

let prefixes records =
  List.fold_left
    (fun acc r -> Prefix.Set.add (Update.prefix r.update) acc)
    Prefix.Set.empty records

let vp_ids records =
  List.sort_uniq Int.compare
    (List.map (fun r -> r.vp.Vantage.vp_id) records)

let announcements_with_valid_aggregator records =
  List.filter
    (fun r ->
      match r.update with
      | Update.Withdraw _ -> true
      | Update.Announce { aggregator = Some { valid = true; _ }; _ } -> true
      | Update.Announce _ -> false)
    records
