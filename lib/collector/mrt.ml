open Because_bgp

let mrt_type_bgp4mp_et = 17
let subtype_message_as4 = 4

let project_code = function
  | Project.Ris -> 1
  | Project.Routeviews -> 2
  | Project.Isolario -> 3

let project_of_code = function
  | 1 -> Ok Project.Ris
  | 2 -> Ok Project.Routeviews
  | 3 -> Ok Project.Isolario
  | c -> Error (Printf.sprintf "unknown collector project code %d" c)

let encode_record buf (r : Dump.record) =
  let message = Wire.encode r.Dump.update in
  let seconds = int_of_float r.Dump.export_at in
  let micros =
    int_of_float ((r.Dump.export_at -. float_of_int seconds) *. 1e6)
  in
  let body = Buffer.create (Bytes.length message + 24) in
  Buffer.add_int32_be body (Int32.of_int micros);
  Buffer.add_int32_be body
    (Int32.of_int (Asn.to_int r.Dump.vp.Vantage.host_asn));
  Buffer.add_int32_be body 0l (* local (collector) AS *);
  Buffer.add_uint16_be body 0 (* interface index *);
  Buffer.add_uint16_be body 1 (* AFI: IPv4 *);
  Buffer.add_int32_be body (Int32.of_int r.Dump.vp.Vantage.vp_id);
  Buffer.add_int32_be body
    (Int32.of_int (project_code r.Dump.vp.Vantage.project));
  Buffer.add_bytes body message;
  (* MRT common header *)
  Buffer.add_int32_be buf (Int32.of_int seconds);
  Buffer.add_uint16_be buf mrt_type_bgp4mp_et;
  Buffer.add_uint16_be buf subtype_message_as4;
  Buffer.add_int32_be buf (Int32.of_int (Buffer.length body));
  Buffer.add_buffer buf body

let encode_records records =
  let buf = Buffer.create (4096 * List.length records) in
  List.iter (encode_record buf) records;
  Buffer.to_bytes buf

let decode_records data =
  let len = Bytes.length data in
  let pos = ref 0 in
  let read_u16 () =
    let v = Bytes.get_uint16_be data !pos in
    pos := !pos + 2;
    v
  in
  let read_u32 () =
    let v = Int32.to_int (Bytes.get_int32_be data !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let rec go acc =
    if !pos = len then Ok (List.rev acc)
    else if !pos + 12 > len then Error "truncated MRT header"
    else begin
      let seconds = read_u32 () in
      let mrt_type = read_u16 () in
      let subtype = read_u16 () in
      let body_len = read_u32 () in
      if mrt_type <> mrt_type_bgp4mp_et || subtype <> subtype_message_as4 then
        Error
          (Printf.sprintf "unsupported MRT record type %d/%d" mrt_type subtype)
      else if !pos + body_len > len then Error "truncated MRT body"
      else begin
        let body_end = !pos + body_len in
        if body_len < 24 then Error "MRT body too short"
        else begin
          let micros = read_u32 () in
          let peer_as = read_u32 () in
          let _local_as = read_u32 () in
          let _iface = read_u16 () in
          let afi = read_u16 () in
          let vp_id = read_u32 () in
          let code = read_u32 () in
          if afi <> 1 then Error (Printf.sprintf "unsupported AFI %d" afi)
          else begin
            match project_of_code code with
            | Error e -> Error e
            | Ok project -> (
                let message = Bytes.sub data !pos (body_end - !pos) in
                pos := body_end;
                match Wire.decode message with
                | Error e ->
                    Error (Format.asprintf "BGP decode: %a" Wire.pp_error e)
                | Ok update ->
                    let export_at =
                      float_of_int seconds +. (float_of_int micros /. 1e6)
                    in
                    let vp =
                      Vantage.make ~vp_id ~host_asn:(Asn.of_int peer_as)
                        ~project
                    in
                    let record =
                      { Dump.received_at = export_at; export_at; vp; update }
                    in
                    go (record :: acc))
          end
        end
      end
    end
  in
  go []

let write_file path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode_records records))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      decode_records (Bytes.of_string data))
