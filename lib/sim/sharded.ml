open Because_bgp
module Rng = Because_stats.Rng
module Parallel = Because_stats.Parallel

type result = {
  feeds : (Asn.t * (float * Update.t) list) list;
  stats : Network.stats;
  fault_log : (float * Network.fault_event) list;
  events : int;
  shards : int;
}

let feed result asn =
  match List.assoc_opt asn result.feeds with Some l -> l | None -> []

let collect net monitored =
  Asn.Set.fold (fun asn acc -> (asn, Network.feed net asn) :: acc) monitored []
  |> List.rev

let is_origin_fault = function
  | Network.Fault_update_lost _ | Network.Fault_update_duplicated _ -> true
  | Network.Fault_link_down _ | Network.Fault_link_up _
  | Network.Fault_session_reset _ | Network.Fault_session_down _
  | Network.Fault_session_up _ -> false

(* Merge per-shard fault logs.  Link/session transitions replay identically
   in every shard (the session layer is prefix-agnostic), so shard 0 speaks
   for all of them; update loss/duplication is per-shard traffic and is kept
   from every shard.  A stable sort on time then interleaves them
   chronologically with shard order breaking ties. *)
let merge_fault_logs logs =
  let per_shard =
    List.mapi
      (fun i log -> if i = 0 then log else List.filter (fun (_, ev) -> is_origin_fault ev) log)
      logs
  in
  List.stable_sort
    (fun (ta, _) (tb, _) -> Float.compare ta tb)
    (List.concat per_shard)

let merge_stats (per_shard : Network.stats list) : Network.stats =
  match per_shard with
  | [] -> invalid_arg "Sharded: no shards"
  | first :: _ ->
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 per_shard in
      {
        Network.deliveries = sum (fun s -> s.Network.deliveries);
        announcements = sum (fun s -> s.Network.announcements);
        withdrawals = sum (fun s -> s.Network.withdrawals);
        lost = sum (fun s -> s.Network.lost);
        duplicated = sum (fun s -> s.Network.duplicated);
        (* Identical in every shard: count once. *)
        session_drops = first.Network.session_drops;
        session_recoveries = first.Network.session_recoveries;
      }

(* Merge per-shard feeds of one vantage.  Entries of a given prefix all live
   in one shard, in their sequential relative order; the cross-prefix
   interleave is reconstructed by time with the prefix's first-touch rank
   breaking ties — exactly the sequential heap's FIFO order for the
   lineage-aligned cascades that produce cross-prefix time ties. *)
let merge_feeds rank_of shard_feeds asn =
  let entries =
    List.concat_map
      (fun feeds -> match List.assoc_opt asn feeds with Some l -> l | None -> [])
      shard_feeds
  in
  List.stable_sort
    (fun (ta, ua) (tb, ub) ->
      match Float.compare ta tb with
      | 0 -> Int.compare (rank_of (Update.prefix ua)) (rank_of (Update.prefix ub))
      | c -> c)
    entries

let run ?fault_rng ~jobs ~configs ~delay ~monitored ~until script =
  if jobs < 1 then invalid_arg "Sharded.run: jobs must be positive";
  let n_prefixes = Script.n_prefixes script in
  let shards = max 1 (min jobs n_prefixes) in
  if shards = 1 then begin
    (* Single-shard path: one network, full script in recording order — the
       event stream is bit-for-bit the historical sequential one. *)
    let net = Network.create ?fault_rng ~configs ~delay ~monitored () in
    Script.install script net;
    Network.run net ~until;
    {
      feeds = collect net monitored;
      stats = Network.stats net;
      fault_log = Network.fault_log net;
      events = Network.events_processed net;
      shards = 1;
    }
  end
  else begin
    let rngs =
      match fault_rng with
      | Some rng -> Array.map Option.some (Rng.split_n rng shards)
      | None -> Array.make shards None
    in
    let shard_of prefix =
      match Script.rank script prefix with
      | Some r -> r mod shards
      | None -> 0
    in
    let tasks =
      Array.init shards (fun shard ->
          fun () ->
            let net =
              Network.create ?fault_rng:rngs.(shard) ~configs ~delay ~monitored
                ()
            in
            Script.install ~keep:(fun p -> shard_of p = shard) script net;
            Network.run net ~until;
            ( collect net monitored,
              Network.stats net,
              Network.fault_log net,
              Network.events_processed net ))
    in
    let results = Parallel.run_tasks ~jobs tasks in
    let shard_feeds = Array.to_list (Array.map (fun (f, _, _, _) -> f) results) in
    let rank_of prefix =
      match Script.rank script prefix with Some r -> r | None -> max_int
    in
    {
      feeds =
        Asn.Set.fold
          (fun asn acc -> (asn, merge_feeds rank_of shard_feeds asn) :: acc)
          monitored []
        |> List.rev;
      stats =
        merge_stats (Array.to_list (Array.map (fun (_, s, _, _) -> s) results));
      fault_log =
        merge_fault_logs
          (Array.to_list (Array.map (fun (_, _, l, _) -> l) results));
      events = Array.fold_left (fun acc (_, _, _, e) -> acc + e) 0 results;
      shards;
    }
  end
