open Because_bgp
module Rng = Because_stats.Rng
module Parallel = Because_stats.Parallel
module Tel = Because_telemetry.Registry

(* A shard's collected vantage feeds: materialized, or left on disk as the
   per-vantage spill logs the network wrote (paths only — replayed lazily by
   {!feed}, so a campaign never holds every observation at once). *)
type feed_store =
  | Feeds_mem of (Asn.t * (float * Update.t) list) list
  | Feeds_spilled of (Asn.t * string) list

let store_entries = function
  | Feeds_mem l -> l
  | Feeds_spilled l ->
      List.map (fun (asn, path) -> (asn, Feed_log.entries path)) l

let store_feed store asn =
  match store with
  | Feeds_mem l -> (
      match List.assoc_opt asn l with Some e -> e | None -> [])
  | Feeds_spilled l -> (
      match List.assoc_opt asn l with
      | Some path -> Feed_log.entries path
      | None -> [])

type result = {
  stats : Network.stats;
  fault_log : (float * Network.fault_event) list;
  events : int;
  shards : int;
  shard_events : int array;
  monitored : Asn.Set.t;
  rank_of : Prefix.t -> int;
  stores : feed_store array;  (* one per shard *)
}

type shard_result = {
  shard_feeds : feed_store;
  shard_stats : Network.stats;
  shard_fault_log : (float * Network.fault_event) list;
  shard_events_count : int;
}

(* The checkpoint layer lives above this library (it needs serializers for
   Update values and a durable store); the simulator only knows how to ask
   it for a finished shard and how to hand one over.  Keyed by (shard,
   shards): a result saved under a different shard count partitions the
   prefixes differently and must not be reused. *)
type checkpoint_hooks = {
  load_shard : shard:int -> shards:int -> shard_result option;
  save_shard : shard:int -> shards:int -> shard_result -> unit;
}

(* Merge one vantage's per-shard entries.  Entries of a given prefix all
   live in one shard, in their sequential relative order; the cross-prefix
   interleave is reconstructed by time with the prefix's first-touch rank
   breaking ties — exactly the sequential heap's FIFO order for the
   lineage-aligned cascades that produce cross-prefix time ties. *)
let merge_entries rank_of entries =
  List.stable_sort
    (fun (ta, ua) (tb, ub) ->
      match Float.compare ta tb with
      | 0 ->
          Int.compare (rank_of (Update.prefix ua)) (rank_of (Update.prefix ub))
      | c -> c)
    entries

let feed result asn =
  match result.stores with
  | [| store |] -> store_feed store asn  (* already sequential order *)
  | stores ->
      merge_entries result.rank_of
        (List.concat_map
           (fun store -> store_feed store asn)
           (Array.to_list stores))

let feeds result =
  Asn.Set.fold
    (fun asn acc -> (asn, feed result asn) :: acc)
    result.monitored []
  |> List.rev

let collect ~spilled net monitored =
  if spilled then
    Feeds_spilled
      (Asn.Set.fold
         (fun asn acc ->
           match Network.feed_spilled net asn with
           | Some path -> (asn, path) :: acc
           | None -> acc)
         monitored []
      |> List.rev)
  else
    Feeds_mem
      (Asn.Set.fold
         (fun asn acc -> (asn, Network.feed net asn) :: acc)
         monitored []
      |> List.rev)

let is_origin_fault = function
  | Network.Fault_update_lost _ | Network.Fault_update_duplicated _ -> true
  | Network.Fault_link_down _ | Network.Fault_link_up _
  | Network.Fault_session_reset _ | Network.Fault_session_down _
  | Network.Fault_session_up _ -> false

(* Merge per-shard fault logs.  Link/session transitions replay identically
   in every shard (the session layer is prefix-agnostic), so shard 0 speaks
   for all of them; update loss/duplication is per-shard traffic and is kept
   from every shard.  A stable sort on time then interleaves them
   chronologically with shard order breaking ties. *)
let merge_fault_logs logs =
  let per_shard =
    List.mapi
      (fun i log -> if i = 0 then log else List.filter (fun (_, ev) -> is_origin_fault ev) log)
      logs
  in
  List.stable_sort
    (fun (ta, _) (tb, _) -> Float.compare ta tb)
    (List.concat per_shard)

let merge_stats (per_shard : Network.stats list) : Network.stats =
  match per_shard with
  | [] -> invalid_arg "Sharded: no shards"
  | first :: _ ->
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 per_shard in
      {
        Network.deliveries = sum (fun s -> s.Network.deliveries);
        announcements = sum (fun s -> s.Network.announcements);
        withdrawals = sum (fun s -> s.Network.withdrawals);
        lost = sum (fun s -> s.Network.lost);
        duplicated = sum (fun s -> s.Network.duplicated);
        (* Identical in every shard: count once. *)
        session_drops = first.Network.session_drops;
        session_recoveries = first.Network.session_recoveries;
      }

(* Flush one finished shard's simulation counters into the telemetry
   registry.  Runs inside the worker domain that owned the shard, so every
   record lands in that domain's own telemetry shard — no atomics, no
   contention.  The session layer replays identically in every shard, so
   its counters (like merge_stats) are spoken for by shard 0 alone. *)
let flush_shard_telemetry reg ~shard net =
  if Tel.is_enabled reg then begin
    let c name n = Tel.Counter.add (Tel.Counter.v reg name) n in
    let g name v = Tel.Gauge.set (Tel.Gauge.v reg name) v in
    let st = Network.stats net in
    let events = Network.events_processed net in
    c "sim.events" events;
    c "sim.deliveries" st.Network.deliveries;
    c "sim.announcements" st.Network.announcements;
    c "sim.withdrawals" st.Network.withdrawals;
    c "sim.updates_lost" st.Network.lost;
    c "sim.updates_duplicated" st.Network.duplicated;
    if shard = 0 then begin
      c "sim.session_drops" st.Network.session_drops;
      c "sim.session_recoveries" st.Network.session_recoveries
    end;
    let supp, rel = Network.rfd_stats net in
    c "sim.rfd_suppressions" supp;
    c "sim.rfd_releases" rel;
    let ts = Network.table_totals net in
    g "sim.tables.rib_in" (float_of_int ts.Router.rib_in_entries);
    g "sim.tables.rfd" (float_of_int ts.Router.rfd_states);
    g "sim.tables.adj_out" (float_of_int ts.Router.adj_out_entries);
    g "sim.tables.mrai" (float_of_int ts.Router.mrai_states);
    g "sim.tables.loc_rib" (float_of_int ts.Router.loc_rib_entries);
    Tel.Histogram.observe
      (Tel.Histogram.v reg "sim.shard_events")
      (float_of_int events);
    g (Printf.sprintf "sim.shard%d.events" shard) (float_of_int events);
    g
      (Printf.sprintf "sim.shard%d.max_queue_depth" shard)
      (float_of_int (Network.max_queue_depth net))
  end

let count_restored telemetry =
  if Tel.is_enabled telemetry then
    Tel.Counter.add (Tel.Counter.v telemetry "sim.shards_restored") 1

(* Run one shard, preferring its saved result.  A restored shard skips
   network construction and replay entirely; its pre-split fault stream is
   simply never drawn from (streams are split before any task runs, so
   skipping one shard cannot perturb another's randomness). *)
let run_shard ?rng ~checkpoint ~telemetry ~spill ~configs ~delay ~monitored
    ~until ~script ~keep ~shard ~shards () =
  let restored =
    match checkpoint with
    | Some h -> h.load_shard ~shard ~shards
    | None -> None
  in
  match restored with
  | Some sr ->
      count_restored telemetry;
      sr
  | None ->
      let net =
        Network.create ?fault_rng:rng ?feed_spill:spill ~configs ~delay
          ~monitored ()
      in
      Script.install ?keep script net;
      Tel.Span.with_ telemetry
        ~name:(Printf.sprintf "sim.shard%d.replay" shard) (fun () ->
          Network.run net ~until);
      flush_shard_telemetry telemetry ~shard net;
      let sr =
        {
          shard_feeds = collect ~spilled:(spill <> None) net monitored;
          shard_stats = Network.stats net;
          shard_fault_log = Network.fault_log net;
          shard_events_count = Network.events_processed net;
        }
      in
      (match checkpoint with
      | Some h -> h.save_shard ~shard ~shards sr
      | None -> ());
      sr

let run ?fault_rng ?(telemetry = Tel.disabled) ?checkpoint ?shards ?feed_spill
    ~jobs ~configs ~delay ~monitored ~until script =
  if jobs < 1 then invalid_arg "Sharded.run: jobs must be positive";
  (match shards with
  | Some s when s < 1 -> invalid_arg "Sharded.run: shards must be positive"
  | _ -> ());
  let n_prefixes = Script.n_prefixes script in
  (* Default one shard per pool seat; an explicit [shards] may exceed [jobs]
     — the work-stealing pool then runs at most [jobs] shard networks at a
     time and queues the rest, so peak live state is bounded by the seat
     count, not the shard count. *)
  let shards =
    max 1 (min (Option.value shards ~default:jobs) n_prefixes)
  in
  (* Each shard spills under its own subdirectory: shards replaying
     different prefix subsets must not append to the same vantage log. *)
  let spill_for shard =
    Option.map
      (fun (s : Feed_log.spill) ->
        { s with
          Feed_log.dir =
            Filename.concat s.Feed_log.dir
              (Printf.sprintf "shard%dof%d" shard shards) })
      feed_spill
  in
  let rank_of prefix =
    match Script.rank script prefix with Some r -> r | None -> max_int
  in
  if shards = 1 then begin
    (* Single-shard path: one network, full script in recording order — the
       event stream is bit-for-bit the historical sequential one. *)
    let sr =
      run_shard ?rng:fault_rng ~checkpoint ~telemetry ~spill:(spill_for 0)
        ~configs ~delay ~monitored ~until ~script ~keep:None ~shard:0
        ~shards:1 ()
    in
    {
      stats = sr.shard_stats;
      fault_log = sr.shard_fault_log;
      events = sr.shard_events_count;
      shards = 1;
      shard_events = [| sr.shard_events_count |];
      monitored;
      rank_of;
      stores = [| sr.shard_feeds |];
    }
  end
  else begin
    let rngs =
      match fault_rng with
      | Some rng -> Array.map Option.some (Rng.split_n rng shards)
      | None -> Array.make shards None
    in
    let shard_of prefix =
      match Script.rank script prefix with
      | Some r -> r mod shards
      | None -> 0
    in
    let tasks =
      Array.init shards (fun shard ->
          fun () ->
            run_shard ?rng:rngs.(shard) ~checkpoint ~telemetry
              ~spill:(spill_for shard) ~configs ~delay ~monitored ~until
              ~script
              ~keep:(Some (fun p -> shard_of p = shard))
              ~shard ~shards ())
    in
    let results = Parallel.run_tasks ~jobs tasks in
    Tel.Span.with_ telemetry ~name:"sim.merge" (fun () ->
        {
          stats =
            merge_stats
              (Array.to_list (Array.map (fun sr -> sr.shard_stats) results));
          fault_log =
            merge_fault_logs
              (Array.to_list
                 (Array.map (fun sr -> sr.shard_fault_log) results));
          events =
            Array.fold_left
              (fun acc sr -> acc + sr.shard_events_count)
              0 results;
          shards;
          shard_events = Array.map (fun sr -> sr.shard_events_count) results;
          monitored;
          rank_of;
          stores = Array.map (fun sr -> sr.shard_feeds) results;
        })
  end
