(** Recorded simulation input.

    A script is the full external stimulus of a campaign — beacon
    announce/withdraw schedules, background churn, and the fault plan's
    link/session events — recorded {e before} any network exists.  Recording
    rather than scheduling directly is what makes the per-prefix sharded
    driver ({!Sharded}) possible: the same script can be replayed into one
    network (bit-for-bit the historical event stream) or filtered by prefix
    into many shard networks.

    Replay order is recording order, so a single-network replay produces
    exactly the heap insertion order of the pre-script code path. *)

open Because_bgp

type op =
  | Announce of { time : float; origin : Asn.t; prefix : Prefix.t }
  | Withdraw of { time : float; origin : Asn.t; prefix : Prefix.t }
  | Session_reset of { time : float; a : Asn.t; b : Asn.t }
  | Link_down of { time : float; a : Asn.t; b : Asn.t }
  | Link_up of { time : float; a : Asn.t; b : Asn.t }
  | Impair of { a : Asn.t; b : Asn.t; loss : float; duplication : float }

type t

val create : unit -> t

val announce : t -> time:float -> origin:Asn.t -> Prefix.t -> unit
val withdraw : t -> time:float -> origin:Asn.t -> Prefix.t -> unit
val session_reset : t -> time:float -> a:Asn.t -> b:Asn.t -> unit
val link_down : t -> time:float -> a:Asn.t -> b:Asn.t -> unit
val link_up : t -> time:float -> a:Asn.t -> b:Asn.t -> unit
val impair : t -> a:Asn.t -> b:Asn.t -> loss:float -> duplication:float -> unit

val ops : t -> op list
(** In recording order. *)

val n_prefixes : t -> int

val prefixes : t -> Prefix.t list
(** Every prefix an origin event touches, in first-touch order. *)

val rank : t -> Prefix.t -> int option
(** First-touch position of a prefix — the shard partitioning key and the
    cross-shard merge tiebreak. *)

val has_faults : t -> bool
(** True when any link/session event or non-zero impairment is recorded. *)

val install : ?keep:(Prefix.t -> bool) -> t -> Network.t -> unit
(** Replay the script into a network in recording order.  [keep] filters
    origin (announce/withdraw) events by prefix; link/session/impairment
    events are prefix-agnostic and always replayed. *)
