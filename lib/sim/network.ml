open Because_bgp
module Rng = Because_stats.Rng

type timer_kind = Hold | Keepalive | Connect_retry

type event =
  | Deliver of { from_asn : Asn.t; to_asn : Asn.t; update : Update.t }
  | Reuse_check of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Mrai_expiry of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Announce_origin of { origin : Asn.t; prefix : Prefix.t }
  | Withdraw_origin of { origin : Asn.t; prefix : Prefix.t }
  | Link_fault of { a : Asn.t; b : Asn.t; up : bool }
  | Session_reset of { a : Asn.t; b : Asn.t }
  | Fsm_deliver of { owner : Asn.t; peer : Asn.t; fsm_event : Session.event }
  | Fsm_timer of { owner : Asn.t; peer : Asn.t; kind : timer_kind; gen : int }

type fault_event =
  | Fault_link_down of { a : Asn.t; b : Asn.t }
  | Fault_link_up of { a : Asn.t; b : Asn.t }
  | Fault_session_reset of { a : Asn.t; b : Asn.t }
  | Fault_session_down of { owner : Asn.t; peer : Asn.t; reason : string }
  | Fault_session_up of { owner : Asn.t; peer : Asn.t }
  | Fault_update_lost of { from_asn : Asn.t; to_asn : Asn.t }
  | Fault_update_duplicated of { from_asn : Asn.t; to_asn : Asn.t }

type stats = {
  mutable deliveries : int;
  mutable announcements : int;
  mutable withdrawals : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable session_drops : int;
  mutable session_recoveries : int;
}

(* One endpoint's view of a faulted session: its RFC 4271 FSM plus timer
   generations (a timer event is stale unless its generation matches). *)
type side = {
  owner : Asn.t;
  s_peer : Asn.t;
  mutable fsm : Session.t;
  mutable hold_gen : int;
  mutable keep_gen : int;
  mutable retry_gen : int;
}

(* A link that has been touched by the fault layer.  Links without a record
   behave exactly as before this subsystem existed: implicitly Established,
   lossless, never down. *)
type link_session = {
  side_a : side;
  side_b : side;
  mutable link_up : bool;
  mutable connecting : bool;  (* a transport connect is in flight *)
  mutable loss : float;       (* per-update drop probability *)
  mutable dup : float;        (* per-update duplication probability *)
}

(* ASN -> dense router id.  Routers live in an array indexed by interned id
   so the delivery hot path is one hash lookup + one array read; everything
   keyed per-router (feeds included) shares the same id space. *)
module Itbl = Hashtbl.Make (struct
  type t = Asn.t

  let equal = Asn.equal
  let hash a = Asn.to_int a * 0x9E3779B1 land max_int
end)

(* Where a monitored vantage's observations go: an in-memory log (the
   default) or a bounded buffer spilling to a binary on-disk log. *)
type feed_sink =
  | Feed_mem of (float * Update.t) list ref  (* newest first *)
  | Feed_disk of Feed_log.writer

type t = {
  engine : event Engine.t;
  ids : int Itbl.t;
  routers : Router.t array;  (* dense, config order *)
  delay : from_asn:Asn.t -> to_asn:Asn.t -> float;
  monitored_set : Asn.Set.t;
  feed_sinks : feed_sink option array;  (* by router id; Some iff monitored *)
  stats : stats;
  sessions : (Asn.t * Asn.t, link_session) Hashtbl.t;
  mutable fault_rng : Rng.t option;
  mutable fault_log : (float * fault_event) list;  (* newest first *)
}

let create ?fault_rng ?feed_spill ~configs ~delay ~monitored () =
  let n = List.length configs in
  let ids = Itbl.create (2 * max 1 n) in
  let routers =
    Array.of_list
      (List.map
         (fun (cfg : Router.config) ->
           if Itbl.mem ids cfg.Router.asn then
             invalid_arg "Network.create: duplicate router";
           Itbl.replace ids cfg.Router.asn (Itbl.length ids);
           Router.create cfg)
         configs)
  in
  let feed_sinks =
    Array.map
      (fun r ->
        let asn = (Router.config r).Router.asn in
        if Asn.Set.mem asn monitored then
          Some
            (match feed_spill with
            | None -> Feed_mem (ref [])
            | Some { Feed_log.dir; buffer } ->
                Feed_disk (Feed_log.writer ~dir ~asn ~buffer))
        else None)
      routers
  in
  let n_links =
    List.fold_left
      (fun acc (cfg : Router.config) -> acc + List.length cfg.Router.neighbors)
      0 configs
    / 2
  in
  {
    engine = Engine.create ();
    ids;
    routers;
    delay;
    monitored_set = monitored;
    feed_sinks;
    stats =
      { deliveries = 0; announcements = 0; withdrawals = 0; lost = 0;
        duplicated = 0; session_drops = 0; session_recoveries = 0 };
    sessions = Hashtbl.create (max 16 n_links);
    fault_rng;
    fault_log = [];
  }

let set_fault_rng t rng = t.fault_rng <- Some rng

let router t asn =
  match Itbl.find_opt t.ids asn with
  | Some id -> Array.unsafe_get t.routers id
  | None -> invalid_arg ("Network.router: unknown AS " ^ Asn.to_string asn)

let record_feed t ~now asn update =
  match Itbl.find_opt t.ids asn with
  | None -> ()
  | Some id -> (
      match Array.unsafe_get t.feed_sinks id with
      | None -> ()
      | Some (Feed_mem log) -> log := (now, update) :: !log
      | Some (Feed_disk w) -> Feed_log.append w ~time:now update)

let log_fault t ~now ev = t.fault_log <- (now, ev) :: t.fault_log

(* ------------------------------------------------------------------ *)
(* Session-layer plumbing                                               *)

let link_key a b = if Asn.compare a b <= 0 then (a, b) else (b, a)

let session_of t a b = Hashtbl.find_opt t.sessions (link_key a b)

(* Drive a freshly created FSM to Established: before the first fault a
   session has by definition been up forever, so the record starts there. *)
let established_fsm ~owner ~peer =
  let fsm = Session.create (Session.default_config owner) in
  let fsm, _ = Session.handle fsm Session.Manual_start in
  let fsm, _ = Session.handle fsm Session.Transport_connected in
  let fsm, _ =
    Session.handle fsm
      (Session.Open_received { peer_asn = peer; hold_time = 90.0 })
  in
  let fsm, _ = Session.handle fsm Session.Keepalive_received in
  fsm

let make_side ~owner ~peer =
  { owner; s_peer = peer; fsm = established_fsm ~owner ~peer;
    hold_gen = 0; keep_gen = 0; retry_gen = 0 }

let ensure_session t a b =
  let key = link_key a b in
  match Hashtbl.find_opt t.sessions key with
  | Some ls -> ls
  | None ->
      let ra = router t a and rb = router t b in
      let is_neighbor r n =
        List.exists
          (fun (nb : Router.neighbor) -> Asn.equal nb.Router.neighbor_asn n)
          (Router.config r).Router.neighbors
      in
      if not (is_neighbor ra b && is_neighbor rb a) then
        invalid_arg
          (Printf.sprintf "Network: no session between %s and %s"
             (Asn.to_string a) (Asn.to_string b));
      let ka, kb = key in
      let ls =
        {
          side_a = make_side ~owner:ka ~peer:kb;
          side_b = make_side ~owner:kb ~peer:ka;
          link_up = true;
          connecting = false;
          loss = 0.0;
          dup = 0.0;
        }
      in
      Hashtbl.replace t.sessions key ls;
      ls

let side_of ls owner =
  if Asn.equal ls.side_a.owner owner then ls.side_a else ls.side_b

(* Updates flow only when no session record exists (implicit establishment)
   or when both FSMs are Established over an up link. *)
let session_passing ls =
  ls.link_up
  && Session.state ls.side_a.fsm = Session.Established
  && Session.state ls.side_b.fsm = Session.Established

(* ------------------------------------------------------------------ *)
(* Event handling                                                       *)

let rec perform t ~now owner actions =
  List.iter
    (fun action ->
      match action with
      | Router.Send { to_asn; update } ->
          let d = t.delay ~from_asn:owner ~to_asn in
          Engine.schedule t.engine ~time:(now +. d)
            (Deliver { from_asn = owner; to_asn; update })
      | Router.Set_reuse_timer { neighbor; prefix; at } ->
          Engine.schedule t.engine ~time:at
            (Reuse_check { owner; neighbor; prefix })
      | Router.Set_mrai_timer { neighbor; prefix; at } ->
          Engine.schedule t.engine ~time:at
            (Mrai_expiry { owner; neighbor; prefix })
      | Router.Feed update -> record_feed t ~now owner update)
    actions

(* Feed one event to a side's FSM and perform the resulting actions. *)
and fsm_step t ~now ls side ev =
  let fsm', actions = Session.handle side.fsm ev in
  side.fsm <- fsm';
  List.iter (fun action -> fsm_action t ~now ls side action) actions

and fsm_action t ~now ls side action =
  let owner = side.owner and peer = side.s_peer in
  let link_delay = t.delay ~from_asn:owner ~to_asn:peer in
  let schedule_fsm ~at ~owner ~peer fsm_event =
    Engine.schedule t.engine ~time:at (Fsm_deliver { owner; peer; fsm_event })
  in
  match action with
  | Session.Initiate_transport ->
      if ls.link_up then begin
        if not ls.connecting then begin
          ls.connecting <- true;
          (* One TCP connection serves both endpoints: connected at the same
             instant so the OPENs cross symmetrically. *)
          let at = now +. link_delay in
          schedule_fsm ~at ~owner ~peer Session.Transport_connected;
          schedule_fsm ~at ~owner:peer ~peer:owner Session.Transport_connected
        end
      end
      else
        (* The connect fails once the (dead) link times it out. *)
        schedule_fsm ~at:(now +. 1.0) ~owner ~peer Session.Transport_failed
  | Session.Close_transport -> ls.connecting <- false
  | Session.Send_open ->
      schedule_fsm ~at:(now +. link_delay) ~owner:peer ~peer:owner
        (Session.Open_received { peer_asn = owner; hold_time = 90.0 })
  | Session.Send_keepalive ->
      schedule_fsm ~at:(now +. link_delay) ~owner:peer ~peer:owner
        Session.Keepalive_received
  | Session.Send_notification _ ->
      schedule_fsm ~at:(now +. link_delay) ~owner:peer ~peer:owner
        Session.Notification_received
  | Session.Start_hold_timer d ->
      (* Once Established the transport is only torn down by injected faults;
         skipping the keepalive/hold ping-pong there keeps the event count
         proportional to the number of faults, not the campaign length. *)
      if Session.state side.fsm <> Session.Established then begin
        side.hold_gen <- side.hold_gen + 1;
        Engine.schedule t.engine ~time:(now +. d)
          (Fsm_timer { owner; peer; kind = Hold; gen = side.hold_gen })
      end
  | Session.Start_keepalive_timer d ->
      if Session.state side.fsm <> Session.Established then begin
        side.keep_gen <- side.keep_gen + 1;
        Engine.schedule t.engine ~time:(now +. d)
          (Fsm_timer { owner; peer; kind = Keepalive; gen = side.keep_gen })
      end
  | Session.Start_connect_retry_timer d ->
      side.retry_gen <- side.retry_gen + 1;
      Engine.schedule t.engine ~time:(now +. d)
        (Fsm_timer { owner; peer; kind = Connect_retry; gen = side.retry_gen })
  | Session.Session_up ->
      (* Timers armed during the handshake (hold, keepalive, connect-retry)
         must not fire into the established session — established transports
         are only torn down by injected faults. *)
      side.hold_gen <- side.hold_gen + 1;
      side.keep_gen <- side.keep_gen + 1;
      side.retry_gen <- side.retry_gen + 1;
      t.stats.session_recoveries <- t.stats.session_recoveries + 1;
      log_fault t ~now (Fault_session_up { owner; peer });
      perform t ~now owner
        (Router.handle_session_up (router t owner) ~now ~neighbor:peer)
  | Session.Session_down reason ->
      t.stats.session_drops <- t.stats.session_drops + 1;
      log_fault t ~now (Fault_session_down { owner; peer; reason });
      perform t ~now owner
        (Router.handle_session_down (router t owner) ~now ~neighbor:peer)

(* Restart a torn-down side.  [Manual_start] is a no-op outside Idle, so this
   is safe to feed unconditionally. *)
and fsm_restart t ~now ls side =
  if Session.state side.fsm = Session.Idle then
    fsm_step t ~now ls side Session.Manual_start

and handle t ~now event =
  match event with
  | Deliver { from_asn; to_asn; update } -> (
      match session_of t from_asn to_asn with
      | Some ls when not (session_passing ls) ->
          (* In transit while the session died: lost with the transport. *)
          t.stats.lost <- t.stats.lost + 1
      | (Some _ | None) as s ->
          let impaired =
            match s with
            | Some ls when ls.loss > 0.0 || ls.dup > 0.0 -> Some ls
            | _ -> None
          in
          let rng_draw p =
            match (impaired, t.fault_rng) with
            | Some _, Some rng when p > 0.0 -> Rng.float rng < p
            | _ -> false
          in
          let lost = rng_draw (match impaired with
            | Some ls -> ls.loss | None -> 0.0)
          in
          if lost then begin
            t.stats.lost <- t.stats.lost + 1;
            log_fault t ~now (Fault_update_lost { from_asn; to_asn })
          end
          else begin
            let deliver_once () =
              t.stats.deliveries <- t.stats.deliveries + 1;
              (if Update.is_announce update then
                 t.stats.announcements <- t.stats.announcements + 1
               else t.stats.withdrawals <- t.stats.withdrawals + 1);
              let r = router t to_asn in
              perform t ~now to_asn
                (Router.handle_update r ~now ~from:from_asn update)
            in
            deliver_once ();
            let duplicated = rng_draw (match impaired with
              | Some ls -> ls.dup | None -> 0.0)
            in
            if duplicated then begin
              t.stats.duplicated <- t.stats.duplicated + 1;
              log_fault t ~now (Fault_update_duplicated { from_asn; to_asn });
              deliver_once ()
            end
          end)
  | Reuse_check { owner; neighbor; prefix } ->
      let r = router t owner in
      perform t ~now owner (Router.handle_reuse_check r ~now ~neighbor ~prefix)
  | Mrai_expiry { owner; neighbor; prefix } ->
      let r = router t owner in
      perform t ~now owner (Router.handle_mrai_expiry r ~now ~neighbor ~prefix)
  | Announce_origin { origin; prefix } ->
      let r = router t origin in
      let aggregator =
        { Update.aggregator_asn = origin; sent_at = now; valid = true }
      in
      perform t ~now origin (Router.originate r ~now ~aggregator prefix)
  | Withdraw_origin { origin; prefix } ->
      let r = router t origin in
      perform t ~now origin (Router.withdraw_origin r ~now prefix)
  | Link_fault { a; b; up } ->
      let ls = ensure_session t a b in
      if up && not ls.link_up then begin
        ls.link_up <- true;
        log_fault t ~now (Fault_link_up { a; b });
        (* Reconnect without waiting out a full retry period: an incoming
           connection would succeed immediately on a healed link. *)
        List.iter
          (fun side ->
            match Session.state side.fsm with
            | Session.Idle -> fsm_restart t ~now ls side
            | Session.Connect | Session.Active ->
                side.retry_gen <- side.retry_gen + 1;  (* cancel pending *)
                fsm_step t ~now ls side Session.Connect_retry_expired
            | Session.Open_sent | Session.Open_confirm
            | Session.Established -> ())
          [ ls.side_a; ls.side_b ]
      end
      else if (not up) && ls.link_up then begin
        ls.link_up <- false;
        ls.connecting <- false;
        log_fault t ~now (Fault_link_down { a; b });
        fsm_step t ~now ls ls.side_a Session.Transport_failed;
        fsm_step t ~now ls ls.side_b Session.Transport_failed;
        (* Both ends keep trying to re-establish for the rest of the outage. *)
        fsm_restart t ~now ls ls.side_a;
        fsm_restart t ~now ls ls.side_b
      end
  | Session_reset { a; b } ->
      let ls = ensure_session t a b in
      log_fault t ~now (Fault_session_reset { a; b });
      ls.connecting <- false;
      fsm_step t ~now ls ls.side_a Session.Transport_failed;
      fsm_step t ~now ls ls.side_b Session.Transport_failed;
      fsm_restart t ~now ls ls.side_a;
      fsm_restart t ~now ls ls.side_b
  | Fsm_deliver { owner; peer; fsm_event } -> (
      match session_of t owner peer with
      | None -> ()
      | Some ls ->
          let side = side_of ls owner in
          let state = Session.state side.fsm in
          (* Synthetic transport/message events can be stale by the time they
             arrive (the link flapped, the FSM moved on); feed only the ones
             the current state expects so a stale event cannot masquerade as
             an FSM error. *)
          let feed =
            match fsm_event with
            | Session.Transport_connected ->
                if ls.link_up
                   && (state = Session.Connect || state = Session.Active)
                then begin
                  ls.connecting <- false;
                  true
                end
                else false
            | Session.Transport_failed ->
                state = Session.Connect || state = Session.Active
                || state = Session.Open_sent
            | Session.Open_received _ ->
                ls.link_up && state = Session.Open_sent
            | Session.Keepalive_received ->
                ls.link_up
                && (state = Session.Open_confirm
                   || state = Session.Established)
            | Session.Notification_received ->
                ls.link_up && state <> Session.Idle
            | Session.Manual_start -> state = Session.Idle
            | _ -> true
          in
          if feed then fsm_step t ~now ls side fsm_event)
  | Fsm_timer { owner; peer; kind; gen } -> (
      match session_of t owner peer with
      | None -> ()
      | Some ls ->
          let side = side_of ls owner in
          let current, ev =
            match kind with
            | Hold -> (side.hold_gen, Session.Hold_timer_expired)
            | Keepalive -> (side.keep_gen, Session.Keepalive_timer_expired)
            | Connect_retry -> (side.retry_gen, Session.Connect_retry_expired)
          in
          if gen = current then begin
            fsm_step t ~now ls side ev;
            (* A hold-timer teardown mid-handshake drops the side to Idle;
               keep it probing until the link lets it back through. *)
            fsm_restart t ~now ls side
          end)

let schedule_announce t ~time ~origin prefix =
  Engine.schedule t.engine ~time (Announce_origin { origin; prefix })

let schedule_withdraw t ~time ~origin prefix =
  Engine.schedule t.engine ~time (Withdraw_origin { origin; prefix })

let schedule_session_reset t ~time ~a ~b =
  Engine.schedule t.engine ~time (Session_reset { a; b })

let schedule_link_down t ~time ~a ~b =
  Engine.schedule t.engine ~time (Link_fault { a; b; up = false })

let schedule_link_up t ~time ~a ~b =
  Engine.schedule t.engine ~time (Link_fault { a; b; up = true })

let set_link_impairment t ~a ~b ~loss ~duplication =
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Network.set_link_impairment: loss outside [0, 1]";
  if duplication < 0.0 || duplication > 1.0 then
    invalid_arg "Network.set_link_impairment: duplication outside [0, 1]";
  if (loss > 0.0 || duplication > 0.0) && t.fault_rng = None then
    invalid_arg "Network.set_link_impairment: no fault rng installed";
  let ls = ensure_session t a b in
  ls.loss <- loss;
  ls.dup <- duplication

let session_established t ~a ~b =
  match session_of t a b with
  | None -> true  (* never faulted: implicitly established *)
  | Some ls -> session_passing ls

let run t ~until = Engine.run t.engine ~until ~handler:(handle t)
let now t = Engine.now t.engine
let stats t = t.stats
let events_processed t = Engine.processed t.engine
let max_queue_depth t = Engine.max_pending t.engine

let rfd_stats t =
  Array.fold_left
    (fun (supp, rel) r ->
      let s = Router.stats r in
      (supp + s.Router.rfd_suppressions, rel + s.Router.rfd_releases))
    (0, 0) t.routers

let table_totals t =
  Array.fold_left
    (fun (acc : Router.table_sizes) r ->
      let ts = Router.table_sizes r in
      {
        Router.rib_in_entries =
          acc.Router.rib_in_entries + ts.Router.rib_in_entries;
        rfd_states = acc.Router.rfd_states + ts.Router.rfd_states;
        adj_out_entries =
          acc.Router.adj_out_entries + ts.Router.adj_out_entries;
        mrai_states = acc.Router.mrai_states + ts.Router.mrai_states;
        loc_rib_entries =
          acc.Router.loc_rib_entries + ts.Router.loc_rib_entries;
      })
    {
      Router.rib_in_entries = 0;
      rfd_states = 0;
      adj_out_entries = 0;
      mrai_states = 0;
      loc_rib_entries = 0;
    }
    t.routers

let fault_log t = List.rev t.fault_log

let sink_of t asn =
  match Itbl.find_opt t.ids asn with
  | None -> None
  | Some id -> t.feed_sinks.(id)

let feed t asn =
  match sink_of t asn with
  | None -> []
  | Some (Feed_mem l) -> List.rev !l
  | Some (Feed_disk w) -> Feed_log.entries (Feed_log.flush w)

let feed_spilled t asn =
  match sink_of t asn with
  | Some (Feed_disk w) -> Some (Feed_log.flush w)
  | Some (Feed_mem _) | None -> None

let monitored t = t.monitored_set
