open Because_bgp

type event =
  | Deliver of { from_asn : Asn.t; to_asn : Asn.t; update : Update.t }
  | Reuse_check of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Mrai_expiry of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Announce_origin of { origin : Asn.t; prefix : Prefix.t }
  | Withdraw_origin of { origin : Asn.t; prefix : Prefix.t }

type stats = {
  mutable deliveries : int;
  mutable announcements : int;
  mutable withdrawals : int;
}

type t = {
  engine : event Engine.t;
  routers : (Asn.t, Router.t) Hashtbl.t;
  delay : from_asn:Asn.t -> to_asn:Asn.t -> float;
  monitored_set : Asn.Set.t;
  feeds : (Asn.t, (float * Update.t) list ref) Hashtbl.t;
  stats : stats;
}

let create ~configs ~delay ~monitored =
  let routers = Hashtbl.create (List.length configs) in
  List.iter
    (fun (cfg : Router.config) ->
      if Hashtbl.mem routers cfg.Router.asn then
        invalid_arg "Network.create: duplicate router";
      Hashtbl.replace routers cfg.Router.asn (Router.create cfg))
    configs;
  {
    engine = Engine.create ();
    routers;
    delay;
    monitored_set = monitored;
    feeds = Hashtbl.create (Asn.Set.cardinal monitored);
    stats = { deliveries = 0; announcements = 0; withdrawals = 0 };
  }

let router t asn =
  match Hashtbl.find_opt t.routers asn with
  | Some r -> r
  | None -> invalid_arg ("Network.router: unknown AS " ^ Asn.to_string asn)

let record_feed t ~now asn update =
  if Asn.Set.mem asn t.monitored_set then begin
    let log =
      match Hashtbl.find_opt t.feeds asn with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.replace t.feeds asn l;
          l
    in
    log := (now, update) :: !log
  end

let rec perform t ~now owner actions =
  List.iter
    (fun action ->
      match action with
      | Router.Send { to_asn; update } ->
          let d = t.delay ~from_asn:owner ~to_asn in
          Engine.schedule t.engine ~time:(now +. d)
            (Deliver { from_asn = owner; to_asn; update })
      | Router.Set_reuse_timer { neighbor; prefix; at } ->
          Engine.schedule t.engine ~time:at
            (Reuse_check { owner; neighbor; prefix })
      | Router.Set_mrai_timer { neighbor; prefix; at } ->
          Engine.schedule t.engine ~time:at
            (Mrai_expiry { owner; neighbor; prefix })
      | Router.Feed update -> record_feed t ~now owner update)
    actions

and handle t ~now event =
  match event with
  | Deliver { from_asn; to_asn; update } ->
      t.stats.deliveries <- t.stats.deliveries + 1;
      (if Update.is_announce update then
         t.stats.announcements <- t.stats.announcements + 1
       else t.stats.withdrawals <- t.stats.withdrawals + 1);
      let r = router t to_asn in
      perform t ~now to_asn (Router.handle_update r ~now ~from:from_asn update)
  | Reuse_check { owner; neighbor; prefix } ->
      let r = router t owner in
      perform t ~now owner (Router.handle_reuse_check r ~now ~neighbor ~prefix)
  | Mrai_expiry { owner; neighbor; prefix } ->
      let r = router t owner in
      perform t ~now owner (Router.handle_mrai_expiry r ~now ~neighbor ~prefix)
  | Announce_origin { origin; prefix } ->
      let r = router t origin in
      let aggregator =
        { Update.aggregator_asn = origin; sent_at = now; valid = true }
      in
      perform t ~now origin (Router.originate r ~now ~aggregator prefix)
  | Withdraw_origin { origin; prefix } ->
      let r = router t origin in
      perform t ~now origin (Router.withdraw_origin r ~now prefix)

let schedule_announce t ~time ~origin prefix =
  Engine.schedule t.engine ~time (Announce_origin { origin; prefix })

let schedule_withdraw t ~time ~origin prefix =
  Engine.schedule t.engine ~time (Withdraw_origin { origin; prefix })

let run t ~until = Engine.run t.engine ~until ~handler:(handle t)
let now t = Engine.now t.engine
let stats t = t.stats

let feed t asn =
  match Hashtbl.find_opt t.feeds asn with
  | Some l -> List.rev !l
  | None -> []

let monitored t = t.monitored_set
