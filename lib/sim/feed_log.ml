(* Streaming collector-feed log.

   At Internet scale a single full-feed vantage point observes hundreds of
   thousands of updates; holding every monitored AS's feed as an in-memory
   list makes campaign RSS proportional to the whole update volume.  This
   module gives the network a bounded buffer per vantage that spills to a
   compact binary on-disk log, so resident feed state is O(buffer), not
   O(observations).

   The on-disk format reuses the checkpoint layer's fixed-width Codec: each
   flush appends one self-delimiting block — a length-prefixed payload of
   (float time, update) records followed by the payload's CRC-32 — so a torn
   final write is detected rather than silently mis-decoded, exactly like a
   checkpoint envelope.  Floats travel as their 64 bits, so a feed read back
   from disk is bit-for-bit the feed that was recorded. *)

open Because_bgp
module Codec = Because_recover.Codec

(* --- wire codecs ---

   Shared with the scenario checkpoint layer (Recovery re-exports them for
   its shard-result envelopes): the RFC 4271 wire codec is deliberately
   lossy (whole-second timestamps, collapsed invalid aggregators), so both
   durable forms of an update use this exact encoding instead. *)

let w_asn w a = Codec.int w (Asn.to_int a)
let r_asn r = Asn.of_int (Codec.read_int r)

let w_prefix w p =
  Codec.i64 w (Int64.of_int32 (Prefix.network p));
  Codec.int w (Prefix.length p)

let r_prefix r =
  let network = Int64.to_int32 (Codec.read_i64 r) in
  let length = Codec.read_int r in
  Prefix.make network length

let w_aggregator w (a : Update.aggregator) =
  w_asn w a.Update.aggregator_asn;
  Codec.float w a.Update.sent_at;
  Codec.bool w a.Update.valid

let r_aggregator r : Update.aggregator =
  let aggregator_asn = r_asn r in
  let sent_at = Codec.read_float r in
  let valid = Codec.read_bool r in
  { Update.aggregator_asn; sent_at; valid }

let w_update w = function
  | Update.Announce { prefix; as_path; aggregator } ->
      Codec.u8 w 0;
      w_prefix w prefix;
      Codec.list w w_asn as_path;
      Codec.option w w_aggregator aggregator
  | Update.Withdraw { prefix } ->
      Codec.u8 w 1;
      w_prefix w prefix

let r_update r =
  match Codec.read_u8 r with
  | 0 ->
      let prefix = r_prefix r in
      let as_path = Codec.read_list r r_asn in
      let aggregator = Codec.read_option r r_aggregator in
      Update.Announce { prefix; as_path; aggregator }
  | 1 -> Update.Withdraw { prefix = r_prefix r }
  | tag ->
      raise (Codec.Malformed (Printf.sprintf "unknown update tag %d" tag))

(* --- spill configuration --- *)

type spill = { dir : string; buffer : int }

let default_buffer = 4096

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- writer ---

   The file stays closed between flushes: a 10k-AS world with 400+ monitored
   vantages per shard would otherwise exhaust the descriptor limit.  A flush
   is one open-append-close, so at most one descriptor is live at a time per
   writer and writers are safe to hold by the hundred. *)

type writer = {
  path : string;
  cap : int;
  mutable pending : (float * Update.t) list;  (* newest first *)
  mutable n_pending : int;
}

let writer ~dir ~asn ~buffer =
  mkdir_p dir;
  let path =
    Filename.concat dir (Printf.sprintf "feed-%d.log" (Asn.to_int asn))
  in
  (* A stale log from a previous run under the same directory must not be
     replayed into this one. *)
  if Sys.file_exists path then Sys.remove path;
  { path; cap = max 1 buffer; pending = []; n_pending = 0 }

let path w = w.path

let flush w =
  (match w.pending with
  | [] -> ()
  | pending ->
      let body = Codec.writer () in
      List.iter
        (fun (time, u) ->
          Codec.float body time;
          w_update body u)
        (List.rev pending);
      let payload = Codec.contents body in
      let block = Codec.writer () in
      Codec.string block payload;
      Codec.i64 block (Int64.of_int32 (Codec.crc32_string payload));
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 w.path
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Codec.contents block));
      w.pending <- [];
      w.n_pending <- 0);
  w.path

let append w ~time update =
  w.pending <- (time, update) :: w.pending;
  w.n_pending <- w.n_pending + 1;
  if w.n_pending >= w.cap then ignore (flush w)

(* --- reader ---

   Blocks stream through a fixed window: one block's payload is resident at
   a time, so replaying a multi-gigabyte feed log never materializes it. *)

let iter path f =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let rec block () =
          if pos_in ic < len then begin
            if pos_in ic + 8 > len then
              raise (Codec.Malformed "feed log: torn block header");
            let n = Int64.to_int (String.get_int64_le (really_input_string ic 8) 0) in
            if n < 0 || pos_in ic + n + 8 > len then
              raise (Codec.Malformed "feed log: torn block body");
            let payload = really_input_string ic n in
            let crc = Int64.to_int32 (String.get_int64_le (really_input_string ic 8) 0) in
            if not (Int32.equal crc (Codec.crc32_string payload)) then
              raise (Codec.Malformed "feed log: block checksum mismatch");
            let r = Codec.reader payload in
            while not (Codec.at_end r) do
              let time = Codec.read_float r in
              let u = r_update r in
              f time u
            done;
            block ()
          end
        in
        block ())
  end

let entries path =
  let acc = ref [] in
  iter path (fun time u -> acc := (time, u) :: !acc);
  List.rev !acc
