open Because_bgp

type op =
  | Announce of { time : float; origin : Asn.t; prefix : Prefix.t }
  | Withdraw of { time : float; origin : Asn.t; prefix : Prefix.t }
  | Session_reset of { time : float; a : Asn.t; b : Asn.t }
  | Link_down of { time : float; a : Asn.t; b : Asn.t }
  | Link_up of { time : float; a : Asn.t; b : Asn.t }
  | Impair of { a : Asn.t; b : Asn.t; loss : float; duplication : float }

type t = {
  mutable ops : op list;  (* newest first *)
  mutable ranks : int Prefix.Map.t;  (* prefix -> first-touch rank *)
  mutable n_prefixes : int;
}

let create () = { ops = []; ranks = Prefix.Map.empty; n_prefixes = 0 }

let touch t prefix =
  if not (Prefix.Map.mem prefix t.ranks) then begin
    t.ranks <- Prefix.Map.add prefix t.n_prefixes t.ranks;
    t.n_prefixes <- t.n_prefixes + 1
  end

let push t op = t.ops <- op :: t.ops

let announce t ~time ~origin prefix =
  touch t prefix;
  push t (Announce { time; origin; prefix })

let withdraw t ~time ~origin prefix =
  touch t prefix;
  push t (Withdraw { time; origin; prefix })

let session_reset t ~time ~a ~b = push t (Session_reset { time; a; b })
let link_down t ~time ~a ~b = push t (Link_down { time; a; b })
let link_up t ~time ~a ~b = push t (Link_up { time; a; b })

let impair t ~a ~b ~loss ~duplication =
  push t (Impair { a; b; loss; duplication })

let ops t = List.rev t.ops
let n_prefixes t = t.n_prefixes
let rank t prefix = Prefix.Map.find_opt prefix t.ranks

let prefixes t =
  Prefix.Map.bindings t.ranks
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
  |> List.map fst

let has_faults t =
  List.exists
    (function
      | Session_reset _ | Link_down _ | Link_up _ -> true
      | Impair { loss; duplication; _ } -> loss > 0.0 || duplication > 0.0
      | Announce _ | Withdraw _ -> false)
    t.ops

let install ?keep t net =
  let keep = match keep with Some f -> f | None -> fun _ -> true in
  List.iter
    (fun op ->
      match op with
      | Announce { time; origin; prefix } ->
          if keep prefix then Network.schedule_announce net ~time ~origin prefix
      | Withdraw { time; origin; prefix } ->
          if keep prefix then Network.schedule_withdraw net ~time ~origin prefix
      | Session_reset { time; a; b } ->
          Network.schedule_session_reset net ~time ~a ~b
      | Link_down { time; a; b } -> Network.schedule_link_down net ~time ~a ~b
      | Link_up { time; a; b } -> Network.schedule_link_up net ~time ~a ~b
      | Impair { a; b; loss; duplication } ->
          Network.set_link_impairment net ~a ~b ~loss ~duplication)
    (ops t)
