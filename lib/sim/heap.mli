(** Binary min-heap keyed by (time, insertion sequence).

    Equal-time events pop in insertion order, which keeps the simulator
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
