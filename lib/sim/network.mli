(** AS-level BGP network simulation.

    Wires one {!Because_bgp.Router} per AS to the event {!Engine}: [Send]
    actions become delayed deliveries over the inter-AS link, timer requests
    become future events, and [Feed] actions are recorded — timestamped — for
    every monitored AS, forming the raw vantage-point update streams the
    measurement pipeline consumes. *)

open Because_bgp

type event =
  | Deliver of { from_asn : Asn.t; to_asn : Asn.t; update : Update.t }
  | Reuse_check of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Mrai_expiry of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Announce_origin of { origin : Asn.t; prefix : Prefix.t }
      (** Beacon announcement: stamped with an aggregator carrying the send
          time. *)
  | Withdraw_origin of { origin : Asn.t; prefix : Prefix.t }

type stats = {
  mutable deliveries : int;      (** Updates delivered over sessions. *)
  mutable announcements : int;   (** ... of which announcements. *)
  mutable withdrawals : int;     (** ... of which withdrawals. *)
}

type t

val create :
  configs:Router.config list ->
  delay:(from_asn:Asn.t -> to_asn:Asn.t -> float) ->
  monitored:Asn.Set.t ->
  t
(** [delay] gives the one-way propagation delay of each directed session;
    [monitored] lists the ASs hosting a full-feed vantage-point session. *)

val schedule_announce : t -> time:float -> origin:Asn.t -> Prefix.t -> unit
val schedule_withdraw : t -> time:float -> origin:Asn.t -> Prefix.t -> unit

val run : t -> until:float -> unit
(** Process events up to [until] (inclusive of events at [until]). *)

val now : t -> float
val router : t -> Asn.t -> Router.t
val stats : t -> stats

val feed : t -> Asn.t -> (float * Update.t) list
(** Chronological full-feed observations of a monitored AS ([\[\]] when the
    AS is not monitored or saw nothing). *)

val monitored : t -> Asn.Set.t
