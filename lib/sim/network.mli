(** AS-level BGP network simulation.

    Wires one {!Because_bgp.Router} per AS to the event {!Engine}: [Send]
    actions become delayed deliveries over the inter-AS link, timer requests
    become future events, and [Feed] actions are recorded — timestamped — for
    every monitored AS, forming the raw vantage-point update streams the
    measurement pipeline consumes.

    {2 Fault layer}

    Sessions are implicitly Established until a fault first touches their
    link; from then on the link carries two {!Because_bgp.Session} FSMs (one
    per endpoint) driven through the event loop — transport teardown on
    {!schedule_link_down}/{!schedule_session_reset}, reconnect and OPEN /
    KEEPALIVE exchange on recovery, with route withdrawal on [Session_down]
    and full re-advertisement on [Session_up].  Updates in flight over a
    non-established session are lost, and per-link loss/duplication
    impairments can be installed with {!set_link_impairment}.  Every fault
    transition is recorded in {!fault_log}.  A campaign that injects no
    faults never creates a session record, so its event stream — and thus
    its outcome — is bit-for-bit the fault-free one. *)

open Because_bgp

type timer_kind = Hold | Keepalive | Connect_retry

type event =
  | Deliver of { from_asn : Asn.t; to_asn : Asn.t; update : Update.t }
  | Reuse_check of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Mrai_expiry of { owner : Asn.t; neighbor : Asn.t; prefix : Prefix.t }
  | Announce_origin of { origin : Asn.t; prefix : Prefix.t }
      (** Beacon announcement: stamped with an aggregator carrying the send
          time. *)
  | Withdraw_origin of { origin : Asn.t; prefix : Prefix.t }
  | Link_fault of { a : Asn.t; b : Asn.t; up : bool }
      (** Fault start/stop: the physical link between [a] and [b] goes down
          ([up = false]) or comes back ([up = true]). *)
  | Session_reset of { a : Asn.t; b : Asn.t }
      (** Transport reset with the link staying up: both endpoints tear down
          and immediately re-establish. *)
  | Fsm_deliver of { owner : Asn.t; peer : Asn.t; fsm_event : Session.event }
      (** Session-layer message/transport event for [owner]'s FSM. *)
  | Fsm_timer of { owner : Asn.t; peer : Asn.t; kind : timer_kind; gen : int }
      (** Session timer expiry; stale unless [gen] matches the side's
          current generation. *)

(** What the fault layer did, for the campaign's outcome record. *)
type fault_event =
  | Fault_link_down of { a : Asn.t; b : Asn.t }
  | Fault_link_up of { a : Asn.t; b : Asn.t }
  | Fault_session_reset of { a : Asn.t; b : Asn.t }
  | Fault_session_down of { owner : Asn.t; peer : Asn.t; reason : string }
  | Fault_session_up of { owner : Asn.t; peer : Asn.t }
  | Fault_update_lost of { from_asn : Asn.t; to_asn : Asn.t }
  | Fault_update_duplicated of { from_asn : Asn.t; to_asn : Asn.t }

type stats = {
  mutable deliveries : int;      (** Updates delivered over sessions. *)
  mutable announcements : int;   (** ... of which announcements. *)
  mutable withdrawals : int;     (** ... of which withdrawals. *)
  mutable lost : int;            (** Updates dropped by faults/impairments. *)
  mutable duplicated : int;      (** Updates delivered twice. *)
  mutable session_drops : int;       (** [Session_down] transitions. *)
  mutable session_recoveries : int;  (** [Session_up] transitions. *)
}

type t

val create :
  ?fault_rng:Because_stats.Rng.t ->
  ?feed_spill:Feed_log.spill ->
  configs:Router.config list ->
  delay:(from_asn:Asn.t -> to_asn:Asn.t -> float) ->
  monitored:Asn.Set.t ->
  unit ->
  t
(** [delay] gives the one-way propagation delay of each directed session;
    [monitored] lists the ASs hosting a full-feed vantage-point session.
    [fault_rng] drives loss/duplication impairments (required before
    {!set_link_impairment} installs a non-zero rate).  [feed_spill] streams
    monitored feeds through a bounded buffer to per-vantage on-disk logs
    (see {!Feed_log}) instead of accumulating them in memory; {!feed}
    replays a spilled log bit-for-bit, so observers cannot tell the
    difference. *)

val set_fault_rng : t -> Because_stats.Rng.t -> unit

val schedule_announce : t -> time:float -> origin:Asn.t -> Prefix.t -> unit
val schedule_withdraw : t -> time:float -> origin:Asn.t -> Prefix.t -> unit

val schedule_session_reset : t -> time:float -> a:Asn.t -> b:Asn.t -> unit
(** Reset the BGP session between neighbors [a] and [b] at [time]: routes
    learned over it are withdrawn (path re-exploration downstream) and the
    session re-establishes through the full FSM handshake. *)

val schedule_link_down : t -> time:float -> a:Asn.t -> b:Asn.t -> unit
(** Take the physical link down: sessions tear down and the endpoints keep
    retrying (connect-retry timer) until {!schedule_link_up}. *)

val schedule_link_up : t -> time:float -> a:Asn.t -> b:Asn.t -> unit

val set_link_impairment :
  t -> a:Asn.t -> b:Asn.t -> loss:float -> duplication:float -> unit
(** Install per-update loss/duplication probabilities on the session between
    [a] and [b].  Requires a fault rng when either rate is positive. *)

val session_established : t -> a:Asn.t -> b:Asn.t -> bool
(** False while the session is torn down or re-handshaking.  Links never
    touched by a fault are implicitly established. *)

val run : t -> until:float -> unit
(** Process events up to [until] (inclusive of events at [until]). *)

val now : t -> float
val router : t -> Asn.t -> Router.t
val stats : t -> stats

val events_processed : t -> int
(** Total simulator events handled — the throughput denominator reported by
    the [sim] bench and surfaced in [Campaign.outcome.events]. *)

val max_queue_depth : t -> int
(** High-water mark of the event queue over the run so far. *)

val rfd_stats : t -> int * int
(** [(suppressions, releases)] summed over every router — the network-wide
    RFD transition tallies.  Walks the router table; call after the run. *)

val table_totals : t -> Router.table_sizes
(** Router cache-table entry counts summed over every router — the
    telemetry memory gauges.  Walks every router; call after the run. *)

val fault_log : t -> (float * fault_event) list
(** Every fault-layer transition, chronological. *)

val feed : t -> Asn.t -> (float * Update.t) list
(** Chronological full-feed observations of a monitored AS ([\[\]] when the
    AS is not monitored or saw nothing).  With [feed_spill], flushes and
    replays the on-disk log — identical to the in-memory result. *)

val feed_spilled : t -> Asn.t -> string option
(** With [feed_spill]: flush the AS's buffered observations and return the
    path of its on-disk log (so callers can hand the log around without
    materializing it).  [None] when the AS is unmonitored or feeds are
    in-memory. *)

val monitored : t -> Asn.Set.t
