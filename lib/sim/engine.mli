(** Generic discrete-event loop. *)

type 'a t

val create : unit -> 'a t

val now : 'a t -> float
(** Time of the event currently (or last) being processed; 0 initially. *)

val schedule : 'a t -> time:float -> 'a -> unit
(** Events scheduled in the past are clamped to [now] (they run next). *)

val pending : 'a t -> int

val processed : 'a t -> int
(** Total events handled so far — the simulator's throughput denominator. *)

val max_pending : 'a t -> int
(** High-water mark of the event queue — the simulator's peak memory
    pressure, surfaced as the [sim.shard*.max_queue_depth] gauge. *)

val run : 'a t -> until:float -> handler:(now:float -> 'a -> unit) -> unit
(** Process events in time order until the queue drains or the next event
    would exceed [until].  The handler may schedule further events. *)

val step : 'a t -> handler:(now:float -> 'a -> unit) -> bool
(** Process a single event; [false] when the queue is empty. *)
