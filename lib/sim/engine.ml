type 'a t = {
  heap : 'a Heap.t;
  mutable clock : float;
  mutable processed : int;
  mutable max_pending : int;
}

let create () =
  { heap = Heap.create (); clock = 0.0; processed = 0; max_pending = 0 }

let now t = t.clock

let schedule t ~time payload =
  Heap.push t.heap ~time:(Float.max time t.clock) payload;
  let depth = Heap.size t.heap in
  if depth > t.max_pending then t.max_pending <- depth

let pending t = Heap.size t.heap
let processed t = t.processed
let max_pending t = t.max_pending

let step t ~handler =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, payload) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      handler ~now:time payload;
      true

let run t ~until ~handler =
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.heap with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some _ -> ignore (step t ~handler)
  done
