(** Streaming collector-feed log: bounded in-memory buffers that spill to a
    compact binary on-disk log, so monitored-feed state stays O(buffer)
    instead of O(observations) at Internet scale.

    The on-disk format reuses {!Because_recover.Codec} framing: each flush
    appends one self-delimiting block (length-prefixed payload + CRC-32), so
    torn tails are detected.  Floats round-trip exactly; a feed replayed
    from disk is bit-for-bit the feed that was recorded. *)

open Because_bgp

(** {1 Spill configuration} *)

type spill = {
  dir : string;  (** directory the per-vantage [feed-<asn>.log] files live in *)
  buffer : int;  (** updates buffered in memory before a flush to disk *)
}

val default_buffer : int
(** Default in-memory buffer size (4096 updates per vantage). *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents. *)

(** {1 Writer} *)

type writer
(** Append-only log for one vantage point's feed.  The underlying file is
    only open during a flush, so holding hundreds of writers does not
    consume hundreds of file descriptors. *)

val writer : dir:string -> asn:Asn.t -> buffer:int -> writer
(** [writer ~dir ~asn ~buffer] creates (and truncates any stale log at) the
    per-vantage path [dir/feed-<asn>.log], creating [dir] as needed. *)

val append : writer -> time:float -> Update.t -> unit
(** Buffer one observation; flushes automatically when the buffer fills. *)

val flush : writer -> string
(** Force any buffered entries to disk and return the log's path.  A feed
    with no observations may have no file at all; {!entries} and {!iter}
    treat a missing file as an empty feed. *)

val path : writer -> string

(** {1 Reader} *)

val iter : string -> (float -> Update.t -> unit) -> unit
(** [iter path f] streams the log in recorded order, holding one flushed
    block in memory at a time.  Raises {!Because_recover.Codec.Malformed}
    on a torn or corrupted block. *)

val entries : string -> (float * Update.t) list
(** Materialize a log in recorded order ([] if the file does not exist). *)

(** {1 Wire codecs}

    Shared with the checkpoint layer ({!Because_scenario.Recovery}) so an
    update has exactly one durable encoding. *)

val w_asn : Because_recover.Codec.writer -> Asn.t -> unit
val r_asn : Because_recover.Codec.reader -> Asn.t
val w_prefix : Because_recover.Codec.writer -> Prefix.t -> unit
val r_prefix : Because_recover.Codec.reader -> Prefix.t
val w_aggregator : Because_recover.Codec.writer -> Update.aggregator -> unit
val r_aggregator : Because_recover.Codec.reader -> Update.aggregator
val w_update : Because_recover.Codec.writer -> Update.t -> unit
val r_update : Because_recover.Codec.reader -> Update.t
