(** Per-prefix sharded, domain-parallel simulation driver.

    BGP prefixes never interact inside the simulator: every router table
    (adj-RIB-in, RFD state, loc-RIB, adj-RIB-out, MRAI gates, feed
    de-duplication) is keyed by prefix, and the session layer is
    prefix-agnostic — link and session faults evolve identically whatever
    traffic crosses them.  A campaign therefore decomposes exactly: partition
    the prefix set of a {!Script} into shards, build one {!Network} per shard
    from the shared immutable router configs and delay function, replay the
    full fault plan into each shard, run the shards on the shared domain
    pool, and merge.

    With no faults and no impairments the merged result is bit-for-bit
    identical to the sequential run for any [jobs] (property-tested); with
    faults, per-shard loss/duplication draws come from pre-split RNG streams
    so the outcome is deterministic for a given [jobs]. *)

open Because_bgp

type result = {
  feeds : (Asn.t * (float * Update.t) list) list;
      (** Chronological per-vantage observations, every monitored AS
          present. *)
  stats : Network.stats;
      (** Traffic counters summed over shards; session transition counters
          counted once (identical in every shard). *)
  fault_log : (float * Network.fault_event) list;
      (** Chronological; link/session transitions de-duplicated across
          shards, update loss/duplication kept per shard. *)
  events : int;  (** Total simulator events processed, summed over shards. *)
  shards : int;  (** Number of shards actually run. *)
  shard_events : int array;
      (** Events processed per shard (length [shards]) — the load-balance
          view the telemetry shard table and Chrome trace lanes expose. *)
}

val feed : result -> Asn.t -> (float * Update.t) list

type shard_result = {
  shard_feeds : (Asn.t * (float * Update.t) list) list;
  shard_stats : Network.stats;
  shard_fault_log : (float * Network.fault_event) list;
  shard_events_count : int;
}
(** Everything one finished shard contributes to the merge — the unit of
    simulation checkpointing. *)

type checkpoint_hooks = {
  load_shard : shard:int -> shards:int -> shard_result option;
  save_shard : shard:int -> shards:int -> shard_result -> unit;
}
(** Durable-storage callbacks supplied by the recovery layer.  Keys carry
    the shard count because a different [shards] partitions prefixes
    differently — a saved result is only valid for the exact partition it
    was computed under.  [save_shard] runs inside worker domains and must
    be thread-safe. *)

val run :
  ?fault_rng:Because_stats.Rng.t ->
  ?telemetry:Because_telemetry.Registry.t ->
  ?checkpoint:checkpoint_hooks ->
  jobs:int ->
  configs:Router.config list ->
  delay:(from_asn:Asn.t -> to_asn:Asn.t -> float) ->
  monitored:Asn.Set.t ->
  until:float ->
  Script.t ->
  result
(** Replay [script] and run to [until] over [min jobs n_prefixes] shards.
    [jobs = 1] replays into a single network in recording order, preserving
    the historical sequential event stream exactly.  [fault_rng] is split
    into one independent stream per shard.  Raises [Invalid_argument] if
    [jobs < 1].

    [checkpoint] short-circuits finished shards: a shard whose saved result
    loads is returned without building a network or replaying anything (its
    pre-split fault stream is simply never drawn — skipping cannot perturb
    other shards), and each freshly simulated shard is saved on completion.
    Restored shards count into the [sim.shards_restored] telemetry counter
    and skip their replay span.

    [telemetry] (default {!Because_telemetry.Registry.disabled}) receives,
    per shard and from inside the worker domain that ran it: a
    [sim.shard<i>.replay] span, the [sim.*] traffic/RFD counters, table-size
    gauges and the per-shard event gauge; the cross-shard merge runs under a
    [sim.merge] span.  Telemetry never touches the RNG streams or event
    order, so a disabled registry is bit-for-bit free (property-tested). *)
