(** Per-prefix sharded, domain-parallel simulation driver.

    BGP prefixes never interact inside the simulator: every router table
    (adj-RIB-in, RFD state, loc-RIB, adj-RIB-out, MRAI gates, feed
    de-duplication) is keyed by prefix, and the session layer is
    prefix-agnostic — link and session faults evolve identically whatever
    traffic crosses them.  A campaign therefore decomposes exactly: partition
    the prefix set of a {!Script} into shards, build one {!Network} per shard
    from the shared immutable router configs and delay function, replay the
    full fault plan into each shard, run the shards on the shared domain
    pool, and merge.

    Shards may outnumber pool seats: the work-stealing pool runs at most
    [jobs] shard networks at a time and queues the rest, so peak live router
    state is bounded by the seat count while per-shard state shrinks with
    the shard count — the spill mode for Internet-scale prefix sets.

    With no faults and no impairments the merged result is bit-for-bit
    identical to the sequential run for any [jobs] and any [shards]
    (property-tested); with faults, per-shard loss/duplication draws come
    from pre-split RNG streams so the outcome is deterministic for a given
    shard count. *)

open Because_bgp

(** One shard's collected vantage feeds: materialized in memory, or left as
    the per-vantage on-disk spill logs the network wrote (paths only). *)
type feed_store =
  | Feeds_mem of (Asn.t * (float * Update.t) list) list
  | Feeds_spilled of (Asn.t * string) list

val store_entries : feed_store -> (Asn.t * (float * Update.t) list) list
(** Materialize a store (reads spilled logs).  Used by the checkpoint layer,
    which always persists feeds in materialized form. *)

type result = {
  stats : Network.stats;
      (** Traffic counters summed over shards; session transition counters
          counted once (identical in every shard). *)
  fault_log : (float * Network.fault_event) list;
      (** Chronological; link/session transitions de-duplicated across
          shards, update loss/duplication kept per shard. *)
  events : int;  (** Total simulator events processed, summed over shards. *)
  shards : int;  (** Number of shards actually run. *)
  shard_events : int array;
      (** Events processed per shard (length [shards]) — the load-balance
          view the telemetry shard table and Chrome trace lanes expose. *)
  monitored : Asn.Set.t;  (** Vantage ASs the feeds were collected for. *)
  rank_of : Prefix.t -> int;
      (** First-touch script rank — the cross-prefix tie-break key. *)
  stores : feed_store array;
      (** Per-shard feed stores (length [shards]); consume via {!feed} /
          {!feeds}, which merge lazily. *)
}

val feed : result -> Asn.t -> (float * Update.t) list
(** Chronological observations of one vantage, merged across shards on
    demand (stable sort on time, cross-prefix ties by first-touch rank) —
    identical to the sequential network's feed.  Spilled stores are replayed
    from disk here, one vantage at a time, so the whole update volume is
    never resident at once. *)

val feeds : result -> (Asn.t * (float * Update.t) list) list
(** Every monitored vantage's merged feed, ascending ASN.  Materializes
    everything — prefer {!feed} one vantage at a time at scale. *)

type shard_result = {
  shard_feeds : feed_store;
  shard_stats : Network.stats;
  shard_fault_log : (float * Network.fault_event) list;
  shard_events_count : int;
}
(** Everything one finished shard contributes to the merge — the unit of
    simulation checkpointing. *)

type checkpoint_hooks = {
  load_shard : shard:int -> shards:int -> shard_result option;
  save_shard : shard:int -> shards:int -> shard_result -> unit;
}
(** Durable-storage callbacks supplied by the recovery layer.  Keys carry
    the shard count because a different [shards] partitions prefixes
    differently — a saved result is only valid for the exact partition it
    was computed under.  [save_shard] runs inside worker domains and must
    be thread-safe. *)

val run :
  ?fault_rng:Because_stats.Rng.t ->
  ?telemetry:Because_telemetry.Registry.t ->
  ?checkpoint:checkpoint_hooks ->
  ?shards:int ->
  ?feed_spill:Feed_log.spill ->
  jobs:int ->
  configs:Router.config list ->
  delay:(from_asn:Asn.t -> to_asn:Asn.t -> float) ->
  monitored:Asn.Set.t ->
  until:float ->
  Script.t ->
  result
(** Replay [script] and run to [until] over
    [min (max 1 shards) n_prefixes] shards, where [shards] defaults to
    [jobs].  [jobs = 1] with default sharding replays into a single network
    in recording order, preserving the historical sequential event stream
    exactly.  [shards > jobs] queues the excess on the pool — at most [jobs]
    shard networks are live at once.  [fault_rng] is split into one
    independent stream per shard (so with faults the outcome is a function
    of the shard count, as it previously was of [jobs]).  Raises
    [Invalid_argument] if [jobs < 1] or [shards < 1].

    [feed_spill] routes every shard's monitored feeds through bounded
    buffers into per-vantage binary logs under
    [dir/shard<i>of<n>/feed-<asn>.log]; {!feed} replays them bit-for-bit
    identical to the in-memory mode (property-tested).

    [checkpoint] short-circuits finished shards: a shard whose saved result
    loads is returned without building a network or replaying anything (its
    pre-split fault stream is simply never drawn — skipping cannot perturb
    other shards), and each freshly simulated shard is saved on completion.
    Restored shards count into the [sim.shards_restored] telemetry counter
    and skip their replay span.

    [telemetry] (default {!Because_telemetry.Registry.disabled}) receives,
    per shard and from inside the worker domain that ran it: a
    [sim.shard<i>.replay] span, the [sim.*] traffic/RFD counters, table-size
    gauges and the per-shard event gauge; the cross-shard merge runs under a
    [sim.merge] span.  Telemetry never touches the RNG streams or event
    order, so a disabled registry is bit-for-bit free (property-tested). *)
