(** Fixed-bin histograms.

    Used for the marginal-posterior pictures (Fig. 9), the Burst announcement
    distributions (Fig. 10), and general reporting. *)

type t = {
  lo : float;            (** Inclusive lower edge of the first bin. *)
  hi : float;            (** Exclusive upper edge of the last bin. *)
  counts : int array;    (** One count per bin. *)
  total : int;           (** Number of in-range observations. *)
}

val create : lo:float -> hi:float -> bins:int -> t
(** Empty histogram with [bins] equal-width bins over [\[lo, hi)]. *)

val add : t -> float -> t
(** Add one observation.  Values outside [\[lo, hi)] are clamped into the
    first/last bin (posterior samples live on a known support, so clamping
    only absorbs floating-point edge cases). *)

val of_array : lo:float -> hi:float -> bins:int -> float array -> t

val bin_center : t -> int -> float
val bin_width : t -> float

val densities : t -> float array
(** Counts normalised so the histogram integrates to 1. *)

val mode_bin : t -> int
(** Index of the fullest bin (ties break low). *)

val heights : t -> float array
(** Raw counts as floats; convenient for regression over bin heights. *)

val sparkline : t -> string
(** Compact unicode bar rendering for terminal output. *)

val pp : Format.formatter -> t -> unit
