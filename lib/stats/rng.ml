type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let state t = Printf.sprintf "%016Lx" t.state

let of_state s =
  if String.length s <> 16 then
    invalid_arg "Rng.of_state: expected 16 hex characters";
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
      | _ -> invalid_arg "Rng.of_state: malformed hex state")
    s;
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v -> { state = v }
  | None -> invalid_arg "Rng.of_state: malformed hex state"

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: n must be non-negative";
  Array.init n (fun _ -> split t)

let float t =
  (* 53 high bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for bound
     much smaller than 2^62, which holds everywhere in this code base. *)
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L
let range_float t lo hi = lo +. ((hi -. lo) *. float t)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  if k > Array.length arr then
    invalid_arg "Rng.sample_without_replacement: k too large";
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 k
