(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two points. *)

val std : float array -> float
(** Sample standard deviation. *)

val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0, 1\]], linear interpolation between order
    statistics (type-7, as in R).  The input is not modified. *)

val median : float array -> float

val covariance : float array -> float array -> float
(** Unbiased sample covariance of two equal-length arrays. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either side is constant. *)
