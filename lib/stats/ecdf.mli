(** Empirical cumulative distribution functions.

    Drives the CDF figures: propagation-time comparison (Fig. 8) and the
    re-advertisement-delta plateaus (Fig. 13). *)

type t

val of_array : float array -> t
(** Build from observations (copied and sorted). *)

val size : t -> int

val eval : t -> float -> float
(** [eval t x] is the fraction of observations ≤ [x]. *)

val quantile : t -> float -> float
(** Inverse CDF by order statistic. *)

val series : ?points:int -> t -> (float * float) list
(** [series ~points t] samples [points] (default 20) equally spaced x-values
    spanning the data range, as [(x, F(x))] pairs ready for printing. *)

val support : t -> float * float
(** Smallest and largest observation. *)
