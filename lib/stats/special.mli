(** Special functions needed by the samplers and the likelihood model. *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0] (Lanczos approximation, absolute
    error below 1e-10 over the range used here). *)

val log_beta : float -> float -> float
(** [log_beta a b] is ln Β(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b). *)

val log1mexp : float -> float
(** [log1mexp x] computes ln(1 − eˣ) accurately for [x < 0].  This is the
    key primitive of the tomography likelihood: the probability that a path
    shows a property is 1 − ∏ qᵢ, evaluated in log space as
    [log1mexp (Σ ln qᵢ)]. *)

val log_sum_exp : float array -> float
(** Numerically stable ln Σ eˣⁱ. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26, |error| ≤ 1.5e-7). *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Gaussian cumulative distribution function. *)
