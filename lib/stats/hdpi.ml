type t = { lo : float; hi : float }

let width t = t.hi -. t.lo

let compute ?(mass = 0.95) samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Hdpi.compute: empty sample array";
  if mass <= 0.0 || mass > 1.0 then
    invalid_arg "Hdpi.compute: mass outside (0,1]";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let window = Stdlib.max 1 (int_of_float (Float.ceil (mass *. float_of_int n))) in
  let window = Stdlib.min window n in
  let best = ref 0 in
  let best_width = ref infinity in
  for i = 0 to n - window do
    let w = sorted.(i + window - 1) -. sorted.(i) in
    if w < !best_width then begin
      best_width := w;
      best := i
    end
  done;
  { lo = sorted.(!best); hi = sorted.(!best + window - 1) }

let contains t x = x >= t.lo && x <= t.hi
