type t = float array (* sorted *)

let of_array xs =
  if Array.length xs = 0 then invalid_arg "Ecdf.of_array: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  sorted

let size t = Array.length t

let eval t x =
  (* Binary search for the rightmost index with t.(i) <= x. *)
  let n = Array.length t in
  if x < t.(0) then 0.0
  else if x >= t.(n - 1) then 1.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.(mid) <= x then lo := mid else hi := mid
    done;
    float_of_int (!lo + 1) /. float_of_int n
  end

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Ecdf.quantile: q outside [0,1]";
  let n = Array.length t in
  let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  t.(Stdlib.max 0 (Stdlib.min (n - 1) i))

let support t = (t.(0), t.(Array.length t - 1))

let series ?(points = 20) t =
  let lo, hi = support t in
  if points < 2 || hi <= lo then [ (lo, eval t lo); (hi, 1.0) ]
  else begin
    let step = (hi -. lo) /. float_of_int (points - 1) in
    List.init points (fun i ->
        let x = lo +. (float_of_int i *. step) in
        (x, eval t x))
  end
