(** Highest Posterior Density Intervals.

    The paper summarises each marginal posterior by its mean and the smallest
    interval containing γ = 0.95 of the mass (§5.1.2); the interval's width is
    the certainty measure plotted in Fig. 11. *)

type t = { lo : float; hi : float }

val width : t -> float

val compute : ?mass:float -> float array -> t
(** [compute ~mass samples] returns the shortest interval [\[lo, hi\]]
    containing at least [mass] (default 0.95) of the samples: the classic
    sliding-window minimiser over sorted samples.  Raises [Invalid_argument]
    on an empty array or a mass outside (0, 1]. *)

val contains : t -> float -> bool
